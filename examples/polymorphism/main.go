// Polymorphism: the paper's third complex test program (§IV) — C++-style
// dynamic dispatch modeled in assembly with vtables and indirect calls
// (jalr), showing how the branch unit and BTB handle indirect targets.
package main

import (
	"fmt"
	"log"

	"riscvsim/sim"
)

const program = `
main:
  la s0, objs
  li s1, 0
  li s2, 4
  li s3, 0             # total area
vloop:
  slli t0, s1, 2
  slli t1, s1, 3
  add t0, t0, t1       # i * 12
  add t0, s0, t0
  lw t1, 0(t0)         # vtable
  lw t2, 0(t1)         # method[0] = area
  lw a0, 4(t0)         # w
  lw a1, 8(t0)         # h
  addi sp, sp, -4
  sw ra, 0(sp)
  jalr ra, t2, 0       # virtual call
  lw ra, 0(sp)
  addi sp, sp, 4
  add s3, s3, a0
  addi s1, s1, 1
  blt s1, s2, vloop
  mv a0, s3
  ret

rect_area:
  mul a0, a0, a1
  ret

tri_area:
  mul a0, a0, a1
  srai a0, a0, 1
  ret

.data
.align 2
rect_vtable: .word rect_area
tri_vtable:  .word tri_area
objs:
  .word rect_vtable, 3, 4
  .word tri_vtable,  6, 4
  .word rect_vtable, 5, 5
  .word tri_vtable,  10, 3
`

func main() {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), program, "main")
	if err != nil {
		log.Fatal(err)
	}
	m.Run(100_000)

	total, _ := m.IntReg("a0")
	fmt.Printf("total area via dynamic dispatch = %d (expected 64)\n\n", total)

	r := m.Report()
	fmt.Printf("indirect-branch behaviour:\n")
	fmt.Printf("  BTB hits/misses:   %d / %d\n", r.Predictor.BTBHits, r.Predictor.BTBMisses)
	fmt.Printf("  prediction acc.:   %.1f%%\n", 100*r.PredAccuracy)
	fmt.Printf("  pipeline flushes:  %d\n", r.ROBFlushes)
	fmt.Printf("  fetch stalls:      %d cycles (fetch parks on unknown jalr targets)\n", r.FetchStalls)
}
