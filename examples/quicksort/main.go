// Quicksort: the paper's flagship complex program (§IV), written in C,
// compiled by the built-in compiler at every optimization level and run on
// the default core — demonstrating the C workflow end to end and how
// optimization level changes cycle counts.
package main

import (
	"fmt"
	"log"

	"riscvsim/sim"
)

const csrc = `
int arr[12] = {9, -3, 5, 1, 12, -7, 0, 4, 4, 100, -50, 2};

void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }

int partition(int *v, int lo, int hi) {
    int pivot = v[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {
        if (v[j] < pivot) { i++; swap(&v[i], &v[j]); }
    }
    swap(&v[i + 1], &v[hi]);
    return i + 1;
}

void quicksort(int *v, int lo, int hi) {
    if (lo >= hi) return;
    int p = partition(v, lo, hi);
    quicksort(v, lo, p - 1);
    quicksort(v, p + 1, hi);
}

int main() {
    quicksort(arr, 0, 11);
    return arr[0];   /* smallest element */
}
`

func main() {
	fmt.Println("quicksort in C, compiled by the built-in compiler:")
	for opt := 0; opt <= 3; opt++ {
		m, err := sim.NewFromC(sim.DefaultConfig(), csrc, opt)
		if err != nil {
			log.Fatalf("-O%d: %v", opt, err)
		}
		m.Run(5_000_000)
		if exc := m.Exception(); exc != nil {
			log.Fatalf("-O%d: exception: %v", opt, exc)
		}
		r := m.Report()

		// Read the sorted array back out of simulated memory.
		addr, size, _ := m.LookupLabel("arr")
		raw, _ := m.ReadMemory(addr, size)
		sorted := make([]int32, size/4)
		for i := range sorted {
			sorted[i] = int32(uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24)
		}
		fmt.Printf("  -O%d: %7d cycles, IPC %.3f, %4d flushes -> %v\n",
			opt, r.Cycles, r.IPC, r.ROBFlushes, sorted)
	}
}
