// Debugger: the paper's future-work development features (§V) — set a
// breakpoint inside a loop, watch a memory cell, step past triggers, and
// finish with the chip-area/power estimate for the architecture.
package main

import (
	"fmt"
	"log"

	"riscvsim/sim"
)

const program = `
main:
  la s0, counter
  li t0, 0
  li t1, 5
loop:
  addi t0, t0, 1      # pc=3: breakpoint here
  sw t0, 0(s0)        # watched store
  bne t0, t1, loop
  lw a0, 0(s0)
  ret
.data
counter: .word 0
`

func main() {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), program, "main")
	if err != nil {
		log.Fatal(err)
	}

	// Breakpoint on the increment (commit-ordered, like a debugger).
	if err := m.AddBreakpoint(3); err != nil {
		log.Fatal(err)
	}
	hits := 0
	for m.RunToBreak(1_000_000) {
		t0, _ := m.IntReg("t0")
		fmt.Printf("breakpoint hit %d at cycle %4d: %s (t0=%d)\n",
			hits+1, m.Cycle(), m.PauseReason(), t0)
		hits++
		if hits == 3 {
			fmt.Println("removing breakpoint, adding a watch on `counter`...")
			m.RemoveBreakpoint(3)
			addr, size, _ := m.LookupLabel("counter")
			if err := m.AddWatch(addr, size); err != nil {
				log.Fatal(err)
			}
		}
		m.Resume()
	}
	if m.Paused() {
		fmt.Printf("paused: %s\n", m.PauseReason())
		m.Resume()
		m.Run(1_000_000)
	}

	v, _ := m.IntReg("a0")
	fmt.Printf("\nfinal counter = %d (expected 5) after %d cycles\n\n", v, m.Cycle())

	// The cost model (future-work: chip area and power estimation).
	fmt.Println(m.EstimateCost().FormatText())
}
