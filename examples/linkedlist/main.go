// Linked list: the paper's second complex test program (§IV) — building,
// reversing and walking a singly linked list in assembly, then inspecting
// the final state interactively with forward and backward stepping.
package main

import (
	"fmt"
	"log"

	"riscvsim/sim"
)

const program = `
main:
  # Build a 5-node list in the arena: values 1..5.
  la t0, arena
  li t1, 0
  li t2, 5
build:
  slli t3, t1, 3
  add t3, t0, t3
  addi t4, t1, 1
  sw t4, 0(t3)         # node.value
  addi t5, t1, 1
  beq t5, t2, last
  slli t5, t5, 3
  add t5, t0, t5
  sw t5, 4(t3)         # node.next = &arena[i+1]
  j bnext
last:
  sw x0, 4(t3)         # node.next = NULL
bnext:
  addi t1, t1, 1
  blt t1, t2, build

  # Reverse in place.
  li s0, 0             # prev
  la s1, arena         # cur
rev:
  beqz s1, revdone
  lw s2, 4(s1)
  sw s0, 4(s1)
  mv s0, s1
  mv s1, s2
  j rev
revdone:
  # Walk and sum into a0.
  li a0, 0
walk:
  beqz s0, done
  lw t0, 0(s0)
  add a0, a0, t0
  lw s0, 4(s0)
  j walk
done:
  ret

.data
.align 3
arena: .zero 40
`

func main() {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), program, "main")
	if err != nil {
		log.Fatal(err)
	}
	m.Run(100_000)

	sum, _ := m.IntReg("a0")
	fmt.Printf("list sum after reversal = %d (expected 15)\n", sum)

	// Demonstrate backward simulation: rewind 10 cycles and re-run.
	end := m.Cycle()
	if err := m.GotoCycle(end - 10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewound to cycle %d of %d (backward simulation)\n", m.Cycle(), end)
	m.Run(100_000)
	sum2, _ := m.IntReg("a0")
	fmt.Printf("re-run result matches: %v\n", sum == sum2)

	// Show the arena in memory (the memory window's hex dump).
	addr, size, _ := m.LookupLabel("arena")
	dump, _ := m.HexDump(addr, size)
	fmt.Printf("\narena after run:\n%s", dump)
}
