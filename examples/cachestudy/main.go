// Cache study: sweep L1 associativity and replacement policy on a strided
// array walk — the kind of memory-hierarchy assignment the paper targets
// at computer architecture students (§V: "assignments focused on
// optimizing specific code patterns concerning the provided architecture").
package main

import (
	"fmt"
	"log"

	"riscvsim/internal/cache"
	"riscvsim/sim"
)

// walker strides through an 8 KiB array 4 passes; the stride of 1 KiB maps
// many lines onto few sets, punishing low associativity.
const walker = `
main:
  li s0, 0              # pass
  li s1, 4              # passes
  li a0, 0              # checksum
pass:
  la t0, arr
  li t1, 0
  li t2, 8             # 8 strided touches per pass
touch:
  lw t3, 0(t0)
  add a0, a0, t3
  addi t0, t0, 1024     # 1 KiB stride
  addi t1, t1, 1
  blt t1, t2, touch
  addi s0, s0, 1
  blt s0, s1, pass
  ret
.data
.align 6
arr: .zero 8192
`

func main() {
	fmt.Println("strided walk: cache hit rate and cycles by geometry/policy")
	fmt.Printf("%-28s %10s %10s %8s\n", "configuration", "hit rate", "cycles", "IPC")

	type variant struct {
		name   string
		mutate func(*sim.Config)
	}
	variants := []variant{
		{"direct-mapped LRU", func(c *sim.Config) { c.Cache.Associativity = 1 }},
		{"2-way LRU", func(c *sim.Config) { c.Cache.Associativity = 2 }},
		{"4-way LRU", func(c *sim.Config) { c.Cache.Associativity = 4 }},
		{"8-way LRU", func(c *sim.Config) { c.Cache.Associativity = 8 }},
		{"4-way FIFO", func(c *sim.Config) {
			c.Cache.Associativity = 4
			c.Cache.Replacement = cache.FIFO
		}},
		{"4-way Random", func(c *sim.Config) {
			c.Cache.Associativity = 4
			c.Cache.Replacement = cache.Random
		}},
		{"4-way write-through", func(c *sim.Config) {
			c.Cache.Associativity = 4
			c.Cache.Write = cache.WriteThrough
		}},
		{"cache disabled", func(c *sim.Config) { c.Cache.Enabled = false }},
	}

	for _, v := range variants {
		cfg := sim.DefaultConfig()
		// Small cache so the working set matters: 16 lines x 64 B = 1 KiB.
		cfg.Cache.Lines = 16
		v.mutate(cfg)
		m, err := sim.NewFromAsm(cfg, walker, "main")
		if err != nil {
			log.Fatal(err)
		}
		m.Run(1_000_000)
		r := m.Report()
		fmt.Printf("%-28s %9.1f%% %10d %8.3f\n",
			v.name, 100*r.CacheHitRate, r.Cycles, r.IPC)
	}
}
