// HPC optimization study: the paper's motivating use case (§I-B) — given
// an algorithm, how do code shape and processor width interact? Runs a
// dot-product kernel in three variants (naive, unrolled x4, fma) across
// processor widths 1/2/4/8 and prints the cycles/IPC matrix, making the
// width-vs-ILP crossover visible.
package main

import (
	"fmt"
	"log"

	"riscvsim/sim"
)

// naive: one multiply-accumulate per iteration, serial dependence on the
// accumulator.
const naive = `
main:
  la t0, a
  la t1, b
  li t2, 0            # i
  li t3, 64           # n
  fmv.w.x ft0, x0     # sum = 0
loop:
  slli t4, t2, 2
  add t5, t0, t4
  flw ft1, 0(t5)
  add t6, t1, t4
  flw ft2, 0(t6)
  fmul.s ft3, ft1, ft2
  fadd.s ft0, ft0, ft3
  addi t2, t2, 1
  blt t2, t3, loop
  fcvt.w.s a0, ft0
  ret
.data
.align 4
a: .zero 256
b: .zero 256
`

// unrolled: four partial sums break the accumulator dependence chain.
const unrolled = `
main:
  la t0, a
  la t1, b
  li t2, 0
  li t3, 64
  fmv.w.x ft0, x0     # sum0
  fmv.w.x ft4, x0     # sum1
  fmv.w.x ft5, x0     # sum2
  fmv.w.x ft6, x0     # sum3
loop:
  slli t4, t2, 2
  add t5, t0, t4
  add t6, t1, t4
  flw ft1, 0(t5)
  flw ft2, 0(t6)
  fmul.s ft3, ft1, ft2
  fadd.s ft0, ft0, ft3
  flw ft1, 4(t5)
  flw ft2, 4(t6)
  fmul.s ft3, ft1, ft2
  fadd.s ft4, ft4, ft3
  flw ft1, 8(t5)
  flw ft2, 8(t6)
  fmul.s ft3, ft1, ft2
  fadd.s ft5, ft5, ft3
  flw ft1, 12(t5)
  flw ft2, 12(t6)
  fmul.s ft3, ft1, ft2
  fadd.s ft6, ft6, ft3
  addi t2, t2, 4
  blt t2, t3, loop
  fadd.s ft0, ft0, ft4
  fadd.s ft5, ft5, ft6
  fadd.s ft0, ft0, ft5
  fcvt.w.s a0, ft0
  ret
.data
.align 4
a: .zero 256
b: .zero 256
`

// fma: fused multiply-add halves the arithmetic instruction count.
const fma = `
main:
  la t0, a
  la t1, b
  li t2, 0
  li t3, 64
  fmv.w.x ft0, x0
  fmv.w.x ft4, x0
loop:
  slli t4, t2, 2
  add t5, t0, t4
  add t6, t1, t4
  flw ft1, 0(t5)
  flw ft2, 0(t6)
  fmadd.s ft0, ft1, ft2, ft0
  flw ft1, 4(t5)
  flw ft2, 4(t6)
  fmadd.s ft4, ft1, ft2, ft4
  addi t2, t2, 2
  blt t2, t3, loop
  fadd.s ft0, ft0, ft4
  fcvt.w.s a0, ft0
  ret
.data
.align 4
a: .zero 256
b: .zero 256
`

func main() {
	variants := []struct {
		name string
		src  string
	}{
		{"naive", naive},
		{"unroll4", unrolled},
		{"fma", fma},
	}
	widths := []int{1, 2, 4, 8}

	fmt.Println("dot-product (n=64): cycles [IPC] by processor width")
	fmt.Printf("%-10s", "variant")
	for _, w := range widths {
		fmt.Printf("%16s", fmt.Sprintf("%d-wide", w))
	}
	fmt.Println()

	for _, v := range variants {
		fmt.Printf("%-10s", v.name)
		for _, w := range widths {
			cfg, err := sim.WidthConfig(w)
			if err != nil {
				log.Fatal(err)
			}
			m, err := sim.NewFromAsm(cfg, v.src, "main")
			if err != nil {
				log.Fatal(err)
			}
			m.Run(1_000_000)
			r := m.Report()
			fmt.Printf("%16s", fmt.Sprintf("%d [%.2f]", r.Cycles, r.IPC))
		}
		fmt.Println()
	}
	fmt.Println("\nreading: wider cores shorten every variant, but the single")
	fmt.Println("non-pipelined FP unit (the paper's stated limitation, §III-A)")
	fmt.Println("caps FP throughput — fma wins by halving FP-unit occupancy,")
	fmt.Println("and unrolling mainly helps the narrow cores' fetch bandwidth.")
}
