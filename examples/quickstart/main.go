// Quickstart: assemble a small program, run it to completion on the
// default 2-wide superscalar core, and print the runtime statistics —
// the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"riscvsim/sim"
)

const program = `
# Sum the integers 1..100 into t0.
main:
  li t0, 0          # sum
  li t1, 1          # i
  li t2, 101        # limit
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
  mv a0, t0         # result in a0
  ret
`

func main() {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), program, "main")
	if err != nil {
		log.Fatal(err)
	}

	m.Run(1_000_000)

	result, err := m.IntReg("a0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(1..100) = %d (expected 5050)\n\n", result)
	fmt.Println(m.Report().FormatText())
}
