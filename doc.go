// Package riscvsim is a Go reproduction of "Web-Based Simulator of
// Superscalar RISC-V Processors" (Jaros, Majer, Horky, Vavra; SC 2024,
// arXiv:2411.07721): a configurable superscalar out-of-order RV32IM(F)
// processor simulator with register renaming, reorder buffer, issue
// windows, load/store buffers, an L1 cache, branch prediction, a built-in
// C compiler, an HTTP JSON simulation server, a CLI, and the paper's full
// evaluation harness.
//
// The public API lives in riscvsim/sim; see README.md for a tour and
// DESIGN.md for the system inventory. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation
// (EXPERIMENTS.md records paper-vs-measured results).
//
// The simulation server speaks a versioned JSON protocol under /api/v1
// (docs/api.md): typed request/response documents and a machine-readable
// error envelope defined in riscvsim/internal/api, pluggable codecs
// negotiated via Accept/Content-Type ("codec=pooled" selects the
// pooled-buffer streaming codec), POST /api/v1/batch for fanning
// independent simulations across a worker pool, and
// POST /api/v1/session/stream for NDJSON push-streams of a running
// simulation. The pre-v1 flat paths remain as deprecated aliases.
//
// Correctness of the two execution semantics (the specialized fast path
// and the postfix expression interpreter) is guarded by a co-simulation
// fuzzer (docs/fuzzing.md): riscvsim -fuzz generates constrained random
// RV32IM programs, runs both engines in lockstep, and shrinks any
// divergence to a minimal reproducer.
package riscvsim
