// Package chaos is the deterministic fault-injection harness for the
// distributed session tier (docs/robustness.md). One Plan, derived from
// a single int64 seed through internal/seeds, decides every injected
// fault — store write/read errors, latency spikes, torn blobs,
// connection drops, slow replicas, replica kills — as a pure function
// of (seed, fault site, per-site occurrence counter). Re-running with
// the same seed replays the same fault decisions at the same sites in
// the same order, which is what makes a failing chaos schedule a
// one-line reproducer (`chaostest -chaos-seed N`).
//
// The harness has three layers:
//
//   - FaultStore wraps a store.Store with injected faults on the
//     Put/Get path (the durability boundary).
//   - Cluster spawns in-process replicas behind the real router, with a
//     chaos middleware on each replica's HTTP path (the network
//     boundary) and kill/revive control (the process boundary).
//   - Runner drives a seed-derived schedule of client operations
//     through the router and checks the tier's invariants: acked
//     durable checkpoints are never lost, rehydrated sessions are
//     bit-exact (StateHash), store versions only move forward, and
//     every client-visible outcome is typed.
//
// Minimize shrinks a failing schedule to its shortest failing prefix.
package chaos

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"riscvsim/internal/seeds"
)

// Config selects fault classes and their rates. All probabilities are
// in [0,1] per opportunity; zero disables the class. The zero Config
// injects nothing (a plain correctness run).
type Config struct {
	// Seed derives every fault decision and the op schedule.
	Seed int64

	// StorePutErr fails store Puts with an injected error (the
	// checkpoint is then acked non-durable).
	StorePutErr float64
	// StoreGetErr fails store Gets (rehydration/failover reads).
	StoreGetErr float64
	// StoreCorrupt returns a transiently corrupted copy of a blob on
	// Get — a bit flip or a torn (truncated) read. The underlying blob
	// is intact; a re-read sees good bytes.
	StoreCorrupt float64
	// StoreLatency delays a store operation by LatencySpike.
	StoreLatency float64
	// LatencySpike is the injected store delay (default 20ms).
	LatencySpike time.Duration

	// NetDrop kills a replica connection before the request is read —
	// the router sees a mid-connection failure.
	NetDrop float64
	// NetTorn serves a response but closes the connection mid-body.
	NetTorn float64
	// NetSlow delays a replica response by SlowResponse.
	NetSlow float64
	// SlowResponse is the injected response delay (default 50ms).
	SlowResponse time.Duration

	// DropAckedPuts is the harness's self-test bug: store Puts succeed
	// from the caller's point of view but write nothing. Acked durable
	// checkpoints are silently lost — exactly the invariant the runner
	// checks — so a chaos campaign over a tier with this bug MUST fail.
	// CI runs one campaign with it on to prove the harness catches it.
	DropAckedPuts bool
	// DropAckedPutsRate is the drop probability when DropAckedPuts is
	// set (default 0.5).
	DropAckedPutsRate float64

	// Replicas is the cluster size (default 3).
	Replicas int
	// StoreDir backs the shared store with a directory (durability
	// path); empty keeps it in memory (fast path for campaigns).
	StoreDir string

	// MaxInFlight/MaxQueue/QueueTimeout/RequestTimeout configure each
	// replica's admission control and deadline (0 = server defaults /
	// disabled), so overload drills run through the same harness.
	MaxInFlight    int
	MaxQueue       int
	QueueTimeout   time.Duration
	RequestTimeout time.Duration
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.LatencySpike <= 0 {
		c.LatencySpike = 20 * time.Millisecond
	}
	if c.SlowResponse <= 0 {
		c.SlowResponse = 50 * time.Millisecond
	}
	if c.DropAckedPutsRate <= 0 {
		c.DropAckedPutsRate = 0.5
	}
	return c
}

// DefaultFaults is the standard chaos mix: every fault class on at
// rates that keep schedules mostly-progressing (the tier should absorb
// faults, not drown in them).
func DefaultFaults(seed int64) Config {
	return Config{
		Seed:         seed,
		StorePutErr:  0.05,
		StoreGetErr:  0.05,
		StoreCorrupt: 0.05,
		StoreLatency: 0.05,
		NetDrop:      0.05,
		NetTorn:      0.05,
		NetSlow:      0.05,
	}
}

// Plan turns a Config into deterministic per-site fault decisions. A
// site is a stable string naming one injection point ("store.put.err",
// "net.sim2.drop", ...); each site has its own occurrence counter, and
// decision k at site s is a pure function of (seed, s, k) — concurrent
// timing cannot reorder a site's decision stream, only interleave
// different sites.
type Plan struct {
	cfg     Config
	enabled atomic.Bool

	mu       sync.Mutex
	counters map[string]*atomic.Uint64
}

// NewPlan builds the plan for a config (faults start enabled).
func NewPlan(cfg Config) *Plan {
	p := &Plan{cfg: cfg.withDefaults(), counters: make(map[string]*atomic.Uint64)}
	p.enabled.Store(true)
	return p
}

// Config returns the plan's (defaulted) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Disable turns all fault injection off — the runner's settle/verify
// phase runs fault-free so invariant violations can't hide behind
// still-failing infrastructure.
func (p *Plan) Disable() { p.enabled.Store(false) }

// Enable turns fault injection (back) on.
func (p *Plan) Enable() { p.enabled.Store(true) }

// counter returns site's occurrence counter, creating it on first use.
func (p *Plan) counter(site string) *atomic.Uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.counters[site]
	if !ok {
		c = new(atomic.Uint64)
		p.counters[site] = c
	}
	return c
}

// roll draws site's next deterministic uniform value in [0,1). Each
// call consumes one position in the site's stream.
func (p *Plan) roll(site string) float64 {
	n := p.counter(site).Add(1) - 1
	h := fnv.New64a()
	h.Write([]byte(site))
	mixed := uint64(seeds.Mix(p.cfg.Seed ^ int64(h.Sum64()) + int64(n)))
	return float64(mixed>>11) / float64(1<<53)
}

// Decide reports whether the fault at site fires, given its configured
// probability. Disabled plans never fire and consume no stream
// positions (the fault-free verify phase must not perturb replay).
func (p *Plan) Decide(site string, prob float64) bool {
	if prob <= 0 || !p.enabled.Load() {
		return false
	}
	return p.roll(site) < prob
}

// DecideValue fires like Decide but also returns the site's roll —
// used to derive secondary deterministic choices (corruption offset,
// torn-read length) from the same stream position.
func (p *Plan) DecideValue(site string, prob float64) (bool, float64) {
	if prob <= 0 || !p.enabled.Load() {
		return false, 0
	}
	v := p.roll(site)
	return v < prob, v
}
