package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/seeds"
	"riscvsim/internal/server"
	"riscvsim/sim"
)

// loopProgram is the schedule's workload: a tight infinite loop, one
// architectural event per cycle forever, so a reference machine can be
// advanced to ANY cycle a checkpoint reports and compared bit-exactly.
const loopProgram = "loop: addi t0, t0, 1\nbeq x0, x0, loop\n"

// Op kinds. A schedule is a flat list of these, derived from the seed.
const (
	OpCreate     = "create"     // start a session (loopProgram)
	OpStep       = "step"       // advance a session N cycles
	OpCheckpoint = "checkpoint" // explicit checkpoint (durability point)
	OpKill       = "kill"       // kill a replica process abruptly
	OpRevive     = "revive"     // restart a killed replica, same address
)

// Op is one schedule entry.
type Op struct {
	Kind    string
	Session int    // session slot for create/step/checkpoint
	Steps   int64  // cycles for step
	Replica string // target for kill/revive
}

// Schedule is a deterministic op sequence.
type Schedule []Op

// BuildSchedule derives the op schedule for a seed: ~sessions session
// slots driven through nOps operations over the named replicas. Same
// (seed, nOps, sessions, replicas) → same schedule, always.
func BuildSchedule(seed int64, nOps, sessions int, replicas []string) Schedule {
	if sessions <= 0 {
		sessions = 4
	}
	rng := rand.New(rand.NewSource(seeds.Mix(seed)))
	sched := make(Schedule, 0, nOps)
	for i := 0; i < nOps; i++ {
		r := rng.Float64()
		switch {
		case r < 0.10:
			sched = append(sched, Op{Kind: OpCreate, Session: rng.Intn(sessions)})
		case r < 0.55:
			sched = append(sched, Op{Kind: OpStep, Session: rng.Intn(sessions), Steps: int64(50 + rng.Intn(2000))})
		case r < 0.80:
			sched = append(sched, Op{Kind: OpCheckpoint, Session: rng.Intn(sessions)})
		case r < 0.90:
			sched = append(sched, Op{Kind: OpKill, Replica: replicas[rng.Intn(len(replicas))]})
		default:
			sched = append(sched, Op{Kind: OpRevive, Replica: replicas[rng.Intn(len(replicas))]})
		}
	}
	return sched
}

// sessionTrack is the runner's model of one session slot: what the
// tier has durably acknowledged for it.
type sessionTrack struct {
	id         string
	ackedCycle uint64 // cycle of the last durable-acked checkpoint
	ackedCkpt  []byte // that checkpoint's bytes (client's copy)
	lastCycle  uint64 // highest cycle any successful response reported
}

// Result is one chaos schedule's outcome.
type Result struct {
	Seed       int64
	Ops        int
	Counts     map[string]int // ops executed per kind
	Outcomes   map[string]int // "ok" plus typed error codes seen
	Violations []string       // invariant violations (empty = pass)
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Summary is a one-line human rendering.
func (r *Result) Summary() string {
	state := "PASS"
	if r.Failed() {
		state = fmt.Sprintf("FAIL (%d violations)", len(r.Violations))
	}
	return fmt.Sprintf("seed=%d ops=%d outcomes=%v %s", r.Seed, r.Ops, r.Outcomes, state)
}

// Run executes one chaos schedule under cfg and checks the tier's
// invariants. The error return is for harness-level failures (cluster
// would not start); invariant violations land in the Result.
func Run(cfg Config, sched Schedule) (*Result, error) {
	plan := NewPlan(cfg)
	cl, err := SpawnCluster(plan)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	return runOn(plan, cl, sched)
}

// runOn drives sched against a freshly spawned cluster.
func runOn(plan *Plan, cl *Cluster, sched Schedule) (*Result, error) {
	cfg := plan.Config()
	res := &Result{
		Seed:     cfg.Seed,
		Ops:      len(sched),
		Counts:   make(map[string]int),
		Outcomes: make(map[string]int),
	}
	api2 := client.NewForURL(cl.RouterURL, false)
	api2.SetRetryPolicy(client.RetryPolicy{MaxRetries: 4, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 250 * time.Millisecond})

	sessions := make(map[int]*sessionTrack)
	record := func(err error) bool {
		if err == nil {
			res.Outcomes["ok"]++
			return true
		}
		if code := client.ErrorCode(err); code != "" {
			res.Outcomes[code]++
			return false
		}
		// Untyped client-visible outcome: the tier leaked a raw failure
		// past the router. This is itself an invariant violation.
		res.Outcomes["untyped"]++
		res.Violations = append(res.Violations, fmt.Sprintf("untyped client-visible outcome: %v", err))
		return false
	}

	for _, op := range sched {
		res.Counts[op.Kind]++
		switch op.Kind {
		case OpCreate:
			if sessions[op.Session] != nil {
				continue // slot occupied; creates are idempotent per slot
			}
			resp, err := api2.NewSession(&api.SessionNewRequest{
				SimulateRequest: api.SimulateRequest{Code: loopProgram},
			})
			if record(err) {
				sessions[op.Session] = &sessionTrack{id: resp.SessionID}
			}
		case OpStep:
			tr := sessions[op.Session]
			if tr == nil {
				continue
			}
			resp, err := api2.Step(tr.id, op.Steps)
			if record(err) && resp.State != nil && resp.State.Cycle > tr.lastCycle {
				tr.lastCycle = resp.State.Cycle
			}
		case OpCheckpoint:
			tr := sessions[op.Session]
			if tr == nil {
				continue
			}
			resp, err := api2.Checkpoint(tr.id)
			if record(err) {
				if resp.Cycle > tr.lastCycle {
					tr.lastCycle = resp.Cycle
				}
				if resp.Durable && resp.Cycle >= tr.ackedCycle {
					// The tier's durability promise starts here: this
					// checkpoint is in the shared store, so no replica
					// death may lose progress below this cycle.
					tr.ackedCycle = resp.Cycle
					tr.ackedCkpt = resp.Checkpoint
				}
			}
		case OpKill:
			// Never take the last replica down: the tier's contract
			// assumes a quorum of one, and an empty cluster would turn
			// every outcome into node_unavailable noise.
			if cl.AliveCount() > 1 {
				cl.Kill(op.Replica)
			}
		case OpRevive:
			cl.Revive(op.Replica)
		default:
			return nil, fmt.Errorf("chaos: unknown op kind %q", op.Kind)
		}
	}

	// Settle: faults off, every replica back, router probes caught up.
	// Invariants are then checked against a healthy tier — anything
	// still broken is real damage, not an ongoing fault.
	plan.Disable()
	for _, name := range cl.ReplicaNames() {
		cl.Revive(name)
	}
	settleDeadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(settleDeadline) {
		healthy := 0
		for _, re := range cl.Router().Metrics().Replicas {
			if re.Healthy {
				healthy++
			}
		}
		if healthy == len(cl.ReplicaNames()) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	verify(res, api2, sessions)
	res.Violations = append(res.Violations, cl.Store.Violations()...)
	return res, nil
}

// verify checks the post-settle invariants for every session that ever
// received a durable checkpoint ack:
//
//  1. Reachability — the session must still answer (a durable-acked
//     session may never become unknown/moved once the tier is healthy).
//  2. No lost progress — its current cycle must be >= the acked cycle.
//  3. Bit-exactness — the acked checkpoint must rehydrate to a machine
//     whose StateHash equals a reference machine stepped to the same
//     cycle locally.
func verify(res *Result, api2 *client.Client, sessions map[int]*sessionTrack) {
	for slot, tr := range sessions {
		if tr == nil || tr.ackedCkpt == nil {
			continue
		}
		resp, err := api2.Step(tr.id, 1)
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"acked checkpoint lost: session %s (slot %d) durable-acked at cycle %d but unreachable after settle: %v",
				tr.id, slot, tr.ackedCycle, err))
			continue
		}
		if resp.State == nil || resp.State.Cycle <= tr.ackedCycle {
			got := uint64(0)
			if resp.State != nil {
				got = resp.State.Cycle
			}
			res.Violations = append(res.Violations, fmt.Sprintf(
				"acked progress lost: session %s (slot %d) at cycle %d after a step, below durable ack %d",
				tr.id, slot, got, tr.ackedCycle))
		}
		if msg := checkBitExact(tr); msg != "" {
			res.Violations = append(res.Violations, msg)
		}
	}
}

// checkBitExact replays the acked checkpoint locally against a
// reference machine advanced to the same cycle.
func checkBitExact(tr *sessionTrack) string {
	restored, err := sim.Restore(bytes.NewReader(tr.ackedCkpt))
	if err != nil {
		return fmt.Sprintf("acked checkpoint corrupt: session %s cycle %d: %v", tr.id, tr.ackedCycle, err)
	}
	ref, aerr := server.BuildMachine(&api.SimulateRequest{Code: loopProgram})
	if aerr != nil {
		return fmt.Sprintf("chaos: reference build failed: %v", aerr)
	}
	ref.StepN(tr.ackedCycle)
	if got, want := restored.StateHash(), ref.StateHash(); got != want {
		return fmt.Sprintf("rehydration not bit-exact: session %s cycle %d: restored hash %016x, reference %016x",
			tr.id, tr.ackedCycle, got, want)
	}
	return ""
}
