package chaos

import (
	"strings"
	"sync"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
)

// TestPlanDeterminism: fault decisions are a pure function of
// (seed, site, occurrence) — two plans with the same seed produce
// identical decision streams, a different seed produces a different
// one, and disabling a plan neither fires nor consumes positions.
func TestPlanDeterminism(t *testing.T) {
	cfg := DefaultFaults(42)
	a, b := NewPlan(cfg), NewPlan(cfg)
	sites := []string{"store.put.err", "store.get.corrupt", "net.sim1.drop", "net.sim2.torn"}
	var streamA, streamB []bool
	for i := 0; i < 200; i++ {
		site := sites[i%len(sites)]
		streamA = append(streamA, a.Decide(site, 0.3))
		streamB = append(streamB, b.Decide(site, 0.3))
	}
	for i := range streamA {
		if streamA[i] != streamB[i] {
			t.Fatalf("decision %d diverged between identical plans", i)
		}
	}
	fired := 0
	for _, d := range streamA {
		if d {
			fired++
		}
	}
	if fired == 0 || fired == len(streamA) {
		t.Fatalf("degenerate decision stream: %d/%d fired", fired, len(streamA))
	}

	other := NewPlan(DefaultFaults(43))
	diverged := false
	for i := 0; i < 200; i++ {
		site := sites[i%len(sites)]
		if other.Decide(site, 0.3) != streamA[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seed 43 replayed seed 42's decisions")
	}

	a.Disable()
	for i := 0; i < 50; i++ {
		if a.Decide("store.put.err", 1.0) {
			t.Fatal("disabled plan fired a fault")
		}
	}
}

// TestScheduleDeterminism: same inputs, same schedule.
func TestScheduleDeterminism(t *testing.T) {
	reps := []string{"sim1", "sim2", "sim3"}
	s1 := BuildSchedule(7, 300, 4, reps)
	s2 := BuildSchedule(7, 300, 4, reps)
	if len(s1) != len(s2) {
		t.Fatalf("lengths differ: %d vs %d", len(s1), len(s2))
	}
	kinds := map[string]int{}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
		kinds[s1[i].Kind]++
	}
	for _, k := range []string{OpCreate, OpStep, OpCheckpoint, OpKill, OpRevive} {
		if kinds[k] == 0 {
			t.Fatalf("schedule of 300 ops never produced %s (got %v)", k, kinds)
		}
	}
}

// TestChaosCampaignInvariantsHold is the core soak: several seeds, all
// fault classes on, every schedule must finish with zero invariant
// violations — the tier absorbs the faults (retries, failover, typed
// errors) without ever losing acked state or leaking an untyped error.
func TestChaosCampaignInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is seconds-long")
	}
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DefaultFaults(seed)
		sched := BuildSchedule(seed, 60, 4, []string{"sim1", "sim2", "sim3"})
		res, err := Run(cfg, sched)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if res.Failed() {
			t.Fatalf("seed %d: invariant violations:\n  %s", seed, strings.Join(res.Violations, "\n  "))
		}
		if res.Outcomes["ok"] == 0 {
			t.Fatalf("seed %d: no operation succeeded — harness is not exercising the tier (%v)", seed, res.Outcomes)
		}
	}
}

// TestChaosMovesRobustnessMetrics: a chaos run must be visible in the
// router's robustness counters — forwards always, and under injected
// replica faults at least one of retries / breaker trips.
func TestChaosMovesRobustnessMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a cluster")
	}
	cfg := DefaultFaults(11)
	cfg.NetDrop = 0.25 // hot enough that the router must retry
	plan := NewPlan(cfg)
	cl, err := SpawnCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sched := BuildSchedule(11, 50, 3, cl.ReplicaNames())
	res, err := runOn(plan, cl, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	m := cl.Router().Metrics()
	if m.Forwards == 0 {
		t.Fatal("router forwarded nothing")
	}
	if m.Retries == 0 && m.RetriesDenied == 0 {
		t.Fatalf("25%% connection drops produced zero router retries: %+v", m)
	}
}

// TestInjectedCheckpointLossIsCaughtAndMinimized is the harness's
// self-test: with the DropAckedPuts bug planted in the store, some
// schedule must end with an acked-checkpoint-loss violation, and
// Minimize must shrink it to a still-failing prefix.
func TestInjectedCheckpointLossIsCaughtAndMinimized(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign is seconds-long")
	}
	// A borderline schedule can fail once and then pass on re-run
	// (the fault stream is deterministic, goroutine interleaving is
	// not), so don't bet on the first failing seed minimizing: walk
	// the seeds and succeed on the first one that both fails and
	// shrinks to a still-failing prefix.
	caught := 0
	for seed := int64(1); seed <= 10; seed++ {
		cfg := Config{Seed: seed, DropAckedPuts: true, DropAckedPutsRate: 0.9}
		sched := BuildSchedule(seed, 60, 4, []string{"sim1", "sim2", "sim3"})
		res, err := Run(cfg, sched)
		if err != nil {
			t.Fatalf("seed %d: harness error: %v", seed, err)
		}
		if !res.Failed() {
			continue
		}
		caught++
		minimized, minRes, err := Minimize(cfg, sched)
		if err != nil {
			t.Logf("seed %d caught the bug but did not re-fail under Minimize: %v", seed, err)
			continue
		}
		if !minRes.Failed() {
			t.Fatal("minimized schedule does not fail")
		}
		if len(minimized) > len(sched) {
			t.Fatalf("minimized schedule grew: %d > %d", len(minimized), len(sched))
		}
		t.Logf("bug caught at seed %d, minimized %d ops -> %d ops: %s",
			seed, len(sched), len(minimized), minRes.Violations[0])
		return
	}
	if caught == 0 {
		t.Fatal("DropAckedPuts bug survived 10 chaos schedules undetected")
	}
	t.Fatalf("bug caught in %d/10 schedules but none minimized to a still-failing prefix", caught)
}

// TestOverloadDrill: a burst far beyond a replica's admission capacity
// must resolve into only successes and typed over_capacity /
// node_unavailable outcomes — never untyped errors, hangs, or
// collapse — and the tier must serve normally again right after the
// burst. Shed counters on both the server and the router must move.
func TestOverloadDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a cluster")
	}
	plan := NewPlan(Config{
		Seed:         1,
		Replicas:     1,
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 20 * time.Millisecond,
	})
	cl, err := SpawnCluster(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const burst = 24
	outcomes := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := client.NewForURL(cl.RouterURL, false) // no retry policy: observe raw outcomes
			_, err := c.Simulate(&api.SimulateRequest{Code: loopProgram, Steps: 200_000})
			if err == nil {
				outcomes[i] = "ok"
			} else {
				outcomes[i] = client.ErrorCode(err)
			}
		}(i)
	}
	wg.Wait()

	shed := 0
	for i, o := range outcomes {
		switch o {
		case "ok":
		case api.CodeOverCapacity:
			shed++
		case api.CodeNodeUnavailable:
		default:
			t.Fatalf("burst request %d: outcome %q is not a typed overload outcome", i, o)
		}
	}
	if shed == 0 {
		t.Fatalf("burst of %d over capacity 1+1 shed nothing: %v", burst, outcomes)
	}

	// Recovery: the next plain request must succeed promptly (well
	// within one health-probe interval of the burst draining).
	c := client.NewForURL(cl.RouterURL, false)
	c.SetRetryPolicy(client.RetryPolicy{MaxRetries: 3, BaseBackoff: 20 * time.Millisecond})
	start := time.Now()
	if _, err := c.Simulate(&api.SimulateRequest{Code: loopProgram, Steps: 100}); err != nil {
		t.Fatalf("request after burst failed: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("recovery took %v", d)
	}

	if m := cl.Router().Metrics(); m.Shed == 0 {
		t.Errorf("router relayed no shed responses: %+v", m)
	}
	mresp, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if mresp.Shed == 0 {
		t.Errorf("server shed counter did not move: %+v", mresp)
	}
}
