package chaos

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"riscvsim/internal/router"
	"riscvsim/internal/server"
	"riscvsim/internal/store"
)

// Cluster is the chaos harness's in-process distributed tier: N
// replicas over one shared FaultStore behind the real router, like
// loadgen.SpawnCluster, plus the controls chaos needs — replicas can
// be killed abruptly and revived at the SAME address (a process
// restart, not a new node: the ring name and URL survive, in-memory
// sessions do not), and every replica's HTTP path runs through the
// plan's network-fault middleware.
type Cluster struct {
	// RouterURL is the base URL schedules target.
	RouterURL string
	// Store is the shared fault-injecting checkpoint store.
	Store *FaultStore

	plan     *Plan
	cfg      Config
	rt       *router.Router
	routerTS *httptest.Server

	mu       sync.Mutex
	replicas map[string]*chaosReplica
}

// chaosReplica is one replica slot: a stable name+address whose server
// process comes and goes.
type chaosReplica struct {
	name string
	addr string // host:port, fixed for the cluster's lifetime
	ts   *httptest.Server
}

// SpawnCluster builds the chaos tier under plan.
func SpawnCluster(plan *Plan) (*Cluster, error) {
	cfg := plan.Config()
	var backend store.Store = store.NewMem()
	if cfg.StoreDir != "" {
		d, err := store.NewDir(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("chaos: cluster store: %w", err)
		}
		backend = d
	}
	c := &Cluster{
		Store:    NewFaultStore(backend, plan),
		plan:     plan,
		cfg:      cfg,
		replicas: make(map[string]*chaosReplica, cfg.Replicas),
	}
	var reps []router.Replica
	for i := 0; i < cfg.Replicas; i++ {
		name := fmt.Sprintf("sim%d", i+1)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("chaos: replica listener: %w", err)
		}
		r := &chaosReplica{name: name, addr: ln.Addr().String()}
		r.ts = c.startReplica(name, ln)
		c.replicas[name] = r
		reps = append(reps, router.Replica{Name: name, URL: "http://" + r.addr})
	}
	rt, err := router.New(router.Options{
		Replicas:       reps,
		HealthInterval: 100 * time.Millisecond,
		HealthTimeout:  2 * time.Second,
		RetryBackoff:   10 * time.Millisecond,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.rt = rt
	c.routerTS = httptest.NewServer(rt.Handler())
	c.RouterURL = c.routerTS.URL
	return c, nil
}

// startReplica boots a fresh server process on ln — used at spawn and
// again on every revive (a revive is a restart: new server.Server, so
// in-memory sessions are gone and only the shared store survives).
func (c *Cluster) startReplica(name string, ln net.Listener) *httptest.Server {
	srv := server.New(server.Options{
		MaxSessions:      256,
		Store:            c.Store,
		WriteThrough:     true,
		AllowAssignedIDs: true,
		MaxInFlight:      c.cfg.MaxInFlight,
		MaxQueue:         c.cfg.MaxQueue,
		QueueTimeout:     c.cfg.QueueTimeout,
		RequestTimeout:   c.cfg.RequestTimeout,
	})
	ts := httptest.NewUnstartedServer(faultMiddleware(c.plan, name, srv.Handler()))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	return ts
}

// Router exposes the underlying router for metrics assertions.
func (c *Cluster) Router() *router.Router { return c.rt }

// ReplicaNames lists the cluster's ring names (alive or not).
func (c *Cluster) ReplicaNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.replicas))
	for n := range c.replicas {
		names = append(names, n)
	}
	return names
}

// Alive reports whether the named replica currently has a live process.
func (c *Cluster) Alive(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.replicas[name]
	return ok && r.ts != nil
}

// AliveCount returns how many replicas currently run.
func (c *Cluster) AliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.replicas {
		if r.ts != nil {
			n++
		}
	}
	return n
}

// Kill terminates a replica's process abruptly: open client
// connections are severed mid-flight, in-memory sessions die. The
// address stays reserved for Revive. Killing a dead replica is a no-op
// (false).
func (c *Cluster) Kill(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.replicas[name]
	if !ok || r.ts == nil {
		return false
	}
	r.ts.CloseClientConnections()
	r.ts.Close()
	r.ts = nil
	return true
}

// Revive restarts a killed replica on its original address with a
// fresh server process sharing the cluster store — the in-process
// stand-in for "the container came back". False when the replica is
// already alive or the address cannot be rebound.
func (c *Cluster) Revive(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.replicas[name]
	if !ok || r.ts != nil {
		return false
	}
	// The old socket may linger briefly after an abrupt close; retry
	// the bind for a moment before giving up.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return false
	}
	r.ts = c.startReplica(name, ln)
	return true
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	if c.routerTS != nil {
		c.routerTS.Close()
	}
	if c.rt != nil {
		c.rt.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		if r.ts != nil {
			r.ts.Close()
			r.ts = nil
		}
	}
}

// faultMiddleware injects network faults on a replica's request path:
// connection drops before the handler runs, slow responses, and torn
// responses (headers plus a partial body, then a severed connection).
// Health probes and admin reads pass through clean — they are the
// router's eyes, and letting chaos consume their stream positions
// would also make fault replay depend on probe timing.
func faultMiddleware(plan *Plan, name string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/health" || strings.HasPrefix(r.URL.Path, "/admin/") {
			next.ServeHTTP(w, r)
			return
		}
		cfg := plan.Config()
		if plan.Decide("net."+name+".drop", cfg.NetDrop) {
			hijackClose(w)
			return
		}
		if plan.Decide("net."+name+".slow", cfg.NetSlow) {
			time.Sleep(cfg.SlowResponse)
		}
		if fire, v := plan.DecideValue("net."+name+".torn", cfg.NetTorn); fire {
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			tearResponse(w, rec, v)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// hijackClose severs the connection without writing anything — the
// client sees an unexpected EOF mid-request.
func hijackClose(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No hijack support (HTTP/2 etc.): fall back to an empty 500,
		// still an abrupt failure from the caller's point of view.
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, _, err := hj.Hijack()
	if err == nil {
		conn.Close()
	}
}

// tearResponse replays a recorded response but stops partway through
// the body and severs the connection, advertising the full length so
// the client cannot mistake the truncation for a complete message.
func tearResponse(w http.ResponseWriter, rec *httptest.ResponseRecorder, roll float64) {
	body := rec.Body.Bytes()
	cut := int(roll * float64(len(body)))
	if cut >= len(body) {
		cut = len(body) / 2
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", rec.Code, http.StatusText(rec.Code))
	for k, vs := range rec.Header() {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			fmt.Fprintf(buf, "%s: %s\r\n", k, v)
		}
	}
	fmt.Fprintf(buf, "Content-Length: %d\r\n\r\n", len(body))
	buf.Write(body[:cut])
	buf.Flush()
}
