package chaos

import "fmt"

// Minimize shrinks a failing schedule to (close to) its shortest
// failing prefix by binary-searching the prefix length, re-running the
// whole harness — fresh cluster, fresh store, same seed — at each
// probe. Because every fault decision is a pure function of
// (seed, site, occurrence), a prefix replays the original run's fault
// stream exactly as far as it goes; the only thing that shrinks is the
// op schedule.
//
// It returns the smallest failing prefix found and its Result. The
// fault stream is deterministic but goroutine interleaving is not, so
// a borderline schedule can need more than one attempt to re-fail:
// the initial reproduction gets reproAttempts tries. If the full
// schedule still passes every one (a violation the plan cannot pin),
// it returns (nil, nil, error) so callers report the original seed
// instead of a bogus minimization. The returned Result is always from
// an actually-failing run, whatever the probe path.
const reproAttempts = 3

func Minimize(cfg Config, sched Schedule) (Schedule, *Result, error) {
	var full *Result
	for try := 0; try < reproAttempts; try++ {
		res, err := Run(cfg, sched)
		if err != nil {
			return nil, nil, err
		}
		if res.Failed() {
			full = res
			break
		}
	}
	if full == nil {
		return nil, nil, fmt.Errorf("chaos: schedule for seed %d did not fail in %d re-runs; not minimizable", cfg.Seed, reproAttempts)
	}
	lo, hi := 1, len(sched) // invariant: prefix of hi fails
	best := full
	for lo < hi {
		mid := lo + (hi-lo)/2
		res, err := Run(cfg, sched[:mid])
		if err != nil {
			return nil, nil, err
		}
		if res.Failed() {
			hi, best = mid, res
		} else {
			lo = mid + 1
		}
	}
	return sched[:hi], best, nil
}
