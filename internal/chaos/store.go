package chaos

import (
	"fmt"
	"sync"
	"time"

	"riscvsim/internal/store"
)

// ErrInjected is the root of every fault the FaultStore injects, so
// tests can tell injected failures from real backend failures.
var ErrInjected = fmt.Errorf("chaos: injected fault")

// FaultStore wraps a store.Store with plan-driven faults on the
// durability boundary: Put/Get errors, latency spikes, transiently
// corrupted reads (bit flip or torn read — the underlying blob stays
// intact), and the DropAckedPuts injected bug. It also records every
// successful Put so the runner can check version monotonicity after
// the fact.
type FaultStore struct {
	backend store.Store
	plan    *Plan

	mu         sync.Mutex
	history    map[string][]uint64 // successful Put versions, in order
	dropped    map[string]uint64   // highest version silently dropped per ID
	getFaulted map[string]bool     // last Get for this ID was faulted
	violations []string
}

// NewFaultStore wraps backend under plan's fault decisions.
func NewFaultStore(backend store.Store, plan *Plan) *FaultStore {
	return &FaultStore{
		backend:    backend,
		plan:       plan,
		history:    make(map[string][]uint64),
		dropped:    make(map[string]uint64),
		getFaulted: make(map[string]bool),
	}
}

// Put implements store.Store with injected write faults.
func (f *FaultStore) Put(id string, version uint64, data []byte) error {
	cfg := f.plan.Config()
	if f.plan.Decide("store.put.latency", cfg.StoreLatency) {
		time.Sleep(cfg.LatencySpike)
	}
	if f.plan.Decide("store.put.err", cfg.StorePutErr) {
		return fmt.Errorf("%w: store write failed", ErrInjected)
	}
	if cfg.DropAckedPuts && f.plan.Decide("store.put.drop", cfg.DropAckedPutsRate) {
		// The injected bug: ack the write, persist nothing. The caller
		// marks the checkpoint durable; the invariant checker must
		// catch the loss when a failover needs this blob.
		f.mu.Lock()
		if version > f.dropped[id] {
			f.dropped[id] = version
		}
		f.mu.Unlock()
		return nil
	}
	err := f.backend.Put(id, version, data)
	if err == nil {
		f.mu.Lock()
		hist := f.history[id]
		if n := len(hist); n > 0 && version <= hist[n-1] {
			f.violations = append(f.violations, fmt.Sprintf(
				"store version regression: %s accepted Put v%d after v%d", id, version, hist[n-1]))
		}
		f.history[id] = append(hist, version)
		f.mu.Unlock()
	}
	return err
}

// Get implements store.Store with injected read faults. Faults on the
// read path are guaranteed transient: after a faulted Get, the next
// Get of the same ID passes clean. That matches the faults being
// modeled (a torn page, an NFS hiccup) and matters for correctness of
// the harness itself — the server deletes a blob only after TWO
// consecutive bad reads (a reproducible corruption), so a fault store
// that could fault twice in a row would make the server destroy a
// durable checkpoint over what was supposed to be a transient glitch,
// and the campaign would report a loss the tier never caused.
func (f *FaultStore) Get(id string) ([]byte, uint64, error) {
	cfg := f.plan.Config()
	if f.plan.Decide("store.get.latency", cfg.StoreLatency) {
		time.Sleep(cfg.LatencySpike)
	}
	f.mu.Lock()
	skip := f.getFaulted[id]
	if skip {
		delete(f.getFaulted, id)
	}
	f.mu.Unlock()
	if !skip && f.plan.Decide("store.get.err", cfg.StoreGetErr) {
		f.markGetFaulted(id)
		return nil, 0, fmt.Errorf("%w: store read failed", ErrInjected)
	}
	data, version, err := f.backend.Get(id)
	if err != nil {
		return nil, 0, err
	}
	if fire, v := f.plan.DecideValue("store.get.corrupt", cfg.StoreCorrupt); !skip && fire && len(data) > 0 {
		f.markGetFaulted(id)
		bad := make([]byte, len(data))
		copy(bad, data)
		// Alternate deterministically between a torn (truncated) read
		// and a bit flip, both positioned by the same roll.
		pos := int(v*float64(1<<20)) % len(data)
		if pos < 0 {
			pos = 0
		}
		if int(v*float64(1<<24))%2 == 0 && pos > 0 {
			bad = bad[:pos] // torn read
		} else {
			bad[pos] ^= 0x41 // bit flips
		}
		return bad, version, nil
	}
	return data, version, nil
}

// markGetFaulted records that id's last Get was faulted, so the next
// one passes clean.
func (f *FaultStore) markGetFaulted(id string) {
	f.mu.Lock()
	f.getFaulted[id] = true
	f.mu.Unlock()
}

// Version implements store.Store (no faults: it is the cheap existence
// probe the write-through resync path depends on).
func (f *FaultStore) Version(id string) (uint64, error) { return f.backend.Version(id) }

// Delete implements store.Store.
func (f *FaultStore) Delete(id string) error { return f.backend.Delete(id) }

// List implements store.Store.
func (f *FaultStore) List() ([]store.Entry, error) { return f.backend.List() }

// Violations returns store-level invariant violations observed so far
// (version regressions accepted by the backend).
func (f *FaultStore) Violations() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.violations...)
}

// PutHistory returns the ordered successful Put versions for id.
func (f *FaultStore) PutHistory(id string) []uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]uint64(nil), f.history[id]...)
}
