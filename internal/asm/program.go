package asm

import (
	"fmt"
	"strings"

	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

// Operand is one concrete operand of an assembled instruction, parallel to
// the instruction descriptor's Args.
type Operand struct {
	// Arg points at the corresponding argument descriptor.
	Arg *isa.ArgDesc
	// Reg is the architectural register index for register operands.
	Reg int
	// Val is the resolved immediate value (absolute for FmtI/FmtU/jalr,
	// PC-relative for conditional branches and jal).
	Val int64
	// expr holds the unresolved expression until the second pass.
	expr *operandExpr
	// Text is the source spelling, for display.
	Text string
}

// Instruction is one assembled machine instruction at a fixed code index.
type Instruction struct {
	// Desc is the instruction's ISA descriptor.
	Desc *isa.Desc
	// Ops are the operands, parallel to Desc.Args.
	Ops []Operand
	// Index is the instruction's position in the code segment; code
	// addresses are instruction indices (paper §III-B).
	Index int
	// Line is the 1-based source line, linking the instruction back to
	// the editor (paper Fig. 5).
	Line int
}

// Op returns the operand bound to the named argument, or nil.
func (in *Instruction) Op(name string) *Operand {
	for i := range in.Ops {
		if in.Ops[i].Arg.Name == name {
			return &in.Ops[i]
		}
	}
	return nil
}

// String renders the instruction in canonical assembly syntax.
func (in *Instruction) String() string {
	var sb strings.Builder
	sb.WriteString(in.Desc.Name)
	switch in.Desc.Format {
	case isa.FmtNone:
	case isa.FmtLoad:
		fmt.Fprintf(&sb, " %s, %d(%s)", in.opText("rd"), in.immVal(), in.opText("rs1"))
	case isa.FmtStore:
		fmt.Fprintf(&sb, " %s, %d(%s)", in.opText("rs2"), in.immVal(), in.opText("rs1"))
	default:
		sb.WriteByte(' ')
		for i := range in.Ops {
			if i > 0 {
				sb.WriteString(", ")
			}
			op := &in.Ops[i]
			if op.Arg.Kind == isa.ArgRegInt || op.Arg.Kind == isa.ArgRegFloat {
				sb.WriteString(op.Text)
			} else if op.expr != nil {
				sb.WriteString(op.expr.String())
			} else {
				fmt.Fprintf(&sb, "%d", op.Val)
			}
		}
	}
	return sb.String()
}

func (in *Instruction) opText(name string) string {
	if op := in.Op(name); op != nil {
		return op.Text
	}
	return "?"
}

func (in *Instruction) immVal() int64 {
	if op := in.Op("imm"); op != nil {
		return op.Val
	}
	return 0
}

// DataElem is one element of a data directive; Size bytes wide, holding
// either a resolved value or an expression awaiting label addresses.
type DataElem struct {
	Size  int
	Val   int64
	Float bool
	FVal  float64
	expr  *operandExpr
}

// DataItem is one allocation unit in the data image: optional labels, an
// alignment requirement and a sequence of elements (or a zero-filled skip).
type DataItem struct {
	Labels []string
	Align  int
	Elems  []DataElem
	Skip   int
	Line   int
	// Addr is assigned during allocation.
	Addr int
}

// Size returns the item's byte size.
func (d *DataItem) Size() int {
	n := d.Skip
	for _, e := range d.Elems {
		n += e.Size
	}
	return n
}

// elemTypeName guesses a display type for the memory window.
func (d *DataItem) elemTypeName() string {
	if len(d.Elems) == 0 {
		return "byte"
	}
	switch d.Elems[0].Size {
	case 1:
		return "byte"
	case 2:
		return "hword"
	case 8:
		if d.Elems[0].Float {
			return "double"
		}
		return "dword"
	default:
		if d.Elems[0].Float {
			return "float"
		}
		return "word"
	}
}

// Program is the output of the assembler: the code segment, the data image
// and the symbol table.
type Program struct {
	// Instructions is the code segment; the instruction at Instructions[i]
	// has code address i.
	Instructions []*Instruction
	// Data is the static data image, allocated into memory by Load.
	Data []*DataItem
	// Symbols maps every label to its value: code labels to instruction
	// indices, data labels to byte addresses (after Load).
	Symbols SymbolTable

	codeLabels map[string]int
	resolved   bool
}

// EntryPoint resolves the simulation entry: an empty name means the first
// instruction; otherwise the named label must exist in the code segment
// (paper §II-B: "The entry point can be set to the first instruction or
// any specified label").
func (p *Program) EntryPoint(label string) (int, error) {
	if label == "" {
		return 0, nil
	}
	idx, ok := p.codeLabels[label]
	if !ok {
		return 0, fmt.Errorf("asm: entry label %q not defined in code", label)
	}
	return idx, nil
}

// LabelAt returns the code labels defined at instruction index i.
func (p *Program) LabelAt(i int) []string {
	var out []string
	for name, idx := range p.codeLabels {
		if idx == i {
			out = append(out, name)
		}
	}
	return out
}

// MixStatic counts instructions by type: the static instruction mix shown
// by the runtime-statistics window (paper §II-D).
func (p *Program) MixStatic() map[isa.InstrType]int {
	mix := make(map[isa.InstrType]int)
	for _, in := range p.Instructions {
		mix[in.Desc.Type]++
	}
	return mix
}

// Load performs the between-pass memory allocation and the second pass
// (paper §III-C): data items are placed in memory with their alignment,
// label values become known, operand expressions are evaluated, and the
// data image is written into memory.
func (p *Program) Load(mem *memory.Main) error {
	if p.resolved {
		return fmt.Errorf("asm: program already loaded")
	}
	// Allocate data items and define their labels.
	for _, item := range p.Data {
		name := ""
		if len(item.Labels) > 0 {
			name = item.Labels[0]
		}
		addr, err := mem.Allocate(name, item.Size(), item.Align, item.elemTypeName())
		if err != nil {
			return err
		}
		item.Addr = addr
		for _, l := range item.Labels {
			p.Symbols[l] = int64(addr)
		}
	}
	// Second pass: fill in operand values.
	var errs ErrorList
	for _, in := range p.Instructions {
		for i := range in.Ops {
			op := &in.Ops[i]
			if op.expr == nil {
				continue
			}
			v, err := evalOperand(op.expr.toks, p.Symbols)
			if err != nil {
				errs = append(errs, &Error{Line: in.Line, Msg: err.Error()})
				continue
			}
			// Jump instructions use relative values, so the
			// instruction's position is subtracted from the
			// absolute label value (paper §III-C).
			if op.Arg.Kind == isa.ArgLabel && in.Desc.PCRelative {
				v -= int64(in.Index)
			}
			op.Val = v
			op.expr = nil
		}
	}
	// Resolve and write data elements.
	for _, item := range p.Data {
		addr := item.Addr
		for i := range item.Elems {
			e := &item.Elems[i]
			if e.expr != nil {
				v, err := evalOperand(e.expr.toks, p.Symbols)
				if err != nil {
					errs = append(errs, &Error{Line: item.Line, Msg: err.Error()})
					v = 0
				}
				e.Val = v
				e.expr = nil
			}
			buf := make([]byte, e.Size)
			bits := uint64(e.Val)
			if e.Float {
				bits = floatBits(e.FVal, e.Size)
			}
			for b := 0; b < e.Size; b++ {
				buf[b] = byte(bits >> (8 * b))
			}
			if exc := mem.WriteBytes(addr, buf); exc != nil {
				errs = append(errs, &Error{Line: item.Line, Msg: exc.Error()})
			}
			addr += e.Size
		}
	}
	p.resolved = true
	return errs.Err()
}

func floatBits(f float64, size int) uint64 {
	if size == 4 {
		return uint64(float32bits(float32(f)))
	}
	return float64bits(f)
}

// Disassemble renders the whole code segment with labels and indices, as
// shown in the simulator's fetch/decode panes.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	for i, in := range p.Instructions {
		for _, l := range p.LabelAt(i) {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "%4d:  %s\n", i, in.String())
	}
	return sb.String()
}
