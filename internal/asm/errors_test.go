package asm

import (
	"strings"
	"testing"
)

// Error-path coverage with exact-message assertions. The messages are
// part of the editor contract — the server streams them as diagnostics
// and the CLI prints them verbatim — so they are pinned here rather than
// matched loosely.

func wantErrMsg(t *testing.T, src, want string) {
	t.Helper()
	err := parseErr(t, src)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("Assemble(%q) error = %q, want it to contain %q", src, err.Error(), want)
	}
}

func TestParserErrorMessages(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"duplicate label", "foo:\nfoo:\n  ecall\n", `duplicate label "foo"`},
		{"unknown instruction", "frobnicate x1, x2\n", `unknown instruction "frobnicate"`},
		{"unknown register", "add x1, x2, x99\n", `unknown register "x99"`},
		{"non-numeric alignment", ".align zz\n", ".align expects a numeric power-of-two exponent"},
		{"bad alignment exponent", ".align 17\n", `bad alignment exponent "17"`},
		{"unsupported directive", ".bogus 1\n", `unsupported directive ".bogus"`},
		{"stray token", "add x1, x2, x3 extra\n", `add: operand "x3 extra" must be a register`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErrMsg(t, c.src, c.want) })
	}
}

func TestLexerErrorMessages(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unterminated block comment", "add x1, x1, x1\n/* never closed\n", "unterminated block comment"},
		{"unterminated string", ".ascii \"abc\n", "unterminated string"},
		{"unterminated character literal", "li x1, 'a\n", "unterminated character literal"},
		{"unexpected character", "add x1`, x1, x1\n", "unexpected character \"`\""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErrMsg(t, c.src, c.want) })
	}
}

func TestOperandExpressionErrorMessages(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined symbol", "li x1, no_such_symbol\n", `undefined symbol "no_such_symbol"`},
		{"missing close paren", "li x1, (1+2\n", `missing ')' in expression`},
		{"division by zero", "li x1, 4/0\n", "division by zero in operand expression"},
		{"trailing operator", "li x1, 1+\n", "unexpected end of expression"},
		{"bad percent operator", "lui x1, %mid(foo)\n", "expected hi or lo after %"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantErrMsg(t, c.src, c.want) })
	}
}

// TestErrorListAggregates pins that multiple offending lines all appear
// in one ErrorList, which is what lets the editor mark every line.
func TestErrorListAggregates(t *testing.T) {
	err := parseErr(t, "frobnicate x1\nblargh x2\n  ecall\n")
	msg := err.Error()
	if !strings.Contains(msg, `unknown instruction "frobnicate"`) ||
		!strings.Contains(msg, `unknown instruction "blargh"`) {
		t.Errorf("ErrorList should report both bad lines, got %q", msg)
	}
	if !strings.Contains(msg, "2 errors:") {
		t.Errorf("ErrorList header missing, got %q", msg)
	}
}
