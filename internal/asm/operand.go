package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// SymbolTable supplies label values to operand expressions. Code labels map
// to instruction indices, data labels to byte addresses (paper §III-B).
type SymbolTable map[string]int64

// operandExpr is an unresolved operand expression: a token slice evaluated
// against the symbol table in the second pass ("Expressions are evaluated
// by a simple evaluation program, which must have access to the label
// values", paper §III-C).
type operandExpr struct {
	toks []Token
	text string
}

func (o *operandExpr) String() string { return o.text }

// evalOperand evaluates an operand expression such as `arr+64`, `-12`,
// `%lo(x)` or `(N+1)*4`. Supported: + - * / %, unary minus, parentheses,
// integer literals, character literals (already lexed to numbers), label
// names, and the %hi/%lo relocation operators.
func evalOperand(toks []Token, syms SymbolTable) (int64, error) {
	p := &exprParser{toks: toks, syms: syms}
	v, err := p.parseAddSub()
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		t := p.toks[p.pos]
		return 0, fmt.Errorf("unexpected %q in expression", t.Text)
	}
	return v, nil
}

type exprParser struct {
	toks []Token
	pos  int
	syms SymbolTable
}

func (p *exprParser) peek() (Token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return Token{}, false
}

func (p *exprParser) parseAddSub() (int64, error) {
	v, err := p.parseMulDiv()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.peek()
		if !ok || (t.Kind != TokPlus && t.Kind != TokMinus) {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseMulDiv()
		if err != nil {
			return 0, err
		}
		if t.Kind == TokPlus {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (p *exprParser) parseMulDiv() (int64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		t, ok := p.peek()
		if !ok || (t.Kind != TokStar && t.Kind != TokSlash) {
			return v, nil
		}
		p.pos++
		rhs, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		if t.Kind == TokStar {
			v *= rhs
		} else {
			if rhs == 0 {
				return 0, fmt.Errorf("division by zero in operand expression")
			}
			v /= rhs
		}
	}
}

func (p *exprParser) parseUnary() (int64, error) {
	t, ok := p.peek()
	if !ok {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	switch t.Kind {
	case TokMinus:
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case TokPlus:
		p.pos++
		return p.parseUnary()
	case TokPercent:
		return p.parseReloc()
	case TokLParen:
		p.pos++
		v, err := p.parseAddSub()
		if err != nil {
			return 0, err
		}
		nt, ok := p.peek()
		if !ok || nt.Kind != TokRParen {
			return 0, fmt.Errorf("missing ')' in expression")
		}
		p.pos++
		return v, nil
	case TokNumber:
		p.pos++
		return parseIntLiteral(t.Text)
	case TokIdent, TokDir:
		// Dot-prefixed local labels (.L1) lex as directive tokens but
		// act as ordinary symbols in operand expressions.
		p.pos++
		v, ok := p.syms[t.Text]
		if !ok {
			return 0, fmt.Errorf("undefined symbol %q", t.Text)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("unexpected %q in expression", t.Text)
	}
}

// parseReloc handles GCC-style %hi(sym) / %lo(sym) operators. The pair is
// defined so that `lui rd, %hi(x)` followed by `addi rd, rd, %lo(x)`
// reconstructs x exactly, accounting for %lo's sign extension:
//
//	hi = (x + 0x800) >> 12,  lo = x - (hi << 12)
func (p *exprParser) parseReloc() (int64, error) {
	p.pos++ // consume '%'
	name, ok := p.peek()
	if !ok || name.Kind != TokIdent || (name.Text != "hi" && name.Text != "lo") {
		return 0, fmt.Errorf("expected hi or lo after %%")
	}
	p.pos++
	lp, ok := p.peek()
	if !ok || lp.Kind != TokLParen {
		return 0, fmt.Errorf("expected '(' after %%%s", name.Text)
	}
	p.pos++
	v, err := p.parseAddSub()
	if err != nil {
		return 0, err
	}
	rp, ok := p.peek()
	if !ok || rp.Kind != TokRParen {
		return 0, fmt.Errorf("missing ')' after %%%s", name.Text)
	}
	p.pos++
	hi := (v + 0x800) >> 12
	if name.Text == "hi" {
		return hi, nil
	}
	return v - (hi << 12), nil
}

// parseIntLiteral parses decimal, hex (0x), binary (0b) and octal (0o)
// integer literals.
func parseIntLiteral(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err == nil {
		return v, nil
	}
	// strconv rejects "0b..." on some bases spellings; normalize and retry.
	ls := strings.ToLower(s)
	if strings.HasPrefix(ls, "0b") {
		u, err2 := strconv.ParseUint(ls[2:], 2, 64)
		if err2 == nil {
			return int64(u), nil
		}
	}
	// Large unsigned hex constants (e.g. 0xFFFFFFFF).
	u, uerr := strconv.ParseUint(s, 0, 64)
	if uerr == nil {
		return int64(u), nil
	}
	return 0, fmt.Errorf("bad integer literal %q", s)
}

// parseFloatLiteral parses a floating-point literal for .float/.double.
func parseFloatLiteral(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
