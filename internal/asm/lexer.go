// Package asm implements the simulator's two-pass assembler (paper §III-C):
// the first pass tokenizes the program text into language units and
// processes instructions and memory directives; memory allocation happens
// between the passes; the second pass fills in operand values that depend
// on label addresses, including arithmetic expressions such as `arr+64`.
package asm

import (
	"fmt"
	"strings"
)

// TokKind classifies one language unit.
type TokKind uint8

// Token kinds.
const (
	TokIdent  TokKind = iota // mnemonic, label or symbol name
	TokDir                   // directive (leading '.')
	TokNumber                // integer or float literal
	TokString                // quoted string (for .ascii and friends)
	TokComma
	TokColon
	TokLParen
	TokRParen
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent // %hi / %lo relocation operators
	TokNewline
)

// Token is one language unit with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int // 1-based
	Col  int // 1-based
}

// Error is a source-located assembler diagnostic, used for the editor's
// error highlighting (paper Fig. 7).
type Error struct {
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// ErrorList collects all diagnostics from an assembly run so the editor
// can mark every offending line, not just the first.
type ErrorList []*Error

// Error implements the error interface.
func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d errors:", len(l))
	for _, e := range l {
		sb.WriteString("\n  ")
		sb.WriteString(e.Error())
	}
	return sb.String()
}

// Err returns the list as an error, or nil when empty.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

// Lex tokenizes assembly source. Comments run from '#' or "//" to the end
// of the line; "/* */" blocks are also supported. Every physical line ends
// with a TokNewline token so the parser can recover per line.
func Lex(src string) ([]Token, ErrorList) {
	var toks []Token
	var errs ErrorList
	line, col := 1, 1
	i := 0
	emit := func(kind TokKind, text string, c int) {
		toks = append(toks, Token{Kind: kind, Text: text, Line: line, Col: c})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			emit(TokNewline, "\n", col)
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			col += 2
			for i < len(src) && !(src[i] == '*' && i+1 < len(src) && src[i+1] == '/') {
				if src[i] == '\n' {
					emit(TokNewline, "\n", col)
					line++
					col = 0
				}
				i++
				col++
			}
			if i >= len(src) {
				errs = append(errs, &Error{Line: line, Col: col, Msg: "unterminated block comment"})
			} else {
				i += 2
				col += 2
			}
		case c == '"':
			start, startCol := i, col
			i++
			col++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					esc, n := unescape(src[i:])
					sb.WriteString(esc)
					i += n
					col += n
					continue
				}
				if src[i] == '"' {
					closed = true
					i++
					col++
					break
				}
				if src[i] == '\n' {
					break
				}
				sb.WriteByte(src[i])
				i++
				col++
			}
			if !closed {
				errs = append(errs, &Error{Line: line, Col: startCol,
					Msg: fmt.Sprintf("unterminated string %q", src[start:min(i, start+12)])})
			}
			emit(TokString, sb.String(), startCol)
		case c == ',':
			emit(TokComma, ",", col)
			i++
			col++
		case c == ':':
			emit(TokColon, ":", col)
			i++
			col++
		case c == '(':
			emit(TokLParen, "(", col)
			i++
			col++
		case c == ')':
			emit(TokRParen, ")", col)
			i++
			col++
		case c == '+':
			emit(TokPlus, "+", col)
			i++
			col++
		case c == '-':
			emit(TokMinus, "-", col)
			i++
			col++
		case c == '*':
			emit(TokStar, "*", col)
			i++
			col++
		case c == '/':
			emit(TokSlash, "/", col)
			i++
			col++
		case c == '%':
			emit(TokPercent, "%", col)
			i++
			col++
		case isDigit(c):
			start, startCol := i, col
			for i < len(src) && isNumChar(src[i]) {
				i++
				col++
			}
			emit(TokNumber, src[start:i], startCol)
		case isIdentStart(c):
			start, startCol := i, col
			for i < len(src) && isIdentChar(src[i]) {
				i++
				col++
			}
			text := src[start:i]
			if text[0] == '.' {
				emit(TokDir, text, startCol)
			} else {
				emit(TokIdent, text, startCol)
			}
		case c == '\'':
			// Character literal: 'a' or '\n'.
			startCol := col
			i++
			col++
			var val byte
			if i < len(src) && src[i] == '\\' {
				esc, n := unescape(src[i:])
				if len(esc) > 0 {
					val = esc[0]
				}
				i += n
				col += n
			} else if i < len(src) {
				val = src[i]
				i++
				col++
			}
			if i < len(src) && src[i] == '\'' {
				i++
				col++
			} else {
				errs = append(errs, &Error{Line: line, Col: startCol, Msg: "unterminated character literal"})
			}
			emit(TokNumber, fmt.Sprintf("%d", val), startCol)
		default:
			errs = append(errs, &Error{Line: line, Col: col,
				Msg: fmt.Sprintf("unexpected character %q", string(c))})
			i++
			col++
		}
	}
	if len(toks) == 0 || toks[len(toks)-1].Kind != TokNewline {
		emit(TokNewline, "\n", col)
	}
	return toks, errs
}

// unescape decodes one backslash escape at the start of s, returning the
// decoded text and the number of input bytes consumed.
func unescape(s string) (string, int) {
	if len(s) < 2 {
		return "\\", 1
	}
	switch s[1] {
	case 'n':
		return "\n", 2
	case 't':
		return "\t", 2
	case 'r':
		return "\r", 2
	case '0':
		return "\x00", 2
	case '\\':
		return "\\", 2
	case '"':
		return "\"", 2
	case '\'':
		return "'", 2
	default:
		return string(s[1]), 2
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNumChar(c byte) bool {
	return isDigit(c) || c == 'x' || c == 'X' || c == 'b' || c == 'B' ||
		(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') || c == '.'
}

func isIdentStart(c byte) bool {
	return c == '.' || c == '_' || c == '$' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
