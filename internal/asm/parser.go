package asm

import (
	"fmt"
	"math"
	"strings"

	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

func float32bits(f float32) uint32 { return math.Float32bits(f) }
func float64bits(f float64) uint64 { return math.Float64bits(f) }

// section tracks whether statements assemble into code or data.
type section uint8

const (
	secText section = iota
	secData
)

// parser holds the first-pass state.
type parser struct {
	set  *isa.Set
	regs *isa.RegisterFile
	toks []Token
	pos  int
	errs ErrorList

	prog    *Program
	sect    section
	pending []string // labels awaiting their statement
	curLine int
}

// Parse runs the assembler's first pass: tokenization and processing of
// instructions and memory directives (paper §III-C). The returned program
// still needs Load to allocate memory and resolve label expressions.
func Parse(src string, set *isa.Set, regs *isa.RegisterFile) (*Program, error) {
	toks, lexErrs := Lex(src)
	p := &parser{
		set:  set,
		regs: regs,
		toks: toks,
		errs: lexErrs,
		prog: &Program{
			Symbols:    make(SymbolTable),
			codeLabels: make(map[string]int),
		},
	}
	for p.pos < len(p.toks) {
		p.parseLine()
	}
	// Code labels are known after the first pass.
	for name, idx := range p.prog.codeLabels {
		p.prog.Symbols[name] = int64(idx)
	}
	return p.prog, p.errs.Err()
}

// Assemble is the full pipeline: parse, allocate, resolve and write the
// data image into memory.
func Assemble(src string, set *isa.Set, regs *isa.RegisterFile, mem *memory.Main) (*Program, error) {
	prog, err := Parse(src, set, regs)
	if err != nil {
		return nil, err
	}
	if err := prog.Load(mem); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) errf(tok Token, format string, args ...any) {
	p.errs = append(p.errs, &Error{Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	} else {
		p.pos = len(p.toks)
	}
	return t
}

// skipLine advances past the next newline (error recovery).
func (p *parser) skipLine() {
	for p.pos < len(p.toks) {
		if p.next().Kind == TokNewline {
			return
		}
	}
}

// lineTokens collects the tokens up to the newline, consuming it.
func (p *parser) lineTokens() []Token {
	start := p.pos
	for p.pos < len(p.toks) && p.toks[p.pos].Kind != TokNewline {
		p.pos++
	}
	line := p.toks[start:p.pos]
	if p.pos < len(p.toks) {
		p.pos++ // newline
	}
	return line
}

func (p *parser) parseLine() {
	// Labels: ident ':' (possibly several on one line). GAS-style local
	// labels (.L1) lex as directive tokens but define labels all the same.
	for p.pos+1 < len(p.toks) &&
		(p.toks[p.pos].Kind == TokIdent || p.toks[p.pos].Kind == TokDir) &&
		p.toks[p.pos+1].Kind == TokColon {
		label := p.toks[p.pos].Text
		_, dupSym := p.prog.Symbols[label]
		_, dupCode := p.prog.codeLabels[label]
		if dupSym || dupCode || p.isPending(label) {
			p.errf(p.toks[p.pos], "duplicate label %q", label)
		} else {
			p.pending = append(p.pending, label)
		}
		p.pos += 2
	}
	t := p.peek()
	switch t.Kind {
	case TokNewline:
		p.pos++
	case TokDir:
		p.parseDirective()
	case TokIdent:
		p.parseInstruction()
	default:
		p.errf(t, "expected instruction, directive or label, got %q", t.Text)
		p.skipLine()
	}
}

// isPending reports whether a label is already waiting to be bound, so
// `foo:` directly followed by `foo:` is a duplicate even though neither
// has reached the symbol table yet.
func (p *parser) isPending(label string) bool {
	for _, l := range p.pending {
		if l == label {
			return true
		}
	}
	return false
}

// attachCodeLabels binds pending labels to the next instruction index.
func (p *parser) attachCodeLabels() {
	for _, l := range p.pending {
		p.prog.codeLabels[l] = len(p.prog.Instructions)
	}
	p.pending = p.pending[:0]
}

// dataItemFor returns a data item for the current directive, consuming
// pending labels.
func (p *parser) dataItemFor(line int) *DataItem {
	item := &DataItem{Labels: append([]string(nil), p.pending...), Align: 1, Line: line}
	p.pending = p.pending[:0]
	p.prog.Data = append(p.prog.Data, item)
	return item
}

// splitOperands splits the remainder of the line into comma-separated
// operand token groups (respecting parentheses).
func splitOperands(line []Token) [][]Token {
	var groups [][]Token
	depth := 0
	cur := []Token{}
	for _, t := range line {
		switch t.Kind {
		case TokLParen:
			depth++
			cur = append(cur, t)
		case TokRParen:
			depth--
			cur = append(cur, t)
		case TokComma:
			if depth == 0 {
				groups = append(groups, cur)
				cur = []Token{}
				continue
			}
			cur = append(cur, t)
		default:
			cur = append(cur, t)
		}
	}
	if len(cur) > 0 || len(groups) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

func groupText(g []Token) string {
	var sb strings.Builder
	for i, t := range g {
		if i > 0 && needSpace(g[i-1], t) {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.Text)
	}
	return sb.String()
}

func needSpace(a, b Token) bool {
	return (a.Kind == TokIdent || a.Kind == TokNumber) &&
		(b.Kind == TokIdent || b.Kind == TokNumber)
}

// ---------------------------------------------------------------------------
// Directives
// ---------------------------------------------------------------------------

func (p *parser) parseDirective() {
	dir := p.next()
	line := p.lineTokens()
	name := strings.ToLower(dir.Text)
	switch name {
	case ".text":
		p.sect = secText
	case ".data", ".bss", ".rodata":
		p.sect = secData
	case ".section":
		// `.section .rodata` etc. — data unless it names .text.
		if len(line) > 0 && strings.Contains(line[0].Text, "text") {
			p.sect = secText
		} else {
			p.sect = secData
		}
	case ".byte":
		p.dataElems(dir, line, 1)
	case ".hword", ".half", ".short", ".2byte":
		p.dataElems(dir, line, 2)
	case ".word", ".long", ".4byte":
		p.dataElems(dir, line, 4)
	case ".dword", ".quad", ".8byte":
		p.dataElems(dir, line, 8)
	case ".float":
		p.floatElems(dir, line, 4)
	case ".double":
		p.floatElems(dir, line, 8)
	case ".ascii":
		p.stringData(dir, line, false)
	case ".asciiz", ".string":
		p.stringData(dir, line, true)
	case ".zero", ".skip", ".space":
		p.skipData(dir, line)
	case ".align", ".p2align":
		// Power-of-two exponent (paper Listing 2: ".align 4" gives
		// 16-byte alignment).
		if len(line) < 1 || line[0].Kind != TokNumber {
			p.errf(dir, "%s expects a numeric power-of-two exponent", name)
			return
		}
		n, err := parseIntLiteral(line[0].Text)
		if err != nil || n < 0 || n > 16 {
			p.errf(dir, "bad alignment exponent %q", line[0].Text)
			return
		}
		item := p.dataItemFor(dir.Line)
		item.Align = 1 << n
	case ".balign":
		if len(line) < 1 || line[0].Kind != TokNumber {
			p.errf(dir, ".balign expects a byte count")
			return
		}
		n, err := parseIntLiteral(line[0].Text)
		if err != nil || n <= 0 || n > 65536 || n&(n-1) != 0 {
			p.errf(dir, "bad alignment %q", line[0].Text)
			return
		}
		item := p.dataItemFor(dir.Line)
		item.Align = int(n)
	case ".equ", ".set":
		groups := splitOperands(line)
		if len(groups) != 2 || len(groups[0]) != 1 || groups[0][0].Kind != TokIdent {
			p.errf(dir, "%s expects `name, expression`", name)
			return
		}
		v, err := evalOperand(groups[1], p.prog.Symbols)
		if err != nil {
			p.errf(dir, "%s: %v", name, err)
			return
		}
		p.prog.Symbols[groups[0][0].Text] = v
	case ".globl", ".global", ".type", ".size", ".file", ".ident",
		".option", ".attribute", ".local", ".weak", ".comm", ".addrsig",
		".addrsig_sym", ".cfi_startproc", ".cfi_endproc", ".cfi_offset",
		".cfi_def_cfa_offset", ".cfi_restore", ".cfi_def_cfa":
		// Linkage and debug directives carry no meaning for the
		// simulator; the output filter also strips them (paper §III-C).
	default:
		p.errf(dir, "unsupported directive %q", dir.Text)
	}
}

// dataElems parses `.word 1, 2, label+4` style directives.
func (p *parser) dataElems(dir Token, line []Token, size int) {
	item := p.dataItemFor(dir.Line)
	if item.Align < size {
		item.Align = size
	}
	groups := splitOperands(line)
	if len(groups) == 0 {
		p.errf(dir, "%s expects at least one value", dir.Text)
		return
	}
	for _, g := range groups {
		if len(g) == 0 {
			p.errf(dir, "empty element in %s", dir.Text)
			continue
		}
		// Try immediate evaluation; defer to pass 2 when it uses labels.
		if v, err := evalOperand(g, p.prog.Symbols); err == nil {
			item.Elems = append(item.Elems, DataElem{Size: size, Val: v})
		} else {
			item.Elems = append(item.Elems, DataElem{
				Size: size,
				expr: &operandExpr{toks: append([]Token(nil), g...), text: groupText(g)},
			})
		}
	}
}

func (p *parser) floatElems(dir Token, line []Token, size int) {
	item := p.dataItemFor(dir.Line)
	if item.Align < size {
		item.Align = size
	}
	groups := splitOperands(line)
	for _, g := range groups {
		neg := false
		i := 0
		if len(g) > 0 && (g[0].Kind == TokMinus || g[0].Kind == TokPlus) {
			neg = g[0].Kind == TokMinus
			i = 1
		}
		if len(g) != i+1 || g[i].Kind != TokNumber {
			p.errf(dir, "bad floating-point literal in %s", dir.Text)
			continue
		}
		f, err := parseFloatLiteral(g[i].Text)
		if err != nil {
			p.errf(dir, "bad floating-point literal %q", g[i].Text)
			continue
		}
		if neg {
			f = -f
		}
		item.Elems = append(item.Elems, DataElem{Size: size, Float: true, FVal: f})
	}
}

func (p *parser) stringData(dir Token, line []Token, zeroTerm bool) {
	item := p.dataItemFor(dir.Line)
	if len(line) != 1 || line[0].Kind != TokString {
		p.errf(dir, "%s expects one string literal", dir.Text)
		return
	}
	for _, b := range []byte(line[0].Text) {
		item.Elems = append(item.Elems, DataElem{Size: 1, Val: int64(b)})
	}
	if zeroTerm {
		item.Elems = append(item.Elems, DataElem{Size: 1, Val: 0})
	}
}

func (p *parser) skipData(dir Token, line []Token) {
	groups := splitOperands(line)
	if len(groups) < 1 {
		p.errf(dir, "%s expects a byte count", dir.Text)
		return
	}
	n, err := evalOperand(groups[0], p.prog.Symbols)
	if err != nil || n < 0 {
		p.errf(dir, "bad byte count in %s", dir.Text)
		return
	}
	item := p.dataItemFor(dir.Line)
	item.Skip = int(n)
}

// ---------------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------------

func (p *parser) parseInstruction() {
	mn := p.next()
	line := p.lineTokens()
	groups := splitOperands(line)
	p.expand(mn, groups, 0)
}

// expand resolves pseudo-instructions (possibly recursively) and assembles
// the final instruction. depth guards against cyclic pseudo definitions in
// user-loaded ISAs.
func (p *parser) expand(mn Token, groups [][]Token, depth int) {
	if depth > 4 {
		p.errf(mn, "pseudo-instruction expansion too deep for %q", mn.Text)
		return
	}
	name := strings.ToLower(mn.Text)

	if ps, ok := p.set.Pseudo(name); ok {
		if len(groups) != ps.Operands {
			p.errf(mn, "%s expects %d operands, got %d", name, ps.Operands, len(groups))
			return
		}
		for _, tmpl := range ps.Expansion {
			newMn := Token{Kind: TokIdent, Text: tmpl[0], Line: mn.Line, Col: mn.Col}
			var newGroups [][]Token
			for _, opTmpl := range tmpl[1:] {
				if strings.HasPrefix(opTmpl, "$") {
					idx := int(opTmpl[1] - '0')
					if idx < 0 || idx >= len(groups) {
						p.errf(mn, "bad operand substitution %q in pseudo %s", opTmpl, name)
						return
					}
					newGroups = append(newGroups, groups[idx])
				} else {
					kind := TokIdent
					if opTmpl[0] == '-' || (opTmpl[0] >= '0' && opTmpl[0] <= '9') {
						kind = TokNumber
					}
					newGroups = append(newGroups, []Token{{Kind: kind, Text: opTmpl, Line: mn.Line, Col: mn.Col}})
				}
			}
			p.expand(newMn, newGroups, depth+1)
		}
		return
	}

	desc, ok := p.set.Lookup(name)
	if !ok {
		p.errf(mn, "unknown instruction %q", mn.Text)
		return
	}
	p.assemble(mn, desc, groups)
}

// assemble binds operand groups to the descriptor's arguments according to
// its assembly format and appends the instruction to the code segment.
func (p *parser) assemble(mn Token, desc *isa.Desc, groups [][]Token) {
	p.attachCodeLabels()
	in := &Instruction{
		Desc:  desc,
		Index: len(p.prog.Instructions),
		Line:  mn.Line,
	}

	bindReg := func(argName string, g []Token) bool {
		arg := desc.Arg(argName)
		if arg == nil {
			p.errf(mn, "internal: %s has no argument %q", desc.Name, argName)
			return false
		}
		if len(g) != 1 || g[0].Kind != TokIdent {
			p.errf(mn, "%s: operand %q must be a register", desc.Name, groupText(g))
			return false
		}
		rd, ok := p.regs.Lookup(g[0].Text)
		if !ok {
			p.errf(g[0], "unknown register %q", g[0].Text)
			return false
		}
		wantClass := isa.RegInt
		if arg.Kind == isa.ArgRegFloat {
			wantClass = isa.RegFloat
		}
		if rd.Class != wantClass {
			p.errf(g[0], "%s: register %q has the wrong class for %s", desc.Name, g[0].Text, argName)
			return false
		}
		in.Ops = append(in.Ops, Operand{Arg: arg, Reg: rd.Index, Text: g[0].Text})
		return true
	}

	bindImm := func(argName string, g []Token) bool {
		arg := desc.Arg(argName)
		if arg == nil {
			p.errf(mn, "internal: %s has no argument %q", desc.Name, argName)
			return false
		}
		op := Operand{Arg: arg, Text: groupText(g)}
		if v, err := evalOperand(g, p.prog.Symbols); err == nil && !usesFutureSymbols(g, p.prog.Symbols) {
			op.Val = v
		} else {
			op.expr = &operandExpr{toks: append([]Token(nil), g...), text: groupText(g)}
		}
		in.Ops = append(in.Ops, op)
		return true
	}

	// splitAddress decomposes `imm(reg)`, `(reg)` or `imm` into its parts.
	splitAddress := func(g []Token) (immToks []Token, regTok *Token, ok bool) {
		// Find a trailing "( ident )".
		if len(g) >= 3 && g[len(g)-1].Kind == TokRParen &&
			g[len(g)-2].Kind == TokIdent && g[len(g)-3].Kind == TokLParen {
			return g[:len(g)-3], &g[len(g)-2], true
		}
		return g, nil, true
	}

	wrong := func(want string) {
		p.errf(mn, "%s expects operands `%s`", desc.Name, want)
	}

	switch desc.Format {
	case isa.FmtNone:
		if len(groups) != 0 {
			wrong("(none)")
			return
		}
	case isa.FmtR:
		if len(groups) != 3 {
			wrong("rd, rs1, rs2")
			return
		}
		if !bindReg("rd", groups[0]) || !bindReg("rs1", groups[1]) || !bindReg("rs2", groups[2]) {
			return
		}
	case isa.FmtR2:
		if len(groups) != 2 {
			wrong("rd, rs1")
			return
		}
		if !bindReg("rd", groups[0]) || !bindReg("rs1", groups[1]) {
			return
		}
	case isa.FmtR4:
		if len(groups) != 4 {
			wrong("rd, rs1, rs2, rs3")
			return
		}
		if !bindReg("rd", groups[0]) || !bindReg("rs1", groups[1]) ||
			!bindReg("rs2", groups[2]) || !bindReg("rs3", groups[3]) {
			return
		}
	case isa.FmtI:
		// jalr accepts `rd, rs1, imm`, `rd, imm(rs1)`, `rd, rs1` and `rs1`.
		if desc.Name == "jalr" {
			if !p.bindJalr(mn, desc, in, groups) {
				return
			}
			break
		}
		if len(groups) != 3 {
			wrong("rd, rs1, imm")
			return
		}
		if !bindReg("rd", groups[0]) || !bindReg("rs1", groups[1]) || !bindImm("imm", groups[2]) {
			return
		}
	case isa.FmtU:
		if len(groups) != 2 {
			wrong("rd, imm")
			return
		}
		if !bindReg("rd", groups[0]) || !bindImm("imm", groups[1]) {
			return
		}
	case isa.FmtLoad, isa.FmtStore:
		regArg := "rd"
		if desc.Format == isa.FmtStore {
			regArg = "rs2"
		}
		if len(groups) != 2 && len(groups) != 3 {
			wrong(regArg + ", imm(rs1)")
			return
		}
		if !bindReg(regArg, groups[0]) {
			return
		}
		immToks, regTok, _ := splitAddress(groups[1])
		// 3-operand GAS form `lw rd, sym, tmp` — the temp register is
		// advisory and ignored.
		if regTok == nil {
			if len(immToks) == 0 {
				wrong(regArg + ", imm(rs1)")
				return
			}
			// Bare symbol: base x0, absolute address immediate.
			if !bindImm("imm", immToks) {
				return
			}
			in.Ops = append(in.Ops, Operand{Arg: desc.Arg("rs1"), Reg: 0, Text: "x0"})
		} else {
			if len(immToks) == 0 {
				immToks = []Token{{Kind: TokNumber, Text: "0", Line: mn.Line, Col: mn.Col}}
			}
			if !bindImm("imm", immToks) {
				return
			}
			if !bindReg("rs1", []Token{*regTok}) {
				return
			}
		}
	case isa.FmtBranch:
		if len(groups) != 3 {
			wrong("rs1, rs2, label")
			return
		}
		if !bindReg("rs1", groups[0]) || !bindReg("rs2", groups[1]) || !bindImm("imm", groups[2]) {
			return
		}
	case isa.FmtJ:
		switch len(groups) {
		case 1:
			// `jal label` implies rd = ra.
			in.Ops = append(in.Ops, Operand{Arg: desc.Arg("rd"), Reg: isa.RegRA, Text: "ra"})
			if !bindImm("imm", groups[0]) {
				return
			}
		case 2:
			if !bindReg("rd", groups[0]) || !bindImm("imm", groups[1]) {
				return
			}
		default:
			wrong("rd, label")
			return
		}
	}
	p.prog.Instructions = append(p.prog.Instructions, in)
}

// bindJalr handles jalr's flexible source forms.
func (p *parser) bindJalr(mn Token, desc *isa.Desc, in *Instruction, groups [][]Token) bool {
	bindRegTok := func(argName string, t Token) bool {
		rd, ok := p.regs.Lookup(t.Text)
		if !ok || rd.Class != isa.RegInt {
			p.errf(t, "jalr: %q is not an integer register", t.Text)
			return false
		}
		in.Ops = append(in.Ops, Operand{Arg: desc.Arg(argName), Reg: rd.Index, Text: t.Text})
		return true
	}
	immZero := Operand{Arg: desc.Arg("imm"), Val: 0, Text: "0"}

	switch len(groups) {
	case 1: // jalr rs1  (rd = ra)
		in.Ops = append(in.Ops, Operand{Arg: desc.Arg("rd"), Reg: isa.RegRA, Text: "ra"})
		if len(groups[0]) != 1 {
			p.errf(mn, "jalr expects a register")
			return false
		}
		if !bindRegTok("rs1", groups[0][0]) {
			return false
		}
		in.Ops = append(in.Ops, immZero)
	case 2: // jalr rd, rs1  or  jalr rd, imm(rs1)
		if len(groups[0]) != 1 {
			p.errf(mn, "jalr expects a destination register")
			return false
		}
		if !bindRegTok("rd", groups[0][0]) {
			return false
		}
		g := groups[1]
		if len(g) >= 3 && g[len(g)-1].Kind == TokRParen && g[len(g)-2].Kind == TokIdent && g[len(g)-3].Kind == TokLParen {
			if !bindRegTok("rs1", g[len(g)-2]) {
				return false
			}
			immToks := g[:len(g)-3]
			if len(immToks) == 0 {
				in.Ops = append(in.Ops, immZero)
			} else {
				v, err := evalOperand(immToks, p.prog.Symbols)
				if err != nil {
					in.Ops = append(in.Ops, Operand{Arg: desc.Arg("imm"),
						expr: &operandExpr{toks: append([]Token(nil), immToks...), text: groupText(immToks)},
						Text: groupText(immToks)})
				} else {
					in.Ops = append(in.Ops, Operand{Arg: desc.Arg("imm"), Val: v, Text: groupText(immToks)})
				}
			}
		} else if len(g) == 1 && g[0].Kind == TokIdent {
			if !bindRegTok("rs1", g[0]) {
				return false
			}
			in.Ops = append(in.Ops, immZero)
		} else {
			p.errf(mn, "jalr: bad source operand %q", groupText(g))
			return false
		}
	case 3: // jalr rd, rs1, imm
		if len(groups[0]) != 1 || len(groups[1]) != 1 {
			p.errf(mn, "jalr expects registers")
			return false
		}
		if !bindRegTok("rd", groups[0][0]) || !bindRegTok("rs1", groups[1][0]) {
			return false
		}
		v, err := evalOperand(groups[2], p.prog.Symbols)
		if err != nil {
			in.Ops = append(in.Ops, Operand{Arg: desc.Arg("imm"),
				expr: &operandExpr{toks: append([]Token(nil), groups[2]...), text: groupText(groups[2])},
				Text: groupText(groups[2])})
		} else {
			in.Ops = append(in.Ops, Operand{Arg: desc.Arg("imm"), Val: v, Text: groupText(groups[2])})
		}
	default:
		p.errf(mn, "jalr expects 1-3 operands, got %d", len(groups))
		return false
	}
	return true
}

// usesFutureSymbols reports whether the expression references identifiers
// not yet in the symbol table — those must wait for the second pass even
// though evaluation with the current table happened to succeed (it could
// only succeed spuriously, so any identifier forces deferral).
func usesFutureSymbols(g []Token, syms SymbolTable) bool {
	for i := 0; i < len(g); i++ {
		t := g[i]
		if t.Kind == TokIdent || t.Kind == TokDir {
			if t.Text == "hi" || t.Text == "lo" {
				if i > 0 && g[i-1].Kind == TokPercent {
					continue
				}
			}
			if _, ok := syms[t.Text]; !ok {
				return true
			}
			// Even known symbols may move (data labels get their
			// final address at allocation), so defer all of them.
			return true
		}
	}
	return false
}
