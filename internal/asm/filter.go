package asm

import "strings"

// uselessDirectives are assembler-output directives that carry no meaning
// for the simulator and only reduce readability; the compiler-output
// filter strips them (paper §III-C: "the compiler output is passed through
// a filter that removes unnecessary directives, labels, and data").
var uselessDirectives = map[string]bool{
	".file": true, ".ident": true, ".option": true, ".attribute": true,
	".globl": true, ".global": true, ".type": true, ".size": true,
	".local": true, ".weak": true, ".addrsig": true, ".addrsig_sym": true,
	".cfi_startproc": true, ".cfi_endproc": true, ".cfi_offset": true,
	".cfi_def_cfa_offset": true, ".cfi_restore": true, ".cfi_def_cfa": true,
}

// FilterCompilerOutput removes directives, labels and sections that are
// redundant for the simulator from compiler-generated assembly, keeping
// instructions, memory definitions and referenced labels.
func FilterCompilerOutput(src string) string {
	lines := strings.Split(src, "\n")

	// First sweep: find referenced symbols (anything that appears outside
	// a label definition).
	referenced := map[string]bool{}
	for _, line := range lines {
		code := stripComment(line)
		trimmed := strings.TrimSpace(code)
		if trimmed == "" {
			continue
		}
		// Drop a leading "label:" definition, then collect identifiers.
		if i := strings.Index(trimmed, ":"); i >= 0 && isLabelDef(trimmed[:i]) {
			trimmed = trimmed[i+1:]
		}
		// Skip the mnemonic/directive itself; operand symbols (including
		// dot-prefixed local labels like .L1) count as references.
		trimmed = strings.TrimSpace(trimmed)
		if sp := strings.IndexAny(trimmed, " \t"); sp > 0 {
			trimmed = trimmed[sp:]
		} else {
			trimmed = ""
		}
		for _, word := range splitSymbols(trimmed) {
			referenced[word] = true
		}
	}

	var out []string
	for _, line := range lines {
		code := stripComment(line)
		trimmed := strings.TrimSpace(code)
		if trimmed == "" {
			continue
		}
		// Label-only line: keep only if referenced.
		if i := strings.Index(trimmed, ":"); i >= 0 && isLabelDef(trimmed[:i]) {
			label := strings.TrimSpace(trimmed[:i])
			rest := strings.TrimSpace(trimmed[i+1:])
			if rest == "" {
				if referenced[label] {
					out = append(out, label+":")
				}
				continue
			}
			if referenced[label] {
				out = append(out, label+":")
			}
			trimmed = rest
		}
		if strings.HasPrefix(trimmed, ".") {
			dir := trimmed
			if sp := strings.IndexAny(dir, " \t"); sp > 0 {
				dir = dir[:sp]
			}
			if uselessDirectives[strings.ToLower(dir)] {
				continue
			}
		}
		out = append(out, "\t"+trimmed)
	}
	return strings.Join(out, "\n") + "\n"
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func isLabelDef(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// splitSymbols extracts identifier-like words (including dot-prefixed
// local labels) from an instruction's operand text.
func splitSymbols(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		if isIdentStart(s[i]) {
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			out = append(out, s[i:j])
			i = j
			continue
		}
		i++
	}
	return out
}
