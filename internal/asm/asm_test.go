package asm

import (
	"strings"
	"testing"

	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

var (
	testSet  = isa.RV32IMF()
	testRegs = isa.NewRegisterFile()
)

func assemble(t *testing.T, src string) (*Program, *memory.Main) {
	t.Helper()
	mem := memory.New(memory.Config{Size: 64 * 1024, LoadLatency: 1, StoreLatency: 1, CallStackSize: 1024})
	prog, err := Assemble(src, testSet, testRegs, mem)
	if err != nil {
		t.Fatalf("Assemble failed: %v", err)
	}
	return prog, mem
}

func parseErr(t *testing.T, src string) error {
	t.Helper()
	mem := memory.New(memory.Config{Size: 64 * 1024, CallStackSize: 1024})
	_, err := Assemble(src, testSet, testRegs, mem)
	if err == nil {
		t.Fatalf("Assemble(%q) should have failed", src)
	}
	return err
}

func TestBasicRType(t *testing.T) {
	prog, _ := assemble(t, "add x3, x1, x2\n")
	if len(prog.Instructions) != 1 {
		t.Fatalf("got %d instructions", len(prog.Instructions))
	}
	in := prog.Instructions[0]
	if in.Desc.Name != "add" {
		t.Errorf("name = %s", in.Desc.Name)
	}
	if in.Op("rd").Reg != 3 || in.Op("rs1").Reg != 1 || in.Op("rs2").Reg != 2 {
		t.Errorf("registers = %d,%d,%d", in.Op("rd").Reg, in.Op("rs1").Reg, in.Op("rs2").Reg)
	}
}

func TestAbiRegisterNames(t *testing.T) {
	prog, _ := assemble(t, "add a0, sp, t6\n")
	in := prog.Instructions[0]
	if in.Op("rd").Reg != 10 || in.Op("rs1").Reg != 2 || in.Op("rs2").Reg != 31 {
		t.Errorf("ABI aliases resolved to %d,%d,%d", in.Op("rd").Reg, in.Op("rs1").Reg, in.Op("rs2").Reg)
	}
}

func TestImmediateForms(t *testing.T) {
	prog, _ := assemble(t, `
addi x1, x0, -42
addi x2, x0, 0x10
andi x3, x1, 0b101
`)
	if got := prog.Instructions[0].Op("imm").Val; got != -42 {
		t.Errorf("imm[0] = %d, want -42", got)
	}
	if got := prog.Instructions[1].Op("imm").Val; got != 16 {
		t.Errorf("imm[1] = %d, want 16", got)
	}
	if got := prog.Instructions[2].Op("imm").Val; got != 5 {
		t.Errorf("imm[2] = %d, want 5", got)
	}
}

func TestLoadStoreAddressing(t *testing.T) {
	prog, _ := assemble(t, `
lw x5, 8(x2)
sw x5, -4(x2)
lw x6, (x2)
`)
	lw := prog.Instructions[0]
	if lw.Op("rd").Reg != 5 || lw.Op("rs1").Reg != 2 || lw.Op("imm").Val != 8 {
		t.Errorf("lw parsed wrong: %+v", lw.String())
	}
	sw := prog.Instructions[1]
	if sw.Op("rs2").Reg != 5 || sw.Op("rs1").Reg != 2 || sw.Op("imm").Val != -4 {
		t.Errorf("sw parsed wrong: %s", sw.String())
	}
	if prog.Instructions[2].Op("imm").Val != 0 {
		t.Error("bare (reg) addressing should have imm 0")
	}
}

func TestBranchLabelsAreRelative(t *testing.T) {
	prog, _ := assemble(t, `
start:
  addi x1, x1, 1
  beq x1, x2, start
  bne x1, x2, end
  nop
end:
  nop
`)
	beq := prog.Instructions[1]
	if got := beq.Op("imm").Val; got != -1 {
		t.Errorf("backward branch offset = %d, want -1", got)
	}
	bne := prog.Instructions[2]
	if got := bne.Op("imm").Val; got != 2 {
		t.Errorf("forward branch offset = %d, want 2", got)
	}
}

func TestJalForms(t *testing.T) {
	prog, _ := assemble(t, `
main:
  jal func
  jal x0, main
func:
  ret
`)
	jal1 := prog.Instructions[0]
	if jal1.Op("rd").Reg != isa.RegRA {
		t.Error("1-operand jal must link ra")
	}
	if jal1.Op("imm").Val != 2 {
		t.Errorf("jal offset = %d, want 2", jal1.Op("imm").Val)
	}
	jal2 := prog.Instructions[1]
	if jal2.Op("rd").Reg != 0 || jal2.Op("imm").Val != -1 {
		t.Errorf("jal x0, main parsed wrong: rd=%d imm=%d", jal2.Op("rd").Reg, jal2.Op("imm").Val)
	}
	// ret expands to jalr x0, ra, 0.
	ret := prog.Instructions[2]
	if ret.Desc.Name != "jalr" || ret.Op("rd").Reg != 0 || ret.Op("rs1").Reg != isa.RegRA {
		t.Errorf("ret expansion wrong: %s", ret.String())
	}
}

func TestJalrForms(t *testing.T) {
	prog, _ := assemble(t, `
jalr x1, x5, 8
jalr x1, 4(x5)
jalr x1, x5
jalr x5
`)
	for i, want := range []struct {
		rd, rs1 int
		imm     int64
	}{{1, 5, 8}, {1, 5, 4}, {1, 5, 0}, {isa.RegRA, 5, 0}} {
		in := prog.Instructions[i]
		if in.Op("rd").Reg != want.rd || in.Op("rs1").Reg != want.rs1 || in.Op("imm").Val != want.imm {
			t.Errorf("jalr form %d: rd=%d rs1=%d imm=%d, want %+v",
				i, in.Op("rd").Reg, in.Op("rs1").Reg, in.Op("imm").Val, want)
		}
	}
}

func TestPseudoInstructions(t *testing.T) {
	prog, _ := assemble(t, `
nop
li t0, 1000
mv t1, t0
neg t2, t0
not t3, t0
seqz t4, t0
beqz t0, out
j out
out:
  ret
`)
	names := []string{"addi", "addi", "addi", "sub", "xori", "sltiu", "beq", "jal", "jalr"}
	if len(prog.Instructions) != len(names) {
		t.Fatalf("got %d instructions, want %d", len(prog.Instructions), len(names))
	}
	for i, want := range names {
		if prog.Instructions[i].Desc.Name != want {
			t.Errorf("instr %d = %s, want %s", i, prog.Instructions[i].Desc.Name, want)
		}
	}
	li := prog.Instructions[1]
	if li.Op("imm").Val != 1000 || li.Op("rs1").Reg != 0 || li.Op("rd").Reg != 5 {
		t.Errorf("li expansion wrong: %s", li.String())
	}
}

func TestPaperListing2MemoryDefinitions(t *testing.T) {
	// The exact example from the paper's Listing 2.
	prog, mem := assemble(t, `
x:
  .word 5          # integer variable x

.align 4
arr:
  .zero 64         # 64 bytes with 16B alignment

hello:
  .asciiz "Hello World"  # null-terminated string
`)
	xp, ok := mem.Lookup("x")
	if !ok {
		t.Fatal("x not allocated")
	}
	v, _ := mem.ReadWord(xp.Addr)
	if v != 5 {
		t.Errorf("x = %d, want 5", v)
	}
	arr, ok := mem.Lookup("arr")
	if !ok {
		t.Fatal("arr not allocated")
	}
	if arr.Addr%16 != 0 {
		t.Errorf("arr at %d, not 16-byte aligned", arr.Addr)
	}
	if arr.Size != 64 {
		t.Errorf("arr size = %d, want 64", arr.Size)
	}
	hp, ok := mem.Lookup("hello")
	if !ok {
		t.Fatal("hello not allocated")
	}
	b, _ := mem.ReadBytes(hp.Addr, 12)
	if string(b[:11]) != "Hello World" || b[11] != 0 {
		t.Errorf("hello = %q %v", string(b[:11]), b[11])
	}
	if prog.Symbols["arr"] != int64(arr.Addr) {
		t.Error("symbol table does not match allocation")
	}
}

func TestLabelArithmeticInOperands(t *testing.T) {
	// The paper's la x4, arr+64 example (§III-C).
	prog, mem := assemble(t, `
la x4, arr+64
la x5, arr + 4 * 2
.data
arr:
  .zero 128
`)
	arr, _ := mem.Lookup("arr")
	if got := prog.Instructions[0].Op("imm").Val; got != int64(arr.Addr+64) {
		t.Errorf("arr+64 = %d, want %d", got, arr.Addr+64)
	}
	if got := prog.Instructions[1].Op("imm").Val; got != int64(arr.Addr+8) {
		t.Errorf("arr+4*2 = %d, want %d", got, arr.Addr+8)
	}
}

func TestHiLoRelocations(t *testing.T) {
	prog, mem := assemble(t, `
lui a5, %hi(x)
addi a5, a5, %lo(x)
.data
x: .word 7
`)
	xp, _ := mem.Lookup("x")
	hi := prog.Instructions[0].Op("imm").Val
	lo := prog.Instructions[1].Op("imm").Val
	if (hi<<12)+lo != int64(xp.Addr) {
		t.Errorf("%%hi<<12 + %%lo = %d, want %d", (hi<<12)+lo, xp.Addr)
	}
}

func TestDataWithLabelReferences(t *testing.T) {
	// .word can reference labels (jump/data tables).
	_, mem := assemble(t, `
table:
  .word x, x+4
.align 2
x:
  .word 11, 22
`)
	tbl, _ := mem.Lookup("table")
	xp, _ := mem.Lookup("x")
	w0, _ := mem.ReadWord(tbl.Addr)
	w1, _ := mem.ReadWord(tbl.Addr + 4)
	if int(w0) != xp.Addr || int(w1) != xp.Addr+4 {
		t.Errorf("table = [%d, %d], want [%d, %d]", w0, w1, xp.Addr, xp.Addr+4)
	}
}

func TestDataDirectiveSizes(t *testing.T) {
	_, mem := assemble(t, `
b: .byte 1, 2
h: .hword 0x1234
w: .word -1
d: .dword 0x1122334455667788
f: .float 1.5
dd: .double -2.25
`)
	bp, _ := mem.Lookup("b")
	bb, _ := mem.ReadBytes(bp.Addr, 2)
	if bb[0] != 1 || bb[1] != 2 {
		t.Errorf(".byte = %v", bb)
	}
	hp, _ := mem.Lookup("h")
	hb, _ := mem.ReadBytes(hp.Addr, 2)
	if hb[0] != 0x34 || hb[1] != 0x12 {
		t.Errorf(".hword little-endian = %v", hb)
	}
	wp, _ := mem.Lookup("w")
	wv, _ := mem.ReadWord(wp.Addr)
	if wv != 0xFFFFFFFF {
		t.Errorf(".word -1 = %#x", wv)
	}
	dp, _ := mem.Lookup("d")
	db, _ := mem.ReadBytes(dp.Addr, 8)
	if db[0] != 0x88 || db[7] != 0x11 {
		t.Errorf(".dword bytes = %v", db)
	}
	fp, _ := mem.Lookup("f")
	fv, _ := mem.ReadWord(fp.Addr)
	if fv != float32bits(1.5) {
		t.Errorf(".float bits = %#x", fv)
	}
	ddp, _ := mem.Lookup("dd")
	lo, _ := mem.ReadWord(ddp.Addr)
	hi, _ := mem.ReadWord(ddp.Addr + 4)
	if uint64(lo)|uint64(hi)<<32 != float64bits(-2.25) {
		t.Errorf(".double bits = %#x %#x", hi, lo)
	}
}

func TestEquConstants(t *testing.T) {
	prog, _ := assemble(t, `
.equ N, 16
.set M, N*2
addi x1, x0, N
addi x2, x0, M
`)
	if prog.Instructions[0].Op("imm").Val != 16 {
		t.Error(".equ constant wrong")
	}
	if prog.Instructions[1].Op("imm").Val != 32 {
		t.Error(".set with expression wrong")
	}
}

func TestFloatRegisterOperands(t *testing.T) {
	prog, _ := assemble(t, `
fadd.s f1, f2, f3
flw fa0, 0(sp)
fmadd.s f0, f1, f2, f3
fcvt.w.s a0, fa0
`)
	if prog.Instructions[0].Op("rd").Reg != 1 {
		t.Error("fadd.s rd wrong")
	}
	if prog.Instructions[1].Op("rd").Reg != 10 || prog.Instructions[1].Op("rs1").Reg != 2 {
		t.Error("flw operands wrong")
	}
	if prog.Instructions[2].Op("rs3").Reg != 3 {
		t.Error("fmadd.s rs3 wrong")
	}
	if prog.Instructions[3].Op("rd").Reg != 10 {
		t.Error("fcvt.w.s int destination wrong")
	}
}

func TestRegisterClassMismatchRejected(t *testing.T) {
	err := parseErr(t, "fadd.s x1, x2, x3\n")
	if !strings.Contains(err.Error(), "class") {
		t.Errorf("error should mention register class: %v", err)
	}
	parseErr(t, "add f1, f2, f3\n")
}

func TestSyntaxErrorsReported(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"frobnicate x1, x2\n", "unknown instruction"},
		{"add x1, x2\n", "expects operands"},
		{"add x1, x2, x99\n", "unknown register"},
		{"beq x1, x2\n", "expects operands"},
		{"lw x1, nowhere_label\n", "undefined symbol"},
		{".word\n", "at least one value"},
		{".frobdir 1\n", "unsupported directive"},
	}
	for _, c := range cases {
		err := parseErr(t, c.src)
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Assemble(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	err := parseErr(t, "nop\nnop\nbogus_instr x1\n")
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should point at line 3: %v", err)
	}
}

func TestMultipleErrorsCollected(t *testing.T) {
	mem := memory.New(memory.Config{Size: 4096, CallStackSize: 0})
	_, err := Assemble("bogus1\nbogus2\n", testSet, testRegs, mem)
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error is %T, want ErrorList", err)
	}
	if len(el) != 2 {
		t.Errorf("collected %d errors, want 2", len(el))
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	parseErr(t, "dup:\nnop\ndup:\nnop\n")
}

func TestEntryPoint(t *testing.T) {
	prog, _ := assemble(t, `
setup:
  nop
main:
  nop
`)
	if e, err := prog.EntryPoint(""); err != nil || e != 0 {
		t.Errorf("default entry = %d, %v", e, err)
	}
	if e, err := prog.EntryPoint("main"); err != nil || e != 1 {
		t.Errorf("entry(main) = %d, %v", e, err)
	}
	if _, err := prog.EntryPoint("nope"); err == nil {
		t.Error("unknown entry label should fail")
	}
}

func TestCommentsEverywhere(t *testing.T) {
	prog, _ := assemble(t, `
# full line comment
add x1, x2, x3  # trailing comment
// C++ style
sub x1, x2, x3  // trailing
/* block
   comment */
and x1, x2, x3
`)
	if len(prog.Instructions) != 3 {
		t.Errorf("got %d instructions, want 3", len(prog.Instructions))
	}
}

func TestStaticMix(t *testing.T) {
	prog, _ := assemble(t, `
add x1, x2, x3
lw x1, 0(x2)
sw x1, 0(x2)
beq x1, x2, done
done:
  nop
`)
	mix := prog.MixStatic()
	if mix[isa.TypeArithmetic] != 2 || mix[isa.TypeLoad] != 1 ||
		mix[isa.TypeStore] != 1 || mix[isa.TypeBranch] != 1 {
		t.Errorf("mix = %v", mix)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog, _ := assemble(t, `
main:
  addi x1, x0, 5
  lw x2, 4(x1)
  beq x1, x2, main
`)
	dis := prog.Disassemble()
	for _, want := range []string{"main:", "addi x1, x0, 5", "lw x2, 4(x1)", "beq"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestFilterCompilerOutput(t *testing.T) {
	src := `
	.file	"test.c"
	.option nopic
	.attribute arch, "rv32i2p1"
	.text
	.align	1
	.globl	main
	.type	main, @function
main:
	addi	sp,sp,-16
	li	a0,0
	ret
	.size	main, .-main
	.ident	"GCC: 13.2.0"
`
	out := FilterCompilerOutput(src)
	for _, gone := range []string{".file", ".ident", ".globl", ".type", ".size", ".option", ".attribute"} {
		if strings.Contains(out, gone) {
			t.Errorf("filter left %q in:\n%s", gone, out)
		}
	}
	for _, kept := range []string{"addi", "li", "ret", ".text"} {
		if !strings.Contains(out, kept) {
			t.Errorf("filter removed %q from:\n%s", kept, out)
		}
	}
	// main is never referenced by an instruction here, so its label may
	// be dropped; but referenced labels must be kept:
	src2 := "main:\n\tj main\n"
	if !strings.Contains(FilterCompilerOutput(src2), "main:") {
		t.Error("filter must keep referenced labels")
	}
}

func TestCharLiterals(t *testing.T) {
	prog, _ := assemble(t, "li a0, 'A'\nli a1, '\\n'\n")
	if prog.Instructions[0].Op("imm").Val != 65 {
		t.Error("'A' should be 65")
	}
	if prog.Instructions[1].Op("imm").Val != 10 {
		t.Error("'\\n' should be 10")
	}
}

func TestSkipAndSpaceDirectives(t *testing.T) {
	_, mem := assemble(t, `
a: .skip 10
b: .space 6
c: .byte 9
`)
	ap, _ := mem.Lookup("a")
	bp, _ := mem.Lookup("b")
	cp, _ := mem.Lookup("c")
	if bp.Addr < ap.Addr+10 || cp.Addr < bp.Addr+6 {
		t.Errorf("skip allocation overlaps: a=%d b=%d c=%d", ap.Addr, bp.Addr, cp.Addr)
	}
}
