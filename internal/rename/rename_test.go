package rename

import (
	"testing"
	"testing/quick"

	"riscvsim/internal/expr"
	"riscvsim/internal/isa"
)

func TestAllocAndCommitFlow(t *testing.T) {
	f := NewFile(4)
	tag, prev, ok := f.Alloc(isa.RegInt, 5)
	if !ok || prev != NoTag {
		t.Fatalf("Alloc = (%d, %d, %v)", tag, prev, ok)
	}
	// The source lookup must now return the speculative copy, not ready.
	src := f.LookupSrc(isa.RegInt, 5)
	if src.Tag != tag || src.Valid {
		t.Errorf("LookupSrc = %+v, want tag %d not valid", src, tag)
	}
	f.SetValue(tag, expr.NewInt(42))
	if v, valid := f.Value(tag); !valid || v.Int() != 42 {
		t.Errorf("Value = %v/%v", v, valid)
	}
	f.Release(src.Tag)
	f.Commit(tag)
	if got := f.ArchValue(isa.RegInt, 5).Int(); got != 42 {
		t.Errorf("arch x5 = %d, want 42", got)
	}
	// After commit with no consumers, the register returns to the pool.
	if f.FreeCount() != 4 {
		t.Errorf("FreeCount = %d, want 4", f.FreeCount())
	}
	// Lookup now sees the architectural value directly.
	src = f.LookupSrc(isa.RegInt, 5)
	if src.Tag != NoTag || !src.Valid || src.Value.Int() != 42 {
		t.Errorf("post-commit LookupSrc = %+v", src)
	}
}

func TestRenameChainNewestWins(t *testing.T) {
	f := NewFile(8)
	t1, _, _ := f.Alloc(isa.RegInt, 3)
	t2, prev2, _ := f.Alloc(isa.RegInt, 3)
	if prev2 != t1 {
		t.Errorf("second rename prev = %d, want %d", prev2, t1)
	}
	f.SetValue(t1, expr.NewInt(1))
	f.SetValue(t2, expr.NewInt(2))
	src := f.LookupSrc(isa.RegInt, 3)
	if src.Tag != t2 || src.Value.Int() != 2 {
		t.Errorf("LookupSrc sees %+v, want newest copy %d", src, t2)
	}
	f.Release(src.Tag)
	// Commit in program order: t1 then t2.
	f.Commit(t1)
	if got := f.ArchValue(isa.RegInt, 3).Int(); got != 1 {
		t.Errorf("after commit t1, arch = %d, want 1", got)
	}
	f.Commit(t2)
	if got := f.ArchValue(isa.RegInt, 3).Int(); got != 2 {
		t.Errorf("after commit t2, arch = %d, want 2", got)
	}
	if f.FreeCount() != 8 {
		t.Errorf("FreeCount = %d, want 8", f.FreeCount())
	}
}

func TestConsumerHoldsRegisterAlive(t *testing.T) {
	f := NewFile(2)
	tag, _, _ := f.Alloc(isa.RegInt, 1)
	src := f.LookupSrc(isa.RegInt, 1) // consumer takes a reference
	f.SetValue(tag, expr.NewInt(7))
	f.Commit(tag)
	// Still referenced by the consumer: must not be freed.
	if f.FreeCount() != 1 {
		t.Errorf("FreeCount = %d, want 1 (consumer holds a ref)", f.FreeCount())
	}
	f.Release(src.Tag)
	if f.FreeCount() != 2 {
		t.Errorf("FreeCount = %d, want 2 after release", f.FreeCount())
	}
}

func TestAllocExhaustionStalls(t *testing.T) {
	f := NewFile(2)
	f.Alloc(isa.RegInt, 1)
	f.Alloc(isa.RegInt, 2)
	if _, _, ok := f.Alloc(isa.RegInt, 3); ok {
		t.Error("Alloc must fail when the rename file is exhausted")
	}
	if f.Stats().StallsEmpty != 1 {
		t.Errorf("StallsEmpty = %d, want 1", f.Stats().StallsEmpty)
	}
}

func TestSquashRestoresMapping(t *testing.T) {
	f := NewFile(8)
	t1, _, _ := f.Alloc(isa.RegInt, 3)
	f.SetValue(t1, expr.NewInt(10))
	t2, prev2, _ := f.Alloc(isa.RegInt, 3)
	// Mispredicted path: squash t2; the map must fall back to t1.
	f.Squash(t2, prev2)
	src := f.LookupSrc(isa.RegInt, 3)
	if src.Tag != t1 || src.Value.Int() != 10 {
		t.Errorf("after squash, LookupSrc = %+v, want tag %d value 10", src, t1)
	}
	f.Release(src.Tag)
	f.Commit(t1)
	if f.FreeCount() != 8 {
		t.Errorf("FreeCount = %d, want 8", f.FreeCount())
	}
}

func TestSquashChainYoungestFirst(t *testing.T) {
	f := NewFile(8)
	t1, p1, _ := f.Alloc(isa.RegInt, 4)
	t2, p2, _ := f.Alloc(isa.RegInt, 4)
	t3, p3, _ := f.Alloc(isa.RegInt, 4)
	// Flush all three, youngest first.
	f.Squash(t3, p3)
	f.Squash(t2, p2)
	f.Squash(t1, p1)
	src := f.LookupSrc(isa.RegInt, 4)
	if src.Tag != NoTag {
		t.Errorf("after full squash, map should be architectural, got tag %d", src.Tag)
	}
	if f.FreeCount() != 8 {
		t.Errorf("FreeCount = %d, want 8", f.FreeCount())
	}
}

func TestX0CommitIsDiscarded(t *testing.T) {
	f := NewFile(4)
	tag, _, _ := f.Alloc(isa.RegInt, isa.RegZero)
	f.SetValue(tag, expr.NewInt(99))
	f.Commit(tag)
	if got := f.ArchValue(isa.RegInt, isa.RegZero).Int(); got != 0 {
		t.Errorf("x0 = %d after commit, must stay 0", got)
	}
	f.SetArchValue(isa.RegInt, isa.RegZero, expr.NewInt(5))
	if got := f.ArchValue(isa.RegInt, isa.RegZero).Int(); got != 0 {
		t.Errorf("x0 = %d after SetArchValue, must stay 0", got)
	}
}

func TestIntAndFloatFilesAreSeparate(t *testing.T) {
	f := NewFile(8)
	ti, _, _ := f.Alloc(isa.RegInt, 7)
	tf, _, _ := f.Alloc(isa.RegFloat, 7)
	f.SetValue(ti, expr.NewInt(1))
	f.SetValue(tf, expr.NewFloat(2.5))
	f.Commit(ti)
	f.Commit(tf)
	if f.ArchValue(isa.RegInt, 7).Int() != 1 {
		t.Error("int x7 wrong")
	}
	if f.ArchValue(isa.RegFloat, 7).Float() != 2.5 {
		t.Error("float f7 wrong")
	}
}

func TestRenamedCopiesList(t *testing.T) {
	f := NewFile(8)
	t1, _, _ := f.Alloc(isa.RegInt, 6)
	t2, _, _ := f.Alloc(isa.RegInt, 6)
	copies := f.RenamedCopies(isa.RegInt, 6)
	if len(copies) != 2 {
		t.Fatalf("RenamedCopies = %v, want 2 entries", copies)
	}
	seen := map[int]bool{copies[0]: true, copies[1]: true}
	if !seen[t1] || !seen[t2] {
		t.Errorf("RenamedCopies = %v, want {%d, %d}", copies, t1, t2)
	}
}

func TestLiveView(t *testing.T) {
	regs := isa.NewRegisterFile()
	f := NewFile(8)
	tag, _, _ := f.Alloc(isa.RegInt, 10)
	f.SetValue(tag, expr.NewInt(123))
	views := f.LiveView(regs)
	if len(views) != 1 {
		t.Fatalf("LiveView has %d entries, want 1", len(views))
	}
	v := views[0]
	if v.Arch != "x10" || v.Value != "123" || !v.Valid || v.Tag != TagName(tag) {
		t.Errorf("view = %+v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFile(4)
	tag, _, _ := f.Alloc(isa.RegInt, 2)
	f.SetValue(tag, expr.NewInt(5))
	c := f.Clone()
	f.Commit(tag)
	// The clone must still see the speculative mapping.
	src := c.LookupSrc(isa.RegInt, 2)
	if src.Tag != tag {
		t.Errorf("clone LookupSrc tag = %d, want %d", src.Tag, tag)
	}
	c.Release(src.Tag)
}

// Property: any interleaving of alloc/commit/squash conserves registers —
// in-use + free always equals capacity, and fully draining returns
// everything to the free list.
func TestPropertyRegisterConservation(t *testing.T) {
	type step struct {
		Reg    uint8
		Commit bool
	}
	f := func(steps []step) bool {
		const capacity = 16
		file := NewFile(capacity)
		type live struct{ tag, prev int }
		var stack []live
		for _, s := range steps {
			st := file.Stats()
			if st.InUse+st.Free != capacity {
				return false
			}
			if s.Commit && len(stack) > 0 {
				// Commit the oldest (program order).
				l := stack[0]
				stack = stack[1:]
				file.SetValue(l.tag, expr.NewInt(1))
				file.Commit(l.tag)
			} else {
				tag, prev, ok := file.Alloc(isa.RegInt, int(s.Reg%31)+1)
				if !ok {
					continue
				}
				stack = append(stack, live{tag, prev})
			}
		}
		// Squash everything left, youngest first.
		for i := len(stack) - 1; i >= 0; i-- {
			file.Squash(stack[i].tag, stack[i].prev)
		}
		return file.FreeCount() == capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
