package rename

import (
	"riscvsim/internal/ckpt"
	"riscvsim/internal/isa"
)

// EncodeState writes the complete rename state: both architectural files,
// every speculative register (value, validity, back-pointer, reference
// count, lifecycle flags), the free list and both rename maps. Tags are
// plain indices into the speculative file, so the encoding carries no
// pointer identity.
func (f *File) EncodeState(w *ckpt.Writer) {
	w.Section(ckpt.SecRename)
	for i := range f.archInt {
		w.Value(f.archInt[i])
	}
	for i := range f.archFloat {
		w.Value(f.archFloat[i])
	}
	w.Int(len(f.spec))
	for i := range f.spec {
		s := &f.spec[i]
		w.Bool(s.inUse)
		if !s.inUse {
			continue
		}
		w.Value(s.value)
		w.Bool(s.valid)
		w.Byte(byte(s.archClass))
		w.Int(s.archIndex)
		w.Int(s.refs)
		w.Bool(s.committed)
		w.Bool(s.squashed)
	}
	w.Len(len(f.free))
	for _, tag := range f.free {
		w.Int(tag)
	}
	for i := range f.mapInt {
		w.Int(f.mapInt[i])
	}
	for i := range f.mapFloat {
		w.Int(f.mapFloat[i])
	}
	w.U64(f.allocs)
	w.U64(f.stallsEmpty)
}

// DecodeState applies an encoded rename state onto f, which must have
// been built with the same speculative file size.
func (f *File) DecodeState(r *ckpt.Reader) {
	r.Section(ckpt.SecRename)
	for i := range f.archInt {
		f.archInt[i] = r.Value()
	}
	for i := range f.archFloat {
		f.archFloat[i] = r.Value()
	}
	if n := r.Int(); r.Err() == nil && n != len(f.spec) {
		r.Corrupt("rename file of %d registers, machine has %d", n, len(f.spec))
		return
	}
	for i := range f.spec {
		s := &f.spec[i]
		*s = specReg{inUse: r.Bool()}
		if !s.inUse {
			continue
		}
		s.value = r.Value()
		s.valid = r.Bool()
		s.archClass = isa.RegClass(r.Byte())
		s.archIndex = r.Int()
		s.refs = r.Int()
		s.committed = r.Bool()
		s.squashed = r.Bool()
		if r.Err() != nil {
			return
		}
		if s.archIndex < 0 || s.archIndex >= isa.NumRegs || s.refs < 0 {
			r.Corrupt("speculative register %d: arch index %d / refs %d out of range", i, s.archIndex, s.refs)
			return
		}
	}
	nfree := r.Len(len(f.spec))
	f.free = f.free[:0]
	for i := 0; i < nfree && r.Err() == nil; i++ {
		tag := r.Int()
		if tag < 0 || tag >= len(f.spec) {
			r.Corrupt("free-list tag %d out of range", tag)
			return
		}
		f.free = append(f.free, tag)
	}
	readMap := func(m *[isa.NumRegs]int) {
		for i := range m {
			tag := r.Int()
			if r.Err() != nil {
				return
			}
			if tag != NoTag && (tag < 0 || tag >= len(f.spec)) {
				r.Corrupt("rename map tag %d out of range", tag)
				return
			}
			m[i] = tag
		}
	}
	readMap(&f.mapInt)
	readMap(&f.mapFloat)
	f.allocs = r.U64()
	f.stallsEmpty = r.U64()
}
