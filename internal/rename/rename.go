// Package rename implements register renaming: a speculative register file
// of configurable size, a rename map from architectural registers to their
// newest speculative copy, and reference counting, mirroring the paper's
// register representation (§III-B): "architectural registers use a list of
// all renamed copies, while renamed (speculative) registers hold a pointer
// to the corresponding architectural register".
package rename

import (
	"fmt"

	"riscvsim/internal/expr"
	"riscvsim/internal/isa"
)

// NoTag marks the absence of a speculative register.
const NoTag = -1

// specReg is one speculative (renamed) register.
type specReg struct {
	inUse bool
	// value holds the computed result once valid is true.
	value expr.Value
	valid bool
	// archClass/archIndex point back to the architectural register
	// (the paper's "pointer to the corresponding architectural
	// register").
	archClass isa.RegClass
	archIndex int
	// refs counts in-flight consumers that still hold the tag.
	refs int
	// committed is set when the value has been copied to the
	// architectural file; squashed when the producing instruction was
	// flushed.
	committed bool
	squashed  bool
}

// File combines the architectural register files with the speculative
// rename file.
type File struct {
	archInt   [isa.NumRegs]expr.Value
	archFloat [isa.NumRegs]expr.Value

	spec []specReg
	free []int

	// mapInt/mapFloat give the newest speculative copy of each
	// architectural register, or NoTag.
	mapInt   [isa.NumRegs]int
	mapFloat [isa.NumRegs]int

	// Statistics.
	allocs      uint64
	stallsEmpty uint64
}

// NewFile builds a rename file with size speculative registers (the
// "register rename file size" setting of the paper's Memory tab).
func NewFile(size int) *File {
	f := &File{spec: make([]specReg, size), free: make([]int, 0, size)}
	for i := size - 1; i >= 0; i-- {
		f.free = append(f.free, i)
	}
	for i := range f.mapInt {
		f.mapInt[i] = NoTag
		f.mapFloat[i] = NoTag
	}
	for i := range f.archInt {
		f.archInt[i] = expr.NewInt(0)
		f.archFloat[i] = expr.NewFloat(0)
	}
	return f
}

// Size returns the speculative file capacity.
func (f *File) Size() int { return len(f.spec) }

// FreeCount returns the number of unallocated speculative registers.
func (f *File) FreeCount() int { return len(f.free) }

// TagName renders a speculative tag for display ("tg7"), matching the
// GUI's renamed-register tags.
func TagName(tag int) string { return fmt.Sprintf("tg%d", tag) }

func (f *File) mapFor(class isa.RegClass) *[isa.NumRegs]int {
	if class == isa.RegInt {
		return &f.mapInt
	}
	return &f.mapFloat
}

func (f *File) archFor(class isa.RegClass) *[isa.NumRegs]expr.Value {
	if class == isa.RegInt {
		return &f.archInt
	}
	return &f.archFloat
}

// Alloc renames the destination register (class, idx): it allocates a
// speculative register, records the previous mapping (needed to undo on a
// flush) and installs the new mapping. ok is false when the rename file is
// exhausted, in which case decode must stall.
func (f *File) Alloc(class isa.RegClass, idx int) (tag, prev int, ok bool) {
	if len(f.free) == 0 {
		f.stallsEmpty++
		return NoTag, NoTag, false
	}
	tag = f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	m := f.mapFor(class)
	prev = m[idx]
	m[idx] = tag
	f.spec[tag] = specReg{
		inUse:     true,
		archClass: class,
		archIndex: idx,
		// The rename map itself holds one reference.
		refs: 1,
	}
	f.allocs++
	return tag, prev, true
}

// SrcRef is the result of a source-operand lookup: either an immediate
// architectural value or a speculative tag (whose value may not be ready).
type SrcRef struct {
	// Tag is the speculative register, or NoTag when the architectural
	// value is current.
	Tag int
	// Value is the operand value; meaningful when Valid.
	Value expr.Value
	// Valid reports whether Value is available now.
	Valid bool
}

// LookupSrc resolves a source operand. If a speculative copy exists, the
// returned SrcRef carries its tag and a reference is taken (the consumer
// must eventually call Release). Otherwise the committed architectural
// value is returned directly.
func (f *File) LookupSrc(class isa.RegClass, idx int) SrcRef {
	m := f.mapFor(class)
	if tag := m[idx]; tag != NoTag {
		s := &f.spec[tag]
		s.refs++
		return SrcRef{Tag: tag, Value: s.value, Valid: s.valid}
	}
	return SrcRef{Tag: NoTag, Value: f.archFor(class)[idx], Valid: true}
}

// Release drops one consumer reference on a speculative register and frees
// it if it has become dead.
func (f *File) Release(tag int) {
	if tag == NoTag {
		return
	}
	s := &f.spec[tag]
	if !s.inUse || s.refs <= 0 {
		panic(fmt.Sprintf("rename: Release(%d) on dead or unreferenced register", tag))
	}
	s.refs--
	f.maybeFree(tag)
}

// Value returns the current value/validity of a speculative register.
func (f *File) Value(tag int) (expr.Value, bool) {
	s := &f.spec[tag]
	return s.value, s.valid
}

// SetValue writes a computed result into a speculative register
// (functional-unit writeback) and marks it valid.
func (f *File) SetValue(tag int, v expr.Value) {
	s := &f.spec[tag]
	if !s.inUse {
		panic(fmt.Sprintf("rename: SetValue(%d) on free register", tag))
	}
	s.value = v
	s.valid = true
}

// Commit copies the speculative value into the architectural register,
// clears the rename-map entry if it still points at tag, and releases the
// map's reference. The register stays allocated until all consumer
// references are released.
func (f *File) Commit(tag int) {
	s := &f.spec[tag]
	if !s.inUse {
		panic(fmt.Sprintf("rename: Commit(%d) on free register", tag))
	}
	if !s.valid {
		panic(fmt.Sprintf("rename: Commit(%d) before its value is ready", tag))
	}
	if !(s.archClass == isa.RegInt && s.archIndex == isa.RegZero) {
		arch := f.archFor(s.archClass)
		arch[s.archIndex] = s.value
	}
	s.committed = true
	m := f.mapFor(s.archClass)
	if m[s.archIndex] == tag {
		m[s.archIndex] = NoTag
	}
	s.refs-- // the map reference
	f.maybeFree(tag)
}

// Squash undoes a rename after a pipeline flush: the mapping is restored
// to prev and the register is marked dead. Squashes must proceed youngest
// to oldest so prev mappings nest correctly.
//
// The previous copy may have committed (or died) after this rename was
// made; its value then lives in the architectural file, so the mapping
// falls back to NoTag rather than pointing at a dead speculative register.
func (f *File) Squash(tag, prev int) {
	s := &f.spec[tag]
	if !s.inUse {
		panic(fmt.Sprintf("rename: Squash(%d) on free register", tag))
	}
	m := f.mapFor(s.archClass)
	if m[s.archIndex] == tag {
		restored := prev
		if prev != NoTag {
			p := &f.spec[prev]
			if !p.inUse || p.committed || p.squashed ||
				p.archClass != s.archClass || p.archIndex != s.archIndex {
				restored = NoTag
			}
		}
		m[s.archIndex] = restored
	}
	s.squashed = true
	s.refs-- // the map reference
	f.maybeFree(tag)
}

// maybeFree returns the register to the free list once it is dead: no
// references remain and it has either committed or been squashed.
func (f *File) maybeFree(tag int) {
	s := &f.spec[tag]
	if s.inUse && s.refs == 0 && (s.committed || s.squashed) {
		s.inUse = false
		f.free = append(f.free, tag)
	}
}

// ArchValue reads a committed architectural register.
func (f *File) ArchValue(class isa.RegClass, idx int) expr.Value {
	return f.archFor(class)[idx]
}

// SetArchValue initializes an architectural register (simulation setup:
// stack pointer, entry arguments...).
func (f *File) SetArchValue(class isa.RegClass, idx int, v expr.Value) {
	if class == isa.RegInt && idx == isa.RegZero {
		return // x0 is hardwired
	}
	f.archFor(class)[idx] = v
}

// Stats reports rename-file counters.
type Stats struct {
	Allocations uint64 `json:"allocations"`
	StallsEmpty uint64 `json:"stallsEmpty"`
	InUse       int    `json:"inUse"`
	Free        int    `json:"free"`
}

// Stats returns the counters.
func (f *File) Stats() Stats {
	return Stats{
		Allocations: f.allocs,
		StallsEmpty: f.stallsEmpty,
		InUse:       len(f.spec) - len(f.free),
		Free:        len(f.free),
	}
}

// SpecView describes one speculative register for the GUI (renamed tag,
// architectural target, value, validity, references — paper Fig. 3).
type SpecView struct {
	Tag       string `json:"tag"`
	Arch      string `json:"arch"`
	Value     string `json:"value"`
	Valid     bool   `json:"valid"`
	Refs      int    `json:"refs"`
	Committed bool   `json:"committed"`
}

// LiveView lists the in-use speculative registers for display.
func (f *File) LiveView(regs *isa.RegisterFile) []SpecView {
	var out []SpecView
	for tag := range f.spec {
		s := &f.spec[tag]
		if !s.inUse {
			continue
		}
		var archName string
		if s.archClass == isa.RegInt {
			archName = regs.Int(s.archIndex).Name
		} else {
			archName = regs.Float(s.archIndex).Name
		}
		v := SpecView{
			Tag: TagName(tag), Arch: archName,
			Valid: s.valid, Refs: s.refs, Committed: s.committed,
		}
		if s.valid {
			v.Value = s.value.String()
		}
		out = append(out, v)
	}
	return out
}

// RenamedCopies returns the tags of all live speculative copies of one
// architectural register, oldest allocation order not guaranteed (GUI
// display of "a list of all renamed copies").
func (f *File) RenamedCopies(class isa.RegClass, idx int) []int {
	var tags []int
	for tag := range f.spec {
		s := &f.spec[tag]
		if s.inUse && s.archClass == class && s.archIndex == idx && !s.committed && !s.squashed {
			tags = append(tags, tag)
		}
	}
	return tags
}

// Clone deep-copies the rename file (for simulation snapshots).
func (f *File) Clone() *File {
	nf := &File{
		archInt:     f.archInt,
		archFloat:   f.archFloat,
		spec:        append([]specReg(nil), f.spec...),
		free:        append([]int(nil), f.free...),
		mapInt:      f.mapInt,
		mapFloat:    f.mapFloat,
		allocs:      f.allocs,
		stallsEmpty: f.stallsEmpty,
	}
	return nf
}
