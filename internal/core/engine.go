package core

// Engine selection: the simulation computes instruction semantics either
// through the specialized execPlan fast path (the default) or through the
// expression interpreter forced for every instruction. Timing is identical
// either way — functional-unit latencies come from the descriptors, and
// ExecEngine.Execute is purely semantic — so a specialized run and a
// forced-interpreter run of the same program are cycle-for-cycle identical
// exactly when the two engines agree on semantics. The co-simulation
// harness (internal/fuzz) leans on that: it runs every generated program
// once per mode and compares architectural state in lockstep.
//
// The mode is a runtime knob, deliberately not part of config.CPU: it
// must not perturb configuration fingerprints, checkpoint headers or
// golden workload baselines.

// EngineMode selects how instruction semantics are computed.
type EngineMode uint8

const (
	// EngineSpecialized uses the compiled execPlan fast path, falling
	// back to the interpreter only outside the specialized subset.
	EngineSpecialized EngineMode = iota
	// EngineInterpreter forces the expression interpreter for every
	// instruction — the functional reference path.
	EngineInterpreter
	// EngineFastForward executes fused basic-block plans against the
	// architectural state only (blockplan.go): no pipeline, cache or
	// predictor modeling, one committed instruction per cycle. The
	// committed instruction stream is identical to the detailed engines
	// (ArchHash); timing statistics are not.
	EngineFastForward
)

// String names the mode for reports and error messages.
func (m EngineMode) String() string {
	switch m {
	case EngineInterpreter:
		return "interpreter"
	case EngineFastForward:
		return "fast-forward"
	}
	return "specialized"
}

// SetEngineMode selects the semantic engine. Switching mid-run is legal —
// for the semantic-only modes the knob affects how future Execute calls
// compute results; entering fast-forward first drains any in-flight
// detailed work at the next Step (blockplan.go), and leaving it resumes
// detailed fetch at the exact commit point.
func (s *Simulation) SetEngineMode(m EngineMode) {
	s.engineMode = m
	s.eng.forceGeneric = m == EngineInterpreter
	if m == EngineFastForward {
		s.eng.ffInit()
		// A detailed prefix may have written through the cache; the next
		// fast-forward block must see coherent memory (blockplan.go).
		s.ffFlushed = false
	}
}

// SetFastForwardInterpreter routes fast-forward execution through the
// expression interpreter instead of the fused specialized operations —
// the functional reference leg for co-simulating the fast-forward engine
// against itself (internal/fuzz). Only meaningful in EngineFastForward.
func (s *Simulation) SetFastForwardInterpreter(v bool) {
	s.eng.forceGeneric = v
}

// SetFFStopPC makes fast-forward execution stop when the commit point
// reaches the given code index, cutting the enclosing block at that
// instruction (any PC is a legal block boundary). -1 clears the stop.
func (s *Simulation) SetFFStopPC(pc int) { s.ffStopPC = pc }

// EngineMode returns the active semantic engine.
func (s *Simulation) EngineMode() EngineMode { return s.engineMode }

// PC returns the next fetch program counter (a code index). Cheap — the
// lockstep co-simulation harness reads it every cycle, where the full
// State snapshot would dominate the run.
func (s *Simulation) PC() int { return s.fetch.pc }

// Committed returns the number of committed instructions so far, without
// assembling a statistics report.
func (s *Simulation) Committed() uint64 { return s.committedCount }
