package core

// Engine selection: the simulation computes instruction semantics either
// through the specialized execPlan fast path (the default) or through the
// expression interpreter forced for every instruction. Timing is identical
// either way — functional-unit latencies come from the descriptors, and
// ExecEngine.Execute is purely semantic — so a specialized run and a
// forced-interpreter run of the same program are cycle-for-cycle identical
// exactly when the two engines agree on semantics. The co-simulation
// harness (internal/fuzz) leans on that: it runs every generated program
// once per mode and compares architectural state in lockstep.
//
// The mode is a runtime knob, deliberately not part of config.CPU: it
// must not perturb configuration fingerprints, checkpoint headers or
// golden workload baselines.

// EngineMode selects how instruction semantics are computed.
type EngineMode uint8

const (
	// EngineSpecialized uses the compiled execPlan fast path, falling
	// back to the interpreter only outside the specialized subset.
	EngineSpecialized EngineMode = iota
	// EngineInterpreter forces the expression interpreter for every
	// instruction — the functional reference path.
	EngineInterpreter
)

// String names the mode for reports and error messages.
func (m EngineMode) String() string {
	if m == EngineInterpreter {
		return "interpreter"
	}
	return "specialized"
}

// SetEngineMode selects the semantic engine. Switching mid-run is legal —
// the knob only affects how future Execute calls compute results.
func (s *Simulation) SetEngineMode(m EngineMode) {
	s.engineMode = m
	s.eng.forceGeneric = m == EngineInterpreter
}

// EngineMode returns the active semantic engine.
func (s *Simulation) EngineMode() EngineMode { return s.engineMode }

// PC returns the next fetch program counter (a code index). Cheap — the
// lockstep co-simulation harness reads it every cycle, where the full
// State snapshot would dominate the run.
func (s *Simulation) PC() int { return s.fetch.pc }

// Committed returns the number of committed instructions so far, without
// assembling a statistics report.
func (s *Simulation) Committed() uint64 { return s.committedCount }
