package core

import (
	"testing"

	"riscvsim/internal/config"
)

// pipelinedFPConfig enables internal pipelining on the FP unit — the
// paper's future-work feature (§V).
func pipelinedFPConfig() *config.CPU {
	cfg := config.Default()
	for i := range cfg.Units {
		if cfg.Units[i].Class == "FP" {
			cfg.Units[i].Pipelined = true
		}
	}
	return cfg
}

// fpStream is eight independent FP adds: on a non-pipelined 3-cycle FP
// unit they serialize (~24 cycles of FP occupancy); a pipelined unit
// accepts one per cycle.
const fpStream = `
main:
  la t0, d
  flw f0, 0(t0)
  flw f1, 4(t0)
  fadd.s f2, f0, f1
  fadd.s f3, f0, f1
  fadd.s f4, f0, f1
  fadd.s f5, f0, f1
  fadd.s f6, f0, f1
  fadd.s f7, f0, f1
  fadd.s f8, f0, f1
  fadd.s f9, f0, f1
  ret
.data
d: .float 1.5, 2.5
`

func TestPipelinedFPUnitIsFaster(t *testing.T) {
	plain := runSrcOn(t, config.Default(), fpStream)
	piped := runSrcOn(t, pipelinedFPConfig(), fpStream)
	if piped.Cycle() >= plain.Cycle() {
		t.Errorf("pipelined FP run took %d cycles, non-pipelined %d — pipelining must win on independent FP ops",
			piped.Cycle(), plain.Cycle())
	}
	// Results must be identical.
	if floatReg(t, piped, "f9") != floatReg(t, plain, "f9") {
		t.Error("pipelining changed results")
	}
	if floatReg(t, piped, "f9") != 4.0 {
		t.Errorf("f9 = %v, want 4.0", floatReg(t, piped, "f9"))
	}
}

func TestPipelinedUnitRespectsIssuePort(t *testing.T) {
	// A pipelined unit still accepts at most one instruction per cycle.
	cfg := pipelinedFPConfig()
	sim := buildSim(t, cfg, fpStream)
	maxInFlight := 0
	prevInFlight := 0
	for !sim.Halted() {
		sim.Step()
		for _, fu := range sim.fus {
			if fu.Class().String() == "FP" {
				n := fu.InFlight()
				if n > maxInFlight {
					maxInFlight = n
				}
				if n > prevInFlight+1 {
					t.Fatalf("FP unit accepted %d instructions in one cycle", n-prevInFlight)
				}
				prevInFlight = n
			}
		}
	}
	if maxInFlight < 2 {
		t.Errorf("pipelined FP unit never overlapped instructions (max in-flight %d)", maxInFlight)
	}
}

func TestPipelinedCorrectnessOnPrograms(t *testing.T) {
	// The complex programs must produce identical results with pipelined
	// units everywhere.
	cfg := config.Default()
	for i := range cfg.Units {
		cfg.Units[i].Pipelined = true
	}
	sim := runSrcOn(t, cfg, QuicksortAsm)
	arr, _ := sim.Memory().Lookup("arr")
	want := []int32{-50, -7, -3, 0, 1, 2, 4, 4, 5, 9, 12, 100}
	for i, w := range want {
		v, _ := sim.Memory().ReadWord(arr.Addr + 4*i)
		if int32(v) != w {
			t.Errorf("arr[%d] = %d, want %d", i, int32(v), w)
		}
	}
	poly := runSrcOn(t, cfg, PolymorphismAsm)
	checkInt(t, poly, "s3", 64)
}

func TestPipelinedMixedLatencies(t *testing.T) {
	// A long divide issued before short adds: the adds complete first
	// (out-of-order completion within the unit) and everything retires
	// correctly in order.
	cfg := config.Default()
	for i := range cfg.Units {
		if cfg.Units[i].Name == "FX1" {
			cfg.Units[i].Pipelined = true
		}
	}
	sim := runSrcOn(t, cfg, `
li t0, 100
li t1, 7
div t2, t0, t1     # 16-cycle op on FX1
mul t3, t0, t1     # 3-cycle op, issued later, completes earlier
add t4, t2, t3
`)
	checkInt(t, sim, "t2", 14)
	checkInt(t, sim, "t3", 700)
	checkInt(t, sim, "t4", 714)
}

func TestPipelinedFlushCleansInflight(t *testing.T) {
	// Wrong-path FP ops in a pipelined unit must be squashed on flush.
	cfg := pipelinedFPConfig()
	sim := runSrcOn(t, cfg, `
li t0, 0
li s0, 0
li t2, 20
loop:
  andi t3, t0, 1
  beqz t3, even
  addi s0, s0, 3
  j next
even:
  fadd.s f1, f0, f0
  addi s0, s0, 1
next:
  addi t0, t0, 1
  bne t0, t2, loop
`)
	checkInt(t, sim, "s0", 40) // 10*3 + 10*1
	if sim.Exception() != nil {
		t.Fatalf("exception: %v", sim.Exception())
	}
}
