package core

import (
	"fmt"

	"riscvsim/internal/asm"
	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
)

// Fused basic-block plans and the fast-forward functional engine.
//
// At first fast-forward use the program's static instructions are grouped
// into basic blocks — a leader starts at the entry of every PC-relative
// branch target and at the fall-through of every control transfer; a block
// ends at the first branch or halting instruction — and each block is
// compiled into one blockPlan: a flat array of fused operations whose
// operands are pre-resolved to *architectural* register indices (the
// per-instruction execPlans resolve to renamed source slots instead, which
// only exist in the detailed pipeline). Executing a block then costs a
// single plan dispatch plus one tight loop, the per-block trick GVSoC uses
// to reach tens of MIPS (PAPERS.md, Bruschi et al.).
//
// Fast-forward mode (EngineFastForward) executes these plans against the
// architectural state only: no fetch/rename/ROB/LSU modeling, no cache or
// predictor traffic, one committed instruction per simulated cycle. The
// committed instruction stream — and therefore every architectural
// register, memory byte, the committed count and the halt story — is
// identical to a detailed run of the same program (ArchHash pins this;
// the fast-forward-equivalence CI gate proves it on the corpus), while
// timing state (cycle counts, stall counters, cache/predictor contents)
// is deliberately not modeled.
//
// Control can enter a block mid-way (a jalr landing between two static
// leaders): block plans are keyed by their start PC and built lazily, so
// such an entry simply compiles the suffix as its own block ("block
// split"). Switchover back to the detailed pipeline is legal at any block
// boundary: fast-forward leaves every pipeline structure empty and keeps
// fetch's PC at the next instruction, so the detailed engine resumes as if
// freshly redirected there.

// blockPlan is the load-time compilation of one basic block: the fused
// operation sequence starting at start and ending at the block's
// terminator (branch/halt) or at the first instruction of the next block.
type blockPlan struct {
	start int
	ops   []ffOp
}

// ffOp is one fused operation of a block plan: the specialized opcode with
// operands resolved to architectural register indices, plus the commit
// bookkeeping the detailed pipeline would have derived from the
// descriptor. Instructions outside the specialized subset carry
// execFallback and run through the expression interpreter.
type ffOp struct {
	op       execOp
	rdFloat  bool // destination lives in the float register file
	rs2Float bool // store payload comes from the float register file
	halts    bool
	memWidth uint8
	flops    uint8
	typ      isa.InstrType
	// Architectural register indices; -1 = absent (or an x0 destination,
	// which is architecturally discarded).
	rd  int16
	rs1 int16
	rs2 int16
	imm int32
	tgt int32
	// static backs the interpreter fallback, exception messages and load
	// conversion (LoadValue needs the descriptor).
	static *asm.Instruction
}

// ffInit builds the basic-block index on first fast-forward use: the
// per-PC block-end table (one backward pass) plus eagerly compiled plans
// for every static leader. Detailed-only simulations never pay for it.
func (e *ExecEngine) ffInit() {
	if e.blocks != nil {
		return
	}
	n := len(e.prog.Instructions)
	e.blocks = make([]*blockPlan, n)
	e.blockEnd = make([]int32, n)
	for i := n - 1; i >= 0; i-- {
		d := e.prog.Instructions[i].Desc
		if d.IsBranch() || d.Halts || i == n-1 {
			e.blockEnd[i] = int32(i + 1)
		} else {
			e.blockEnd[i] = e.blockEnd[i+1]
		}
	}
	// Static leaders: PC-relative branch targets and the fall-through of
	// every control transfer. jalr targets are runtime values; blocks
	// entered there are compiled lazily by blockAt (block split).
	for i, in := range e.prog.Instructions {
		if !in.Desc.IsBranch() {
			continue
		}
		if in.Desc.PCRelative {
			if imm := in.Op("imm"); imm != nil {
				if t := i + int(imm.Val); t >= 0 && t < n {
					e.blockAt(t)
				}
			}
		}
		if i+1 < n {
			e.blockAt(i + 1)
		}
	}
	if n > 0 {
		e.blockAt(0)
	}
}

// blockAt returns the block plan starting at pc, compiling it on first
// use. Any pc is a legal block start: entering between two static leaders
// compiles the suffix of the enclosing block as its own plan.
func (e *ExecEngine) blockAt(pc int) *blockPlan {
	if bp := e.blocks[pc]; bp != nil {
		return bp
	}
	end := int(e.blockEnd[pc])
	bp := &blockPlan{start: pc, ops: make([]ffOp, end-pc)}
	for i := pc; i < end; i++ {
		bp.ops[i-pc] = ffCompileOp(&e.plans[i], e.prog.Instructions[i])
	}
	e.blocks[pc] = bp
	return bp
}

// ffCompileOp fuses one static instruction into a block-plan operation,
// re-resolving the execPlan's renamed source slots to architectural
// register indices.
func ffCompileOp(p *execPlan, in *asm.Instruction) ffOp {
	d := in.Desc
	o := ffOp{
		op: p.op, halts: d.Halts, memWidth: uint8(d.MemWidth),
		flops: uint8(d.Flops), typ: d.Type,
		rd: -1, rs1: -1, rs2: -1, imm: p.imm, tgt: int32(p.tgt), static: in,
	}
	if p.op == execFallback {
		return o
	}
	if p.rs1 >= 0 {
		o.rs1 = int16(in.Op("rs1").Reg)
	}
	if p.rs2 >= 0 {
		op := in.Op("rs2")
		o.rs2 = int16(op.Reg)
		o.rs2Float = op.Arg.Kind == isa.ArgRegFloat
	}
	if dst := d.DestArg(); dst != nil {
		op := in.Op(dst.Name)
		o.rdFloat = dst.Kind == isa.ArgRegFloat
		if o.rdFloat || op.Reg != isa.RegZero {
			o.rd = int16(op.Reg)
		}
	}
	return o
}

// ---------------------------------------------------------------------------
// Fast-forward execution
// ---------------------------------------------------------------------------

// ffDrained reports whether no speculative work is in flight, i.e. the
// architectural state is the complete state and a fused block may run.
func (s *Simulation) ffDrained() bool {
	return s.rob.Empty() && len(s.pendingDecode()) == 0 &&
		s.lsu.Drained() && s.fetch.waitBranch == nil
}

// ffStep advances the simulation one step in fast-forward mode: while
// in-flight instructions remain from a detailed prefix it runs one
// detailed cycle with fetch suppressed (the pipeline drains at a block
// boundary by construction); once drained it executes one fused basic
// block per call, so every Step lands on a block commit boundary.
func (s *Simulation) ffStep() {
	if !s.ffDrained() {
		now := s.cycle + 1
		s.commitStep(now)
		if !s.halted {
			s.memoryStep(now)
			s.completeStep(now)
			s.issueStep(now)
			s.renameStep(now)
		}
		s.cycle = now
		s.checkPipelineEmpty(now)
		return
	}
	if !s.ffFlushed {
		// A detailed prefix may have left dirty lines in the cache;
		// fast-forward reads memory directly, so make it coherent once
		// per switchover.
		s.l1.FlushAll(s.cycle)
		s.ffFlushed = true
	}
	pc := s.fetch.pc
	if pc < 0 || pc >= len(s.prog.Instructions) {
		// The program ran off the code segment (the entry routine
		// returned to the sentinel address): same end story as the
		// detailed pipeline draining empty.
		s.halted = true
		s.haltReason = "pipeline empty"
		s.logf(s.cycle, "halt: pipeline empty after %d committed instructions", s.committedCount)
		s.l1.FlushAll(s.cycle)
		return
	}
	s.ffRunBlock(s.eng.blockAt(pc))
}

// ffRunBlock executes one fused block against the architectural state:
// one committed instruction per cycle, branch early-out at the
// terminator, fetch's PC tracking the commit point so a switchover to
// detailed mode resumes exactly there.
func (s *Simulation) ffRunBlock(bp *blockPlan) {
	for i := range bp.ops {
		pc := bp.start + i
		if s.commitLimit != 0 && s.committedCount >= s.commitLimit {
			// Commit-limit cut (RunToCommitted): stop before retiring
			// past the boundary; any PC is a legal block boundary, and
			// the caller's loop exits before re-entering the block.
			s.fetch.pc = pc
			return
		}
		if pc == s.ffStopPC && pc != bp.start {
			// FastForwardToPC lands mid-block: cut the block here (any
			// PC is a legal block boundary) without executing further.
			s.fetch.pc = pc
			return
		}
		o := &bp.ops[i]
		next := pc + 1
		s.cycle++
		if s.eng.forceGeneric || o.op == execFallback {
			n, ok := s.ffGenericOp(o, pc)
			if !ok {
				return // exception: the halt story is already recorded
			}
			next = n
		} else if !s.ffSpecOp(o, pc, &next) {
			return
		}
		s.committedCount++
		s.dynMix[o.typ]++
		s.flops += uint64(o.flops)
		s.fetch.pc = next
		if o.halts {
			s.halted = true
			s.haltReason = fmt.Sprintf("%s executed (the simulator runs no OS; environment calls end the program)", o.static.Desc.Name)
			s.logf(s.cycle, "halt: %s", s.haltReason)
			s.l1.FlushAll(s.cycle)
			return
		}
	}
}

// ffSpecOp executes one specialized fused operation, mirroring the
// semantics (and exception stories) of ExecEngine.Execute plus the
// memory/writeback stages the detailed pipeline would run afterwards.
// It reports false when the operation faulted.
func (s *Simulation) ffSpecOp(o *ffOp, pc int, next *int) bool {
	var a, b int32
	if o.rs1 >= 0 {
		a = s.rf.ArchValue(isa.RegInt, int(o.rs1)).Int()
	}
	if o.rs2 >= 0 && o.op != execStoreAddr {
		b = s.rf.ArchValue(isa.RegInt, int(o.rs2)).Int()
	}
	switch o.op {
	case execNop:
	case execLUI:
		s.ffSetInt(o, a, b, o.imm<<12)
	case execAUIPC:
		s.ffSetInt(o, a, b, o.imm<<12+int32(pc))
	case execJAL:
		s.ffSetInt(o, a, b, int32(pc)+1)
		*next = int(o.tgt)
	case execJALR:
		s.ffSetInt(o, a, b, int32(pc)+1)
		*next = int(a + o.imm)
	case execBEQ:
		if a == b {
			*next = int(o.tgt)
		}
	case execBNE:
		if a != b {
			*next = int(o.tgt)
		}
	case execBLT:
		if a < b {
			*next = int(o.tgt)
		}
	case execBGE:
		if a >= b {
			*next = int(o.tgt)
		}
	case execBLTU:
		if uint32(a) < uint32(b) {
			*next = int(o.tgt)
		}
	case execBGEU:
		if uint32(a) >= uint32(b) {
			*next = int(o.tgt)
		}
	case execLoadAddr:
		addr := int(a + o.imm)
		if exc := s.ffCheckAddr(o.static.Desc, addr); exc != nil {
			s.ffFault(exc, pc)
			return false
		}
		raw, _ := s.mem.ReadRaw(addr, int(o.memWidth))
		if o.rd >= 0 {
			cls := isa.RegInt
			if o.rdFloat {
				cls = isa.RegFloat
			}
			s.rf.SetArchValue(cls, int(o.rd), LoadValue(o.static.Desc, raw))
		}
	case execStoreAddr:
		addr := int(a + o.imm)
		if exc := s.ffCheckAddr(o.static.Desc, addr); exc != nil {
			s.ffFault(exc, pc)
			return false
		}
		cls := isa.RegInt
		if o.rs2Float {
			cls = isa.RegFloat
		}
		_ = s.mem.WriteRaw(addr, int(o.memWidth), s.rf.ArchValue(cls, int(o.rs2)).Bits())
	case execADDI:
		s.ffSetInt(o, a, b, a+o.imm)
	case execSLTI:
		s.ffSetInt(o, a, b, b2i(a < o.imm))
	case execSLTIU:
		s.ffSetInt(o, a, b, b2i(uint32(a) < uint32(o.imm)))
	case execXORI:
		s.ffSetInt(o, a, b, a^o.imm)
	case execORI:
		s.ffSetInt(o, a, b, a|o.imm)
	case execANDI:
		s.ffSetInt(o, a, b, a&o.imm)
	case execSLLI:
		s.ffSetInt(o, a, b, int32(uint32(a)<<(uint32(o.imm)&31)))
	case execSRLI:
		s.ffSetInt(o, a, b, int32(uint32(a)>>(uint32(o.imm)&31)))
	case execSRAI:
		s.ffSetInt(o, a, b, a>>(uint32(o.imm)&31))
	case execADD:
		s.ffSetInt(o, a, b, a+b)
	case execSUB:
		s.ffSetInt(o, a, b, a-b)
	case execSLL:
		s.ffSetInt(o, a, b, int32(uint32(a)<<(uint32(b)&31)))
	case execSLT:
		s.ffSetInt(o, a, b, b2i(a < b))
	case execSLTU:
		s.ffSetInt(o, a, b, b2i(uint32(a) < uint32(b)))
	case execXOR:
		s.ffSetInt(o, a, b, a^b)
	case execSRL:
		s.ffSetInt(o, a, b, int32(uint32(a)>>(uint32(b)&31)))
	case execSRA:
		s.ffSetInt(o, a, b, a>>(uint32(b)&31))
	case execOR:
		s.ffSetInt(o, a, b, a|b)
	case execAND:
		s.ffSetInt(o, a, b, a&b)
	case execMUL:
		s.ffSetInt(o, a, b, a*b)
	case execMULH:
		s.ffSetInt(o, a, b, int32((int64(a)*int64(b))>>32))
	case execMULHSU:
		s.ffSetInt(o, a, b, int32((int64(a)*int64(uint64(uint32(b))))>>32))
	case execMULHU:
		s.ffSetInt(o, a, b, int32((uint64(uint32(a))*uint64(uint32(b)))>>32))
	case execDIV:
		switch {
		case b == 0:
			s.ffDivZero(o, pc, "integer division %d / 0", a)
			return false
		case a == -1<<31 && b == -1:
			s.ffSetInt(o, a, b, -1<<31) // RISC-V overflow semantics
		default:
			s.ffSetInt(o, a, b, a/b)
		}
	case execDIVU:
		if b == 0 {
			s.ffDivZero(o, pc, "unsigned division %d / 0", a)
			return false
		}
		s.ffSetInt(o, a, b, int32(uint32(a)/uint32(b)))
	case execREM:
		switch {
		case b == 0:
			s.ffDivZero(o, pc, "integer remainder %d %% 0", a)
			return false
		case a == -1<<31 && b == -1:
			s.ffSetInt(o, a, b, 0)
		default:
			s.ffSetInt(o, a, b, a%b)
		}
	case execREMU:
		if b == 0 {
			s.ffDivZero(o, pc, "unsigned remainder %d %% 0", a)
			return false
		}
		s.ffSetInt(o, a, b, int32(uint32(a)%uint32(b)))
	}
	return true
}

// ffSetInt publishes an integer result to the architectural register
// file, running it through the same injected-bug hook as the detailed
// specialized path so the co-simulation harness covers fused plans too.
// An x0 (or absent) destination computes and discards, like the pipeline.
func (s *Simulation) ffSetInt(o *ffOp, a, b, v int32) {
	if semanticBug != nil {
		v = semanticBug(o.static.Desc.Name, a, b, v)
	}
	if o.rd >= 0 {
		s.rf.SetArchValue(isa.RegInt, int(o.rd), expr.NewInt(v))
	}
}

// ffCheckAddr mirrors checkAddress: same bounds, same exception text, so
// a fast-forward run and a detailed run fault with identical stories.
func (s *Simulation) ffCheckAddr(d *isa.Desc, addr int) *fault.Exception {
	if addr < 0 || addr+d.MemWidth > s.mem.Size() {
		return fault.New(fault.InvalidMemoryAccess,
			"%s accesses %d bytes at address %d outside memory of %d bytes",
			d.Name, d.MemWidth, addr, s.mem.Size())
	}
	return nil
}

// ffDivZero faults with the interpreter-identical division-by-zero story.
func (s *Simulation) ffDivZero(o *ffOp, pc int, format string, a int32) {
	s.ffFault(fault.New(fault.DivisionByZero, format, a), pc)
}

// ffFault ends the run exactly as a detailed commit would raise the
// exception: the faulting instruction does not count as committed.
func (s *Simulation) ffFault(exc *fault.Exception, pc int) {
	exc.Cycle = s.cycle
	exc.PC = pc
	s.fetch.pc = pc
	s.haltWithException(exc, s.cycle)
}

// ffGenericOp executes one operation through the expression interpreter —
// the total-coverage fallback (and, with the interpreter forced, the
// functional reference leg of the three-way co-simulation). The reusable
// scratch instruction is populated the way renameStep captures sources,
// with values read directly from the architectural file. Returns the next
// PC and false when the operation faulted.
func (s *Simulation) ffGenericOp(o *ffOp, pc int) (int, bool) {
	si := &s.ffScratch
	*si = SimInstr{Static: o.static, PC: pc}
	desc := o.static.Desc
	rp := &s.eng.rplans[pc]
	for i := 0; i < int(rp.nsrc); i++ {
		rs := &rp.srcs[i]
		si.srcs[si.nsrc] = srcOperand{
			name: rs.name, class: rs.class, reg: int(rs.reg),
			captured: true, value: s.rf.ArchValue(rs.class, int(rs.reg)),
		}
		si.nsrc++
	}
	si.hasDest = rp.hasDest
	s.eng.executeGeneric(si, s.cycle)
	if si.Exc.Occurred() {
		s.ffFault(si.Exc, pc)
		return 0, false
	}
	next := pc + 1
	switch {
	case desc.IsBranch():
		next = si.actualTgt
	case desc.IsLoad():
		if exc := s.ffCheckAddr(desc, si.effAddr); exc != nil {
			s.ffFault(exc, pc)
			return 0, false
		}
		raw, _ := s.mem.ReadRaw(si.effAddr, desc.MemWidth)
		si.result = LoadValue(desc, raw)
		si.resultReady = true
	case desc.IsStore():
		if exc := s.ffCheckAddr(desc, si.effAddr); exc != nil {
			s.ffFault(exc, pc)
			return 0, false
		}
		_ = s.mem.WriteRaw(si.effAddr, desc.MemWidth, si.storeData)
	}
	if si.hasDest && !desc.IsStore() {
		// Mirror writebackDest + commit: an unassigned destination
		// publishes zero, exactly like the pipeline's bookkeeping.
		v := expr.NewInt(0)
		if si.resultReady {
			v = si.result
		}
		s.rf.SetArchValue(rp.destClass, int(rp.destReg), v)
	}
	return next, true
}
