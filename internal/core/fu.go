package core

import (
	"riscvsim/internal/asm"
	"riscvsim/internal/config"
	"riscvsim/internal/isa"
)

// FU is one functional unit. Its simulation is divided into two sub-steps
// so it can complete the current instruction and load the next one within
// a single clock cycle (paper §III-A).
//
// By default units are not internally pipelined, matching the paper's
// stated limitation. Setting the unit's Pipelined flag (this repo's
// implementation of the paper's future-work item, §V) lets the unit accept
// one new instruction per cycle while earlier ones are still completing.
type FU struct {
	spec  *config.FUSpec
	class isa.FUClass

	// inflight holds executing instructions in issue order; a
	// non-pipelined unit holds at most one.
	inflight []inflightOp
	// lastAccept enforces one issue per cycle for pipelined units.
	lastAccept uint64
	hasAccept  bool

	// doneScratch is the reusable ReleaseDone result buffer; its contents
	// are only valid until the next call.
	doneScratch []*SimInstr

	// sup/lat cache the spec's per-mnemonic support and latency tables,
	// pre-resolved per static instruction (indexed by PC) so the issue
	// path never does a string-map lookup.
	sup []bool
	lat []uint64

	// Statistics.
	busyCycles  uint64
	execCount   uint64
	totalCycles uint64
}

type inflightOp struct {
	si     *SimInstr
	doneAt uint64
}

// NewFU builds a functional unit from its configuration entry.
func NewFU(spec *config.FUSpec) *FU {
	class, err := isa.ParseFUClass(spec.Class)
	if err != nil {
		panic(err) // validated by config.Validate
	}
	return &FU{spec: spec, class: class}
}

// Name returns the unit's display name.
func (f *FU) Name() string { return f.spec.Name }

// Class returns the unit's instruction class.
func (f *FU) Class() isa.FUClass { return f.class }

// Busy reports whether any instruction occupies the unit.
func (f *FU) Busy() bool { return len(f.inflight) > 0 }

// InFlight returns the number of executing instructions.
func (f *FU) InFlight() int { return len(f.inflight) }

// CanAccept reports whether the unit can start a new instruction at cycle
// now: a free unit always can; a pipelined unit additionally requires its
// single issue port (one accept per cycle).
func (f *FU) CanAccept(now uint64) bool {
	if len(f.inflight) == 0 {
		return true
	}
	if !f.spec.Pipelined {
		return false
	}
	return !f.hasAccept || f.lastAccept != now
}

// Current returns the oldest executing instruction, or nil (GUI display).
func (f *FU) Current() *SimInstr {
	if len(f.inflight) == 0 {
		return nil
	}
	return f.inflight[0].si
}

// nextDone returns the earliest completion cycle (display).
func (f *FU) nextDone() uint64 {
	var min uint64
	for i, op := range f.inflight {
		if i == 0 || op.doneAt < min {
			min = op.doneAt
		}
	}
	return min
}

// precompute resolves the spec's per-mnemonic support and latency maps
// once per static instruction, so the per-cycle issue path is two array
// reads. Called by the simulation constructor.
func (f *FU) precompute(prog *asm.Program) {
	f.sup = make([]bool, len(prog.Instructions))
	f.lat = make([]uint64, len(prog.Instructions))
	for i, in := range prog.Instructions {
		f.sup[i] = f.spec.Supports(in.Desc.Name)
		f.lat[i] = uint64(f.spec.LatencyFor(in.Desc.Name))
	}
}

// Supports reports whether this unit can execute the instruction.
func (f *FU) Supports(si *SimInstr) bool {
	if f.sup != nil {
		return f.class == si.Static.Desc.Unit && f.sup[si.PC]
	}
	return f.class == si.Static.Desc.Unit && f.spec.Supports(si.Static.Desc.Name)
}

// latencyFor returns the unit's latency for the instruction.
func (f *FU) latencyFor(si *SimInstr) uint64 {
	if f.lat != nil {
		return f.lat[si.PC]
	}
	return uint64(f.spec.LatencyFor(si.Static.Desc.Name))
}

// Accept starts executing the instruction (sub-step two of the paper's FU
// model): the semantics are evaluated immediately against the captured
// operands — through the engine's specialized fast path or its interpreter
// fallback — and the result is buffered until the completion sub-step at
// now+latency. Evaluation errors become exceptions attached to the
// instruction and raised at commit.
func (f *FU) Accept(si *SimInstr, now uint64, eng *ExecEngine) {
	if !f.CanAccept(now) {
		panic("core: Accept on busy FU " + f.spec.Name)
	}
	lat := f.latencyFor(si)
	f.inflight = append(f.inflight, inflightOp{si: si, doneAt: now + lat})
	f.lastAccept = now
	f.hasAccept = true
	f.execCount++
	f.totalCycles += lat
	si.IssuedAt = now
	si.Phase = PhaseIssued

	eng.Execute(si, now)
}

// ReleaseDone detaches every instruction finishing at or before cycle now,
// in issue order (sub-step one of the FU model). The returned slice is a
// reusable scratch buffer, valid until the next call.
func (f *FU) ReleaseDone(now uint64) []*SimInstr {
	done := f.doneScratch[:0]
	kept := f.inflight[:0]
	for _, op := range f.inflight {
		if now >= op.doneAt {
			done = append(done, op.si)
		} else {
			kept = append(kept, op)
		}
	}
	for i := len(kept); i < len(f.inflight); i++ {
		f.inflight[i] = inflightOp{}
	}
	f.inflight = kept
	f.doneScratch = done
	return done
}

// AbortSquashed drops wrong-path instructions after a flush.
func (f *FU) AbortSquashed() {
	kept := f.inflight[:0]
	for _, op := range f.inflight {
		if !op.si.Squashed {
			kept = append(kept, op)
		}
	}
	for i := len(kept); i < len(f.inflight); i++ {
		f.inflight[i] = inflightOp{}
	}
	f.inflight = kept
}

// CountBusy accumulates the busy-cycle statistic; called once per cycle.
func (f *FU) CountBusy() {
	if len(f.inflight) > 0 {
		f.busyCycles++
	}
}

// FUStats is the per-unit utilization report (paper §II-D: "the number and
// percentage of busy cycles for each unit").
type FUStats struct {
	Name       string `json:"name"`
	Class      string `json:"class"`
	BusyCycles uint64 `json:"busyCycles"`
	ExecCount  uint64 `json:"execCount"`
}

// Stats returns the collected counters.
func (f *FU) Stats() FUStats {
	return FUStats{
		Name:       f.spec.Name,
		Class:      f.class.String(),
		BusyCycles: f.busyCycles,
		ExecCount:  f.execCount,
	}
}
