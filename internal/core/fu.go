package core

import (
	"riscvsim/internal/config"
	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
)

// FU is one functional unit. Its simulation is divided into two sub-steps
// so it can complete the current instruction and load the next one within
// a single clock cycle (paper §III-A).
//
// By default units are not internally pipelined, matching the paper's
// stated limitation. Setting the unit's Pipelined flag (this repo's
// implementation of the paper's future-work item, §V) lets the unit accept
// one new instruction per cycle while earlier ones are still completing.
type FU struct {
	spec  *config.FUSpec
	class isa.FUClass

	// inflight holds executing instructions in issue order; a
	// non-pipelined unit holds at most one.
	inflight []inflightOp
	// lastAccept enforces one issue per cycle for pipelined units.
	lastAccept uint64
	hasAccept  bool

	// Statistics.
	busyCycles  uint64
	execCount   uint64
	totalCycles uint64
}

type inflightOp struct {
	si     *SimInstr
	doneAt uint64
}

// NewFU builds a functional unit from its configuration entry.
func NewFU(spec *config.FUSpec) *FU {
	class, err := isa.ParseFUClass(spec.Class)
	if err != nil {
		panic(err) // validated by config.Validate
	}
	return &FU{spec: spec, class: class}
}

// Name returns the unit's display name.
func (f *FU) Name() string { return f.spec.Name }

// Class returns the unit's instruction class.
func (f *FU) Class() isa.FUClass { return f.class }

// Busy reports whether any instruction occupies the unit.
func (f *FU) Busy() bool { return len(f.inflight) > 0 }

// InFlight returns the number of executing instructions.
func (f *FU) InFlight() int { return len(f.inflight) }

// CanAccept reports whether the unit can start a new instruction at cycle
// now: a free unit always can; a pipelined unit additionally requires its
// single issue port (one accept per cycle).
func (f *FU) CanAccept(now uint64) bool {
	if len(f.inflight) == 0 {
		return true
	}
	if !f.spec.Pipelined {
		return false
	}
	return !f.hasAccept || f.lastAccept != now
}

// Current returns the oldest executing instruction, or nil (GUI display).
func (f *FU) Current() *SimInstr {
	if len(f.inflight) == 0 {
		return nil
	}
	return f.inflight[0].si
}

// nextDone returns the earliest completion cycle (display).
func (f *FU) nextDone() uint64 {
	var min uint64
	for i, op := range f.inflight {
		if i == 0 || op.doneAt < min {
			min = op.doneAt
		}
	}
	return min
}

// Supports reports whether this unit can execute the instruction.
func (f *FU) Supports(si *SimInstr) bool {
	return f.class == si.Static.Desc.Unit && f.spec.Supports(si.Static.Desc.Name)
}

// Accept starts executing the instruction (sub-step two of the paper's FU
// model): the semantics are evaluated immediately against the captured
// operands and the result is buffered until the completion sub-step at
// now+latency. Evaluation errors become exceptions attached to the
// instruction and raised at commit.
func (f *FU) Accept(si *SimInstr, now uint64, ev *expr.Evaluator) {
	if !f.CanAccept(now) {
		panic("core: Accept on busy FU " + f.spec.Name)
	}
	lat := f.spec.LatencyFor(si.Static.Desc.Name)
	f.inflight = append(f.inflight, inflightOp{si: si, doneAt: now + uint64(lat)})
	f.lastAccept = now
	f.hasAccept = true
	f.execCount++
	f.totalCycles += uint64(lat)
	si.IssuedAt = now
	si.Phase = PhaseIssued

	res, err := ev.Eval(si.Static.Desc.Prog, instrEnv{si: si})
	if err != nil {
		if exc, ok := err.(*fault.Exception); ok {
			exc.Cycle = now
			exc.PC = si.PC
			si.Exc = exc
		} else {
			si.Exc = &fault.Exception{Kind: fault.InvalidInstruction, Msg: err.Error(), Cycle: now, PC: si.PC}
		}
		return
	}

	desc := si.Static.Desc
	switch {
	case desc.IsBranch():
		f.resolveBranch(si, res)
	case desc.IsLoad(), desc.IsStore():
		// The expression computed the effective address.
		if res.HasValue {
			si.effAddr = int(res.Value.Int())
		}
		if desc.IsStore() {
			// Capture the store payload from rs2 now.
			for i := range si.srcs {
				if si.srcs[i].name == "rs2" {
					si.storeData = si.srcs[i].value.Bits()
				}
			}
		}
	}
}

// resolveBranch computes the actual direction and target. Conditional
// branches leave their condition on the expression stack; jalr leaves its
// absolute target; PC-relative jumps use the immediate (paper §III-B).
func (f *FU) resolveBranch(si *SimInstr, res expr.Result) {
	desc := si.Static.Desc
	if desc.Conditional {
		si.actualTaken = res.HasValue && res.Value.Bool()
	} else {
		si.actualTaken = true
	}
	if desc.PCRelative {
		if imm := si.Static.Op("imm"); imm != nil {
			si.actualTgt = si.PC + int(imm.Val)
		}
	} else if res.HasValue {
		si.actualTgt = int(res.Value.Int())
	}
	if !si.actualTaken {
		si.actualTgt = si.PC + 1
	}
	// A misprediction is any difference between the next PC fetch
	// assumed and the real one. A fetch stalled on an unknown target
	// (predStall) fetched nothing wrong, so it only needs a redirect.
	predNext := si.PC + 1
	if si.predTaken {
		predNext = si.predTarget
	}
	si.mispredict = !si.predStall && predNext != si.actualTgt
}

// ReleaseDone detaches every instruction finishing at or before cycle now,
// in issue order (sub-step one of the FU model).
func (f *FU) ReleaseDone(now uint64) []*SimInstr {
	var done []*SimInstr
	kept := f.inflight[:0]
	for _, op := range f.inflight {
		if now >= op.doneAt {
			done = append(done, op.si)
		} else {
			kept = append(kept, op)
		}
	}
	for i := len(kept); i < len(f.inflight); i++ {
		f.inflight[i] = inflightOp{}
	}
	f.inflight = kept
	return done
}

// AbortSquashed drops wrong-path instructions after a flush.
func (f *FU) AbortSquashed() {
	kept := f.inflight[:0]
	for _, op := range f.inflight {
		if !op.si.Squashed {
			kept = append(kept, op)
		}
	}
	for i := len(kept); i < len(f.inflight); i++ {
		f.inflight[i] = inflightOp{}
	}
	f.inflight = kept
}

// CountBusy accumulates the busy-cycle statistic; called once per cycle.
func (f *FU) CountBusy() {
	if len(f.inflight) > 0 {
		f.busyCycles++
	}
}

// FUStats is the per-unit utilization report (paper §II-D: "the number and
// percentage of busy cycles for each unit").
type FUStats struct {
	Name       string `json:"name"`
	Class      string `json:"class"`
	BusyCycles uint64 `json:"busyCycles"`
	ExecCount  uint64 `json:"execCount"`
}

// Stats returns the collected counters.
func (f *FU) Stats() FUStats {
	return FUStats{
		Name:       f.spec.Name,
		Class:      f.class.String(),
		BusyCycles: f.busyCycles,
		ExecCount:  f.execCount,
	}
}
