package core

import (
	"testing"

	"riscvsim/internal/config"
)

// Complex-program tests, matching the paper's system-level validation:
// "The functionality of several more complex programs is also tested, such
// as array sorting using the quicksort algorithm, working with a linked
// list, and polymorphism (dynamic dispatch)" (§IV).

// QuicksortAsm sorts the 12-word array `arr` in place with an in-place
// Lomuto-partition quicksort. Exported for reuse by examples and benches.
const QuicksortAsm = `
# quicksort(arr, 0, N-1)
main:
  addi sp, sp, -4
  sw ra, 0(sp)
  la a0, arr
  li a1, 0
  li a2, 11
  call quicksort
  lw ra, 0(sp)
  addi sp, sp, 4
  ret

# quicksort(a0=base, a1=lo, a2=hi)
quicksort:
  bge a1, a2, qs_done        # lo >= hi -> done
  addi sp, sp, -16
  sw ra, 0(sp)
  sw a1, 4(sp)
  sw a2, 8(sp)
  call partition             # a0 = pivot index p
  sw a0, 12(sp)
  lw a1, 4(sp)               # recurse left: (lo, p-1)
  addi a2, a0, -1
  la a0, arr
  call quicksort
  lw a0, 12(sp)
  addi a1, a0, 1             # recurse right: (p+1, hi)
  lw a2, 8(sp)
  la a0, arr
  call quicksort
  lw ra, 0(sp)
  addi sp, sp, 16
qs_done:
  ret

# partition(a0=base, a1=lo, a2=hi) -> a0 = pivot index (Lomuto)
partition:
  slli t0, a2, 2
  add t0, a0, t0
  lw t1, 0(t0)               # pivot = a[hi]
  addi t2, a1, -1            # i = lo-1
  mv t3, a1                  # j = lo
ploop:
  bge t3, a2, pdone
  slli t4, t3, 2
  add t4, a0, t4
  lw t5, 0(t4)               # a[j]
  bge t5, t1, pskip          # if a[j] < pivot
  addi t2, t2, 1             # i++
  slli t6, t2, 2
  add t6, a0, t6
  lw s0, 0(t6)               # swap a[i], a[j]
  sw t5, 0(t6)
  sw s0, 0(t4)
pskip:
  addi t3, t3, 1
  j ploop
pdone:
  addi t2, t2, 1             # i++
  slli t4, t2, 2
  add t4, a0, t4
  lw t5, 0(t4)               # swap a[i], a[hi]
  lw t6, 0(t0)
  sw t6, 0(t4)
  sw t5, 0(t0)
  mv a0, t2
  ret

.data
arr: .word 9, -3, 5, 1, 12, -7, 0, 4, 4, 100, -50, 2
`

func TestQuicksortProgram(t *testing.T) {
	sim := runSrc(t, QuicksortAsm)
	if sim.Exception() != nil {
		t.Fatalf("exception: %v", sim.Exception())
	}
	arr, ok := sim.Memory().Lookup("arr")
	if !ok {
		t.Fatal("arr not allocated")
	}
	want := []int32{-50, -7, -3, 0, 1, 2, 4, 4, 5, 9, 12, 100}
	for i, w := range want {
		v, exc := sim.Memory().ReadWord(arr.Addr + 4*i)
		if exc != nil {
			t.Fatal(exc)
		}
		if int32(v) != w {
			t.Errorf("arr[%d] = %d, want %d", i, int32(v), w)
		}
	}
	// The sort must behave identically on every preset architecture.
	for name, cfg := range config.Presets() {
		s2 := runSrcOn(t, cfg, QuicksortAsm)
		if s2.Exception() != nil {
			t.Errorf("%s: exception %v", name, s2.Exception())
			continue
		}
		a2, _ := s2.Memory().Lookup("arr")
		for i, w := range want {
			v, _ := s2.Memory().ReadWord(a2.Addr + 4*i)
			if int32(v) != w {
				t.Errorf("%s: arr[%d] = %d, want %d", name, i, int32(v), w)
			}
		}
	}
}

// LinkedListAsm builds a 5-node singly linked list in a static arena,
// reverses it, then sums the values by walking it. Node layout:
// {value: word, next: word}.
const LinkedListAsm = `
main:
  # Build list: arena has 5 nodes of 8 bytes. values 1..5, next pointers.
  la t0, arena
  li t1, 0            # i
  li t2, 5
build:
  slli t3, t1, 3      # node offset = i*8
  add t3, t0, t3
  addi t4, t1, 1      # value = i+1
  sw t4, 0(t3)
  addi t5, t1, 1
  beq t5, t2, last
  slli t5, t5, 3
  add t5, t0, t5      # next = &arena[i+1]
  sw t5, 4(t3)
  j bnext
last:
  sw x0, 4(t3)        # next = NULL(0)
bnext:
  addi t1, t1, 1
  blt t1, t2, build

  # Reverse: prev=0, cur=&arena[0]
  li s0, 0            # prev
  la s1, arena        # cur
rev:
  beqz s1, revdone
  lw s2, 4(s1)        # next
  sw s0, 4(s1)        # cur->next = prev
  mv s0, s1           # prev = cur
  mv s1, s2           # cur = next
  j rev
revdone:
  # s0 = new head (was last node, value 5). Walk and sum into s3;
  # also record first value (head) into s4.
  lw s4, 0(s0)
  li s3, 0
walk:
  beqz s0, walkdone
  lw t0, 0(s0)
  add s3, s3, t0
  lw s0, 4(s0)
  j walk
walkdone:
  nop

.data
.align 3
arena: .zero 40
`

func TestLinkedListProgram(t *testing.T) {
	sim := runSrc(t, LinkedListAsm)
	if sim.Exception() != nil {
		t.Fatalf("exception: %v", sim.Exception())
	}
	checkInt(t, sim, "s3", 15) // 1+2+3+4+5
	checkInt(t, sim, "s4", 5)  // head after reversal
}

// PolymorphismAsm models C++-style dynamic dispatch: two "classes" with
// vtables (area methods for rect{w,h} and triangle{w,h}), an array of
// objects with vtable pointers, and a loop that virtually calls area() on
// each and accumulates the result.
const PolymorphismAsm = `
main:
  la s0, objs          # object array: {vtable, w, h} * 4
  li s1, 0             # i
  li s2, 4             # count
  li s3, 0             # total area
vloop:
  slli t0, s1, 2
  slli t1, s1, 3
  add t0, t0, t1       # i*12
  add t0, s0, t0       # &objs[i]
  lw t1, 0(t0)         # vtable pointer
  lw t2, 0(t1)         # method 0: area()
  lw a0, 4(t0)         # w
  lw a1, 8(t0)         # h
  addi sp, sp, -4
  sw ra, 0(sp)
  jalr ra, t2, 0       # virtual call
  lw ra, 0(sp)
  addi sp, sp, 4
  add s3, s3, a0
  addi s1, s1, 1
  blt s1, s2, vloop
  nop

rect_area:             # w*h
  mul a0, a0, a1
  ret

tri_area:              # w*h/2
  mul a0, a0, a1
  srai a0, a0, 1
  ret

.data
.align 2
rect_vtable: .word rect_area
tri_vtable:  .word tri_area
objs:
  .word rect_vtable, 3, 4    # 12
  .word tri_vtable,  6, 4    # 12
  .word rect_vtable, 5, 5    # 25
  .word tri_vtable,  10, 3   # 15
`

func TestPolymorphismProgram(t *testing.T) {
	sim := runSrc(t, PolymorphismAsm)
	if sim.Exception() != nil {
		t.Fatalf("exception: %v", sim.Exception())
	}
	checkInt(t, sim, "s3", 64) // 12+12+25+15
	// Dynamic dispatch exercises indirect jumps: the BTB should see
	// both targets.
	if sim.Report().Predictor.BTBMisses == 0 {
		t.Error("expected BTB misses from first-seen indirect calls")
	}
}

func TestComplexProgramsOnAllWidths(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		cfg, err := config.WidthPreset(w)
		if err != nil {
			t.Fatal(err)
		}
		sim := runSrcOn(t, cfg, PolymorphismAsm)
		if got := intReg(t, sim, "s3"); got != 64 {
			t.Errorf("width %d: area total = %d, want 64", w, got)
		}
	}
}

func TestCachePolicyDoesNotChangeResults(t *testing.T) {
	for _, pol := range []string{"LRU", "FIFO", "Random"} {
		cfg := config.Default()
		switch pol {
		case "FIFO":
			cfg.Cache.Replacement = 1
		case "Random":
			cfg.Cache.Replacement = 2
		}
		sim := runSrcOn(t, cfg, QuicksortAsm)
		arr, _ := sim.Memory().Lookup("arr")
		v, _ := sim.Memory().ReadWord(arr.Addr)
		if int32(v) != -50 {
			t.Errorf("policy %s: arr[0] = %d, want -50", pol, int32(v))
		}
	}
}

func TestCacheDisabledStillCorrect(t *testing.T) {
	cfg := config.Default()
	cfg.Cache.Enabled = false
	sim := runSrcOn(t, cfg, QuicksortAsm)
	arr, _ := sim.Memory().Lookup("arr")
	v, _ := sim.Memory().ReadWord(arr.Addr + 4*11)
	if int32(v) != 100 {
		t.Errorf("no-cache: arr[11] = %d, want 100", int32(v))
	}
}

func TestCacheSpeedsUpMemoryHeavyCode(t *testing.T) {
	// Pointer chasing: each load's address depends on the previous load,
	// so memory latency is fully exposed — out-of-order execution cannot
	// hide it. After the first lap the ring lives in the cache.
	src := `
la t0, ring
li t1, 0
li t2, 200
chase:
  lw t0, 0(t0)
  addi t1, t1, 1
  blt t1, t2, chase

.data
.align 4
ring:
  .word n1
n1:
  .word n2
n2:
  .word n3
n3:
  .word ring
`
	with := config.Default()
	without := config.Default()
	without.Cache.Enabled = false
	a := runSrcOn(t, with, src)
	b := runSrcOn(t, without, src)
	if a.Cycle() >= b.Cycle() {
		t.Errorf("cached run took %d cycles, uncached %d — cache should win on reuse",
			a.Cycle(), b.Cycle())
	}
	if a.Report().CacheHitRate < 0.5 {
		t.Errorf("hit rate %.2f, expected > 0.5 on a repeated walk", a.Report().CacheHitRate)
	}
}
