package core

import (
	"math"

	"riscvsim/internal/asm"
	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
)

// Specialized execution engine: at program load every static instruction's
// semantics are compiled once into an execPlan — a compact opcode plus
// operands pre-resolved to renamed-source slots and immediate values — so
// the per-cycle execute path runs a direct type switch on integers instead
// of walking the generic postfix program through string-keyed environment
// lookups. Anything outside the specialized RV32IM(+FP memory) subset, or
// any instruction whose descriptor was altered by a user-loaded ISA, falls
// back to the expression interpreter, so coverage stays total and the
// semantics-as-data extensibility of the paper (§III-B) is preserved.
//
// The fast path is only taken when the descriptor's expression source and
// argument shapes match the built-in table exactly, and it relies on the
// core's value invariant: integer-class register values always carry type
// kInt (every writeback converts to the destination argument's declared
// type). TestExecSpecializedMatchesInterpreter cross-checks every
// specialized opcode against the interpreter over randomized operands.

// execOp is the specialized opcode of one static instruction.
type execOp uint8

const (
	execFallback execOp = iota // generic expression interpreter
	execNop                    // empty semantics (fence, ecall, ebreak)
	execLUI
	execAUIPC
	execJAL
	execJALR
	execBEQ
	execBNE
	execBLT
	execBGE
	execBLTU
	execBGEU
	execLoadAddr  // loads: effective address rs1+imm
	execStoreAddr // stores: effective address rs1+imm, payload from rs2
	execADDI
	execSLTI
	execSLTIU
	execXORI
	execORI
	execANDI
	execSLLI
	execSRLI
	execSRAI
	execADD
	execSUB
	execSLL
	execSLT
	execSLTU
	execXOR
	execSRL
	execSRA
	execOR
	execAND
	execMUL
	execMULH
	execMULHSU
	execMULHU
	execDIV
	execDIVU
	execREM
	execREMU
)

// execPlan is the load-time compilation of one static instruction.
type execPlan struct {
	op execOp
	// rs1/rs2 are slots in si.srcs (the rename order of the descriptor's
	// source arguments), or -1 when the operand is absent.
	rs1 int8
	rs2 int8
	// imm is the semantic immediate exactly as the interpreter sees it
	// (expr.NewInt truncation of the operand value).
	imm int32
	// tgt is the absolute PC-relative target (index + untruncated operand
	// value), matching resolveBranch's arithmetic.
	tgt int
}

// specDef is one row of the specialization table: the exact built-in
// expression source plus the descriptor flags the plan relies on.
type specDef struct {
	src         string
	op          execOp
	conditional bool
	pcRelative  bool
	needRs1     bool
	needRs2     bool
	halts       bool
	mem         bool // load/store: float payload/destination allowed
}

var specTable = map[string]specDef{
	"lui":   {src: `\imm 12 << \rd =`, op: execLUI},
	"auipc": {src: `\imm 12 << \pc + \rd =`, op: execAUIPC},
	"jal":   {src: `\pc 1 + \rd =`, op: execJAL, pcRelative: true},
	"jalr":  {src: `\pc 1 + \rd = \rs1 \imm +`, op: execJALR, needRs1: true},

	"beq":  {src: `\rs1 \rs2 ==`, op: execBEQ, conditional: true, pcRelative: true, needRs1: true, needRs2: true},
	"bne":  {src: `\rs1 \rs2 !=`, op: execBNE, conditional: true, pcRelative: true, needRs1: true, needRs2: true},
	"blt":  {src: `\rs1 \rs2 <`, op: execBLT, conditional: true, pcRelative: true, needRs1: true, needRs2: true},
	"bge":  {src: `\rs1 \rs2 >=`, op: execBGE, conditional: true, pcRelative: true, needRs1: true, needRs2: true},
	"bltu": {src: `\rs1 \rs2 <u`, op: execBLTU, conditional: true, pcRelative: true, needRs1: true, needRs2: true},
	"bgeu": {src: `\rs1 \rs2 >=u`, op: execBGEU, conditional: true, pcRelative: true, needRs1: true, needRs2: true},

	"lb":  {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"lh":  {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"lw":  {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"lbu": {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"lhu": {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"flw": {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"fld": {src: `\rs1 \imm +`, op: execLoadAddr, needRs1: true, mem: true},
	"sb":  {src: `\rs1 \imm +`, op: execStoreAddr, needRs1: true, needRs2: true, mem: true},
	"sh":  {src: `\rs1 \imm +`, op: execStoreAddr, needRs1: true, needRs2: true, mem: true},
	"sw":  {src: `\rs1 \imm +`, op: execStoreAddr, needRs1: true, needRs2: true, mem: true},
	"fsw": {src: `\rs1 \imm +`, op: execStoreAddr, needRs1: true, needRs2: true, mem: true},
	"fsd": {src: `\rs1 \imm +`, op: execStoreAddr, needRs1: true, needRs2: true, mem: true},

	"addi":  {src: `\rs1 \imm + \rd =`, op: execADDI, needRs1: true},
	"slti":  {src: `\rs1 \imm < \rd =`, op: execSLTI, needRs1: true},
	"sltiu": {src: `\rs1 \imm <u \rd =`, op: execSLTIU, needRs1: true},
	"xori":  {src: `\rs1 \imm ^ \rd =`, op: execXORI, needRs1: true},
	"ori":   {src: `\rs1 \imm | \rd =`, op: execORI, needRs1: true},
	"andi":  {src: `\rs1 \imm & \rd =`, op: execANDI, needRs1: true},
	"slli":  {src: `\rs1 \imm << \rd =`, op: execSLLI, needRs1: true},
	"srli":  {src: `\rs1 \imm >>> \rd =`, op: execSRLI, needRs1: true},
	"srai":  {src: `\rs1 \imm >> \rd =`, op: execSRAI, needRs1: true},

	"add":  {src: `\rs1 \rs2 + \rd =`, op: execADD, needRs1: true, needRs2: true},
	"sub":  {src: `\rs1 \rs2 - \rd =`, op: execSUB, needRs1: true, needRs2: true},
	"sll":  {src: `\rs1 \rs2 << \rd =`, op: execSLL, needRs1: true, needRs2: true},
	"slt":  {src: `\rs1 \rs2 < \rd =`, op: execSLT, needRs1: true, needRs2: true},
	"sltu": {src: `\rs1 \rs2 <u \rd =`, op: execSLTU, needRs1: true, needRs2: true},
	"xor":  {src: `\rs1 \rs2 ^ \rd =`, op: execXOR, needRs1: true, needRs2: true},
	"srl":  {src: `\rs1 \rs2 >>> \rd =`, op: execSRL, needRs1: true, needRs2: true},
	"sra":  {src: `\rs1 \rs2 >> \rd =`, op: execSRA, needRs1: true, needRs2: true},
	"or":   {src: `\rs1 \rs2 | \rd =`, op: execOR, needRs1: true, needRs2: true},
	"and":  {src: `\rs1 \rs2 & \rd =`, op: execAND, needRs1: true, needRs2: true},

	"mul":    {src: `\rs1 \rs2 * \rd =`, op: execMUL, needRs1: true, needRs2: true},
	"mulh":   {src: `\rs1 \rs2 mulh \rd =`, op: execMULH, needRs1: true, needRs2: true},
	"mulhsu": {src: `\rs1 \rs2 mulhsu \rd =`, op: execMULHSU, needRs1: true, needRs2: true},
	"mulhu":  {src: `\rs1 \rs2 mulhu \rd =`, op: execMULHU, needRs1: true, needRs2: true},
	"div":    {src: `\rs1 \rs2 / \rd =`, op: execDIV, needRs1: true, needRs2: true},
	"divu":   {src: `\rs1 \rs2 /u \rd =`, op: execDIVU, needRs1: true, needRs2: true},
	"rem":    {src: `\rs1 \rs2 % \rd =`, op: execREM, needRs1: true, needRs2: true},
	"remu":   {src: `\rs1 \rs2 %u \rd =`, op: execREMU, needRs1: true, needRs2: true},

	"fence":  {src: ``, op: execNop},
	"ecall":  {src: ``, op: execNop, halts: true},
	"ebreak": {src: ``, op: execNop, halts: true},
}

// specializePlan compiles one static instruction, or returns the fallback
// plan when the descriptor does not match the built-in table exactly.
func specializePlan(in *asm.Instruction) execPlan {
	fallback := execPlan{op: execFallback}
	d := in.Desc
	def, ok := specTable[d.Name]
	if !ok || d.ExprSrc != def.src ||
		d.Conditional != def.conditional || d.PCRelative != def.pcRelative ||
		d.Halts != def.halts {
		return fallback
	}
	// Walk the argument list in the exact order renameStep captures
	// sources, resolving rs1/rs2 to their src slots and verifying the
	// types the specialized arithmetic assumes.
	rs1, rs2 := int8(-1), int8(-1)
	slot := int8(0)
	for i := range d.Args {
		a := &d.Args[i]
		switch {
		case a.WriteBack:
			// Specialized ALU results are written as kInt; memory
			// destinations are filled by LoadValue, so any class works.
			if !def.mem && (a.Kind != isa.ArgRegInt || a.Type != expr.Int) {
				return fallback
			}
		case a.Kind == isa.ArgRegInt || a.Kind == isa.ArgRegFloat:
			switch a.Name {
			case "rs1":
				// The address/operand base must be an integer.
				if a.Kind != isa.ArgRegInt || a.Type != expr.Int {
					return fallback
				}
				rs1 = slot
			case "rs2":
				// A store payload may be a float register (captured as
				// raw bits); every other rs2 must be an integer.
				if !(def.mem && def.op == execStoreAddr) &&
					(a.Kind != isa.ArgRegInt || a.Type != expr.Int) {
					return fallback
				}
				rs2 = slot
			default:
				return fallback
			}
			slot++
		default: // immediate or label
			if a.Name != "imm" || a.Type != expr.Int {
				return fallback
			}
		}
	}
	if (def.needRs1 && rs1 < 0) || (def.needRs2 && rs2 < 0) {
		return fallback
	}
	p := execPlan{op: def.op, rs1: rs1, rs2: rs2}
	if op := in.Op("imm"); op != nil {
		p.imm = int32(op.Val)
		p.tgt = in.Index + int(op.Val)
	}
	return p
}

// ExecEngine executes instruction semantics for one simulation: the
// specialized fast path over pre-compiled plans, with the expression
// interpreter as the total fallback. Not safe for concurrent use (the
// pipeline executes sequentially).
type ExecEngine struct {
	prog   *asm.Program
	plans  []execPlan
	rplans []renamePlan
	ev     *expr.Evaluator
	env    instrEnv // reusable fallback Env; passing &env avoids boxing
	// forceGeneric routes every instruction through the expression
	// interpreter, ignoring the specialized plans — the functional
	// reference path of the co-simulation harness (EngineInterpreter).
	forceGeneric bool
	// Basic-block index for the fast-forward functional mode and fetch
	// batching, built lazily on first use (blockplan.go). blockEnd[i] is
	// the exclusive end of the block containing instruction i; blocks is
	// the per-start-PC fused plan cache.
	blocks   []*blockPlan
	blockEnd []int32
}

// semanticBug, when non-nil, post-processes every specialized ALU result.
// It exists solely so the co-simulation harness can prove end-to-end that
// an engine divergence is detected and shrunk (internal/fuzz); the
// interpreter path never sees it, so any injected bug diverges the two
// engines. Production runs leave it nil and pay one pointer check.
var semanticBug func(op string, a, b, result int32) int32

// SetSemanticBugForTesting installs (nil clears) the specialized-path
// result corruption hook. Test-only: not safe to toggle while simulations
// run concurrently.
func SetSemanticBugForTesting(f func(op string, a, b, result int32) int32) {
	semanticBug = f
}

// newExecEngine compiles every static instruction of the program.
func newExecEngine(prog *asm.Program) *ExecEngine {
	e := &ExecEngine{
		prog:   prog,
		plans:  make([]execPlan, len(prog.Instructions)),
		rplans: newRenamePlans(prog),
		ev:     expr.NewEvaluator(),
	}
	for i, in := range prog.Instructions {
		e.plans[i] = specializePlan(in)
	}
	return e
}

// setResult buffers a computed destination value exactly as the
// interpreter's `=` would: converted to the declared kInt operand type.
func setResult(si *SimInstr, v int32) {
	si.result = expr.NewInt(v)
	si.resultReady = true
}

// divZero attaches the interpreter-identical division-by-zero exception.
func divZero(si *SimInstr, now uint64, format string, a int32) {
	exc := fault.New(fault.DivisionByZero, format, a)
	exc.Cycle = now
	exc.PC = si.PC
	si.Exc = exc
}

// Execute evaluates the instruction's semantics against its captured
// operands, leaving results, branch outcomes, effective addresses, store
// payloads and exceptions on the instruction — the compute half of the
// functional-unit model (paper §III-A).
func (e *ExecEngine) Execute(si *SimInstr, now uint64) {
	p := &e.plans[si.PC]
	if e.forceGeneric || p.op == execFallback {
		e.executeGeneric(si, now)
		return
	}
	var a, b int32
	if p.rs1 >= 0 {
		a = si.srcs[p.rs1].value.Int()
	}
	if p.rs2 >= 0 && p.op != execStoreAddr {
		b = si.srcs[p.rs2].value.Int()
	}
	switch p.op {
	case execNop:
	case execLUI:
		setResult(si, p.imm<<12)
	case execAUIPC:
		setResult(si, p.imm<<12+int32(si.PC))
	case execJAL:
		setResult(si, int32(si.PC)+1)
		finishBranch(si, true, p.tgt)
	case execJALR:
		setResult(si, int32(si.PC)+1)
		finishBranch(si, true, int(a+p.imm))
	case execBEQ:
		finishBranch(si, a == b, p.tgt)
	case execBNE:
		finishBranch(si, a != b, p.tgt)
	case execBLT:
		finishBranch(si, a < b, p.tgt)
	case execBGE:
		finishBranch(si, a >= b, p.tgt)
	case execBLTU:
		finishBranch(si, uint32(a) < uint32(b), p.tgt)
	case execBGEU:
		finishBranch(si, uint32(a) >= uint32(b), p.tgt)
	case execLoadAddr:
		si.effAddr = int(a + p.imm)
	case execStoreAddr:
		si.effAddr = int(a + p.imm)
		si.storeData = si.srcs[p.rs2].value.Bits()
	case execADDI:
		setResult(si, a+p.imm)
	case execSLTI:
		setResult(si, b2i(a < p.imm))
	case execSLTIU:
		setResult(si, b2i(uint32(a) < uint32(p.imm)))
	case execXORI:
		setResult(si, a^p.imm)
	case execORI:
		setResult(si, a|p.imm)
	case execANDI:
		setResult(si, a&p.imm)
	case execSLLI:
		setResult(si, int32(uint32(a)<<(uint32(p.imm)&31)))
	case execSRLI:
		setResult(si, int32(uint32(a)>>(uint32(p.imm)&31)))
	case execSRAI:
		setResult(si, a>>(uint32(p.imm)&31))
	case execADD:
		setResult(si, a+b)
	case execSUB:
		setResult(si, a-b)
	case execSLL:
		setResult(si, int32(uint32(a)<<(uint32(b)&31)))
	case execSLT:
		setResult(si, b2i(a < b))
	case execSLTU:
		setResult(si, b2i(uint32(a) < uint32(b)))
	case execXOR:
		setResult(si, a^b)
	case execSRL:
		setResult(si, int32(uint32(a)>>(uint32(b)&31)))
	case execSRA:
		setResult(si, a>>(uint32(b)&31))
	case execOR:
		setResult(si, a|b)
	case execAND:
		setResult(si, a&b)
	case execMUL:
		setResult(si, a*b)
	case execMULH:
		setResult(si, int32((int64(a)*int64(b))>>32))
	case execMULHSU:
		setResult(si, int32((int64(a)*int64(uint64(uint32(b))))>>32))
	case execMULHU:
		setResult(si, int32((uint64(uint32(a))*uint64(uint32(b)))>>32))
	case execDIV:
		switch {
		case b == 0:
			divZero(si, now, "integer division %d / 0", a)
		case a == math.MinInt32 && b == -1:
			setResult(si, math.MinInt32) // RISC-V overflow semantics
		default:
			setResult(si, a/b)
		}
	case execDIVU:
		if b == 0 {
			divZero(si, now, "unsigned division %d / 0", a)
		} else {
			setResult(si, int32(uint32(a)/uint32(b)))
		}
	case execREM:
		switch {
		case b == 0:
			divZero(si, now, "integer remainder %d %% 0", a)
		case a == math.MinInt32 && b == -1:
			setResult(si, 0)
		default:
			setResult(si, a%b)
		}
	case execREMU:
		if b == 0 {
			divZero(si, now, "unsigned remainder %d %% 0", a)
		} else {
			setResult(si, int32(uint32(a)%uint32(b)))
		}
	}
	if semanticBug != nil && si.resultReady {
		setResult(si, semanticBug(si.Static.Desc.Name, a, b, si.result.Int()))
	}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// executeGeneric is the total fallback: the expression interpreter over
// the instruction's compiled program, plus the post-evaluation capture of
// branch outcomes, effective addresses and store payloads.
func (e *ExecEngine) executeGeneric(si *SimInstr, now uint64) {
	e.env.si = si
	res, err := e.ev.Eval(si.Static.Desc.Prog, &e.env)
	e.env.si = nil
	if err != nil {
		if exc, ok := err.(*fault.Exception); ok {
			exc.Cycle = now
			exc.PC = si.PC
			si.Exc = exc
		} else {
			si.Exc = &fault.Exception{Kind: fault.InvalidInstruction, Msg: err.Error(), Cycle: now, PC: si.PC}
		}
		return
	}
	desc := si.Static.Desc
	switch {
	case desc.IsBranch():
		resolveBranch(si, res)
	case desc.IsLoad(), desc.IsStore():
		// The expression computed the effective address.
		if res.HasValue {
			si.effAddr = int(res.Value.Int())
		}
		if desc.IsStore() {
			// Capture the store payload from rs2 now.
			for i := 0; i < int(si.nsrc); i++ {
				if si.srcs[i].name == "rs2" {
					si.storeData = si.srcs[i].value.Bits()
				}
			}
		}
	}
}

// resolveBranch computes the actual direction and target from the generic
// evaluation result. Conditional branches leave their condition on the
// expression stack; jalr leaves its absolute target; PC-relative jumps use
// the immediate (paper §III-B).
func resolveBranch(si *SimInstr, res expr.Result) {
	desc := si.Static.Desc
	taken := true
	if desc.Conditional {
		taken = res.HasValue && res.Value.Bool()
	}
	tgt := si.actualTgt
	if desc.PCRelative {
		if imm := si.Static.Op("imm"); imm != nil {
			tgt = si.PC + int(imm.Val)
		}
	} else if res.HasValue {
		tgt = int(res.Value.Int())
	}
	finishBranch(si, taken, tgt)
}

// finishBranch records the resolved direction/target and classifies the
// prediction. A misprediction is any difference between the next PC fetch
// assumed and the real one; a fetch stalled on an unknown target
// (predStall) fetched nothing wrong, so it only needs a redirect.
func finishBranch(si *SimInstr, taken bool, tgt int) {
	si.actualTaken = taken
	si.actualTgt = tgt
	if !taken {
		si.actualTgt = si.PC + 1
	}
	predNext := si.PC + 1
	if si.predTaken {
		predNext = si.predTarget
	}
	si.mispredict = !si.predStall && predNext != si.actualTgt
}
