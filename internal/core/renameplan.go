package core

import (
	"riscvsim/internal/asm"
	"riscvsim/internal/isa"
)

// Load-time rename plans: the per-instruction operand walk renameStep used
// to do every cycle — scanning descriptor arguments and resolving operand
// names through string-keyed Op() lookups — is computed once per static
// instruction at program load, the same compile-at-load idiom as execPlan
// and blockPlan. The per-cycle rename loop then reads flat arrays of
// pre-resolved register classes and indices.

// renameSrc is one pre-resolved source operand of a static instruction.
type renameSrc struct {
	name  string // argument name, carried into srcOperand for the GUI
	class isa.RegClass
	reg   int32
}

// renamePlan is the pre-resolved rename metadata of one static
// instruction: its register sources in descriptor-argument order and its
// destination. hasDest is false for an integer x0 destination — such a
// write is architecturally discarded and allocates nothing.
type renamePlan struct {
	srcs      [maxSrcOperands]renameSrc
	nsrc      uint8
	hasDest   bool
	destClass isa.RegClass
	destReg   int32
}

// newRenamePlans compiles the rename metadata for every static
// instruction.
func newRenamePlans(prog *asm.Program) []renamePlan {
	plans := make([]renamePlan, len(prog.Instructions))
	for i, in := range prog.Instructions {
		p := &plans[i]
		desc := in.Desc
		for j := range desc.Args {
			a := &desc.Args[j]
			if a.WriteBack || (a.Kind != isa.ArgRegInt && a.Kind != isa.ArgRegFloat) {
				continue
			}
			class := isa.RegInt
			if a.Kind == isa.ArgRegFloat {
				class = isa.RegFloat
			}
			p.srcs[p.nsrc] = renameSrc{
				name: a.Name, class: class, reg: int32(in.Op(a.Name).Reg),
			}
			p.nsrc++
		}
		if dst := desc.DestArg(); dst != nil {
			class := isa.RegInt
			if dst.Kind == isa.ArgRegFloat {
				class = isa.RegFloat
			}
			reg := in.Op(dst.Name).Reg
			if !(class == isa.RegInt && reg == isa.RegZero) {
				p.hasDest = true
				p.destClass = class
				p.destReg = int32(reg)
			}
		}
	}
	return plans
}
