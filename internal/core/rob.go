package core

// robEntry is one reorder-buffer slot.
type robEntry struct {
	instr *SimInstr
	done  bool
}

// ROB is the reorder (retire) buffer: a bounded FIFO of in-flight
// instructions committed in program order.
type ROB struct {
	entries []robEntry
	head    int // oldest
	tail    int // next free
	count   int

	// squashScratch is the reusable SquashAfter result buffer; its
	// contents are only valid until the next call.
	squashScratch []*SimInstr
}

// NewROB builds a reorder buffer with the configured capacity.
func NewROB(size int) *ROB {
	return &ROB{entries: make([]robEntry, size)}
}

// Full reports whether no slot is free.
func (r *ROB) Full() bool { return r.count == len(r.entries) }

// Empty reports whether no instruction is in flight.
func (r *ROB) Empty() bool { return r.count == 0 }

// Len returns the number of occupied slots.
func (r *ROB) Len() int { return r.count }

// Cap returns the buffer capacity.
func (r *ROB) Cap() int { return len(r.entries) }

// Push allocates a slot for the instruction, which must not be full.
func (r *ROB) Push(si *SimInstr) {
	if r.Full() {
		panic("core: ROB overflow")
	}
	si.robIndex = r.tail
	r.entries[r.tail] = robEntry{instr: si}
	r.tail = (r.tail + 1) % len(r.entries)
	r.count++
}

// Head returns the oldest instruction, or nil.
func (r *ROB) Head() *SimInstr {
	if r.Empty() {
		return nil
	}
	return r.entries[r.head].instr
}

// HeadDone reports whether the oldest instruction has finished executing.
func (r *ROB) HeadDone() bool {
	return !r.Empty() && r.entries[r.head].done
}

// Pop retires the oldest instruction.
func (r *ROB) Pop() *SimInstr {
	if r.Empty() {
		panic("core: ROB underflow")
	}
	si := r.entries[r.head].instr
	r.entries[r.head] = robEntry{}
	r.head = (r.head + 1) % len(r.entries)
	r.count--
	return si
}

// MarkDone flags the instruction's slot as completed.
func (r *ROB) MarkDone(si *SimInstr) {
	if r.entries[si.robIndex].instr == si {
		r.entries[si.robIndex].done = true
	}
}

// SquashAfter removes every instruction younger than pivot (exclusive),
// returning them youngest-first (the order rename-map restoration needs).
// The returned slice is a reusable scratch buffer, valid until the next
// call.
func (r *ROB) SquashAfter(pivot *SimInstr) []*SimInstr {
	squashed := r.squashScratch[:0]
	for r.count > 0 {
		lastIdx := (r.tail - 1 + len(r.entries)) % len(r.entries)
		last := r.entries[lastIdx].instr
		if last == pivot {
			break
		}
		r.entries[lastIdx] = robEntry{}
		r.tail = lastIdx
		r.count--
		squashed = append(squashed, last)
	}
	r.squashScratch = squashed
	return squashed
}

// Walk visits the in-flight instructions oldest-first.
func (r *ROB) Walk(f func(si *SimInstr, done bool)) {
	idx := r.head
	for i := 0; i < r.count; i++ {
		f(r.entries[idx].instr, r.entries[idx].done)
		idx = (idx + 1) % len(r.entries)
	}
}
