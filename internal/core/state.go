package core

import (
	"riscvsim/internal/cache"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
	"riscvsim/internal/rename"
	"riscvsim/internal/stats"
)

// InstrView is the JSON-friendly projection of a dynamic instruction for
// the web client: its text, phase, flags and the timestamps of every
// completed pipeline phase (paper Fig. 3).
type InstrView struct {
	ID          uint64 `json:"id"`
	PC          int    `json:"pc"`
	Text        string `json:"text"`
	Phase       string `json:"phase"`
	FetchedAt   uint64 `json:"fetchedAt,omitempty"`
	DecodedAt   uint64 `json:"decodedAt,omitempty"`
	IssuedAt    uint64 `json:"issuedAt,omitempty"`
	ExecutedAt  uint64 `json:"executedAt,omitempty"`
	MemoryAt    uint64 `json:"memoryAt,omitempty"`
	CommittedAt uint64 `json:"committedAt,omitempty"`
	Speculative bool   `json:"speculative,omitempty"`
	Squashed    bool   `json:"squashed,omitempty"`
	Exception   string `json:"exception,omitempty"`
	DestTag     string `json:"destTag,omitempty"`
	Mispredict  bool   `json:"mispredict,omitempty"`
}

func viewOf(si *SimInstr) InstrView {
	v := InstrView{
		ID:          si.ID,
		PC:          si.PC,
		Text:        si.Static.String(),
		Phase:       si.Phase.String(),
		FetchedAt:   si.FetchedAt,
		DecodedAt:   si.DecodedAt,
		IssuedAt:    si.IssuedAt,
		ExecutedAt:  si.ExecutedAt,
		MemoryAt:    si.MemoryAt,
		CommittedAt: si.CommittedAt,
		Squashed:    si.Squashed,
		Mispredict:  si.mispredict,
	}
	if si.Exc.Occurred() {
		v.Exception = si.Exc.Error()
	}
	if si.hasDest {
		v.DestTag = rename.TagName(si.destTag)
	}
	return v
}

// RegView is one architectural register with its committed value and, when
// renamed, the tag of its newest speculative copy.
type RegView struct {
	Name    string `json:"name"`
	Alias   string `json:"alias,omitempty"`
	Value   string `json:"value"`
	Renamed string `json:"renamed,omitempty"`
}

// FUView is one functional unit's display state.
type FUView struct {
	Name     string     `json:"name"`
	Class    string     `json:"class"`
	Busy     bool       `json:"busy"`
	InFlight int        `json:"inFlight,omitempty"`
	Instr    *InstrView `json:"instr,omitempty"`
	DoneAt   uint64     `json:"doneAt,omitempty"`
}

// State is a complete snapshot of the processor for the schematic view
// (paper Fig. 12): every block's contents, both register files, the cache
// lines, the memory pointer registry and the headline statistics.
type State struct {
	Cycle      uint64 `json:"cycle"`
	PC         int    `json:"pc"`
	Halted     bool   `json:"halted"`
	HaltReason string `json:"haltReason,omitempty"`

	DecodeBuffer []InstrView            `json:"decodeBuffer"`
	ROB          []InstrView            `json:"rob"`
	Windows      map[string][]InstrView `json:"issueWindows"`
	FUs          []FUView               `json:"functionalUnits"`
	LoadBuffer   []InstrView            `json:"loadBuffer"`
	StoreBuffer  []InstrView            `json:"storeBuffer"`

	IntRegs   []RegView         `json:"intRegisters"`
	FloatRegs []RegView         `json:"floatRegisters"`
	SpecRegs  []rename.SpecView `json:"speculativeRegisters"`

	CacheLines []cache.LineView `json:"cacheLines,omitempty"`
	Pointers   []memory.Pointer `json:"memoryPointers"`

	Stats *stats.Report `json:"stats"`
	Log   []LogEntry    `json:"log,omitempty"`
}

// State captures the current snapshot. includeLog controls whether the
// debug log rides along (it can be large).
func (s *Simulation) State(includeLog bool) *State {
	st := &State{
		Cycle:      s.cycle,
		PC:         s.fetch.pc,
		Halted:     s.halted,
		HaltReason: s.haltReason,
		Windows:    make(map[string][]InstrView, 4),
		Stats:      s.Report(),
		Pointers:   s.mem.Pointers(),
		SpecRegs:   s.rf.LiveView(s.regs),
		CacheLines: s.l1.Lines(),
	}
	for _, si := range s.pendingDecode() {
		st.DecodeBuffer = append(st.DecodeBuffer, viewOf(si))
	}
	s.rob.Walk(func(si *SimInstr, done bool) {
		st.ROB = append(st.ROB, viewOf(si))
	})
	for class, w := range s.windows {
		var views []InstrView
		for _, si := range w.Snapshot() {
			views = append(views, viewOf(si))
		}
		st.Windows[isa.FUClass(class).String()] = views
	}
	for _, fu := range s.fus {
		fv := FUView{Name: fu.Name(), Class: fu.Class().String(), Busy: fu.Busy(), InFlight: fu.InFlight()}
		if fu.Busy() {
			iv := viewOf(fu.Current())
			fv.Instr = &iv
			fv.DoneAt = fu.nextDone()
		}
		st.FUs = append(st.FUs, fv)
	}
	for _, si := range s.lsu.Loads() {
		st.LoadBuffer = append(st.LoadBuffer, viewOf(si))
	}
	for _, si := range s.lsu.Stores() {
		st.StoreBuffer = append(st.StoreBuffer, viewOf(si))
	}
	for i := 0; i < isa.NumRegs; i++ {
		st.IntRegs = append(st.IntRegs, s.regView(isa.RegInt, i))
		st.FloatRegs = append(st.FloatRegs, s.regView(isa.RegFloat, i))
	}
	if includeLog {
		st.Log = s.log
	}
	return st
}

func (s *Simulation) regView(class isa.RegClass, idx int) RegView {
	var desc *isa.RegisterDesc
	if class == isa.RegInt {
		desc = s.regs.Int(idx)
	} else {
		desc = s.regs.Float(idx)
	}
	rv := RegView{Name: desc.Name, Value: s.rf.ArchValue(class, idx).String()}
	if len(desc.Aliases) > 0 {
		rv.Alias = desc.Aliases[0]
	}
	if tags := s.rf.RenamedCopies(class, idx); len(tags) > 0 {
		rv.Renamed = rename.TagName(tags[len(tags)-1])
	}
	return rv
}
