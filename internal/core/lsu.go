package core

import (
	"fmt"

	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
	"riscvsim/internal/trace"
)

// LSU combines the load buffer, the store buffer and the memory unit that
// talks to the cache (paper §II-A: "load/store buffers, and a memory unit
// connected to the cache").
//
// Discipline: loads execute speculatively out of order but never bypass an
// older store with an unknown address; an older store to the same bytes
// forwards its data when it fully covers the load, otherwise the load
// waits until that store has drained to the cache. Stores write the cache
// only after they commit.
type LSU struct {
	loadCap  int
	storeCap int

	loads  []*SimInstr // program order (by ID)
	stores []*SimInstr // in-flight, not yet committed, program order

	// committed stores wait here for the memory unit to drain them.
	committed []*SimInstr

	port memory.Port

	// onTrace, when set by Simulation.SetTracer, reports load completions
	// (the memory pipeline's writeback transitions) to the pipeline
	// tracer. nil when tracing is off — same nil-guard discipline as the
	// core's emission sites.
	onTrace func(now uint64, si *SimInstr, st trace.Stage, detail string)

	// onRecycle, when set by the owning simulation, reclaims a committed
	// store's instruction instance once it has drained to the cache — the
	// last point anything references it.
	onRecycle func(si *SimInstr)

	// completedScratch is the reusable Step result buffer; tx is the
	// reusable memory transaction. Both are only valid within one call.
	completedScratch []*SimInstr
	tx               memory.Transaction

	// Statistics.
	loadCount     uint64
	storeCount    uint64
	forwardCount  uint64
	stallUnknown  uint64 // load stalled behind a store with unknown address
	stallPartial  uint64 // load stalled on a partial overlap
	busCycles     uint64 // cycles the memory port was occupied
	fullStallsLd  uint64
	fullStallsSt  uint64
	drainedStores uint64
}

// NewLSU builds the load/store subsystem over a memory port (the L1 cache
// or raw memory).
func NewLSU(loadCap, storeCap int, port memory.Port) *LSU {
	return &LSU{loadCap: loadCap, storeCap: storeCap, port: port}
}

// CanAccept reports whether a new memory instruction of the given kind has
// buffer space (checked at rename/dispatch).
func (l *LSU) CanAccept(isStore bool) bool {
	if isStore {
		if len(l.stores) >= l.storeCap {
			l.fullStallsSt++
			return false
		}
		return true
	}
	if len(l.loads) >= l.loadCap {
		l.fullStallsLd++
		return false
	}
	return true
}

// Add registers a dispatched memory instruction in program order.
func (l *LSU) Add(si *SimInstr) {
	if si.IsStore() {
		l.stores = append(l.stores, si)
		l.storeCount++
	} else {
		l.loads = append(l.loads, si)
		l.loadCount++
	}
}

// OnCommitStore moves a committed store to the drain queue; the memory
// unit writes it to the cache asynchronously.
func (l *LSU) OnCommitStore(si *SimInstr) {
	for i, st := range l.stores {
		if st == si {
			l.stores = append(l.stores[:i], l.stores[i+1:]...)
			break
		}
	}
	l.committed = append(l.committed, si)
}

// olderStoreConflict classifies the oldest problematic store for a load:
// returns (blocked, forwardable store).
func (l *LSU) olderStoreConflict(ld *SimInstr) (bool, *SimInstr) {
	check := func(st *SimInstr) (bool, *SimInstr, bool) {
		if st.ID >= ld.ID {
			return false, nil, false
		}
		if !st.addrReady {
			l.stallUnknown++
			return true, nil, true
		}
		stW := st.Static.Desc.MemWidth
		ldW := ld.Static.Desc.MemWidth
		if st.effAddr < ld.effAddr+ldW && ld.effAddr < st.effAddr+stW {
			// Overlap. Full coverage forwards; partial blocks.
			if st.effAddr <= ld.effAddr && st.effAddr+stW >= ld.effAddr+ldW {
				return false, st, false
			}
			l.stallPartial++
			return true, nil, true
		}
		return false, nil, false
	}
	var forward *SimInstr
	// Committed stores first (older), then in-flight, youngest match wins.
	for _, st := range l.committed {
		blocked, fwd, stop := check(st)
		if blocked {
			return true, nil
		}
		if fwd != nil {
			forward = fwd
		}
		_ = stop
	}
	for _, st := range l.stores {
		blocked, fwd, _ := check(st)
		if blocked {
			return true, nil
		}
		if fwd != nil {
			forward = fwd
		}
	}
	return false, forward
}

// Step advances the memory unit by one cycle: drains one committed store
// to the cache and issues/completes loads. Completed loads are returned so
// the core can write back their values. A fault on a store that already
// committed is returned as a machine-stopping exception.
func (l *LSU) Step(now uint64) (completed []*SimInstr, storeExc *fault.Exception) {
	// Drain one committed store per cycle through the memory port.
	if len(l.committed) > 0 {
		st := l.committed[0]
		l.tx = memory.Transaction{
			Addr: st.effAddr, Size: st.Static.Desc.MemWidth,
			IsStore: true, Data: st.storeData,
		}
		if _, exc := l.port.Access(&l.tx, now); exc != nil {
			// The store already committed; its fault stops the machine.
			exc.Cycle = now
			exc.PC = st.PC
			storeExc = exc
		}
		// Shift the queue in place so the backing array is reused.
		n := copy(l.committed, l.committed[1:])
		l.committed[n] = nil
		l.committed = l.committed[:n]
		l.drainedStores++
		l.busCycles++
		// Nothing references a drained store anymore.
		if l.onRecycle != nil {
			l.onRecycle(st)
		}
	}

	// Issue loads: oldest first, one cache access per cycle; forwarded
	// loads do not consume the port.
	portFree := true
	for _, ld := range l.loads {
		if !ld.addrReady || ld.memIssued || ld.Squashed {
			continue
		}
		blocked, fwd := l.olderStoreConflict(ld)
		if blocked {
			// Conservative: younger loads must not bypass the
			// disambiguation stall either.
			break
		}
		if fwd != nil {
			// Store-to-load forwarding.
			shift := uint((ld.effAddr - fwd.effAddr) * 8)
			raw := fwd.storeData >> shift
			ld.memDoneAt = now + 1
			ld.memIssued = true
			ld.storeData = raw // reuse field as the forwarded payload
			l.forwardCount++
			continue
		}
		if !portFree {
			continue
		}
		l.tx = memory.Transaction{Addr: ld.effAddr, Size: ld.Static.Desc.MemWidth}
		finish, exc := l.port.Access(&l.tx, now)
		if exc != nil {
			exc.Cycle = now
			exc.PC = ld.PC
			ld.Exc = exc
			ld.memDoneAt = now + 1
			ld.memIssued = true
			continue
		}
		ld.storeData = l.tx.Data
		ld.memDoneAt = finish
		ld.memIssued = true
		portFree = false
		l.busCycles++
	}

	// Complete loads whose data has arrived. The completed slice is the
	// reusable scratch, valid until the next Step.
	completed = l.completedScratch[:0]
	kept := l.loads[:0]
	for _, ld := range l.loads {
		if ld.memIssued && now >= ld.memDoneAt && !ld.Squashed {
			completed = append(completed, ld)
			if l.onTrace != nil {
				detail := fmt.Sprintf("addr=%d", ld.effAddr)
				if ld.Exc.Occurred() {
					detail = "exception: " + ld.Exc.Error()
				}
				l.onTrace(now, ld, trace.StageWriteback, detail)
			}
			continue
		}
		kept = append(kept, ld)
	}
	for i := len(kept); i < len(l.loads); i++ {
		l.loads[i] = nil
	}
	l.loads = kept
	l.completedScratch = completed
	return completed, storeExc
}

// LoadValue converts a raw memory payload into the typed register value a
// load writes back.
func LoadValue(desc *isa.Desc, raw uint64) expr.Value {
	dst := desc.DestArg()
	switch {
	case dst != nil && dst.Kind == isa.ArgRegFloat:
		if desc.MemWidth == 8 {
			return expr.FromBits(raw, expr.Double)
		}
		return expr.FromBits(raw&0xFFFFFFFF, expr.Float)
	case desc.MemSigned:
		switch desc.MemWidth {
		case 1:
			return expr.NewInt(int32(int8(raw)))
		case 2:
			return expr.NewInt(int32(int16(raw)))
		default:
			return expr.NewInt(int32(uint32(raw)))
		}
	default:
		switch desc.MemWidth {
		case 1:
			return expr.NewInt(int32(uint32(uint8(raw))))
		case 2:
			return expr.NewInt(int32(uint32(uint16(raw))))
		default:
			return expr.NewInt(int32(uint32(raw)))
		}
	}
}

// RemoveSquashed drops wrong-path entries from both buffers.
func (l *LSU) RemoveSquashed() {
	loads := l.loads[:0]
	for _, ld := range l.loads {
		if !ld.Squashed {
			loads = append(loads, ld)
		}
	}
	for i := len(loads); i < len(l.loads); i++ {
		l.loads[i] = nil
	}
	l.loads = loads
	stores := l.stores[:0]
	for _, st := range l.stores {
		if !st.Squashed {
			stores = append(stores, st)
		}
	}
	for i := len(stores); i < len(l.stores); i++ {
		l.stores[i] = nil
	}
	l.stores = stores
}

// DrainAll forces every committed store through the memory port at once.
// Halt paths call it: a committed store is architecturally performed, so
// it must reach memory before the final cache flush even though the
// one-store-per-cycle drain schedule never got to it — otherwise the
// final memory image silently loses it. Timing is over at this point, so
// the port occupancy counter is not advanced; drainedStores still is,
// because the store does drain. Faults cannot occur here: the address
// was bounds-checked at execute, before the store could commit.
func (l *LSU) DrainAll(now uint64) {
	for _, st := range l.committed {
		l.tx = memory.Transaction{
			Addr: st.effAddr, Size: st.Static.Desc.MemWidth,
			IsStore: true, Data: st.storeData,
		}
		l.port.Access(&l.tx, now)
		l.drainedStores++
		if l.onRecycle != nil {
			l.onRecycle(st)
		}
	}
	for i := range l.committed {
		l.committed[i] = nil
	}
	l.committed = l.committed[:0]
}

// Drained reports whether no committed store is waiting for memory.
func (l *LSU) Drained() bool { return len(l.committed) == 0 }

// Loads returns the load-buffer contents (GUI display).
func (l *LSU) Loads() []*SimInstr { return append([]*SimInstr(nil), l.loads...) }

// Stores returns the store-buffer contents (GUI display).
func (l *LSU) Stores() []*SimInstr { return append([]*SimInstr(nil), l.stores...) }

// LSUStats reports the memory-pipeline counters.
type LSUStats struct {
	Loads          uint64 `json:"loads"`
	Stores         uint64 `json:"stores"`
	Forwards       uint64 `json:"forwards"`
	StallsUnknown  uint64 `json:"stallsUnknownAddr"`
	StallsPartial  uint64 `json:"stallsPartialOverlap"`
	BusBusyCycles  uint64 `json:"busBusyCycles"`
	LoadBufStalls  uint64 `json:"loadBufferFullStalls"`
	StoreBufStalls uint64 `json:"storeBufferFullStalls"`
	DrainedStores  uint64 `json:"drainedStores"`
}

// Stats returns the collected counters.
func (l *LSU) Stats() LSUStats {
	return LSUStats{
		Loads: l.loadCount, Stores: l.storeCount, Forwards: l.forwardCount,
		StallsUnknown: l.stallUnknown, StallsPartial: l.stallPartial,
		BusBusyCycles: l.busCycles,
		LoadBufStalls: l.fullStallsLd, StoreBufStalls: l.fullStallsSt,
		DrainedStores: l.drainedStores,
	}
}
