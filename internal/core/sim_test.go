package core

import (
	"testing"

	"riscvsim/internal/asm"
	"riscvsim/internal/config"
	"riscvsim/internal/expr"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

var (
	testSet  = isa.RV32IMF()
	testRegs = isa.NewRegisterFile()
)

// buildSim assembles src and constructs a simulation with the given config.
func buildSim(t testing.TB, cfg *config.CPU, src string) *Simulation {
	t.Helper()
	mem := memory.New(cfg.Memory)
	prog, err := asm.Assemble(src, testSet, testRegs, mem)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	sim, err := New(cfg, testSet, testRegs, prog, mem, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sim
}

// runSrc runs src to completion on the default architecture.
func runSrc(t testing.TB, src string) *Simulation {
	t.Helper()
	return runSrcOn(t, config.Default(), src)
}

func runSrcOn(t testing.TB, cfg *config.CPU, src string) *Simulation {
	t.Helper()
	sim := buildSim(t, cfg, src)
	sim.Run(2_000_000)
	if !sim.Halted() {
		t.Fatalf("simulation did not halt within 2M cycles (pc=%d, rob=%d)", sim.fetch.pc, sim.rob.Len())
	}
	return sim
}

// intReg reads an architectural integer register by name.
func intReg(t testing.TB, sim *Simulation, name string) int32 {
	t.Helper()
	d, ok := testRegs.Lookup(name)
	if !ok {
		t.Fatalf("no register %q", name)
	}
	return sim.Registers().ArchValue(isa.RegInt, d.Index).Int()
}

func floatReg(t testing.TB, sim *Simulation, name string) float32 {
	t.Helper()
	d, ok := testRegs.Lookup(name)
	if !ok {
		t.Fatalf("no register %q", name)
	}
	return sim.Registers().ArchValue(isa.RegFloat, d.Index).Float()
}

func doubleReg(t testing.TB, sim *Simulation, name string) float64 {
	t.Helper()
	d, ok := testRegs.Lookup(name)
	if !ok {
		t.Fatalf("no register %q", name)
	}
	return sim.Registers().ArchValue(isa.RegFloat, d.Index).Double()
}

// checkInt asserts a register's final value, the pattern the paper's
// per-instruction tests use ("checks the state at the end of the
// simulation", §IV).
func checkInt(t testing.TB, sim *Simulation, reg string, want int32) {
	t.Helper()
	if got := intReg(t, sim, reg); got != want {
		t.Errorf("%s = %d, want %d", reg, got, want)
	}
}

func TestEmptyProgramHalts(t *testing.T) {
	sim := runSrc(t, "nop\n")
	if sim.HaltReason() != "pipeline empty" {
		t.Errorf("halt reason = %q", sim.HaltReason())
	}
	if sim.Report().Committed != 1 {
		t.Errorf("committed = %d, want 1", sim.Report().Committed)
	}
}

func TestLinearArithmetic(t *testing.T) {
	sim := runSrc(t, `
li a0, 10
li a1, 32
add a2, a0, a1
`)
	checkInt(t, sim, "a2", 42)
}

func TestDataDependencyChain(t *testing.T) {
	sim := runSrc(t, `
li a0, 1
add a1, a0, a0
add a2, a1, a1
add a3, a2, a2
add a4, a3, a3
`)
	checkInt(t, sim, "a4", 16)
}

func TestStackPointerInitialized(t *testing.T) {
	cfg := config.Default()
	sim := runSrcOn(t, cfg, "mv a0, sp\n")
	if got := intReg(t, sim, "a0"); got != int32(cfg.Memory.CallStackSize) {
		t.Errorf("initial sp = %d, want %d", got, cfg.Memory.CallStackSize)
	}
}

func TestCallAndReturn(t *testing.T) {
	// main calls double(21) with the standard save/restore of ra on the
	// call stack; the final ret to the sentinel address ends the run.
	sim := runSrc(t, `
main:
  addi sp, sp, -4
  sw ra, 0(sp)
  li a0, 21
  call double
  mv s0, a0
  lw ra, 0(sp)
  addi sp, sp, 4
  ret
double:
  add a0, a0, a0
  ret
`)
	checkInt(t, sim, "s0", 42)
	if sim.HaltReason() != "pipeline empty" {
		t.Errorf("halt reason = %q", sim.HaltReason())
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 = 55
	sim := runSrc(t, `
li t0, 0
li t1, 1
li t2, 11
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`)
	checkInt(t, sim, "t0", 55)
}

func TestMemoryRoundTrip(t *testing.T) {
	sim := runSrc(t, `
la t0, buf
li t1, 1234
sw t1, 0(t0)
lw t2, 0(t0)
.data
buf: .zero 16
`)
	checkInt(t, sim, "t2", 1234)
}

func TestStoreToLoadForwarding(t *testing.T) {
	sim := runSrc(t, `
la t0, buf
li t1, 77
sw t1, 0(t0)
lw t2, 0(t0)
.data
buf: .zero 8
`)
	checkInt(t, sim, "t2", 77)
	// The load should have been satisfied by forwarding (the store had
	// not drained to the cache yet in most schedules); at minimum the
	// result must be correct, and if forwarding happened it is counted.
	r := sim.Report()
	if r.LSU.Forwards == 0 && r.LSU.Loads != 1 {
		t.Errorf("expected forwarding or a single load, got %+v", r.LSU)
	}
}

func TestLoadWaitsForStoreData(t *testing.T) {
	// Byte store then word load overlapping: partial overlap must stall
	// until the store drains, and the result must reflect the store.
	sim := runSrc(t, `
la t0, buf
li t1, 0xAB
sb t1, 1(t0)
lw t2, 0(t0)
.data
buf: .word 0
`)
	checkInt(t, sim, "t2", 0xAB00)
}

func TestGlobalDataInitialization(t *testing.T) {
	sim := runSrc(t, `
la t0, vals
lw t1, 0(t0)
lw t2, 4(t0)
add t3, t1, t2
.data
vals: .word 40, 2
`)
	checkInt(t, sim, "t3", 42)
}

func TestBranchTaken(t *testing.T) {
	sim := runSrc(t, `
li t0, 5
li t1, 5
beq t0, t1, equal
li t2, 111
j done
equal:
li t2, 222
done:
nop
`)
	checkInt(t, sim, "t2", 222)
}

func TestBranchNotTaken(t *testing.T) {
	sim := runSrc(t, `
li t0, 5
li t1, 6
beq t0, t1, equal
li t2, 111
j done
equal:
li t2, 222
done:
nop
`)
	checkInt(t, sim, "t2", 111)
}

func TestMispredictionRecovery(t *testing.T) {
	// A data-dependent branch the default (weakly-taken) predictor gets
	// wrong at least once; correctness must survive the flush.
	sim := runSrc(t, `
li t0, 0
li t1, 0
li t2, 20
loop:
  andi t3, t1, 1
  beqz t3, even
  addi t0, t0, 100
  j next
even:
  addi t0, t0, 1
next:
  addi t1, t1, 1
  bne t1, t2, loop
`)
	// 10 even increments (1) + 10 odd increments (100).
	checkInt(t, sim, "t0", 1010)
	if sim.Report().ROBFlushes == 0 {
		t.Error("expected at least one pipeline flush from a mispredict")
	}
	if sim.Report().Squashed == 0 {
		t.Error("expected squashed wrong-path instructions")
	}
}

func TestIndirectJumpThroughTable(t *testing.T) {
	// jalr with a target loaded from memory (dynamic dispatch shape).
	sim := runSrc(t, `
la t0, table
lw t1, 4(t0)    # pointer to handler1
jalr ra, t1, 0
j done
handler0:
  li s0, 100
  ret
handler1:
  li s0, 200
  ret
done:
  nop
.data
table: .word handler0, handler1
`)
	checkInt(t, sim, "s0", 200)
}

func TestExceptionDivisionByZero(t *testing.T) {
	sim := runSrc(t, `
li a0, 7
li a1, 0
div a2, a0, a1
`)
	if sim.Exception() == nil {
		t.Fatal("expected an exception")
	}
	if sim.Exception().Kind.String() != "division by zero" {
		t.Errorf("exception = %v", sim.Exception())
	}
}

func TestExceptionOnlyRaisedAtCommit(t *testing.T) {
	// The faulting div sits on the not-taken path of a mispredicted
	// branch: it executes speculatively but must NOT kill the program.
	sim := runSrc(t, `
li t0, 1
li t1, 0
li s0, 0
beqz t0, bad      # never taken, but may be predicted taken
j good
bad:
  div t2, t0, t1  # division by zero on the wrong path
good:
  li s0, 42
`)
	if exc := sim.Exception(); exc != nil {
		t.Fatalf("speculative exception escaped: %v", exc)
	}
	checkInt(t, sim, "s0", 42)
}

func TestExceptionInvalidMemoryAccess(t *testing.T) {
	sim := runSrc(t, `
li t0, -100
lw t1, 0(t0)
`)
	if sim.Exception() == nil || sim.Exception().Kind.String() != "invalid memory access" {
		t.Fatalf("exception = %v", sim.Exception())
	}
}

func TestEcallHalts(t *testing.T) {
	sim := runSrc(t, `
li a0, 1
ecall
li a0, 2
`)
	checkInt(t, sim, "a0", 1)
	if sim.Exception() != nil {
		t.Error("ecall must not raise an exception")
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	sim := runSrc(t, `
li t0, 99
add x0, t0, t0
add t1, x0, x0
`)
	checkInt(t, sim, "t1", 0)
}

func TestSuperscalarBeatsScalarOnILP(t *testing.T) {
	// Independent instruction stream: the 4-wide machine must finish in
	// fewer cycles than the scalar one.
	src := `
li x5, 1
li x6, 2
li x7, 3
li x8, 4
add x9, x5, x5
add x10, x6, x6
add x11, x7, x7
add x12, x8, x8
add x13, x5, x6
add x14, x7, x8
add x15, x5, x7
add x16, x6, x8
`
	scalar := runSrcOn(t, config.Scalar(), src)
	wide, err := config.WidthPreset(4)
	if err != nil {
		t.Fatal(err)
	}
	wide4 := runSrcOn(t, wide, src)
	if wide4.Cycle() >= scalar.Cycle() {
		t.Errorf("4-wide took %d cycles, scalar %d — superscalar should win on ILP",
			wide4.Cycle(), scalar.Cycle())
	}
	if ipc := wide4.Report().IPC; ipc <= 1.0 {
		t.Errorf("4-wide IPC = %.2f, want > 1 on an ILP-rich stream", ipc)
	}
}

func TestBackwardSimulationMatchesForward(t *testing.T) {
	src := `
li t0, 0
li t1, 1
li t2, 30
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`
	sim := buildSim(t, config.Default(), src)
	for i := 0; i < 40; i++ {
		sim.Step()
	}
	// Forward reference: a fresh run to cycle 39.
	fwd, err := sim.ReplayTo(39)
	if err != nil {
		t.Fatal(err)
	}
	// Backward step from 40.
	back, err := sim.StepBack()
	if err != nil {
		t.Fatal(err)
	}
	if back.Cycle() != 39 || fwd.Cycle() != 39 {
		t.Fatalf("cycles: back=%d fwd=%d", back.Cycle(), fwd.Cycle())
	}
	// The architectural state must be identical (determinism).
	for i := 0; i < isa.NumRegs; i++ {
		bv := back.Registers().ArchValue(isa.RegInt, i)
		fv := fwd.Registers().ArchValue(isa.RegInt, i)
		if bv.Bits() != fv.Bits() {
			t.Errorf("x%d differs: back=%v fwd=%v", i, bv, fv)
		}
	}
	br, fr := back.Report(), fwd.Report()
	if br.Committed != fr.Committed || br.ROBFlushes != fr.ROBFlushes ||
		br.Fetched != fr.Fetched {
		t.Errorf("reports differ: back=%+v fwd=%+v", br, fr)
	}
}

func TestBackwardAtCycleZeroFails(t *testing.T) {
	sim := buildSim(t, config.Default(), "nop\n")
	if _, err := sim.StepBack(); err == nil {
		t.Error("StepBack at cycle 0 should fail")
	}
}

func TestDeterministicRuns(t *testing.T) {
	src := `
li t0, 0
li t1, 1
li t2, 50
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`
	a := runSrc(t, src)
	b := runSrc(t, src)
	if a.Cycle() != b.Cycle() {
		t.Errorf("two identical runs took %d and %d cycles", a.Cycle(), b.Cycle())
	}
}

func TestInstructionTimestampsMonotonic(t *testing.T) {
	sim := buildSim(t, config.Default(), `
li t0, 3
li t1, 4
add t2, t0, t1
`)
	var committed []*SimInstr
	for !sim.Halted() {
		sim.Step()
		// Capture instruction timestamps via the ROB before commit.
	}
	_ = committed
	// Verify through the report instead: cycles must be positive and
	// committed == 3.
	r := sim.Report()
	if r.Committed != 3 {
		t.Errorf("committed = %d", r.Committed)
	}
}

func TestStateSnapshot(t *testing.T) {
	sim := buildSim(t, config.Default(), `
li t0, 1
li t1, 2
add t2, t0, t1
lw t3, 0(sp)
`)
	for i := 0; i < 3; i++ {
		sim.Step()
	}
	st := sim.State(true)
	if st.Cycle != 3 {
		t.Errorf("state cycle = %d", st.Cycle)
	}
	if len(st.IntRegs) != 32 || len(st.FloatRegs) != 32 {
		t.Error("register views incomplete")
	}
	if st.Stats == nil {
		t.Error("stats missing from state")
	}
	if len(st.FUs) == 0 {
		t.Error("FU views missing")
	}
	// sp must display its initialized value.
	if st.IntRegs[2].Value == "0" {
		t.Error("sp view should be non-zero")
	}
}

func TestStatisticsReport(t *testing.T) {
	sim := runSrc(t, `
li t0, 0
li t1, 1
li t2, 10
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
fadd.s f1, f2, f3
`)
	r := sim.Report()
	if r.Cycles == 0 || r.Committed == 0 {
		t.Fatal("empty report")
	}
	if r.IPC <= 0 || r.IPC > float64(4) {
		t.Errorf("IPC = %v", r.IPC)
	}
	if r.Flops != 1 {
		t.Errorf("FLOPs = %d, want 1", r.Flops)
	}
	if r.DynamicMix["kJumpbranch"] == 0 {
		t.Error("dynamic mix missing branches")
	}
	if r.StaticMix["kArithmetic"] == 0 {
		t.Error("static mix missing arithmetic")
	}
	if r.WallTimeSec <= 0 {
		t.Error("wall time not computed")
	}
	text := r.FormatText()
	for _, want := range []string{"IPC", "Branch prediction", "L1 cache", "Instruction mix"} {
		if !contains(text, want) {
			t.Errorf("text report missing %q", want)
		}
	}
	if _, err := r.JSON(); err != nil {
		t.Errorf("JSON export: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDebugLogHasCycleTimestamps(t *testing.T) {
	sim := runSrc(t, `
li t0, 1
beqz t0, never   # forces predictor training either way
li t1, 2
never:
nop
`)
	log := sim.Log()
	// At minimum the halt message is logged.
	if len(log) == 0 {
		t.Fatal("debug log empty")
	}
	for _, e := range log {
		if e.Cycle == 0 {
			t.Errorf("log entry without cycle: %+v", e)
		}
	}
}

func TestFlushPenaltyCosts(t *testing.T) {
	// The same mispredict-heavy program must take longer with a larger
	// flush penalty.
	src := `
li t0, 0
li t1, 0
li t2, 40
loop:
  andi t3, t1, 1
  beqz t3, even
  addi t0, t0, 2
  j next
even:
  addi t0, t0, 1
next:
  addi t1, t1, 1
  bne t1, t2, loop
`
	cheap := config.Default()
	cheap.FlushPenalty = 0
	costly := config.Default()
	costly.FlushPenalty = 12
	a := runSrcOn(t, cheap, src)
	b := runSrcOn(t, costly, src)
	if a.Report().ROBFlushes == 0 {
		t.Skip("no mispredicts; pattern learned too fast")
	}
	if b.Cycle() <= a.Cycle() {
		t.Errorf("flush penalty 12 took %d cycles, penalty 0 took %d", b.Cycle(), a.Cycle())
	}
}

func TestExprWritebackTypes(t *testing.T) {
	sim := runSrc(t, `
li t0, -1
sltu t1, x0, t0   # 0 < 0xFFFFFFFF unsigned -> 1
slt t2, t0, x0    # -1 < 0 signed -> 1
`)
	checkInt(t, sim, "t1", 1)
	checkInt(t, sim, "t2", 1)
}

func TestRenameFileStallDoesNotDeadlock(t *testing.T) {
	// A tiny rename file forces stalls; the program must still finish.
	cfg := config.Scalar()
	cfg.RenameRegisters = 4
	cfg.ROBSize = 4
	sim := runSrcOn(t, cfg, `
li t0, 1
li t1, 2
li t2, 3
li t3, 4
add t4, t0, t1
add t5, t2, t3
add t6, t4, t5
`)
	checkInt(t, sim, "t6", 10)
	if sim.Report().RenameStalls == 0 && sim.Report().DecodeStalls == 0 {
		t.Log("note: no stalls observed; acceptable but unexpected")
	}
}

func TestFloatPipeline(t *testing.T) {
	sim := runSrc(t, `
la t0, vals
flw f0, 0(t0)
flw f1, 4(t0)
fadd.s f2, f0, f1
fmul.s f3, f0, f1
fsw f2, 8(t0)
lw t1, 8(t0)
.data
vals: .float 1.5, 2.5
      .zero 8
`)
	if got := floatReg(t, sim, "f2"); got != 4.0 {
		t.Errorf("f2 = %v, want 4.0", got)
	}
	if got := floatReg(t, sim, "f3"); got != 3.75 {
		t.Errorf("f3 = %v, want 3.75", got)
	}
	// The stored bits loaded back into an int register.
	if got := intReg(t, sim, "t1"); got != int32(expr.NewFloat(4.0).Bits()) {
		t.Errorf("t1 = %#x, want float bits of 4.0", got)
	}
}

func TestDoublePrecision(t *testing.T) {
	sim := runSrc(t, `
la t0, vals
fld f0, 0(t0)
fld f1, 8(t0)
fmul.d f2, f0, f1
.data
vals: .double 1.5, -2.0
`)
	if got := doubleReg(t, sim, "f2"); got != -3.0 {
		t.Errorf("f2 = %v, want -3.0", got)
	}
}
