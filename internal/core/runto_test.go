package core

import (
	"testing"

	"riscvsim/internal/config"
)

// srcRunTo is a store-heavy loop: wide enough commit pressure that the
// 2-wide commit stage would overshoot naive cycle-based stops, with
// memory traffic so coherence (store buffer, dirty lines) matters.
const srcRunTo = `
  li x5, 40
  li x6, 0
  li x7, 2048
loop:
  add x6, x6, x5
  sw x6, 0(x7)
  addi x7, x7, 4
  addi x5, x5, -1
  bne x5, x0, loop
  ecall
`

// TestRunToCommittedExact: RunToCommitted stops at exactly the requested
// committed count in both engines, and a cut-then-continue run reaches
// the same final architectural state as an uninterrupted one.
func TestRunToCommittedExact(t *testing.T) {
	ref := runSrc(t, srcRunTo)
	total := ref.Committed()
	if total < 50 {
		t.Fatalf("reference run committed only %d instructions", total)
	}
	for _, mode := range []EngineMode{EngineSpecialized, EngineFastForward} {
		for _, n := range []uint64{1, 3, total / 3, total / 2, total - 1} {
			s := buildSim(t, config.Default(), srcRunTo)
			s.SetEngineMode(mode)
			s.RunToCommitted(n, 1_000_000)
			if got := s.Committed(); got != n {
				t.Fatalf("%v RunToCommitted(%d): committed %d", mode, n, got)
			}
			if s.Halted() {
				t.Fatalf("%v RunToCommitted(%d): halted early", mode, n)
			}
			s.Run(1_000_000)
			if got, want := s.Committed(), total; got != want {
				t.Errorf("%v cut at %d then continue: committed %d, want %d", mode, n, got, want)
			}
			if got, want := s.ArchHash(), ref.ArchHash(); got != want {
				t.Errorf("%v cut at %d then continue: ArchHash %#x, want %#x", mode, n, got, want)
			}
		}
	}
}

// TestRunToCommittedCrossEngine: the architectural state at a
// committed-count boundary is path-independent — a detailed run and a
// fast-forward run stopped at the same count hash identically once the
// memory hierarchy is made coherent. This is the verification invariant
// of time-parallel interval simulation (sim/parallel.go).
func TestRunToCommittedCrossEngine(t *testing.T) {
	ref := runSrc(t, srcRunTo)
	total := ref.Committed()
	for _, n := range []uint64{2, total / 4, total / 2, total - 3} {
		det := buildSim(t, config.Default(), srcRunTo)
		det.RunToCommitted(n, 1_000_000)
		det.DrainCoherent()

		ff := buildSim(t, config.Default(), srcRunTo)
		ff.SetEngineMode(EngineFastForward)
		ff.RunToCommitted(n, 1_000_000)
		ff.DrainCoherent()

		if got, want := det.Committed(), n; got != want {
			t.Fatalf("detailed stop at %d: committed %d", n, got)
		}
		if got, want := ff.Committed(), n; got != want {
			t.Fatalf("fast-forward stop at %d: committed %d", n, got)
		}
		if got, want := det.ArchHash(), ff.ArchHash(); got != want {
			t.Errorf("boundary %d: detailed ArchHash %#x != fast-forward %#x", n, got, want)
		}
	}
}

// TestRunToCommittedDrainContinue: DrainCoherent mid-run (the healing
// path hashes a live machine, then keeps simulating on it) perturbs only
// timing — the continued run still ends in the exact final state.
func TestRunToCommittedDrainContinue(t *testing.T) {
	ref := runSrc(t, srcRunTo)
	total := ref.Committed()
	s := buildSim(t, config.Default(), srcRunTo)
	s.RunToCommitted(total/2, 1_000_000)
	s.DrainCoherent()
	s.Run(1_000_000)
	if !s.Halted() {
		t.Fatal("drained run did not halt")
	}
	if got, want := s.Committed(), total; got != want {
		t.Errorf("committed %d, want %d", got, want)
	}
	if got, want := s.ArchHash(), ref.ArchHash(); got != want {
		t.Errorf("ArchHash %#x, want %#x", got, want)
	}
}
