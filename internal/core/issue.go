package core

import (
	"riscvsim/internal/isa"
	"riscvsim/internal/rename"
)

// issueWindow is the reservation-station pool in front of one functional
// unit class (the paper's "issue windows for the FX and FP ALUs, branch
// unit, and load/store components", §II-A).
type issueWindow struct {
	class    isa.FUClass
	capacity int
	waiting  []*SimInstr

	// Statistics.
	occupancySum uint64
	fullStalls   uint64
}

func newIssueWindow(class isa.FUClass, capacity int) *issueWindow {
	return &issueWindow{class: class, capacity: capacity}
}

// Full reports whether the window cannot accept another instruction.
func (w *issueWindow) Full() bool { return len(w.waiting) >= w.capacity }

// Len returns the current occupancy.
func (w *issueWindow) Len() int { return len(w.waiting) }

// Insert places a renamed instruction into the window.
func (w *issueWindow) Insert(si *SimInstr) {
	if w.Full() {
		panic("core: issue window overflow " + w.class.String())
	}
	w.waiting = append(w.waiting, si)
}

// SelectReady picks the oldest instruction whose operands are all
// available and that the unit supports, removing it from the window.
// Returns nil when nothing is ready.
func (w *issueWindow) SelectReady(rf *rename.File, fu *FU) *SimInstr {
	for i, si := range w.waiting {
		if !fu.Supports(si) {
			continue
		}
		if si.srcsReady(rf) {
			w.waiting = append(w.waiting[:i], w.waiting[i+1:]...)
			return si
		}
	}
	return nil
}

// RemoveSquashed drops wrong-path instructions after a flush.
func (w *issueWindow) RemoveSquashed() {
	kept := w.waiting[:0]
	for _, si := range w.waiting {
		if !si.Squashed {
			kept = append(kept, si)
		}
	}
	for i := len(kept); i < len(w.waiting); i++ {
		w.waiting[i] = nil
	}
	w.waiting = kept
}

// CountOccupancy accumulates the mean-occupancy statistic.
func (w *issueWindow) CountOccupancy() {
	w.occupancySum += uint64(len(w.waiting))
	if w.Full() {
		w.fullStalls++
	}
}

// Snapshot lists the waiting instructions oldest-first (GUI display).
func (w *issueWindow) Snapshot() []*SimInstr {
	return append([]*SimInstr(nil), w.waiting...)
}
