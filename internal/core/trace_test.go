package core

import (
	"strings"
	"testing"

	"riscvsim/internal/config"
	"riscvsim/internal/trace"
)

const tracedLoop = `
addi t0, x0, 0
addi t1, x0, 4
loop:
  addi t0, t0, 1
  bne  t0, t1, loop
sw t0, 0(x0)
lw t2, 0(x0)
`

// tracedRun runs src to completion with an unfiltered ring attached.
func tracedRun(t *testing.T, src string) (*Simulation, *trace.Ring) {
	t.Helper()
	sim := buildSim(t, config.Default(), src)
	ring := trace.NewRing(1<<14, trace.NoFilter)
	sim.SetTracer(ring)
	sim.Run(2_000_000)
	if !sim.Halted() {
		t.Fatal("program did not halt")
	}
	return sim, ring
}

func TestTraceLifecycleOrdered(t *testing.T) {
	sim, ring := tracedRun(t, tracedLoop)
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("no events collected")
	}
	// Events arrive in nondecreasing cycle order.
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("event %d cycle %d precedes event %d cycle %d",
				i, events[i].Cycle, i-1, events[i-1].Cycle)
		}
	}

	lts := trace.Lifetimes(events)
	// Every committed instruction's lifetime must visit fetch, decode,
	// rename, dispatch, issue, execute and commit in nondecreasing cycles.
	order := []trace.Stage{
		trace.StageFetch, trace.StageDecode, trace.StageRename,
		trace.StageDispatch, trace.StageIssue, trace.StageExecute,
		trace.StageCommit,
	}
	committed := 0
	for _, lt := range lts {
		if lt.Squashed || lt.Stages[trace.StageCommit] == 0 {
			continue
		}
		committed++
		prev := uint64(0)
		for _, st := range order {
			c := lt.Stages[st]
			if c == 0 {
				t.Fatalf("instr #%d (%s) missing stage %v: %+v", lt.InstrID, lt.Disasm, st, lt)
			}
			if c < prev {
				t.Fatalf("instr #%d stage %v at cycle %d before previous stage at %d",
					lt.InstrID, st, c, prev)
			}
			prev = c
		}
	}
	if want := sim.Report().Committed; uint64(committed) != want {
		t.Errorf("trace shows %d committed lifetimes, report says %d", committed, want)
	}
}

func TestTraceWritebackForALUAndLoad(t *testing.T) {
	_, ring := tracedRun(t, tracedLoop)
	lts := trace.Lifetimes(ring.Events())
	var sawALU, sawLoad bool
	for _, lt := range lts {
		if lt.Squashed {
			continue
		}
		switch {
		case strings.HasPrefix(lt.Disasm, "addi"):
			if lt.Stages[trace.StageWriteback] != 0 {
				sawALU = true
			}
		case strings.HasPrefix(lt.Disasm, "lw"):
			if lt.Stages[trace.StageWriteback] == 0 {
				t.Errorf("load #%d has no writeback event (LSU hook broken): %+v", lt.InstrID, lt)
			}
			sawLoad = true
		}
	}
	if !sawALU {
		t.Error("no ALU writeback events observed")
	}
	if !sawLoad {
		t.Error("program's lw never traced")
	}
}

func TestTraceSquashEventsCarryCause(t *testing.T) {
	sim, ring := tracedRun(t, tracedLoop)
	if sim.Report().Squashed == 0 {
		t.Skip("loop run produced no squashes on this predictor config")
	}
	var squashes uint64
	for _, ev := range ring.Events() {
		if ev.Stage != trace.StageSquash {
			continue
		}
		squashes++
		if !strings.HasPrefix(ev.Detail, "mispredict #") {
			t.Errorf("squash event missing cause detail: %+v", ev)
		}
	}
	if squashes != sim.Report().Squashed {
		t.Errorf("trace shows %d squash events, report counted %d", squashes, sim.Report().Squashed)
	}
}

func TestTraceIssueDetailNamesFU(t *testing.T) {
	_, ring := tracedRun(t, tracedLoop)
	for _, ev := range ring.Events() {
		if ev.Stage == trace.StageIssue && ev.Detail == "" {
			t.Fatalf("issue event without FU name: %+v", ev)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	sim := runSrc(t, tracedLoop)
	if sim.Tracer() != nil {
		t.Error("fresh simulation has a tracer attached")
	}
}

func TestTraceReplayDoesNotReEmit(t *testing.T) {
	sim := buildSim(t, config.Default(), tracedLoop)
	ring := trace.NewRing(1<<14, trace.NoFilter)
	sim.SetTracer(ring)
	sim.Run(8)
	before := ring.Total()
	if before == 0 {
		t.Fatal("no events in the first 8 cycles")
	}
	back, err := sim.StepBack()
	if err != nil {
		t.Fatal(err)
	}
	if got := ring.Total(); got != before {
		t.Errorf("rewind re-emitted events: total %d -> %d", before, got)
	}
	if back.Tracer() == nil {
		t.Fatal("tracer did not carry over to the replayed simulation")
	}
	back.Step()
	if got := ring.Total(); got <= before {
		t.Error("forward stepping after a rewind emitted no events")
	}
}
