package core

import (
	"riscvsim/internal/ckpt"
	"riscvsim/internal/isa"
	"riscvsim/internal/rename"
)

// Checkpoint support: explicit serialization of every pipeline structure.
//
// The in-memory model is a graph of *SimInstr shared by the ROB, the issue
// windows, the functional units, the LSU buffers, the decode buffer and
// the fetch unit. The wire format replaces that pointer identity with
// index-based encoding: every live dynamic instruction is assigned an
// index in a single instruction table (ROB order, then decode buffer,
// then committed stores draining in the LSU — a disjoint cover of the
// live set, since everything else aliases into it), and each structure
// serializes references as table indices. A restored machine is
// cycle-for-cycle deterministic with the original: same State, same
// Report, at every future step.

// liveInstrs collects every live dynamic instruction exactly once, in a
// canonical order, and returns the table plus an index lookup.
func (s *Simulation) liveInstrs() ([]*SimInstr, map[*SimInstr]int) {
	var table []*SimInstr
	s.rob.Walk(func(si *SimInstr, done bool) { table = append(table, si) })
	table = append(table, s.pendingDecode()...)
	table = append(table, s.lsu.committed...)
	idx := make(map[*SimInstr]int, len(table))
	for i, si := range table {
		idx[si] = i
	}
	return table, idx
}

// instrRef encodes a nullable instruction reference as a table index. A
// live instruction missing from the table means the disjoint-cover
// invariant of liveInstrs broke (a pipeline change left an instruction
// reachable outside ROB/decode/committed-stores); that must fail the
// checkpoint loudly, never encode a wrong-but-decodable reference.
func instrRef(w *ckpt.Writer, idx map[*SimInstr]int, si *SimInstr) {
	if si == nil {
		w.Int(-1)
		return
	}
	i, ok := idx[si]
	if !ok {
		w.Failf("pipeline references instruction %s outside the live table", si)
		return
	}
	w.Int(i)
}

// readRef resolves a table index back to an instruction (or nil for -1).
func readRef(r *ckpt.Reader, table []*SimInstr) *SimInstr {
	i := r.Int()
	if r.Err() != nil || i == -1 {
		return nil
	}
	if i < 0 || i >= len(table) {
		r.Corrupt("instruction reference %d outside table of %d", i, len(table))
		return nil
	}
	return table[i]
}

// encodeInstr writes one dynamic instruction. The static instruction is
// referenced by its code index (PC); srcs rename references are tag
// indices into the rename file.
func encodeInstr(w *ckpt.Writer, si *SimInstr) {
	w.U64(si.ID)
	w.Int(si.PC)
	w.Byte(byte(si.Phase))
	w.U64(si.FetchedAt)
	w.U64(si.DecodedAt)
	w.U64(si.IssuedAt)
	w.U64(si.ExecutedAt)
	w.U64(si.MemoryAt)
	w.U64(si.CommittedAt)
	w.Len(int(si.nsrc))
	for i := 0; i < int(si.nsrc); i++ {
		src := &si.srcs[i]
		w.String(src.name)
		w.Byte(byte(src.class))
		w.Int(src.reg)
		w.Int(src.ref.Tag)
		w.Value(src.ref.Value)
		w.Bool(src.ref.Valid)
		w.Bool(src.captured)
		w.Value(src.value)
	}
	w.Bool(si.hasDest)
	if si.hasDest {
		w.Byte(byte(si.destClass))
		w.Int(si.destReg)
		w.Int(si.destTag)
		w.Int(si.destPrev)
	}
	w.Value(si.result)
	w.Bool(si.resultReady)
	w.Bool(si.predTaken)
	w.Int(si.predTarget)
	w.Bool(si.predStall)
	w.Bool(si.actualTaken)
	w.Int(si.actualTgt)
	w.Bool(si.mispredict)
	w.Int(si.effAddr)
	w.Bool(si.addrReady)
	w.U64(si.storeData)
	w.Bool(si.memIssued)
	w.U64(si.memDoneAt)
	w.Exception(si.Exc)
	w.Bool(si.Squashed)
}

// decodeInstr reads one dynamic instruction, resolving its static
// instruction from the program.
func (s *Simulation) decodeInstr(r *ckpt.Reader) *SimInstr {
	si := &SimInstr{}
	si.ID = r.U64()
	si.PC = r.Int()
	if r.Err() != nil {
		return si
	}
	if si.PC < 0 || si.PC >= len(s.prog.Instructions) {
		r.Corrupt("instruction pc %d outside code of %d", si.PC, len(s.prog.Instructions))
		return si
	}
	si.Static = s.prog.Instructions[si.PC]
	si.Phase = Phase(r.Byte())
	si.FetchedAt = r.U64()
	si.DecodedAt = r.U64()
	si.IssuedAt = r.U64()
	si.ExecutedAt = r.U64()
	si.MemoryAt = r.U64()
	si.CommittedAt = r.U64()
	nsrc := r.Len(maxSrcOperands)
	for i := 0; i < nsrc && r.Err() == nil; i++ {
		var src srcOperand
		src.name = r.String(64)
		src.class = isa.RegClass(r.Byte())
		src.reg = r.Int()
		src.ref.Tag = r.Int()
		src.ref.Value = r.Value()
		src.ref.Valid = r.Bool()
		src.captured = r.Bool()
		src.value = r.Value()
		if r.Err() != nil {
			break
		}
		if src.ref.Tag != rename.NoTag && (src.ref.Tag < 0 || src.ref.Tag >= s.rf.Size()) {
			r.Corrupt("source rename tag %d outside file of %d", src.ref.Tag, s.rf.Size())
			break
		}
		si.srcs[si.nsrc] = src
		si.nsrc++
	}
	si.hasDest = r.Bool()
	if si.hasDest {
		si.destClass = isa.RegClass(r.Byte())
		si.destReg = r.Int()
		si.destTag = r.Int()
		si.destPrev = r.Int()
		if r.Err() == nil && (si.destTag < 0 || si.destTag >= s.rf.Size()) {
			r.Corrupt("destination rename tag %d outside file of %d", si.destTag, s.rf.Size())
			return si
		}
	}
	si.result = r.Value()
	si.resultReady = r.Bool()
	si.predTaken = r.Bool()
	si.predTarget = r.Int()
	si.predStall = r.Bool()
	si.actualTaken = r.Bool()
	si.actualTgt = r.Int()
	si.mispredict = r.Bool()
	si.effAddr = r.Int()
	si.addrReady = r.Bool()
	si.storeData = r.U64()
	si.memIssued = r.Bool()
	si.memDoneAt = r.U64()
	si.Exc = r.Exception()
	si.Squashed = r.Bool()
	return si
}

// EncodeState serializes the complete simulation state (everything below
// the configuration/program level, which the caller's header carries).
func (s *Simulation) EncodeState(w *ckpt.Writer) {
	w.Section(ckpt.SecCore)
	w.U64(s.cycle)
	w.U64(s.nextID)
	w.Bool(s.halted)
	w.String(s.haltReason)
	w.Exception(s.exception)
	w.Bool(s.VerboseLog)
	w.U64(s.committedCount)
	w.U64(s.squashedCount)
	w.U64(s.flops)
	w.U64(s.robFlushes)
	w.U64(s.decodeStalls)
	w.U64(s.commitStalls)
	w.U64(s.renameStalls)
	w.U64(s.robOccSum)
	// Dynamic mix: non-zero counters in ascending key order — the same
	// bytes the historical map encoding produced (a map entry only ever
	// existed once its counter was incremented).
	nmix := 0
	for _, n := range s.dynMix {
		if n != 0 {
			nmix++
		}
	}
	w.Len(nmix)
	for k, n := range s.dynMix {
		if n != 0 {
			w.Int(k)
			w.U64(n)
		}
	}

	table, idx := s.liveInstrs()
	w.Section(ckpt.SecInstrs)
	w.Len(len(table))
	for _, si := range table {
		encodeInstr(w, si)
	}

	w.Section(ckpt.SecROB)
	w.Int(s.rob.head)
	w.Int(s.rob.count)
	s.rob.Walk(func(si *SimInstr, done bool) {
		instrRef(w, idx, si)
		w.Bool(done)
	})

	// Decode buffer.
	pending := s.pendingDecode()
	w.Len(len(pending))
	for _, si := range pending {
		instrRef(w, idx, si)
	}

	w.Section(ckpt.SecWindows)
	for _, win := range s.windows {
		w.U64(win.occupancySum)
		w.U64(win.fullStalls)
		w.Len(len(win.waiting))
		for _, si := range win.waiting {
			instrRef(w, idx, si)
		}
	}

	w.Section(ckpt.SecFUs)
	w.Int(len(s.fus))
	for _, fu := range s.fus {
		w.Bool(fu.hasAccept)
		w.U64(fu.lastAccept)
		w.U64(fu.busyCycles)
		w.U64(fu.execCount)
		w.U64(fu.totalCycles)
		w.Len(len(fu.inflight))
		for _, op := range fu.inflight {
			instrRef(w, idx, op.si)
			w.U64(op.doneAt)
		}
	}

	w.Section(ckpt.SecLSU)
	l := s.lsu
	for _, q := range [][]*SimInstr{l.loads, l.stores, l.committed} {
		w.Len(len(q))
		for _, si := range q {
			instrRef(w, idx, si)
		}
	}
	w.U64(l.loadCount)
	w.U64(l.storeCount)
	w.U64(l.forwardCount)
	w.U64(l.stallUnknown)
	w.U64(l.stallPartial)
	w.U64(l.busCycles)
	w.U64(l.fullStallsLd)
	w.U64(l.fullStallsSt)
	w.U64(l.drainedStores)

	w.Section(ckpt.SecFetch)
	w.Int(s.fetch.pc)
	w.U64(s.fetch.stalledUntil)
	instrRef(w, idx, s.fetch.waitBranch)
	w.U64(s.fetch.fetched)
	w.U64(s.fetch.stallCycles)

	s.rf.EncodeState(w)
	s.pred.EncodeState(w)
	s.l1.EncodeState(w)
	s.mem.EncodeState(w, s.initialMem)

	w.Section(ckpt.SecLog)
	w.Len(len(s.log))
	for _, e := range s.log {
		w.U64(e.Cycle)
		w.String(e.Msg)
	}

	w.Section(ckpt.SecDebug)
	bps := s.Breakpoints() // sorted
	w.Len(len(bps))
	for _, pc := range bps {
		w.Int(pc)
	}
	w.Len(len(s.watches))
	for _, wr := range s.watches {
		w.Int(wr.addr)
		w.Int(wr.size)
	}
	w.Bool(s.paused)
	w.String(s.pauseReason)
	w.U64(s.bpSkipID)
}

// DecodeState restores an encoded simulation state onto s, which must be
// freshly built by New from the same configuration and program the
// checkpoint was taken from (the sim facade re-assembles them from the
// checkpoint header). On any decode error the reader's error is set and
// s must be discarded.
func (s *Simulation) DecodeState(r *ckpt.Reader) {
	r.Section(ckpt.SecCore)
	s.cycle = r.U64()
	s.nextID = r.U64()
	s.halted = r.Bool()
	s.haltReason = r.String(1 << 16)
	s.exception = r.Exception()
	s.VerboseLog = r.Bool()
	s.committedCount = r.U64()
	s.squashedCount = r.U64()
	s.flops = r.U64()
	s.robFlushes = r.U64()
	s.decodeStalls = r.U64()
	s.commitStalls = r.U64()
	s.renameStalls = r.U64()
	s.robOccSum = r.U64()
	nmix := r.Len(256)
	s.dynMix = [isa.NumInstrTypes]uint64{}
	for i := 0; i < nmix && r.Err() == nil; i++ {
		k := r.Int()
		n := r.U64()
		if r.Err() != nil {
			break
		}
		if k < 0 || k >= isa.NumInstrTypes {
			r.Corrupt("dynamic-mix instruction type %d out of range", k)
			return
		}
		s.dynMix[k] = n
	}

	r.Section(ckpt.SecInstrs)
	n := r.Len(1 << 20)
	table := make([]*SimInstr, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		table = append(table, s.decodeInstr(r))
	}
	if r.Err() != nil {
		return
	}

	r.Section(ckpt.SecROB)
	head := r.Int()
	count := r.Int()
	if r.Err() != nil {
		return
	}
	if head < 0 || head >= s.rob.Cap() || count < 0 || count > s.rob.Cap() {
		r.Corrupt("ROB head %d / count %d outside capacity %d", head, count, s.rob.Cap())
		return
	}
	s.rob.head = head
	s.rob.count = count
	s.rob.tail = (head + count) % s.rob.Cap()
	for i := range s.rob.entries {
		s.rob.entries[i] = robEntry{}
	}
	for i := 0; i < count && r.Err() == nil; i++ {
		si := readRef(r, table)
		done := r.Bool()
		if si == nil {
			r.Corrupt("nil instruction in ROB slot %d", i)
			return
		}
		pos := (head + i) % s.rob.Cap()
		si.robIndex = pos
		s.rob.entries[pos] = robEntry{instr: si, done: done}
	}

	ndec := r.Len(s.decodeCap)
	s.decodeBuf = s.decodeBuf[:0]
	s.decodeHead = 0
	for i := 0; i < ndec && r.Err() == nil; i++ {
		if si := readRef(r, table); si != nil {
			s.decodeBuf = append(s.decodeBuf, si)
		}
	}

	r.Section(ckpt.SecWindows)
	for _, win := range s.windows {
		win.occupancySum = r.U64()
		win.fullStalls = r.U64()
		nw := r.Len(win.capacity)
		win.waiting = win.waiting[:0]
		for i := 0; i < nw && r.Err() == nil; i++ {
			if si := readRef(r, table); si != nil {
				win.waiting = append(win.waiting, si)
			}
		}
	}

	r.Section(ckpt.SecFUs)
	if nf := r.Int(); r.Err() == nil && nf != len(s.fus) {
		r.Corrupt("%d functional units, machine has %d", nf, len(s.fus))
		return
	}
	for _, fu := range s.fus {
		fu.hasAccept = r.Bool()
		fu.lastAccept = r.U64()
		fu.busyCycles = r.U64()
		fu.execCount = r.U64()
		fu.totalCycles = r.U64()
		ni := r.Len(len(table))
		fu.inflight = fu.inflight[:0]
		for i := 0; i < ni && r.Err() == nil; i++ {
			si := readRef(r, table)
			doneAt := r.U64()
			if si != nil {
				fu.inflight = append(fu.inflight, inflightOp{si: si, doneAt: doneAt})
			}
		}
	}

	r.Section(ckpt.SecLSU)
	l := s.lsu
	for _, q := range []*[]*SimInstr{&l.loads, &l.stores, &l.committed} {
		nq := r.Len(len(table))
		*q = (*q)[:0]
		for i := 0; i < nq && r.Err() == nil; i++ {
			if si := readRef(r, table); si != nil {
				*q = append(*q, si)
			}
		}
	}
	l.loadCount = r.U64()
	l.storeCount = r.U64()
	l.forwardCount = r.U64()
	l.stallUnknown = r.U64()
	l.stallPartial = r.U64()
	l.busCycles = r.U64()
	l.fullStallsLd = r.U64()
	l.fullStallsSt = r.U64()
	l.drainedStores = r.U64()

	r.Section(ckpt.SecFetch)
	s.fetch.pc = r.Int()
	s.fetch.stalledUntil = r.U64()
	s.fetch.waitBranch = readRef(r, table)
	s.fetch.fetched = r.U64()
	s.fetch.stallCycles = r.U64()

	s.rf.DecodeState(r)
	s.pred.DecodeState(r)
	s.l1.DecodeState(r)
	s.mem.DecodeState(r)

	r.Section(ckpt.SecLog)
	nlog := r.Len(s.logBound)
	s.log = s.log[:0]
	for i := 0; i < nlog && r.Err() == nil; i++ {
		e := LogEntry{Cycle: r.U64(), Msg: r.String(1 << 16)}
		s.log = append(s.log, e)
	}

	r.Section(ckpt.SecDebug)
	nbp := r.Len(len(s.prog.Instructions))
	s.breakpoints = nil
	for i := 0; i < nbp && r.Err() == nil; i++ {
		pc := r.Int()
		if r.Err() == nil {
			if s.breakpoints == nil {
				s.breakpoints = make(map[int]bool, nbp)
			}
			s.breakpoints[pc] = true
		}
	}
	nwatch := r.Len(1 << 16)
	s.watches = s.watches[:0]
	for i := 0; i < nwatch && r.Err() == nil; i++ {
		s.watches = append(s.watches, watchRange{addr: r.Int(), size: r.Int()})
	}
	s.paused = r.Bool()
	s.pauseReason = r.String(1 << 16)
	s.bpSkipID = r.U64()
}
