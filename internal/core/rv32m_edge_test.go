package core

import (
	"fmt"
	"math"
	"testing"

	"riscvsim/internal/config"
	"riscvsim/internal/fault"
)

// RV32M edge-case semantics, pinned in ALL engines: the specialized
// execPlan fast path, the forced expression interpreter and the fused
// fast-forward block plans must agree on the division-overflow case,
// every division/remainder-by-zero, and all mulh sign combinations — the
// first divergences a co-simulation fuzzer would otherwise find
// (internal/fuzz relies on these being identical).

// rv32mCase is one op applied to (a, b). Either want (a register value)
// or wantExc (an exact exception message) is checked.
type rv32mCase struct {
	op      string
	a, b    int32
	want    int32
	wantExc string
}

func rv32mCases() []rv32mCase {
	const minI32 = math.MinInt32
	mulh := func(a, b int32) int32 { return int32((int64(a) * int64(b)) >> 32) }
	mulhsu := func(a, b int32) int32 { return int32((int64(a) * int64(uint64(uint32(b)))) >> 32) }
	mulhu := func(a, b int32) int32 { return int32((uint64(uint32(a)) * uint64(uint32(b))) >> 32) }

	cases := []rv32mCase{
		// Signed division overflow: quotient wraps to MinInt32, remainder 0.
		{op: "div", a: minI32, b: -1, want: minI32},
		{op: "rem", a: minI32, b: -1, want: 0},
		// Ordinary signed division truncates toward zero.
		{op: "div", a: -7, b: 2, want: -3},
		{op: "rem", a: -7, b: 2, want: -1},
		// Division by zero traps (the paper's deviation from the RISC-V
		// spec) with engine-identical messages.
		{op: "div", a: 17, b: 0, wantExc: "division by zero: integer division 17 / 0"},
		{op: "div", a: minI32, b: 0, wantExc: fmt.Sprintf("division by zero: integer division %d / 0", minI32)},
		{op: "rem", a: -5, b: 0, wantExc: "division by zero: integer remainder -5 % 0"},
		{op: "divu", a: -1, b: 0, wantExc: "division by zero: unsigned division -1 / 0"},
		{op: "remu", a: 123, b: 0, wantExc: "division by zero: unsigned remainder 123 % 0"},
		// Unsigned division treats the bits as uint32.
		{op: "divu", a: -2, b: 3, want: int32(uint32(0xfffffffe) / 3)},
		{op: "remu", a: -2, b: 3, want: int32(uint32(0xfffffffe) % 3)},
	}
	// mulh/mulhsu/mulhu over every sign combination, including the
	// boundary values.
	operands := []int32{3, -3, math.MaxInt32, minI32, -1, 0x10000}
	for _, a := range operands {
		for _, b := range operands {
			cases = append(cases,
				rv32mCase{op: "mulh", a: a, b: b, want: mulh(a, b)},
				rv32mCase{op: "mulhsu", a: a, b: b, want: mulhsu(a, b)},
				rv32mCase{op: "mulhu", a: a, b: b, want: mulhu(a, b)},
			)
		}
	}
	return cases
}

// runRV32MCase runs one case through a full simulation in the given
// engine mode and returns the destination register and the exception.
func runRV32MCase(t *testing.T, mode EngineMode, c rv32mCase) (int32, *fault.Exception) {
	t.Helper()
	src := fmt.Sprintf("li a0, %d\nli a1, %d\n%s a2, a0, a1\n", c.a, c.b, c.op)
	sim := buildSim(t, config.Default(), src)
	sim.SetEngineMode(mode)
	sim.Run(100_000)
	if !sim.Halted() {
		t.Fatalf("%s %d,%d [%s]: did not halt", c.op, c.a, c.b, mode)
	}
	return intReg(t, sim, "a2"), sim.Exception()
}

func TestRV32MEdgeCasesAllEngines(t *testing.T) {
	for _, c := range rv32mCases() {
		c := c
		t.Run(fmt.Sprintf("%s/%d/%d", c.op, c.a, c.b), func(t *testing.T) {
			for _, mode := range []EngineMode{EngineSpecialized, EngineInterpreter, EngineFastForward} {
				got, exc := runRV32MCase(t, mode, c)
				if c.wantExc != "" {
					if exc == nil {
						t.Fatalf("[%s] expected exception %q, got none (a2=%d)", mode, c.wantExc, got)
					}
					if exc.Error() != c.wantExc {
						t.Errorf("[%s] exception = %q, want %q", mode, exc.Error(), c.wantExc)
					}
					continue
				}
				if exc != nil {
					t.Fatalf("[%s] unexpected exception: %v", mode, exc)
				}
				if got != c.want {
					t.Errorf("[%s] %s %d, %d = %d, want %d", mode, c.op, c.a, c.b, got, c.want)
				}
			}
		})
	}
}

// TestEngineModePropagates pins the knob's plumbing: replays and fresh
// copies inherit the selected engine, so rewind paths replay with the
// semantics that produced the original run.
func TestEngineModePropagates(t *testing.T) {
	sim := buildSim(t, config.Default(), "li a0, 1\nadd a1, a0, a0\n")
	sim.SetEngineMode(EngineInterpreter)
	if sim.EngineMode() != EngineInterpreter {
		t.Fatalf("EngineMode = %v after SetEngineMode(EngineInterpreter)", sim.EngineMode())
	}
	sim.Run(1000)
	replay, err := sim.ReplayTo(1)
	if err != nil {
		t.Fatalf("ReplayTo: %v", err)
	}
	if replay.EngineMode() != EngineInterpreter {
		t.Errorf("ReplayTo dropped the engine mode: %v", replay.EngineMode())
	}
	fresh, err := sim.Fresh()
	if err != nil {
		t.Fatalf("Fresh: %v", err)
	}
	if fresh.EngineMode() != EngineInterpreter {
		t.Errorf("Fresh dropped the engine mode: %v", fresh.EngineMode())
	}
}
