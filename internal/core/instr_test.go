package core

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// Per-instruction tests, one per RV32IMF(D) instruction, following the
// paper's test methodology: "Each instruction has its own test to verify
// its correct behavior. This type of test typically checks the state at
// the end of the simulation" (§IV).

func TestInstrLUI(t *testing.T) {
	sim := runSrc(t, "lui t0, 5\n")
	checkInt(t, sim, "t0", 5<<12)
}

func TestInstrAUIPC(t *testing.T) {
	sim := runSrc(t, "nop\nnop\nauipc t0, 1\n")
	// auipc at index 2: (1 << 12) + 2 in index addressing.
	checkInt(t, sim, "t0", (1<<12)+2)
}

func TestInstrJAL(t *testing.T) {
	sim := runSrc(t, `
jal t0, target
li t1, 111
target:
li t2, 5
`)
	checkInt(t, sim, "t0", 1) // link = pc+1 (index addressing)
	checkInt(t, sim, "t1", 0)
	checkInt(t, sim, "t2", 5)
}

func TestInstrJALR(t *testing.T) {
	sim := runSrc(t, `
li t0, 3
jalr t1, t0, 1    # jump to 3+1=4
li t2, 111
li t3, 222
li t4, 5
`)
	checkInt(t, sim, "t1", 2)
	checkInt(t, sim, "t2", 0)
	checkInt(t, sim, "t3", 0)
	checkInt(t, sim, "t4", 5)
}

// branchTest runs a conditional branch with the given operands and reports
// whether it was taken.
func branchTest(t *testing.T, op string, a, b int32) bool {
	t.Helper()
	sim := runSrc(t, `
li t0, `+itoa(int64(a))+`
li t1, `+itoa(int64(b))+`
`+op+` t0, t1, taken
li t2, 1
j out
taken:
li t2, 2
out:
nop
`)
	return intReg(t, sim, "t2") == 2
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	var buf [24]byte
	i := len(buf)
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestInstrBEQ(t *testing.T) {
	if !branchTest(t, "beq", 5, 5) || branchTest(t, "beq", 5, 6) {
		t.Error("beq semantics wrong")
	}
}

func TestInstrBNE(t *testing.T) {
	if branchTest(t, "bne", 5, 5) || !branchTest(t, "bne", 5, 6) {
		t.Error("bne semantics wrong")
	}
}

func TestInstrBLT(t *testing.T) {
	if !branchTest(t, "blt", -1, 1) || branchTest(t, "blt", 1, -1) || branchTest(t, "blt", 3, 3) {
		t.Error("blt semantics wrong")
	}
}

func TestInstrBGE(t *testing.T) {
	if branchTest(t, "bge", -1, 1) || !branchTest(t, "bge", 1, -1) || !branchTest(t, "bge", 3, 3) {
		t.Error("bge semantics wrong")
	}
}

func TestInstrBLTU(t *testing.T) {
	// -1 is 0xFFFFFFFF unsigned: not < 1.
	if branchTest(t, "bltu", -1, 1) || !branchTest(t, "bltu", 1, -1) {
		t.Error("bltu semantics wrong")
	}
}

func TestInstrBGEU(t *testing.T) {
	if !branchTest(t, "bgeu", -1, 1) || branchTest(t, "bgeu", 1, -1) {
		t.Error("bgeu semantics wrong")
	}
}

func TestInstrLB(t *testing.T) {
	sim := runSrc(t, `
la t0, d
lb t1, 0(t0)
lb t2, 1(t0)
.data
d: .byte 0x80, 0x7F
`)
	checkInt(t, sim, "t1", -128)
	checkInt(t, sim, "t2", 127)
}

func TestInstrLBU(t *testing.T) {
	sim := runSrc(t, `
la t0, d
lbu t1, 0(t0)
.data
d: .byte 0xFF
`)
	checkInt(t, sim, "t1", 255)
}

func TestInstrLH(t *testing.T) {
	sim := runSrc(t, `
la t0, d
lh t1, 0(t0)
.data
d: .hword 0x8000
`)
	checkInt(t, sim, "t1", -32768)
}

func TestInstrLHU(t *testing.T) {
	sim := runSrc(t, `
la t0, d
lhu t1, 0(t0)
.data
d: .hword 0xFFFF
`)
	checkInt(t, sim, "t1", 65535)
}

func TestInstrLW(t *testing.T) {
	sim := runSrc(t, `
la t0, d
lw t1, 0(t0)
.data
d: .word -123456
`)
	checkInt(t, sim, "t1", -123456)
}

func TestInstrSB(t *testing.T) {
	sim := runSrc(t, `
la t0, d
li t1, 0x1FF
sb t1, 0(t0)
lw t2, 0(t0)
.data
d: .word 0
`)
	checkInt(t, sim, "t2", 0xFF) // only the low byte is stored
}

func TestInstrSH(t *testing.T) {
	sim := runSrc(t, `
la t0, d
li t1, 0x12345
sh t1, 0(t0)
lw t2, 0(t0)
.data
d: .word 0
`)
	checkInt(t, sim, "t2", 0x2345)
}

func TestInstrSW(t *testing.T) {
	sim := runSrc(t, `
la t0, d
li t1, -7
sw t1, 0(t0)
lw t2, 0(t0)
.data
d: .word 0
`)
	checkInt(t, sim, "t2", -7)
}

func TestInstrADDI(t *testing.T) {
	sim := runSrc(t, "li t0, 5\naddi t1, t0, -3\n")
	checkInt(t, sim, "t1", 2)
}

func TestInstrSLTI(t *testing.T) {
	sim := runSrc(t, "li t0, -5\nslti t1, t0, 0\nslti t2, t0, -10\n")
	checkInt(t, sim, "t1", 1)
	checkInt(t, sim, "t2", 0)
}

func TestInstrSLTIU(t *testing.T) {
	sim := runSrc(t, "li t0, -1\nsltiu t1, t0, 10\nli t2, 3\nsltiu t3, t2, 10\n")
	checkInt(t, sim, "t1", 0) // 0xFFFFFFFF not < 10 unsigned
	checkInt(t, sim, "t3", 1)
}

func TestInstrXORI(t *testing.T) {
	sim := runSrc(t, "li t0, 0b1100\nxori t1, t0, 0b1010\n")
	checkInt(t, sim, "t1", 0b0110)
}

func TestInstrORI(t *testing.T) {
	sim := runSrc(t, "li t0, 0b1100\nori t1, t0, 0b1010\n")
	checkInt(t, sim, "t1", 0b1110)
}

func TestInstrANDI(t *testing.T) {
	sim := runSrc(t, "li t0, 0b1100\nandi t1, t0, 0b1010\n")
	checkInt(t, sim, "t1", 0b1000)
}

func TestInstrSLLI(t *testing.T) {
	sim := runSrc(t, "li t0, 3\nslli t1, t0, 4\n")
	checkInt(t, sim, "t1", 48)
}

func TestInstrSRLI(t *testing.T) {
	sim := runSrc(t, "li t0, -16\nsrli t1, t0, 2\n")
	checkInt(t, sim, "t1", int32(uint32(0xFFFFFFF0)>>2))
}

func TestInstrSRAI(t *testing.T) {
	sim := runSrc(t, "li t0, -16\nsrai t1, t0, 2\n")
	checkInt(t, sim, "t1", -4)
}

func TestInstrADD(t *testing.T) {
	sim := runSrc(t, "li t0, 40\nli t1, 2\nadd t2, t0, t1\n")
	checkInt(t, sim, "t2", 42)
}

func TestInstrSUB(t *testing.T) {
	sim := runSrc(t, "li t0, 40\nli t1, 2\nsub t2, t0, t1\n")
	checkInt(t, sim, "t2", 38)
}

func TestInstrSLL(t *testing.T) {
	sim := runSrc(t, "li t0, 1\nli t1, 33\nsll t2, t0, t1\n")
	checkInt(t, sim, "t2", 2) // shift amount masked to 5 bits
}

func TestInstrSLT(t *testing.T) {
	sim := runSrc(t, "li t0, -1\nli t1, 1\nslt t2, t0, t1\nslt t3, t1, t0\n")
	checkInt(t, sim, "t2", 1)
	checkInt(t, sim, "t3", 0)
}

func TestInstrSLTU(t *testing.T) {
	sim := runSrc(t, "li t0, -1\nli t1, 1\nsltu t2, t0, t1\nsltu t3, t1, t0\n")
	checkInt(t, sim, "t2", 0)
	checkInt(t, sim, "t3", 1)
}

func TestInstrXOR(t *testing.T) {
	sim := runSrc(t, "li t0, 0xF0\nli t1, 0xFF\nxor t2, t0, t1\n")
	checkInt(t, sim, "t2", 0x0F)
}

func TestInstrSRL(t *testing.T) {
	sim := runSrc(t, "li t0, -4\nli t1, 1\nsrl t2, t0, t1\n")
	checkInt(t, sim, "t2", int32(uint32(0xFFFFFFFC)>>1))
}

func TestInstrSRA(t *testing.T) {
	sim := runSrc(t, "li t0, -4\nli t1, 1\nsra t2, t0, t1\n")
	checkInt(t, sim, "t2", -2)
}

func TestInstrOR(t *testing.T) {
	sim := runSrc(t, "li t0, 0xF0\nli t1, 0x0F\nor t2, t0, t1\n")
	checkInt(t, sim, "t2", 0xFF)
}

func TestInstrAND(t *testing.T) {
	sim := runSrc(t, "li t0, 0xF0\nli t1, 0xFF\nand t2, t0, t1\n")
	checkInt(t, sim, "t2", 0xF0)
}

func TestInstrFENCE(t *testing.T) {
	sim := runSrc(t, "li t0, 1\nfence\nli t1, 2\n")
	checkInt(t, sim, "t1", 2)
}

func TestInstrMUL(t *testing.T) {
	sim := runSrc(t, "li t0, -6\nli t1, 7\nmul t2, t0, t1\n")
	checkInt(t, sim, "t2", -42)
}

func TestInstrMULH(t *testing.T) {
	sim := runSrc(t, "li t0, 0x40000000\nli t1, 4\nmulh t2, t0, t1\n")
	checkInt(t, sim, "t2", 1) // (2^30 * 4) >> 32 = 1
}

func TestInstrMULHU(t *testing.T) {
	sim := runSrc(t, "li t0, -1\nli t1, -1\nmulhu t2, t0, t1\n")
	checkInt(t, sim, "t2", -2) // 0xFFFFFFFE
}

func TestInstrMULHSU(t *testing.T) {
	sim := runSrc(t, "li t0, -1\nli t1, -1\nmulhsu t2, t0, t1\n")
	checkInt(t, sim, "t2", -1) // (-1) * 0xFFFFFFFF >> 32
}

func TestInstrDIV(t *testing.T) {
	sim := runSrc(t, "li t0, -42\nli t1, 5\ndiv t2, t0, t1\n")
	checkInt(t, sim, "t2", -8)
}

func TestInstrDIVU(t *testing.T) {
	sim := runSrc(t, "li t0, -2\nli t1, 2\ndivu t2, t0, t1\n")
	checkInt(t, sim, "t2", 0x7FFFFFFF)
}

func TestInstrREM(t *testing.T) {
	sim := runSrc(t, "li t0, -42\nli t1, 5\nrem t2, t0, t1\n")
	checkInt(t, sim, "t2", -2)
}

func TestInstrREMU(t *testing.T) {
	sim := runSrc(t, "li t0, 7\nli t1, 3\nremu t2, t0, t1\n")
	checkInt(t, sim, "t2", 1)
}

func TestInstrFLWFSW(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fsw f0, 4(t0)
lw t1, 4(t0)
.data
d: .float 2.5
   .zero 4
`)
	if got := floatReg(t, sim, "f0"); got != 2.5 {
		t.Errorf("f0 = %v", got)
	}
	if got := intReg(t, sim, "t1"); uint32(got) != math.Float32bits(2.5) {
		t.Errorf("stored bits = %#x", uint32(got))
	}
}

func TestInstrFADDS(t *testing.T) {
	sim := runFloat2(t, "fadd.s", 1.5, 2.25)
	if got := floatReg(t, sim, "f2"); got != 3.75 {
		t.Errorf("fadd.s = %v", got)
	}
}

func TestInstrFSUBS(t *testing.T) {
	sim := runFloat2(t, "fsub.s", 1.5, 2.25)
	if got := floatReg(t, sim, "f2"); got != -0.75 {
		t.Errorf("fsub.s = %v", got)
	}
}

func TestInstrFMULS(t *testing.T) {
	sim := runFloat2(t, "fmul.s", 1.5, 2.0)
	if got := floatReg(t, sim, "f2"); got != 3.0 {
		t.Errorf("fmul.s = %v", got)
	}
}

func TestInstrFDIVS(t *testing.T) {
	sim := runFloat2(t, "fdiv.s", 3.0, 2.0)
	if got := floatReg(t, sim, "f2"); got != 1.5 {
		t.Errorf("fdiv.s = %v", got)
	}
}

// runFloat2 loads two floats and applies op f2, f0, f1.
func runFloat2(t *testing.T, op string, a, b float32) *Simulation {
	t.Helper()
	return runSrc(t, `
la t0, d
flw f0, 0(t0)
flw f1, 4(t0)
`+op+` f2, f0, f1
.data
d: .float `+ftoa(a)+`, `+ftoa(b)+`
`)
}

func ftoa(f float32) string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 32)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func TestInstrFSQRTS(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fsqrt.s f1, f0
.data
d: .float 9.0
`)
	if got := floatReg(t, sim, "f1"); got != 3.0 {
		t.Errorf("fsqrt.s = %v", got)
	}
}

func TestInstrFMADDS(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
flw f1, 4(t0)
flw f2, 8(t0)
fmadd.s f3, f0, f1, f2
fmsub.s f4, f0, f1, f2
fnmadd.s f5, f0, f1, f2
fnmsub.s f6, f0, f1, f2
.data
d: .float 2.0, 3.0, 1.0
`)
	if got := floatReg(t, sim, "f3"); got != 7.0 {
		t.Errorf("fmadd.s = %v, want 7", got)
	}
	if got := floatReg(t, sim, "f4"); got != 5.0 {
		t.Errorf("fmsub.s = %v, want 5", got)
	}
	if got := floatReg(t, sim, "f5"); got != -7.0 {
		t.Errorf("fnmadd.s = %v, want -7", got)
	}
	if got := floatReg(t, sim, "f6"); got != -5.0 {
		t.Errorf("fnmsub.s = %v, want -5", got)
	}
}

func TestInstrFSGNJ(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
flw f1, 4(t0)
fsgnj.s f2, f0, f1
fsgnjn.s f3, f0, f1
fsgnjx.s f4, f0, f1
.data
d: .float 1.5, -2.0
`)
	if got := floatReg(t, sim, "f2"); got != -1.5 {
		t.Errorf("fsgnj.s = %v", got)
	}
	if got := floatReg(t, sim, "f3"); got != 1.5 {
		t.Errorf("fsgnjn.s = %v", got)
	}
	if got := floatReg(t, sim, "f4"); got != -1.5 {
		t.Errorf("fsgnjx.s = %v", got)
	}
}

func TestInstrFMINMAX(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
flw f1, 4(t0)
fmin.s f2, f0, f1
fmax.s f3, f0, f1
.data
d: .float 1.5, -2.0
`)
	if got := floatReg(t, sim, "f2"); got != -2.0 {
		t.Errorf("fmin.s = %v", got)
	}
	if got := floatReg(t, sim, "f3"); got != 1.5 {
		t.Errorf("fmax.s = %v", got)
	}
}

func TestInstrFCVTWS(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fcvt.w.s t1, f0
.data
d: .float -3.75
`)
	checkInt(t, sim, "t1", -3)
}

func TestInstrFCVTSW(t *testing.T) {
	sim := runSrc(t, `
li t0, -7
fcvt.s.w f0, t0
`)
	if got := floatReg(t, sim, "f0"); got != -7.0 {
		t.Errorf("fcvt.s.w = %v", got)
	}
}

func TestInstrFCVTWUS(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fcvt.wu.s t1, f0
.data
d: .float 3000000000.0
`)
	if got := uint32(intReg(t, sim, "t1")); got != 3000000000 {
		t.Errorf("fcvt.wu.s = %d", got)
	}
}

func TestInstrFMVXW(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fmv.x.w t1, f0
fmv.w.x f1, t1
.data
d: .float 1.0
`)
	if got := uint32(intReg(t, sim, "t1")); got != 0x3F800000 {
		t.Errorf("fmv.x.w = %#x", got)
	}
	if got := floatReg(t, sim, "f1"); got != 1.0 {
		t.Errorf("fmv.w.x = %v", got)
	}
}

func TestInstrFCompare(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
flw f1, 4(t0)
feq.s t1, f0, f0
flt.s t2, f0, f1
fle.s t3, f1, f0
.data
d: .float 1.5, 2.5
`)
	checkInt(t, sim, "t1", 1)
	checkInt(t, sim, "t2", 1)
	checkInt(t, sim, "t3", 0)
}

func TestInstrFCLASS(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fclass.s t1, f0
.data
d: .float -1.5
`)
	checkInt(t, sim, "t1", 1<<1) // negative normal
}

func TestInstrFLDFSD(t *testing.T) {
	sim := runSrc(t, `
la t0, d
fld f0, 0(t0)
fadd.d f1, f0, f0
fsd f1, 8(t0)
fld f2, 8(t0)
.data
d: .double 1.25
   .zero 8
`)
	if got := doubleReg(t, sim, "f2"); got != 2.5 {
		t.Errorf("double round trip = %v", got)
	}
}

func TestInstrFCVTDS(t *testing.T) {
	sim := runSrc(t, `
la t0, d
flw f0, 0(t0)
fcvt.d.s f1, f0
fcvt.s.d f2, f1
.data
d: .float 1.5
`)
	if got := doubleReg(t, sim, "f1"); got != 1.5 {
		t.Errorf("fcvt.d.s = %v", got)
	}
	if got := floatReg(t, sim, "f2"); got != 1.5 {
		t.Errorf("fcvt.s.d = %v", got)
	}
}

func TestInstrFCVTWD(t *testing.T) {
	sim := runSrc(t, `
la t0, d
fld f0, 0(t0)
fcvt.w.d t1, f0
li t2, 9
fcvt.d.w f1, t2
.data
d: .double -42.9
`)
	checkInt(t, sim, "t1", -42)
	if got := doubleReg(t, sim, "f1"); got != 9.0 {
		t.Errorf("fcvt.d.w = %v", got)
	}
}
