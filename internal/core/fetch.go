package core

import (
	"riscvsim/internal/asm"
	"riscvsim/internal/predictor"
)

// fetchUnit models the fetch block: it follows predicted control flow,
// fetching up to the configured width per cycle and up to JumpsPerCycle
// taken jumps within a single cycle (paper §II-C).
type fetchUnit struct {
	prog  *asm.Program
	pred  *predictor.Predictor
	width int
	jumps int

	pc           int
	stalledUntil uint64    // flush-penalty stall
	waitBranch   *SimInstr // jalr with unknown target: fetch parked

	// Statistics.
	fetched     uint64
	stallCycles uint64
}

func newFetchUnit(prog *asm.Program, pred *predictor.Predictor, width, jumps, entry int) *fetchUnit {
	return &fetchUnit{prog: prog, pred: pred, width: width, jumps: jumps, pc: entry}
}

// AtEnd reports whether the PC has run off the code segment (the program
// finished: the final `ret` jumps to the sentinel return address).
func (f *fetchUnit) AtEnd() bool {
	return f.waitBranch == nil && (f.pc < 0 || f.pc >= len(f.prog.Instructions))
}

// Stalled reports whether fetch cannot proceed this cycle.
func (f *fetchUnit) Stalled(now uint64) bool {
	return now < f.stalledUntil || f.waitBranch != nil
}

// Redirect points fetch at a resolved branch target, clearing a
// wait-for-target stall; penalty > 0 additionally applies the flush
// penalty (mispredict recovery).
func (f *fetchUnit) Redirect(target int, now uint64, penalty int) {
	f.pc = target
	f.waitBranch = nil
	if penalty > 0 {
		f.stalledUntil = now + uint64(penalty)
	}
}

// ClearWait drops the parked branch if it was squashed by an older
// mispredict.
func (f *fetchUnit) ClearWait(si *SimInstr) {
	if f.waitBranch == si {
		f.waitBranch = nil
	}
}

// Fetch produces up to width instructions for the decode buffer, following
// predictions. nextID assigns dynamic instruction IDs.
func (f *fetchUnit) Fetch(now uint64, room int, nextID func() uint64) []*SimInstr {
	if f.Stalled(now) {
		f.stallCycles++
		return nil
	}
	var out []*SimInstr
	jumpsTaken := 0
	for len(out) < f.width && len(out) < room {
		if f.pc < 0 || f.pc >= len(f.prog.Instructions) {
			break
		}
		st := f.prog.Instructions[f.pc]
		si := &SimInstr{
			ID:        nextID(),
			Static:    st,
			PC:        f.pc,
			Phase:     PhaseFetched,
			FetchedAt: now,
		}
		f.fetched++
		out = append(out, si)

		if !st.Desc.IsBranch() {
			f.pc++
			continue
		}

		pred := f.pred.Predict(f.pc, st.Desc.Conditional)
		si.predTaken = pred.Taken || !st.Desc.Conditional

		// Direct targets are computable at fetch (pre-decode); only
		// register-indirect jumps (jalr) depend on the BTB.
		targetKnown := false
		target := 0
		switch {
		case st.Desc.PCRelative:
			if imm := st.Op("imm"); imm != nil {
				target = f.pc + int(imm.Val)
				targetKnown = true
			}
		case pred.BTBHit:
			target = pred.Target
			targetKnown = true
		}

		if !si.predTaken {
			si.predTarget = f.pc + 1
			f.pc++
			continue
		}
		if !targetKnown {
			// Unknown indirect target: park fetch until the branch
			// resolves (no wrong path is fetched).
			si.predStall = true
			f.waitBranch = si
			break
		}
		si.predTarget = target
		f.pc = target
		jumpsTaken++
		if jumpsTaken >= f.jumps {
			break
		}
	}
	return out
}
