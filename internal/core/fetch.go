package core

import (
	"riscvsim/internal/asm"
	"riscvsim/internal/predictor"
)

// fetchInfo is the pre-decoded control-flow summary of one static
// instruction, computed once at construction so the per-cycle fetch loop
// reads flags and targets from a flat array instead of walking descriptor
// fields and operand lists.
type fetchInfo struct {
	isBranch    bool
	conditional bool
	// targetKnown marks direct (PC-relative) branches whose target is
	// computable at fetch; register-indirect jumps depend on the BTB.
	targetKnown bool
	target      int
}

// fetchUnit models the fetch block: it follows predicted control flow,
// fetching up to the configured width per cycle and up to JumpsPerCycle
// taken jumps within a single cycle (paper §II-C).
type fetchUnit struct {
	prog *asm.Program
	pred *predictor.Predictor
	info []fetchInfo // indexed by PC
	// nextBranch[i] is the code index of the first branch at or after i —
	// the fetch-side half of the basic-block index (blockplan.go): the
	// span [i, nextBranch[i]) is straight-line, so the fetch loop batches
	// it without per-PC control-flow checks.
	nextBranch []int32
	width      int
	jumps      int

	pc           int
	stalledUntil uint64    // flush-penalty stall
	waitBranch   *SimInstr // jalr with unknown target: fetch parked

	// scratch is the reusable Fetch result buffer; its contents are only
	// valid until the next call, so each cycle's fetch group costs no
	// allocation.
	scratch []*SimInstr

	// Statistics.
	fetched     uint64
	stallCycles uint64
}

func newFetchUnit(prog *asm.Program, pred *predictor.Predictor, width, jumps, entry int) *fetchUnit {
	f := &fetchUnit{prog: prog, pred: pred, width: width, jumps: jumps, pc: entry}
	f.info = make([]fetchInfo, len(prog.Instructions))
	f.nextBranch = make([]int32, len(prog.Instructions))
	for i, in := range prog.Instructions {
		fi := &f.info[i]
		fi.isBranch = in.Desc.IsBranch()
		fi.conditional = in.Desc.Conditional
		if fi.isBranch && in.Desc.PCRelative {
			if imm := in.Op("imm"); imm != nil {
				fi.targetKnown = true
				fi.target = i + int(imm.Val)
			}
		}
	}
	for i := len(prog.Instructions) - 1; i >= 0; i-- {
		if f.info[i].isBranch {
			f.nextBranch[i] = int32(i)
		} else if i == len(prog.Instructions)-1 {
			f.nextBranch[i] = int32(i + 1)
		} else {
			f.nextBranch[i] = f.nextBranch[i+1]
		}
	}
	return f
}

// AtEnd reports whether the PC has run off the code segment (the program
// finished: the final `ret` jumps to the sentinel return address).
func (f *fetchUnit) AtEnd() bool {
	return f.waitBranch == nil && (f.pc < 0 || f.pc >= len(f.prog.Instructions))
}

// Stalled reports whether fetch cannot proceed this cycle.
func (f *fetchUnit) Stalled(now uint64) bool {
	return now < f.stalledUntil || f.waitBranch != nil
}

// Redirect points fetch at a resolved branch target, clearing a
// wait-for-target stall; penalty > 0 additionally applies the flush
// penalty (mispredict recovery).
func (f *fetchUnit) Redirect(target int, now uint64, penalty int) {
	f.pc = target
	f.waitBranch = nil
	if penalty > 0 {
		f.stalledUntil = now + uint64(penalty)
	}
}

// ClearWait drops the parked branch if it was squashed by an older
// mispredict.
func (f *fetchUnit) ClearWait(si *SimInstr) {
	if f.waitBranch == si {
		f.waitBranch = nil
	}
}

// Fetch produces up to width instructions for the decode buffer, following
// predictions. Instruction instances come from the simulation's free list;
// the returned slice is a reusable scratch buffer, valid until the next
// call.
func (f *fetchUnit) Fetch(now uint64, room int, s *Simulation) []*SimInstr {
	if f.Stalled(now) {
		f.stallCycles++
		return nil
	}
	out := f.scratch[:0]
	jumpsTaken := 0
	for len(out) < f.width && len(out) < room {
		if f.pc < 0 || f.pc >= len(f.prog.Instructions) {
			break
		}
		// Straight-line span: everything up to the next branch fetches in
		// one batch with no per-PC control-flow checks — same
		// instructions, same order, same cycle as the scalar walk.
		if nb := int(f.nextBranch[f.pc]); f.pc < nb {
			end := f.pc + min(f.width-len(out), room-len(out))
			if end > nb {
				end = nb
			}
			for ; f.pc < end; f.pc++ {
				si := s.newInstr(f.prog.Instructions[f.pc], f.pc, now)
				f.fetched++
				out = append(out, si)
			}
			continue
		}
		st := f.prog.Instructions[f.pc]
		fi := &f.info[f.pc]
		si := s.newInstr(st, f.pc, now)
		f.fetched++
		out = append(out, si)

		if !fi.isBranch {
			f.pc++
			continue
		}

		pred := f.pred.Predict(f.pc, fi.conditional)
		si.predTaken = pred.Taken || !fi.conditional

		// Direct targets are computable at fetch (pre-decode); only
		// register-indirect jumps (jalr) depend on the BTB.
		targetKnown := fi.targetKnown
		target := fi.target
		if !targetKnown && pred.BTBHit {
			target = pred.Target
			targetKnown = true
		}

		if !si.predTaken {
			si.predTarget = f.pc + 1
			f.pc++
			continue
		}
		if !targetKnown {
			// Unknown indirect target: park fetch until the branch
			// resolves (no wrong path is fetched).
			si.predStall = true
			f.waitBranch = si
			break
		}
		si.predTarget = target
		f.pc = target
		jumpsTaken++
		if jumpsTaken >= f.jumps {
			break
		}
	}
	f.scratch = out
	return out
}
