package core

import (
	"testing"

	"riscvsim/internal/config"
)

// Table-driven coverage for the dynamic-instruction-mix counter: the
// committed mix must account for exactly the instructions the program
// retires, bucketed by type, with wrong-path work excluded.
func TestDynamicMixTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[string]uint64
	}{
		{
			name: "straight-line arithmetic",
			src: `
addi t0, x0, 1
addi t1, x0, 2
add  t2, t0, t1
`,
			want: map[string]uint64{"kArithmetic": 3},
		},
		{
			name: "load store split",
			src: `
addi t0, x0, 64
sw   t0, 0(x0)
lw   t1, 0(x0)
sw   t1, 4(x0)
`,
			want: map[string]uint64{"kArithmetic": 1, "kStore": 2, "kLoad": 1},
		},
		{
			name: "counted loop commits per-iteration branches",
			src: `
addi t0, x0, 0
addi t1, x0, 3
loop:
  addi t0, t0, 1
  bne  t0, t1, loop
`,
			// 2 setup + 3 iterations of (addi, bne).
			want: map[string]uint64{"kArithmetic": 5, "kJumpbranch": 3},
		},
		{
			name: "unconditional jump",
			src: `
addi t0, x0, 7
jal  x0, skip
addi t0, x0, 1
skip:
addi t1, t0, 0
`,
			// The jumped-over addi must not land in the committed mix.
			want: map[string]uint64{"kArithmetic": 2, "kJumpbranch": 1},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sim := runSrc(t, c.src)
			got := sim.Report().DynamicMix
			if len(got) != len(c.want) {
				t.Fatalf("dynamic mix = %v, want %v", got, c.want)
			}
			for k, n := range c.want {
				if got[k] != n {
					t.Errorf("dynamic mix[%s] = %d, want %d (full mix %v)", k, got[k], n, got)
				}
			}
		})
	}
}

// TestCommitStallCounter: a multi-cycle operation at the ROB head leaves
// commit waiting, and the counter must see it; a same-shape single-cycle
// program on an idle pipeline must not count spurious stalls.
func TestCommitStallCounter(t *testing.T) {
	// One FP op (latency 3) at the head stalls commit for its latency.
	stalled := runSrc(t, `
fcvt.s.w ft0, x0
fadd.s   ft1, ft0, ft0
`)
	if got := stalled.Report().CommitStalls; got == 0 {
		t.Error("latency-3 FP chain should stall commit at least once")
	}
}

// TestDecodeStallCounter: a tiny ROB behind a slow functional unit fills
// and blocks rename/dispatch; a roomy ROB on the same program does not.
func TestDecodeStallCounter(t *testing.T) {
	src := `
fcvt.s.w ft0, x0
fadd.s ft1, ft0, ft0
fadd.s ft2, ft0, ft0
fadd.s ft3, ft0, ft0
fadd.s ft4, ft0, ft0
fadd.s ft5, ft0, ft0
fadd.s ft6, ft0, ft0
fadd.s ft7, ft0, ft0
`
	small := config.Default()
	small.ROBSize = 4
	small.RenameRegisters = 8
	s := runSrcOn(t, small, src)
	if got := s.Report().DecodeStalls; got == 0 {
		t.Error("4-entry ROB behind a latency-3 FP unit should stall decode")
	}

	roomy := runSrc(t, `
addi t0, x0, 1
addi t1, x0, 2
add  t2, t0, t1
`)
	if got := roomy.Report().DecodeStalls; got != 0 {
		t.Errorf("3 independent single-cycle ops stalled decode %d times", got)
	}
}

// TestRenameStallCounter: with the rename file sized at the validation
// minimum (== ROBSize), committed-but-still-referenced tags exhaust the
// file before the ROB fills, and the rename-stall counter must see it.
func TestRenameStallCounter(t *testing.T) {
	cfg := config.Default()
	cfg.ROBSize = 8
	cfg.RenameRegisters = 8
	src := `
fcvt.s.w ft0, x0
fadd.s ft0, ft0, ft0
fadd.s ft1, ft0, ft0
fadd.s ft2, ft0, ft0
fadd.s ft3, ft0, ft0
fadd.s ft4, ft0, ft0
fadd.s ft5, ft1, ft2
fadd.s ft6, ft3, ft4
fadd.s ft7, ft5, ft6
fadd.s ft0, ft7, ft7
fadd.s ft1, ft0, ft0
fadd.s ft2, ft1, ft1
`
	s := runSrcOn(t, cfg, src)
	r := s.Report()
	if r.RenameStalls == 0 {
		t.Errorf("minimum-size rename file should stall allocation (decode stalls %d, commit stalls %d)",
			r.DecodeStalls, r.CommitStalls)
	}
}
