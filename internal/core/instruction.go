// Package core implements the superscalar out-of-order processor model:
// fetch, decode/rename, reorder buffer, issue windows, functional units
// with two sub-step execution, load/store buffers with a memory unit
// behind the L1 cache, a branch unit, and forward/backward simulation —
// the simulator architecture of paper §III-A.
package core

import (
	"fmt"

	"riscvsim/internal/asm"
	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
	"riscvsim/internal/rename"
)

// Phase is the lifecycle stage of a dynamic instruction, shown by the GUI
// in the instruction pop-up (paper Fig. 3).
type Phase uint8

// Instruction phases.
const (
	PhaseFetched Phase = iota
	PhaseDecoded       // renamed and placed in an issue window
	PhaseIssued        // executing in a functional unit
	PhaseMemory        // load/store waiting on the memory subsystem
	PhaseDone          // result written back, awaiting commit
	PhaseCommitted
	PhaseSquashed
)

var phaseNames = [...]string{"fetched", "decoded", "issued", "memory", "done", "committed", "squashed"}

// String names the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// maxSrcOperands is the most renamed sources any instruction reads (the
// fused multiply-adds read rs1, rs2 and rs3); srcs is a fixed inline array
// of that size so dispatching an instruction never allocates.
const maxSrcOperands = 3

// srcOperand is one renamed source operand of a dynamic instruction.
type srcOperand struct {
	name  string // argument name (rs1, rs2, rs3)
	class isa.RegClass
	reg   int
	ref   rename.SrcRef
	// captured is set once the value has been read and the rename
	// reference released.
	captured bool
	value    expr.Value
}

// SimInstr is a dynamic instruction instance flowing through the pipeline
// (the paper's simulation code model). It records the timestamps of every
// phase for the GUI's instruction detail pop-up.
type SimInstr struct {
	// ID is the unique dynamic instruction number (fetch order).
	ID uint64
	// Static is the assembled instruction this instance executes.
	Static *asm.Instruction
	// PC is the code index the instruction was fetched from.
	PC int

	Phase Phase

	// Phase completion timestamps in cycles; 0 means "not yet".
	FetchedAt   uint64
	DecodedAt   uint64
	IssuedAt    uint64
	ExecutedAt  uint64
	MemoryAt    uint64
	CommittedAt uint64

	// Renamed operands: the first nsrc slots of srcs are valid.
	srcs [maxSrcOperands]srcOperand
	nsrc uint8
	// Destination rename, when the instruction writes a register.
	hasDest   bool
	destClass isa.RegClass
	destReg   int
	destTag   int
	destPrev  int
	// result holds the computed destination value until writeback.
	result expr.Value
	// resultReady marks that result has been computed by the FU.
	resultReady bool

	// Branch bookkeeping.
	predTaken   bool
	predTarget  int
	predStall   bool // fetch stalled: target unknown at fetch (jalr BTB miss)
	actualTaken bool
	actualTgt   int
	mispredict  bool

	// Memory bookkeeping.
	effAddr   int
	addrReady bool
	storeData uint64
	memIssued bool
	memDoneAt uint64

	// Exception generated during execution, raised at commit (paper
	// §III-B).
	Exc *fault.Exception

	// Squashed marks wrong-path instructions.
	Squashed bool

	robIndex int
}

// IsBranch reports whether the instruction resolves in the branch unit.
func (si *SimInstr) IsBranch() bool { return si.Static.Desc.IsBranch() }

// IsLoad reports whether the instruction reads data memory.
func (si *SimInstr) IsLoad() bool { return si.Static.Desc.IsLoad() }

// IsStore reports whether the instruction writes data memory.
func (si *SimInstr) IsStore() bool { return si.Static.Desc.IsStore() }

// String renders the dynamic instruction for the debug log.
func (si *SimInstr) String() string {
	return fmt.Sprintf("#%d@%d %s", si.ID, si.PC, si.Static.String())
}

// srcsReady reports whether every source operand value is available,
// refreshing validity from the rename file.
func (si *SimInstr) srcsReady(rf *rename.File) bool {
	for i := 0; i < int(si.nsrc); i++ {
		s := &si.srcs[i]
		if s.captured {
			continue
		}
		if s.ref.Tag == rename.NoTag {
			s.value = s.ref.Value
			s.captured = true
			continue
		}
		if v, ok := rf.Value(s.ref.Tag); ok {
			s.value = v
			s.captured = true
			rf.Release(s.ref.Tag)
			continue
		}
		return false
	}
	return true
}

// releaseRefs drops any rename references still held (squash path).
func (si *SimInstr) releaseRefs(rf *rename.File) {
	for i := 0; i < int(si.nsrc); i++ {
		s := &si.srcs[i]
		if !s.captured && s.ref.Tag != rename.NoTag {
			rf.Release(s.ref.Tag)
			s.captured = true
		}
	}
}

// instrEnv adapts a SimInstr to the expression interpreter's Env: operand
// reads come from the captured source values and immediates; assignments
// land in the instruction's pending result. It is used by pointer so the
// engine's single reusable instance converts to expr.Env without boxing.
type instrEnv struct {
	si *SimInstr
}

// Get implements expr.Env.
func (e *instrEnv) Get(name string) (expr.Value, bool) {
	if name == "pc" {
		return expr.NewInt(int32(e.si.PC)), true
	}
	for i := 0; i < int(e.si.nsrc); i++ {
		if e.si.srcs[i].name == name {
			return e.si.srcs[i].value, true
		}
	}
	for i := range e.si.Static.Ops {
		op := &e.si.Static.Ops[i]
		if op.Arg.Name == name && op.Arg.Kind != isa.ArgRegInt && op.Arg.Kind != isa.ArgRegFloat {
			return expr.NewInt(int32(op.Val)).Convert(op.Arg.Type), true
		}
	}
	// Destination read-back (rare; e.g. expressions reusing rd).
	if e.si.hasDest && e.si.resultReady {
		if d := e.si.Static.Desc.DestArg(); d != nil && d.Name == name {
			return e.si.result, true
		}
	}
	return expr.Value{}, false
}

// Set implements expr.Env: assignments store the pending destination value,
// converted to the argument's declared type.
func (e *instrEnv) Set(name string, v expr.Value) error {
	d := e.si.Static.Desc.Arg(name)
	if d == nil {
		return fmt.Errorf("core: %s assigns to unknown operand %q", e.si.Static.Desc.Name, name)
	}
	e.si.result = v.Convert(d.Type)
	e.si.resultReady = true
	return nil
}
