package core

import (
	"math"
	"math/rand"
	"testing"

	"riscvsim/internal/asm"
	"riscvsim/internal/config"
	"riscvsim/internal/expr"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

// ---------------------------------------------------------------------------
// Specialization seam: every specialized opcode must match the expression
// interpreter bit for bit, across randomized operands (the fallback and
// the fast path implement the same semantics by construction, and this
// property test keeps them from drifting).
// ---------------------------------------------------------------------------

// buildInstr assembles a tiny program around one instance of the mnemonic
// so the descriptor, operand resolution and plan compilation all go
// through the production path.
func buildInstr(t *testing.T, set *isa.Set, src string) *asm.Instruction {
	t.Helper()
	regs := isa.NewRegisterFile()
	mem := memory.New(memory.Config{Size: 1 << 16, LoadLatency: 1, StoreLatency: 1})
	prog, err := asm.Assemble(src, set, regs, mem)
	if err != nil {
		t.Fatalf("assembling %q: %v", src, err)
	}
	return prog.Instructions[0]
}

// execCase is one randomized evaluation: captured source values plus
// fetch-time branch prediction state.
type execCase struct {
	vals       []int32
	predTaken  bool
	predTarget int
	predStall  bool
}

// prepInstr builds a SimInstr with captured operands, mirroring what
// rename + srcsReady leave behind by execution time.
func prepInstr(in *asm.Instruction, c *execCase) *SimInstr {
	si := &SimInstr{ID: 1, Static: in, PC: in.Index}
	slot := 0
	for i := range in.Desc.Args {
		a := &in.Desc.Args[i]
		if a.WriteBack || (a.Kind != isa.ArgRegInt && a.Kind != isa.ArgRegFloat) {
			continue
		}
		si.srcs[si.nsrc] = srcOperand{
			name:     a.Name,
			class:    isa.RegInt,
			captured: true,
			value:    expr.NewInt(c.vals[slot]),
		}
		si.nsrc++
		slot++
	}
	si.predTaken = c.predTaken
	si.predTarget = c.predTarget
	si.predStall = c.predStall
	return si
}

// compareOutcomes fails the test when the specialized and generic
// executions diverge in any observable way.
func compareOutcomes(t *testing.T, name string, c *execCase, fast, slow *SimInstr) {
	t.Helper()
	if fast.resultReady != slow.resultReady || fast.result != slow.result {
		t.Errorf("%s %v: result fast=(%v,%v) slow=(%v,%v)",
			name, c.vals, fast.result, fast.resultReady, slow.result, slow.resultReady)
	}
	if fast.actualTaken != slow.actualTaken || fast.actualTgt != slow.actualTgt ||
		fast.mispredict != slow.mispredict {
		t.Errorf("%s %v pred=%+v: branch fast=(%v,%d,%v) slow=(%v,%d,%v)",
			name, c.vals, c, fast.actualTaken, fast.actualTgt, fast.mispredict,
			slow.actualTaken, slow.actualTgt, slow.mispredict)
	}
	if fast.effAddr != slow.effAddr || fast.storeData != slow.storeData {
		t.Errorf("%s %v: memory fast=(%d,%d) slow=(%d,%d)",
			name, c.vals, fast.effAddr, fast.storeData, slow.effAddr, slow.storeData)
	}
	switch {
	case fast.Exc.Occurred() != slow.Exc.Occurred():
		t.Errorf("%s %v: exception fast=%v slow=%v", name, c.vals, fast.Exc, slow.Exc)
	case fast.Exc.Occurred():
		if fast.Exc.Kind != slow.Exc.Kind || fast.Exc.Error() != slow.Exc.Error() ||
			fast.Exc.Cycle != slow.Exc.Cycle || fast.Exc.PC != slow.Exc.PC {
			t.Errorf("%s %v: exception fast=%q slow=%q", name, c.vals, fast.Exc.Error(), slow.Exc.Error())
		}
	}
}

func TestExecSpecializedMatchesInterpreter(t *testing.T) {
	set := isa.RV32IMF()
	rng := rand.New(rand.NewSource(42))

	// Edge operands mixed into the random stream.
	edges := []int32{0, 1, -1, 2, -2, 31, 32, 33, math.MaxInt32, math.MinInt32, math.MinInt32 + 1, 0x7FFF, -0x8000}
	randVal := func() int32 {
		if rng.Intn(3) == 0 {
			return edges[rng.Intn(len(edges))]
		}
		return int32(rng.Uint32())
	}

	// One source line per specialized mnemonic. Immediates/labels use
	// in-range values; the interpreter sees the assembled operand either
	// way, so semantic equivalence over the register operands is what is
	// being randomized.
	cases := map[string]string{
		"lui":    "lui t0, 311",
		"auipc":  "auipc t0, 17",
		"jal":    "jal t0, 3\nnop\nnop\nnop\nnop",
		"jalr":   "jalr t0, t1, 8",
		"beq":    "beq t0, t1, 2\nnop\nnop",
		"bne":    "bne t0, t1, 2\nnop\nnop",
		"blt":    "blt t0, t1, 2\nnop\nnop",
		"bge":    "bge t0, t1, 2\nnop\nnop",
		"bltu":   "bltu t0, t1, 2\nnop\nnop",
		"bgeu":   "bgeu t0, t1, 2\nnop\nnop",
		"lb":     "lb t0, 4(t1)",
		"lh":     "lh t0, 4(t1)",
		"lw":     "lw t0, -4(t1)",
		"lbu":    "lbu t0, 2(t1)",
		"lhu":    "lhu t0, 2(t1)",
		"sb":     "sb t0, 3(t1)",
		"sh":     "sh t0, 6(t1)",
		"sw":     "sw t0, -8(t1)",
		"addi":   "addi t0, t1, -2047",
		"slti":   "slti t0, t1, -5",
		"sltiu":  "sltiu t0, t1, 17",
		"xori":   "xori t0, t1, 255",
		"ori":    "ori t0, t1, 1365",
		"andi":   "andi t0, t1, -256",
		"slli":   "slli t0, t1, 13",
		"srli":   "srli t0, t1, 13",
		"srai":   "srai t0, t1, 13",
		"add":    "add t0, t1, t2",
		"sub":    "sub t0, t1, t2",
		"sll":    "sll t0, t1, t2",
		"slt":    "slt t0, t1, t2",
		"sltu":   "sltu t0, t1, t2",
		"xor":    "xor t0, t1, t2",
		"srl":    "srl t0, t1, t2",
		"sra":    "sra t0, t1, t2",
		"or":     "or t0, t1, t2",
		"and":    "and t0, t1, t2",
		"mul":    "mul t0, t1, t2",
		"mulh":   "mulh t0, t1, t2",
		"mulhsu": "mulhsu t0, t1, t2",
		"mulhu":  "mulhu t0, t1, t2",
		"div":    "div t0, t1, t2",
		"divu":   "divu t0, t1, t2",
		"rem":    "rem t0, t1, t2",
		"remu":   "remu t0, t1, t2",
		"fence":  "fence",
	}

	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			in := buildInstr(t, set, src)
			if in.Desc.Name != name {
				t.Fatalf("assembled %q, want %q", in.Desc.Name, name)
			}
			plan := specializePlan(in)
			if plan.op == execFallback {
				t.Fatalf("%s did not specialize; the table drifted from the ISA", name)
			}

			nsrc := 0
			for i := range in.Desc.Args {
				a := &in.Desc.Args[i]
				if !a.WriteBack && (a.Kind == isa.ArgRegInt || a.Kind == isa.ArgRegFloat) {
					nsrc++
				}
			}

			fastEng := &ExecEngine{plans: []execPlan{}, ev: expr.NewEvaluator()}
			fastEng.plans = make([]execPlan, in.Index+1)
			fastEng.plans[in.Index] = plan
			slowEng := &ExecEngine{plans: make([]execPlan, in.Index+1), ev: expr.NewEvaluator()}
			// slowEng's plans stay execFallback: the generic interpreter.

			const rounds = 300
			for round := 0; round < rounds; round++ {
				c := &execCase{
					vals:       make([]int32, nsrc),
					predTaken:  rng.Intn(2) == 0,
					predTarget: rng.Intn(6),
					predStall:  rng.Intn(8) == 0,
				}
				for i := range c.vals {
					c.vals[i] = randVal()
				}
				now := uint64(rng.Intn(1000) + 1)
				fast := prepInstr(in, c)
				slow := prepInstr(in, c)
				fastEng.Execute(fast, now)
				slowEng.Execute(slow, now)
				compareOutcomes(t, name, c, fast, slow)
			}
		})
	}
}

// TestExecSpecializationCoverage documents which fraction of the default
// ISA specializes and pins that a user-redefined descriptor falls back.
func TestExecSpecializationCoverage(t *testing.T) {
	set := isa.RV32IMF()
	specialized := 0
	for _, d := range set.All() {
		if _, ok := specTable[d.Name]; ok {
			specialized++
		}
	}
	if specialized < 45 {
		t.Errorf("only %d descriptors in the specialization table; RV32IM should be fully covered", specialized)
	}

	// A descriptor with a built-in name but altered semantics must not
	// take the fast path.
	alien := isa.NewSet()
	alien.Register(&isa.Desc{
		Name: "add", Type: isa.TypeArithmetic, Unit: isa.FX, Format: isa.FmtR,
		Args: []isa.ArgDesc{
			{Name: "rd", Kind: isa.ArgRegInt, Type: expr.Int, WriteBack: true},
			{Name: "rs1", Kind: isa.ArgRegInt, Type: expr.Int},
			{Name: "rs2", Kind: isa.ArgRegInt, Type: expr.Int},
		},
		ExprSrc: `\rs1 \rs2 + 1 + \rd =`, // off-by-one "add"
	})
	regs := isa.NewRegisterFile()
	mem := memory.New(memory.Config{Size: 1 << 12, LoadLatency: 1, StoreLatency: 1})
	prog, err := asm.Assemble("add t0, t1, t2\n", alien, regs, mem)
	if err != nil {
		t.Fatal(err)
	}
	if plan := specializePlan(prog.Instructions[0]); plan.op != execFallback {
		t.Errorf("redefined add specialized to op %d; must fall back to the interpreter", plan.op)
	}
}

// ---------------------------------------------------------------------------
// Zero-allocation contract: in steady state, Step() must not touch the
// heap (the CI allocation gate runs this test).
// ---------------------------------------------------------------------------

func TestStepAllocFree(t *testing.T) {
	// A mispredicting integer loop with loads and stores: exercises
	// fetch, rename, issue, the specialized engine, the LSU, commit,
	// flush recovery and instruction recycling.
	sim := buildSim(t, config.Default(), `
  la s0, buf
  li t0, 0
  li t1, 40000
loop:
  andi t2, t0, 7
  slli t3, t2, 2
  add  t3, t3, s0
  sw   t0, 0(t3)
  lw   t4, 0(t3)
  andi t5, t0, 1
  bne  t5, x0, odd
  addi t6, t4, 3
odd:
  addi t0, t0, 1
  bne  t0, t1, loop
.data
.align 4
buf: .zero 64
`)
	// Warm up: grow every scratch buffer, the free list, the rename
	// structures and the log to their steady-state footprint.
	sim.Run(20000)
	if sim.Halted() {
		t.Fatal("program finished during warm-up; extend the loop")
	}
	avg := testing.AllocsPerRun(5000, func() {
		sim.Step()
	})
	if sim.Halted() {
		t.Fatal("program finished during measurement; extend the loop")
	}
	if avg != 0 {
		t.Errorf("Step() allocates %.4f objects/op in steady state, want 0", avg)
	}
}
