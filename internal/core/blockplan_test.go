package core

import (
	"testing"

	"riscvsim/internal/config"
)

// ffCompare runs src to completion in both the detailed pipeline and the
// fast-forward functional mode and asserts that the final architectural
// states agree — the block-boundary invariant every edge case below
// exercises. It returns the fast-forward simulation for extra checks.
func ffCompare(t *testing.T, src string) *Simulation {
	t.Helper()
	return ffCompareMode(t, src, false)
}

// ffCompareMode additionally forces the fast-forward run through the
// generic per-instruction interpreter path (ffGenericOp) when generic is
// set, pinning the fused and unfused functional semantics against the
// same detailed reference.
func ffCompareMode(t *testing.T, src string, generic bool) *Simulation {
	t.Helper()
	det := runSrc(t, src)

	ff := buildSim(t, config.Default(), src)
	ff.SetEngineMode(EngineFastForward)
	ff.SetFastForwardInterpreter(generic)
	ff.Run(2_000_000)
	if !ff.Halted() {
		t.Fatalf("fast-forward run did not halt within 2M cycles (pc=%d)", ff.fetch.pc)
	}
	if got, want := ff.HaltReason(), det.HaltReason(); got != want {
		t.Errorf("halt reason: fast-forward %q, detailed %q", got, want)
	}
	if got, want := ff.Committed(), det.Committed(); got != want {
		t.Errorf("committed: fast-forward %d, detailed %d", got, want)
	}
	if got, want := ff.ArchHash(), det.ArchHash(); got != want {
		t.Errorf("ArchHash: fast-forward %#x, detailed %#x", got, want)
	}
	// The fast-forward cycle convention: one committed instruction per
	// cycle, exactly. A faulting instruction consumes its cycle without
	// committing — same as the detailed engine's commit bookkeeping.
	wantCycles := ff.Committed()
	if ff.Exception() != nil {
		wantCycles++
	}
	if ff.Cycle() != wantCycles {
		t.Errorf("fast-forward cycle %d != %d (committed %d)", ff.Cycle(), wantCycles, ff.Committed())
	}
	return ff
}

// TestFFBackToBackBranches: consecutive branch instructions force
// single-instruction blocks in the middle of a loop — each branch is a
// block terminator and the next instruction is a new leader.
func TestFFBackToBackBranches(t *testing.T) {
	ff := ffCompare(t, `
  li x5, 5
  li x10, 0
loop:
  beq x5, x0, done
  beq x5, x5, dec
dec:
  addi x10, x10, 3
  addi x5, x5, -1
  jal x0, loop
done:
  ecall
`)
	if got := intReg(t, ff, "a0"); got != 15 {
		t.Errorf("a0 = %d, want 15", got)
	}
}

// TestFFJalrMidBlockSplit: a jalr lands in the middle of a straight-line
// block that was already compiled from its leader — the lazy blockAt
// split must start a fresh block at the landing pc instead of replaying
// the block head.
func TestFFJalrMidBlockSplit(t *testing.T) {
	ff := ffCompare(t, `
  jal x1, sub
  addi x10, x10, 1
  addi x10, x10, 2
  addi x10, x10, 4
  ecall
sub:
  addi x1, x1, 2
  jalr x0, x1, 0
`)
	// jalr jumps to the third addi (index 3): only the +4 executes.
	if got := intReg(t, ff, "a0"); got != 4 {
		t.Errorf("a0 = %d, want 4 (mid-block entry must skip the block head)", got)
	}
}

// TestFFSingleInstructionBlocks: every instruction is its own block
// (each one a branch or the halting ecall) — the degenerate case of the
// block partition.
func TestFFSingleInstructionBlocks(t *testing.T) {
	ffCompare(t, `
  beq x0, x0, l1
l1:
  bne x0, x0, l2
l2:
  jal x5, l3
l3:
  ecall
`)
}

// TestFFTakenBranchIntoCompiledFallThrough: a backward branch re-enters
// a block that was first compiled as a fall-through — the loop body is
// both a fall-through successor (first iteration) and a branch target
// (every later iteration).
func TestFFTakenBranchIntoCompiledFallThrough(t *testing.T) {
	ff := ffCompare(t, `
  li x5, 4
  li x10, 1
loop:
  slli x10, x10, 1
  addi x5, x5, -1
  bne x5, x0, loop
  ecall
`)
	if got := intReg(t, ff, "a0"); got != 16 {
		t.Errorf("a0 = %d, want 16", got)
	}
}

// ffKitchenSink exercises every specialized RV32I opcode, every memory
// width in both signednesses, both jump forms, every conditional branch
// taken and not taken, and float ops (which fall back to the generic
// interpreter inside a fused block).
const ffKitchenSink = `
  lui x5, 16
  auipc x6, 0
  addi x7, x0, -100
  slti x8, x7, 0
  sltiu x9, x7, 1
  andi x10, x7, 0xf
  ori x11, x7, 0x10
  xori x12, x7, -1
  slli x13, x12, 3
  srli x14, x7, 4
  srai x15, x7, 4
  add x16, x13, x14
  sub x17, x13, x14
  sll x18, x16, x8
  slt x19, x7, x16
  sltu x20, x7, x16
  xor x21, x16, x17
  srl x22, x7, x8
  sra x23, x7, x8
  or x24, x21, x22
  and x25, x21, x22
  la x28, arena
  sb x7, 0(x28)
  sh x7, 2(x28)
  sw x7, 4(x28)
  lb x26, 0(x28)
  lbu x27, 0(x28)
  lh x29, 2(x28)
  lhu x30, 2(x28)
  lw x31, 4(x28)
  la x5, fdata
  flw f0, 0(x5)
  flw f1, 4(x5)
  fadd.s f2, f0, f1
  fmul.s f3, f0, f1
  fsw f3, 8(x5)
  fcvt.w.s x6, f2
  beq x26, x27, skip1
  addi x10, x10, 1
skip1:
  bne x26, x27, skip2
  addi x10, x10, 2
skip2:
  blt x7, x0, skip3
  addi x10, x10, 4
skip3:
  bge x0, x7, skip4
  addi x10, x10, 8
skip4:
  bltu x7, x0, skip5
  addi x10, x10, 16
skip5:
  bgeu x7, x0, skip6
  addi x10, x10, 32
skip6:
  jal x1, sub
  ecall
sub:
  jalr x0, x1, 0
.data
arena: .zero 16
fdata: .word 0x3fc00000, 0x40200000, 0
`

// TestFFKitchenSinkFused: the full specialized-opcode sweep through the
// fused block plans against the detailed pipeline.
func TestFFKitchenSinkFused(t *testing.T) {
	ffCompare(t, ffKitchenSink)
}

// TestFFKitchenSinkGeneric: the same sweep with the fused blocks forced
// through the generic interpreter path — the third semantic path the
// nightly fuzzer compares.
func TestFFKitchenSinkGeneric(t *testing.T) {
	ffCompareMode(t, ffKitchenSink, true)
}

// TestFFMemoryFaults: out-of-bounds accesses must fault identically in
// fast-forward and detailed mode — same exception text, same committed
// count (ffCompare checks both via halt reason and ArchHash).
func TestFFMemoryFaults(t *testing.T) {
	cases := map[string]string{
		"load": `
  li x5, 1
  lui x6, 1048575
  lw x7, 0(x6)
  ecall
`,
		"store": `
  li x5, 1
  lui x6, 1048575
  sw x5, 0(x6)
  ecall
`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			ff := ffCompare(t, src)
			if ff.Exception() == nil {
				t.Fatal("expected a memory fault, got a clean halt")
			}
		})
	}
}

// TestFFSteadyStateAllocFree: once the touched blocks are compiled, the
// fast-forward step loop must not allocate — the same discipline the
// detailed engine's Step pins in BenchmarkStep.
func TestFFSteadyStateAllocFree(t *testing.T) {
	ff := buildSim(t, config.Default(), `
  li x5, 1000000
loop:
  addi x10, x10, 1
  addi x5, x5, -1
  bne x5, x0, loop
  ecall
`)
	ff.SetEngineMode(EngineFastForward)
	ff.Run(64) // warm up: compiles the loop blocks
	allocs := testing.AllocsPerRun(100, func() { ff.Step() })
	if allocs > 0 {
		t.Errorf("fast-forward Step allocates %.1f times per call in steady state, want 0", allocs)
	}
}
