package core

import (
	"encoding/binary"
	"hash/fnv"

	"riscvsim/internal/isa"
)

// ArchHash digests the architectural machine state: every architectural
// register, all of data memory, the committed-instruction bookkeeping and
// the halt story. It deliberately excludes timing state — cycle counts,
// stall counters, cache and predictor contents — and the fetch PC (after
// an ecall halt the detailed front end has speculatively run ahead of the
// commit point), so a fast-forward run and a detailed run of the same
// program produce the same digest exactly when they agree architecturally.
// The fast-forward-equivalence CI gate and the three-way co-simulation
// fuzzer compare runs across engine modes with it; StateHash (sim
// package) remains the full cycle-accurate digest within one mode.
func (s *Simulation) ArchHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := 0; i < isa.NumRegs; i++ {
		w64(s.rf.ArchValue(isa.RegInt, i).Bits())
	}
	for i := 0; i < isa.NumRegs; i++ {
		w64(s.rf.ArchValue(isa.RegFloat, i).Bits())
	}
	s.mem.WriteTo(h)
	w64(s.committedCount)
	w64(s.flops)
	for _, n := range s.dynMix {
		w64(n)
	}
	if s.halted {
		w64(1)
		h.Write([]byte(s.haltReason))
	} else {
		w64(0)
	}
	if s.exception != nil {
		h.Write([]byte(s.exception.Error()))
	}
	return h.Sum64()
}
