package core

import "fmt"

// Debugging support: breakpoints and memory watchpoints, the code-
// development features the paper lists as future work (§V: "adding
// breakpoints, watches, ...").
//
// Semantics are commit-ordered, which is the only well-defined program
// order in an out-of-order core: a breakpoint pauses the simulation when
// the instruction at the breakpoint PC is about to commit; a watchpoint
// pauses right after a store to the watched range commits. Pausing does
// not end the simulation — Resume() continues past the trigger.

// watchRange is one watched memory region.
type watchRange struct {
	addr int
	size int
}

// AddBreakpoint pauses the simulation when the instruction at pc is about
// to commit.
func (s *Simulation) AddBreakpoint(pc int) error {
	if pc < 0 || pc >= len(s.prog.Instructions) {
		return fmt.Errorf("core: breakpoint pc %d outside code of %d instructions", pc, len(s.prog.Instructions))
	}
	if s.breakpoints == nil {
		s.breakpoints = make(map[int]bool)
	}
	s.breakpoints[pc] = true
	return nil
}

// RemoveBreakpoint deletes a breakpoint.
func (s *Simulation) RemoveBreakpoint(pc int) {
	delete(s.breakpoints, pc)
}

// Breakpoints lists the active breakpoint PCs.
func (s *Simulation) Breakpoints() []int {
	out := make([]int, 0, len(s.breakpoints))
	for pc := range s.breakpoints {
		out = append(out, pc)
	}
	// Deterministic order for display.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// AddWatch pauses the simulation when a committed store touches
// [addr, addr+size).
func (s *Simulation) AddWatch(addr, size int) error {
	if size <= 0 || addr < 0 || addr+size > s.mem.Size() {
		return fmt.Errorf("core: watch range [%d,%d) outside memory of %d bytes", addr, addr+size, s.mem.Size())
	}
	s.watches = append(s.watches, watchRange{addr: addr, size: size})
	return nil
}

// ClearWatches removes all watchpoints.
func (s *Simulation) ClearWatches() { s.watches = nil }

// Paused reports whether a breakpoint or watchpoint paused the simulation.
func (s *Simulation) Paused() bool { return s.paused }

// PauseReason describes the trigger.
func (s *Simulation) PauseReason() string { return s.pauseReason }

// Resume clears the pause and arms a one-shot pass so the instruction that
// triggered a breakpoint can commit without immediately re-triggering.
func (s *Simulation) Resume() {
	s.paused = false
	s.pauseReason = ""
	if head := s.rob.Head(); head != nil {
		s.bpSkipID = head.ID
	}
}

// checkBreakpoint reports whether committing si should pause instead.
func (s *Simulation) checkBreakpoint(si *SimInstr, now uint64) bool {
	if len(s.breakpoints) == 0 || !s.breakpoints[si.PC] {
		return false
	}
	if s.bpSkipID == si.ID {
		return false // resumed past this trigger
	}
	s.paused = true
	s.pauseReason = fmt.Sprintf("breakpoint at pc=%d (%s)", si.PC, si.Static.String())
	s.logf(now, "paused: %s", s.pauseReason)
	return true
}

// checkWatches pauses after a committed store to a watched range.
func (s *Simulation) checkWatches(si *SimInstr, now uint64) {
	if len(s.watches) == 0 {
		return
	}
	w := si.Static.Desc.MemWidth
	for _, wr := range s.watches {
		if si.effAddr < wr.addr+wr.size && wr.addr < si.effAddr+w {
			s.paused = true
			s.pauseReason = fmt.Sprintf("watch hit: %s stored %d bytes at address %d (watched [%d,%d))",
				si.Static.String(), w, si.effAddr, wr.addr, wr.addr+wr.size)
			s.logf(now, "paused: %s", s.pauseReason)
			return
		}
	}
}
