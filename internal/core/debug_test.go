package core

import (
	"strings"
	"testing"

	"riscvsim/internal/config"
)

func TestBreakpointPausesAtCommit(t *testing.T) {
	sim := buildSim(t, config.Default(), `
li t0, 1
li t1, 2
add t2, t0, t1
li t3, 4
`)
	if err := sim.AddBreakpoint(2); err != nil {
		t.Fatal(err)
	}
	sim.Run(10_000)
	if !sim.Paused() {
		t.Fatal("simulation should pause at the breakpoint")
	}
	if !strings.Contains(sim.PauseReason(), "pc=2") {
		t.Errorf("pause reason = %q", sim.PauseReason())
	}
	// The breakpointed instruction has not committed: t2 still 0.
	checkInt(t, sim, "t2", 0)
	// Older instructions committed.
	checkInt(t, sim, "t0", 1)
	checkInt(t, sim, "t1", 2)

	// Resume continues past the trigger to completion.
	sim.Resume()
	sim.Run(10_000)
	if !sim.Halted() {
		t.Fatal("should halt after resume")
	}
	checkInt(t, sim, "t2", 3)
	checkInt(t, sim, "t3", 4)
}

func TestBreakpointInLoopHitsRepeatedly(t *testing.T) {
	sim := buildSim(t, config.Default(), `
li t0, 0
li t1, 5
loop:
  addi t0, t0, 1    # pc=2: breakpoint
  bne t0, t1, loop
`)
	if err := sim.AddBreakpoint(2); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for !sim.Halted() && hits < 20 {
		sim.Run(100_000)
		if sim.Paused() {
			hits++
			sim.Resume()
		}
	}
	if hits != 5 {
		t.Errorf("breakpoint hit %d times, want 5 (one per iteration)", hits)
	}
	checkInt(t, sim, "t0", 5)
}

func TestBreakpointValidation(t *testing.T) {
	sim := buildSim(t, config.Default(), "nop\n")
	if err := sim.AddBreakpoint(99); err == nil {
		t.Error("out-of-range breakpoint should fail")
	}
	if err := sim.AddBreakpoint(-1); err == nil {
		t.Error("negative breakpoint should fail")
	}
	if err := sim.AddBreakpoint(0); err != nil {
		t.Errorf("valid breakpoint rejected: %v", err)
	}
	if got := sim.Breakpoints(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Breakpoints() = %v", got)
	}
	sim.RemoveBreakpoint(0)
	if len(sim.Breakpoints()) != 0 {
		t.Error("RemoveBreakpoint failed")
	}
}

func TestWatchpointPausesOnStore(t *testing.T) {
	sim := buildSim(t, config.Default(), `
la t0, buf
li t1, 11
sw t1, 0(t0)      # does not touch the watch
li t2, 22
sw t2, 8(t0)      # watched!
li t3, 33
.data
buf: .zero 16
`)
	addr, ok := sim.Memory().Lookup("buf")
	if !ok {
		t.Fatal("buf missing")
	}
	if err := sim.AddWatch(addr.Addr+8, 4); err != nil {
		t.Fatal(err)
	}
	sim.Run(100_000)
	if !sim.Paused() {
		t.Fatal("watchpoint should pause")
	}
	if !strings.Contains(sim.PauseReason(), "watch hit") {
		t.Errorf("pause reason = %q", sim.PauseReason())
	}
	// The watched store has committed (watch fires after commit).
	sim.Resume()
	sim.Run(100_000)
	if !sim.Halted() {
		t.Fatal("should finish after resume")
	}
	checkInt(t, sim, "t3", 33)
	v, _ := sim.Memory().ReadWord(addr.Addr + 8)
	if v != 22 {
		t.Errorf("watched word = %d, want 22", v)
	}
}

func TestWatchValidation(t *testing.T) {
	sim := buildSim(t, config.Default(), "nop\n")
	if err := sim.AddWatch(-1, 4); err == nil {
		t.Error("negative watch should fail")
	}
	if err := sim.AddWatch(0, 0); err == nil {
		t.Error("empty watch should fail")
	}
	if err := sim.AddWatch(1<<30, 4); err == nil {
		t.Error("out-of-memory watch should fail")
	}
	if err := sim.AddWatch(0, 4); err != nil {
		t.Errorf("valid watch rejected: %v", err)
	}
	sim.ClearWatches()
}

func TestBreakpointsSurviveBackwardStep(t *testing.T) {
	sim := buildSim(t, config.Default(), `
li t0, 0
li t1, 8
loop:
  addi t0, t0, 1
  bne t0, t1, loop
`)
	sim.AddBreakpoint(2)
	sim.Run(100_000)
	if !sim.Paused() {
		t.Fatal("should pause")
	}
	back, err := sim.StepBack()
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Breakpoints()) != 1 {
		t.Error("breakpoints lost across backward step")
	}
	// The rewound simulation can run and re-trigger the breakpoint.
	back.Run(100_000)
	if !back.Paused() && !back.Halted() {
		t.Error("rewound simulation stuck")
	}
}

func TestPausedStateIsInert(t *testing.T) {
	sim := buildSim(t, config.Default(), "li t0, 1\nli t1, 2\n")
	sim.AddBreakpoint(1)
	sim.Run(10_000)
	if !sim.Paused() {
		t.Fatal("should pause")
	}
	at := sim.Cycle()
	sim.Step() // must be a no-op while paused
	if sim.Cycle() != at {
		t.Error("Step advanced a paused simulation")
	}
}
