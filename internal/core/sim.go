package core

import (
	"fmt"

	"riscvsim/internal/asm"
	"riscvsim/internal/cache"
	"riscvsim/internal/config"
	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
	"riscvsim/internal/predictor"
	"riscvsim/internal/rename"
	"riscvsim/internal/stats"
	"riscvsim/internal/trace"
)

// LogEntry is one timestamped debug-log message (paper §II-A: "Each log
// message is timestamped with the cycle in which it was generated").
type LogEntry struct {
	Cycle uint64 `json:"cycle"`
	Msg   string `json:"msg"`
}

// The debug-log bound is an architecture knob (config.CPU.MaxLogEntries,
// default config.DefaultMaxLogEntries); the core keeps the newest entries
// once the bound is reached.

// Simulation is one processor simulation instance: the step manager that
// owns all pipeline blocks, arranged in a queue based on their position in
// the pipeline, and calls them sequentially each clock cycle (the paper's
// BlockScheduleTask, §III-A).
type Simulation struct {
	cfg  *config.CPU
	set  *isa.Set
	regs *isa.RegisterFile
	prog *asm.Program
	mem  *memory.Main
	// initialMem snapshots the loaded memory image so backward
	// simulation can re-run deterministically from cycle zero.
	initialMem *memory.Main
	entry      int

	l1    *cache.Cache
	pred  *predictor.Predictor
	rf    *rename.File
	rob   *ROB
	fus   []*FU
	lsu   *LSU
	fetch *fetchUnit

	windows [4]*issueWindow // indexed by isa.FUClass

	// decodeBuf is the fetch→decode queue; entries before decodeHead have
	// been consumed by rename. The buffer is compacted in place by
	// fetchStep so its backing array is reused instead of reallocated.
	decodeBuf  []*SimInstr
	decodeHead int
	decodeCap  int

	// eng executes instruction semantics: specialized RV32IM fast path
	// with the expression interpreter as total fallback. engineMode
	// records the selected engine (engine.go) so replays and fresh
	// copies inherit it.
	eng        *ExecEngine
	engineMode EngineMode

	// Fast-forward mode state (blockplan.go). ffStopPC cuts block
	// execution at a code index (-1 = none); ffFlushed records that the
	// cache was made coherent after the last detailed→fast-forward
	// switch; ffScratch is the reusable instruction backing the
	// interpreter-fallback path so fast-forward stays allocation-free.
	ffStopPC  int
	ffFlushed bool
	ffScratch SimInstr

	// commitLimit freezes the committed-instruction count at an exact
	// value: commit (and fast-forward block execution) refuses to retire
	// instruction commitLimit+1 while the rest of the pipeline keeps
	// cycling. 0 = unlimited. A runtime knob like engineMode — not part
	// of encoded state — used by RunToCommitted to land on exact
	// committed-count boundaries for time-parallel interval simulation.
	commitLimit uint64

	// freeInstrs is the SimInstr free list: instances are reclaimed when
	// an instruction commits, is squashed, or (for stores) drains to the
	// cache, so steady-state stepping allocates nothing.
	freeInstrs []*SimInstr

	cycle  uint64
	nextID uint64

	halted     bool
	haltReason string
	exception  *fault.Exception

	// Statistics counters.
	committedCount uint64
	squashedCount  uint64
	flops          uint64
	robFlushes     uint64
	dynMix         [isa.NumInstrTypes]uint64
	decodeStalls   uint64
	commitStalls   uint64
	renameStalls   uint64
	robOccSum      uint64

	// Debugging (paper §V future work): breakpoints/watches pause the
	// simulation at commit without ending it.
	breakpoints map[int]bool
	watches     []watchRange
	paused      bool
	pauseReason string
	bpSkipID    uint64

	log        []LogEntry
	logBound   int
	VerboseLog bool

	// tracer receives typed stage events (the structured pipeline-trace
	// subsystem). nil means tracing is off; every emission site guards
	// with a nil check so the untraced hot loop pays only that check
	// (pinned by BenchmarkSimTraceOff). traceWant and tracePCMin/Max
	// cache the tracer's filter so filtered collectors skip event
	// construction too.
	tracer     trace.Tracer
	traceWant  trace.StageMask
	tracePCMin int
	tracePCMax int // -1 = unbounded
}

// New builds a simulation over an assembled program and its loaded memory.
// The memory must already contain the program's data image (asm.Assemble);
// entry is the starting instruction index. Mirrors the initialization
// sequence of paper §III-A: configuration validation, statistics and block
// construction, register-file initialization and PC setup.
func New(cfg *config.CPU, set *isa.Set, regs *isa.RegisterFile, prog *asm.Program, mem *memory.Main, entry int) (*Simulation, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid configuration: %v", errs[0])
	}
	if entry < 0 || (entry >= len(prog.Instructions) && len(prog.Instructions) > 0) {
		return nil, fmt.Errorf("core: entry point %d outside code of %d instructions", entry, len(prog.Instructions))
	}
	l1, err := cache.New(cfg.Cache, mem)
	if err != nil {
		return nil, err
	}
	pred, err := predictor.New(cfg.Predictor)
	if err != nil {
		return nil, err
	}
	s := &Simulation{
		cfg:        cfg,
		set:        set,
		regs:       regs,
		prog:       prog,
		mem:        mem,
		initialMem: mem.Clone(),
		entry:      entry,
		l1:         l1,
		pred:       pred,
		rf:         rename.NewFile(cfg.RenameRegisters),
		rob:        NewROB(cfg.ROBSize),
		lsu:        NewLSU(cfg.LoadBufferSize, cfg.StoreBufferSize, l1),
		decodeCap:  2 * cfg.FetchWidth,
		eng:        newExecEngine(prog),
		logBound:   cfg.LogBound(),
		ffStopPC:   -1,
	}
	s.lsu.onRecycle = s.recycleInstr
	s.windows[isa.FX] = newIssueWindow(isa.FX, cfg.FXWindow)
	s.windows[isa.FP] = newIssueWindow(isa.FP, cfg.FPWindow)
	s.windows[isa.LS] = newIssueWindow(isa.LS, cfg.LSWindow)
	s.windows[isa.Branch] = newIssueWindow(isa.Branch, cfg.BranchWindow)
	for i := range cfg.Units {
		fu := NewFU(&cfg.Units[i])
		fu.precompute(prog)
		s.fus = append(s.fus, fu)
	}
	s.fetch = newFetchUnit(prog, pred, cfg.FetchWidth, cfg.JumpsPerCycle, entry)

	// Register initialization (paper §III-C): the call stack lives at the
	// bottom of memory and x2 (sp) points at its end; the return address
	// is a sentinel one past the code so that `ret` from the entry
	// routine leaves the code segment and drains the pipeline.
	s.rf.SetArchValue(isa.RegInt, isa.RegSP, expr.NewInt(int32(mem.StackPointerInit())))
	s.rf.SetArchValue(isa.RegInt, isa.RegRA, expr.NewInt(int32(len(prog.Instructions))))
	return s, nil
}

// allocInstr takes an instruction instance from the free list (zeroed) or
// allocates a fresh one. In steady state the in-flight population is
// bounded by the pipeline's buffer sizes, so the free list stops growing
// and stepping allocates nothing (pinned by TestStepAllocFree).
func (s *Simulation) allocInstr() *SimInstr {
	if n := len(s.freeInstrs); n > 0 {
		si := s.freeInstrs[n-1]
		s.freeInstrs[n-1] = nil
		s.freeInstrs = s.freeInstrs[:n-1]
		*si = SimInstr{}
		return si
	}
	return &SimInstr{}
}

// recycleInstr returns a dead instruction instance to the free list. The
// caller must guarantee nothing references it anymore: instructions are
// reclaimed at commit (non-stores), at store drain, and after a squash has
// been scrubbed from every pipeline structure.
func (s *Simulation) recycleInstr(si *SimInstr) {
	s.freeInstrs = append(s.freeInstrs, si)
}

// newInstr builds a fetched dynamic instruction from the free list.
func (s *Simulation) newInstr(st *asm.Instruction, pc int, now uint64) *SimInstr {
	si := s.allocInstr()
	s.nextID++
	si.ID = s.nextID
	si.Static = st
	si.PC = pc
	si.Phase = PhaseFetched
	si.FetchedAt = now
	return si
}

// pendingDecode returns the not-yet-renamed tail of the decode buffer.
func (s *Simulation) pendingDecode() []*SimInstr {
	return s.decodeBuf[s.decodeHead:]
}

func (s *Simulation) logf(now uint64, format string, args ...any) {
	if len(s.log) >= s.logBound {
		// Keep the newest entries: drop the oldest half by re-slicing —
		// no element copying here; append reclaims the dead prefix the
		// next time it grows the slice.
		s.log = s.log[len(s.log)-s.logBound/2:]
	}
	s.log = append(s.log, LogEntry{Cycle: now, Msg: fmt.Sprintf(format, args...)})
}

// SetTracer attaches (or with nil detaches) the pipeline-trace sink. The
// LSU gets a forwarding hook so load completions report from lsu.go with
// the same nil-guarded discipline. A sink exposing a stage filter
// (trace.Filterer, e.g. the Ring) lets the emission sites skip unwanted
// stages before building the event at all.
func (s *Simulation) SetTracer(t trace.Tracer) {
	s.tracer = t
	if t == nil {
		s.traceWant = 0
		s.lsu.onTrace = nil
		return
	}
	s.traceWant = trace.WantedStages(t)
	s.tracePCMin, s.tracePCMax = 0, -1
	if f, ok := t.(trace.Filterer); ok {
		flt := f.Filter()
		s.tracePCMin, s.tracePCMax = flt.PCMin, flt.PCMax
	}
	if s.traceWant.Has(trace.StageWriteback) {
		s.lsu.onTrace = func(now uint64, si *SimInstr, st trace.Stage, detail string) {
			s.emit(now, si, st, detail)
		}
	} else {
		s.lsu.onTrace = nil
	}
}

// Tracer returns the attached pipeline-trace sink, or nil.
func (s *Simulation) Tracer() trace.Tracer { return s.tracer }

// tracing reports whether the stage should be emitted: a tracer is
// attached and wants it. The nil comparison comes first so the untraced
// hot path pays a single predictable branch.
func (s *Simulation) tracing(st trace.Stage) bool {
	return s.tracer != nil && s.traceWant.Has(st)
}

// emit forwards one stage transition to the tracer. Callers must guard
// with s.tracer != nil so the trace-off hot path pays only that check
// (and never builds the event or its detail string). The cached
// PC-range filter short-circuits here, before the disassembly text is
// formatted — the expensive part of event construction.
func (s *Simulation) emit(now uint64, si *SimInstr, st trace.Stage, detail string) {
	if si.PC < s.tracePCMin || (s.tracePCMax >= 0 && si.PC > s.tracePCMax) {
		return
	}
	s.tracer.Trace(trace.StageEvent{
		Cycle:   now,
		InstrID: si.ID,
		PC:      si.PC,
		Disasm:  si.Static.String(),
		Stage:   st,
		Detail:  detail,
	})
}

// Cycle returns the number of executed cycles.
func (s *Simulation) Cycle() uint64 { return s.cycle }

// Halted reports whether the simulation has ended.
func (s *Simulation) Halted() bool { return s.halted }

// HaltReason describes why the simulation ended.
func (s *Simulation) HaltReason() string { return s.haltReason }

// Exception returns the raising exception, if the program faulted.
func (s *Simulation) Exception() *fault.Exception { return s.exception }

// Memory exposes the simulated memory (for dumps and the memory window).
func (s *Simulation) Memory() *memory.Main { return s.mem }

// Cache exposes the L1 cache (GUI cache pane).
func (s *Simulation) Cache() *cache.Cache { return s.l1 }

// Registers exposes the register files.
func (s *Simulation) Registers() *rename.File { return s.rf }

// Program returns the assembled program under simulation.
func (s *Simulation) Program() *asm.Program { return s.prog }

// Log returns the debug log entries.
func (s *Simulation) Log() []LogEntry { return s.log }

// Step advances the simulation by one clock cycle, calling all blocks in
// pipeline order: commit first, then the memory unit, the functional
// units' completion sub-step, issue (the FUs' load sub-step), rename and
// fetch — so one instruction can leave and another enter a unit within a
// single cycle (paper §III-A).
func (s *Simulation) Step() {
	if s.halted || s.paused {
		return
	}
	if s.engineMode == EngineFastForward {
		// Fused basic-block execution: one Step = one block (or one
		// drain cycle of a detailed prefix) — see blockplan.go.
		s.ffStep()
		return
	}
	now := s.cycle + 1

	s.commitStep(now)
	if !s.halted {
		s.memoryStep(now)
		s.completeStep(now)
		s.issueStep(now)
		s.renameStep(now)
		s.fetchStep(now)
	}

	s.robOccSum += uint64(s.rob.Len())
	for _, w := range s.windows {
		w.CountOccupancy()
	}
	for _, fu := range s.fus {
		fu.CountBusy()
	}

	s.cycle = now
	s.checkPipelineEmpty(now)
}

// Run advances until the simulation halts or maxCycles elapse. It returns
// the number of cycles executed in this call.
func (s *Simulation) Run(maxCycles uint64) uint64 {
	start := s.cycle
	for !s.halted && !s.paused && s.cycle-start < maxCycles {
		s.Step()
	}
	return s.cycle - start
}

// RunToCommitted advances until exactly target instructions have
// committed (or the simulation halts / maxCycles elapse). Unlike Run, the
// stop point is exact in committed-instruction space: a temporary commit
// limit keeps the final cycle from retiring past the boundary even on a
// multi-wide commit stage, and cuts fused fast-forward blocks mid-block.
// Committed-count boundaries are the coordinate system of time-parallel
// interval simulation — two runs stopped at the same committed count have
// identical architectural state regardless of engine or timing path.
// It returns the number of cycles executed in this call.
func (s *Simulation) RunToCommitted(target, maxCycles uint64) uint64 {
	prev := s.commitLimit
	s.commitLimit = target
	start := s.cycle
	for !s.halted && !s.paused && s.committedCount < target && s.cycle-start < maxCycles {
		s.Step()
	}
	s.commitLimit = prev
	return s.cycle - start
}

// DrainCoherent makes the memory hierarchy architecturally coherent —
// committed stores drained from the store buffer, dirty cache lines
// written back — so ArchHash observes the full memory image mid-run (the
// halt paths do this implicitly). It perturbs timing state (lines become
// clean), so callers either discard the machine afterwards or accept the
// perturbation; in-flight speculative state is untouched.
func (s *Simulation) DrainCoherent() {
	s.lsu.DrainAll(s.cycle)
	s.l1.FlushAll(s.cycle)
}

// ---------------------------------------------------------------------------
// Pipeline stages
// ---------------------------------------------------------------------------

func (s *Simulation) commitStep(now uint64) {
	for n := 0; n < s.cfg.CommitWidth; n++ {
		if s.commitLimit != 0 && s.committedCount >= s.commitLimit {
			return
		}
		if s.rob.Empty() || !s.rob.HeadDone() {
			if n == 0 && !s.rob.Empty() {
				s.commitStalls++
			}
			return
		}
		if s.checkBreakpoint(s.rob.Head(), now) {
			return
		}
		si := s.rob.Pop()
		si.Phase = PhaseCommitted
		si.CommittedAt = now
		if s.tracing(trace.StageCommit) {
			detail := ""
			if si.Exc.Occurred() {
				detail = "exception: " + si.Exc.Error()
			} else if si.Static.Desc.Halts {
				detail = "halt"
			}
			s.emit(now, si, trace.StageCommit, detail)
		}

		// The existence of an exception is checked when the
		// instruction is committed (paper §III-B).
		if si.Exc.Occurred() {
			s.haltWithException(si.Exc, now)
			return
		}
		if si.IsBranch() {
			s.pred.Update(si.PC, si.Static.Desc.Conditional,
				si.actualTaken, si.actualTgt, !si.mispredict)
		}
		if si.hasDest {
			s.rf.Commit(si.destTag)
		}
		if si.IsStore() {
			s.lsu.OnCommitStore(si)
			s.checkWatches(si, now)
		}
		s.committedCount++
		s.dynMix[si.Static.Desc.Type]++
		s.flops += uint64(si.Static.Desc.Flops)
		if s.VerboseLog {
			s.logf(now, "commit %s", si)
		}
		if s.paused {
			return
		}
		if si.Static.Desc.Halts {
			s.halted = true
			s.haltReason = fmt.Sprintf("%s executed (the simulator runs no OS; environment calls end the program)", si.Static.Desc.Name)
			s.logf(now, "halt: %s", s.haltReason)
			s.lsu.DrainAll(now)
			s.l1.FlushAll(now)
			return
		}
		// A committed non-store is referenced by nothing anymore (its ROB
		// slot was popped, and loads left the load buffer at completion);
		// stores are reclaimed by the LSU once they drain to the cache.
		if !si.IsStore() {
			s.recycleInstr(si)
		}
	}
}

func (s *Simulation) memoryStep(now uint64) {
	completed, storeExc := s.lsu.Step(now)
	for _, ld := range completed {
		if ld.Squashed {
			continue
		}
		ld.MemoryAt = now
		if ld.hasDest {
			if ld.Exc.Occurred() {
				s.rf.SetValue(ld.destTag, expr.NewInt(0))
			} else {
				s.rf.SetValue(ld.destTag, LoadValue(ld.Static.Desc, ld.storeData))
			}
		}
		s.rob.MarkDone(ld)
		ld.Phase = PhaseDone
	}
	if storeExc != nil {
		s.haltWithException(storeExc, now)
	}
}

func (s *Simulation) completeStep(now uint64) {
	for _, fu := range s.fus {
		for _, si := range fu.ReleaseDone(now) {
			s.completeInstr(si, now)
		}
	}
}

// completeInstr handles one instruction leaving a functional unit.
func (s *Simulation) completeInstr(si *SimInstr, now uint64) {
	{
		if si.Squashed {
			return
		}
		si.ExecutedAt = now
		desc := si.Static.Desc
		if s.tracing(trace.StageExecute) {
			detail := ""
			switch {
			case desc.IsBranch():
				if si.actualTaken {
					detail = fmt.Sprintf("taken->%d", si.actualTgt)
				} else {
					detail = "not-taken"
				}
				if si.mispredict {
					detail += " mispredict"
				}
			case desc.IsLoad(), desc.IsStore():
				detail = fmt.Sprintf("addr=%d", si.effAddr)
			}
			if si.Exc.Occurred() {
				detail = "exception: " + si.Exc.Error()
			}
			s.emit(now, si, trace.StageExecute, detail)
		}
		switch {
		case desc.IsBranch():
			s.writebackDest(si, now)
			s.rob.MarkDone(si)
			si.Phase = PhaseDone
			switch {
			case si.Exc.Occurred():
				// Raised at commit; no redirect on a faulting branch.
			case si.mispredict:
				s.flushAfter(si, now)
			case si.predStall:
				// Fetch was parked on this unknown-target jump;
				// resume it at the resolved target without a
				// flush (nothing wrong-path was fetched).
				s.fetch.Redirect(si.actualTgt, now, 0)
				if s.VerboseLog {
					// Gated: indirect-call-heavy code resolves a
					// parked jump per dispatch.
					s.logf(now, "fetch resumed at %d after %s", si.actualTgt, si)
				}
			}
		case desc.IsLoad():
			// Address generation finished; the load now waits on the
			// memory unit (it stays in the load buffer).
			si.addrReady = true
			si.Phase = PhaseMemory
			s.checkAddress(si, now)
			if si.Exc.Occurred() {
				// AGU fault: complete immediately, raise at commit.
				si.memIssued = true
				si.memDoneAt = now
			}
		case desc.IsStore():
			si.addrReady = true
			s.checkAddress(si, now)
			s.rob.MarkDone(si)
			si.Phase = PhaseDone
		default:
			s.writebackDest(si, now)
			s.rob.MarkDone(si)
			si.Phase = PhaseDone
		}
	}
}

// checkAddress validates a computed effective address against the memory
// capacity so that accesses to unauthorized addresses raise at the
// instruction's own commit (paper §III-B).
func (s *Simulation) checkAddress(si *SimInstr, now uint64) {
	w := si.Static.Desc.MemWidth
	if si.effAddr < 0 || si.effAddr+w > s.mem.Size() {
		si.Exc = fault.New(fault.InvalidMemoryAccess,
			"%s accesses %d bytes at address %d outside memory of %d bytes",
			si.Static.Desc.Name, w, si.effAddr, s.mem.Size())
		si.Exc.Cycle = now
		si.Exc.PC = si.PC
	}
}

// writebackDest publishes the computed result to the rename file; faulting
// instructions publish a zero so commit bookkeeping stays consistent (the
// exception is raised at commit anyway).
func (s *Simulation) writebackDest(si *SimInstr, now uint64) {
	if !si.hasDest {
		return
	}
	if si.resultReady {
		s.rf.SetValue(si.destTag, si.result)
	} else {
		s.rf.SetValue(si.destTag, expr.NewInt(0))
	}
	if s.tracing(trace.StageWriteback) {
		s.emit(now, si, trace.StageWriteback, rename.TagName(si.destTag))
	}
}

func (s *Simulation) issueStep(now uint64) {
	for _, fu := range s.fus {
		if !fu.CanAccept(now) {
			continue
		}
		w := s.windows[fu.Class()]
		if si := w.SelectReady(s.rf, fu); si != nil {
			fu.Accept(si, now, s.eng)
			if s.tracing(trace.StageIssue) {
				s.emit(now, si, trace.StageIssue, fu.Name())
			}
		}
	}
}

func (s *Simulation) renameStep(now uint64) {
	n := 0
	for s.decodeHead < len(s.decodeBuf) && n < s.cfg.FetchWidth {
		si := s.decodeBuf[s.decodeHead]
		desc := si.Static.Desc
		if s.rob.Full() {
			s.decodeStalls++
			return
		}
		w := s.windows[desc.Unit]
		if w.Full() {
			s.decodeStalls++
			return
		}
		if (desc.IsLoad() || desc.IsStore()) && !s.lsu.CanAccept(desc.IsStore()) {
			s.decodeStalls++
			return
		}

		// Rename sources first so an instruction that reads and writes
		// the same register sees the older copy. Operand classes and
		// register indices were pre-resolved at load (renameplan.go).
		rp := &s.eng.rplans[si.PC]
		for i := 0; i < int(rp.nsrc); i++ {
			rs := &rp.srcs[i]
			ref := s.rf.LookupSrc(rs.class, int(rs.reg))
			si.srcs[si.nsrc] = srcOperand{
				name: rs.name, class: rs.class, reg: int(rs.reg), ref: ref,
			}
			si.nsrc++
		}

		// Rename the destination; a write to x0 is architecturally
		// discarded and allocates nothing (hasDest pre-excludes it).
		if rp.hasDest {
			tag, prev, ok := s.rf.Alloc(rp.destClass, int(rp.destReg))
			if !ok {
				// Rename file exhausted: undo source refs and stall.
				si.releaseRefs(s.rf)
				si.nsrc = 0
				s.renameStalls++
				return
			}
			si.hasDest = true
			si.destClass = rp.destClass
			si.destReg = int(rp.destReg)
			si.destTag = tag
			si.destPrev = prev
		}

		s.rob.Push(si)
		if desc.IsLoad() || desc.IsStore() {
			s.lsu.Add(si)
		}
		w.Insert(si)
		si.Phase = PhaseDecoded
		si.DecodedAt = now
		if s.tracer != nil {
			if s.traceWant.Has(trace.StageDecode) {
				s.emit(now, si, trace.StageDecode, "")
			}
			if s.traceWant.Has(trace.StageRename) {
				renamed := ""
				if si.hasDest {
					renamed = rename.TagName(si.destTag)
				}
				s.emit(now, si, trace.StageRename, renamed)
			}
			if s.traceWant.Has(trace.StageDispatch) {
				s.emit(now, si, trace.StageDispatch, desc.Unit.String())
			}
		}
		s.decodeBuf[s.decodeHead] = nil
		s.decodeHead++
		n++
	}
}

func (s *Simulation) fetchStep(now uint64) {
	// Compact the consumed prefix away so the backing array is reused.
	if s.decodeHead > 0 {
		kept := copy(s.decodeBuf, s.decodeBuf[s.decodeHead:])
		for i := kept; i < len(s.decodeBuf); i++ {
			s.decodeBuf[i] = nil
		}
		s.decodeBuf = s.decodeBuf[:kept]
		s.decodeHead = 0
	}
	room := s.decodeCap - len(s.decodeBuf)
	if room <= 0 {
		return
	}
	fetched := s.fetch.Fetch(now, room, s)
	if s.tracing(trace.StageFetch) {
		for _, si := range fetched {
			detail := ""
			if si.IsBranch() {
				switch {
				case si.predStall:
					detail = "pred stall (unknown target)"
				case si.predTaken:
					detail = fmt.Sprintf("pred taken->%d", si.predTarget)
				default:
					detail = "pred not-taken"
				}
			}
			s.emit(now, si, trace.StageFetch, detail)
		}
	}
	s.decodeBuf = append(s.decodeBuf, fetched...)
}

// flushAfter squashes everything younger than the mispredicted branch,
// restores the rename map, redirects fetch and applies the flush penalty.
func (s *Simulation) flushAfter(si *SimInstr, now uint64) {
	s.robFlushes++
	squashed := s.rob.SquashAfter(si) // youngest first
	traceSquash := s.tracing(trace.StageSquash)
	var squashDetail string
	if traceSquash {
		squashDetail = fmt.Sprintf("mispredict #%d@%d", si.ID, si.PC)
	}
	for _, sq := range squashed {
		sq.Squashed = true
		sq.Phase = PhaseSquashed
		sq.releaseRefs(s.rf)
		if sq.hasDest {
			s.rf.Squash(sq.destTag, sq.destPrev)
		}
		s.squashedCount++
		if traceSquash {
			s.emit(now, sq, trace.StageSquash, squashDetail)
		}
	}
	// Everything still in the decode buffer was fetched after the branch.
	for _, d := range s.pendingDecode() {
		d.Squashed = true
		d.Phase = PhaseSquashed
		s.squashedCount++
		if traceSquash {
			s.emit(now, d, trace.StageSquash, squashDetail)
		}
	}
	for _, fu := range s.fus {
		fu.AbortSquashed()
	}
	for _, w := range s.windows {
		w.RemoveSquashed()
	}
	s.lsu.RemoveSquashed()
	if s.fetch.waitBranch != nil && s.fetch.waitBranch.Squashed {
		s.fetch.ClearWait(s.fetch.waitBranch)
	}
	s.fetch.Redirect(si.actualTgt, now, s.cfg.FlushPenalty)
	if s.VerboseLog {
		// Gated: formatting the flush message costs a Sprintf per
		// misprediction, which branch-heavy workloads pay thousands of
		// times per run.
		s.logf(now, "flush: %s mispredicted (taken=%v target=%d), %d squashed, penalty %d",
			si, si.actualTaken, si.actualTgt, len(squashed), s.cfg.FlushPenalty)
	}
	// Every squashed instruction has now been scrubbed from the ROB, the
	// windows, the FUs, the LSU and the fetch unit; reclaim the instances.
	// The ROB set (renamed) and the decode tail (not yet renamed) are
	// disjoint, so nothing is recycled twice.
	for _, sq := range squashed {
		s.recycleInstr(sq)
	}
	for i := s.decodeHead; i < len(s.decodeBuf); i++ {
		s.recycleInstr(s.decodeBuf[i])
		s.decodeBuf[i] = nil
	}
	s.decodeBuf = s.decodeBuf[:0]
	s.decodeHead = 0
}

func (s *Simulation) haltWithException(exc *fault.Exception, now uint64) {
	s.halted = true
	s.exception = exc
	s.haltReason = "exception: " + exc.Error()
	s.logf(now, "exception at pc=%d cycle=%d: %s", exc.PC, exc.Cycle, exc.Error())
	// Stores older than the faulting instruction have committed and are
	// architecturally performed; make them visible before the final flush.
	s.lsu.DrainAll(now)
	s.l1.FlushAll(now)
}

// checkPipelineEmpty ends the simulation when the pipeline has drained:
// fetch ran past the code (the entry routine returned to the sentinel
// address) and nothing is in flight (paper §III-A).
func (s *Simulation) checkPipelineEmpty(now uint64) {
	if s.halted {
		return
	}
	if s.fetch.AtEnd() && len(s.pendingDecode()) == 0 && s.rob.Empty() && s.lsu.Drained() {
		s.halted = true
		s.haltReason = "pipeline empty"
		s.logf(now, "halt: pipeline empty after %d committed instructions", s.committedCount)
		s.l1.FlushAll(now)
	}
}

// ---------------------------------------------------------------------------
// Backward simulation
// ---------------------------------------------------------------------------

// StepBack returns a new simulation positioned one cycle earlier. Following
// the paper (§III-B), backward simulation is implemented as a forward
// re-run of t−1 clock cycles from the initial state, which requires the
// simulation to be deterministic (it is: the only pseudo-randomness, the
// cache's Random policy, uses a fixed-seed generator).
func (s *Simulation) StepBack() (*Simulation, error) {
	if s.cycle == 0 {
		return nil, fmt.Errorf("core: already at cycle 0")
	}
	return s.ReplayTo(s.cycle - 1)
}

// ReplayTo returns a fresh simulation advanced to the given cycle.
func (s *Simulation) ReplayTo(target uint64) (*Simulation, error) {
	mem := s.initialMem.Clone()
	ns, err := New(s.cfg, s.set, s.regs, s.prog, mem, s.entry)
	if err != nil {
		return nil, err
	}
	ns.VerboseLog = s.VerboseLog
	// Replay with the same semantic engine: determinism demands the
	// re-run computes exactly what the original did.
	ns.SetEngineMode(s.engineMode)
	for ns.cycle < target && !ns.halted {
		ns.Step()
	}
	// The tracer carries over only after the replay loop: rewinding must
	// not re-emit the past into an attached collector, but forward steps
	// from the new position keep tracing.
	ns.SetTracer(s.tracer)
	ns.SyncDebugState(s)
	return ns, nil
}

// Fresh returns a new simulation at cycle zero sharing this one's
// configuration, program and initial memory image — the machine ReplayTo
// replays on, exposed so in-process snapshot restores can skip rebuilding
// the static world (re-assembly, config round-trips).
func (s *Simulation) Fresh() (*Simulation, error) {
	ns, err := New(s.cfg, s.set, s.regs, s.prog, s.initialMem.Clone(), s.entry)
	if err != nil {
		return nil, err
	}
	ns.SetEngineMode(s.engineMode)
	return ns, nil
}

// ClearDebugState drops breakpoints, watches and any pause, so a
// snapshot-restored simulation can catch up to a rewind target without
// pausing mid-replay (same contract as ReplayTo's replay loop).
func (s *Simulation) ClearDebugState() {
	s.breakpoints = nil
	s.watches = nil
	s.paused = false
	s.pauseReason = ""
}

// SyncDebugState replaces s's debugging state (breakpoints, watches,
// verbose logging) with o's — used after a rewind replay so debug state
// set since the restore point carries over.
func (s *Simulation) SyncDebugState(o *Simulation) {
	s.breakpoints = nil
	if len(o.breakpoints) > 0 {
		s.breakpoints = make(map[int]bool, len(o.breakpoints))
		for pc := range o.breakpoints {
			s.breakpoints[pc] = true
		}
	}
	s.watches = append(s.watches[:0], o.watches...)
	s.VerboseLog = o.VerboseLog
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

// Report assembles the complete runtime-statistics document (paper §II-D).
func (s *Simulation) Report() *stats.Report {
	r := &stats.Report{
		Architecture: s.cfg.Name,
		Cycles:       s.cycle,
		Committed:    s.committedCount,
		Fetched:      s.fetch.fetched,
		Squashed:     s.squashedCount,
		Flops:        s.flops,
		ROBFlushes:   s.robFlushes,
		HaltReason:   s.haltReason,
		StaticMix:    map[string]uint64{},
		DynamicMix:   map[string]uint64{},
		Predictor:    s.pred.Stats(),
		Cache:        s.l1.Stats(),
		Memory:       s.mem.Stats(),
		Rename:       s.rf.Stats(),
		FetchStalls:  s.fetch.stallCycles,
		DecodeStalls: s.decodeStalls,
		CommitStalls: s.commitStalls,
		RenameStalls: s.renameStalls,
	}
	if s.exception != nil {
		r.ExceptionMsg = s.exception.Error()
	}
	if s.cycle > 0 {
		r.IPC = float64(s.committedCount) / float64(s.cycle)
		r.WallTimeSec = float64(s.cycle) / s.cfg.CoreClockHz
		if r.WallTimeSec > 0 {
			r.FlopsPerSec = float64(s.flops) / r.WallTimeSec
		}
		r.ROBOccupancy = float64(s.robOccSum) / float64(s.cycle)
	}
	for t, n := range s.prog.MixStatic() {
		r.StaticMix[t.String()] = uint64(n)
	}
	for t, n := range s.dynMix {
		if n != 0 {
			r.DynamicMix[isa.InstrType(t).String()] = n
		}
	}
	r.PredAccuracy = r.Predictor.Accuracy()
	r.CacheHitRate = r.Cache.HitRate()
	lsu := s.lsu.Stats()
	r.LSU = stats.LSUStat{
		Loads: lsu.Loads, Stores: lsu.Stores, Forwards: lsu.Forwards,
		StallsUnknown: lsu.StallsUnknown, StallsPartial: lsu.StallsPartial,
		BusBusyCycles: lsu.BusBusyCycles,
		LoadBufStalls: lsu.LoadBufStalls, StoreBufStalls: lsu.StoreBufStalls,
	}
	var winSum, winStalls uint64
	for _, w := range s.windows {
		winSum += w.occupancySum
		winStalls += w.fullStalls
	}
	if s.cycle > 0 {
		r.WindowOccup = float64(winSum) / float64(s.cycle*4)
	}
	r.WindowStalls = winStalls
	for _, fu := range s.fus {
		st := fu.Stats()
		pct := 0.0
		if s.cycle > 0 {
			pct = 100 * float64(st.BusyCycles) / float64(s.cycle)
		}
		r.FUs = append(r.FUs, stats.FUStat{
			Name: st.Name, Class: st.Class,
			BusyCycles: st.BusyCycles, BusyPct: pct, ExecCount: st.ExecCount,
		})
	}
	return r
}
