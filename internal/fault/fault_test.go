package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		None:                "none",
		DivisionByZero:      "division by zero",
		InvalidMemoryAccess: "invalid memory access",
		MisalignedAccess:    "misaligned memory access",
		InvalidInstruction:  "invalid instruction",
		StackOverflow:       "stack overflow",
		ArithmeticOverflow:  "arithmetic overflow",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind should render its number, got %q", got)
	}
}

func TestNewFormatsMessage(t *testing.T) {
	e := New(InvalidMemoryAccess, "address %d of %d", 100, 64)
	if !strings.Contains(e.Error(), "address 100 of 64") {
		t.Errorf("Error() = %q", e.Error())
	}
	if !strings.Contains(e.Error(), "invalid memory access") {
		t.Errorf("Error() should include the kind: %q", e.Error())
	}
}

func TestErrorWithoutMessage(t *testing.T) {
	e := &Exception{Kind: DivisionByZero}
	if e.Error() != "division by zero" {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestOccurred(t *testing.T) {
	var nilExc *Exception
	if nilExc.Occurred() {
		t.Error("nil exception must not have occurred")
	}
	if (&Exception{Kind: None}).Occurred() {
		t.Error("None must not have occurred")
	}
	if !(&Exception{Kind: DivisionByZero}).Occurred() {
		t.Error("real exception must have occurred")
	}
}

func TestWorksWithErrorsAs(t *testing.T) {
	var err error = New(StackOverflow, "sp below %d", 0)
	var exc *Exception
	if !errors.As(err, &exc) || exc.Kind != StackOverflow {
		t.Error("errors.As should extract the exception")
	}
}
