package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Bool: "kBool", Int: "kInt", UInt: "kUInt", Long: "kLong",
		ULong: "kULong", Float: "kFloat", Double: "kDouble",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{Bool, Int, UInt, Long, ULong, Float, Double} {
		got, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("ParseType(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
	if _, err := ParseType("kBogus"); err == nil {
		t.Error("ParseType(kBogus) should fail")
	}
}

func TestIntValueRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		return NewInt(v).Int() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUIntValueRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return NewUInt(v).UInt() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLongValueRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		return NewLong(v).Long() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatValueRoundTrip(t *testing.T) {
	f := func(v float32) bool {
		got := NewFloat(v).Float()
		if math.IsNaN(float64(v)) {
			return math.IsNaN(float64(got))
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDoubleValueRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got := NewDouble(v).Double()
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignExtensionIntToLong(t *testing.T) {
	if got := NewInt(-1).Long(); got != -1 {
		t.Errorf("NewInt(-1).Long() = %d, want -1", got)
	}
	if got := NewInt(-5).ULong(); got != 0xFFFFFFFFFFFFFFFB {
		t.Errorf("NewInt(-5).ULong() = %#x", got)
	}
	if got := NewUInt(0xFFFFFFFF).Long(); got != 0xFFFFFFFF {
		t.Errorf("NewUInt(max).Long() = %d, want 4294967295", got)
	}
}

func TestConvertIntToFloat(t *testing.T) {
	v := NewInt(42).Convert(Float)
	if v.Type() != Float || v.Float() != 42 {
		t.Errorf("Convert(42, Float) = %v (%v)", v.Float(), v.Type())
	}
	d := NewInt(-7).Convert(Double)
	if d.Double() != -7 {
		t.Errorf("Convert(-7, Double) = %v", d.Double())
	}
}

func TestConvertFloatToIntTruncates(t *testing.T) {
	if got := NewFloat(3.9).Convert(Int).Int(); got != 3 {
		t.Errorf("3.9 -> int = %d, want 3", got)
	}
	if got := NewFloat(-3.9).Convert(Int).Int(); got != -3 {
		t.Errorf("-3.9 -> int = %d, want -3", got)
	}
}

func TestReinterpretPreservesBits(t *testing.T) {
	f := func(v uint32) bool {
		fv := FromBits(uint64(v), Float)
		return uint32(fv.Reinterpret(Int).Bits()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBitsTruncatesToWidth(t *testing.T) {
	v := FromBits(0xAABBCCDD11223344, Int)
	if v.Bits() != 0x11223344 {
		t.Errorf("FromBits(Int).Bits() = %#x, want 0x11223344", v.Bits())
	}
	b := FromBits(0xFF, Bool)
	if b.Bits() != 1 {
		t.Errorf("FromBits(Bool).Bits() = %#x, want 1", b.Bits())
	}
	l := FromBits(0xAABBCCDD11223344, Long)
	if l.Bits() != 0xAABBCCDD11223344 {
		t.Errorf("FromBits(Long) truncated: %#x", l.Bits())
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-12), "-12"},
		{NewUInt(4000000000), "4000000000"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewFloat(1.5), "1.5"},
		{NewDouble(-2.25), "-2.25"},
		{NewLong(-9000000000), "-9000000000"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Type(), got, c.want)
		}
	}
}

func TestPromote(t *testing.T) {
	if promote(Int, Double) != Double {
		t.Error("promote(Int, Double) != Double")
	}
	if promote(Float, Int) != Float {
		t.Error("promote(Float, Int) != Float")
	}
	if promote(Int, UInt) != UInt {
		t.Error("promote(Int, UInt) != UInt")
	}
	if promote(Bool, Bool) != Bool {
		t.Error("promote(Bool, Bool) != Bool")
	}
}

func TestTypeWidth(t *testing.T) {
	if Int.Width() != 4 || Float.Width() != 4 || Double.Width() != 8 || Long.Width() != 8 || Bool.Width() != 1 {
		t.Error("unexpected type widths")
	}
}
