package expr

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"riscvsim/internal/fault"
)

// RV32M edge cases through the interpreter, using the exact postfix
// sources the specialized engine's specTable lists for these mnemonics.
// internal/core's rv32m_edge_test.go pins the same cases through full
// pipeline runs; together they guarantee the two semantic paths the
// co-sim fuzzer compares cannot drift on the historically buggy inputs.

func TestRV32MDivRemEdgeCases(t *testing.T) {
	const minI32 = math.MinInt32
	cases := []struct {
		src  string
		a, b int32
		want int32
	}{
		// div MinInt32 / -1 overflows: quotient wraps, remainder is 0.
		{`\rs1 \rs2 / \rd =`, minI32, -1, minI32},
		{`\rs1 \rs2 % \rd =`, minI32, -1, 0},
		// Truncation toward zero.
		{`\rs1 \rs2 / \rd =`, -7, 2, -3},
		{`\rs1 \rs2 % \rd =`, -7, 2, -1},
		// Unsigned variants reinterpret the bits.
		{`\rs1 \rs2 /u \rd =`, -2, 3, int32(uint32(0xfffffffe) / 3)},
		{`\rs1 \rs2 %u \rd =`, -2, 3, int32(uint32(0xfffffffe) % 3)},
		{`\rs1 \rs2 /u \rd =`, minI32, -1, 0},
		{`\rs1 \rs2 %u \rd =`, minI32, -1, minI32},
	}
	for _, c := range cases {
		env := MapEnv{"rs1": NewInt(c.a), "rs2": NewInt(c.b), "rd": NewInt(0)}
		eval(t, c.src, env)
		if got := env["rd"].Int(); got != c.want {
			t.Errorf("%s with rs1=%d rs2=%d: rd = %d, want %d", c.src, c.a, c.b, got, c.want)
		}
	}
}

func TestRV32MDivRemByZeroMessages(t *testing.T) {
	cases := []struct {
		src     string
		a       int32
		wantMsg string
	}{
		{`\rs1 \rs2 / \rd =`, 17, "division by zero: integer division 17 / 0"},
		{`\rs1 \rs2 / \rd =`, math.MinInt32, fmt.Sprintf("division by zero: integer division %d / 0", math.MinInt32)},
		{`\rs1 \rs2 % \rd =`, -5, "division by zero: integer remainder -5 % 0"},
		{`\rs1 \rs2 /u \rd =`, -1, "division by zero: unsigned division -1 / 0"},
		{`\rs1 \rs2 %u \rd =`, 123, "division by zero: unsigned remainder 123 % 0"},
	}
	for _, c := range cases {
		env := MapEnv{"rs1": NewInt(c.a), "rs2": NewInt(0), "rd": NewInt(0)}
		_, err := NewEvaluator().Eval(MustCompile(c.src), env)
		var exc *fault.Exception
		if !errors.As(err, &exc) || exc.Kind != fault.DivisionByZero {
			t.Errorf("%s with rs1=%d: err = %v, want DivisionByZero", c.src, c.a, err)
			continue
		}
		if exc.Error() != c.wantMsg {
			t.Errorf("%s with rs1=%d: message = %q, want %q", c.src, c.a, exc.Error(), c.wantMsg)
		}
	}
}

func TestRV32MMulHighSignCombinations(t *testing.T) {
	mulh := func(a, b int32) int32 { return int32((int64(a) * int64(b)) >> 32) }
	mulhsu := func(a, b int32) int32 { return int32((int64(a) * int64(uint64(uint32(b)))) >> 32) }
	mulhu := func(a, b int32) int32 { return int32((uint64(uint32(a)) * uint64(uint32(b))) >> 32) }

	ops := []struct {
		src string
		ref func(a, b int32) int32
	}{
		{`\rs1 \rs2 mulh \rd =`, mulh},
		{`\rs1 \rs2 mulhsu \rd =`, mulhsu},
		{`\rs1 \rs2 mulhu \rd =`, mulhu},
	}
	operands := []int32{0, 1, -1, 3, -3, math.MaxInt32, math.MinInt32, 0x10000}
	for _, op := range ops {
		p := MustCompile(op.src)
		for _, a := range operands {
			for _, b := range operands {
				env := MapEnv{"rs1": NewInt(a), "rs2": NewInt(b), "rd": NewInt(0)}
				if _, err := NewEvaluator().Eval(p, env); err != nil {
					t.Fatalf("%s with rs1=%d rs2=%d: %v", op.src, a, b, err)
				}
				if got, want := env["rd"].Int(), op.ref(a, b); got != want {
					t.Errorf("%s with rs1=%d rs2=%d: rd = %d, want %d", op.src, a, b, got, want)
				}
			}
		}
	}
}
