package expr

import (
	"math"
	"testing"
)

// Coverage for the long/unsigned operator paths and remaining conversions.

func evalV(t *testing.T, src string, env Env) Value {
	t.Helper()
	return eval(t, src, env).Value
}

func TestLongArithmetic(t *testing.T) {
	env := MapEnv{"a": NewLong(1 << 40), "b": NewLong(1 << 40)}
	if got := evalV(t, `\a \b +`, env).Long(); got != 1<<41 {
		t.Errorf("long add = %d", got)
	}
	if got := evalV(t, `\a \b -`, env).Long(); got != 0 {
		t.Errorf("long sub = %d", got)
	}
	env2 := MapEnv{"a": NewLong(-10), "b": NewLong(3)}
	if got := evalV(t, `\a \b /`, env2).Long(); got != -3 {
		t.Errorf("long div = %d", got)
	}
	if got := evalV(t, `\a \b %`, env2).Long(); got != -1 {
		t.Errorf("long rem = %d", got)
	}
}

func TestULongOps(t *testing.T) {
	env := MapEnv{"a": NewULong(math.MaxUint64), "b": NewULong(2)}
	if got := evalV(t, `\a \b /u`, env).ULong(); got != math.MaxUint64/2 {
		t.Errorf("ulong divu = %d", got)
	}
	if got := evalV(t, `\a \b %u`, env).ULong(); got != 1 {
		t.Errorf("ulong remu = %d", got)
	}
	if !evalV(t, `\a \b >u`, env).Bool() {
		t.Error("max > 2 unsigned should hold")
	}
	if evalV(t, `\a \b <=u`, env).Bool() {
		t.Error("max <= 2 unsigned should not hold")
	}
	if !evalV(t, `\b \a <=u`, env).Bool() {
		t.Error("2 <=u max should hold")
	}
	if evalV(t, `\b \a >=u`, env).Bool() {
		t.Error("2 >=u max should not hold")
	}
}

func TestLongShifts(t *testing.T) {
	env := MapEnv{"a": NewLong(1), "b": NewLong(40)}
	if got := evalV(t, `\a \b <<`, env).Long(); got != 1<<40 {
		t.Errorf("long shl = %d", got)
	}
	env2 := MapEnv{"a": NewLong(-(1 << 40)), "b": NewLong(8)}
	if got := evalV(t, `\a \b >>`, env2).Long(); got != -(1 << 32) {
		t.Errorf("long sra = %d", got)
	}
	env3 := MapEnv{"a": NewULong(1 << 40), "b": NewLong(8)}
	if got := evalV(t, `\a \b >>>`, env3).ULong(); got != 1<<32 {
		t.Errorf("long srl = %d", got)
	}
}

func TestUnaryVariants(t *testing.T) {
	if got := evalV(t, `\a neg`, MapEnv{"a": NewLong(-5)}).Long(); got != 5 {
		t.Errorf("neg long = %d", got)
	}
	if got := evalV(t, `\a neg`, MapEnv{"a": NewDouble(2.5)}).Double(); got != -2.5 {
		t.Errorf("neg double = %v", got)
	}
	if got := evalV(t, `\a abs`, MapEnv{"a": NewInt(-7)}).Int(); got != 7 {
		t.Errorf("abs int = %d", got)
	}
	if got := evalV(t, `\a abs`, MapEnv{"a": NewLong(-7)}).Long(); got != 7 {
		t.Errorf("abs long = %d", got)
	}
	if got := evalV(t, `\a abs`, MapEnv{"a": NewFloat(-1.5)}).Float(); got != 1.5 {
		t.Errorf("abs float = %v", got)
	}
	if got := evalV(t, `\a abs`, MapEnv{"a": NewDouble(-1.5)}).Double(); got != 1.5 {
		t.Errorf("abs double = %v", got)
	}
	if !evalV(t, `\a !`, MapEnv{"a": NewInt(0)}).Bool() {
		t.Error("!0 should be true")
	}
	if evalV(t, `\a !`, MapEnv{"a": NewInt(3)}).Bool() {
		t.Error("!3 should be false")
	}
}

func TestConversionOps(t *testing.T) {
	if got := evalV(t, `\a long`, MapEnv{"a": NewInt(-1)}).Long(); got != -1 {
		t.Errorf("long(-1) = %d", got)
	}
	if got := evalV(t, `\a ulong`, MapEnv{"a": NewInt(-1)}).ULong(); got != math.MaxUint64 {
		t.Errorf("ulong(-1) = %d", got)
	}
	if got := evalV(t, `\a double`, MapEnv{"a": NewInt(3)}).Double(); got != 3.0 {
		t.Errorf("double(3) = %v", got)
	}
	if got := evalV(t, `\a bitsToLong`, MapEnv{"a": NewULong(0x1234)}).Long(); got != 0x1234 {
		t.Errorf("bitsToLong = %#x", got)
	}
	if got := evalV(t, `\a bitsToDouble`, MapEnv{"a": NewULong(math.Float64bits(2.5))}).Double(); got != 2.5 {
		t.Errorf("bitsToDouble = %v", got)
	}
	// int of an int passes through.
	if got := evalV(t, `\a int`, MapEnv{"a": NewInt(-9)}).Int(); got != -9 {
		t.Errorf("int(int) = %d", got)
	}
	if got := evalV(t, `\a uint`, MapEnv{"a": NewInt(-1)}).UInt(); got != math.MaxUint32 {
		t.Errorf("uint(int) = %d", got)
	}
}

func TestFloatMinMaxAndMod(t *testing.T) {
	env := MapEnv{"a": NewDouble(3), "b": NewDouble(-4)}
	if got := evalV(t, `\a \b min`, env).Double(); got != -4 {
		t.Errorf("dmin = %v", got)
	}
	if got := evalV(t, `\a \b max`, env).Double(); got != 3 {
		t.Errorf("dmax = %v", got)
	}
	if got := evalV(t, `\a \b %`, MapEnv{"a": NewDouble(7.5), "b": NewDouble(2)}).Double(); got != 1.5 {
		t.Errorf("fmod = %v", got)
	}
	// Long min/max.
	lenv := MapEnv{"a": NewLong(9), "b": NewLong(-9)}
	if got := evalV(t, `\a \b min`, lenv).Long(); got != -9 {
		t.Errorf("lmin = %d", got)
	}
	if got := evalV(t, `\a \b max`, lenv).Long(); got != 9 {
		t.Errorf("lmax = %d", got)
	}
}

func TestDoubleSignInjection(t *testing.T) {
	env := MapEnv{"a": NewDouble(1.5), "b": NewDouble(-2)}
	if got := evalV(t, `\a \b sgnj`, env).Double(); got != -1.5 {
		t.Errorf("dsgnj = %v", got)
	}
	if got := evalV(t, `\a \b sgnjn`, env).Double(); got != 1.5 {
		t.Errorf("dsgnjn = %v", got)
	}
	env2 := MapEnv{"a": NewDouble(-1.5), "b": NewDouble(-2)}
	if got := evalV(t, `\a \b sgnjx`, env2).Double(); got != 1.5 {
		t.Errorf("dsgnjx = %v", got)
	}
}

func TestDoubleFclassAndSubnormal(t *testing.T) {
	if got := evalV(t, `\a fclass`, MapEnv{"a": NewDouble(math.Inf(-1))}).Int(); got != 1 {
		t.Errorf("fclass(-inf double) = %#x", got)
	}
	// Subnormal float32.
	sub := FromBits(1, Float)
	if got := evalV(t, `\a fclass`, MapEnv{"a": sub}).Int(); got != 1<<5 {
		t.Errorf("fclass(+subnormal) = %#x", got)
	}
	subNeg := FromBits(uint64(0x80000001), Float)
	if got := evalV(t, `\a fclass`, MapEnv{"a": subNeg}).Int(); got != 1<<2 {
		t.Errorf("fclass(-subnormal) = %#x", got)
	}
	dsub := FromBits(1, Double)
	if got := evalV(t, `\a fclass`, MapEnv{"a": dsub}).Int(); got != 1<<5 {
		t.Errorf("fclass(+subnormal double) = %#x", got)
	}
}

func TestNeNaN(t *testing.T) {
	env := MapEnv{"a": NewFloat(float32(math.NaN())), "b": NewFloat(1)}
	// != with NaN: incomparable encodes as equal-test failure -> true? In
	// RISC-V there is no fne; the simulator uses != only for integer bne.
	// For floats the interpreter returns false for every ordering test.
	if evalV(t, `\a \b >`, env).Bool() || evalV(t, `\a \b >=`, env).Bool() {
		t.Error("NaN ordering should be false")
	}
}

func TestDoubleDivByZeroIsInf(t *testing.T) {
	env := MapEnv{"a": NewDouble(-1), "b": NewDouble(0)}
	if got := evalV(t, `\a \b /`, env).Double(); !math.IsInf(got, -1) {
		t.Errorf("-1/0 = %v, want -Inf", got)
	}
}

func TestBoolConversionsAndWidth(t *testing.T) {
	b := NewBool(true)
	if b.Int() != 1 || b.UInt() != 1 || b.Long() != 1 || b.ULong() != 1 {
		t.Error("bool numeric views should be 1")
	}
	if b.Float() != 1 || b.Double() != 1 {
		t.Error("bool float views should be 1")
	}
	if NewBool(false).Bool() {
		t.Error("false is false")
	}
	if b.Convert(Bool).Bool() != true {
		t.Error("bool->bool")
	}
	if NewInt(0).Convert(Bool).Bool() {
		t.Error("0 -> false")
	}
	if !NewInt(-3).Convert(Bool).Bool() {
		t.Error("-3 -> true")
	}
}

func TestFloatToIntegerAccessors(t *testing.T) {
	f := NewFloat(100.9)
	if f.Int() != 100 || f.UInt() != 100 || f.Long() != 100 || f.ULong() != 100 {
		t.Error("float accessors should truncate")
	}
	d := NewDouble(-7.5)
	if d.Int() != -7 || d.Long() != -7 {
		t.Error("double accessors should truncate")
	}
	l := NewLong(1 << 40)
	if l.Float() != float32(1<<40) || l.Double() != float64(1<<40) {
		t.Error("long to float conversions wrong")
	}
}
