// Package expr implements the simulator's instruction interpreter: a small
// stack-based evaluator for postfix expressions such as
//
//	\rs1 \rs2 + \rd =
//
// which is how the paper (Listing 1) defines instruction semantics as data.
// An expression may produce two kinds of output: the value left on the stack
// after evaluation (used for jump targets and branch conditions) and side
// effects performed by the `=` operator, which writes a value into a
// register through the Env interface.
package expr

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies the data type carried by a Value. The names mirror the
// kInt/kFloat tags used by the paper's JSON instruction definitions.
type Type uint8

// The supported value types. Registers are 64-bit containers (paper §III-B),
// so every type is stored in a uint64 bit pattern.
const (
	Bool   Type = iota // 0 or 1
	Int                // 32-bit signed
	UInt               // 32-bit unsigned
	Long               // 64-bit signed
	ULong              // 64-bit unsigned
	Float              // IEEE-754 binary32
	Double             // IEEE-754 binary64
)

var typeNames = [...]string{"kBool", "kInt", "kUInt", "kLong", "kULong", "kFloat", "kDouble"}

// String returns the paper-style kXxx name of the type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("kType(%d)", uint8(t))
}

// ParseType converts a paper-style type tag ("kInt", "kFloat", ...) back to
// a Type. It is the inverse of String and is used by the JSON ISA loader.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), nil
		}
	}
	return Int, fmt.Errorf("expr: unknown type tag %q", s)
}

// IsFloat reports whether the type is a floating-point type.
func (t Type) IsFloat() bool { return t == Float || t == Double }

// IsSigned reports whether the type is a signed integer type.
func (t Type) IsSigned() bool { return t == Int || t == Long }

// Width returns the operand width in bytes.
func (t Type) Width() int {
	switch t {
	case Bool:
		return 1
	case Int, UInt, Float:
		return 4
	default:
		return 8
	}
}

// Value is a typed 64-bit register/operand value. Registers are represented
// as 64-bit arrays even though the simulator currently supports only 32-bit
// instructions (paper §III-B); the Type tag selects the interpretation.
type Value struct {
	bits uint64
	typ  Type
}

// NewInt returns a kInt value.
func NewInt(v int32) Value { return Value{bits: uint64(uint32(v)), typ: Int} }

// NewUInt returns a kUInt value.
func NewUInt(v uint32) Value { return Value{bits: uint64(v), typ: UInt} }

// NewLong returns a kLong value.
func NewLong(v int64) Value { return Value{bits: uint64(v), typ: Long} }

// NewULong returns a kULong value.
func NewULong(v uint64) Value { return Value{bits: v, typ: ULong} }

// NewFloat returns a kFloat value.
func NewFloat(v float32) Value { return Value{bits: uint64(math.Float32bits(v)), typ: Float} }

// NewDouble returns a kDouble value.
func NewDouble(v float64) Value { return Value{bits: math.Float64bits(v), typ: Double} }

// NewBool returns a kBool value.
func NewBool(v bool) Value {
	if v {
		return Value{bits: 1, typ: Bool}
	}
	return Value{bits: 0, typ: Bool}
}

// FromBits builds a value of type t directly from a raw bit pattern,
// truncating to the type's width. Used for fmv.x.w-style bit moves and for
// register file storage.
func FromBits(bits uint64, t Type) Value {
	switch t.Width() {
	case 1:
		bits &= 1
	case 4:
		bits &= 0xFFFFFFFF
	}
	return Value{bits: bits, typ: t}
}

// Bits returns the raw 64-bit pattern.
func (v Value) Bits() uint64 { return v.bits }

// Type returns the value's type tag.
func (v Value) Type() Type { return v.typ }

// Int returns the value interpreted as a 32-bit signed integer, converting
// from the value's own type.
func (v Value) Int() int32 {
	switch v.typ {
	case Float:
		return int32(v.Float())
	case Double:
		return int32(v.Double())
	case Long, ULong:
		return int32(v.bits)
	default:
		return int32(uint32(v.bits))
	}
}

// UInt returns the value interpreted as a 32-bit unsigned integer.
func (v Value) UInt() uint32 {
	switch v.typ {
	case Float:
		return uint32(v.Float())
	case Double:
		return uint32(v.Double())
	default:
		return uint32(v.bits)
	}
}

// Long returns the value converted to a 64-bit signed integer.
func (v Value) Long() int64 {
	switch v.typ {
	case Float:
		return int64(v.Float())
	case Double:
		return int64(v.Double())
	case Int:
		return int64(int32(uint32(v.bits))) // sign-extend
	case UInt, Bool:
		return int64(v.bits)
	default:
		return int64(v.bits)
	}
}

// ULong returns the value converted to a 64-bit unsigned integer.
func (v Value) ULong() uint64 {
	switch v.typ {
	case Float:
		return uint64(v.Float())
	case Double:
		return uint64(v.Double())
	case Int:
		return uint64(int64(int32(uint32(v.bits))))
	default:
		return v.bits
	}
}

// Float returns the value converted to float32.
func (v Value) Float() float32 {
	switch v.typ {
	case Float:
		return math.Float32frombits(uint32(v.bits))
	case Double:
		return float32(math.Float64frombits(v.bits))
	case Int:
		return float32(int32(uint32(v.bits)))
	case Long:
		return float32(int64(v.bits))
	default:
		return float32(v.bits)
	}
}

// Double returns the value converted to float64.
func (v Value) Double() float64 {
	switch v.typ {
	case Float:
		return float64(math.Float32frombits(uint32(v.bits)))
	case Double:
		return math.Float64frombits(v.bits)
	case Int:
		return float64(int32(uint32(v.bits)))
	case Long:
		return float64(int64(v.bits))
	default:
		return float64(v.bits)
	}
}

// Bool returns the value interpreted as a truth value (non-zero = true).
func (v Value) Bool() bool { return v.bits != 0 }

// Convert returns v converted (value-preserving, C-style) to type t.
func (v Value) Convert(t Type) Value {
	if v.typ == t {
		return v
	}
	switch t {
	case Bool:
		return NewBool(v.Bool())
	case Int:
		return NewInt(v.Int())
	case UInt:
		return NewUInt(v.UInt())
	case Long:
		return NewLong(v.Long())
	case ULong:
		return NewULong(v.ULong())
	case Float:
		return NewFloat(v.Float())
	default:
		return NewDouble(v.Double())
	}
}

// Reinterpret returns the same bit pattern tagged with a different type
// (fmv.x.w / fmv.w.x semantics). No numeric conversion is performed.
func (v Value) Reinterpret(t Type) Value { return FromBits(v.bits, t) }

// String renders the value according to its type, the same way the GUI's
// register panes display the "intended value" instead of raw bits.
func (v Value) String() string {
	switch v.typ {
	case Bool:
		if v.bits != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(int64(int32(uint32(v.bits))), 10)
	case UInt:
		return strconv.FormatUint(uint64(uint32(v.bits)), 10)
	case Long:
		return strconv.FormatInt(int64(v.bits), 10)
	case ULong:
		return strconv.FormatUint(v.bits, 10)
	case Float:
		return strconv.FormatFloat(float64(v.Float()), 'g', -1, 32)
	default:
		return strconv.FormatFloat(v.Double(), 'g', -1, 64)
	}
}

// promote returns the common type of two operands following C-like rules:
// the higher-ranked type wins (Bool < Int < UInt < Long < ULong < Float <
// Double).
func promote(a, b Type) Type {
	if a >= b {
		return a
	}
	return b
}
