package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"riscvsim/internal/fault"
)

// Env supplies operand values to an expression and receives assignment side
// effects. In the simulator the Env is backed by the instruction's renamed
// operands and the register files.
type Env interface {
	// Get returns the value of the named operand (e.g. "rs1", "imm", "pc").
	Get(name string) (Value, bool)
	// Set assigns a value to the named operand. Implementations convert
	// the value to the operand's declared type and may silently discard
	// writes (e.g. to the hardwired x0).
	Set(name string, v Value) error
}

// MapEnv is a simple Env backed by a map, convenient for tests and for the
// assembler's label-arithmetic evaluation.
type MapEnv map[string]Value

// Get implements Env.
func (m MapEnv) Get(name string) (Value, bool) { v, ok := m[name]; return v, ok }

// Set implements Env.
func (m MapEnv) Set(name string, v Value) error {
	if old, ok := m[name]; ok {
		m[name] = v.Convert(old.Type())
	} else {
		m[name] = v
	}
	return nil
}

type tokenKind uint8

const (
	tokRef tokenKind = iota // \name — operand reference
	tokLit                  // numeric literal
	tokOp                   // operator
)

type token struct {
	kind  tokenKind
	name  string // operand name or operator symbol
	val   Value  // literal value
	op    opcode
	arity int8 // operator arity, resolved at compile time
}

// Program is a compiled expression, ready for repeated evaluation.
type Program struct {
	src    string
	tokens []token
	// maxStack is the deepest stack the program can reach; used to size
	// evaluator stacks without reallocation.
	maxStack int
	// writes lists the operand names assigned by `=`, in order. The core
	// uses it to know which destination registers an instruction touches.
	writes []string
}

// Source returns the original postfix source text.
func (p *Program) Source() string { return p.src }

// Writes returns the operand names the program assigns to via `=`.
func (p *Program) Writes() []string { return p.writes }

type opcode uint8

const (
	opAdd opcode = iota
	opSub
	opMul
	opDiv
	opDivU
	opRem
	opRemU
	opMulH
	opMulHU
	opMulHSU
	opAnd
	opOr
	opXor
	opShl
	opShrA // arithmetic >>
	opShrL // logical >>>
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opLtU
	opLeU
	opGtU
	opGeU
	opNot
	opNeg
	opAbs
	opSqrt
	opMin
	opMax
	opSgnj
	opSgnjn
	opSgnjx
	opFclass
	opCvtInt
	opCvtUInt
	opCvtLong
	opCvtULong
	opCvtFloat
	opCvtDouble
	opBitsToFloat
	opBitsToDouble
	opBitsToInt
	opBitsToLong
	opAssign
	opPick // duplicate top of stack
)

type opInfo struct {
	code  opcode
	arity int
}

var operators = map[string]opInfo{
	"+":            {opAdd, 2},
	"-":            {opSub, 2},
	"*":            {opMul, 2},
	"/":            {opDiv, 2},
	"/u":           {opDivU, 2},
	"%":            {opRem, 2},
	"%u":           {opRemU, 2},
	"mulh":         {opMulH, 2},
	"mulhu":        {opMulHU, 2},
	"mulhsu":       {opMulHSU, 2},
	"&":            {opAnd, 2},
	"|":            {opOr, 2},
	"^":            {opXor, 2},
	"<<":           {opShl, 2},
	">>":           {opShrA, 2},
	">>>":          {opShrL, 2},
	"==":           {opEq, 2},
	"!=":           {opNe, 2},
	"<":            {opLt, 2},
	"<=":           {opLe, 2},
	">":            {opGt, 2},
	">=":           {opGe, 2},
	"<u":           {opLtU, 2},
	"<=u":          {opLeU, 2},
	">u":           {opGtU, 2},
	">=u":          {opGeU, 2},
	"!":            {opNot, 1},
	"neg":          {opNeg, 1},
	"abs":          {opAbs, 1},
	"sqrt":         {opSqrt, 1},
	"min":          {opMin, 2},
	"max":          {opMax, 2},
	"sgnj":         {opSgnj, 2},
	"sgnjn":        {opSgnjn, 2},
	"sgnjx":        {opSgnjx, 2},
	"fclass":       {opFclass, 1},
	"int":          {opCvtInt, 1},
	"uint":         {opCvtUInt, 1},
	"long":         {opCvtLong, 1},
	"ulong":        {opCvtULong, 1},
	"float":        {opCvtFloat, 1},
	"double":       {opCvtDouble, 1},
	"bitsToFloat":  {opBitsToFloat, 1},
	"bitsToDouble": {opBitsToDouble, 1},
	"bitsToInt":    {opBitsToInt, 1},
	"bitsToLong":   {opBitsToLong, 1},
	"=":            {opAssign, 2},
	"pick":         {opPick, 1},
}

// Compile parses a postfix expression into a Program. Tokens are separated
// by whitespace; `\name` references an operand, bare numbers are literals
// (decimal, hex 0x..., or floating point with a '.' or exponent), everything
// else must be a known operator.
func Compile(src string) (*Program, error) {
	fields := strings.Fields(src)
	p := &Program{src: src, tokens: make([]token, 0, len(fields))}
	depth, maxDepth := 0, 0
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "\\"):
			name := f[1:]
			if name == "" {
				return nil, fmt.Errorf("expr: empty operand reference in %q", src)
			}
			p.tokens = append(p.tokens, token{kind: tokRef, name: name})
			depth++
		case isNumericStart(f):
			v, err := parseLiteral(f)
			if err != nil {
				return nil, fmt.Errorf("expr: bad literal %q in %q: %w", f, src, err)
			}
			p.tokens = append(p.tokens, token{kind: tokLit, val: v})
			depth++
		default:
			info, ok := operators[f]
			if !ok {
				return nil, fmt.Errorf("expr: unknown operator %q in %q", f, src)
			}
			if depth < info.arity {
				return nil, fmt.Errorf("expr: stack underflow at %q in %q", f, src)
			}
			if info.code == opAssign {
				// `=` pops the value and the target reference.
				last := p.tokens[len(p.tokens)-1]
				if last.kind != tokRef {
					return nil, fmt.Errorf("expr: `=` target must be an operand reference in %q", src)
				}
				p.writes = append(p.writes, last.name)
				depth -= 2
			} else if info.code == opPick {
				depth++ // duplicates the top
			} else {
				depth -= info.arity - 1
			}
			p.tokens = append(p.tokens, token{kind: tokOp, name: f, op: info.code, arity: int8(info.arity)})
		}
		if depth > maxDepth {
			maxDepth = depth
		}
		if depth < 0 {
			return nil, fmt.Errorf("expr: stack underflow in %q", src)
		}
	}
	p.maxStack = maxDepth
	return p, nil
}

// MustCompile is like Compile but panics on error; it is used for the
// built-in ISA table, which is validated by tests.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

func isNumericStart(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if c >= '0' && c <= '9' {
		return true
	}
	if (c == '-' || c == '+') && len(s) > 1 {
		d := s[1]
		return d >= '0' && d <= '9'
	}
	return c == '.' && len(s) > 1 && s[1] >= '0' && s[1] <= '9'
}

func parseLiteral(s string) (Value, error) {
	if strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "-0x") {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, err
		}
		return NewDouble(f), nil
	}
	i, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Large unsigned constants.
		u, uerr := strconv.ParseUint(s, 0, 64)
		if uerr != nil {
			return Value{}, err
		}
		return NewULong(u), nil
	}
	if i >= math.MinInt32 && i <= math.MaxInt32 {
		return NewInt(int32(i)), nil
	}
	return NewLong(i), nil
}

// stack element: either a resolved value or an unresolved operand reference
// (needed so `=` can see its target name).
type operand struct {
	val   Value
	name  string
	isRef bool
}

// Evaluator evaluates compiled programs. It owns a reusable stack, so a
// single Evaluator per functional unit avoids per-instruction allocation.
// An Evaluator is not safe for concurrent use.
type Evaluator struct {
	stack []operand
}

// NewEvaluator returns an evaluator with a pre-sized stack.
func NewEvaluator() *Evaluator {
	return &Evaluator{stack: make([]operand, 0, 16)}
}

// Result is the outcome of evaluating an expression.
type Result struct {
	// Value is the value left on the stack, if any (jump targets, branch
	// conditions).
	Value Value
	// HasValue reports whether Value is meaningful.
	HasValue bool
}

// Eval runs the program against env. The error, when non-nil, is a
// *fault.Exception for simulation faults (division by zero, ...) or an
// ordinary error for malformed programs/environments.
func (e *Evaluator) Eval(p *Program, env Env) (Result, error) {
	if cap(e.stack) < p.maxStack {
		e.stack = make([]operand, 0, p.maxStack)
	}
	st := e.stack[:0]

	resolve := func(o *operand) (Value, error) {
		if !o.isRef {
			return o.val, nil
		}
		v, ok := env.Get(o.name)
		if !ok {
			return Value{}, fmt.Errorf("expr: undefined operand %q in %q", o.name, p.src)
		}
		return v, nil
	}

	for i := range p.tokens {
		t := &p.tokens[i]
		switch t.kind {
		case tokRef:
			st = append(st, operand{name: t.name, isRef: true})
		case tokLit:
			st = append(st, operand{val: t.val})
		case tokOp:
			switch t.op {
			case opAssign:
				if len(st) < 2 {
					return Result{}, fmt.Errorf("expr: stack underflow at `=` in %q", p.src)
				}
				target := st[len(st)-1]
				if !target.isRef {
					return Result{}, fmt.Errorf("expr: `=` target is not a reference in %q", p.src)
				}
				v, err := resolve(&st[len(st)-2])
				if err != nil {
					return Result{}, err
				}
				st = st[:len(st)-2]
				if err := env.Set(target.name, v); err != nil {
					return Result{}, err
				}
			case opPick:
				if len(st) < 1 {
					return Result{}, fmt.Errorf("expr: stack underflow at `pick` in %q", p.src)
				}
				v, err := resolve(&st[len(st)-1])
				if err != nil {
					return Result{}, err
				}
				st[len(st)-1] = operand{val: v}
				st = append(st, operand{val: v})
			default:
				// Arity was resolved at compile time; no map lookup in
				// the evaluation loop.
				if t.arity == 1 {
					v, err := resolve(&st[len(st)-1])
					if err != nil {
						return Result{}, err
					}
					r, err := applyUnary(t.op, v)
					if err != nil {
						return Result{}, err
					}
					st[len(st)-1] = operand{val: r}
				} else {
					if len(st) < 2 {
						return Result{}, fmt.Errorf("expr: stack underflow at %q in %q", t.name, p.src)
					}
					b, err := resolve(&st[len(st)-1])
					if err != nil {
						return Result{}, err
					}
					a, err := resolve(&st[len(st)-2])
					if err != nil {
						return Result{}, err
					}
					r, err := applyBinary(t.op, a, b)
					if err != nil {
						return Result{}, err
					}
					st = st[:len(st)-1]
					st[len(st)-1] = operand{val: r}
				}
			}
		}
	}
	e.stack = st[:0]
	if len(st) == 0 {
		return Result{}, nil
	}
	v, err := resolveTop(env, p, st)
	if err != nil {
		return Result{}, err
	}
	return Result{Value: v, HasValue: true}, nil
}

func resolveTop(env Env, p *Program, st []operand) (Value, error) {
	top := st[len(st)-1]
	if !top.isRef {
		return top.val, nil
	}
	v, ok := env.Get(top.name)
	if !ok {
		return Value{}, fmt.Errorf("expr: undefined operand %q in %q", top.name, p.src)
	}
	return v, nil
}

func applyUnary(op opcode, v Value) (Value, error) {
	switch op {
	case opNot:
		return NewBool(!v.Bool()), nil
	case opNeg:
		switch {
		case v.Type() == Double:
			return NewDouble(-v.Double()), nil
		case v.Type() == Float:
			return NewFloat(-v.Float()), nil
		case v.Type() == Long || v.Type() == ULong:
			return NewLong(-v.Long()), nil
		default:
			return NewInt(-v.Int()), nil
		}
	case opAbs:
		switch {
		case v.Type() == Double:
			return NewDouble(math.Abs(v.Double())), nil
		case v.Type() == Float:
			return NewFloat(float32(math.Abs(float64(v.Float())))), nil
		case v.Type() == Long || v.Type() == ULong:
			l := v.Long()
			if l < 0 {
				l = -l
			}
			return NewLong(l), nil
		default:
			i := v.Int()
			if i < 0 {
				i = -i
			}
			return NewInt(i), nil
		}
	case opSqrt:
		if v.Type() == Float {
			return NewFloat(float32(math.Sqrt(float64(v.Float())))), nil
		}
		return NewDouble(math.Sqrt(v.Double())), nil
	case opFclass:
		return NewInt(fclass(v)), nil
	case opCvtInt:
		return cvtFloatToInt(v)
	case opCvtUInt:
		return cvtFloatToUInt(v)
	case opCvtLong:
		return NewLong(v.Long()), nil
	case opCvtULong:
		return NewULong(v.ULong()), nil
	case opCvtFloat:
		return NewFloat(v.Float()), nil
	case opCvtDouble:
		return NewDouble(v.Double()), nil
	case opBitsToFloat:
		return FromBits(v.Bits(), Float), nil
	case opBitsToDouble:
		return FromBits(v.Bits(), Double), nil
	case opBitsToInt:
		return FromBits(v.Bits(), Int), nil
	case opBitsToLong:
		return FromBits(v.Bits(), Long), nil
	}
	return Value{}, fmt.Errorf("expr: bad unary opcode %d", op)
}

// cvtFloatToInt implements fcvt.w.s / fcvt.w.d semantics: truncation with
// RISC-V saturation on overflow and NaN mapping to the maximum integer.
func cvtFloatToInt(v Value) (Value, error) {
	if !v.Type().IsFloat() {
		return NewInt(v.Int()), nil
	}
	f := v.Double()
	switch {
	case math.IsNaN(f):
		return NewInt(math.MaxInt32), nil
	case f >= math.MaxInt32:
		return NewInt(math.MaxInt32), nil
	case f <= math.MinInt32:
		return NewInt(math.MinInt32), nil
	}
	return NewInt(int32(f)), nil
}

func cvtFloatToUInt(v Value) (Value, error) {
	if !v.Type().IsFloat() {
		return NewUInt(v.UInt()), nil
	}
	f := v.Double()
	switch {
	case math.IsNaN(f):
		return NewUInt(math.MaxUint32), nil
	case f >= math.MaxUint32:
		return NewUInt(math.MaxUint32), nil
	case f <= 0:
		return NewUInt(0), nil
	}
	return NewUInt(uint32(f)), nil
}

// fclass implements the RISC-V FCLASS bit encoding.
func fclass(v Value) int32 {
	f := v.Double()
	neg := math.Signbit(f)
	switch {
	case math.IsInf(f, -1):
		return 1 << 0
	case math.IsInf(f, 1):
		return 1 << 7
	case math.IsNaN(f):
		return 1 << 9 // quiet NaN (signaling NaNs are not distinguished)
	case f == 0 && neg:
		return 1 << 3
	case f == 0:
		return 1 << 4
	case isSubnormal(v):
		if neg {
			return 1 << 2
		}
		return 1 << 5
	case neg:
		return 1 << 1
	default:
		return 1 << 6
	}
}

func isSubnormal(v Value) bool {
	if v.Type() == Float {
		b := uint32(v.Bits())
		return b&0x7F800000 == 0 && b&0x007FFFFF != 0
	}
	if v.Type() == Double {
		b := v.Bits()
		return b&0x7FF0000000000000 == 0 && b&0x000FFFFFFFFFFFFF != 0
	}
	return false
}

func applyBinary(op opcode, a, b Value) (Value, error) {
	ct := promote(a.Type(), b.Type())
	switch op {
	case opAdd:
		return arith(ct, a, b, func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
	case opSub:
		return arith(ct, a, b, func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
	case opMul:
		return arith(ct, a, b, func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
	case opDiv:
		if ct.IsFloat() {
			return arith(ct, a, b, nil, func(x, y float64) float64 { return x / y })
		}
		if b.Long() == 0 {
			return Value{}, fault.New(fault.DivisionByZero, "integer division %s / 0", a)
		}
		if ct == Int && a.Int() == math.MinInt32 && b.Int() == -1 {
			return NewInt(math.MinInt32), nil // RISC-V overflow semantics
		}
		return intArith(ct, a.Long()/b.Long()), nil
	case opDivU:
		if b.ULong() == 0 {
			return Value{}, fault.New(fault.DivisionByZero, "unsigned division %s / 0", a)
		}
		if ct == Long || ct == ULong {
			return NewULong(a.ULong() / b.ULong()), nil
		}
		return NewUInt(a.UInt() / b.UInt()), nil
	case opRem:
		if ct.IsFloat() {
			return arith(ct, a, b, nil, math.Mod)
		}
		if b.Long() == 0 {
			return Value{}, fault.New(fault.DivisionByZero, "integer remainder %s %% 0", a)
		}
		if ct == Int && a.Int() == math.MinInt32 && b.Int() == -1 {
			return NewInt(0), nil
		}
		return intArith(ct, a.Long()%b.Long()), nil
	case opRemU:
		if b.ULong() == 0 {
			return Value{}, fault.New(fault.DivisionByZero, "unsigned remainder %s %% 0", a)
		}
		if ct == Long || ct == ULong {
			return NewULong(a.ULong() % b.ULong()), nil
		}
		return NewUInt(a.UInt() % b.UInt()), nil
	case opMulH:
		return NewInt(int32((int64(a.Int()) * int64(b.Int())) >> 32)), nil
	case opMulHU:
		return NewInt(int32((uint64(a.UInt()) * uint64(b.UInt())) >> 32)), nil
	case opMulHSU:
		return NewInt(int32((int64(a.Int()) * int64(uint64(b.UInt()))) >> 32)), nil
	case opAnd:
		return bitop(ct, a, b, func(x, y uint64) uint64 { return x & y }), nil
	case opOr:
		return bitop(ct, a, b, func(x, y uint64) uint64 { return x | y }), nil
	case opXor:
		return bitop(ct, a, b, func(x, y uint64) uint64 { return x ^ y }), nil
	case opShl:
		if ct == Long || ct == ULong {
			return intArith(ct, a.Long()<<(b.ULong()&63)), nil
		}
		return intArith(ct, int64(int32(a.UInt()<<(b.UInt()&31)))), nil
	case opShrA:
		if ct == Long || ct == ULong {
			return NewLong(a.Long() >> (b.ULong() & 63)), nil
		}
		return NewInt(a.Int() >> (b.UInt() & 31)), nil
	case opShrL:
		if ct == Long || ct == ULong {
			return NewULong(a.ULong() >> (b.ULong() & 63)), nil
		}
		return NewUInt(a.UInt() >> (b.UInt() & 31)), nil
	case opEq:
		return compare(ct, a, b, func(c int) bool { return c == 0 }), nil
	case opNe:
		return compare(ct, a, b, func(c int) bool { return c != 0 }), nil
	case opLt:
		return compare(ct, a, b, func(c int) bool { return c < 0 }), nil
	case opLe:
		return compare(ct, a, b, func(c int) bool { return c <= 0 }), nil
	case opGt:
		return compare(ct, a, b, func(c int) bool { return c > 0 }), nil
	case opGe:
		return compare(ct, a, b, func(c int) bool { return c >= 0 }), nil
	case opLtU:
		return NewBool(a.ULong() < b.ULong()), nil
	case opLeU:
		return NewBool(a.ULong() <= b.ULong()), nil
	case opGtU:
		return NewBool(a.ULong() > b.ULong()), nil
	case opGeU:
		return NewBool(a.ULong() >= b.ULong()), nil
	case opMin:
		if ct.IsFloat() {
			return arith(ct, a, b, nil, math.Min)
		}
		if a.Long() < b.Long() {
			return a.Convert(ct), nil
		}
		return b.Convert(ct), nil
	case opMax:
		if ct.IsFloat() {
			return arith(ct, a, b, nil, math.Max)
		}
		if a.Long() > b.Long() {
			return a.Convert(ct), nil
		}
		return b.Convert(ct), nil
	case opSgnj, opSgnjn, opSgnjx:
		return signInject(op, a, b), nil
	}
	return Value{}, fmt.Errorf("expr: bad binary opcode %d", op)
}

func arith(ct Type, a, b Value, iop func(int64, int64) int64, fop func(float64, float64) float64) (Value, error) {
	switch ct {
	case Double:
		return NewDouble(fop(a.Double(), b.Double())), nil
	case Float:
		return NewFloat(float32(fop(float64(a.Float()), float64(b.Float())))), nil
	default:
		return intArith(ct, iop(a.Long(), b.Long())), nil
	}
}

// intArith truncates a 64-bit result to the common integer type.
func intArith(ct Type, r int64) Value {
	switch ct {
	case Long:
		return NewLong(r)
	case ULong:
		return NewULong(uint64(r))
	case UInt:
		return NewUInt(uint32(r))
	default:
		return NewInt(int32(r))
	}
}

func bitop(ct Type, a, b Value, f func(uint64, uint64) uint64) Value {
	r := f(a.ULong(), b.ULong())
	return intArith(ct, int64(r))
}

func compare(ct Type, a, b Value, test func(int) bool) Value {
	var c int
	switch {
	case ct.IsFloat():
		x, y := a.Double(), b.Double()
		switch {
		case math.IsNaN(x) || math.IsNaN(y):
			// RISC-V FP comparisons with NaN are false; encode as
			// "incomparable", which fails every ordering test.
			return NewBool(false)
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	case ct == UInt || ct == ULong:
		x, y := a.ULong(), b.ULong()
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	default:
		x, y := a.Long(), b.Long()
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	}
	return NewBool(test(c))
}

func signInject(op opcode, a, b Value) Value {
	if a.Type() == Double || b.Type() == Double {
		ab, bb := a.Bits(), b.Bits()
		const signBit = uint64(1) << 63
		var sign uint64
		switch op {
		case opSgnj:
			sign = bb & signBit
		case opSgnjn:
			sign = ^bb & signBit
		default:
			sign = (ab ^ bb) & signBit
		}
		return FromBits(ab&^signBit|sign, Double)
	}
	ab, bb := uint32(a.Bits()), uint32(b.Bits())
	const signBit = uint32(1) << 31
	var sign uint32
	switch op {
	case opSgnj:
		sign = bb & signBit
	case opSgnjn:
		sign = ^bb & signBit
	default:
		sign = (ab ^ bb) & signBit
	}
	return FromBits(uint64(ab&^signBit|sign), Float)
}
