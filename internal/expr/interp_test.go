package expr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"riscvsim/internal/fault"
)

func eval(t *testing.T, src string, env Env) Result {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	r, err := NewEvaluator().Eval(p, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return r
}

func TestAddExpression(t *testing.T) {
	env := MapEnv{"rs1": NewInt(2), "rs2": NewInt(40), "rd": NewInt(0)}
	eval(t, `\rs1 \rs2 + \rd =`, env)
	if got := env["rd"].Int(); got != 42 {
		t.Errorf("rd = %d, want 42", got)
	}
}

func TestPaperListing1AddSemantics(t *testing.T) {
	// The exact expression from the paper's Listing 1.
	env := MapEnv{"rs1": NewInt(-5), "rs2": NewInt(3), "rd": NewInt(0)}
	eval(t, `\rs1 \rs2 + \rd =`, env)
	if got := env["rd"].Int(); got != -2 {
		t.Errorf("rd = %d, want -2", got)
	}
}

func TestExpressionLeavesValueOnStack(t *testing.T) {
	env := MapEnv{"rs1": NewInt(10), "imm": NewInt(32)}
	r := eval(t, `\rs1 \imm +`, env)
	if !r.HasValue || r.Value.Int() != 42 {
		t.Errorf("stack result = %v (has=%v), want 42", r.Value, r.HasValue)
	}
}

func TestBranchConditionResult(t *testing.T) {
	env := MapEnv{"rs1": NewInt(5), "rs2": NewInt(5)}
	r := eval(t, `\rs1 \rs2 ==`, env)
	if !r.HasValue || !r.Value.Bool() {
		t.Error("5 == 5 should leave true on the stack")
	}
	env["rs2"] = NewInt(6)
	r = eval(t, `\rs1 \rs2 ==`, env)
	if r.Value.Bool() {
		t.Error("5 == 6 should be false")
	}
}

func TestAssignmentAndStackResultTogether(t *testing.T) {
	// jalr-style: link register write plus target on the stack.
	env := MapEnv{"pc": NewInt(10), "rd": NewInt(0), "rs1": NewInt(100), "imm": NewInt(4)}
	r := eval(t, `\pc 1 + \rd = \rs1 \imm +`, env)
	if got := env["rd"].Int(); got != 11 {
		t.Errorf("link rd = %d, want 11", got)
	}
	if !r.HasValue || r.Value.Int() != 104 {
		t.Errorf("target = %v, want 104", r.Value)
	}
}

func TestIntOverflowWraps(t *testing.T) {
	env := MapEnv{"rs1": NewInt(math.MaxInt32), "rs2": NewInt(1), "rd": NewInt(0)}
	eval(t, `\rs1 \rs2 + \rd =`, env)
	if got := env["rd"].Int(); got != math.MinInt32 {
		t.Errorf("MaxInt32+1 = %d, want MinInt32", got)
	}
}

func TestDivisionByZeroRaisesFault(t *testing.T) {
	p := MustCompile(`\rs1 \rs2 / \rd =`)
	env := MapEnv{"rs1": NewInt(7), "rs2": NewInt(0), "rd": NewInt(0)}
	_, err := NewEvaluator().Eval(p, env)
	var exc *fault.Exception
	if !errors.As(err, &exc) || exc.Kind != fault.DivisionByZero {
		t.Fatalf("err = %v, want DivisionByZero fault", err)
	}
}

func TestRemainderByZeroRaisesFault(t *testing.T) {
	for _, src := range []string{`\a \b %`, `\a \b %u`, `\a \b /u`} {
		p := MustCompile(src)
		_, err := NewEvaluator().Eval(p, MapEnv{"a": NewInt(7), "b": NewInt(0)})
		var exc *fault.Exception
		if !errors.As(err, &exc) || exc.Kind != fault.DivisionByZero {
			t.Errorf("%s: err = %v, want DivisionByZero", src, err)
		}
	}
}

func TestFloatDivisionByZeroIsInf(t *testing.T) {
	env := MapEnv{"a": NewFloat(1), "b": NewFloat(0)}
	r := eval(t, `\a \b /`, env)
	if !math.IsInf(float64(r.Value.Float()), 1) {
		t.Errorf("1.0/0.0 = %v, want +Inf", r.Value.Float())
	}
}

func TestRiscvDivOverflow(t *testing.T) {
	// RISC-V: MinInt32 / -1 = MinInt32, MinInt32 % -1 = 0.
	env := MapEnv{"a": NewInt(math.MinInt32), "b": NewInt(-1)}
	if r := eval(t, `\a \b /`, env); r.Value.Int() != math.MinInt32 {
		t.Errorf("div overflow = %d, want MinInt32", r.Value.Int())
	}
	if r := eval(t, `\a \b %`, env); r.Value.Int() != 0 {
		t.Errorf("rem overflow = %d, want 0", r.Value.Int())
	}
}

func TestShiftAmountIsMasked(t *testing.T) {
	env := MapEnv{"a": NewInt(1), "b": NewInt(33)}
	if r := eval(t, `\a \b <<`, env); r.Value.Int() != 2 {
		t.Errorf("1 << 33 = %d, want 2 (5-bit mask)", r.Value.Int())
	}
}

func TestArithmeticVsLogicalShift(t *testing.T) {
	env := MapEnv{"a": NewInt(-8), "b": NewInt(1)}
	if r := eval(t, `\a \b >>`, env); r.Value.Int() != -4 {
		t.Errorf("-8 >> 1 = %d, want -4", r.Value.Int())
	}
	if r := eval(t, `\a \b >>>`, env); r.Value.UInt() != 0x7FFFFFFC {
		t.Errorf("-8 >>> 1 = %#x, want 0x7FFFFFFC", r.Value.UInt())
	}
}

func TestUnsignedComparisons(t *testing.T) {
	env := MapEnv{"a": NewInt(-1), "b": NewInt(1)}
	if r := eval(t, `\a \b <`, env); !r.Value.Bool() {
		t.Error("-1 < 1 signed should be true")
	}
	if r := eval(t, `\a \b <u`, env); r.Value.Bool() {
		t.Error("-1 <u 1 unsigned should be false (0xFFFFFFFF > 1)")
	}
}

func TestMulhVariants(t *testing.T) {
	env := MapEnv{"a": NewInt(-1), "b": NewInt(-1)}
	if r := eval(t, `\a \b mulh`, env); r.Value.Int() != 0 {
		t.Errorf("mulh(-1,-1) = %d, want 0", r.Value.Int())
	}
	if r := eval(t, `\a \b mulhu`, env); r.Value.UInt() != 0xFFFFFFFE {
		t.Errorf("mulhu(-1,-1) = %#x, want 0xFFFFFFFE", r.Value.UInt())
	}
	if r := eval(t, `\a \b mulhsu`, env); r.Value.UInt() != 0xFFFFFFFF {
		t.Errorf("mulhsu(-1,0xFFFFFFFF) = %#x, want 0xFFFFFFFF", r.Value.UInt())
	}
}

func TestFloatArithmetic(t *testing.T) {
	env := MapEnv{"a": NewFloat(1.5), "b": NewFloat(2.25), "rd": NewFloat(0)}
	eval(t, `\a \b + \rd =`, env)
	if got := env["rd"].Float(); got != 3.75 {
		t.Errorf("1.5+2.25 = %v", got)
	}
}

func TestSqrt(t *testing.T) {
	env := MapEnv{"a": NewFloat(9)}
	if r := eval(t, `\a sqrt`, env); r.Value.Float() != 3 {
		t.Errorf("sqrt(9) = %v", r.Value.Float())
	}
	env2 := MapEnv{"a": NewDouble(2)}
	r := eval(t, `\a sqrt`, env2)
	if math.Abs(r.Value.Double()-math.Sqrt2) > 1e-15 {
		t.Errorf("sqrt(2) = %v", r.Value.Double())
	}
}

func TestFloatIntConversions(t *testing.T) {
	env := MapEnv{"a": NewFloat(-3.7)}
	if r := eval(t, `\a int`, env); r.Value.Int() != -3 {
		t.Errorf("fcvt.w.s(-3.7) = %d, want -3", r.Value.Int())
	}
	env = MapEnv{"a": NewFloat(float32(math.MaxInt32) * 4)}
	if r := eval(t, `\a int`, env); r.Value.Int() != math.MaxInt32 {
		t.Errorf("fcvt.w.s(huge) = %d, want saturation to MaxInt32", r.Value.Int())
	}
	env = MapEnv{"a": NewFloat(float32(math.NaN()))}
	if r := eval(t, `\a int`, env); r.Value.Int() != math.MaxInt32 {
		t.Errorf("fcvt.w.s(NaN) = %d, want MaxInt32", r.Value.Int())
	}
	env = MapEnv{"a": NewFloat(-1)}
	if r := eval(t, `\a uint`, env); r.Value.UInt() != 0 {
		t.Errorf("fcvt.wu.s(-1) = %d, want 0", r.Value.UInt())
	}
	env = MapEnv{"a": NewInt(7)}
	if r := eval(t, `\a float`, env); r.Value.Float() != 7 {
		t.Errorf("fcvt.s.w(7) = %v", r.Value.Float())
	}
}

func TestBitMoves(t *testing.T) {
	env := MapEnv{"a": NewFloat(1.0)}
	r := eval(t, `\a bitsToInt`, env)
	if r.Value.UInt() != 0x3F800000 {
		t.Errorf("fmv.x.w(1.0) = %#x, want 0x3F800000", r.Value.UInt())
	}
	env = MapEnv{"a": NewUInt(0x3F800000)}
	r = eval(t, `\a bitsToFloat`, env)
	if r.Value.Float() != 1.0 {
		t.Errorf("fmv.w.x(0x3F800000) = %v, want 1.0", r.Value.Float())
	}
}

func TestSignInjection(t *testing.T) {
	env := MapEnv{"a": NewFloat(1.5), "b": NewFloat(-2.0)}
	if r := eval(t, `\a \b sgnj`, env); r.Value.Float() != -1.5 {
		t.Errorf("fsgnj(1.5,-2) = %v, want -1.5", r.Value.Float())
	}
	if r := eval(t, `\a \b sgnjn`, env); r.Value.Float() != 1.5 {
		t.Errorf("fsgnjn(1.5,-2) = %v, want 1.5", r.Value.Float())
	}
	env = MapEnv{"a": NewFloat(-1.5), "b": NewFloat(-2.0)}
	if r := eval(t, `\a \b sgnjx`, env); r.Value.Float() != 1.5 {
		t.Errorf("fsgnjx(-1.5,-2) = %v, want 1.5", r.Value.Float())
	}
}

func TestFclass(t *testing.T) {
	cases := []struct {
		v    Value
		want int32
	}{
		{NewFloat(float32(math.Inf(-1))), 1 << 0},
		{NewFloat(-1.5), 1 << 1},
		{NewFloat(float32(math.Copysign(0, -1))), 1 << 3},
		{NewFloat(0), 1 << 4},
		{NewFloat(1.5), 1 << 6},
		{NewFloat(float32(math.Inf(1))), 1 << 7},
		{NewFloat(float32(math.NaN())), 1 << 9},
	}
	for _, c := range cases {
		env := MapEnv{"a": c.v}
		if r := eval(t, `\a fclass`, env); r.Value.Int() != c.want {
			t.Errorf("fclass(%v) = %#x, want %#x", c.v, r.Value.Int(), c.want)
		}
	}
}

func TestNaNComparisonsAreFalse(t *testing.T) {
	env := MapEnv{"a": NewFloat(float32(math.NaN())), "b": NewFloat(1)}
	for _, src := range []string{`\a \b <`, `\a \b <=`, `\a \b ==`} {
		if r := eval(t, src, env); r.Value.Bool() {
			t.Errorf("%s with NaN should be false", src)
		}
	}
}

func TestMinMax(t *testing.T) {
	env := MapEnv{"a": NewInt(3), "b": NewInt(-4)}
	if r := eval(t, `\a \b min`, env); r.Value.Int() != -4 {
		t.Errorf("min(3,-4) = %d", r.Value.Int())
	}
	if r := eval(t, `\a \b max`, env); r.Value.Int() != 3 {
		t.Errorf("max(3,-4) = %d", r.Value.Int())
	}
	fenv := MapEnv{"a": NewFloat(3), "b": NewFloat(-4)}
	if r := eval(t, `\a \b min`, fenv); r.Value.Float() != -4 {
		t.Errorf("fmin(3,-4) = %v", r.Value.Float())
	}
}

func TestLiteralForms(t *testing.T) {
	env := MapEnv{}
	if r := eval(t, `0x10 2 +`, env); r.Value.Int() != 18 {
		t.Errorf("0x10+2 = %d", r.Value.Int())
	}
	if r := eval(t, `-5 1 +`, env); r.Value.Int() != -4 {
		t.Errorf("-5+1 = %d", r.Value.Int())
	}
	if r := eval(t, `1.5 2.0 *`, env); r.Value.Double() != 3.0 {
		t.Errorf("1.5*2.0 = %v", r.Value.Double())
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`\a +`,       // underflow
		`frobnicate`, // unknown operator
		`\`,          // empty reference
		`\a \b = `,   // assign with non-empty stack is fine; but `=` target must be a ref:
	}
	for _, src := range bad[:3] {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
	// `1 2 =` — target is a literal, not a reference.
	if _, err := Compile(`1 2 =`); err == nil {
		t.Error("Compile(`1 2 =`) should fail: assignment target must be a reference")
	}
}

func TestUndefinedOperand(t *testing.T) {
	p := MustCompile(`\nope 1 +`)
	if _, err := NewEvaluator().Eval(p, MapEnv{}); err == nil {
		t.Error("expected undefined-operand error")
	}
}

func TestWritesList(t *testing.T) {
	p := MustCompile(`\pc 1 + \rd = \rs1 \imm +`)
	w := p.Writes()
	if len(w) != 1 || w[0] != "rd" {
		t.Errorf("Writes() = %v, want [rd]", w)
	}
}

func TestPickDuplicatesTop(t *testing.T) {
	env := MapEnv{"a": NewInt(21), "out": NewInt(0)}
	r := eval(t, `\a pick \out = `, env)
	if env["out"].Int() != 21 {
		t.Errorf("out = %d, want 21", env["out"].Int())
	}
	if !r.HasValue || r.Value.Int() != 21 {
		t.Errorf("stack top = %v, want 21", r.Value)
	}
}

// Property: integer add in the interpreter matches Go's int32 arithmetic.
func TestPropertyAddMatchesInt32(t *testing.T) {
	p := MustCompile(`\a \b +`)
	ev := NewEvaluator()
	f := func(a, b int32) bool {
		r, err := ev.Eval(p, MapEnv{"a": NewInt(a), "b": NewInt(b)})
		return err == nil && r.Value.Int() == a+b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: signed/unsigned division agrees with Go for non-zero divisors.
func TestPropertyDivMatchesGo(t *testing.T) {
	pdiv := MustCompile(`\a \b /`)
	pdivu := MustCompile(`\a \b /u`)
	ev := NewEvaluator()
	f := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		r, err := ev.Eval(pdiv, MapEnv{"a": NewInt(a), "b": NewInt(b)})
		if err != nil {
			return false
		}
		if a == math.MinInt32 && b == -1 {
			return r.Value.Int() == math.MinInt32
		}
		if r.Value.Int() != a/b {
			return false
		}
		ru, err := ev.Eval(pdivu, MapEnv{"a": NewInt(a), "b": NewInt(b)})
		return err == nil && ru.Value.UInt() == uint32(a)/uint32(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: bitwise ops match Go.
func TestPropertyBitwiseMatchesGo(t *testing.T) {
	pand := MustCompile(`\a \b &`)
	por := MustCompile(`\a \b |`)
	pxor := MustCompile(`\a \b ^`)
	ev := NewEvaluator()
	f := func(a, b uint32) bool {
		ra, _ := ev.Eval(pand, MapEnv{"a": NewUInt(a), "b": NewUInt(b)})
		ro, _ := ev.Eval(por, MapEnv{"a": NewUInt(a), "b": NewUInt(b)})
		rx, _ := ev.Eval(pxor, MapEnv{"a": NewUInt(a), "b": NewUInt(b)})
		return ra.Value.UInt() == a&b && ro.Value.UInt() == a|b && rx.Value.UInt() == a^b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: float32 arithmetic is correctly rounded (matches Go float32).
func TestPropertyFloatMulMatchesGo(t *testing.T) {
	p := MustCompile(`\a \b *`)
	ev := NewEvaluator()
	f := func(a, b float32) bool {
		r, err := ev.Eval(p, MapEnv{"a": NewFloat(a), "b": NewFloat(b)})
		if err != nil {
			return false
		}
		want := a * b
		got := r.Value.Float()
		if math.IsNaN(float64(want)) {
			return math.IsNaN(float64(got))
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalAdd(b *testing.B) {
	p := MustCompile(`\rs1 \rs2 + \rd =`)
	env := MapEnv{"rs1": NewInt(2), "rs2": NewInt(40), "rd": NewInt(0)}
	ev := NewEvaluator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(p, env); err != nil {
			b.Fatal(err)
		}
	}
}
