// Package seeds is the one seed-plumbing helper shared by every seeded
// surface of the repository — the co-simulation fuzzer's -fuzz-seed, the
// load generator's Scenario.Seed — so "replay exactly what run X did"
// means the same thing everywhere.
//
// The contract has two halves:
//
//   - Derive is intentionally additive: item i of a campaign with base
//     seed B gets the seed B+i, so a single failing item can be replayed
//     alone by passing its derived seed as the new base (fuzz failure
//     reports print exactly that command line).
//
//   - Mix decorrelates: consumers feed the derived seed through Mix (a
//     SplitMix64 finalizer) before seeding a PRNG or reducing modulo a
//     small set, so adjacent bases still produce unrelated streams.
package seeds

// Derive returns the seed of item i under base. The mapping is plain
// addition by contract — see the package comment — so callers can replay
// item i of base B as item 0 of base B+i.
func Derive(base int64, i int) int64 { return base + int64(i) }

// Mix scrambles a seed through the SplitMix64 finalizer: a bijection on
// 64-bit values with full avalanche, so consecutive Derive outputs turn
// into statistically independent values. Use the result to seed PRNGs or
// to make small deterministic choices (e.g. Mix(s) % n).
func Mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
