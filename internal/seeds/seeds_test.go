package seeds

import "testing"

// TestDeriveIsAdditive pins the replay contract: item i of base B is
// item 0 of base B+i, which is what fuzz failure reports rely on when
// they print `-fuzz-n=1 -fuzz-seed=<derived>`.
func TestDeriveIsAdditive(t *testing.T) {
	for _, base := range []int64{0, 1, -7, 1 << 40} {
		for i := 0; i < 10; i++ {
			if Derive(base, i) != Derive(base+int64(i), 0) {
				t.Fatalf("Derive(%d, %d) != Derive(%d, 0)", base, i, base+int64(i))
			}
		}
	}
}

func TestMixDecorrelatesAndIsInjective(t *testing.T) {
	seen := make(map[int64]int64)
	for s := int64(-500); s < 500; s++ {
		m := Mix(s)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d) == %d", s, prev, m)
		}
		seen[m] = s
		if m == s {
			t.Errorf("Mix(%d) is a fixed point", s)
		}
	}
	if Mix(1)^Mix(2) == 0 || Mix(1)-Mix(2) == 1 || Mix(2)-Mix(1) == 1 {
		t.Errorf("adjacent seeds stayed correlated: %d, %d", Mix(1), Mix(2))
	}
}
