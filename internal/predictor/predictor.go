// Package predictor implements the simulator's branch prediction: a branch
// target buffer (BTB), a pattern history table (PHT) of zero-, one- or
// two-bit counters with a configurable default state, and a choice of
// local or global history shift registers — the complete option set of the
// paper's Branch prediction settings tab (§II-C).
//
// The predictor is trained in program order when branches resolve, so no
// speculative-history rollback is required.
package predictor

import "fmt"

// Type selects the counter automaton in the PHT.
type Type uint8

// Predictor types from the paper's settings window.
const (
	// ZeroBit is a static predictor: it always predicts the configured
	// default direction and never learns.
	ZeroBit Type = iota
	// OneBit remembers the last outcome per PHT entry.
	OneBit
	// TwoBit is the classic saturating counter (strongly/weakly
	// not-taken, weakly/strongly taken).
	TwoBit
)

var typeNames = [...]string{"zero-bit", "one-bit", "two-bit"}

// String returns the display name of the predictor type.
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("predictorType(%d)", uint8(t))
}

// ParseType is the inverse of String.
func ParseType(s string) (Type, error) {
	for i, n := range typeNames {
		if n == s {
			return Type(i), nil
		}
	}
	return TwoBit, fmt.Errorf("predictor: unknown type %q", s)
}

// Config holds the Branch prediction tab parameters.
type Config struct {
	// BTBSize is the number of branch target buffer entries.
	BTBSize int
	// PHTSize is the number of pattern history table entries.
	PHTSize int
	// Kind selects the counter automaton.
	Kind Type
	// DefaultState is the initial counter value of every PHT entry:
	// 0..1 for one-bit, 0..3 for two-bit; for zero-bit 0 = always
	// not-taken, anything else = always taken.
	DefaultState int
	// GlobalHistory selects a single global history shift register
	// (gshare-style indexing) instead of per-branch local histories.
	GlobalHistory bool
	// HistoryBits is the shift register length.
	HistoryBits int
}

// DefaultConfig returns the predictor used by the preset architectures:
// 128-entry BTB, 256-entry PHT of two-bit counters initialized weakly
// taken, global history.
func DefaultConfig() Config {
	return Config{
		BTBSize:       128,
		PHTSize:       256,
		Kind:          TwoBit,
		DefaultState:  2,
		GlobalHistory: true,
		HistoryBits:   8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BTBSize <= 0 {
		return fmt.Errorf("predictor: BTBSize must be positive, got %d", c.BTBSize)
	}
	if c.PHTSize <= 0 {
		return fmt.Errorf("predictor: PHTSize must be positive, got %d", c.PHTSize)
	}
	max := c.maxCounter()
	if c.DefaultState < 0 || (c.Kind != ZeroBit && c.DefaultState > max) {
		return fmt.Errorf("predictor: DefaultState %d out of range [0,%d] for %s",
			c.DefaultState, max, c.Kind)
	}
	if c.HistoryBits < 0 || c.HistoryBits > 30 {
		return fmt.Errorf("predictor: HistoryBits %d out of range [0,30]", c.HistoryBits)
	}
	return nil
}

func (c Config) maxCounter() int {
	switch c.Kind {
	case OneBit:
		return 1
	case TwoBit:
		return 3
	default:
		return 1
	}
}

// btbEntry is one direct-mapped, tagged BTB slot.
type btbEntry struct {
	valid  bool
	pc     int
	target int
}

// Stats counts prediction outcomes for the statistics window.
type Stats struct {
	Predictions uint64 `json:"predictions"`
	Correct     uint64 `json:"correct"`
	Mispredicts uint64 `json:"mispredicts"`
	BTBHits     uint64 `json:"btbHits"`
	BTBMisses   uint64 `json:"btbMisses"`
}

// Accuracy returns correct/predictions in [0,1].
func (s Stats) Accuracy() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Predictions)
}

// Predictor is the combined direction predictor + BTB.
type Predictor struct {
	cfg        Config
	btb        []btbEntry
	pht        []uint8
	globalHist uint32
	localHist  []uint32
	histMask   uint32
	stats      Stats
}

// New builds a predictor. The configuration must be valid.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Predictor{
		cfg:      cfg,
		btb:      make([]btbEntry, cfg.BTBSize),
		pht:      make([]uint8, cfg.PHTSize),
		histMask: (uint32(1) << cfg.HistoryBits) - 1,
	}
	for i := range p.pht {
		p.pht[i] = uint8(cfg.DefaultState)
	}
	if !cfg.GlobalHistory {
		p.localHist = make([]uint32, cfg.PHTSize)
	}
	return p, nil
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Stats returns the collected statistics.
func (p *Predictor) Stats() Stats { return p.stats }

// phtIndex combines the branch PC with the active history register.
func (p *Predictor) phtIndex(pc int) int {
	var hist uint32
	if p.cfg.GlobalHistory {
		hist = p.globalHist & p.histMask
	} else {
		hist = p.localHist[pc%p.cfg.PHTSize] & p.histMask
	}
	return int((uint32(pc) ^ hist) % uint32(p.cfg.PHTSize))
}

// Prediction is the fetch-time answer for one branch.
type Prediction struct {
	// Taken is the predicted direction.
	Taken bool
	// Target is the predicted target when BTBHit (otherwise meaningless;
	// the fetch unit falls through until the branch resolves).
	Target int
	// BTBHit reports whether the BTB held a target for the PC.
	BTBHit bool
	// PHTIndex records which counter produced the direction (for the
	// GUI's predictor state display).
	PHTIndex int
}

// Predict returns the direction and target prediction for the branch at pc.
// Unconditional jumps should pass conditional=false: their direction is
// always taken and only the BTB matters.
func (p *Predictor) Predict(pc int, conditional bool) Prediction {
	pred := Prediction{Taken: true}
	e := &p.btb[pc%p.cfg.BTBSize]
	if e.valid && e.pc == pc {
		pred.BTBHit = true
		pred.Target = e.target
		p.stats.BTBHits++
	} else {
		p.stats.BTBMisses++
	}
	if conditional {
		idx := p.phtIndex(pc)
		pred.PHTIndex = idx
		switch p.cfg.Kind {
		case ZeroBit:
			pred.Taken = p.cfg.DefaultState != 0
		case OneBit:
			pred.Taken = p.pht[idx] >= 1
		default:
			pred.Taken = p.pht[idx] >= 2
		}
	}
	return pred
}

// Update trains the predictor with the resolved outcome of the branch at
// pc and records whether the prediction was correct.
func (p *Predictor) Update(pc int, conditional, taken bool, target int, predictedCorrectly bool) {
	p.stats.Predictions++
	if predictedCorrectly {
		p.stats.Correct++
	} else {
		p.stats.Mispredicts++
	}

	if conditional && p.cfg.Kind != ZeroBit {
		idx := p.phtIndex(pc)
		c := p.pht[idx]
		max := uint8(p.cfg.maxCounter())
		if taken {
			if c < max {
				c++
			}
		} else if c > 0 {
			c--
		}
		p.pht[idx] = c
	}

	// History shift registers record the outcome after indexing.
	if conditional {
		bit := uint32(0)
		if taken {
			bit = 1
		}
		if p.cfg.GlobalHistory {
			p.globalHist = (p.globalHist<<1 | bit) & p.histMask
		} else {
			h := &p.localHist[pc%p.cfg.PHTSize]
			*h = (*h<<1 | bit) & p.histMask
		}
	}

	// Taken branches (and all jumps) deposit their target in the BTB.
	if taken {
		p.btb[pc%p.cfg.BTBSize] = btbEntry{valid: true, pc: pc, target: target}
	}
}

// CounterState returns the PHT counter for a PC (GUI display of "the state
// of the branch predictor", paper Fig. 1).
func (p *Predictor) CounterState(pc int) uint8 { return p.pht[p.phtIndex(pc)] }

// StateName renders a counter value as the classic two-bit state name.
func StateName(kind Type, c uint8) string {
	switch kind {
	case ZeroBit:
		if c != 0 {
			return "always-taken"
		}
		return "always-not-taken"
	case OneBit:
		if c != 0 {
			return "taken"
		}
		return "not-taken"
	default:
		switch c {
		case 0:
			return "strongly-not-taken"
		case 1:
			return "weakly-not-taken"
		case 2:
			return "weakly-taken"
		default:
			return "strongly-taken"
		}
	}
}

// Clone deep-copies the predictor (for simulation snapshots).
func (p *Predictor) Clone() *Predictor {
	np := &Predictor{
		cfg: p.cfg, globalHist: p.globalHist, histMask: p.histMask, stats: p.stats,
	}
	np.btb = append([]btbEntry(nil), p.btb...)
	np.pht = append([]uint8(nil), p.pht...)
	if p.localHist != nil {
		np.localHist = append([]uint32(nil), p.localHist...)
	}
	return np
}
