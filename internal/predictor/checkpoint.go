package predictor

import "riscvsim/internal/ckpt"

// EncodeState writes the predictor's trained state: BTB entries, PHT
// counters, the active history register(s) and the outcome statistics.
func (p *Predictor) EncodeState(w *ckpt.Writer) {
	w.Section(ckpt.SecPredictor)
	w.Int(len(p.btb))
	for i := range p.btb {
		e := &p.btb[i]
		w.Bool(e.valid)
		if e.valid {
			w.Int(e.pc)
			w.Int(e.target)
		}
	}
	w.Bytes(p.pht)
	w.U64(uint64(p.globalHist))
	w.Int(len(p.localHist))
	for _, h := range p.localHist {
		w.U64(uint64(h))
	}
	w.U64(p.stats.Predictions)
	w.U64(p.stats.Correct)
	w.U64(p.stats.Mispredicts)
	w.U64(p.stats.BTBHits)
	w.U64(p.stats.BTBMisses)
}

// DecodeState applies an encoded predictor state onto p, which must have
// been built from the same configuration.
func (p *Predictor) DecodeState(r *ckpt.Reader) {
	r.Section(ckpt.SecPredictor)
	if n := r.Int(); r.Err() == nil && n != len(p.btb) {
		r.Corrupt("BTB of %d entries, machine has %d", n, len(p.btb))
		return
	}
	for i := range p.btb {
		e := &p.btb[i]
		e.valid = r.Bool()
		if e.valid {
			e.pc = r.Int()
			e.target = r.Int()
		} else {
			e.pc, e.target = 0, 0
		}
	}
	pht := r.Bytes(len(p.pht))
	if r.Err() != nil {
		return
	}
	if len(pht) != len(p.pht) {
		r.Corrupt("PHT of %d entries, machine has %d", len(pht), len(p.pht))
		return
	}
	copy(p.pht, pht)
	p.globalHist = uint32(r.U64())
	if n := r.Int(); r.Err() == nil && n != len(p.localHist) {
		r.Corrupt("local history of %d entries, machine has %d", n, len(p.localHist))
		return
	}
	for i := range p.localHist {
		p.localHist[i] = uint32(r.U64())
	}
	p.stats.Predictions = r.U64()
	p.stats.Correct = r.U64()
	p.stats.Mispredicts = r.U64()
	p.stats.BTBHits = r.U64()
	p.stats.BTBMisses = r.U64()
}
