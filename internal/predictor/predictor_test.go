package predictor

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func twoBitCfg() Config {
	return Config{BTBSize: 16, PHTSize: 64, Kind: TwoBit, DefaultState: 2, GlobalHistory: true, HistoryBits: 4}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BTBSize: 0, PHTSize: 16, Kind: TwoBit},
		{BTBSize: 16, PHTSize: 0, Kind: TwoBit},
		{BTBSize: 16, PHTSize: 16, Kind: TwoBit, DefaultState: 4},
		{BTBSize: 16, PHTSize: 16, Kind: OneBit, DefaultState: 2},
		{BTBSize: 16, PHTSize: 16, Kind: TwoBit, HistoryBits: 31},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestZeroBitIsStatic(t *testing.T) {
	for _, def := range []int{0, 1} {
		cfg := twoBitCfg()
		cfg.Kind = ZeroBit
		cfg.DefaultState = def
		p := mustNew(t, cfg)
		want := def != 0
		// Train hard against the static direction; it must not budge.
		for i := 0; i < 20; i++ {
			p.Update(4, true, !want, 8, false)
		}
		if got := p.Predict(4, true).Taken; got != want {
			t.Errorf("zero-bit(default=%d) predicts %v after training, want %v", def, got, want)
		}
	}
}

func TestOneBitFollowsLastOutcome(t *testing.T) {
	cfg := twoBitCfg()
	cfg.Kind = OneBit
	cfg.DefaultState = 0
	cfg.HistoryBits = 0 // isolate the counter behaviour from history indexing
	p := mustNew(t, cfg)
	pc := 4
	if p.Predict(pc, true).Taken {
		t.Error("initial prediction should be not-taken (default 0)")
	}
	p.Update(pc, true, true, 8, false)
	if !p.Predict(pc, true).Taken {
		t.Error("after a taken outcome, one-bit must predict taken")
	}
	p.Update(pc, true, false, 8, false)
	if p.Predict(pc, true).Taken {
		t.Error("after a not-taken outcome, one-bit must predict not-taken")
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	cfg := twoBitCfg()
	cfg.DefaultState = 3 // strongly taken
	cfg.HistoryBits = 0
	p := mustNew(t, cfg)
	pc := 4
	// One not-taken outcome: still predicts taken (weakly).
	p.Update(pc, true, false, 8, false)
	if !p.Predict(pc, true).Taken {
		t.Error("two-bit must survive one contrary outcome")
	}
	// Second not-taken outcome: flips.
	p.Update(pc, true, false, 8, false)
	if p.Predict(pc, true).Taken {
		t.Error("two-bit must flip after two contrary outcomes")
	}
}

func TestCounterSaturation(t *testing.T) {
	cfg := twoBitCfg()
	cfg.HistoryBits = 0
	p := mustNew(t, cfg)
	pc := 4
	for i := 0; i < 10; i++ {
		p.Update(pc, true, true, 8, true)
	}
	if got := p.CounterState(pc); got != 3 {
		t.Errorf("counter = %d after saturating taken, want 3", got)
	}
	for i := 0; i < 10; i++ {
		p.Update(pc, true, false, 8, false)
	}
	if got := p.CounterState(pc); got != 0 {
		t.Errorf("counter = %d after saturating not-taken, want 0", got)
	}
}

func TestBTBStoresTargets(t *testing.T) {
	p := mustNew(t, twoBitCfg())
	if p.Predict(4, false).BTBHit {
		t.Error("empty BTB must miss")
	}
	p.Update(4, false, true, 42, false)
	pred := p.Predict(4, false)
	if !pred.BTBHit || pred.Target != 42 {
		t.Errorf("after update, prediction = %+v, want BTB hit with target 42", pred)
	}
}

func TestBTBTagging(t *testing.T) {
	cfg := twoBitCfg()
	cfg.BTBSize = 16
	p := mustNew(t, cfg)
	p.Update(4, false, true, 42, false)
	// PC 20 maps to the same slot (20 % 16 == 4) but has a different tag.
	pred := p.Predict(20, false)
	if pred.BTBHit {
		t.Error("BTB must not alias PCs with different tags")
	}
	// The new branch evicts the old entry.
	p.Update(20, false, true, 99, false)
	if p.Predict(4, false).BTBHit {
		t.Error("evicted BTB entry must not hit")
	}
	if got := p.Predict(20, false); !got.BTBHit || got.Target != 99 {
		t.Errorf("new entry = %+v, want hit with target 99", got)
	}
}

func TestNotTakenBranchesDoNotEnterBTB(t *testing.T) {
	p := mustNew(t, twoBitCfg())
	p.Update(4, true, false, 42, true)
	if p.Predict(4, true).BTBHit {
		t.Error("not-taken branches must not allocate BTB entries")
	}
}

func TestGlobalHistoryDistinguishesPatterns(t *testing.T) {
	// A branch alternating T,N,T,N is mispredicted by a plain two-bit
	// counter but learned perfectly with history bits: after warmup the
	// history register disambiguates the two contexts.
	cfg := Config{BTBSize: 16, PHTSize: 256, Kind: TwoBit, DefaultState: 0, GlobalHistory: true, HistoryBits: 4}
	p := mustNew(t, cfg)
	pc := 8
	outcome := func(i int) bool { return i%2 == 0 }
	correct := 0
	const rounds = 200
	for i := 0; i < rounds; i++ {
		pred := p.Predict(pc, true)
		want := outcome(i)
		if pred.Taken == want {
			correct++
		}
		p.Update(pc, true, want, 16, pred.Taken == want)
	}
	// Skip the warmup; the steady state must be near-perfect.
	if correct < rounds*3/4 {
		t.Errorf("history predictor got %d/%d on alternating pattern, want >= %d",
			correct, rounds, rounds*3/4)
	}
}

func TestLocalHistoryIsolation(t *testing.T) {
	// With local histories, an erratic branch must not pollute the
	// history of a well-behaved branch mapping to a different entry.
	cfg := Config{BTBSize: 16, PHTSize: 64, Kind: TwoBit, DefaultState: 2, GlobalHistory: false, HistoryBits: 4}
	p := mustNew(t, cfg)
	steady, noisy := 3, 4
	correct := 0
	const rounds = 100
	for i := 0; i < rounds; i++ {
		pred := p.Predict(steady, true)
		if pred.Taken {
			correct++
		}
		p.Update(steady, true, true, 10, pred.Taken)
		p.Update(noisy, true, i%3 == 0, 20, false)
	}
	if correct < rounds-5 {
		t.Errorf("steady branch with local history: %d/%d correct", correct, rounds)
	}
}

func TestStatsAccounting(t *testing.T) {
	p := mustNew(t, twoBitCfg())
	p.Update(4, true, true, 8, true)
	p.Update(4, true, false, 8, false)
	st := p.Stats()
	if st.Predictions != 2 || st.Correct != 1 || st.Mispredicts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Accuracy() != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", st.Accuracy())
	}
}

func TestStateNames(t *testing.T) {
	if StateName(TwoBit, 0) != "strongly-not-taken" || StateName(TwoBit, 3) != "strongly-taken" {
		t.Error("two-bit state names wrong")
	}
	if StateName(OneBit, 1) != "taken" {
		t.Error("one-bit state name wrong")
	}
	if StateName(ZeroBit, 0) != "always-not-taken" {
		t.Error("zero-bit state name wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := twoBitCfg()
	cfg.HistoryBits = 0 // stable PHT indexing so counters are comparable
	p := mustNew(t, cfg)
	p.Update(4, true, true, 8, true)
	c := p.Clone()
	p.Update(4, true, true, 8, true)
	if c.Stats().Predictions != 1 {
		t.Errorf("clone stats = %+v, want 1 prediction", c.Stats())
	}
	// Saturate the original; the clone's counters must be unaffected.
	for i := 0; i < 5; i++ {
		p.Update(4, true, false, 8, false)
	}
	if p.CounterState(4) == c.CounterState(4) {
		t.Error("clone must have independent PHT state")
	}
}

// Property: a two-bit predictor eventually learns any constant-direction
// branch, from any default state, in at most 3 updates.
func TestPropertyTwoBitConvergence(t *testing.T) {
	f := func(pcRaw uint16, def uint8, dir bool) bool {
		cfg := Config{BTBSize: 32, PHTSize: 128, Kind: TwoBit,
			DefaultState: int(def % 4), GlobalHistory: true, HistoryBits: 0}
		p, err := New(cfg)
		if err != nil {
			return false
		}
		pc := int(pcRaw)
		for i := 0; i < 3; i++ {
			pred := p.Predict(pc, true)
			p.Update(pc, true, dir, pc+1, pred.Taken == dir)
		}
		return p.Predict(pc, true).Taken == dir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: prediction accuracy statistics never exceed prediction count.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(outcomes []bool) bool {
		p, _ := New(DefaultConfig())
		for i, o := range outcomes {
			pred := p.Predict(i%50, true)
			p.Update(i%50, true, o, i+1, pred.Taken == o)
		}
		st := p.Stats()
		return st.Correct+st.Mispredicts == st.Predictions &&
			st.Predictions == uint64(len(outcomes))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
