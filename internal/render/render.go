// Package render draws the processor schematic as text: the server-side
// equivalent of the web client's main simulator window (paper Fig. 12),
// with one box per block showing its name, key status line and active
// instructions (Fig. 1's block anatomy). Its cost stands in for the
// paper's measured ~80 ms render time (DESIGN.md E4).
package render

import (
	"fmt"
	"strings"

	"riscvsim/internal/core"
)

// blockWidth is the inner width of a rendered block box.
const blockWidth = 46

// Schematic renders the full processor view from a state snapshot.
func Schematic(st *core.State) string {
	var sb strings.Builder
	sb.Grow(1 << 14)

	fmt.Fprintf(&sb, "═══ Superscalar RISC-V — cycle %d", st.Cycle)
	if st.Halted {
		fmt.Fprintf(&sb, " — HALTED (%s)", st.HaltReason)
	}
	sb.WriteString(" ═══\n\n")

	block(&sb, "Fetch", fmt.Sprintf("pc=%d", st.PC), instrLines(st.DecodeBuffer, 6))
	block(&sb, "Reorder buffer", fmt.Sprintf("%d in flight", len(st.ROB)), instrLines(st.ROB, 12))

	for _, name := range []string{"FX", "FP", "LS", "Branch"} {
		ws := st.Windows[name]
		block(&sb, name+" issue window", fmt.Sprintf("%d waiting", len(ws)), instrLines(ws, 6))
	}

	for _, fu := range st.FUs {
		status := "idle"
		var lines []string
		if fu.Busy && fu.Instr != nil {
			status = fmt.Sprintf("busy until cycle %d", fu.DoneAt)
			lines = []string{instrLine(*fu.Instr)}
		}
		block(&sb, fmt.Sprintf("%s unit %s", fu.Class, fu.Name), status, lines)
	}

	block(&sb, "Load buffer", fmt.Sprintf("%d pending", len(st.LoadBuffer)), instrLines(st.LoadBuffer, 6))
	block(&sb, "Store buffer", fmt.Sprintf("%d pending", len(st.StoreBuffer)), instrLines(st.StoreBuffer, 6))

	// Register files with rename tags (Fig. 12 shows FX and FP registers
	// with their renamed tags and values).
	sb.WriteString(renderRegs("FX registers", st.IntRegs))
	sb.WriteString(renderRegs("FP registers", st.FloatRegs))

	if len(st.SpecRegs) > 0 {
		var lines []string
		for _, sv := range st.SpecRegs {
			val := sv.Value
			if !sv.Valid {
				val = "??"
			}
			lines = append(lines, fmt.Sprintf("%-6s -> %-5s = %-12s refs=%d", sv.Tag, sv.Arch, val, sv.Refs))
		}
		block(&sb, "Rename file", fmt.Sprintf("%d live", len(st.SpecRegs)), lines)
	}

	// Cache lines (valid only), grouped like the cache pane.
	valid := 0
	var cacheLines []string
	for _, cl := range st.CacheLines {
		if cl.Valid {
			valid++
			if len(cacheLines) < 8 {
				d := ""
				if cl.Dirty {
					d = " dirty"
				}
				cacheLines = append(cacheLines, fmt.Sprintf("set %2d way %d  addr %6d%s", cl.Set, cl.Way, cl.Addr, d))
			}
		}
	}
	block(&sb, "L1 cache", fmt.Sprintf("%d/%d lines valid", valid, len(st.CacheLines)), cacheLines)

	// Memory pointers (Fig. 2: allocated arrays and their addresses).
	var ptrLines []string
	for _, p := range st.Pointers {
		if p.Name == "" {
			continue
		}
		ptrLines = append(ptrLines, fmt.Sprintf("%-16s @%6d  %5d B  %s", p.Name, p.Addr, p.Size, p.Elem))
	}
	block(&sb, "Main memory", fmt.Sprintf("%d named allocations", len(ptrLines)), ptrLines)

	// Right-hand status bar (default view: cycles, committed, IPC,
	// prediction accuracy).
	r := st.Stats
	fmt.Fprintf(&sb, "\n── status ─ cycles %d │ committed %d │ IPC %.3f │ prediction %.1f%% │ cache hit %.1f%%\n",
		r.Cycles, r.Committed, r.IPC, 100*r.PredAccuracy, 100*r.CacheHitRate)
	return sb.String()
}

func block(sb *strings.Builder, name, info string, lines []string) {
	fmt.Fprintf(sb, "┌─ %s %s┐\n", name, strings.Repeat("─", max(1, blockWidth-len(name)-2)))
	fmt.Fprintf(sb, "│ %-*s │\n", blockWidth, clip(info, blockWidth))
	for _, l := range lines {
		fmt.Fprintf(sb, "│ %-*s │\n", blockWidth, clip(l, blockWidth))
	}
	fmt.Fprintf(sb, "└%s┘\n", strings.Repeat("─", blockWidth+2))
}

func instrLines(views []core.InstrView, limit int) []string {
	var out []string
	for i, v := range views {
		if i >= limit {
			out = append(out, fmt.Sprintf("… %d more", len(views)-limit))
			break
		}
		out = append(out, instrLine(v))
	}
	return out
}

func instrLine(v core.InstrView) string {
	flags := ""
	if v.Squashed {
		flags += " ✗"
	}
	if v.Exception != "" {
		flags += " !exc"
	}
	if v.DestTag != "" {
		flags += " ->" + v.DestTag
	}
	return fmt.Sprintf("#%-4d @%-4d %-22s %s%s", v.ID, v.PC, clip(v.Text, 22), v.Phase, flags)
}

func renderRegs(title string, regs []core.RegView) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "┌─ %s %s┐\n", title, strings.Repeat("─", max(1, blockWidth-len(title)-2)))
	for i := 0; i+3 < len(regs); i += 4 {
		var cells []string
		for j := i; j < i+4; j++ {
			r := regs[j]
			v := r.Value
			if r.Renamed != "" {
				v += "*" + r.Renamed
			}
			cells = append(cells, fmt.Sprintf("%-4s %-12s", r.Name, clip(v, 12)))
		}
		line := strings.Join(cells, "")
		fmt.Fprintf(&sb, "│ %-*s │\n", blockWidth, clip(line, blockWidth))
	}
	fmt.Fprintf(&sb, "└%s┘\n", strings.Repeat("─", blockWidth+2))
	return sb.String()
}

func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
