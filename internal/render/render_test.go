package render

import (
	"strings"
	"testing"

	"riscvsim/sim"
)

func midSimState(t *testing.T) *sim.State {
	t.Helper()
	m, err := sim.NewFromAsm(sim.DefaultConfig(), `
li t0, 0
li t1, 1
li t2, 50
loop:
  add t0, t0, t1
  addi t1, t1, 1
  lw t3, 0(sp)
  bne t1, t2, loop
`, "")
	if err != nil {
		t.Fatal(err)
	}
	m.StepN(20)
	return m.State(false)
}

func TestSchematicShowsAllBlocks(t *testing.T) {
	out := Schematic(midSimState(t))
	for _, want := range []string{
		"Fetch", "Reorder buffer",
		"FX issue window", "FP issue window", "LS issue window", "Branch issue window",
		"Load buffer", "Store buffer",
		"FX registers", "FP registers",
		"L1 cache", "Main memory",
		"cycle 20",
		"IPC",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schematic missing %q", want)
		}
	}
}

func TestSchematicShowsInstructions(t *testing.T) {
	out := Schematic(midSimState(t))
	// Mid-loop, some instruction text must appear in a block.
	if !strings.Contains(out, "add") && !strings.Contains(out, "bne") {
		t.Errorf("schematic shows no instructions:\n%s", out)
	}
}

func TestSchematicHaltBanner(t *testing.T) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), "nop\n", "")
	if err != nil {
		t.Fatal(err)
	}
	m.Run(1000)
	out := Schematic(m.State(false))
	if !strings.Contains(out, "HALTED") {
		t.Error("halted banner missing")
	}
}

func TestSchematicClipping(t *testing.T) {
	if got := clip("short", 10); got != "short" {
		t.Errorf("clip(short) = %q", got)
	}
	if got := clip("averylongstringthatneedsclipping", 10); len([]rune(got)) != 10 {
		t.Errorf("clip length = %d, want 10", len([]rune(got)))
	}
}

func BenchmarkSchematic(b *testing.B) {
	m, err := sim.NewFromAsm(sim.DefaultConfig(), `
li t0, 0
li t1, 1
li t2, 500
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`, "")
	if err != nil {
		b.Fatal(err)
	}
	m.StepN(50)
	st := m.State(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Schematic(st)
	}
}
