package workload

import (
	"fmt"
	"sort"
	"strings"

	"riscvsim/internal/stats"
)

// Metrics is the typed per-workload metrics row the suite reduces every
// run to: the architectural quality numbers (IPC/CPI, branch MPKI, cache
// miss rate, stalls, unit utilization) rather than the full statistics
// document. The core is deterministic, so for a fixed architecture every
// field is exact — goldens compare with ==, and any drift is a
// correctness signal, not noise.
type Metrics struct {
	Workload string `json:"workload"`

	// Progress counters.
	Cycles    uint64 `json:"cycles"`
	Committed uint64 `json:"committed"`
	Fetched   uint64 `json:"fetched"`
	Squashed  uint64 `json:"squashed"`

	// Headline rates (rounded to 6 decimals so goldens are stable and
	// readable).
	IPC float64 `json:"ipc"`
	CPI float64 `json:"cpi"`

	// Branch behavior: mispredicts per 1000 committed instructions and
	// the predictor's direction accuracy.
	BranchMPKI   float64 `json:"branchMpki"`
	PredAccuracy float64 `json:"predAccuracy"`

	// L1 cache (the simulated core's unified data-side L1; instruction
	// fetch is modeled as ideal) and main-memory traffic.
	CacheMissRate float64 `json:"cacheMissRate"`
	CacheAccesses uint64  `json:"cacheAccesses"`
	MemReads      uint64  `json:"memReads"`
	MemWrites     uint64  `json:"memWrites"`

	// Pipeline back-pressure accounting.
	ROBFlushes    uint64 `json:"robFlushes"`
	FetchStalls   uint64 `json:"fetchStalls"`
	DecodeStalls  uint64 `json:"decodeStalls"`
	CommitStalls  uint64 `json:"commitStalls"`
	RenameStalls  uint64 `json:"renameStalls"`
	WindowStalls  uint64 `json:"windowStalls"`
	StoreForwards uint64 `json:"storeForwards"`

	// FUUtil is the busy-cycle percentage per functional unit, keyed by
	// unit name (JSON object keys marshal sorted, keeping goldens
	// byte-stable).
	FUUtil map[string]float64 `json:"fuUtil"`

	// HaltReason records why the run ended; anything but a clean
	// environment-call/return exit (e.g. "cycle limit") is a regression.
	HaltReason string `json:"haltReason"`
}

// FromReport reduces a finished run's statistics document to the
// suite's metrics row. It is the single reduction used by the library
// runner, the server endpoint and the golden generator, so all three
// produce identical rows for identical runs.
func FromReport(w Workload, r *stats.Report) Metrics {
	m := Metrics{
		Workload:      w.Name,
		Cycles:        r.Cycles,
		Committed:     r.Committed,
		Fetched:       r.Fetched,
		Squashed:      r.Squashed,
		IPC:           round6(r.IPC),
		PredAccuracy:  round6(r.PredAccuracy),
		CacheAccesses: r.Cache.Accesses,
		MemReads:      r.Memory.Reads,
		MemWrites:     r.Memory.Writes,
		ROBFlushes:    r.ROBFlushes,
		FetchStalls:   r.FetchStalls,
		DecodeStalls:  r.DecodeStalls,
		CommitStalls:  r.CommitStalls,
		RenameStalls:  r.RenameStalls,
		WindowStalls:  r.WindowStalls,
		StoreForwards: r.LSU.Forwards,
		FUUtil:        make(map[string]float64, len(r.FUs)),
		HaltReason:    r.HaltReason,
	}
	if r.Committed > 0 {
		m.CPI = round6(float64(r.Cycles) / float64(r.Committed))
		m.BranchMPKI = round6(1000 * float64(r.Predictor.Mispredicts) / float64(r.Committed))
	}
	// A run with no cache accesses has a 0 miss rate, not 1-HitRate's 1.
	if r.Cache.Accesses > 0 {
		m.CacheMissRate = round6(float64(r.Cache.Misses) / float64(r.Cache.Accesses))
	}
	for _, fu := range r.FUs {
		m.FUUtil[fu.Name] = round6(fu.BusyPct)
	}
	return m
}

// round6 rounds to 6 decimals: exact in every metric's realistic range,
// stable to read in golden diffs.
func round6(v float64) float64 {
	if v < 0 {
		return -round6(-v)
	}
	return float64(uint64(v*1e6+0.5)) / 1e6
}

// Report is the suite result: one metrics row per workload, in corpus
// order, plus the architecture the suite ran against.
type Report struct {
	// Architecture is the configuration's display name.
	Architecture string `json:"architecture"`
	// ConfigFingerprint digests the full architecture document, so a
	// metrics comparison can tell "the architecture changed" apart from
	// "the simulator changed" (goldens embed it).
	ConfigFingerprint string `json:"configFingerprint"`
	// Workloads carries one row per executed workload.
	Workloads []Metrics `json:"workloads"`
}

// Find returns the row for the named workload.
func (r *Report) Find(name string) (Metrics, bool) {
	for _, m := range r.Workloads {
		if m.Workload == name {
			return m, true
		}
	}
	return Metrics{}, false
}

// Table renders the report as an aligned text table for the CLI.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Workload suite — %s (config %s)\n\n", r.Architecture, r.ConfigFingerprint)
	fmt.Fprintf(&sb, "%-16s %10s %10s %7s %7s %8s %8s %9s %8s\n",
		"workload", "cycles", "committed", "IPC", "CPI", "MPKI", "miss%", "flushes", "stalls")
	for _, m := range r.Workloads {
		stalls := m.RenameStalls + m.WindowStalls + m.CommitStalls
		fmt.Fprintf(&sb, "%-16s %10d %10d %7.3f %7.3f %8.2f %7.2f%% %9d %8d\n",
			m.Workload, m.Cycles, m.Committed, m.IPC, m.CPI,
			m.BranchMPKI, 100*m.CacheMissRate, m.ROBFlushes, stalls)
	}
	return sb.String()
}

// FieldDiff is one drifted metric of one workload.
type FieldDiff struct {
	Field string `json:"field"`
	Want  string `json:"want"`
	Got   string `json:"got"`
}

// DiffMetrics compares two metrics rows field by field (exact match: the
// core is deterministic, so any difference is drift). The receiver order
// is (want, got) — want is the golden/baseline side.
func DiffMetrics(want, got Metrics) []FieldDiff {
	var diffs []FieldDiff
	add := func(field string, w, g any) {
		ws, gs := fmt.Sprint(w), fmt.Sprint(g)
		if ws != gs {
			diffs = append(diffs, FieldDiff{Field: field, Want: ws, Got: gs})
		}
	}
	add("cycles", want.Cycles, got.Cycles)
	add("committed", want.Committed, got.Committed)
	add("fetched", want.Fetched, got.Fetched)
	add("squashed", want.Squashed, got.Squashed)
	add("ipc", want.IPC, got.IPC)
	add("cpi", want.CPI, got.CPI)
	add("branchMpki", want.BranchMPKI, got.BranchMPKI)
	add("predAccuracy", want.PredAccuracy, got.PredAccuracy)
	add("cacheMissRate", want.CacheMissRate, got.CacheMissRate)
	add("cacheAccesses", want.CacheAccesses, got.CacheAccesses)
	add("memReads", want.MemReads, got.MemReads)
	add("memWrites", want.MemWrites, got.MemWrites)
	add("robFlushes", want.ROBFlushes, got.ROBFlushes)
	add("fetchStalls", want.FetchStalls, got.FetchStalls)
	add("decodeStalls", want.DecodeStalls, got.DecodeStalls)
	add("commitStalls", want.CommitStalls, got.CommitStalls)
	add("renameStalls", want.RenameStalls, got.RenameStalls)
	add("windowStalls", want.WindowStalls, got.WindowStalls)
	add("storeForwards", want.StoreForwards, got.StoreForwards)
	add("haltReason", want.HaltReason, got.HaltReason)
	units := make(map[string]bool)
	for u := range want.FUUtil {
		units[u] = true
	}
	for u := range got.FUUtil {
		units[u] = true
	}
	sorted := make([]string, 0, len(units))
	for u := range units {
		sorted = append(sorted, u)
	}
	sort.Strings(sorted)
	for _, u := range sorted {
		w, wok := want.FUUtil[u]
		g, gok := got.FUUtil[u]
		switch {
		case !wok:
			diffs = append(diffs, FieldDiff{Field: "fuUtil." + u, Want: "(absent)", Got: fmt.Sprint(g)})
		case !gok:
			diffs = append(diffs, FieldDiff{Field: "fuUtil." + u, Want: fmt.Sprint(w), Got: "(absent)"})
		default:
			add("fuUtil."+u, w, g)
		}
	}
	return diffs
}
