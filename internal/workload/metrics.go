package workload

import (
	"fmt"
	"sort"
	"strings"

	"riscvsim/internal/stats"
)

// Metrics is the typed per-workload metrics row the suite reduces every
// run to: the architectural quality numbers (IPC/CPI, branch MPKI, cache
// miss rate, stalls, unit utilization) rather than the full statistics
// document. The core is deterministic, so for a fixed architecture every
// field is exact — goldens compare with ==, and any drift is a
// correctness signal, not noise.
type Metrics struct {
	Workload string `json:"workload"`

	// Progress counters.
	Cycles    uint64 `json:"cycles"`
	Committed uint64 `json:"committed"`
	Fetched   uint64 `json:"fetched"`
	Squashed  uint64 `json:"squashed"`

	// Headline rates (rounded to 6 decimals so goldens are stable and
	// readable).
	IPC float64 `json:"ipc"`
	CPI float64 `json:"cpi"`

	// Branch behavior: mispredicts per 1000 committed instructions and
	// the predictor's direction accuracy.
	BranchMPKI   float64 `json:"branchMpki"`
	PredAccuracy float64 `json:"predAccuracy"`

	// L1 cache (the simulated core's unified data-side L1; instruction
	// fetch is modeled as ideal) and main-memory traffic.
	CacheMissRate float64 `json:"cacheMissRate"`
	CacheAccesses uint64  `json:"cacheAccesses"`
	MemReads      uint64  `json:"memReads"`
	MemWrites     uint64  `json:"memWrites"`

	// Pipeline back-pressure accounting.
	ROBFlushes    uint64 `json:"robFlushes"`
	FetchStalls   uint64 `json:"fetchStalls"`
	DecodeStalls  uint64 `json:"decodeStalls"`
	CommitStalls  uint64 `json:"commitStalls"`
	RenameStalls  uint64 `json:"renameStalls"`
	WindowStalls  uint64 `json:"windowStalls"`
	StoreForwards uint64 `json:"storeForwards"`

	// FUUtil is the busy-cycle percentage per functional unit, keyed by
	// unit name (JSON object keys marshal sorted, keeping goldens
	// byte-stable).
	FUUtil map[string]float64 `json:"fuUtil"`

	// HaltReason records why the run ended; anything but a clean
	// environment-call/return exit (e.g. "cycle limit") is a regression.
	HaltReason string `json:"haltReason"`
}

// FromReport reduces a finished run's statistics document to the
// suite's metrics row. It is the single reduction used by the library
// runner, the server endpoint and the golden generator, so all three
// produce identical rows for identical runs.
func FromReport(w Workload, r *stats.Report) Metrics {
	m := Metrics{
		Workload:      w.Name,
		Cycles:        r.Cycles,
		Committed:     r.Committed,
		Fetched:       r.Fetched,
		Squashed:      r.Squashed,
		IPC:           round6(r.IPC),
		PredAccuracy:  round6(r.PredAccuracy),
		CacheAccesses: r.Cache.Accesses,
		MemReads:      r.Memory.Reads,
		MemWrites:     r.Memory.Writes,
		ROBFlushes:    r.ROBFlushes,
		FetchStalls:   r.FetchStalls,
		DecodeStalls:  r.DecodeStalls,
		CommitStalls:  r.CommitStalls,
		RenameStalls:  r.RenameStalls,
		WindowStalls:  r.WindowStalls,
		StoreForwards: r.LSU.Forwards,
		FUUtil:        make(map[string]float64, len(r.FUs)),
		HaltReason:    r.HaltReason,
	}
	if r.Committed > 0 {
		m.CPI = round6(float64(r.Cycles) / float64(r.Committed))
		m.BranchMPKI = round6(1000 * float64(r.Predictor.Mispredicts) / float64(r.Committed))
	}
	// A run with no cache accesses has a 0 miss rate, not 1-HitRate's 1.
	if r.Cache.Accesses > 0 {
		m.CacheMissRate = round6(float64(r.Cache.Misses) / float64(r.Cache.Accesses))
	}
	for _, fu := range r.FUs {
		m.FUUtil[fu.Name] = round6(fu.BusyPct)
	}
	return m
}

// Merge stitches two adjacent interval rows (m chronologically before o)
// into one, the row-level counterpart of stats.Merge. Integer counters
// sum exactly; rate fields are recomputed from the summed counters where
// the row carries them (IPC, CPI, BranchMPKI — the mispredict count
// round-trips exactly through round6 for runs below ~10^9 committed) and
// weight-averaged where it does not (PredAccuracy by committed,
// CacheMissRate by accesses, FUUtil by cycles), which makes those three
// approximate to round6 precision. Callers needing exact rates merge at
// the stats.Report level and reduce once via FromReport — that is what
// Machine.RunParallel does.
func (m Metrics) Merge(o Metrics) Metrics {
	r := m
	r.Cycles = m.Cycles + o.Cycles
	r.Committed = m.Committed + o.Committed
	r.Fetched = m.Fetched + o.Fetched
	r.Squashed = m.Squashed + o.Squashed
	r.CacheAccesses = m.CacheAccesses + o.CacheAccesses
	r.MemReads = m.MemReads + o.MemReads
	r.MemWrites = m.MemWrites + o.MemWrites
	r.ROBFlushes = m.ROBFlushes + o.ROBFlushes
	r.FetchStalls = m.FetchStalls + o.FetchStalls
	r.DecodeStalls = m.DecodeStalls + o.DecodeStalls
	r.CommitStalls = m.CommitStalls + o.CommitStalls
	r.RenameStalls = m.RenameStalls + o.RenameStalls
	r.WindowStalls = m.WindowStalls + o.WindowStalls
	r.StoreForwards = m.StoreForwards + o.StoreForwards

	r.IPC, r.CPI, r.BranchMPKI = 0, 0, 0
	if r.Cycles > 0 && r.Committed > 0 {
		r.IPC = round6(float64(r.Committed) / float64(r.Cycles))
		r.CPI = round6(float64(r.Cycles) / float64(r.Committed))
		miss := countFromRate(m.BranchMPKI/1000, m.Committed) + countFromRate(o.BranchMPKI/1000, o.Committed)
		r.BranchMPKI = round6(1000 * float64(miss) / float64(r.Committed))
	}
	r.PredAccuracy = round6(weighted(m.PredAccuracy, m.Committed, o.PredAccuracy, o.Committed))
	r.CacheMissRate = 0
	if r.CacheAccesses > 0 {
		miss := countFromRate(m.CacheMissRate, m.CacheAccesses) + countFromRate(o.CacheMissRate, o.CacheAccesses)
		r.CacheMissRate = round6(float64(miss) / float64(r.CacheAccesses))
	}

	r.FUUtil = make(map[string]float64, len(m.FUUtil)+len(o.FUUtil))
	for name := range m.FUUtil {
		r.FUUtil[name] = 0
	}
	for name := range o.FUUtil {
		r.FUUtil[name] = 0
	}
	for name := range r.FUUtil {
		busy := countFromRate(m.FUUtil[name]/100, m.Cycles) + countFromRate(o.FUUtil[name]/100, o.Cycles)
		pct := 0.0
		if r.Cycles > 0 {
			pct = 100 * float64(busy) / float64(r.Cycles)
		}
		r.FUUtil[name] = round6(pct)
	}

	if o.HaltReason != "" {
		r.HaltReason = o.HaltReason
	}
	return r
}

// countFromRate reconstructs the integer event count behind rate =
// count/total. round6's absolute error (≤5e-7) times any realistic total
// stays under one half, so the reconstruction is exact in range.
func countFromRate(rate float64, total uint64) uint64 {
	if v := rate * float64(total); v > 0 {
		return uint64(v + 0.5)
	}
	return 0
}

func weighted(a float64, wa uint64, b float64, wb uint64) float64 {
	if wa+wb == 0 {
		return 0
	}
	return (a*float64(wa) + b*float64(wb)) / float64(wa+wb)
}

// round6 rounds to 6 decimals: exact in every metric's realistic range,
// stable to read in golden diffs.
func round6(v float64) float64 {
	if v < 0 {
		return -round6(-v)
	}
	return float64(uint64(v*1e6+0.5)) / 1e6
}

// Report is the suite result: one metrics row per workload, in corpus
// order, plus the architecture the suite ran against.
type Report struct {
	// Architecture is the configuration's display name.
	Architecture string `json:"architecture"`
	// ConfigFingerprint digests the full architecture document, so a
	// metrics comparison can tell "the architecture changed" apart from
	// "the simulator changed" (goldens embed it).
	ConfigFingerprint string `json:"configFingerprint"`
	// Workloads carries one row per executed workload.
	Workloads []Metrics `json:"workloads"`
}

// Find returns the row for the named workload.
func (r *Report) Find(name string) (Metrics, bool) {
	for _, m := range r.Workloads {
		if m.Workload == name {
			return m, true
		}
	}
	return Metrics{}, false
}

// Table renders the report as an aligned text table for the CLI.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Workload suite — %s (config %s)\n\n", r.Architecture, r.ConfigFingerprint)
	fmt.Fprintf(&sb, "%-16s %10s %10s %7s %7s %8s %8s %9s %8s\n",
		"workload", "cycles", "committed", "IPC", "CPI", "MPKI", "miss%", "flushes", "stalls")
	for _, m := range r.Workloads {
		stalls := m.RenameStalls + m.WindowStalls + m.CommitStalls
		fmt.Fprintf(&sb, "%-16s %10d %10d %7.3f %7.3f %8.2f %7.2f%% %9d %8d\n",
			m.Workload, m.Cycles, m.Committed, m.IPC, m.CPI,
			m.BranchMPKI, 100*m.CacheMissRate, m.ROBFlushes, stalls)
	}
	return sb.String()
}

// FieldDiff is one drifted metric of one workload.
type FieldDiff struct {
	Field string `json:"field"`
	Want  string `json:"want"`
	Got   string `json:"got"`
}

// DiffMetrics compares two metrics rows field by field (exact match: the
// core is deterministic, so any difference is drift). The receiver order
// is (want, got) — want is the golden/baseline side.
func DiffMetrics(want, got Metrics) []FieldDiff {
	var diffs []FieldDiff
	add := func(field string, w, g any) {
		ws, gs := fmt.Sprint(w), fmt.Sprint(g)
		if ws != gs {
			diffs = append(diffs, FieldDiff{Field: field, Want: ws, Got: gs})
		}
	}
	add("cycles", want.Cycles, got.Cycles)
	add("committed", want.Committed, got.Committed)
	add("fetched", want.Fetched, got.Fetched)
	add("squashed", want.Squashed, got.Squashed)
	add("ipc", want.IPC, got.IPC)
	add("cpi", want.CPI, got.CPI)
	add("branchMpki", want.BranchMPKI, got.BranchMPKI)
	add("predAccuracy", want.PredAccuracy, got.PredAccuracy)
	add("cacheMissRate", want.CacheMissRate, got.CacheMissRate)
	add("cacheAccesses", want.CacheAccesses, got.CacheAccesses)
	add("memReads", want.MemReads, got.MemReads)
	add("memWrites", want.MemWrites, got.MemWrites)
	add("robFlushes", want.ROBFlushes, got.ROBFlushes)
	add("fetchStalls", want.FetchStalls, got.FetchStalls)
	add("decodeStalls", want.DecodeStalls, got.DecodeStalls)
	add("commitStalls", want.CommitStalls, got.CommitStalls)
	add("renameStalls", want.RenameStalls, got.RenameStalls)
	add("windowStalls", want.WindowStalls, got.WindowStalls)
	add("storeForwards", want.StoreForwards, got.StoreForwards)
	add("haltReason", want.HaltReason, got.HaltReason)
	units := make(map[string]bool)
	for u := range want.FUUtil {
		units[u] = true
	}
	for u := range got.FUUtil {
		units[u] = true
	}
	sorted := make([]string, 0, len(units))
	for u := range units {
		sorted = append(sorted, u)
	}
	sort.Strings(sorted)
	for _, u := range sorted {
		w, wok := want.FUUtil[u]
		g, gok := got.FUUtil[u]
		switch {
		case !wok:
			diffs = append(diffs, FieldDiff{Field: "fuUtil." + u, Want: "(absent)", Got: fmt.Sprint(g)})
		case !gok:
			diffs = append(diffs, FieldDiff{Field: "fuUtil." + u, Want: fmt.Sprint(w), Got: "(absent)"})
		default:
			add("fuUtil."+u, w, g)
		}
	}
	return diffs
}
