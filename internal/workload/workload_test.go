package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"riscvsim/internal/config"
)

// TestCorpusShape pins the corpus contract: at least a dozen workloads,
// stable unique names, a behavioral profile and tags on every entry.
func TestCorpusShape(t *testing.T) {
	c := Corpus()
	if len(c) < 12 {
		t.Fatalf("corpus has %d workloads, want >= 12", len(c))
	}
	seen := make(map[string]bool)
	for _, w := range c {
		if w.Name == "" || seen[w.Name] {
			t.Errorf("workload name %q empty or duplicated", w.Name)
		}
		seen[w.Name] = true
		if w.Profile == "" {
			t.Errorf("%s: empty profile", w.Name)
		}
		if len(w.Tags) == 0 {
			t.Errorf("%s: no tags", w.Name)
		}
		if w.Source == "" || w.Entry == "" || w.MaxCycles == 0 {
			t.Errorf("%s: incomplete program definition", w.Name)
		}
	}
	// Corpus returns a copy: mutating it must not corrupt the package.
	c[0].Name = "mutated"
	if w := Corpus()[0]; w.Name == "mutated" {
		t.Fatal("Corpus() exposes internal state")
	}
}

// TestCorpusRuns executes every workload on every preset: each must
// assemble, halt cleanly well below its cycle bound, and commit work.
func TestCorpusRuns(t *testing.T) {
	for name, cfg := range map[string]*config.CPU{
		"default": config.Default(), "scalar": config.Scalar(), "wide4": config.Wide4(),
	} {
		for _, w := range Corpus() {
			m, err := RunOne(cfg, w)
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name, name, err)
				continue
			}
			if m.HaltReason == "" {
				t.Errorf("%s on %s: hit the %d-cycle bound without halting", w.Name, name, w.MaxCycles)
			}
			if m.Cycles >= w.MaxCycles {
				t.Errorf("%s on %s: %d cycles leaves no headroom under the %d bound",
					w.Name, name, m.Cycles, w.MaxCycles)
			}
			if m.Committed == 0 || m.IPC <= 0 {
				t.Errorf("%s on %s: no work committed (%+v)", w.Name, name, m)
			}
		}
	}
}

func TestMatch(t *testing.T) {
	all, err := Match("")
	if err != nil || len(all) != len(Corpus()) {
		t.Fatalf("empty filter: got %d workloads, err %v", len(all), err)
	}
	byTag, err := Match("branch-heavy")
	if err != nil {
		t.Fatal(err)
	}
	if len(byTag) < 3 {
		t.Fatalf("branch-heavy selects %d workloads, want >= 3", len(byTag))
	}
	bySubstr, err := Match("matmul")
	if err != nil || len(bySubstr) != 1 || bySubstr[0].Name != "matmul-blocked" {
		t.Fatalf("substring filter: got %v, err %v", bySubstr, err)
	}
	multi, err := Match("matmul, bitmix")
	if err != nil || len(multi) != 2 {
		t.Fatalf("multi-term filter: got %d workloads, err %v", len(multi), err)
	}
	// "all" keeps its whole-corpus meaning even inside a term list.
	allTerm, err := Match("all,fp")
	if err != nil || len(allTerm) != len(Corpus()) {
		t.Fatalf("'all' in a term list: got %d workloads, err %v", len(allTerm), err)
	}
	if _, err := Match("no-such-workload"); err == nil ||
		!strings.Contains(err.Error(), "matches nothing") {
		t.Fatalf("bad filter: err %v", err)
	}
}

// TestSuiteWorkerInvariance proves the pool size affects wall time only:
// 1 worker and 8 workers produce byte-identical reports.
func TestSuiteWorkerInvariance(t *testing.T) {
	seq, err := Run(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Fatal("suite report depends on worker count")
	}
}

func TestDiffMetrics(t *testing.T) {
	w, _ := ByName("bitmix")
	base, err := RunOne(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffMetrics(base, base); len(diffs) != 0 {
		t.Fatalf("self-diff not empty: %v", diffs)
	}
	drifted := base
	drifted.Cycles++
	drifted.IPC += 0.001
	drifted.FUUtil = map[string]float64{"FX0": 1}
	diffs := DiffMetrics(base, drifted)
	if len(diffs) < 3 {
		t.Fatalf("drift not detected: %v", diffs)
	}
	table := MarkdownDiffTable([]WorkloadDiff{{Workload: w.Name, Fields: diffs}})
	if !strings.Contains(table, ":x: drift") || !strings.Contains(table, "`cycles`") {
		t.Fatalf("markdown table missing drift rows:\n%s", table)
	}
}

func TestReportTable(t *testing.T) {
	rep, err := Run(Options{Filter: "bitmix"})
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Table()
	for _, want := range []string{"bitmix", "IPC", "MPKI", rep.ConfigFingerprint} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}
