package workload

import (
	"strings"
	"testing"
)

// TestLongStreamOutOfCorpus pins the corpus separation: the long-run
// scaling workloads never enter Corpus(), so moving the pass-count knob
// (or the bench variant) can never require re-baselining a golden row.
func TestLongStreamOutOfCorpus(t *testing.T) {
	for _, w := range Corpus() {
		if strings.HasPrefix(w.Name, "long-stream") {
			t.Errorf("long-run workload %q leaked into the corpus", w.Name)
		}
	}
	if _, ok := ByName(LongStream(4).Name); ok {
		t.Error("ByName resolves a long-run workload from the corpus")
	}
}

// TestLongStreamScales: the pass knob scales committed work linearly and
// the a0 checksum is pass-count independent (same final ramp every pass).
func TestLongStreamScales(t *testing.T) {
	var committed [2]uint64
	for i, passes := range []uint64{4, 12} {
		w := LongStream(passes)
		m, err := NewMachine(nil, w)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(w.MaxCycles)
		if !m.Halted() {
			t.Fatalf("passes=%d did not halt in %d cycles", passes, w.MaxCycles)
		}
		a0, err := m.IntReg("a0")
		if err != nil {
			t.Fatal(err)
		}
		if a0 != 2047 {
			t.Errorf("passes=%d: a0 = %d, want 2047 (ramp tail)", passes, a0)
		}
		committed[i] = m.Committed()
	}
	// 4 → 12 passes triples the copy work; seed + checksum overhead is a
	// constant few thousand instructions on top.
	perPass := (committed[1] - committed[0]) / 8
	if perPass < 14_000 || perPass > 18_000 {
		t.Errorf("copy pass costs %d instructions, want ~16k (kernel drifted?)", perPass)
	}
	// LongStream(4) is the corpus memcpy-stream program — same committed
	// count pins that the generator reproduces the golden kernel exactly.
	mw, ok := ByName("memcpy-stream")
	if !ok {
		t.Fatal("memcpy-stream missing from corpus")
	}
	mm, err := NewMachine(nil, mw)
	if err != nil {
		t.Fatal(err)
	}
	mm.Run(mw.MaxCycles)
	if committed[0] != mm.Committed() {
		t.Errorf("LongStream(4) commits %d, memcpy-stream %d — generator drifted from the golden kernel",
			committed[0], mm.Committed())
	}
}
