package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"riscvsim/internal/config"
	"riscvsim/sim"
)

// Options configures a suite run.
type Options struct {
	// Config is the architecture to measure; nil selects the default
	// 2-wide preset. The configuration is treated as read-only.
	Config *config.CPU
	// Filter selects a corpus subset (Match grammar); "" runs everything.
	Filter string
	// Workers bounds the worker pool; 0 uses GOMAXPROCS. Workloads are
	// independent machines, so parallel execution changes wall time
	// only, never a metric.
	Workers int
}

// NewMachine builds the simulation machine for one workload on the given
// architecture (nil = default). Exposed so tests can drive a workload
// manually — e.g. checkpoint it mid-run — with suite-identical setup.
func NewMachine(cfg *config.CPU, w Workload) (*sim.Machine, error) {
	if cfg == nil {
		cfg = config.Default()
	}
	m, err := sim.NewFromAsm(cfg, w.Source, w.Entry)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return m, nil
}

// RunOne executes a single workload to completion and reduces it to its
// metrics row.
func RunOne(cfg *config.CPU, w Workload) (Metrics, error) {
	m, err := NewMachine(cfg, w)
	if err != nil {
		return Metrics{}, err
	}
	m.Run(w.MaxCycles)
	return FromReport(w, m.Report()), nil
}

// Run executes the selected corpus against the architecture and returns
// one metrics row per workload, in corpus order. Execution is fanned out
// over a bounded worker pool; results are deterministic regardless of
// worker count or completion order.
func Run(opts Options) (*Report, error) {
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Default()
	}
	selected, err := Match(opts.Filter)
	if err != nil {
		return nil, err
	}
	fp, err := cfg.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("workload: fingerprinting configuration: %w", err)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	rows := make([]Metrics, len(selected))
	errs := make([]error, len(selected))
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				rows[i], errs[i] = RunOne(cfg, selected[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Report{Architecture: cfg.Name, ConfigFingerprint: fp, Workloads: rows}, nil
}
