package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Golden is one checked-in baseline file: the metrics row a workload
// produced on a named architecture, plus the configuration fingerprint it
// was generated under. Files live at testdata/golden/<workload>.json and
// regenerate via `go generate ./internal/workload` (gengolden -update).
type Golden struct {
	Architecture      string  `json:"architecture"`
	ConfigFingerprint string  `json:"configFingerprint"`
	Metrics           Metrics `json:"metrics"`
}

// GoldenPath returns the baseline file path for a workload.
func GoldenPath(dir, name string) string {
	return filepath.Join(dir, name+".json")
}

// WriteGoldens writes one baseline file per report row into dir,
// creating it if needed.
func WriteGoldens(dir string, r *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, m := range r.Workloads {
		g := Golden{Architecture: r.Architecture, ConfigFingerprint: r.ConfigFingerprint, Metrics: m}
		data, err := json.MarshalIndent(&g, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(GoldenPath(dir, m.Workload), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// ReadGolden loads one baseline file.
func ReadGolden(dir, name string) (*Golden, error) {
	data, err := os.ReadFile(GoldenPath(dir, name))
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("golden %s: %w", name, err)
	}
	return &g, nil
}

// WorkloadDiff is the comparison outcome for one workload: either a
// structural problem (Problem != "") or the list of drifted fields
// (empty = exact match).
type WorkloadDiff struct {
	Workload string      `json:"workload"`
	Problem  string      `json:"problem,omitempty"`
	Fields   []FieldDiff `json:"fields,omitempty"`
}

// Clean reports an exact match.
func (d WorkloadDiff) Clean() bool { return d.Problem == "" && len(d.Fields) == 0 }

// CompareGoldens checks every report row against its baseline file and
// returns one WorkloadDiff per row (clean or not). A missing file, a
// fingerprint mismatch (the architecture itself changed) and metric
// drift are distinguished so the failure message tells the reader what
// actually happened.
func CompareGoldens(dir string, r *Report) []WorkloadDiff {
	diffs := make([]WorkloadDiff, 0, len(r.Workloads))
	for _, m := range r.Workloads {
		d := WorkloadDiff{Workload: m.Workload}
		g, err := ReadGolden(dir, m.Workload)
		switch {
		case os.IsNotExist(err):
			d.Problem = "no golden file — new workload? regenerate with go generate ./internal/workload"
		case err != nil:
			d.Problem = err.Error()
		case g.ConfigFingerprint != r.ConfigFingerprint:
			d.Problem = fmt.Sprintf(
				"config fingerprint %s != golden %s — the default architecture changed; regenerate with go generate ./internal/workload",
				r.ConfigFingerprint, g.ConfigFingerprint)
		default:
			d.Fields = DiffMetrics(g.Metrics, m)
		}
		diffs = append(diffs, d)
	}
	return diffs
}

// AnyDrift reports whether any workload diverged.
func AnyDrift(diffs []WorkloadDiff) bool {
	for _, d := range diffs {
		if !d.Clean() {
			return true
		}
	}
	return false
}

// MarkdownDiffTable renders a comparison as a GitHub-flavored markdown
// table, one row per workload — the golden-metrics CI gate appends it to
// the step summary on every run, drifted or not.
func MarkdownDiffTable(diffs []WorkloadDiff) string {
	var sb strings.Builder
	sb.WriteString("| workload | status | drift |\n|---|---|---|\n")
	for _, d := range diffs {
		switch {
		case d.Problem != "":
			fmt.Fprintf(&sb, "| %s | :x: error | %s |\n", d.Workload, d.Problem)
		case len(d.Fields) > 0:
			parts := make([]string, len(d.Fields))
			for i, f := range d.Fields {
				parts[i] = fmt.Sprintf("`%s` %s → %s", f.Field, f.Want, f.Got)
			}
			fmt.Fprintf(&sb, "| %s | :x: drift | %s |\n", d.Workload, strings.Join(parts, "; "))
		default:
			fmt.Fprintf(&sb, "| %s | :white_check_mark: exact | |\n", d.Workload)
		}
	}
	return sb.String()
}
