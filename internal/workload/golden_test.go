package workload

import (
	"flag"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics baselines")

// TestSuiteGolden is the metrics-drift gate: the full corpus, run on the
// default architecture, must reproduce the checked-in baselines exactly.
// The core is deterministic, so any difference means the simulator's
// architectural behavior changed — either a bug, or an intentional change
// that must re-baseline via `go test ./internal/workload -run
// TestSuiteGolden -update` (or `go generate ./internal/workload`).
func TestSuiteGolden(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	rep, err := Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := WriteGoldens(dir, rep); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %d baselines (config %s)", len(rep.Workloads), rep.ConfigFingerprint)
		return
	}
	diffs := CompareGoldens(dir, rep)
	if len(diffs) != len(rep.Workloads) {
		t.Fatalf("got %d diff rows for %d workloads", len(diffs), len(rep.Workloads))
	}
	for _, d := range diffs {
		if d.Problem != "" {
			t.Errorf("%s: %s", d.Workload, d.Problem)
			continue
		}
		for _, f := range d.Fields {
			t.Errorf("%s: %s drifted: golden %s, got %s", d.Workload, f.Field, f.Want, f.Got)
		}
	}
	if t.Failed() {
		t.Log("if this change is intentional, regenerate: go generate ./internal/workload")
	}
}
