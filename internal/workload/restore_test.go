package workload

import (
	"bytes"
	"encoding/json"
	"testing"

	"riscvsim/sim"
)

// TestSuiteCheckpointRestoreDeterminism proves the suite's metrics are
// checkpoint-transparent: for every corpus workload, running to the
// midpoint, checkpointing, restoring and finishing yields a metrics row
// byte-identical to an uninterrupted run. Metric reduction therefore
// composes with the checkpoint subsystem — a suite result is trustworthy
// no matter how the run was scheduled.
func TestSuiteCheckpointRestoreDeterminism(t *testing.T) {
	for _, w := range Corpus() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			// Uninterrupted reference run.
			ref, err := NewMachine(nil, w)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(w.MaxCycles)
			if !ref.Halted() {
				t.Fatalf("reference run hit the %d-cycle bound", w.MaxCycles)
			}
			want := FromReport(w, ref.Report())

			// Interrupted run: midpoint checkpoint, restore, finish.
			half, err := NewMachine(nil, w)
			if err != nil {
				t.Fatal(err)
			}
			half.Run(ref.Cycle() / 2)
			var buf bytes.Buffer
			if err := half.Checkpoint(&buf); err != nil {
				t.Fatalf("checkpoint at cycle %d: %v", half.Cycle(), err)
			}
			restored, err := sim.Restore(&buf)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			restored.Run(w.MaxCycles)
			got := FromReport(w, restored.Report())

			wantJSON, _ := json.Marshal(want)
			gotJSON, _ := json.Marshal(got)
			if !bytes.Equal(wantJSON, gotJSON) {
				for _, f := range DiffMetrics(want, got) {
					t.Errorf("%s: uninterrupted %s, restored %s", f.Field, f.Want, f.Got)
				}
				t.Fatalf("metrics diverge after checkpoint/restore at cycle %d", ref.Cycle()/2)
			}
		})
	}
}
