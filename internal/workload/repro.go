package workload

import (
	"embed"
	"sort"
	"strings"
)

// Co-simulation reproducers: minimal divergent programs shrunk by the
// fuzzer (internal/fuzz) and checked into testdata/repro/. They are a
// regression suite, not a benchmark: Repros() keeps them out of
// Corpus(), so the golden-metrics gate never sees them (no re-baseline
// when one lands), while repro_test.go re-proves on every run that both
// semantic engines agree on each one. docs/fuzzing.md documents how a
// reproducer gets here.

//go:embed testdata/repro
var reproFS embed.FS

// reproMaxCycles bounds a reproducer run. Shrunk reproducers are tiny;
// the bound exists only to turn a regression into a halt-reason failure
// instead of a hang.
const reproMaxCycles = 10_000_000

// Repros returns the checked-in co-simulation reproducers as workloads,
// sorted by file name. The slice is rebuilt per call; callers may modify
// it freely.
func Repros() []Workload {
	entries, err := reproFS.ReadDir("testdata/repro")
	if err != nil {
		// The directory is embedded at compile time; failure to read it
		// means an empty set, not a runtime condition to handle.
		return nil
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".s") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	out := make([]Workload, 0, len(names))
	for _, name := range names {
		data, err := reproFS.ReadFile("testdata/repro/" + name)
		if err != nil {
			continue
		}
		out = append(out, Workload{
			Name:      "repro/" + strings.TrimSuffix(name, ".s"),
			Profile:   reproProfile(string(data)),
			Tags:      []string{"repro", "cosim"},
			Source:    string(data),
			MaxCycles: reproMaxCycles,
		})
	}
	return out
}

// reproProfile extracts the divergence summary from a reproducer's
// header comments (the "# divergence: ..." line the fuzzer writes).
func reproProfile(src string) string {
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(t, "# divergence:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "co-simulation divergence reproducer"
}
