package workload

import (
	"testing"

	"riscvsim/sim"
)

// TestFastForwardEquivalence is the fast-forward equivalence gate (CI job
// fast-forward-equivalence): every corpus workload, run end to end in
// fast-forward functional mode, must reach the exact architectural state
// of the detailed run — same a0 checksum, same committed-instruction
// count, same halt story, same ArchHash over all registers and memory.
func TestFastForwardEquivalence(t *testing.T) {
	for _, w := range Corpus() {
		t.Run(w.Name, func(t *testing.T) {
			det, err := NewMachine(nil, w)
			if err != nil {
				t.Fatal(err)
			}
			det.Run(w.MaxCycles)
			if !det.Halted() {
				t.Fatalf("detailed run did not halt in %d cycles", w.MaxCycles)
			}

			ff, err := NewMachine(nil, w)
			if err != nil {
				t.Fatal(err)
			}
			ff.SetEngineMode(sim.EngineFastForward)
			ff.Run(w.MaxCycles)
			if !ff.Halted() {
				t.Fatalf("fast-forward run did not halt in %d cycles", w.MaxCycles)
			}

			if got, want := ff.HaltReason(), det.HaltReason(); got != want {
				t.Errorf("halt reason: fast-forward %q, detailed %q", got, want)
			}
			if got, want := ff.Committed(), det.Committed(); got != want {
				t.Errorf("committed instructions: fast-forward %d, detailed %d", got, want)
			}
			ffA0, err := ff.IntReg("a0")
			if err != nil {
				t.Fatal(err)
			}
			detA0, err := det.IntReg("a0")
			if err != nil {
				t.Fatal(err)
			}
			if ffA0 != detA0 {
				t.Errorf("a0 checksum: fast-forward %d, detailed %d", ffA0, detA0)
			}
			if got, want := ff.ArchStateHash(), det.ArchStateHash(); got != want {
				t.Errorf("ArchHash: fast-forward %#x, detailed %#x", got, want)
			}
			// Fast-forward counts one cycle per committed instruction, so
			// its simulated cycle count equals the committed count (plus
			// any drain prefix — none on a from-zero run).
			if got, want := ff.Cycle(), ff.Committed(); got != want {
				t.Errorf("fast-forward cycles %d != committed %d (1 instr = 1 cycle convention)", got, want)
			}
		})
	}
}
