// Package workload is the simulator's embedded benchmark corpus: a fixed
// set of small, self-contained RISC-V programs, each chosen to stress one
// microarchitectural behavior (branch prediction, pointer chasing,
// streaming bandwidth, FP latency, store pressure, cache conflicts...),
// plus a Suite runner that executes the corpus against an architecture
// and reduces every run to a typed metrics row.
//
// The corpus turns the simulator into a measuring instrument: the core is
// deterministic, so for a fixed architecture every metric is exact, and
// the golden baselines under testdata/golden/ make any drift — a changed
// IPC, one extra mispredict — a hard CI signal rather than noise
// (docs/workloads.md).
package workload

//go:generate go run riscvsim/internal/workload/gengolden -update

import (
	"fmt"
	"sort"
	"strings"
)

// Workload is one corpus entry: a program plus its behavioral profile.
type Workload struct {
	// Name is the stable identifier (golden file name, filter key).
	Name string `json:"name"`
	// Profile is a one-line behavioral characterization: what the
	// program stresses and what metric it is expected to move.
	Profile string `json:"profile"`
	// Tags classify the behavior for filtering ("branch-heavy",
	// "memory-bound", "fp", ...).
	Tags []string `json:"tags"`
	// Source is the RV32IMF assembly text; Entry its entry label.
	Source string `json:"-"`
	Entry  string `json:"-"`
	// MaxCycles bounds the run. Every corpus program halts far below
	// its bound on every preset; hitting the bound is itself a
	// regression (the suite reports haltReason "cycle limit").
	MaxCycles uint64 `json:"-"`
}

// corpus is the embedded workload set, in canonical (report) order.
var corpus = []Workload{
	{
		Name:      "sort-insertion",
		Profile:   "insertion sort of 96 LCG words; data-dependent inner loop makes the backward branch hard to predict (branch MPKI)",
		Tags:      []string{"branch-heavy", "integer", "sort"},
		Source:    srcSortInsertion,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
	{
		Name:      "binsearch",
		Profile:   "1024 binary searches over a sorted table; ~50% taken compare branches the predictor cannot learn",
		Tags:      []string{"branch-heavy", "integer", "search"},
		Source:    srcBinSearch,
		Entry:     "main",
		MaxCycles: 2_000_000,
	},
	{
		Name:      "list-walk",
		Profile:   "serial pointer chase through a shuffled 32 KiB linked list; load-to-load dependence plus capacity misses bound IPC",
		Tags:      []string{"memory-bound", "pointer-chasing", "latency"},
		Source:    srcListWalk,
		Entry:     "main",
		MaxCycles: 4_000_000,
	},
	{
		Name:      "memcpy-stream",
		Profile:   "word-wise 8 KiB copy, 4 passes; balanced unit-stride load/store streaming at L1 capacity",
		Tags:      []string{"memory-bound", "streaming", "bandwidth"},
		Source:    srcMemcpyStream,
		Entry:     "main",
		MaxCycles: 2_000_000,
	},
	{
		Name:      "axpy-stream",
		Profile:   "single-precision y = a*x + y over 512 elements, 8 passes; FP multiply+add streaming (FP unit utilization)",
		Tags:      []string{"fp", "streaming", "bandwidth"},
		Source:    srcAxpyStream,
		Entry:     "main",
		MaxCycles: 2_000_000,
	},
	{
		Name:      "matmul-blocked",
		Profile:   "16x16 integer matmul, inner loop unrolled x4; dense mul pressure with regular reuse",
		Tags:      []string{"integer", "compute", "ilp"},
		Source:    srcMatmulBlocked,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
	{
		Name:      "fib-recursive",
		Profile:   "naive recursive fib(14) with an sp-managed stack; call/return chains and return-target prediction",
		Tags:      []string{"branch-heavy", "recursion", "stack"},
		Source:    srcFibRecursive,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
	{
		Name:      "fp-horner",
		Profile:   "degree-12 Horner polynomial over 128 points; one serial fmul/fadd chain per point exposes FP latency",
		Tags:      []string{"fp", "latency", "compute"},
		Source:    srcFPHorner,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
	{
		Name:      "memset-store",
		Profile:   "16 KiB pattern fill, 4 passes; store-buffer and write-back pressure with almost no loads",
		Tags:      []string{"memory-bound", "store-bound", "streaming"},
		Source:    srcMemsetStore,
		Entry:     "main",
		MaxCycles: 2_000_000,
	},
	{
		Name:      "stride-thrash",
		Profile:   "4 KiB-stride walk mapping 8 lines onto one set of the default 4-way L1; pure conflict-miss torture",
		Tags:      []string{"memory-bound", "cache-thrash", "latency"},
		Source:    srcStrideThrash,
		Entry:     "main",
		MaxCycles: 4_000_000,
	},
	{
		Name:      "bitmix",
		Profile:   "register-only xorshift mixing, 4096 rounds; no memory traffic — the fetch/rename/commit width IPC ceiling",
		Tags:      []string{"integer", "compute", "ilp"},
		Source:    srcBitMix,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
	{
		Name:      "gcd-euclid",
		Profile:   "Euclid gcd by remainder over 64 LCG pairs; 16-cycle rem serializes on the single M-capable FX unit",
		Tags:      []string{"integer", "long-latency", "divider"},
		Source:    srcGCDEuclid,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
	{
		Name:      "vcall-dispatch",
		Profile:   "virtual dispatch through interleaved vtables, 32 passes of jalr calls; BTB and indirect-target resolution",
		Tags:      []string{"branch-heavy", "indirect", "btb"},
		Source:    srcVcallDispatch,
		Entry:     "main",
		MaxCycles: 1_000_000,
	},
}

// Corpus returns the embedded workloads in canonical order. The slice is
// a copy; callers may reorder or filter it freely.
func Corpus() []Workload {
	out := make([]Workload, len(corpus))
	copy(out, corpus)
	return out
}

// Names returns the corpus workload names in canonical order.
func Names() []string {
	names := make([]string, len(corpus))
	for i, w := range corpus {
		names[i] = w.Name
	}
	return names
}

// ByName looks a workload up by its exact name.
func ByName(name string) (Workload, bool) {
	for _, w := range corpus {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// Match selects workloads by filter: a comma-separated list of terms,
// each matching a workload whose name contains the term or that carries
// the term as an exact tag. The empty filter selects the whole corpus.
// Canonical order is preserved; an error names the first term matching
// nothing.
func Match(filter string) ([]Workload, error) {
	filter = strings.TrimSpace(filter)
	if filter == "" || filter == "all" {
		return Corpus(), nil
	}
	selected := make(map[string]bool)
	for _, term := range strings.Split(filter, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		// "all" keeps its meaning inside a list too (it would otherwise
		// substring-match only vcall-dispatch).
		if term == "all" {
			return Corpus(), nil
		}
		hit := false
		for _, w := range corpus {
			if workloadMatches(w, term) {
				selected[w.Name] = true
				hit = true
			}
		}
		if !hit {
			return nil, fmt.Errorf("workload: filter term %q matches nothing (workloads: %s)",
				term, strings.Join(Names(), ", "))
		}
	}
	var out []Workload
	for _, w := range corpus {
		if selected[w.Name] {
			out = append(out, w)
		}
	}
	return out, nil
}

// workloadMatches reports whether one filter term selects w.
func workloadMatches(w Workload, term string) bool {
	if strings.Contains(w.Name, term) {
		return true
	}
	for _, tag := range w.Tags {
		if tag == term {
			return true
		}
	}
	return false
}

// Tags returns every tag used in the corpus, sorted, for help output.
func Tags() []string {
	set := make(map[string]bool)
	for _, w := range corpus {
		for _, t := range w.Tags {
			set[t] = true
		}
	}
	tags := make([]string, 0, len(set))
	for t := range set {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}
