package workload

import (
	"testing"

	"riscvsim/sim"
)

// TestParallelEquivalence is the parallel-equivalence gate (CI job
// parallel-equivalence): every corpus workload, run time-parallel at
// K ∈ {2, 4}, must end in the exact architectural state of the serial
// detailed run — same ArchHash over all registers and memory, same a0
// checksum, same committed-instruction count, same halt story — and the
// stitched report must telescope to the serial committed count. Short
// workloads may degenerate to fewer workers (or to the serial fallback);
// the equality contract holds regardless of how the run was split.
func TestParallelEquivalence(t *testing.T) {
	for _, w := range Corpus() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			ref, err := NewMachine(nil, w)
			if err != nil {
				t.Fatal(err)
			}
			ref.Run(w.MaxCycles)
			if !ref.Halted() {
				t.Fatalf("serial run did not halt in %d cycles", w.MaxCycles)
			}
			refA0, err := ref.IntReg("a0")
			if err != nil {
				t.Fatal(err)
			}

			for _, k := range []int{2, 4} {
				m, err := NewMachine(nil, w)
				if err != nil {
					t.Fatal(err)
				}
				res, err := m.RunParallel(k, sim.ParallelOptions{
					WarmupInstructions: 256,
					MaxCycles:          w.MaxCycles,
				})
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if !m.Halted() {
					t.Fatalf("k=%d: machine not halted", k)
				}
				if got, want := m.ArchStateHash(), ref.ArchStateHash(); got != want {
					t.Errorf("k=%d: ArchHash %#x, want %#x (workers=%d healed=%d)",
						k, got, want, res.Workers, res.Healed)
				}
				a0, err := m.IntReg("a0")
				if err != nil {
					t.Fatal(err)
				}
				if a0 != refA0 {
					t.Errorf("k=%d: a0 = %d, want %d", k, a0, refA0)
				}
				if got, want := m.Committed(), ref.Committed(); got != want {
					t.Errorf("k=%d: committed %d, want %d", k, got, want)
				}
				if got, want := m.HaltReason(), ref.HaltReason(); got != want {
					t.Errorf("k=%d: halt reason %q, want %q", k, got, want)
				}
				if got, want := res.Report.Committed, ref.Committed(); got != want {
					t.Errorf("k=%d: stitched committed %d, want %d", k, got, want)
				}
			}
		})
	}
}
