package workload

import (
	"testing"

	"riscvsim/internal/config"
	"riscvsim/internal/stats"
)

// TestSplitMergeEqualsSerial: for every corpus workload and several split
// boundaries, slicing the run's statistics at the boundary (Diff) and
// stitching the pieces back (Merge) reproduces the serial run's metrics
// row exactly — every counter and every derived rate, because rates are
// recomputed from exactly-summed integers. This is the identity
// time-parallel simulation relies on to report serial-equivalent
// statistics from per-interval deltas.
func TestSplitMergeEqualsSerial(t *testing.T) {
	cfg := config.Default()
	for _, w := range Corpus() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m, err := NewMachine(cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			m.Run(w.MaxCycles)
			if !m.Halted() {
				t.Fatalf("did not halt in %d cycles", w.MaxCycles)
			}
			full := m.Report()
			total := m.Cycle()
			serialRow := FromReport(w, full)

			for _, frac := range []uint64{1, 4, 2, 10} { // 100/frac %
				boundary := total / frac
				mm, err := NewMachine(cfg, w)
				if err != nil {
					t.Fatal(err)
				}
				mm.StepN(boundary)
				prefix := mm.Report()
				mm.Run(w.MaxCycles)
				end := mm.Report()
				merged := stats.Merge(prefix, stats.Diff(end, prefix))
				row := FromReport(w, merged)
				if diffs := DiffMetrics(serialRow, row); len(diffs) != 0 {
					t.Errorf("split at %d/%d cycles: merged row drifts: %+v", boundary, total, diffs)
				}
			}
		})
	}
}

// TestThreeWayMergeAssociative: three real intervals of one run fold to
// the same row regardless of association order.
func TestThreeWayMergeAssociative(t *testing.T) {
	cfg := config.Default()
	w, ok := ByName("memcpy-stream")
	if !ok {
		t.Fatal("memcpy-stream missing from corpus")
	}
	m, err := NewMachine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(w.MaxCycles)
	total := m.Cycle()

	mm, err := NewMachine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	mm.StepN(total / 4)
	r1 := mm.Report()
	mm.StepN(total/2 - total/4)
	r2 := mm.Report()
	mm.Run(w.MaxCycles)
	full := mm.Report()

	i1, i2, i3 := r1, stats.Diff(r2, r1), stats.Diff(full, r2)
	left := stats.Merge(stats.Merge(i1, i2), i3)
	right := stats.Merge(i1, stats.Merge(i2, i3))
	if diffs := DiffMetrics(FromReport(w, left), FromReport(w, right)); len(diffs) != 0 {
		t.Errorf("association order changes the row: %+v", diffs)
	}
	if diffs := DiffMetrics(FromReport(w, full), FromReport(w, left)); len(diffs) != 0 {
		t.Errorf("three-way merge drifts from serial: %+v", diffs)
	}
}

// TestMetricsMergeRow: the row-level Merge sums counters exactly and
// recomputes rates from them; approximate fields (documented on Merge)
// stay within round6 noise of the serial row.
func TestMetricsMergeRow(t *testing.T) {
	cfg := config.Default()
	w, ok := ByName("axpy-stream")
	if !ok {
		t.Fatal("axpy-stream missing from corpus")
	}
	m, err := NewMachine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(w.MaxCycles)
	full := m.Report()
	total := m.Cycle()
	serialRow := FromReport(w, full)

	mm, err := NewMachine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	mm.StepN(total / 3)
	prefix := mm.Report()
	mm.Run(w.MaxCycles)
	end := mm.Report()

	rowA := FromReport(w, prefix)
	rowB := FromReport(w, stats.Diff(end, prefix))
	got := rowA.Merge(rowB)

	// Counters are exact.
	if got.Cycles != serialRow.Cycles || got.Committed != serialRow.Committed ||
		got.Fetched != serialRow.Fetched || got.Squashed != serialRow.Squashed ||
		got.CacheAccesses != serialRow.CacheAccesses ||
		got.ROBFlushes != serialRow.ROBFlushes {
		t.Errorf("row counters drift: got %+v want %+v", got, serialRow)
	}
	// Rates recomputed from exact counters are exact.
	if got.IPC != serialRow.IPC || got.CPI != serialRow.CPI || got.BranchMPKI != serialRow.BranchMPKI {
		t.Errorf("row rates drift: ipc %v/%v cpi %v/%v mpki %v/%v",
			got.IPC, serialRow.IPC, got.CPI, serialRow.CPI, got.BranchMPKI, serialRow.BranchMPKI)
	}
	// Weight-averaged fields are approximate to round6 noise.
	closeEnough := func(a, b float64) bool { d := a - b; return d < 2e-6 && d > -2e-6 }
	if !closeEnough(got.CacheMissRate, serialRow.CacheMissRate) {
		t.Errorf("cacheMissRate %v, want ~%v", got.CacheMissRate, serialRow.CacheMissRate)
	}
	for name, pct := range serialRow.FUUtil {
		if !closeEnough(got.FUUtil[name], pct) {
			t.Errorf("fuUtil[%s] %v, want ~%v", name, got.FUUtil[name], pct)
		}
	}
	if got.HaltReason != serialRow.HaltReason {
		t.Errorf("haltReason %q, want %q", got.HaltReason, serialRow.HaltReason)
	}
}
