package workload

import "fmt"

// Long-run scaling workloads: the corpus programs are deliberately small
// (tens of thousands of cycles) so the golden-metrics gate stays fast;
// time-parallel simulation and its benchmarks need runs long enough that
// a multi-thousand-instruction warm-up prefix is measurement noise.
// LongStream parameterizes the memcpy-stream kernel with a pass-count
// knob so arbitrarily long runs exist WITHOUT touching the 13 golden
// corpus rows: like Repros(), LongStream workloads stay out of Corpus(),
// so no golden baseline ever needs re-generating when the knob moves
// (workload_test.go pins the separation).

// LongStreamBenchPasses sizes LongStreamBench at ≥50M detailed cycles:
// each pass of the 2048-word copy loop costs ~9.7k cycles on the default
// preset, so 6000 passes lands near 58M — long enough that interval
// warm-up (~20k instructions per worker) is far below measurement noise.
const LongStreamBenchPasses = 6000

// longStreamCyclesPerPass bounds MaxCycles with generous headroom: the
// default preset needs ~9.7k cycles per pass; doubling covers any preset
// the suite runs.
const longStreamCyclesPerPass = 20_000

// LongStream returns the streaming-copy workload scaled to the given
// number of 8 KiB copy passes. The kernel is memcpy-stream's: an index
// ramp seeded once, then passes × 2048 word copies, then a destination
// checksum into a0 — store-heavy so coherence (store buffer, dirty
// lines) is load-bearing at time-parallel interval boundaries. The a0
// checksum is pass-count independent (the destination holds the same
// ramp after every pass), so any pass count validates against the same
// final value.
func LongStream(passes uint64) Workload {
	if passes == 0 {
		passes = 1
	}
	return Workload{
		Name: fmt.Sprintf("long-stream-%d", passes),
		Profile: fmt.Sprintf(
			"memcpy-stream kernel scaled to %d passes (~%dk cycles); long-run scaling workload for time-parallel simulation",
			passes, passes*10),
		Tags:      []string{"long-run", "streaming", "memory-bound"},
		Source:    longStreamSource(passes),
		Entry:     "main",
		MaxCycles: passes*longStreamCyclesPerPass + 1_000_000,
	}
}

// LongStreamBench is the canonical ≥50M-cycle benchmarking variant
// (BenchmarkParallel, CI perf-diff).
func LongStreamBench() Workload {
	return LongStream(LongStreamBenchPasses)
}

func longStreamSource(passes uint64) string {
	return fmt.Sprintf(`
main:
  # Seed the source buffer with an index ramp.
  la   t0, src
  li   t1, 2048             # words
  li   t2, 0
seed:
  slli t3, t2, 2
  add  t3, t0, t3
  sw   t2, 0(t3)
  addi t2, t2, 1
  blt  t2, t1, seed

  li   s0, 0                # pass
  li   s1, %d
pass:
  la   t0, src
  la   t4, dst
  li   t2, 0
copy:
  slli t3, t2, 2
  add  t5, t0, t3
  lw   t6, 0(t5)
  add  t5, t4, t3
  sw   t6, 0(t5)
  addi t2, t2, 1
  blt  t2, t1, copy
  addi s0, s0, 1
  blt  s0, s1, pass

  # Checksum the destination tail.
  la   t4, dst
  lw   a0, 8188(t4)
  ret

.data
.align 6
src: .zero 8192
dst: .zero 8192
`, passes)
}
