// Command gengolden maintains the workload suite's golden baselines
// (internal/workload/testdata/golden/*.json).
//
//	gengolden -update   regenerate every baseline from the current build
//	gengolden -check    compare and print a markdown diff table; exit 1 on drift
//
// With neither flag it checks (the safe default). The golden directory is
// located relative to the working directory, so the tool works both via
// `go generate ./internal/workload` (cwd = package dir) and from the
// repository root (CI); -dir overrides.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"riscvsim/internal/workload"
)

func main() {
	update := flag.Bool("update", false, "regenerate the golden files from the current build")
	check := flag.Bool("check", false, "compare against the golden files (default when -update is absent)")
	dir := flag.String("dir", "", "golden directory (default: auto-locate testdata/golden)")
	flag.Parse()
	if *update && *check {
		fatal("-update and -check are mutually exclusive")
	}

	goldenDir := *dir
	if goldenDir == "" {
		goldenDir = locateGoldenDir()
	}

	rep, err := workload.Run(workload.Options{})
	if err != nil {
		fatal("running suite: %v", err)
	}

	if *update {
		if err := workload.WriteGoldens(goldenDir, rep); err != nil {
			fatal("writing goldens: %v", err)
		}
		fmt.Printf("gengolden: wrote %d baselines to %s (config %s)\n",
			len(rep.Workloads), goldenDir, rep.ConfigFingerprint)
		return
	}

	diffs := workload.CompareGoldens(goldenDir, rep)
	fmt.Println("### Golden workload metrics")
	fmt.Println()
	fmt.Print(workload.MarkdownDiffTable(diffs))
	if workload.AnyDrift(diffs) {
		fmt.Fprintln(os.Stderr, "gengolden: metric drift against checked-in baselines (see table)")
		os.Exit(1)
	}
}

// locateGoldenDir finds testdata/golden from either the package directory
// (go generate, marked by workload.go in the cwd) or the repository root
// (CI, marked by the internal/workload directory).
func locateGoldenDir() string {
	if _, err := os.Stat("workload.go"); err == nil {
		return filepath.Join("testdata", "golden")
	}
	if st, err := os.Stat(filepath.Join("internal", "workload")); err == nil && st.IsDir() {
		return filepath.Join("internal", "workload", "testdata", "golden")
	}
	return filepath.Join("testdata", "golden")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gengolden: "+format+"\n", args...)
	os.Exit(1)
}
