package workload

// The corpus programs. Every program is self-contained RV32IMF assembly in
// the simulator's dialect, enters at "main", leaves a checksum in a0 and
// ends with ret (returning from the entry frame halts the simulation).
// Inputs are generated in-program (LCG/xorshift seeds, index ramps) so a
// run needs no memory fills and is bit-for-bit reproducible.
//
// Each program is sized to finish in well under a second of host time on
// the default core — large enough that steady-state behavior dominates
// (the suite measures architecture, not startup), small enough that the
// whole corpus stays cheap in CI.

// srcSortInsertion: insertion sort over 96 LCG-generated words. The inner
// while loop's trip count is data-dependent, so its backward branch is
// hard to predict — the classic branch-MPKI workload.
const srcSortInsertion = `
main:
  # Fill arr[0..95] with LCG values: x = x*1103515245 + 12345.
  la   t0, arr
  li   t1, 96
  li   t2, 12345            # x
  li   t3, 1103515245
  li   t4, 0
fill:
  mul  t2, t2, t3
  addi t2, t2, 12345
  slli t5, t4, 2
  add  t5, t0, t5
  srai t6, t2, 8            # spread the useful bits
  sw   t6, 0(t5)
  addi t4, t4, 1
  blt  t4, t1, fill

  # Insertion sort.
  li   s0, 1                # i
sort_outer:
  slli t5, s0, 2
  add  t5, t0, t5
  lw   s1, 0(t5)            # key
  addi s2, s0, -1           # j
sort_inner:
  bltz s2, sort_place
  slli t5, s2, 2
  add  t5, t0, t5
  lw   t6, 0(t5)
  ble  t6, s1, sort_place
  sw   t6, 4(t5)
  addi s2, s2, -1
  j    sort_inner
sort_place:
  addi t6, s2, 1
  slli t6, t6, 2
  add  t6, t0, t6
  sw   s1, 0(t6)
  addi s0, s0, 1
  blt  s0, t1, sort_outer

  # Checksum: alternating sum of the sorted array.
  li   a0, 0
  li   t4, 0
cksum:
  slli t5, t4, 2
  add  t5, t0, t5
  lw   t6, 0(t5)
  sub  a0, t6, a0
  addi t4, t4, 1
  blt  t4, t1, cksum
  ret

.data
.align 4
arr: .zero 384
`

// srcListWalk: build a 4096-node singly linked list in a shuffled order
// (an affine permutation scatters successors across the whole arena),
// then walk it. The 32 KiB arena is twice the default L1, and every
// iteration's load address depends on the previous load — a serial,
// cache-missing pointer chase the load/store unit cannot overlap.
const srcListWalk = `
main:
  # Link node i -> node (i*2053+1) mod 4096 (2053 odd => a permutation).
  la   t0, arena
  li   t1, 4096
  li   t2, 0
build:
  slli t3, t2, 3
  add  t3, t0, t3           # &node[i]
  sw   t2, 0(t3)            # value = i
  li   t4, 2053
  mul  t5, t2, t4
  addi t5, t5, 1
  li   t6, 4095
  and  t5, t5, t6           # next index
  slli t5, t5, 3
  add  t5, t0, t5
  sw   t5, 4(t3)            # next pointer
  addi t2, t2, 1
  blt  t2, t1, build

  # Walk the cycle 2*4096 hops, summing values.
  li   a0, 0
  li   s0, 0                # hop counter
  li   s1, 8192             # 2 passes x 4096 hops
  mv   t3, t0               # cur = &node[0]
walk:
  lw   t4, 0(t3)
  add  a0, a0, t4
  lw   t3, 4(t3)            # cur = cur->next (serial dependence)
  addi s0, s0, 1
  blt  s0, s1, walk
  ret

.data
.align 6
arena: .zero 32768
`

// srcMemcpyStream: word-wise copy of an 8 KiB buffer, 4 passes. Balanced
// streaming loads and stores with unit stride — the bandwidth workload;
// the working set (16 KiB src+dst) just fills L1.
const srcMemcpyStream = `
main:
  # Seed the source buffer with an index ramp.
  la   t0, src
  li   t1, 2048             # words
  li   t2, 0
seed:
  slli t3, t2, 2
  add  t3, t0, t3
  sw   t2, 0(t3)
  addi t2, t2, 1
  blt  t2, t1, seed

  li   s0, 0                # pass
  li   s1, 4
pass:
  la   t0, src
  la   t4, dst
  li   t2, 0
copy:
  slli t3, t2, 2
  add  t5, t0, t3
  lw   t6, 0(t5)
  add  t5, t4, t3
  sw   t6, 0(t5)
  addi t2, t2, 1
  blt  t2, t1, copy
  addi s0, s0, 1
  blt  s0, s1, pass

  # Checksum the destination tail.
  la   t4, dst
  lw   a0, 8188(t4)
  ret

.data
.align 6
src: .zero 8192
dst: .zero 8192
`

// srcAxpyStream: single-precision y = a*x + y over 512 elements, 8
// passes, fmadd-free (separate mul+add) so the FP adder and multiplier
// both show utilization. Unit-stride FP streaming.
const srcAxpyStream = `
main:
  # x[i] = float(i), y[i] = float(2i) via fcvt.
  la   t0, xv
  la   t1, yv
  li   t2, 512
  li   t3, 0
init:
  fcvt.s.w ft0, t3
  slli t4, t3, 2
  add  t5, t0, t4
  fsw  ft0, 0(t5)
  fadd.s ft1, ft0, ft0
  add  t5, t1, t4
  fsw  ft1, 0(t5)
  addi t3, t3, 1
  blt  t3, t2, init

  li   t6, 3
  fcvt.s.w fa0, t6          # a = 3.0
  li   s0, 0                # pass
  li   s1, 8
apass:
  li   t3, 0
axpy:
  slli t4, t3, 2
  add  t5, t0, t4
  flw  ft0, 0(t5)
  add  t5, t1, t4
  flw  ft1, 0(t5)
  fmul.s ft2, ft0, fa0
  fadd.s ft1, ft1, ft2
  fsw  ft1, 0(t5)
  addi t3, t3, 1
  blt  t3, t2, axpy
  addi s0, s0, 1
  blt  s0, s1, apass

  # Checksum: y[511] as an integer.
  la   t1, yv
  flw  ft1, 2044(t1)
  fcvt.w.s a0, ft1
  ret

.data
.align 6
xv: .zero 2048
yv: .zero 2048
`

// srcMatmulBlocked: 16x16 integer matmul with the inner k-loop unrolled
// by 4 (one 4-wide block of the dot product per iteration). Dense mul
// pressure on the FX units with regular loads.
const srcMatmulBlocked = `
main:
  # A[i][j] = i+j, B[i][j] = i-j.
  la   t0, ma
  la   t1, mb
  li   t2, 0                # i
  li   t3, 16
ainit:
  li   t4, 0                # j
binit:
  slli t5, t2, 6            # i*16*4
  slli t6, t4, 2
  add  t5, t5, t6           # offset
  add  s0, t2, t4
  add  s1, t0, t5
  sw   s0, 0(s1)
  sub  s0, t2, t4
  add  s1, t1, t5
  sw   s0, 0(s1)
  addi t4, t4, 1
  blt  t4, t3, binit
  addi t2, t2, 1
  blt  t2, t3, ainit

  # C = A * B, k unrolled x4.
  la   s2, mc
  li   t2, 0                # i
mm_i:
  li   t4, 0                # j
mm_j:
  li   s0, 0                # acc
  li   t5, 0                # k
mm_k:
  # A[i][k..k+3]
  slli t6, t2, 6
  slli s1, t5, 2
  add  t6, t6, s1
  add  t6, t0, t6
  lw   a1, 0(t6)
  lw   a2, 4(t6)
  lw   a3, 8(t6)
  lw   a4, 12(t6)
  # B[k..k+3][j]
  slli t6, t5, 6
  slli s1, t4, 2
  add  t6, t6, s1
  add  t6, t1, t6
  lw   a5, 0(t6)
  lw   a6, 64(t6)
  lw   a7, 128(t6)
  lw   s3, 192(t6)
  mul  a1, a1, a5
  mul  a2, a2, a6
  mul  a3, a3, a7
  mul  a4, a4, s3
  add  s0, s0, a1
  add  s0, s0, a2
  add  s0, s0, a3
  add  s0, s0, a4
  addi t5, t5, 4
  blt  t5, t3, mm_k
  # C[i][j] = acc
  slli t6, t2, 6
  slli s1, t4, 2
  add  t6, t6, s1
  add  t6, s2, t6
  sw   s0, 0(t6)
  addi t4, t4, 1
  blt  t4, t3, mm_j
  addi t2, t2, 1
  blt  t2, t3, mm_i

  # Checksum: trace of C.
  li   a0, 0
  li   t2, 0
trace:
  slli t6, t2, 6
  slli s1, t2, 2
  add  t6, t6, s1
  add  t6, s2, t6
  lw   t5, 0(t6)
  add  a0, a0, t5
  addi t2, t2, 1
  blt  t2, t3, trace
  ret

.data
.align 4
ma: .zero 1024
mb: .zero 1024
mc: .zero 1024
`

// srcFibRecursive: naive recursive fib(14) with a real sp-managed call
// stack — deep call/return chains, ra save/restore traffic and
// return-address prediction pressure.
const srcFibRecursive = `
main:
  li   a0, 14
  addi sp, sp, -8
  sw   ra, 0(sp)
  jal  ra, fib
  lw   ra, 0(sp)
  addi sp, sp, 8
  ret

fib:
  li   t0, 2
  blt  a0, t0, fib_base
  addi sp, sp, -12
  sw   ra, 0(sp)
  sw   s0, 4(sp)
  sw   a0, 8(sp)
  addi a0, a0, -1
  jal  ra, fib
  mv   s0, a0               # fib(n-1)
  lw   a0, 8(sp)
  addi a0, a0, -2
  jal  ra, fib
  add  a0, a0, s0
  lw   ra, 0(sp)
  lw   s0, 4(sp)
  addi sp, sp, 12
  ret
fib_base:
  ret
`

// srcFPHorner: degree-12 Horner polynomial over 128 points — one long
// serial fmul/fadd dependence chain per point, exposing FP latency (not
// throughput), with fcvt mixing int and FP.
const srcFPHorner = `
main:
  # coeffs[k] = k+1 as float.
  la   t0, coef
  li   t1, 13
  li   t2, 0
cinit:
  addi t3, t2, 1
  fcvt.s.w ft0, t3
  slli t4, t2, 2
  add  t4, t0, t4
  fsw  ft0, 0(t4)
  addi t2, t2, 1
  blt  t2, t1, cinit

  li   s0, 0                # point index
  li   s1, 128
  li   a0, 0                # checksum
  li   t5, 200
horner_pt:
  # x = (i % 5) / 4 -ish: x = float(i & 3) * 0.25 via division by 4.
  andi t2, s0, 3
  fcvt.s.w ft1, t2
  li   t3, 4
  fcvt.s.w ft2, t3
  fdiv.s ft1, ft1, ft2      # x in {0, .25, .5, .75}
  # acc = coef[12]; for k=11..0: acc = acc*x + coef[k]
  la   t0, coef
  flw  ft3, 48(t0)
  li   t4, 11
horner_k:
  slli t6, t4, 2
  add  t6, t0, t6
  flw  ft4, 0(t6)
  fmul.s ft3, ft3, ft1
  fadd.s ft3, ft3, ft4
  addi t4, t4, -1
  bgez t4, horner_k
  fcvt.w.s t6, ft3
  add  a0, a0, t6
  addi s0, s0, 1
  blt  s0, s1, horner_pt
  ret

.data
.align 4
coef: .zero 52
`

// srcMemsetStore: fill a 16 KiB buffer with rotating patterns, 4 passes.
// Store-bound: the store buffer, write-back cache policy and memory
// write path are the bottleneck; loads are nearly absent.
const srcMemsetStore = `
main:
  li   s0, 0                # pass
  li   s1, 4
  li   a0, 0
mpass:
  la   t0, buf
  li   t1, 4096             # words
  li   t2, 0
  add  t3, s0, s0
  addi t3, t3, 0x5a         # pattern for this pass
mfill:
  sw   t3, 0(t0)
  addi t0, t0, 4
  addi t2, t2, 1
  blt  t2, t1, mfill
  add  a0, a0, t3
  addi s0, s0, 1
  blt  s0, s1, mpass
  ret

.data
.align 6
buf: .zero 16384
`

// srcStrideThrash: walk a 32 KiB buffer with a 4 KiB stride, 512 passes.
// All 8 touched lines map to the same set of the default 16 KiB 4-way
// cache, so every pass evicts — a conflict-miss torture test where the
// miss rate, not bandwidth, dominates.
const srcStrideThrash = `
main:
  # Seed one word per stride so loads return data.
  la   t0, tbuf
  li   t1, 8                # strides
  li   t2, 0
tinit:
  slli t3, t2, 12           # i * 4096
  add  t3, t0, t3
  sw   t2, 0(t3)
  addi t2, t2, 1
  blt  t2, t1, tinit

  li   s0, 0                # pass
  li   s1, 512
  li   a0, 0
tpass:
  la   t0, tbuf
  li   t2, 0
touch:
  slli t3, t2, 12
  add  t3, t0, t3
  lw   t4, 0(t3)
  add  a0, a0, t4
  addi t2, t2, 1
  blt  t2, t1, touch
  addi s0, s0, 1
  blt  s0, s1, tpass
  ret

.data
.align 6
tbuf: .zero 32768
`

// srcBitMix: 4096 rounds of a pure-register xorshift/mixing kernel — no
// memory traffic at all. Peak FX throughput and the fetch/rename/commit
// width limits are the only constraints; the IPC ceiling workload.
const srcBitMix = `
main:
  li   s0, 0x12345
  li   s1, 0x6789a
  li   s2, 0
  li   t1, 4096
  li   t2, 0
mix:
  slli t3, s0, 13
  xor  s0, s0, t3
  srli t4, s0, 7
  xor  s0, s0, t4
  slli t5, s0, 17
  xor  s0, s0, t5
  add  s1, s1, s0
  xor  t6, s1, s0
  srli t6, t6, 3
  add  s2, s2, t6
  addi t2, t2, 1
  blt  t2, t1, mix
  mv   a0, s2
  ret
`

// srcGCDEuclid: Euclid's gcd by remainder over 64 LCG pairs. The 16-cycle
// rem instruction serializes each step, and only one default FX unit
// executes it — the long-latency-integer workload (FX1 saturates while
// FX0 idles).
const srcGCDEuclid = `
main:
  li   s0, 0                # pair index
  li   s1, 64
  li   a0, 0
  li   s2, 99991            # LCG state
  li   s3, 1103515245
gpair:
  mul  s2, s2, s3
  addi s2, s2, 12345
  srai t0, s2, 4
  li   t2, 1048575
  and  t0, t0, t2
  addi t0, t0, 1            # a > 0
  mul  s2, s2, s3
  addi s2, s2, 12345
  srai t1, s2, 4
  and  t1, t1, t2
  addi t1, t1, 1            # b > 0
gcd:
  beqz t1, gdone
  rem  t3, t0, t1
  mv   t0, t1
  mv   t1, t3
  j    gcd
gdone:
  add  a0, a0, t0
  addi s0, s0, 1
  blt  s0, s1, gpair
  ret
`

// srcVcallDispatch: C++-style virtual dispatch — 16 objects with
// interleaved vtables, 32 passes of indirect calls through jalr. Indirect
// targets alternate, stressing the BTB and the jump resolution path.
const srcVcallDispatch = `
main:
  # objs[i] = {vtable: i odd ? tri : rect, w: i+1, h: i+2}
  la   s0, objs
  la   t1, rect_vtable
  la   t2, tri_vtable
  li   t3, 0
  li   t4, 16
oinit:
  li   t5, 12
  mul  t5, t3, t5
  add  t5, s0, t5
  andi t6, t3, 1
  beqz t6, orect
  sw   t2, 0(t5)
  j    ofields
orect:
  sw   t1, 0(t5)
ofields:
  addi t6, t3, 1
  sw   t6, 4(t5)
  addi t6, t3, 2
  sw   t6, 8(t5)
  addi t3, t3, 1
  blt  t3, t4, oinit

  li   s1, 0                # pass
  li   s2, 32
  li   s3, 0                # total
vpass:
  li   t3, 0
vloop:
  li   t5, 12
  mul  t5, t3, t5
  add  t5, s0, t5
  lw   t6, 0(t5)            # vtable
  lw   t6, 0(t6)            # method
  lw   a0, 4(t5)
  lw   a1, 8(t5)
  addi sp, sp, -4
  sw   ra, 0(sp)
  jalr ra, t6, 0
  lw   ra, 0(sp)
  addi sp, sp, 4
  add  s3, s3, a0
  addi t3, t3, 1
  li   t4, 16
  blt  t3, t4, vloop
  addi s1, s1, 1
  blt  s1, s2, vpass
  mv   a0, s3
  ret

rect_area:
  mul  a0, a0, a1
  ret
tri_area:
  mul  a0, a0, a1
  srai a0, a0, 1
  ret

.data
.align 2
rect_vtable: .word rect_area
tri_vtable:  .word tri_area
objs: .zero 192
`

// srcBinSearch: 1024 binary searches over a sorted 1024-word table. Each
// probe's direction depends on the key comparison — a ~50% taken branch
// the predictor cannot learn, with a data-dependent access pattern the
// cache only partially captures.
const srcBinSearch = `
main:
  # table[i] = i*7 (sorted).
  la   t0, table
  li   t1, 1024
  li   t2, 0
binit:
  li   t3, 7
  mul  t3, t2, t3
  slli t4, t2, 2
  add  t4, t0, t4
  sw   t3, 0(t4)
  addi t2, t2, 1
  blt  t2, t1, binit

  li   s0, 0                # query index
  li   s1, 1024
  li   s2, 48271            # LCG state
  li   s3, 69621
  li   a0, 0
query:
  mul  s2, s2, s3
  addi s2, s2, 1
  srai t2, s2, 6
  li   t3, 8191
  and  t2, t2, t3           # key in [0, 8191]
  li   t4, 0                # lo
  li   t5, 1024             # hi
bs:
  sub  t6, t5, t4
  li   t3, 1
  ble  t6, t3, bsdone
  add  t6, t4, t5
  srli t6, t6, 1            # mid
  slli t3, t6, 2
  add  t3, t0, t3
  lw   t3, 0(t3)
  ble  t3, t2, bslo
  mv   t5, t6
  j    bs
bslo:
  mv   t4, t6
  j    bs
bsdone:
  add  a0, a0, t4
  addi s0, s0, 1
  blt  s0, s1, query
  ret

.data
.align 4
table: .zero 4096
`
