package workload

import (
	"testing"

	"riscvsim/sim"
)

// TestReprosStayFixed is the regression gate for every checked-in
// co-simulation reproducer: each one must run to completion with the
// specialized engine and the forced interpreter producing byte-identical
// final machines (equal StateHash). A failure here means a previously
// fixed engine divergence is back.
func TestReprosStayFixed(t *testing.T) {
	repros := Repros()
	for _, w := range repros {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			det, err := sim.NewFromAsm(sim.DefaultConfig(), w.Source, w.Entry)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			fun, err := sim.NewFromAsm(sim.DefaultConfig(), w.Source, w.Entry)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			fun.SetEngineMode(sim.EngineInterpreter)
			det.Run(w.MaxCycles)
			fun.Run(w.MaxCycles)
			if !det.Halted() || !fun.Halted() {
				t.Fatalf("reproducer did not halt (detailed=%v functional=%v)",
					det.Halted(), fun.Halted())
			}
			if h1, h2 := det.StateHash(), fun.StateHash(); h1 != h2 {
				t.Errorf("engines diverge again: StateHash %#x (specialized) vs %#x (interpreter)", h1, h2)
			}
		})
	}
	t.Logf("%d reproducers verified", len(repros))
}

// TestReprosStayOutOfCorpus pins the registration contract: reproducers
// are a regression suite, never benchmark corpus entries — the golden
// metrics baseline must not move when one is checked in.
func TestReprosStayOutOfCorpus(t *testing.T) {
	for _, w := range Corpus() {
		for _, tag := range w.Tags {
			if tag == "repro" {
				t.Errorf("corpus entry %s carries the repro tag", w.Name)
			}
		}
	}
	for _, r := range Repros() {
		if _, ok := ByName(r.Name); ok {
			t.Errorf("reproducer %s leaked into the corpus", r.Name)
		}
	}
}
