package fuzz

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"riscvsim/internal/seeds"
)

// Constrained random program generation. Every emitted program obeys four
// invariants that make it usable as a co-simulation input:
//
//   - It assembles: only RV32IM mnemonics the internal/asm assembler
//     knows, registers by x-name, labels defined before the final ecall.
//   - It terminates: control flow is forward-only except loop back-edges,
//     and every back-edge is guarded by a dedicated strictly-decreasing
//     counter register (`blt x0, ctr, head` after `addi ctr, ctr, -1`),
//     so even a forward branch that jumps into the middle of a loop body
//     cannot make it spin — a non-positive counter falls through.
//   - Memory discipline: every load/store addresses the .data arena via
//     a reserved base register with a width-aligned in-bounds immediate.
//   - Determinism: the same seed and GenConfig produce the same text.
//
// Register convention: x5..x27 are the free pool the generator reads and
// writes at random; x28 holds the arena base, x29 is scratch for divisor
// massaging, x30/x31 are the two loop counters. x0..x4 are never touched.

// GenConfig shapes the random programs.
type GenConfig struct {
	// Size is the target body instruction count (loop/branch scaffolding
	// included). <=0 selects 40.
	Size int
	// ArenaWords is the data arena size in 4-byte words. <=0 selects 64.
	ArenaWords int
	// MaxLoopTrip bounds every loop's trip count. <=0 selects 8.
	MaxLoopTrip int
	// Weights picks the instruction-class mix; the zero value selects
	// DefaultWeights.
	Weights Weights
}

// Weights are relative instruction-class frequencies (all zero selects
// DefaultWeights).
type Weights struct {
	ALU    int // register-register arithmetic/logic/compare
	ALUImm int // register-immediate arithmetic/logic/shifts
	Mul    int // mul/mulh/mulhsu/mulhu
	DivRem int // div/divu/rem/remu (mostly massaged non-zero divisors)
	Load   int // lb/lbu/lh/lhu/lw from the arena
	Store  int // sb/sh/sw into the arena
	Branch int // conditional forward branch
	Jump   int // jal to a forward label
	Loop   int // open a bounded counted loop
}

// DefaultWeights is the standard mix: ALU-heavy with enough memory and
// control flow to keep the LSU, predictor and flush logic busy.
var DefaultWeights = Weights{
	ALU: 24, ALUImm: 18, Mul: 6, DivRem: 4,
	Load: 12, Store: 10, Branch: 12, Jump: 4, Loop: 6,
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Size <= 0 {
		c.Size = 40
	}
	if c.ArenaWords <= 0 {
		c.ArenaWords = 64
	}
	if c.MaxLoopTrip <= 0 {
		c.MaxLoopTrip = 8
	}
	if c.Weights == (Weights{}) {
		c.Weights = DefaultWeights
	}
	return c
}

// Reserved registers (see the package convention above).
const (
	arenaReg   = "x28"
	scratchReg = "x29"
)

var loopCounters = [2]string{"x30", "x31"}

// poolRegs is the freely readable/writable register set.
var poolRegs = func() []string {
	var rs []string
	for i := 5; i <= 27; i++ {
		rs = append(rs, fmt.Sprintf("x%d", i))
	}
	return rs
}()

// interestingInts seeds the register preamble with boundary values the
// RV32M edge cases care about, alongside uniform random words.
var interestingInts = []int32{
	0, 1, -1, 2, -2, math.MinInt32, math.MaxInt32,
	0x7fff, -0x8000, 0x55555555, -0x55555556,
}

// gen is the generator state for one program.
type gen struct {
	rng *rand.Rand
	cfg GenConfig
	b   strings.Builder

	n       int              // body instructions emitted so far
	pending map[int][]string // forward labels keyed by the body position they bind to
	labels  int              // label name counter
	loops   []openLoop       // innermost last
}

type openLoop struct {
	label   string
	counter string
	closeAt int // body position at which to emit the close sequence
}

// Generate emits one random RV32IM program for the seed. The seed is used
// via seeds.Mix, so campaign-adjacent seeds (base, base+1, ...) yield
// unrelated programs.
func Generate(seed int64, cfg GenConfig) string {
	g := &gen{
		rng:     rand.New(rand.NewSource(seeds.Mix(seed))),
		cfg:     cfg.withDefaults(),
		pending: make(map[int][]string),
	}
	g.preamble()
	g.body()
	g.epilogue()
	return g.b.String()
}

func (g *gen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

// instr emits one body instruction, placing any forward labels bound to
// this position first.
func (g *gen) instr(format string, args ...any) {
	for _, l := range g.pending[g.n] {
		g.emitf("%s:", l)
	}
	delete(g.pending, g.n)
	g.emitf("  "+format, args...)
	g.n++
}

func (g *gen) pool() string     { return poolRegs[g.rng.Intn(len(poolRegs))] }
func (g *gen) newLabel() string { g.labels++; return fmt.Sprintf("fz%d", g.labels) }

// fwdLabel registers a label d body instructions ahead and returns its name.
func (g *gen) fwdLabel(d int) string {
	l := g.newLabel()
	at := g.n + 1 + d // +1: the branch itself occupies the current slot
	g.pending[at] = append(g.pending[at], l)
	return l
}

func (g *gen) preamble() {
	g.emitf("# generated by riscvsim internal/fuzz (deterministic)")
	for _, r := range poolRegs {
		var v int32
		if g.rng.Intn(3) == 0 {
			v = interestingInts[g.rng.Intn(len(interestingInts))]
		} else {
			v = int32(g.rng.Uint32())
		}
		g.emitf("  li %s, %d", r, v)
	}
	g.emitf("  la %s, arena", arenaReg)
}

func (g *gen) body() {
	w := g.cfg.Weights
	classes := []struct {
		weight int
		emit   func()
	}{
		{w.ALU, g.alu}, {w.ALUImm, g.aluImm}, {w.Mul, g.mul},
		{w.DivRem, g.divRem}, {w.Load, g.load}, {w.Store, g.store},
		{w.Branch, g.branch}, {w.Jump, g.jump}, {w.Loop, g.openLoop},
	}
	total := 0
	for _, c := range classes {
		total += c.weight
	}
	for g.n < g.cfg.Size {
		g.maybeCloseLoop()
		pick := g.rng.Intn(total)
		for _, c := range classes {
			if pick < c.weight {
				c.emit()
				break
			}
			pick -= c.weight
		}
	}
	for len(g.loops) > 0 {
		g.closeLoop()
	}
}

// epilogue resolves every still-pending forward label onto the final halt.
func (g *gen) epilogue() {
	var rest []int
	for at := range g.pending {
		rest = append(rest, at)
	}
	// Deterministic order regardless of map iteration.
	for i := 0; i < len(rest); i++ {
		for j := i + 1; j < len(rest); j++ {
			if rest[j] < rest[i] {
				rest[i], rest[j] = rest[j], rest[i]
			}
		}
	}
	for _, at := range rest {
		for _, l := range g.pending[at] {
			g.emitf("%s:", l)
		}
	}
	g.emitf("  ecall")
	g.emitf(".data")
	g.emitf("arena: .zero %d", 4*g.cfg.ArenaWords)
}

var aluOps = []string{"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and"}

func (g *gen) alu() {
	g.instr("%s %s, %s, %s", aluOps[g.rng.Intn(len(aluOps))], g.pool(), g.pool(), g.pool())
}

var aluImmOps = []string{"addi", "slti", "sltiu", "xori", "ori", "andi"}
var shiftImmOps = []string{"slli", "srli", "srai"}

func (g *gen) aluImm() {
	if g.rng.Intn(4) == 0 {
		g.instr("%s %s, %s, %d", shiftImmOps[g.rng.Intn(len(shiftImmOps))],
			g.pool(), g.pool(), g.rng.Intn(32))
		return
	}
	g.instr("%s %s, %s, %d", aluImmOps[g.rng.Intn(len(aluImmOps))],
		g.pool(), g.pool(), g.rng.Intn(4096)-2048)
}

var mulOps = []string{"mul", "mulh", "mulhsu", "mulhu"}

func (g *gen) mul() {
	g.instr("%s %s, %s, %s", mulOps[g.rng.Intn(len(mulOps))], g.pool(), g.pool(), g.pool())
}

var divOps = []string{"div", "divu", "rem", "remu"}

func (g *gen) divRem() {
	op := divOps[g.rng.Intn(len(divOps))]
	rs2 := g.pool()
	if g.rng.Intn(8) != 0 {
		// Massage the divisor non-zero so the program usually survives;
		// the 1-in-8 raw path keeps div-by-zero exception delivery under
		// test (both engines must trap identically).
		g.instr("ori %s, %s, 1", scratchReg, rs2)
		rs2 = scratchReg
	}
	g.instr("%s %s, %s, %s", op, g.pool(), g.pool(), rs2)
}

// loadWidths pairs each load/store mnemonic with its access width.
var loadOps = []struct {
	op    string
	width int
}{{"lb", 1}, {"lbu", 1}, {"lh", 2}, {"lhu", 2}, {"lw", 4}}

var storeOps = []struct {
	op    string
	width int
}{{"sb", 1}, {"sh", 2}, {"sw", 4}}

// arenaOffset returns a width-aligned offset inside the arena.
func (g *gen) arenaOffset(width int) int {
	max := 4*g.cfg.ArenaWords - width
	return g.rng.Intn(max/width+1) * width
}

func (g *gen) load() {
	l := loadOps[g.rng.Intn(len(loadOps))]
	g.instr("%s %s, %d(%s)", l.op, g.pool(), g.arenaOffset(l.width), arenaReg)
}

func (g *gen) store() {
	s := storeOps[g.rng.Intn(len(storeOps))]
	g.instr("%s %s, %d(%s)", s.op, g.pool(), g.arenaOffset(s.width), arenaReg)
}

var branchOps = []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}

func (g *gen) branch() {
	l := g.fwdLabel(1 + g.rng.Intn(5))
	g.instr("%s %s, %s, %s", branchOps[g.rng.Intn(len(branchOps))], g.pool(), g.pool(), l)
}

func (g *gen) jump() {
	l := g.fwdLabel(1 + g.rng.Intn(5))
	rd := "x0"
	if g.rng.Intn(2) == 0 {
		rd = g.pool() // exercise the link-register write too
	}
	g.instr("jal %s, %s", rd, l)
}

func (g *gen) openLoop() {
	depth := len(g.loops)
	if depth >= len(loopCounters) || g.n+4 > g.cfg.Size {
		g.alu() // no room: degrade to a plain instruction
		return
	}
	ctr := loopCounters[depth]
	trip := 1 + g.rng.Intn(g.cfg.MaxLoopTrip)
	bodyLen := 2 + g.rng.Intn(7)
	g.instr("li %s, %d", ctr, trip)
	l := g.newLabel()
	// The loop head binds to the next instruction; instr() placement
	// bookkeeping is bypassed because the head must sit exactly here.
	g.emitf("%s:", l)
	g.loops = append(g.loops, openLoop{label: l, counter: ctr, closeAt: g.n + bodyLen})
}

func (g *gen) maybeCloseLoop() {
	for len(g.loops) > 0 && g.loops[len(g.loops)-1].closeAt <= g.n {
		g.closeLoop()
	}
}

// closeLoop emits the guarded back-edge: the counter strictly decreases
// and the branch is taken only while it stays positive, so the loop is
// bounded even when entered mid-body by a forward branch. The pair is
// atomic: any forward label that would bind between the decrement and
// the branch is flushed in front of it instead — a branch landing there
// would skip the decrement and unbound the loop. Future labels cannot
// land inside either (fwdLabel targets at least two slots ahead).
func (g *gen) closeLoop() {
	lp := g.loops[len(g.loops)-1]
	g.loops = g.loops[:len(g.loops)-1]
	for _, pos := range [2]int{g.n, g.n + 1} {
		for _, l := range g.pending[pos] {
			g.emitf("%s:", l)
		}
		delete(g.pending, pos)
	}
	g.emitf("  addi %s, %s, -1", lp.counter, lp.counter)
	g.emitf("  blt x0, %s, %s", lp.counter, lp.label)
	g.n += 2
}
