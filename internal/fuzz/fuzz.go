// Package fuzz is the co-simulation fuzzing subsystem: constrained
// random RV32IM program generation (gen.go), a lockstep detailed-vs-
// functional verification harness over the core's two semantic engines
// (cosim.go), and automatic failure shrinking to minimal checked-in
// reproducers (shrink.go). docs/fuzzing.md is the full story.
//
// The harness follows the functional-ISS-driven verification approach of
// Galimberti et al. (PAPERS.md): the specialized detailed pipeline is
// checked in lockstep against the same pipeline with the expression
// interpreter forced as the semantic engine, so any disagreement between
// the two implementations of RV32IM semantics surfaces as a divergence
// at a precise cycle, and the surrounding campaign shrinks the program
// that exposed it.
package fuzz

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"riscvsim/internal/config"
	"riscvsim/internal/seeds"
)

// DefaultMaxCycles bounds one generated program's run. Generated
// programs are small and loop-bounded; the bound only catches
// pathological cases and keeps shrinking fast.
const DefaultMaxCycles = 100_000

// Options configures a fuzzing campaign.
type Options struct {
	// N is the number of programs to generate and co-simulate.
	N int
	// Seed is the campaign base seed; program i uses seeds.Derive(Seed, i).
	Seed int64
	// Config is the architecture; nil selects the default preset.
	Config *config.CPU
	// Gen shapes the generated programs (zero value = defaults).
	Gen GenConfig
	// MaxCycles bounds each program's run; 0 selects DefaultMaxCycles.
	MaxCycles uint64
	// OutDir, when non-empty, receives one shrunk reproducer file per
	// failure (repro-seed<seed>.s), ready to check into
	// internal/workload/testdata/repro/.
	OutDir string
	// Log, when non-nil, receives progress and failure reports.
	Log io.Writer
	// NoShrink skips minimization (reports carry the full program).
	NoShrink bool
}

// Failure is one divergent program, shrunk and ready to report.
type Failure struct {
	// Index is the program's position in the campaign.
	Index int
	// Seed is the program's derived seed; replaying it alone needs only
	// this value (ReplayCommand).
	Seed int64
	// Divergence is the first disagreement of the original program.
	Divergence *Divergence
	// Source is the generated program.
	Source string
	// Shrunk is the minimized program (== Source with NoShrink).
	Shrunk string
	// ReproPath is the written reproducer file ("" when OutDir is empty).
	ReproPath string
}

// ReplayCommand returns the exact CLI line that re-runs just this
// program: seeds.Derive is additive, so the derived seed works as a
// fresh base with -fuzz-n=1.
func (f *Failure) ReplayCommand() string {
	return fmt.Sprintf("riscvsim -fuzz -fuzz-n=1 -fuzz-seed=%d", f.Seed)
}

// Report renders the full failure report: divergence, replay line, and
// the shrunk reproducer.
func (f *Failure) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %d (seed %d):\n", f.Index, f.Seed)
	b.WriteString(f.Divergence.String())
	fmt.Fprintf(&b, "replay: %s\n", f.ReplayCommand())
	if f.ReproPath != "" {
		fmt.Fprintf(&b, "reproducer written: %s\n", f.ReproPath)
	}
	fmt.Fprintf(&b, "shrunk reproducer (%d instructions):\n%s",
		CountInstructions(f.Shrunk), f.Shrunk)
	return b.String()
}

// Run executes a fuzzing campaign: generate N programs, co-simulate each
// in lockstep across both engines, shrink every divergent one. The
// returned slice is empty when every program agreed. An error means the
// campaign itself could not run (e.g. a generated program failed to
// assemble — a generator bug, never an engine verdict).
func Run(opts Options) ([]Failure, error) {
	cfg := opts.Config
	if cfg == nil {
		cfg = config.Default()
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	var failures []Failure
	for i := 0; i < opts.N; i++ {
		seed := seeds.Derive(opts.Seed, i)
		src := Generate(seed, opts.Gen)
		div, err := Cosim(cfg, src, maxCycles)
		if err != nil {
			return failures, fmt.Errorf("fuzz: program %d (seed %d): %w", i, seed, err)
		}
		if div == nil {
			continue
		}
		f := Failure{Index: i, Seed: seed, Divergence: div, Source: src, Shrunk: src}
		if !opts.NoShrink {
			f.Shrunk = Shrink(src, func(candidate string) bool {
				d, err := Cosim(cfg, candidate, maxCycles)
				return err == nil && d != nil
			})
		}
		if opts.OutDir != "" {
			path, werr := WriteRepro(opts.OutDir, &f)
			if werr != nil {
				return failures, werr
			}
			f.ReproPath = path
		}
		failures = append(failures, f)
		logf("%s", f.Report())
	}
	logf("fuzz: %d programs, %d divergences (base seed %d)", opts.N, len(failures), opts.Seed)
	return failures, nil
}

// WriteRepro emits the failure's shrunk program as a self-contained
// reproducer file: a header documenting provenance and the exact replay
// command, then the program. The file drops into
// internal/workload/testdata/repro/ unchanged.
func WriteRepro(dir string, f *Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("fuzz: creating reproducer dir: %w", err)
	}
	name := fmt.Sprintf("repro-seed%d.s", f.Seed)
	path := filepath.Join(dir, name)
	var b strings.Builder
	fmt.Fprintf(&b, "# co-simulation divergence reproducer (shrunk)\n")
	fmt.Fprintf(&b, "# seed: %d\n", f.Seed)
	fmt.Fprintf(&b, "# divergence: cycle %d [%s] %s\n",
		f.Divergence.Cycle, f.Divergence.Kind, f.Divergence.Detail)
	fmt.Fprintf(&b, "# replay: %s\n", f.ReplayCommand())
	b.WriteString(f.Shrunk)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("fuzz: writing reproducer: %w", err)
	}
	return path, nil
}

// CountInstructions counts instruction lines (non-blank, non-comment,
// non-label, non-directive) in a program — the shrink quality metric.
func CountInstructions(src string) int {
	n := 0
	inData := false
	for _, raw := range strings.Split(src, "\n") {
		t := strings.TrimSpace(raw)
		if t == ".data" {
			inData = true
		}
		if inData || t == "" || strings.HasPrefix(t, "#") ||
			strings.HasPrefix(t, "//") || strings.HasPrefix(t, ".") ||
			strings.HasSuffix(t, ":") {
			continue
		}
		n++
	}
	return n
}
