package fuzz

import (
	"strings"
	"testing"

	"riscvsim/internal/config"
	"riscvsim/internal/seeds"
	"riscvsim/internal/trace"
)

// TestCosimParallelLeg exercises the time-parallel leg directly: a clean
// program agrees with its own serial run, and a serial reference from a
// *different* program makes the leg report a "par-" divergence — proving
// the comparison actually looks at the state, not just the plumbing.
// (TestCosimSmoke gives the leg its volume; this pins its verdict logic.)
func TestCosimParallelLeg(t *testing.T) {
	cfg := config.Default()
	srcA := Generate(seeds.Derive(90_000, 0), GenConfig{})
	srcB := Generate(seeds.Derive(90_000, 1), GenConfig{})
	ring := trace.NewRing(windowCap, trace.Filter{
		Stages: trace.StageMask(0).With(trace.StageCommit), PCMin: 0, PCMax: -1,
	})

	run := func(src string) *Divergence {
		t.Helper()
		d, det, _, err := cosimDetailed(cfg, src, DefaultMaxCycles)
		if err != nil || d != nil {
			t.Fatalf("detailed leg of %q failed: d=%v err=%v", src[:20], d, err)
		}
		if det == nil || !det.Halted() {
			t.Fatal("generated program did not halt — termination guarantee broken")
		}
		// Clean: the program against its own serial reference.
		if pd, err := cosimParallel(cfg, src, DefaultMaxCycles, det, ring); err != nil || pd != nil {
			t.Fatalf("parallel leg diverged on a clean program: d=%v err=%v", pd, err)
		}
		// Cross-wired: program A's parallel run against program B's
		// reference must be caught.
		pd, err := cosimParallel(cfg, srcB, DefaultMaxCycles, det, ring)
		if err != nil {
			t.Fatalf("cross-wired parallel leg errored: %v", err)
		}
		return pd
	}

	pd := run(srcA)
	if pd == nil {
		t.Fatal("parallel leg did not notice a mismatched serial reference")
	}
	if !strings.HasPrefix(pd.Kind, "par-") {
		t.Errorf("divergence kind %q, want a par- prefixed kind", pd.Kind)
	}
}
