package fuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riscvsim/internal/config"
	"riscvsim/internal/core"
	"riscvsim/internal/seeds"
	"riscvsim/sim"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(42, GenConfig{})
	b := Generate(42, GenConfig{})
	if a != b {
		t.Fatalf("same seed produced different programs")
	}
	if c := Generate(43, GenConfig{}); c == a {
		t.Fatalf("adjacent seeds produced identical programs")
	}
}

func TestGeneratedProgramsAssembleAndTerminate(t *testing.T) {
	cfg := config.Default()
	for i := 0; i < 200; i++ {
		seed := seeds.Derive(7_000, i)
		src := Generate(seed, GenConfig{})
		m, err := sim.NewFromAsm(cfg, src, "")
		if err != nil {
			t.Fatalf("seed %d does not assemble: %v\n%s", seed, err, src)
		}
		m.Run(DefaultMaxCycles)
		if !m.Halted() {
			t.Fatalf("seed %d did not halt within %d cycles (termination guarantee broken)\n%s",
				seed, DefaultMaxCycles, src)
		}
	}
}

// TestCosimSmoke is the CI fuzz gate: >=2,000 generated programs across
// three core widths (1/2/4-wide), co-simulated in lockstep between the
// specialized detailed engine and the forced-interpreter functional
// path, with zero divergences. Seeds are fixed, so the run is fully
// deterministic.
func TestCosimSmoke(t *testing.T) {
	const perConfig = 700 // 3 x 700 = 2,100 programs
	configs := []struct {
		name string
		cfg  *config.CPU
		base int64
	}{
		{"scalar", config.Scalar(), 10_000},
		{"default", config.Default(), 20_000},
		{"wide4", config.Wide4(), 30_000},
	}
	const shards = 4
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Seed-stable sharding: shard s covers campaign indices
			// [s*ceil, min((s+1)*ceil, perConfig)), so the union is
			// exactly the perConfig distinct programs [0, perConfig) and
			// every index maps to the same seed regardless of which shard
			// runs it.
			ceil := (perConfig + shards - 1) / shards
			for s := 0; s < shards; s++ {
				start := s * ceil
				end := min(start+ceil, perConfig)
				if start >= end {
					continue
				}
				t.Run("", func(t *testing.T) {
					t.Parallel()
					fails, err := Run(Options{
						N:      end - start,
						Seed:   seeds.Derive(tc.base, start),
						Config: tc.cfg,
					})
					if err != nil {
						t.Fatalf("campaign: %v", err)
					}
					for _, f := range fails {
						t.Errorf("divergence:\n%s", f.Report())
					}
				})
			}
		})
	}
}

// TestCampaignDeterministic pins that a campaign is a pure function of
// (seed, config): two runs see the same programs and the same verdicts.
func TestCampaignDeterministic(t *testing.T) {
	a := Generate(seeds.Derive(500, 3), GenConfig{})
	b := Generate(seeds.Derive(503, 0), GenConfig{})
	if a != b {
		t.Fatalf("Derive is not additive: program 3 of base 500 != program 0 of base 503")
	}
}

// injectedBug corrupts the specialized engine's add results for a subset
// of operand values — roughly 1 in 64 dynamic adds — so random programs
// both find it and shrink well.
func injectedBug(op string, a, b, result int32) int32 {
	if op == "add" && a&0x3f == 0x2a {
		return result + 1
	}
	return result
}

// TestInjectedBugDetectedAndShrunk is the end-to-end proof of the
// tentpole: with a deliberate semantic bug injected into the specialized
// engine only, the lockstep harness detects the divergence, the shrinker
// reduces the failing program to a handful of instructions (<=12), the
// reproducer file carries the exact replay command, and that command's
// seed reproduces the failure from scratch.
func TestInjectedBugDetectedAndShrunk(t *testing.T) {
	core.SetSemanticBugForTesting(injectedBug)
	defer core.SetSemanticBugForTesting(nil)

	dir := t.TempDir()
	fails, err := Run(Options{N: 60, Seed: 424_200, OutDir: dir})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if len(fails) == 0 {
		t.Fatalf("injected semantic bug was not detected in 60 programs")
	}
	f := fails[0]

	if f.Divergence == nil || f.Divergence.Cycle == 0 {
		t.Fatalf("divergence missing its first divergent cycle: %+v", f.Divergence)
	}
	if len(f.Divergence.Window) == 0 {
		t.Errorf("divergence report has no disassembled commit window")
	}

	// Shrink quality: minimal reproducer, still divergent, still ends in
	// the protected ecall.
	n := CountInstructions(f.Shrunk)
	if n > 12 {
		t.Errorf("shrunk reproducer has %d instructions, want <= 12:\n%s", n, f.Shrunk)
	}
	if d, err := Cosim(nil, f.Shrunk, DefaultMaxCycles); err != nil || d == nil {
		t.Errorf("shrunk reproducer no longer diverges (err=%v)", err)
	}
	if !strings.Contains(f.Shrunk, "ecall") {
		t.Errorf("shrinker deleted the protected ecall:\n%s", f.Shrunk)
	}

	// The reproducer file is self-contained: provenance header with the
	// replay command, then the program.
	data, err := os.ReadFile(f.ReproPath)
	if err != nil {
		t.Fatalf("reproducer file: %v", err)
	}
	if !strings.Contains(string(data), f.ReplayCommand()) {
		t.Errorf("reproducer file lacks the replay command %q", f.ReplayCommand())
	}
	if filepath.Dir(f.ReproPath) != dir {
		t.Errorf("reproducer written to %s, want dir %s", f.ReproPath, dir)
	}

	// Replay story: the printed command is `-fuzz-n=1 -fuzz-seed=<seed>`;
	// running exactly that campaign reproduces the same divergence.
	replay, err := Run(Options{N: 1, Seed: f.Seed, NoShrink: true})
	if err != nil {
		t.Fatalf("replay campaign: %v", err)
	}
	if len(replay) != 1 {
		t.Fatalf("replay with derived seed %d found %d failures, want 1", f.Seed, len(replay))
	}
	if replay[0].Divergence.Cycle != f.Divergence.Cycle || replay[0].Divergence.Kind != f.Divergence.Kind {
		t.Errorf("replay divergence (cycle %d, %s) != original (cycle %d, %s)",
			replay[0].Divergence.Cycle, replay[0].Divergence.Kind,
			f.Divergence.Cycle, f.Divergence.Kind)
	}

	// And with the bug cleared, the same program must agree again —
	// proving the divergence was the injected bug, not the harness.
	core.SetSemanticBugForTesting(nil)
	if d, err := Cosim(nil, f.Source, DefaultMaxCycles); err != nil || d != nil {
		t.Errorf("program still diverges with the bug cleared (d=%v, err=%v)", d, err)
	}
}

// TestShrinkKeepsLabelsAndData pins the shrinker's protected-line rules
// on a hand-written program with a trivially checkable predicate.
func TestShrinkKeepsLabelsAndData(t *testing.T) {
	src := `  li x5, 42
  li x6, 7
  add x7, x5, x6
  sub x8, x7, x5
  ecall
.data
arena: .zero 16
`
	got := Shrink(src, func(c string) bool {
		return strings.Contains(c, "add x7") && strings.Contains(c, "ecall")
	})
	if !strings.Contains(got, "add x7") || !strings.Contains(got, "ecall") {
		t.Fatalf("shrink dropped predicate-protected lines:\n%s", got)
	}
	if strings.Contains(got, "sub x8") {
		t.Errorf("shrink kept a deletable line the predicate does not need:\n%s", got)
	}
	if !strings.Contains(got, ".data") || !strings.Contains(got, "arena:") {
		t.Errorf("shrink touched the data section:\n%s", got)
	}
}
