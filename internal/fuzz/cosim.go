package fuzz

import (
	"fmt"
	"strings"

	"riscvsim/internal/config"
	"riscvsim/internal/isa"
	"riscvsim/internal/trace"
	"riscvsim/sim"
)

// Lockstep co-simulation: the same program runs twice, once on the
// specialized detailed engine and once with the interpreter forced
// (EngineInterpreter), and the two machines are compared cycle by cycle.
// Timing is engine-independent, so any difference — a register bit, the
// fetch PC, the committed count, a halt — pins the first cycle at which
// the engines' semantics disagreed. At the end the full checkpoint
// StateHash is compared as a total check covering memory and every
// counter the per-cycle probe does not look at.
//
// A third engine joins the lockstep: the fast-forward functional mode
// (core/blockplan.go) runs the program twice more — fused block plans vs
// the interpreter routed through the same block walker — compared at
// every block commit boundary (one fast-forward Step = one basic block),
// and the fused run's final architectural state is then checked against
// the detailed run (ArchStateHash). Divergences in fused plans shrink to
// reproducers exactly like detailed-engine ones.
//
// A fourth leg covers the time-parallel coordinator (sim/parallel.go):
// every halting program also runs under RunParallel(K=2) with a tiny
// warm-up, and the coordinator's final architectural state, halt story
// and stitched instruction counters are compared against the serial
// detailed run. The bit-exactness contract makes any difference — a
// mis-speculated interval the verifier failed to heal, a stitching bug,
// a boundary off by one — a reportable "par-" divergence that shrinks
// like the others.

// windowCap bounds the disassembled commit window kept for reports.
const windowCap = 24

// Divergence describes the first detected disagreement between the
// detailed (specialized) run and the functional (interpreter) run.
type Divergence struct {
	// Cycle is the clock cycle at which the runs first differ.
	Cycle uint64
	// Kind classifies what differed: "register", "fp-register", "pc",
	// "committed", "halt", "exception", "memory" or "state-hash" for the
	// detailed-vs-functional pair; the same names with an "ff-" prefix
	// (plus "ff-arch-hash") for the fast-forward engine pair and the
	// fast-forward-vs-detailed final state; "par-scout", "par-halt",
	// "par-committed", "par-stats" and "par-arch-hash" for the
	// time-parallel coordinator vs the serial detailed run.
	Kind string
	// Detail is the human-readable difference, detailed-vs-functional.
	Detail string
	// Window is the disassembled commit stream of the detailed run
	// leading up to the divergence (most recent last).
	Window []string
}

// String renders the divergence report block (without the replay line,
// which the campaign layer adds — it knows the seed).
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence at cycle %d [%s]: %s\n", d.Cycle, d.Kind, d.Detail)
	if len(d.Window) > 0 {
		b.WriteString("commit window (detailed engine, most recent last):\n")
		for _, l := range d.Window {
			fmt.Fprintf(&b, "  %s\n", l)
		}
	}
	return b.String()
}

// Cosim assembles src once per engine mode and runs the engines in
// lockstep for up to maxCycles: first the detailed pair (specialized vs
// forced interpreter, compared every cycle), then the fast-forward pair
// (fused block plans vs interpreter, compared every block), then the
// fused run's architectural state against the detailed run. It returns
// the first divergence, or nil when all runs agree. A program that does
// not assemble returns an error — generator bugs must not read as engine
// bugs.
func Cosim(cfg *config.CPU, src string, maxCycles uint64) (*Divergence, error) {
	if cfg == nil {
		cfg = config.Default()
	}
	d, det, ring, err := cosimDetailed(cfg, src, maxCycles)
	if d != nil || err != nil {
		return d, err
	}
	d, err = cosimFastForward(cfg, src, maxCycles, det, ring)
	if d != nil || err != nil {
		return d, err
	}
	return cosimParallel(cfg, src, maxCycles, det, ring)
}

// cosimParallelWarmup keeps the warm-up prefix tiny so that even the
// short generated programs actually split into two measured intervals.
const cosimParallelWarmup = 4

// cosimParallel is the time-parallel leg: RunParallel(K=2) over the same
// program, checked against the halted serial detailed run. Timing metrics
// are approximate by design (warm-up error), but the architectural end
// state, the halt story and the stitched instruction counters are
// contractually bit-exact.
func cosimParallel(cfg *config.CPU, src string, maxCycles uint64, det *sim.Machine, ring *trace.Ring) (*Divergence, error) {
	if det == nil || !det.Halted() {
		return nil, nil // budget-bounded run: no commit horizon to split
	}
	par, err := sim.NewFromAsm(cfg, src, "")
	if err != nil {
		return nil, fmt.Errorf("fuzz: program does not assemble: %w", err)
	}
	res, err := par.RunParallel(2, sim.ParallelOptions{
		WarmupInstructions: cosimParallelWarmup,
		MaxCycles:          maxCycles,
	})
	if err != nil {
		// The serial detailed run halted inside the same budget, so the
		// coordinator refusing the program is itself a disagreement (the
		// fast-forward scout lost the program), not a campaign error.
		return &Divergence{Cycle: det.Cycle(), Kind: "par-scout",
			Detail: fmt.Sprintf("RunParallel(2) failed on a halting program: %v", err),
			Window: commitWindow(ring)}, nil
	}
	if !par.Halted() || par.HaltReason() != det.HaltReason() {
		return &Divergence{Cycle: par.Cycle(), Kind: "par-halt",
			Detail: fmt.Sprintf("parallel halted=%v (%s) vs detailed halted=true (%s)",
				par.Halted(), par.HaltReason(), det.HaltReason()), Window: commitWindow(ring)}, nil
	}
	if c1, c2 := par.Committed(), det.Committed(); c1 != c2 {
		return &Divergence{Cycle: par.Cycle(), Kind: "par-committed",
			Detail: fmt.Sprintf("parallel committed %d vs detailed %d", c1, c2),
			Window: commitWindow(ring)}, nil
	}
	if c1, c2 := res.Report.Committed, det.Committed(); c1 != c2 {
		return &Divergence{Cycle: par.Cycle(), Kind: "par-stats",
			Detail: fmt.Sprintf("stitched report committed %d vs detailed %d", c1, c2),
			Window: commitWindow(ring)}, nil
	}
	if h1, h2 := par.ArchStateHash(), det.ArchStateHash(); h1 != h2 {
		d := hashDivergence(par, det, h1, h2, ring)
		if d.Kind == "state-hash" {
			d.Detail = fmt.Sprintf("final ArchStateHash %#x vs %#x", h1, h2)
		}
		d.Kind = "par-arch-hash"
		d.Detail = "parallel vs detailed: " + d.Detail
		return d, nil
	}
	return nil, nil
}

// cosimDetailed is the detailed-engine leg: specialized vs forced
// interpreter in per-cycle lockstep. On agreement it hands back the
// halted detailed machine and its commit window for the fast-forward leg.
func cosimDetailed(cfg *config.CPU, src string, maxCycles uint64) (*Divergence, *sim.Machine, *trace.Ring, error) {
	det, err := sim.NewFromAsm(cfg, src, "")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fuzz: program does not assemble: %w", err)
	}
	fun, err := sim.NewFromAsm(cfg, src, "")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fuzz: program does not assemble: %w", err)
	}
	fun.SetEngineMode(sim.EngineInterpreter)

	// Capture the detailed run's commit stream for the report window.
	ring := trace.NewRing(windowCap, trace.Filter{
		Stages: trace.StageMask(0).With(trace.StageCommit), PCMin: 0, PCMax: -1,
	})
	det.SetTracer(ring)

	for cycle := uint64(1); cycle <= maxCycles; cycle++ {
		if det.Halted() && fun.Halted() {
			break
		}
		det.Step()
		fun.Step()
		if d := compareCycle(det, fun, cycle); d != nil {
			d.Window = commitWindow(ring)
			return d, nil, nil, nil
		}
	}

	if !det.Halted() {
		// Both still running (compareCycle would have caught a split):
		// the cycle budget bounds pathological programs. Identical state
		// so far is still checked below.
		if h1, h2 := det.StateHash(), fun.StateHash(); h1 != h2 {
			return hashDivergence(det, fun, h1, h2, ring), nil, nil, nil
		}
		return nil, det, ring, nil
	}

	// Both halted at the same cycle. Compare the end-of-run story, then
	// the total state.
	if r1, r2 := det.HaltReason(), fun.HaltReason(); r1 != r2 {
		return &Divergence{Cycle: det.Cycle(), Kind: "halt",
			Detail: fmt.Sprintf("halt reason %q vs %q", r1, r2), Window: commitWindow(ring)}, nil, nil, nil
	}
	e1, e2 := det.Exception(), fun.Exception()
	if (e1 == nil) != (e2 == nil) || (e1 != nil && e1.Error() != e2.Error()) {
		return &Divergence{Cycle: det.Cycle(), Kind: "exception",
			Detail: fmt.Sprintf("exception %v vs %v", e1, e2), Window: commitWindow(ring)}, nil, nil, nil
	}
	if h1, h2 := det.StateHash(), fun.StateHash(); h1 != h2 {
		return hashDivergence(det, fun, h1, h2, ring), nil, nil, nil
	}
	return nil, det, ring, nil
}

// cosimFastForward is the fast-forward leg: the fused block-plan engine
// vs the interpreter routed through the same block walker, in per-block
// lockstep (one fast-forward Step executes exactly one basic block, so
// every comparison lands on a block commit boundary), then the fused
// run's final architectural state against the detailed run. det is the
// halted detailed machine from the first leg, or nil when that leg hit
// the cycle budget before halting.
func cosimFastForward(cfg *config.CPU, src string, maxCycles uint64, det *sim.Machine, ring *trace.Ring) (*Divergence, error) {
	ffs, err := sim.NewFromAsm(cfg, src, "")
	if err != nil {
		return nil, fmt.Errorf("fuzz: program does not assemble: %w", err)
	}
	fff, err := sim.NewFromAsm(cfg, src, "")
	if err != nil {
		return nil, fmt.Errorf("fuzz: program does not assemble: %w", err)
	}
	ffs.SetEngineMode(sim.EngineFastForward)
	fff.SetEngineMode(sim.EngineFastForward)
	fff.Sim().SetFastForwardInterpreter(true)

	// Fast-forward spends one cycle per committed instruction, so a
	// detailed run of maxCycles cycles maps to at most
	// maxCycles×commit-width instructions; 4× covers every preset.
	budget := 4 * maxCycles
	for ffs.Cycle() <= budget {
		if ffs.Halted() && fff.Halted() {
			break
		}
		ffs.Step()
		fff.Step()
		if d := compareCycle(ffs, fff, ffs.Cycle()); d != nil {
			d.Kind = "ff-" + d.Kind
			d.Window = commitWindow(ring)
			return d, nil
		}
	}
	if r1, r2 := ffs.HaltReason(), fff.HaltReason(); r1 != r2 {
		return &Divergence{Cycle: ffs.Cycle(), Kind: "ff-halt",
			Detail: fmt.Sprintf("halt reason %q vs %q", r1, r2), Window: commitWindow(ring)}, nil
	}
	if h1, h2 := ffs.ArchStateHash(), fff.ArchStateHash(); h1 != h2 {
		d := hashDivergence(ffs, fff, h1, h2, ring)
		d.Kind = "ff-" + d.Kind
		return d, nil
	}

	// Fused fast-forward vs the detailed run: same committed stream, so
	// the architectural end state must match exactly.
	if det == nil || !det.Halted() || !ffs.Halted() {
		return nil, nil // budget-bounded runs have no comparable end state
	}
	if r1, r2 := ffs.HaltReason(), det.HaltReason(); r1 != r2 {
		return &Divergence{Cycle: ffs.Cycle(), Kind: "ff-halt",
			Detail: fmt.Sprintf("fast-forward halt reason %q vs detailed %q", r1, r2), Window: commitWindow(ring)}, nil
	}
	e1, e2 := ffs.Exception(), det.Exception()
	if (e1 == nil) != (e2 == nil) || (e1 != nil && e1.Error() != e2.Error()) {
		return &Divergence{Cycle: ffs.Cycle(), Kind: "ff-exception",
			Detail: fmt.Sprintf("fast-forward exception %v vs detailed %v", e1, e2), Window: commitWindow(ring)}, nil
	}
	if c1, c2 := ffs.Committed(), det.Committed(); c1 != c2 {
		return &Divergence{Cycle: ffs.Cycle(), Kind: "ff-committed",
			Detail: fmt.Sprintf("fast-forward committed %d vs detailed %d", c1, c2), Window: commitWindow(ring)}, nil
	}
	if h1, h2 := ffs.ArchStateHash(), det.ArchStateHash(); h1 != h2 {
		d := hashDivergence(ffs, det, h1, h2, ring)
		if d.Kind == "state-hash" { // memory scan found no byte: register-file or bookkeeping delta
			d.Detail = fmt.Sprintf("final ArchStateHash %#x vs %#x", h1, h2)
		}
		d.Kind = "ff-arch-hash"
		d.Detail = "fast-forward vs detailed: " + d.Detail
		return d, nil
	}
	return nil, nil
}

// compareCycle probes the architectural state both machines agree on
// after every cycle: halt status, committed count, fetch PC, and the two
// architectural register files (as raw bits, so NaN payloads and -0.0
// differences count).
func compareCycle(det, fun *sim.Machine, cycle uint64) *Divergence {
	if det.Halted() != fun.Halted() {
		return &Divergence{Cycle: cycle, Kind: "halt",
			Detail: fmt.Sprintf("halted=%v (%s) vs halted=%v (%s)",
				det.Halted(), det.HaltReason(), fun.Halted(), fun.HaltReason())}
	}
	if c1, c2 := det.Committed(), fun.Committed(); c1 != c2 {
		return &Divergence{Cycle: cycle, Kind: "committed",
			Detail: fmt.Sprintf("committed %d vs %d", c1, c2)}
	}
	if p1, p2 := det.PC(), fun.PC(); p1 != p2 {
		return &Divergence{Cycle: cycle, Kind: "pc",
			Detail: fmt.Sprintf("fetch pc %d vs %d", p1, p2)}
	}
	rf1, rf2 := det.Sim().Registers(), fun.Sim().Registers()
	for i := 0; i < isa.NumRegs; i++ {
		if v1, v2 := rf1.ArchValue(isa.RegInt, i).Bits(), rf2.ArchValue(isa.RegInt, i).Bits(); v1 != v2 {
			return &Divergence{Cycle: cycle, Kind: "register",
				Detail: fmt.Sprintf("x%d = %#x vs %#x", i, v1, v2)}
		}
	}
	for i := 0; i < isa.NumRegs; i++ {
		if v1, v2 := rf1.ArchValue(isa.RegFloat, i).Bits(), rf2.ArchValue(isa.RegFloat, i).Bits(); v1 != v2 {
			return &Divergence{Cycle: cycle, Kind: "fp-register",
				Detail: fmt.Sprintf("f%d = %#x vs %#x", i, v1, v2)}
		}
	}
	return nil
}

// hashDivergence builds the report for a StateHash mismatch that the
// per-cycle probe missed, refining it with a byte-level memory scan (the
// one large state section the probe does not cover).
func hashDivergence(det, fun *sim.Machine, h1, h2 uint64, ring *trace.Ring) *Divergence {
	d := &Divergence{Cycle: det.Cycle(), Kind: "state-hash",
		Detail: fmt.Sprintf("final StateHash %#x vs %#x", h1, h2), Window: commitWindow(ring)}
	m1, m2 := det.Sim().Memory(), fun.Sim().Memory()
	n := m1.Size()
	if m2.Size() < n {
		n = m2.Size()
	}
	const chunk = 4096
	for addr := 0; addr < n; addr += chunk {
		end := addr + chunk
		if end > n {
			end = n
		}
		b1, exc1 := m1.ReadBytes(addr, end-addr)
		b2, exc2 := m2.ReadBytes(addr, end-addr)
		if exc1 != nil || exc2 != nil {
			break
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				d.Kind = "memory"
				d.Detail = fmt.Sprintf("memory[%#x] = %#02x vs %#02x (first differing byte)",
					addr+i, b1[i], b2[i])
				return d
			}
		}
	}
	return d
}

// commitWindow renders the ring's captured commit stream.
func commitWindow(ring *trace.Ring) []string {
	evs := ring.Events()
	out := make([]string, 0, len(evs))
	for _, ev := range evs {
		out = append(out, fmt.Sprintf("cycle %6d  pc %4d  %s", ev.Cycle, ev.PC, ev.Disasm))
	}
	return out
}
