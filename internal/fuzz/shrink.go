package fuzz

import "strings"

// Automatic failure shrinking: once the harness finds a divergent
// program, delta-debug it down to a minimal reproducer. The shrinker
// works on source lines, in ddmin style: try deleting progressively
// smaller chunks of instruction lines, keeping any deletion after which
// the program still assembles and still diverges. Label-definition
// lines, the final ecall, the assembler directives and the .data section
// are never deletion candidates — removing a referenced label would turn
// a semantic divergence into an assembly error, and the protected ecall
// keeps every shrunk candidate a halting program. A deleted counter
// initialization cannot hang a candidate either: generated back-edges
// only branch while their counter is strictly positive (gen.go), and the
// shrink predicate bounds cycles regardless.

// shrinkLine is one source line with its deletion eligibility.
type shrinkLine struct {
	text      string
	deletable bool
}

// splitShrinkable parses src into lines and marks deletion candidates:
// instruction lines only — never labels, directives, comments, blanks,
// or the final ecall.
func splitShrinkable(src string) []shrinkLine {
	rawLines := strings.Split(src, "\n")
	lines := make([]shrinkLine, len(rawLines))
	lastEcall := -1
	for i, raw := range rawLines {
		t := strings.TrimSpace(raw)
		deletable := t != "" &&
			!strings.HasPrefix(t, "#") && !strings.HasPrefix(t, "//") &&
			!strings.HasPrefix(t, ".") && !strings.HasSuffix(t, ":")
		lines[i] = shrinkLine{text: raw, deletable: deletable}
		if t == "ecall" {
			lastEcall = i
		}
	}
	if lastEcall >= 0 {
		lines[lastEcall].deletable = false
	}
	// Everything from .data on is the arena; keep it whole.
	for i := range lines {
		if strings.TrimSpace(lines[i].text) == ".data" {
			for j := i; j < len(lines); j++ {
				lines[j].deletable = false
			}
			break
		}
	}
	return lines
}

// join renders the kept lines back into a program.
func join(lines []shrinkLine, removed []bool) string {
	var b strings.Builder
	for i, l := range lines {
		if removed[i] {
			continue
		}
		b.WriteString(l.text)
		b.WriteByte('\n')
	}
	return b.String()
}

// Shrink minimizes src while keep(candidate) stays true. keep must
// report whether a candidate still reproduces the failure (and must
// return false for candidates that no longer assemble). The input itself
// must satisfy keep. Deterministic: same input and predicate, same
// output.
func Shrink(src string, keep func(candidate string) bool) string {
	lines := splitShrinkable(src)
	removed := make([]bool, len(lines))

	// Deletable line indices still present.
	alive := func() []int {
		var idx []int
		for i, l := range lines {
			if l.deletable && !removed[i] {
				idx = append(idx, i)
			}
		}
		return idx
	}

	// ddmin over chunk sizes: halve until single-line granularity, then
	// repeat single-line sweeps until a fixed point.
	for chunk := len(alive()) / 2; chunk >= 1; chunk /= 2 {
		for {
			idx := alive()
			progress := false
			for start := 0; start < len(idx); start += chunk {
				end := start + chunk
				if end > len(idx) {
					end = len(idx)
				}
				for _, i := range idx[start:end] {
					removed[i] = true
				}
				if keep(join(lines, removed)) {
					progress = true
					continue
				}
				for _, i := range idx[start:end] {
					removed[i] = false
				}
			}
			if !progress {
				break
			}
		}
	}

	// Drop label lines nothing references anymore (cosmetic, but keeps
	// reproducers readable).
	final := join(lines, removed)
	return dropOrphanLabels(final)
}

// dropOrphanLabels removes code-label definition lines whose name appears
// nowhere else in the program. Data labels (after .data) are kept.
func dropOrphanLabels(src string) string {
	lines := strings.Split(src, "\n")
	inData := false
	var out []string
	for _, raw := range lines {
		t := strings.TrimSpace(raw)
		if t == ".data" {
			inData = true
		}
		if !inData && strings.HasSuffix(t, ":") {
			name := strings.TrimSuffix(t, ":")
			if !referenced(lines, raw, name) {
				continue
			}
		}
		out = append(out, raw)
	}
	return strings.Join(out, "\n")
}

// referenced reports whether name occurs in any line other than defLine.
func referenced(lines []string, defLine, name string) bool {
	for _, l := range lines {
		if l == defLine {
			continue
		}
		if containsWord(l, name) {
			return true
		}
	}
	return false
}

// containsWord reports a whole-token occurrence of name in line (label
// names are \w+, so boundary = any non-alphanumeric).
func containsWord(line, name string) bool {
	for i := 0; i+len(name) <= len(line); i++ {
		if line[i:i+len(name)] != name {
			continue
		}
		before := i == 0 || !isWordByte(line[i-1])
		afterIdx := i + len(name)
		after := afterIdx == len(line) || !isWordByte(line[afterIdx])
		if before && after {
			return true
		}
	}
	return false
}

func isWordByte(b byte) bool {
	return b == '_' || (b >= '0' && b <= '9') || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}
