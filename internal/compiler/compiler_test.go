package compiler

import (
	"strings"
	"testing"

	"riscvsim/internal/asm"
	"riscvsim/internal/config"
	"riscvsim/internal/core"
	"riscvsim/internal/isa"
	"riscvsim/internal/memory"
)

var (
	testSet  = isa.RV32IMF()
	testRegs = isa.NewRegisterFile()
)

// runC compiles src at the given optimization level, assembles it, runs it
// on the default architecture and returns main's return value (a0).
func runC(t testing.TB, src string, opt int) int32 {
	t.Helper()
	sim := runCSim(t, src, opt)
	d, _ := testRegs.Lookup("a0")
	return sim.Registers().ArchValue(isa.RegInt, d.Index).Int()
}

func runCSim(t testing.TB, src string, opt int) *core.Simulation {
	t.Helper()
	res, err := Compile(src, opt)
	if err != nil {
		t.Fatalf("Compile(-O%d): %v", opt, err)
	}
	cfg := config.Default()
	mem := memory.New(cfg.Memory)
	prog, err := asm.Assemble(res.Assembly, testSet, testRegs, mem)
	if err != nil {
		t.Fatalf("assembling compiler output (-O%d): %v\n--- assembly ---\n%s", opt, err, res.Assembly)
	}
	entry, err := prog.EntryPoint("main")
	if err != nil {
		t.Fatalf("no main: %v", err)
	}
	sim, err := core.New(cfg, testSet, testRegs, prog, mem, entry)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3_000_000)
	if !sim.Halted() {
		t.Fatalf("-O%d: program did not halt\n--- assembly ---\n%s", opt, res.Assembly)
	}
	if exc := sim.Exception(); exc != nil {
		t.Fatalf("-O%d: runtime exception: %v\n--- assembly ---\n%s", opt, exc, res.Assembly)
	}
	return sim
}

// checkAllOpts runs the program at -O0..-O3 and requires the same result.
func checkAllOpts(t *testing.T, src string, want int32) {
	t.Helper()
	for opt := 0; opt <= 3; opt++ {
		if got := runC(t, src, opt); got != want {
			t.Errorf("-O%d: result = %d, want %d", opt, got, want)
		}
	}
}

func TestReturnConstant(t *testing.T) {
	checkAllOpts(t, "int main() { return 42; }", 42)
}

func TestArithmetic(t *testing.T) {
	checkAllOpts(t, "int main() { return (3 + 4) * 5 - 100 / 10 % 7; }", 32)
}

func TestVariablesAndAssignment(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int a = 10;
    int b = 4;
    int c;
    c = a - b;
    a += c;
    b *= 2;
    return a + b + c;   // 16 + 8 + 6
}`, 30)
}

func TestIfElse(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int x = 7;
    if (x > 10) return 1;
    else if (x > 5) return 2;
    else return 3;
}`, 2)
}

func TestWhileLoop(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int sum = 0;
    int i = 1;
    while (i <= 10) { sum += i; i++; }
    return sum;
}`, 55)
}

func TestForLoop(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int sum = 0;
    for (int i = 0; i < 5; i++) sum += i * i;
    return sum;   // 0+1+4+9+16
}`, 30)
}

func TestDoWhileBreakContinue(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int sum = 0;
    int i = 0;
    do {
        i++;
        if (i == 3) continue;
        if (i > 6) break;
        sum += i;
    } while (i < 100);
    return sum;   // 1+2+4+5+6
}`, 18)
}

func TestFunctionsAndRecursion(t *testing.T) {
	checkAllOpts(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }`, 55)
}

func TestMultipleArguments(t *testing.T) {
	checkAllOpts(t, `
int combine(int a, int b, int c, int d, int e, int f) {
    return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
}
int main() { return combine(1, 2, 3, 4, 5, 6); }`, 91)
}

func TestLocalArrays(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int a[5];
    for (int i = 0; i < 5; i++) a[i] = i * 10;
    int sum = 0;
    for (int i = 0; i < 5; i++) sum += a[i];
    return sum;
}`, 100)
}

func TestArrayInitializers(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int a[4] = {5, 10, 15, 20};
    return a[0] + a[3];
}`, 25)
}

func TestGlobalsAndArrays(t *testing.T) {
	checkAllOpts(t, `
int counter = 5;
int table[4] = {1, 2, 3, 4};
int main() {
    counter += table[2];
    return counter;
}`, 8)
}

func TestPointers(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int x = 10;
    int *p = &x;
    *p = 20;
    int **pp = &p;
    **pp += 2;
    return x;
}`, 22)
}

func TestPointerArithmetic(t *testing.T) {
	checkAllOpts(t, `
int a[5] = {1, 2, 3, 4, 5};
int main() {
    int *p = a;
    p = p + 2;
    int d = p - a;       // 2
    return *p + *(p + 1) + d;   // 3 + 4 + 2
}`, 9)
}

func TestArrayAsParameter(t *testing.T) {
	checkAllOpts(t, `
int sum(int *v, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) s += v[i];
    return s;
}
int data[6] = {1, 2, 3, 4, 5, 6};
int main() { return sum(data, 6); }`, 21)
}

func TestCharType(t *testing.T) {
	checkAllOpts(t, `
int main() {
    char c = 'A';
    c = c + 1;
    char big = 200;      // wraps to signed char
    return c + (big < 0 ? 1 : 0);   // 'B' + 1
}`, 67)
}

func TestUnsignedArithmetic(t *testing.T) {
	checkAllOpts(t, `
int main() {
    unsigned a = 0;
    a = a - 1;           // 0xFFFFFFFF
    unsigned b = a / 2;  // 0x7FFFFFFF
    return b == 0x7FFFFFFF;
}`, 1)
}

func TestShortCircuit(t *testing.T) {
	checkAllOpts(t, `
int hits = 0;
int bump() { hits++; return 1; }
int main() {
    int a = 0 && bump();
    int b = 1 || bump();
    return hits * 10 + a + b;   // bump never called
}`, 1)
}

func TestTernary(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int x = 5;
    return x > 3 ? x * 2 : x - 1;
}`, 10)
}

func TestBitwiseOps(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int a = 0xF0;
    int b = 0x3C;
    return ((a & b) | (a ^ b)) + (1 << 4) + (256 >> 4);   // 0xFC + 16 + 16
}`, 284)
}

func TestSizeof(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int a[10];
    a[0] = 0;
    return sizeof(int) + sizeof(char) + sizeof(a) + sizeof(int*);
}`, 49)
}

func TestCasts(t *testing.T) {
	checkAllOpts(t, `
int main() {
    float f = 3.75f;
    int i = (int)f;          // 3
    float g = (float)7 / 2;  // 3.5
    int j = (int)(g * 2.0f); // 7
    return i + j;
}`, 10)
}

func TestFloatMath(t *testing.T) {
	checkAllOpts(t, `
float scale = 1.5f;
int main() {
    float sum = 0.0f;
    for (int i = 1; i <= 4; i++) {
        sum += (float)i * scale;
    }
    return (int)sum;    // 1.5+3+4.5+6 = 15
}`, 15)
}

func TestFloatComparison(t *testing.T) {
	checkAllOpts(t, `
int main() {
    float a = 0.5f;
    float b = 0.25f;
    int r = 0;
    if (a > b) r += 1;
    if (a != b) r += 2;
    if (b <= 0.25f) r += 4;
    return r;
}`, 7)
}

func TestExternArray(t *testing.T) {
	// The paper's extern workflow: storage reserved, contents filled via
	// the memory settings by label. Here we just verify it assembles,
	// allocates and reads back zeros.
	checkAllOpts(t, `
extern int samples[8];
int main() {
    int s = 0;
    for (int i = 0; i < 8; i++) s += samples[i];
    return s;
}`, 0)
}

func TestPostPreIncrement(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int i = 5;
    int a = i++;   // a=5 i=6
    int b = ++i;   // b=7 i=7
    int c = i--;   // c=7 i=6
    return a + b + c + i;
}`, 25)
}

func TestCommaOperator(t *testing.T) {
	checkAllOpts(t, `
int main() {
    int a = (1, 2, 3);
    int b = 0;
    for (int i = 0; i < 3; i++, b++) {}
    return a + b;
}`, 6)
}

func TestNestedCalls(t *testing.T) {
	checkAllOpts(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main() { return add(mul(2, 3), add(mul(4, 5), 1)); }`, 27)
}

func TestQuicksortInC(t *testing.T) {
	// The paper's flagship complex program, in C this time.
	src := `
int arr[10] = {9, -3, 5, 1, 12, -7, 0, 4, 100, -50};

void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }

int partition(int *v, int lo, int hi) {
    int pivot = v[hi];
    int i = lo - 1;
    for (int j = lo; j < hi; j++) {
        if (v[j] < pivot) { i++; swap(&v[i], &v[j]); }
    }
    swap(&v[i + 1], &v[hi]);
    return i + 1;
}

void quicksort(int *v, int lo, int hi) {
    if (lo >= hi) return;
    int p = partition(v, lo, hi);
    quicksort(v, lo, p - 1);
    quicksort(v, p + 1, hi);
}

int main() {
    quicksort(arr, 0, 9);
    int ok = 1;
    for (int i = 1; i < 10; i++) {
        if (arr[i - 1] > arr[i]) ok = 0;
    }
    return ok;
}`
	checkAllOpts(t, src, 1)
}

func TestDiagnosticsHaveLines(t *testing.T) {
	_, err := Compile("int main() {\n  return x;\n}", 0)
	if err == nil {
		t.Fatal("undeclared identifier should fail")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should point at line 2: %v", err)
	}
}

func TestMultipleDiagnostics(t *testing.T) {
	_, err := Compile(`
int main() {
  int a = b;
  int c = d;
  return a + c;
}`, 0)
	if err == nil {
		t.Fatal("should fail")
	}
	dl, ok := err.(DiagList)
	if !ok {
		t.Fatalf("error is %T, want DiagList", err)
	}
	if len(dl) < 2 {
		t.Errorf("want at least 2 diagnostics, got %d", len(dl))
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { if return; }",
		"struct foo { int x; };",
		`int main() { return "hi"; }`,
	}
	for _, src := range cases {
		if _, err := Compile(src, 0); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []string{
		"int main() { int a; a[0] = 1; return 0; }", // indexing non-pointer
		"int main() { 5 = 6; return 0; }",           // bad lvalue
		"int f(int a); int main() { return f(1, 2); }",
		"void v() {} int main() { return v() + 1; }",
	}
	for _, src := range cases {
		if _, err := Compile(src, 0); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestLineMapLinksCAndAssembly(t *testing.T) {
	src := "int main() {\n  int a = 1;\n  int b = 2;\n  return a + b;\n}"
	res, err := Compile(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(res.Assembly, "\n"), "\n")
	if len(res.LineMap) != len(lines) {
		t.Fatalf("LineMap has %d entries for %d assembly lines", len(res.LineMap), len(lines))
	}
	// Some assembly line must map to C line 4 (the return).
	found := false
	for _, cl := range res.LineMap {
		if cl == 4 {
			found = true
		}
	}
	if !found {
		t.Error("no assembly line maps to the return statement")
	}
}

func TestOptimizationReducesCodeSize(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    for (int i = 0; i < 20; i++) sum += i * 4 + 3 - 3;
    return sum;
}`
	r0, err := Compile(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	n0 := len(strings.Split(r0.Assembly, "\n"))
	n2 := len(strings.Split(r2.Assembly, "\n"))
	if n2 >= n0 {
		t.Errorf("-O2 produced %d lines, -O0 %d — optimization should shrink code", n2, n0)
	}
}

func TestO3UnrollsConstantLoops(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    for (int i = 0; i < 8; i++) sum += i;
    return sum;
}`
	r3, err := Compile(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A fully unrolled loop has no backward branch to a .Lfor label.
	if strings.Contains(r3.Assembly, ".Lfor") {
		t.Errorf("-O3 left the loop rolled:\n%s", r3.Assembly)
	}
	if got := runC(t, src, 3); got != 28 {
		t.Errorf("-O3 result = %d, want 28", got)
	}
}

func TestOptimizedCodeIsFaster(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    for (int i = 0; i < 50; i++) {
        sum += i * 8 / 4 + 1;
    }
    return sum;
}`
	s0 := runCSim(t, src, 0)
	s2 := runCSim(t, src, 2)
	if s2.Cycle() >= s0.Cycle() {
		t.Errorf("-O2 took %d cycles, -O0 took %d — optimization should be faster",
			s2.Cycle(), s0.Cycle())
	}
}

func TestConstantFolding(t *testing.T) {
	r1, err := Compile("int main() { return 2 * 3 + 4 * 5; }", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r1.Assembly, "li t0, 26") {
		t.Errorf("-O1 should fold 2*3+4*5 to 26:\n%s", r1.Assembly)
	}
}

func TestStrengthReduction(t *testing.T) {
	src := `
int a[16];
int main() {
    int i = 7;
    return a[i];
}`
	r2, err := Compile(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r2.Assembly, "slli") {
		t.Errorf("-O2 should use a shift for the *4 index scale:\n%s", r2.Assembly)
	}
	if got := runC(t, src, 2); got != 0 {
		t.Errorf("result = %d", got)
	}
}

func TestCompilerOutputPassesAssemblerFilter(t *testing.T) {
	res, err := Compile("int g = 1; int main() { return g; }", 1)
	if err != nil {
		t.Fatal(err)
	}
	filtered := asm.FilterCompilerOutput(res.Assembly)
	mem := memory.New(memory.Config{Size: 64 * 1024, CallStackSize: 1024})
	if _, err := asm.Assemble(filtered, testSet, testRegs, mem); err != nil {
		t.Errorf("filtered compiler output no longer assembles: %v", err)
	}
}
