package compiler

import (
	"math"
	"strings"
)

func mathFloat32bits(f float32) uint32 { return math.Float32bits(f) }

// ---------------------------------------------------------------------------
// O1: constant folding
// ---------------------------------------------------------------------------

// foldProgram folds constant subexpressions in every function body and
// global initializer.
func foldProgram(ast *Program) {
	for _, g := range ast.Globals {
		if g.Init != nil {
			foldExpr(g.Init)
		}
		for _, e := range g.Inits {
			foldExpr(e)
		}
	}
	for _, f := range ast.Funcs {
		foldStmt(f.Body)
	}
}

func foldStmt(st *Stmt) {
	if st == nil {
		return
	}
	foldExpr(st.Expr)
	foldExpr(st.Cond)
	foldExpr(st.Post)
	if st.Decl != nil {
		foldExpr(st.Decl.Init)
		for _, e := range st.Decl.Inits {
			foldExpr(e)
		}
	}
	foldStmt(st.Init)
	foldStmt(st.Then)
	foldStmt(st.Else)
	for _, c := range st.Body {
		foldStmt(c)
	}
}

// foldExpr rewrites e in place when it reduces to a literal, and applies
// algebraic identities (x+0, x*1, x*0).
func foldExpr(e *Expr) {
	if e == nil {
		return
	}
	foldExpr(e.L)
	foldExpr(e.R)
	foldExpr(e.R2)
	for _, a := range e.Args {
		foldExpr(a)
	}
	switch e.Kind {
	case EBinary:
		foldBinary(e)
	case EUnary:
		if e.L.Kind == EIntLit {
			switch e.Op {
			case "-":
				replaceInt(e, -e.L.Int)
			case "!":
				replaceInt(e, boolToInt(e.L.Int == 0))
			case "~":
				replaceInt(e, int64(^int32(e.L.Int)))
			}
		} else if e.L.Kind == EFloatLit && e.Op == "-" {
			flt := -e.L.Flt
			ty := e.Type
			*e = Expr{Kind: EFloatLit, Flt: flt, Type: ty, Line: e.Line, Col: e.Col}
		}
	case ECast:
		// Fold numeric casts of literals.
		if e.Cast == nil || e.L == nil {
			return
		}
		if e.L.Kind == EIntLit && e.Cast.IsInteger() {
			v := e.L.Int
			if e.Cast.Kind == TyChar {
				v = int64(int8(v))
			}
			replaceInt(e, v)
		} else if e.L.Kind == EIntLit && e.Cast.IsFloat() {
			f := float64(e.L.Int)
			ty := e.Type
			*e = Expr{Kind: EFloatLit, Flt: f, Type: ty, Line: e.Line, Col: e.Col}
		} else if e.L.Kind == EFloatLit && e.Cast.IsInteger() {
			replaceInt(e, int64(int32(e.L.Flt)))
		} else if e.L.Kind == EFloatLit && e.Cast.IsFloat() {
			f := e.L.Flt
			if e.Cast.Kind == TyFloat {
				f = float64(float32(f))
			}
			ty := e.Type
			*e = Expr{Kind: EFloatLit, Flt: f, Type: ty, Line: e.Line, Col: e.Col}
		}
	}
}

func replaceInt(e *Expr, v int64) {
	ty := e.Type
	*e = Expr{Kind: EIntLit, Int: int64(int32(v)), Type: ty, Line: e.Line, Col: e.Col}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func foldBinary(e *Expr) {
	l, r := e.L, e.R
	// Integer constant folding.
	if l.Kind == EIntLit && r.Kind == EIntLit && e.Type != nil && e.Type.IsInteger() {
		a, b := int32(l.Int), int32(r.Int)
		var v int64
		switch e.Op {
		case "+":
			v = int64(a + b)
		case "-":
			v = int64(a - b)
		case "*":
			v = int64(a * b)
		case "/":
			if b == 0 {
				return // leave for runtime exception
			}
			v = int64(a / b)
		case "%":
			if b == 0 {
				return
			}
			v = int64(a % b)
		case "&":
			v = int64(a & b)
		case "|":
			v = int64(a | b)
		case "^":
			v = int64(a ^ b)
		case "<<":
			v = int64(a << (uint32(b) & 31))
		case ">>":
			v = int64(a >> (uint32(b) & 31))
		case "==":
			v = boolToInt(a == b)
		case "!=":
			v = boolToInt(a != b)
		case "<":
			v = boolToInt(a < b)
		case "<=":
			v = boolToInt(a <= b)
		case ">":
			v = boolToInt(a > b)
		case ">=":
			v = boolToInt(a >= b)
		case "&&":
			v = boolToInt(a != 0 && b != 0)
		case "||":
			v = boolToInt(a != 0 || b != 0)
		default:
			return
		}
		replaceInt(e, v)
		return
	}
	// Float constant folding for + - * /.
	if l.Kind == EFloatLit && r.Kind == EFloatLit {
		var v float64
		switch e.Op {
		case "+":
			v = l.Flt + r.Flt
		case "-":
			v = l.Flt - r.Flt
		case "*":
			v = l.Flt * r.Flt
		case "/":
			if r.Flt == 0 {
				return
			}
			v = l.Flt / r.Flt
		default:
			return
		}
		ty := e.Type
		*e = Expr{Kind: EFloatLit, Flt: v, Type: ty, Line: e.Line, Col: e.Col}
		return
	}
	// Algebraic identities (integer only; pointer arithmetic excluded).
	if e.Type != nil && e.Type.IsInteger() {
		if r.Kind == EIntLit {
			switch {
			case r.Int == 0 && (e.Op == "+" || e.Op == "-" || e.Op == "|" || e.Op == "^" || e.Op == "<<" || e.Op == ">>"):
				*e = *l
			case r.Int == 1 && (e.Op == "*" || e.Op == "/"):
				*e = *l
			case r.Int == 0 && e.Op == "*":
				replaceInt(e, 0)
			}
			return
		}
		if l.Kind == EIntLit {
			switch {
			case l.Int == 0 && (e.Op == "+" || e.Op == "|" || e.Op == "^"):
				*e = *r
			case l.Int == 1 && e.Op == "*":
				*e = *r
			case l.Int == 0 && e.Op == "*":
				replaceInt(e, 0)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// O3: loop unrolling
// ---------------------------------------------------------------------------

// maxUnrollTrips bounds full unrolling.
const maxUnrollTrips = 16

// unrollProgram fully unrolls `for` loops with a recognizable constant
// trip count: for (i = C0; i < C1; i++) or i += C. The body is replicated
// trip-count times followed by the post expression, preserving semantics
// for bodies without break/continue.
func unrollProgram(ast *Program) {
	for _, f := range ast.Funcs {
		unrollStmt(f.Body)
	}
}

func unrollStmt(st *Stmt) {
	if st == nil {
		return
	}
	for _, c := range st.Body {
		unrollStmt(c)
	}
	unrollStmt(st.Init)
	unrollStmt(st.Then)
	unrollStmt(st.Else)

	if st.Kind != SFor {
		return
	}
	trips, ok := tripCount(st)
	if !ok || trips < 0 || trips > maxUnrollTrips {
		return
	}
	if hasLoopEscape(st.Then) {
		return
	}
	// Replace the loop with: init; (body; post;) * trips
	body := []*Stmt{}
	if st.Init != nil {
		body = append(body, st.Init)
	}
	for k := 0; k < trips; k++ {
		body = append(body, st.Then)
		if st.Post != nil {
			body = append(body, &Stmt{Kind: SExpr, Expr: st.Post, Line: st.Line})
		}
	}
	*st = Stmt{Kind: SBlock, Body: body, Line: st.Line}
}

// tripCount recognizes for (i = C0; i < C1; i++/i+=C) patterns.
func tripCount(st *Stmt) (int, bool) {
	if st.Init == nil || st.Cond == nil || st.Post == nil {
		return 0, false
	}
	// Init: i = C0 (expression or declaration).
	var ivar *Symbol
	var start int64
	switch {
	case st.Init.Kind == SExpr && st.Init.Expr.Kind == EAssign &&
		st.Init.Expr.L.Kind == EVar && st.Init.Expr.R.Kind == EIntLit:
		ivar = st.Init.Expr.L.Sym
		start = st.Init.Expr.R.Int
	case st.Init.Kind == SDecl && st.Init.Decl.Init != nil &&
		st.Init.Decl.Init.Kind == EIntLit:
		ivar = st.Init.Decl.Sym
		start = st.Init.Decl.Init.Int
	default:
		return 0, false
	}
	if ivar == nil {
		return 0, false
	}
	// Cond: i < C1  or i <= C1.
	c := st.Cond
	if c.Kind != EBinary || c.L.Kind != EVar || c.L.Sym != ivar || c.R.Kind != EIntLit {
		return 0, false
	}
	limit := c.R.Int
	if c.Op == "<=" {
		limit++
	} else if c.Op != "<" {
		return 0, false
	}
	// Post: i++ / ++i / i = i + C / i += C (desugared to i = i + C).
	step := int64(0)
	p := st.Post
	switch {
	case (p.Kind == EPreIncr || p.Kind == EPostIncr) && p.L.Kind == EVar && p.L.Sym == ivar:
		step = 1
		if p.Op == "-" {
			step = -1
		}
	case p.Kind == EAssign && p.L.Kind == EVar && p.L.Sym == ivar &&
		p.R.Kind == EBinary && p.R.Op == "+" &&
		p.R.L.Kind == EVar && p.R.L.Sym == ivar && p.R.R.Kind == EIntLit:
		step = p.R.R.Int
	default:
		return 0, false
	}
	if step <= 0 {
		return 0, false
	}
	// The body must not modify i.
	if modifiesVar(st.Then, ivar) {
		return 0, false
	}
	if limit <= start {
		return 0, true
	}
	trips := (limit - start + step - 1) / step
	return int(trips), true
}

func hasLoopEscape(st *Stmt) bool {
	if st == nil {
		return false
	}
	switch st.Kind {
	case SBreak, SContinue, SReturn:
		return true
	case SWhile, SDoWhile, SFor:
		// Inner loops own their break/continue; but a return still
		// escapes. Conservatively refuse nested loops.
		return true
	}
	for _, c := range st.Body {
		if hasLoopEscape(c) {
			return true
		}
	}
	return hasLoopEscape(st.Init) || hasLoopEscape(st.Then) || hasLoopEscape(st.Else)
}

// modifiesVar reports whether the statement assigns to sym.
func modifiesVar(st *Stmt, sym *Symbol) bool {
	found := false
	var walkE func(e *Expr)
	walkE = func(e *Expr) {
		if e == nil || found {
			return
		}
		if (e.Kind == EAssign || e.Kind == EPreIncr || e.Kind == EPostIncr) &&
			e.L != nil && e.L.Kind == EVar && e.L.Sym == sym {
			found = true
			return
		}
		if e.Kind == EAddr && e.L != nil && e.L.Kind == EVar && e.L.Sym == sym {
			found = true // address escape: anything can happen
			return
		}
		walkE(e.L)
		walkE(e.R)
		walkE(e.R2)
		for _, a := range e.Args {
			walkE(a)
		}
	}
	var walkS func(s *Stmt)
	walkS = func(s *Stmt) {
		if s == nil || found {
			return
		}
		walkE(s.Expr)
		walkE(s.Cond)
		walkE(s.Post)
		if s.Decl != nil {
			walkE(s.Decl.Init)
		}
		walkS(s.Init)
		walkS(s.Then)
		walkS(s.Else)
		for _, c := range s.Body {
			walkS(c)
		}
	}
	walkS(st)
	return found
}

// ---------------------------------------------------------------------------
// O2: peephole
// ---------------------------------------------------------------------------

// peephole performs local cleanups on the emitted assembly:
//   - push/pop pairs with no intervening sp use become register moves
//   - `mv x, x` disappears
//   - jumps to the immediately following label disappear
func (g *codegen) peephole() {
	changed := true
	for changed {
		changed = g.peepholeOnce()
	}
}

func (g *codegen) peepholeOnce() bool {
	out := g.out
	changed := false
	var res []asmLine
	for i := 0; i < len(out); i++ {
		l := out[i]
		// Pattern: addi sp, sp, -4 / sw t0, 0(sp) / <X: no sp, no t1 write... too risky>
		// Safe adjacent pattern: push immediately followed by the
		// matching pop (value round-trips through memory):
		//   addi sp, sp, -4; sw R, 0(sp); [mv t1, t0]? ; lw R2, 0(sp); addi sp, sp, 4
		if strings.HasPrefix(l.text, "addi sp, sp, -") && i+3 < len(out) {
			sw := out[i+1].text
			if strings.HasPrefix(sw, "sw ") && strings.HasSuffix(sw, ", 0(sp)") {
				src := strings.TrimSuffix(strings.TrimPrefix(sw, "sw "), ", 0(sp)")
				j := i + 2
				var mid []asmLine
				// Allow one intervening `mv` or `li` that doesn't
				// touch sp or the pushed value's source register.
				for j < len(out) && len(mid) < 2 {
					t := out[j].text
					if strings.HasPrefix(t, "lw ") && strings.HasSuffix(t, ", 0(sp)") {
						break
					}
					if (strings.HasPrefix(t, "mv ") || strings.HasPrefix(t, "li ")) &&
						!strings.Contains(t, "sp") && !touchesReg(t, src) {
						mid = append(mid, out[j])
						j++
						continue
					}
					break
				}
				if j+1 < len(out) && strings.HasPrefix(out[j].text, "lw ") &&
					strings.HasSuffix(out[j].text, ", 0(sp)") &&
					out[j+1].text == "addi sp, sp, 4" {
					dst := strings.TrimSuffix(strings.TrimPrefix(out[j].text, "lw "), ", 0(sp)")
					if !midWrites(mid, dst) {
						res = append(res, mid...)
						if dst != src {
							res = append(res, asmLine{text: "mv " + dst + ", " + src, cline: l.cline})
						}
						i = j + 1
						changed = true
						continue
					}
				}
			}
		}
		// mv x, x
		if strings.HasPrefix(l.text, "mv ") {
			parts := strings.Split(strings.TrimPrefix(l.text, "mv "), ", ")
			if len(parts) == 2 && parts[0] == parts[1] {
				changed = true
				continue
			}
		}
		// j L immediately followed by L:
		if strings.HasPrefix(l.text, "j ") && i+1 < len(out) {
			label := strings.TrimPrefix(l.text, "j ") + ":"
			if out[i+1].text == label {
				changed = true
				continue
			}
		}
		res = append(res, l)
	}
	g.out = res
	return changed
}

// touchesReg reports whether the instruction text writes the named register
// (first operand).
func touchesReg(text, reg string) bool {
	fields := strings.SplitN(text, " ", 2)
	if len(fields) < 2 {
		return false
	}
	ops := strings.Split(fields[1], ",")
	return strings.TrimSpace(ops[0]) == reg
}

func midWrites(mid []asmLine, reg string) bool {
	for _, m := range mid {
		if touchesReg(m.text, reg) {
			return true
		}
	}
	return false
}
