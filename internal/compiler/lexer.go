// Package compiler implements the simulator's C compiler: a from-scratch
// compiler for a practical C subset targeting RV32IM+F assembly, standing
// in for the paper's GCC cross-compilation interface (§II, §III-C). It
// provides the same workflow: C source in, RISC-V assembly out, with four
// optimization levels (-O0..-O3), diagnostics with line/column positions
// for editor error highlighting (paper Fig. 6), and a C-line to
// assembly-line mapping for the editor's linked highlighting (Fig. 5).
//
// Substitution note (DESIGN.md §1): the paper shells out to a GCC
// cross-compiler on the server. This package replaces that proprietary
// dependency with an equivalent in-process code path: POST C source →
// compile → assembly + diagnostics + line links.
package compiler

import (
	"fmt"
	"strings"
)

// TokKind classifies C tokens.
type TokKind uint8

// Token kinds.
const (
	TIdent TokKind = iota
	TKeyword
	TIntLit
	TFloatLit
	TCharLit
	TStringLit
	TPunct
	TEOF
)

// Token is one C token.
type Token struct {
	Kind TokKind
	Text string
	Int  int64
	Flt  float64
	Line int
	Col  int
}

// Diag is a compiler diagnostic with a source position.
type Diag struct {
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// Error implements the error interface.
func (d *Diag) Error() string { return fmt.Sprintf("%d:%d: %s", d.Line, d.Col, d.Msg) }

// DiagList collects diagnostics so the editor can mark every error.
type DiagList []*Diag

// Error implements the error interface.
func (l DiagList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	msgs := make([]string, len(l))
	for i, d := range l {
		msgs[i] = d.Error()
	}
	return strings.Join(msgs, "\n")
}

// Err returns nil for an empty list.
func (l DiagList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}

var keywords = map[string]bool{
	"int": true, "char": true, "unsigned": true, "float": true,
	"double": true, "void": true, "long": true, "short": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"return": true, "break": true, "continue": true,
	"extern": true, "static": true, "const": true, "sizeof": true,
	"struct": true, "typedef": true, "switch": true, "case": true,
	"default": true, "goto": true, "enum": true, "union": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	errs DiagList
}

func (lx *lexer) errf(line, col int, format string, args ...any) {
	lx.errs = append(lx.errs, &Diag{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

// lex tokenizes C source, stripping // and /* */ comments and
// #-directives (the subset has no preprocessor; #include lines are
// ignored so realistic sources still compile).
func lex(src string) ([]Token, DiagList) {
	lx := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.advance()
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '#':
			// Preprocessor directive: skip the line.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek(1) == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.src[lx.pos] == '*' && lx.peek(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errf(startLine, startCol, "unterminated block comment")
			}
		case isCDigit(c) || (c == '.' && isCDigit(lx.peek(1))):
			toks = append(toks, lx.lexNumber())
		case isCIdentStart(c):
			toks = append(toks, lx.lexIdent())
		case c == '\'':
			toks = append(toks, lx.lexChar())
		case c == '"':
			toks = append(toks, lx.lexString())
		default:
			toks = append(toks, lx.lexPunct())
		}
	}
	toks = append(toks, Token{Kind: TEOF, Line: lx.line, Col: lx.col})
	return toks, lx.errs
}

func (lx *lexer) peek(n int) byte {
	if lx.pos+n < len(lx.src) {
		return lx.src[lx.pos+n]
	}
	return 0
}

func (lx *lexer) advance() {
	if lx.src[lx.pos] == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	lx.pos++
}

func (lx *lexer) lexNumber() Token {
	t := Token{Line: lx.line, Col: lx.col}
	start := lx.pos
	isFloat := false
	if lx.src[lx.pos] == '0' && (lx.peek(1) == 'x' || lx.peek(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHexDigit(lx.src[lx.pos]) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && (isCDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
			if lx.src[lx.pos] == '.' {
				isFloat = true
			}
			lx.advance()
		}
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
			isFloat = true
			lx.advance()
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.advance()
			}
			for lx.pos < len(lx.src) && isCDigit(lx.src[lx.pos]) {
				lx.advance()
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Suffixes (f, u, l) are accepted and ignored.
	for lx.pos < len(lx.src) && strings.ContainsRune("fFuUlL", rune(lx.src[lx.pos])) {
		if lx.src[lx.pos] == 'f' || lx.src[lx.pos] == 'F' {
			isFloat = true
		}
		lx.advance()
	}
	t.Text = text
	if isFloat {
		t.Kind = TFloatLit
		fmt.Sscanf(text, "%g", &t.Flt)
	} else {
		t.Kind = TIntLit
		var v int64
		if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
			fmt.Sscanf(text[2:], "%x", &v)
		} else {
			fmt.Sscanf(text, "%d", &v)
		}
		t.Int = v
	}
	return t
}

func (lx *lexer) lexIdent() Token {
	t := Token{Line: lx.line, Col: lx.col}
	start := lx.pos
	for lx.pos < len(lx.src) && isCIdentChar(lx.src[lx.pos]) {
		lx.advance()
	}
	t.Text = lx.src[start:lx.pos]
	if keywords[t.Text] {
		t.Kind = TKeyword
	} else {
		t.Kind = TIdent
	}
	return t
}

func (lx *lexer) lexChar() Token {
	t := Token{Kind: TCharLit, Line: lx.line, Col: lx.col}
	lx.advance() // '
	var v int64
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '\\' {
		lx.advance()
		if lx.pos < len(lx.src) {
			v = int64(unescapeC(lx.src[lx.pos]))
			lx.advance()
		}
	} else if lx.pos < len(lx.src) {
		v = int64(lx.src[lx.pos])
		lx.advance()
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '\'' {
		lx.advance()
	} else {
		lx.errf(t.Line, t.Col, "unterminated character literal")
	}
	t.Int = v
	t.Text = fmt.Sprintf("%d", v)
	return t
}

func (lx *lexer) lexString() Token {
	t := Token{Kind: TStringLit, Line: lx.line, Col: lx.col}
	lx.advance() // "
	var sb strings.Builder
	closed := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\\' {
			lx.advance()
			if lx.pos < len(lx.src) {
				sb.WriteByte(unescapeC(lx.src[lx.pos]))
				lx.advance()
			}
			continue
		}
		if c == '"' {
			lx.advance()
			closed = true
			break
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
		lx.advance()
	}
	if !closed {
		lx.errf(t.Line, t.Col, "unterminated string literal")
	}
	t.Text = sb.String()
	return t
}

// multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
}

func (lx *lexer) lexPunct() Token {
	t := Token{Kind: TPunct, Line: lx.line, Col: lx.col}
	rest := lx.src[lx.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			t.Text = p
			for range p {
				lx.advance()
			}
			return t
		}
	}
	lx.errf(lx.line, lx.col, "unexpected character %q", string(lx.src[lx.pos]))
	t.Text = string(lx.src[lx.pos])
	lx.advance()
	return t
}

func unescapeC(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	default:
		return c
	}
}

func isCDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isCDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isCIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isCIdentChar(c byte) bool { return isCIdentStart(c) || isCDigit(c) }
