package compiler

import "fmt"

// TypeKind enumerates the supported C types.
type TypeKind uint8

// Supported type kinds.
const (
	TyVoid TypeKind = iota
	TyChar
	TyInt
	TyUInt
	TyFloat
	TyDouble
	TyPtr
	TyArray
	TyFunc
)

// CType is a C type. Pointer and array types link to their element type.
type CType struct {
	Kind TypeKind
	Elem *CType // pointer/array element
	Len  int    // array length
	// Func signature.
	Ret    *CType
	Params []*CType
}

// Basic type singletons.
var (
	typeVoid   = &CType{Kind: TyVoid}
	typeChar   = &CType{Kind: TyChar}
	typeInt    = &CType{Kind: TyInt}
	typeUInt   = &CType{Kind: TyUInt}
	typeFloat  = &CType{Kind: TyFloat}
	typeDouble = &CType{Kind: TyDouble}
)

// ptrTo returns a pointer type.
func ptrTo(e *CType) *CType { return &CType{Kind: TyPtr, Elem: e} }

// arrayOf returns an array type.
func arrayOf(e *CType, n int) *CType { return &CType{Kind: TyArray, Elem: e, Len: n} }

// Size returns the byte size of the type.
func (t *CType) Size() int {
	switch t.Kind {
	case TyChar:
		return 1
	case TyInt, TyUInt, TyFloat, TyPtr:
		return 4
	case TyDouble:
		return 8
	case TyArray:
		return t.Elem.Size() * t.Len
	default:
		return 0
	}
}

// Align returns the alignment requirement.
func (t *CType) Align() int {
	if t.Kind == TyArray {
		return t.Elem.Align()
	}
	s := t.Size()
	if s == 0 {
		return 1
	}
	return s
}

// IsFloat reports whether the type is floating point.
func (t *CType) IsFloat() bool { return t.Kind == TyFloat || t.Kind == TyDouble }

// IsInteger reports whether the type is an integer type.
func (t *CType) IsInteger() bool {
	return t.Kind == TyChar || t.Kind == TyInt || t.Kind == TyUInt
}

// IsScalar reports whether the type fits a register.
func (t *CType) IsScalar() bool {
	return t.IsInteger() || t.IsFloat() || t.Kind == TyPtr
}

// String renders the type for diagnostics.
func (t *CType) String() string {
	switch t.Kind {
	case TyVoid:
		return "void"
	case TyChar:
		return "char"
	case TyInt:
		return "int"
	case TyUInt:
		return "unsigned"
	case TyFloat:
		return "float"
	case TyDouble:
		return "double"
	case TyPtr:
		return t.Elem.String() + "*"
	case TyArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TyFunc:
		return "function"
	default:
		return "?"
	}
}

func sameType(a, b *CType) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TyPtr:
		return sameType(a.Elem, b.Elem)
	case TyArray:
		return a.Len == b.Len && sameType(a.Elem, b.Elem)
	default:
		return true
	}
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ExprKind enumerates expression node kinds.
type ExprKind uint8

// Expression kinds.
const (
	EIntLit ExprKind = iota
	EFloatLit
	EVar      // identifier reference
	EBinary   // Op applied to L, R
	EUnary    // Op applied to L (-, !, ~)
	EAssign   // L = R (plain; compound ops are desugared by the parser)
	ECond     // L ? R : R2
	ECall     // Fn(Args...)
	EIndex    // L[R]
	EDeref    // *L
	EAddr     // &L
	ECast     // (Type)L
	EPreIncr  // ++L / --L (Op "+" or "-")
	EPostIncr // L++ / L-- (Op "+" or "-")
	ESizeof
)

// Expr is one expression node, annotated with its type by sema.
type Expr struct {
	Kind ExprKind
	Op   string
	L, R *Expr
	R2   *Expr
	Fn   string
	Args []*Expr
	Int  int64
	Flt  float64
	Name string
	Cast *CType

	Type *CType // set by sema
	Line int
	Col  int
	// Sym is resolved by sema for EVar.
	Sym *Symbol
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// StmtKind enumerates statement node kinds.
type StmtKind uint8

// Statement kinds.
const (
	SExpr StmtKind = iota
	SDecl
	SIf
	SWhile
	SDoWhile
	SFor
	SReturn
	SBreak
	SContinue
	SBlock
	SEmpty
)

// Stmt is one statement node.
type Stmt struct {
	Kind StmtKind
	Expr *Expr // SExpr, SReturn value (may be nil)
	Cond *Expr
	Init *Stmt // SFor
	Post *Expr // SFor
	Then *Stmt
	Else *Stmt
	Body []*Stmt // SBlock
	Decl *VarDecl
	Line int
}

// VarDecl is one variable declaration (local or global).
type VarDecl struct {
	Name   string
	Type   *CType
	Init   *Expr   // scalar initializer
	Inits  []*Expr // array initializer list
	Extern bool
	Line   int
	Sym    *Symbol
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Ret    *CType
	Params []*VarDecl
	Body   *Stmt // SBlock
	Line   int
}

// Program is a parsed translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// SymbolKind distinguishes storage classes.
type SymbolKind uint8

// Symbol kinds.
const (
	SymGlobal SymbolKind = iota
	SymLocal
	SymParam
	SymFunc
)

// Symbol is a resolved name: its type and storage.
type Symbol struct {
	Name string
	Kind SymbolKind
	Type *CType
	// Local storage: frame offset (sp-relative) when spilled, or a
	// dedicated callee-saved register when promoted by the allocator.
	FrameOff int
	Reg      string // "" when in memory
	Extern   bool
}
