package compiler

import "fmt"

// parser builds the AST via recursive descent with precedence climbing.
type parser struct {
	toks []Token
	pos  int
	errs DiagList
}

func parse(toks []Token) (*Program, DiagList) {
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(TEOF) {
		start := p.pos
		p.parseTopLevel(prog)
		if p.pos == start {
			// Ensure progress on malformed input.
			p.pos++
		}
	}
	return prog, p.errs
}

func (p *parser) cur() Token        { return p.toks[p.pos] }
func (p *parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TPunct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TKeyword && t.Text == s
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) {
	p.errs = append(p.errs, &Diag{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(s string) bool {
	if p.isPunct(s) {
		p.next()
		return true
	}
	p.errf(p.cur(), "expected %q, got %q", s, p.cur().Text)
	return false
}

// skipTo advances past the next occurrence of any of the given punctuators
// (error recovery).
func (p *parser) skipTo(stops ...string) {
	depth := 0
	for !p.at(TEOF) {
		t := p.cur()
		if t.Kind == TPunct {
			switch t.Text {
			case "{":
				depth++
			case "}":
				if depth > 0 {
					depth--
				} else {
					return
				}
			}
			if depth == 0 {
				for _, s := range stops {
					if t.Text == s {
						p.next()
						return
					}
				}
			}
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

// parseBaseType parses the type-specifier part (int, unsigned, float...).
func (p *parser) parseBaseType() (*CType, bool) {
	t := p.cur()
	if t.Kind != TKeyword {
		return nil, false
	}
	switch t.Text {
	case "const", "static":
		p.next()
		return p.parseBaseType()
	case "void":
		p.next()
		return typeVoid, true
	case "char":
		p.next()
		return typeChar, true
	case "int":
		p.next()
		return typeInt, true
	case "long", "short":
		p.next()
		if p.isKeyword("int") {
			p.next()
		}
		return typeInt, true
	case "unsigned":
		p.next()
		if p.isKeyword("int") || p.isKeyword("char") || p.isKeyword("long") {
			p.next()
		}
		return typeUInt, true
	case "float":
		p.next()
		return typeFloat, true
	case "double":
		p.next()
		return typeDouble, true
	case "struct", "union", "enum", "typedef", "switch", "goto":
		p.errf(t, "%q is not supported by this C subset", t.Text)
		p.next()
		return nil, false
	default:
		return nil, false
	}
}

// parseDeclarator parses "*"* name ["[N]"].
func (p *parser) parseDeclarator(base *CType) (string, *CType, Token) {
	ty := base
	for p.isPunct("*") {
		p.next()
		ty = ptrTo(ty)
	}
	nameTok := p.cur()
	name := ""
	if p.at(TIdent) {
		name = p.next().Text
	} else {
		p.errf(nameTok, "expected identifier, got %q", nameTok.Text)
	}
	for p.isPunct("[") {
		p.next()
		n := 0
		if p.at(TIntLit) {
			n = int(p.next().Int)
		} else if !p.isPunct("]") {
			p.errf(p.cur(), "array length must be an integer constant")
			p.skipTo("]")
			return name, ty, nameTok
		}
		p.expect("]")
		ty = arrayOf(ty, n)
	}
	return name, ty, nameTok
}

func (p *parser) parseTopLevel(prog *Program) {
	extern := false
	for p.isKeyword("extern") || p.isKeyword("static") {
		if p.cur().Text == "extern" {
			extern = true
		}
		p.next()
	}
	base, ok := p.parseBaseType()
	if !ok {
		p.errf(p.cur(), "expected declaration, got %q", p.cur().Text)
		p.skipTo(";")
		return
	}
	name, ty, nameTok := p.parseDeclarator(base)

	if p.isPunct("(") {
		p.parseFunc(prog, name, ty, nameTok)
		return
	}

	// Global variable(s).
	for {
		vd := &VarDecl{Name: name, Type: ty, Extern: extern, Line: nameTok.Line}
		if p.isPunct("=") {
			p.next()
			if p.isPunct("{") {
				vd.Inits = p.parseInitList()
			} else {
				vd.Init = p.parseAssignExpr()
			}
		}
		prog.Globals = append(prog.Globals, vd)
		if p.isPunct(",") {
			p.next()
			name, ty, nameTok = p.parseDeclarator(base)
			continue
		}
		break
	}
	p.expect(";")
}

func (p *parser) parseInitList() []*Expr {
	p.expect("{")
	var inits []*Expr
	for !p.isPunct("}") && !p.at(TEOF) {
		inits = append(inits, p.parseAssignExpr())
		if p.isPunct(",") {
			p.next()
		} else {
			break
		}
	}
	p.expect("}")
	return inits
}

func (p *parser) parseFunc(prog *Program, name string, ret *CType, nameTok Token) {
	p.expect("(")
	fd := &FuncDecl{Name: name, Ret: ret, Line: nameTok.Line}
	if p.isKeyword("void") && p.toks[p.pos+1].Text == ")" {
		p.next()
	}
	for !p.isPunct(")") && !p.at(TEOF) {
		base, ok := p.parseBaseType()
		if !ok {
			p.errf(p.cur(), "expected parameter type, got %q", p.cur().Text)
			p.skipTo(")")
			break
		}
		pname, pty, ptok := p.parseDeclarator(base)
		if pty.Kind == TyArray {
			// Array parameters decay to pointers.
			pty = ptrTo(pty.Elem)
		}
		fd.Params = append(fd.Params, &VarDecl{Name: pname, Type: pty, Line: ptok.Line})
		if p.isPunct(",") {
			p.next()
		} else {
			break
		}
	}
	p.expect(")")
	if p.isPunct(";") {
		// Prototype: record as a function with nil body.
		p.next()
		fd.Body = nil
		prog.Funcs = append(prog.Funcs, fd)
		return
	}
	fd.Body = p.parseBlock()
	prog.Funcs = append(prog.Funcs, fd)
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *parser) parseBlock() *Stmt {
	line := p.cur().Line
	p.expect("{")
	blk := &Stmt{Kind: SBlock, Line: line}
	for !p.isPunct("}") && !p.at(TEOF) {
		start := p.pos
		blk.Body = append(blk.Body, p.parseStmt())
		if p.pos == start {
			p.pos++
		}
	}
	p.expect("}")
	return blk
}

func (p *parser) parseStmt() *Stmt {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		p.next()
		return &Stmt{Kind: SEmpty, Line: t.Line}
	case p.isKeyword("if"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		then := p.parseStmt()
		var els *Stmt
		if p.isKeyword("else") {
			p.next()
			els = p.parseStmt()
		}
		return &Stmt{Kind: SIf, Cond: cond, Then: then, Else: els, Line: t.Line}
	case p.isKeyword("while"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		body := p.parseStmt()
		return &Stmt{Kind: SWhile, Cond: cond, Then: body, Line: t.Line}
	case p.isKeyword("do"):
		p.next()
		body := p.parseStmt()
		if !p.isKeyword("while") {
			p.errf(p.cur(), "expected `while` after do-body")
		} else {
			p.next()
		}
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		p.expect(";")
		return &Stmt{Kind: SDoWhile, Cond: cond, Then: body, Line: t.Line}
	case p.isKeyword("for"):
		p.next()
		p.expect("(")
		var init *Stmt
		if !p.isPunct(";") {
			if _, isType := p.peekType(); isType {
				init = p.parseDeclStmt()
			} else {
				e := p.parseExpr()
				p.expect(";")
				init = &Stmt{Kind: SExpr, Expr: e, Line: t.Line}
			}
		} else {
			p.next()
		}
		var cond *Expr
		if !p.isPunct(";") {
			cond = p.parseExpr()
		}
		p.expect(";")
		var post *Expr
		if !p.isPunct(")") {
			post = p.parseExpr()
		}
		p.expect(")")
		body := p.parseStmt()
		return &Stmt{Kind: SFor, Init: init, Cond: cond, Post: post, Then: body, Line: t.Line}
	case p.isKeyword("return"):
		p.next()
		var e *Expr
		if !p.isPunct(";") {
			e = p.parseExpr()
		}
		p.expect(";")
		return &Stmt{Kind: SReturn, Expr: e, Line: t.Line}
	case p.isKeyword("break"):
		p.next()
		p.expect(";")
		return &Stmt{Kind: SBreak, Line: t.Line}
	case p.isKeyword("continue"):
		p.next()
		p.expect(";")
		return &Stmt{Kind: SContinue, Line: t.Line}
	default:
		if _, isType := p.peekType(); isType {
			return p.parseDeclStmt()
		}
		e := p.parseExpr()
		p.expect(";")
		return &Stmt{Kind: SExpr, Expr: e, Line: t.Line}
	}
}

// peekType reports whether a type specifier starts here (without consuming).
func (p *parser) peekType() (*CType, bool) {
	t := p.cur()
	if t.Kind != TKeyword {
		return nil, false
	}
	switch t.Text {
	case "void", "char", "int", "unsigned", "float", "double", "long", "short", "const":
		return nil, true
	}
	return nil, false
}

func (p *parser) parseDeclStmt() *Stmt {
	line := p.cur().Line
	base, ok := p.parseBaseType()
	if !ok {
		p.skipTo(";")
		return &Stmt{Kind: SEmpty, Line: line}
	}
	blk := &Stmt{Kind: SBlock, Line: line}
	for {
		name, ty, nameTok := p.parseDeclarator(base)
		vd := &VarDecl{Name: name, Type: ty, Line: nameTok.Line}
		if p.isPunct("=") {
			p.next()
			if p.isPunct("{") {
				vd.Inits = p.parseInitList()
			} else {
				vd.Init = p.parseAssignExpr()
			}
		}
		blk.Body = append(blk.Body, &Stmt{Kind: SDecl, Decl: vd, Line: nameTok.Line})
		if p.isPunct(",") {
			p.next()
			continue
		}
		break
	}
	p.expect(";")
	if len(blk.Body) == 1 {
		return blk.Body[0]
	}
	return blk
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *parser) parseExpr() *Expr {
	e := p.parseAssignExpr()
	for p.isPunct(",") {
		p.next()
		r := p.parseAssignExpr()
		e = &Expr{Kind: EBinary, Op: ",", L: e, R: r, Line: e.Line, Col: e.Col}
	}
	return e
}

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^",
}

func (p *parser) parseAssignExpr() *Expr {
	lhs := p.parseCondExpr()
	t := p.cur()
	if t.Kind != TPunct {
		return lhs
	}
	if t.Text == "=" {
		p.next()
		rhs := p.parseAssignExpr()
		return &Expr{Kind: EAssign, L: lhs, R: rhs, Line: t.Line, Col: t.Col}
	}
	if op, ok := compoundOps[t.Text]; ok {
		p.next()
		rhs := p.parseAssignExpr()
		// Desugar a op= b into a = a op b. The subset's lvalues
		// (identifiers, dereferences, indexing) are evaluated twice;
		// their side-effect-free forms make this safe.
		sum := &Expr{Kind: EBinary, Op: op, L: lhs, R: rhs, Line: t.Line, Col: t.Col}
		return &Expr{Kind: EAssign, L: lhs, R: sum, Line: t.Line, Col: t.Col}
	}
	return lhs
}

func (p *parser) parseCondExpr() *Expr {
	cond := p.parseBinary(0)
	if !p.isPunct("?") {
		return cond
	}
	t := p.next()
	then := p.parseExpr()
	p.expect(":")
	els := p.parseCondExpr()
	return &Expr{Kind: ECond, L: cond, R: then, R2: els, Line: t.Line, Col: t.Col}
}

// binary operator precedence (C levels, high binds tighter).
var binPrec = map[string]int{
	"*": 10, "/": 10, "%": 10,
	"+": 9, "-": 9,
	"<<": 8, ">>": 8,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"==": 6, "!=": 6,
	"&": 5, "^": 4, "|": 3,
	"&&": 2, "||": 1,
}

func (p *parser) parseBinary(minPrec int) *Expr {
	lhs := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != TPunct {
			return lhs
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &Expr{Kind: EBinary, Op: t.Text, L: lhs, R: rhs, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) parseUnary() *Expr {
	t := p.cur()
	if t.Kind == TPunct {
		switch t.Text {
		case "-", "!", "~":
			p.next()
			e := p.parseUnary()
			return &Expr{Kind: EUnary, Op: t.Text, L: e, Line: t.Line, Col: t.Col}
		case "+":
			p.next()
			return p.parseUnary()
		case "*":
			p.next()
			e := p.parseUnary()
			return &Expr{Kind: EDeref, L: e, Line: t.Line, Col: t.Col}
		case "&":
			p.next()
			e := p.parseUnary()
			return &Expr{Kind: EAddr, L: e, Line: t.Line, Col: t.Col}
		case "++", "--":
			p.next()
			e := p.parseUnary()
			op := "+"
			if t.Text == "--" {
				op = "-"
			}
			return &Expr{Kind: EPreIncr, Op: op, L: e, Line: t.Line, Col: t.Col}
		case "(":
			// Cast or parenthesized expression.
			if ty, isType := p.peekTypeAt(p.pos + 1); isType {
				p.next() // (
				base, _ := p.parseBaseType()
				cast := base
				for p.isPunct("*") {
					p.next()
					cast = ptrTo(cast)
				}
				_ = ty
				p.expect(")")
				e := p.parseUnary()
				return &Expr{Kind: ECast, Cast: cast, L: e, Line: t.Line, Col: t.Col}
			}
		}
	}
	if t.Kind == TKeyword && t.Text == "sizeof" {
		p.next()
		if p.isPunct("(") {
			if _, isType := p.peekTypeAt(p.pos + 1); isType {
				p.next()
				base, _ := p.parseBaseType()
				ty := base
				for p.isPunct("*") {
					p.next()
					ty = ptrTo(ty)
				}
				p.expect(")")
				return &Expr{Kind: ESizeof, Cast: ty, Line: t.Line, Col: t.Col}
			}
		}
		e := p.parseUnary()
		return &Expr{Kind: ESizeof, L: e, Line: t.Line, Col: t.Col}
	}
	return p.parsePostfix()
}

func (p *parser) peekTypeAt(pos int) (*CType, bool) {
	if pos >= len(p.toks) {
		return nil, false
	}
	t := p.toks[pos]
	if t.Kind != TKeyword {
		return nil, false
	}
	switch t.Text {
	case "void", "char", "int", "unsigned", "float", "double", "long", "short", "const":
		return nil, true
	}
	return nil, false
}

func (p *parser) parsePostfix() *Expr {
	e := p.parsePrimary()
	for {
		t := p.cur()
		if t.Kind != TPunct {
			return e
		}
		switch t.Text {
		case "[":
			p.next()
			idx := p.parseExpr()
			p.expect("]")
			e = &Expr{Kind: EIndex, L: e, R: idx, Line: t.Line, Col: t.Col}
		case "(":
			if e.Kind != EVar {
				p.errf(t, "only direct calls to named functions are supported")
			}
			p.next()
			call := &Expr{Kind: ECall, Fn: e.Name, Line: t.Line, Col: t.Col}
			for !p.isPunct(")") && !p.at(TEOF) {
				call.Args = append(call.Args, p.parseAssignExpr())
				if p.isPunct(",") {
					p.next()
				} else {
					break
				}
			}
			p.expect(")")
			e = call
		case "++", "--":
			p.next()
			op := "+"
			if t.Text == "--" {
				op = "-"
			}
			e = &Expr{Kind: EPostIncr, Op: op, L: e, Line: t.Line, Col: t.Col}
		default:
			return e
		}
	}
}

func (p *parser) parsePrimary() *Expr {
	t := p.cur()
	switch t.Kind {
	case TIntLit, TCharLit:
		p.next()
		return &Expr{Kind: EIntLit, Int: t.Int, Line: t.Line, Col: t.Col}
	case TFloatLit:
		p.next()
		return &Expr{Kind: EFloatLit, Flt: t.Flt, Line: t.Line, Col: t.Col}
	case TIdent:
		p.next()
		return &Expr{Kind: EVar, Name: t.Text, Line: t.Line, Col: t.Col}
	case TStringLit:
		p.errf(t, "string literals are not supported by this C subset")
		p.next()
		return &Expr{Kind: EIntLit, Int: 0, Line: t.Line, Col: t.Col}
	case TPunct:
		if t.Text == "(" {
			p.next()
			e := p.parseExpr()
			p.expect(")")
			return e
		}
	}
	p.errf(t, "unexpected %q in expression", t.Text)
	p.next()
	return &Expr{Kind: EIntLit, Int: 0, Line: t.Line, Col: t.Col}
}
