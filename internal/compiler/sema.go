package compiler

import "fmt"

// sema resolves names, checks types and annotates the AST. It implements
// the conversions the code generator relies on: usual arithmetic
// promotion, array-to-pointer decay and pointer arithmetic scaling.
type sema struct {
	prog   *program
	scopes []map[string]*Symbol
	funcs  map[string]*FuncDecl
	errs   DiagList
	cur    *FuncDecl
	locals []*Symbol // collected per function for frame layout
}

// program wraps the AST with resolution results.
type program struct {
	ast *Program
	// funcLocals maps function name to its local symbols (frame layout).
	funcLocals map[string][]*Symbol
}

func analyze(ast *Program) (*program, DiagList) {
	s := &sema{
		prog:  &program{ast: ast, funcLocals: map[string][]*Symbol{}},
		funcs: map[string]*FuncDecl{},
	}
	s.push()
	for _, f := range ast.Funcs {
		if prev, dup := s.funcs[f.Name]; dup && prev.Body != nil && f.Body != nil {
			s.errf(f.Line, 1, "function %q redefined", f.Name)
		}
		if old, ok := s.funcs[f.Name]; !ok || old.Body == nil {
			s.funcs[f.Name] = f
		}
	}
	for _, g := range ast.Globals {
		if g.Name == "" {
			continue
		}
		if _, dup := s.scopes[0][g.Name]; dup {
			s.errf(g.Line, 1, "global %q redefined", g.Name)
			continue
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, Extern: g.Extern}
		g.Sym = sym
		s.scopes[0][g.Name] = sym
		if g.Init != nil {
			s.expr(g.Init)
			decay(g.Init)
			s.convertTo(g.Init, scalarOf(g.Type), g.Line)
		}
		for _, e := range g.Inits {
			s.expr(e)
		}
	}
	for _, f := range ast.Funcs {
		if f.Body != nil {
			s.checkFunc(f)
		}
	}
	return s.prog, s.errs
}

func scalarOf(t *CType) *CType {
	if t.Kind == TyArray {
		return t.Elem
	}
	return t
}

func (s *sema) errf(line, col int, format string, args ...any) {
	s.errs = append(s.errs, &Diag{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)})
}

func (s *sema) push() { s.scopes = append(s.scopes, map[string]*Symbol{}) }
func (s *sema) pop()  { s.scopes = s.scopes[:len(s.scopes)-1] }

func (s *sema) define(sym *Symbol, line int) {
	top := s.scopes[len(s.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		s.errf(line, 1, "%q redeclared in this scope", sym.Name)
	}
	top[sym.Name] = sym
	if sym.Kind == SymLocal || sym.Kind == SymParam {
		s.locals = append(s.locals, sym)
	}
}

func (s *sema) lookup(name string) *Symbol {
	for i := len(s.scopes) - 1; i >= 0; i-- {
		if sym, ok := s.scopes[i][name]; ok {
			return sym
		}
	}
	return nil
}

func (s *sema) checkFunc(f *FuncDecl) {
	s.cur = f
	s.locals = nil
	s.push()
	for _, prm := range f.Params {
		sym := &Symbol{Name: prm.Name, Kind: SymParam, Type: prm.Type}
		prm.Sym = sym
		s.define(sym, prm.Line)
	}
	s.stmt(f.Body)
	s.pop()
	s.prog.funcLocals[f.Name] = s.locals
	s.cur = nil
}

func (s *sema) stmt(st *Stmt) {
	if st == nil {
		return
	}
	switch st.Kind {
	case SBlock:
		s.push()
		for _, c := range st.Body {
			s.stmt(c)
		}
		s.pop()
	case SDecl:
		d := st.Decl
		sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type}
		d.Sym = sym
		if d.Init != nil {
			s.expr(d.Init)
			decay(d.Init)
			s.convertTo(d.Init, scalarOf(d.Type), d.Line)
		}
		for _, e := range d.Inits {
			s.expr(e)
		}
		if len(d.Inits) > 0 && d.Type.Kind != TyArray {
			s.errf(d.Line, 1, "initializer list on non-array %q", d.Name)
		}
		if d.Type.Kind == TyArray && d.Type.Len == 0 {
			if len(d.Inits) > 0 {
				d.Type.Len = len(d.Inits)
			} else {
				s.errf(d.Line, 1, "array %q needs a length or initializer", d.Name)
			}
		}
		s.define(sym, d.Line)
	case SExpr:
		s.expr(st.Expr)
	case SIf, SWhile, SDoWhile:
		s.expr(st.Cond)
		s.stmt(st.Then)
		s.stmt(st.Else)
	case SFor:
		s.push()
		s.stmt(st.Init)
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		if st.Post != nil {
			s.expr(st.Post)
		}
		s.stmt(st.Then)
		s.pop()
	case SReturn:
		if st.Expr != nil {
			s.expr(st.Expr)
			if s.cur != nil && s.cur.Ret.Kind == TyVoid {
				s.errf(st.Line, 1, "void function %q returns a value", s.cur.Name)
			} else if s.cur != nil {
				s.convertTo(st.Expr, s.cur.Ret, st.Line)
			}
		} else if s.cur != nil && s.cur.Ret.Kind != TyVoid {
			s.errf(st.Line, 1, "non-void function %q returns nothing", s.cur.Name)
		}
	case SBreak, SContinue, SEmpty:
	}
}

// convertTo wraps e in a cast when its type differs from want.
func (s *sema) convertTo(e *Expr, want *CType, line int) {
	if e.Type == nil || want == nil || sameType(e.Type, want) {
		return
	}
	if want.Kind == TyVoid {
		return
	}
	okPair := (e.Type.IsScalar() && want.IsScalar())
	if !okPair {
		s.errf(line, e.Col, "cannot convert %s to %s", e.Type, want)
		return
	}
	inner := *e
	*e = Expr{Kind: ECast, Cast: want, L: &inner, Type: want, Line: e.Line, Col: e.Col}
}

// decay converts array-typed expressions to pointers.
func decay(e *Expr) {
	if e.Type != nil && e.Type.Kind == TyArray {
		e.Type = ptrTo(e.Type.Elem)
	}
}

func (s *sema) expr(e *Expr) {
	if e == nil {
		return
	}
	switch e.Kind {
	case EIntLit:
		e.Type = typeInt
	case EFloatLit:
		e.Type = typeFloat
	case EVar:
		sym := s.lookup(e.Name)
		if sym == nil {
			s.errf(e.Line, e.Col, "undeclared identifier %q", e.Name)
			e.Type = typeInt
			return
		}
		e.Sym = sym
		e.Type = sym.Type
	case EBinary:
		s.binary(e)
	case EUnary:
		s.expr(e.L)
		decay(e.L)
		switch e.Op {
		case "!":
			e.Type = typeInt
		case "~":
			if e.L.Type != nil && !e.L.Type.IsInteger() {
				s.errf(e.Line, e.Col, "~ needs an integer operand, got %s", e.L.Type)
			}
			e.Type = typeInt
		default: // "-"
			e.Type = e.L.Type
		}
	case EAssign:
		s.expr(e.L)
		s.expr(e.R)
		decay(e.R)
		if !s.isLvalue(e.L) {
			s.errf(e.Line, e.Col, "assignment target is not an lvalue")
		}
		if e.L.Type != nil && e.L.Type.Kind == TyArray {
			s.errf(e.Line, e.Col, "cannot assign to an array")
		}
		s.convertTo(e.R, e.L.Type, e.Line)
		e.Type = e.L.Type
	case ECond:
		s.expr(e.L)
		s.expr(e.R)
		s.expr(e.R2)
		decay(e.R)
		decay(e.R2)
		t := usualArith(e.R.Type, e.R2.Type)
		s.convertTo(e.R, t, e.Line)
		s.convertTo(e.R2, t, e.Line)
		e.Type = t
	case ECall:
		f, ok := s.funcs[e.Fn]
		if !ok {
			s.errf(e.Line, e.Col, "call to undeclared function %q", e.Fn)
			e.Type = typeInt
			for _, a := range e.Args {
				s.expr(a)
			}
			return
		}
		if len(e.Args) != len(f.Params) {
			s.errf(e.Line, e.Col, "%q expects %d arguments, got %d", e.Fn, len(f.Params), len(e.Args))
		}
		for i, a := range e.Args {
			s.expr(a)
			decay(a)
			if i < len(f.Params) {
				s.convertTo(a, f.Params[i].Type, e.Line)
			}
		}
		e.Type = f.Ret
	case EIndex:
		s.expr(e.L)
		s.expr(e.R)
		decay(e.L)
		if e.L.Type == nil || e.L.Type.Kind != TyPtr {
			s.errf(e.Line, e.Col, "indexing a non-pointer %s", e.L.Type)
			e.Type = typeInt
			return
		}
		if e.R.Type != nil && !e.R.Type.IsInteger() {
			s.errf(e.Line, e.Col, "array index must be an integer")
		}
		e.Type = e.L.Type.Elem
	case EDeref:
		s.expr(e.L)
		decay(e.L)
		if e.L.Type == nil || e.L.Type.Kind != TyPtr {
			s.errf(e.Line, e.Col, "dereferencing a non-pointer %s", e.L.Type)
			e.Type = typeInt
			return
		}
		e.Type = e.L.Type.Elem
	case EAddr:
		s.expr(e.L)
		if !s.isLvalue(e.L) {
			s.errf(e.Line, e.Col, "& needs an lvalue")
		}
		base := e.L.Type
		if base != nil && base.Kind == TyArray {
			base = base.Elem
		}
		e.Type = ptrTo(base)
	case ECast:
		s.expr(e.L)
		decay(e.L)
		e.Type = e.Cast
	case EPreIncr, EPostIncr:
		s.expr(e.L)
		if !s.isLvalue(e.L) {
			s.errf(e.Line, e.Col, "++/-- needs an lvalue")
		}
		e.Type = e.L.Type
	case ESizeof:
		if e.L != nil {
			s.expr(e.L)
			if e.L.Type != nil {
				e.Int = int64(e.L.Type.Size())
			}
		} else if e.Cast != nil {
			e.Int = int64(e.Cast.Size())
		}
		e.Kind = EIntLit
		e.Type = typeInt
	}
}

func (s *sema) binary(e *Expr) {
	s.expr(e.L)
	s.expr(e.R)
	decay(e.L)
	decay(e.R)
	lt, rt := e.L.Type, e.R.Type
	if lt == nil || rt == nil {
		e.Type = typeInt
		return
	}
	switch e.Op {
	case ",":
		e.Type = rt
	case "&&", "||":
		e.Type = typeInt
	case "==", "!=", "<", "<=", ">", ">=":
		if lt.IsFloat() || rt.IsFloat() {
			t := usualArith(lt, rt)
			s.convertTo(e.L, t, e.Line)
			s.convertTo(e.R, t, e.Line)
		}
		e.Type = typeInt
	case "+", "-":
		// Pointer arithmetic.
		if lt.Kind == TyPtr && rt.IsInteger() {
			e.Type = lt
			return
		}
		if e.Op == "+" && lt.IsInteger() && rt.Kind == TyPtr {
			e.Type = rt
			return
		}
		if e.Op == "-" && lt.Kind == TyPtr && rt.Kind == TyPtr {
			e.Type = typeInt
			return
		}
		t := usualArith(lt, rt)
		s.convertTo(e.L, t, e.Line)
		s.convertTo(e.R, t, e.Line)
		e.Type = t
	case "%", "&", "|", "^", "<<", ">>":
		if !lt.IsInteger() || !rt.IsInteger() {
			s.errf(e.Line, e.Col, "operator %q needs integer operands, got %s and %s", e.Op, lt, rt)
		}
		e.Type = usualArith(lt, rt)
	default: // * /
		t := usualArith(lt, rt)
		s.convertTo(e.L, t, e.Line)
		s.convertTo(e.R, t, e.Line)
		e.Type = t
	}
}

// usualArith implements the usual arithmetic conversions for the subset.
func usualArith(a, b *CType) *CType {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Kind == TyDouble || b.Kind == TyDouble {
		return typeDouble
	}
	if a.Kind == TyFloat || b.Kind == TyFloat {
		return typeFloat
	}
	if a.Kind == TyPtr {
		return a
	}
	if b.Kind == TyPtr {
		return b
	}
	if a.Kind == TyUInt || b.Kind == TyUInt {
		return typeUInt
	}
	return typeInt
}

func (s *sema) isLvalue(e *Expr) bool {
	switch e.Kind {
	case EVar, EDeref, EIndex:
		return true
	}
	return false
}
