package compiler

import (
	"fmt"
	"strings"
)

// Result is the output of a compilation: RISC-V assembly, a mapping from
// assembly lines to C source lines (for the editor's linked highlighting,
// paper Fig. 5) and any diagnostics.
type Result struct {
	// Assembly is the generated RV32IM(F) assembly text.
	Assembly string `json:"assembly"`
	// LineMap gives, for each assembly line (0-based), the 1-based C
	// source line it was generated from (0 = none).
	LineMap []int `json:"lineMap"`
	// Diags carries warnings when compilation succeeded with notes.
	Diags DiagList `json:"diags,omitempty"`
}

// Compile translates C source to RISC-V assembly at the given optimization
// level (0..3, the paper's four levels):
//
//	-O0  stack-machine code, all locals in memory
//	-O1  + constant folding, locals promoted to callee-saved registers
//	-O2  + strength reduction and peephole cleanup
//	-O3  + full unrolling of small constant-trip-count loops
func Compile(src string, opt int) (*Result, error) {
	if opt < 0 {
		opt = 0
	}
	if opt > 3 {
		opt = 3
	}
	toks, lexErrs := lex(src)
	ast, parseErrs := parse(toks)
	errs := append(lexErrs, parseErrs...)
	if err := errs.Err(); err != nil {
		return nil, err
	}
	prog, semaErrs := analyze(ast)
	if err := semaErrs.Err(); err != nil {
		return nil, err
	}
	if opt >= 1 {
		foldProgram(ast)
	}
	if opt >= 3 {
		unrollProgram(ast)
	}
	g := &codegen{prog: prog, opt: opt}
	g.run()
	if opt >= 2 {
		g.peephole()
	}
	return g.result(), nil
}

// asmLine is one emitted assembly line with its originating C line.
type asmLine struct {
	text  string
	cline int
}

type codegen struct {
	prog *program
	opt  int
	out  []asmLine

	labelN  int
	curLine int

	fn         *FuncDecl
	frame      map[*Symbol]int
	frameSize  int
	localsBase int
	breakLbl   []string
	contLbl    []string
	epilogue   string
}

func (g *codegen) emit(format string, args ...any) {
	g.out = append(g.out, asmLine{text: fmt.Sprintf(format, args...), cline: g.curLine})
}

func (g *codegen) emitLabel(l string) {
	g.out = append(g.out, asmLine{text: l + ":", cline: g.curLine})
}

func (g *codegen) newLabel(hint string) string {
	g.labelN++
	return fmt.Sprintf(".L%s%d", hint, g.labelN)
}

func (g *codegen) result() *Result {
	var sb strings.Builder
	lineMap := make([]int, len(g.out))
	for i, l := range g.out {
		if strings.HasSuffix(l.text, ":") || strings.HasPrefix(l.text, ".") {
			sb.WriteString(l.text)
		} else {
			sb.WriteByte('\t')
			sb.WriteString(l.text)
		}
		sb.WriteByte('\n')
		lineMap[i] = l.cline
	}
	return &Result{Assembly: sb.String(), LineMap: lineMap}
}

func (g *codegen) run() {
	// main comes first so index 0 is the program entry even without an
	// explicit entry label.
	var ordered []*FuncDecl
	for _, f := range g.prog.ast.Funcs {
		if f.Name == "main" && f.Body != nil {
			ordered = append(ordered, f)
		}
	}
	for _, f := range g.prog.ast.Funcs {
		if f.Name != "main" && f.Body != nil {
			ordered = append(ordered, f)
		}
	}
	for _, f := range ordered {
		g.genFunc(f)
	}
	g.genGlobals()
}

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

func (g *codegen) genGlobals() {
	if len(g.prog.ast.Globals) == 0 {
		return
	}
	g.curLine = 0
	g.emit(".data")
	for _, gl := range g.prog.ast.Globals {
		g.curLine = gl.Line
		align := gl.Type.Align()
		if align > 1 {
			g.emit(".balign %d", align)
		}
		g.emitLabel(gl.Name)
		switch {
		case gl.Extern:
			// Substitution for the paper's extern-array workflow: the
			// storage is reserved here and populated from the Memory
			// Settings window by label.
			g.emit(".zero %d   # extern, filled via memory settings", gl.Type.Size())
		case gl.Type.Kind == TyArray:
			g.genArrayInit(gl)
		case gl.Init != nil:
			g.genScalarInit(gl.Type, gl.Init)
		default:
			g.emit(".zero %d", gl.Type.Size())
		}
	}
}

func (g *codegen) genScalarInit(t *CType, init *Expr) {
	v, f, isConst, isFloat := constValue(init)
	if !isConst {
		g.emit(".zero %d   # non-constant initializer dropped", t.Size())
		return
	}
	switch t.Kind {
	case TyChar:
		g.emit(".byte %d", int64(int8(v)))
	case TyFloat:
		if !isFloat {
			f = float64(v)
		}
		g.emit(".float %g", f)
	case TyDouble:
		if !isFloat {
			f = float64(v)
		}
		g.emit(".double %g", f)
	default:
		if isFloat {
			v = int64(f)
		}
		g.emit(".word %d", int64(int32(v)))
	}
}

func (g *codegen) genArrayInit(gl *VarDecl) {
	elem := gl.Type.Elem
	n := gl.Type.Len
	if n == 0 {
		n = len(gl.Inits)
	}
	if len(gl.Inits) == 0 {
		g.emit(".zero %d", elem.Size()*n)
		return
	}
	// Emit all elements on one directive line so the assembler registers
	// a single allocation covering the whole array.
	var dir string
	switch {
	case elem.Kind == TyChar:
		dir = ".byte"
	case elem.Kind == TyFloat:
		dir = ".float"
	case elem.Kind == TyDouble:
		dir = ".double"
	default:
		dir = ".word"
	}
	vals := make([]string, n)
	for i := 0; i < n; i++ {
		var e *Expr
		if i < len(gl.Inits) {
			e = gl.Inits[i]
		}
		vals[i] = "0"
		if e == nil {
			continue
		}
		v, f, isConst, isFloat := constValue(e)
		if !isConst {
			continue
		}
		switch {
		case elem.IsFloat():
			if !isFloat {
				f = float64(v)
			}
			vals[i] = fmt.Sprintf("%g", f)
		case elem.Kind == TyChar:
			vals[i] = fmt.Sprintf("%d", int64(int8(v)))
		default:
			if isFloat {
				v = int64(f)
			}
			vals[i] = fmt.Sprintf("%d", int64(int32(v)))
		}
	}
	g.emit("%s %s", dir, strings.Join(vals, ", "))
}

// constValue extracts a constant from a (folded) expression.
func constValue(e *Expr) (i int64, f float64, isConst, isFloat bool) {
	switch e.Kind {
	case EIntLit:
		return e.Int, 0, true, false
	case EFloatLit:
		return 0, e.Flt, true, true
	case EUnary:
		if e.Op == "-" {
			i, f, ok, isF := constValue(e.L)
			return -i, -f, ok, isF
		}
	case ECast:
		return constValue(e.L)
	}
	return 0, 0, false, false
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

// sRegPool is the callee-saved register pool for promoted locals (s0 is
// left free as a general temporary for the generated code itself).
var sRegPool = []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"}

func (g *codegen) genFunc(f *FuncDecl) {
	g.fn = f
	g.frame = map[*Symbol]int{}
	g.epilogue = g.newLabel("ret")
	g.curLine = f.Line

	locals := g.prog.funcLocals[f.Name]
	addrTaken := map[*Symbol]bool{}
	markAddrTaken(f.Body, addrTaken)

	// Register promotion (O1+): scalar locals and parameters whose
	// address is never taken live in callee-saved registers.
	sNext := 0
	if g.opt >= 1 {
		for _, sym := range locals {
			if sym.Type.IsScalar() && !sym.Type.IsFloat() && !addrTaken[sym] && sNext < len(sRegPool) {
				sym.Reg = sRegPool[sNext]
				sNext++
			}
		}
	}

	// Frame layout, addressed through the frame pointer s0 so that the
	// stack-machine spills (which move sp transiently) never disturb
	// local addressing:
	//
	//	s0-4          ra
	//	s0-8          caller's s0
	//	s0-12-4i      saved s-registers
	//	s0-hdr-...    locals (g.frame keeps a positive cursor)
	off := 0
	for _, sym := range locals {
		if sym.Reg != "" {
			continue
		}
		a := sym.Type.Align()
		off = (off + a - 1) &^ (a - 1)
		g.frame[sym] = off
		off += sym.Type.Size()
	}
	localsSize := (off + 3) &^ 3
	hdr := 8 + 4*sNext
	g.localsBase = hdr + localsSize // s0 - localsBase + cursor = address
	g.frameSize = (g.localsBase + 15) &^ 15

	g.emitLabel(f.Name)
	g.emit("addi sp, sp, -%d", g.frameSize)
	g.emit("sw ra, %d(sp)", g.frameSize-4)
	g.emit("sw s0, %d(sp)", g.frameSize-8)
	for i := 0; i < sNext; i++ {
		g.emit("sw %s, %d(sp)", sRegPool[i], g.frameSize-12-4*i)
	}
	g.emit("addi s0, sp, %d", g.frameSize)

	// Move parameters from the argument registers into their homes.
	intArg, fltArg := 0, 0
	for _, prm := range f.Params {
		sym := prm.Sym
		var src string
		if prm.Type.IsFloat() {
			src = fmt.Sprintf("fa%d", fltArg)
			fltArg++
		} else {
			src = fmt.Sprintf("a%d", intArg)
			intArg++
		}
		if sym.Reg != "" {
			g.emit("mv %s, %s", sym.Reg, src)
		} else if prm.Type.IsFloat() {
			g.emit("%s %s, %d(s0)", fstoreOp(prm.Type), src, g.localOff(sym))
		} else {
			g.emit("%s %s, %d(s0)", storeOp(prm.Type), src, g.localOff(sym))
		}
	}

	g.genStmt(f.Body)

	g.emitLabel(g.epilogue)
	g.emit("lw ra, -4(s0)")
	for i := 0; i < sNext; i++ {
		g.emit("lw %s, %d(s0)", sRegPool[i], -12-4*i)
	}
	g.emit("mv t0, s0")
	g.emit("lw s0, -8(s0)")
	g.emit("mv sp, t0")
	g.emit("ret")
	g.fn = nil
}

// localOff returns the s0-relative offset of a spilled local.
func (g *codegen) localOff(sym *Symbol) int {
	return g.frame[sym] - g.localsBase
}

// markAddrTaken finds symbols whose address escapes.
func markAddrTaken(st *Stmt, out map[*Symbol]bool) {
	var walkE func(e *Expr)
	walkE = func(e *Expr) {
		if e == nil {
			return
		}
		if e.Kind == EAddr && e.L != nil && e.L.Kind == EVar && e.L.Sym != nil {
			out[e.L.Sym] = true
		}
		walkE(e.L)
		walkE(e.R)
		walkE(e.R2)
		for _, a := range e.Args {
			walkE(a)
		}
	}
	var walkS func(s *Stmt)
	walkS = func(s *Stmt) {
		if s == nil {
			return
		}
		walkE(s.Expr)
		walkE(s.Cond)
		walkE(s.Post)
		if s.Decl != nil {
			walkE(s.Decl.Init)
			for _, e := range s.Decl.Inits {
				walkE(e)
			}
		}
		walkS(s.Init)
		walkS(s.Then)
		walkS(s.Else)
		for _, c := range s.Body {
			walkS(c)
		}
	}
	walkS(st)
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (g *codegen) genStmt(st *Stmt) {
	if st == nil {
		return
	}
	g.curLine = st.Line
	switch st.Kind {
	case SBlock:
		for _, c := range st.Body {
			g.genStmt(c)
		}
	case SEmpty:
	case SDecl:
		d := st.Decl
		if d.Init != nil {
			g.genExpr(d.Init)
			g.storeTo(d.Sym, d.Init.Type)
		}
		for i, e := range d.Inits {
			g.genExpr(e)
			elem := d.Type.Elem
			g.emit("addi t2, s0, %d", g.localOff(d.Sym)+i*elem.Size())
			if elem.IsFloat() {
				g.emit("%s ft0, 0(t2)", fstoreOp(elem))
			} else {
				g.emit("%s t0, 0(t2)", storeOp(elem))
			}
		}
	case SExpr:
		g.genExpr(st.Expr)
	case SReturn:
		if st.Expr != nil {
			g.genExpr(st.Expr)
			if st.Expr.Type.IsFloat() {
				g.emit("%s fa0, ft0", fmvOp(st.Expr.Type))
			} else {
				g.emit("mv a0, t0")
			}
		}
		g.emit("j %s", g.epilogue)
	case SIf:
		elseL := g.newLabel("else")
		endL := g.newLabel("endif")
		g.genCondBranch(st.Cond, elseL)
		g.genStmt(st.Then)
		if st.Else != nil {
			g.emit("j %s", endL)
		}
		g.emitLabel(elseL)
		if st.Else != nil {
			g.genStmt(st.Else)
			g.emitLabel(endL)
		}
	case SWhile:
		top := g.newLabel("while")
		end := g.newLabel("wend")
		g.emitLabel(top)
		g.genCondBranch(st.Cond, end)
		g.pushLoop(end, top)
		g.genStmt(st.Then)
		g.popLoop()
		g.emit("j %s", top)
		g.emitLabel(end)
	case SDoWhile:
		top := g.newLabel("do")
		cond := g.newLabel("docond")
		end := g.newLabel("dend")
		g.emitLabel(top)
		g.pushLoop(end, cond)
		g.genStmt(st.Then)
		g.popLoop()
		g.emitLabel(cond)
		g.genExpr(st.Cond)
		g.emit("bnez t0, %s", top)
		g.emitLabel(end)
	case SFor:
		g.genStmt(st.Init)
		top := g.newLabel("for")
		cont := g.newLabel("fcont")
		end := g.newLabel("fend")
		g.emitLabel(top)
		if st.Cond != nil {
			g.genCondBranch(st.Cond, end)
		}
		g.pushLoop(end, cont)
		g.genStmt(st.Then)
		g.popLoop()
		g.emitLabel(cont)
		if st.Post != nil {
			g.genExpr(st.Post)
		}
		g.emit("j %s", top)
		g.emitLabel(end)
	case SBreak:
		if len(g.breakLbl) == 0 {
			return
		}
		g.emit("j %s", g.breakLbl[len(g.breakLbl)-1])
	case SContinue:
		if len(g.contLbl) == 0 {
			return
		}
		g.emit("j %s", g.contLbl[len(g.contLbl)-1])
	}
}

func (g *codegen) pushLoop(brk, cont string) {
	g.breakLbl = append(g.breakLbl, brk)
	g.contLbl = append(g.contLbl, cont)
}

func (g *codegen) popLoop() {
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.contLbl = g.contLbl[:len(g.contLbl)-1]
}

// genCondBranch emits code that jumps to falseL when cond is false, fusing
// integer comparisons into branch instructions.
func (g *codegen) genCondBranch(cond *Expr, falseL string) {
	if cond.Kind == EBinary && !condIsFloat(cond) {
		switch cond.Op {
		case "==", "!=", "<", "<=", ">", ">=":
			g.genExpr(cond.L)
			g.push(nil)
			g.genExpr(cond.R)
			g.emit("mv t1, t0")
			g.popInto(nil, "t0") // t0 = L, t1 = R
			uns := cond.L.Type != nil && cond.L.Type.Kind == TyUInt
			var br string
			switch cond.Op {
			case "==":
				br = "bne t0, t1"
			case "!=":
				br = "beq t0, t1"
			case "<":
				br = pick(uns, "bgeu t0, t1", "bge t0, t1")
			case "<=":
				br = pick(uns, "bltu t1, t0", "blt t1, t0")
			case ">":
				br = pick(uns, "bgeu t1, t0", "bge t1, t0")
			case ">=":
				br = pick(uns, "bltu t0, t1", "blt t0, t1")
			}
			g.emit("%s, %s", br, falseL)
			return
		}
	}
	g.genExpr(cond)
	g.emit("beqz t0, %s", falseL)
}

func condIsFloat(e *Expr) bool {
	return (e.L != nil && e.L.Type != nil && e.L.Type.IsFloat()) ||
		(e.R != nil && e.R.Type != nil && e.R.Type.IsFloat())
}

func pick(c bool, a, b string) string {
	if c {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// push spills t0 (or ft0 for float types) around the evaluation of a
// second operand — stack-machine discipline; the O2 peephole removes
// redundant pairs. t may be nil for integer/pointer values.
func (g *codegen) push(t *CType) {
	switch {
	case t != nil && t.Kind == TyDouble:
		g.emit("addi sp, sp, -8")
		g.emit("fsd ft0, 0(sp)")
	case t != nil && t.Kind == TyFloat:
		g.emit("addi sp, sp, -4")
		g.emit("fsw ft0, 0(sp)")
	default:
		g.emit("addi sp, sp, -4")
		g.emit("sw t0, 0(sp)")
	}
}

// popInto restores a pushed value into the named register.
func (g *codegen) popInto(t *CType, reg string) {
	switch {
	case t != nil && t.Kind == TyDouble:
		g.emit("fld %s, 0(sp)", reg)
		g.emit("addi sp, sp, 8")
	case t != nil && t.Kind == TyFloat:
		g.emit("flw %s, 0(sp)", reg)
		g.emit("addi sp, sp, 4")
	default:
		g.emit("lw %s, 0(sp)", reg)
		g.emit("addi sp, sp, 4")
	}
}

// isLeaf reports whether e can be loaded directly without clobbering t0.
func isLeaf(e *Expr) bool {
	switch e.Kind {
	case EIntLit, EFloatLit:
		return true
	case EVar:
		return e.Sym != nil && (e.Sym.Reg != "" || e.Sym.Kind != SymGlobal) &&
			e.Type != nil && e.Type.IsScalar() && !e.Type.IsFloat()
	}
	return false
}

// genLeafInto loads a leaf expression directly into reg.
func (g *codegen) genLeafInto(e *Expr, reg string) {
	switch e.Kind {
	case EIntLit:
		g.emit("li %s, %d", reg, int64(int32(e.Int)))
	case EVar:
		sym := e.Sym
		if sym.Reg != "" {
			g.emit("mv %s, %s", reg, sym.Reg)
		} else {
			g.emit("%s %s, %d(s0)", loadOp(e.Type), reg, g.localOff(sym))
		}
	}
}

// genExpr evaluates e into t0 (integers/pointers) or ft0 (floats).
func (g *codegen) genExpr(e *Expr) {
	if e == nil {
		return
	}
	g.curLine = e.Line
	switch e.Kind {
	case EIntLit:
		g.emit("li t0, %d", int64(int32(e.Int)))
	case EFloatLit:
		g.genFloatLit(e)
	case EVar:
		g.genVarLoad(e)
	case EBinary:
		g.genBinary(e)
	case EUnary:
		g.genUnary(e)
	case EAssign:
		g.genAssign(e)
	case ECond:
		elseL := g.newLabel("celse")
		endL := g.newLabel("cend")
		g.genCondBranch(e.L, elseL)
		g.genExpr(e.R)
		g.emit("j %s", endL)
		g.emitLabel(elseL)
		g.genExpr(e.R2)
		g.emitLabel(endL)
	case ECall:
		g.genCall(e)
	case EIndex, EDeref:
		g.genAddr(e)
		g.loadFrom(e.Type, "t0")
	case EAddr:
		g.genAddr(e.L)
	case ECast:
		g.genExpr(e.L)
		g.genCast(e.L.Type, e.Cast)
	case EPreIncr:
		// ++x: x = x op 1, result is the new value.
		g.genIncrDecr(e, false)
	case EPostIncr:
		g.genIncrDecr(e, true)
	}
}

func (g *codegen) genFloatLit(e *Expr) {
	bits := float32Bits(float32(e.Flt))
	g.emit("li t0, %d", int64(int32(bits)))
	g.emit("fmv.w.x ft0, t0")
	if e.Type != nil && e.Type.Kind == TyDouble {
		g.emit("fcvt.d.s ft0, ft0")
	}
}

func (g *codegen) genVarLoad(e *Expr) {
	sym := e.Sym
	if sym == nil {
		g.emit("li t0, 0")
		return
	}
	// Arrays decay to their base address.
	if sym.Type.Kind == TyArray {
		g.genAddrOfSym(sym)
		return
	}
	if sym.Reg != "" {
		g.emit("mv t0, %s", sym.Reg)
		return
	}
	if sym.Kind == SymGlobal {
		g.emit("la t1, %s", sym.Name)
		g.loadFromAddr(e.Type, "t1")
		return
	}
	if e.Type.IsFloat() {
		g.emit("%s ft0, %d(s0)", floadOp(e.Type), g.localOff(sym))
	} else {
		g.emit("%s t0, %d(s0)", loadOp(e.Type), g.localOff(sym))
	}
}

// genAddr leaves the address of an lvalue in t0.
func (g *codegen) genAddr(e *Expr) {
	switch e.Kind {
	case EVar:
		g.genAddrOfSym(e.Sym)
	case EDeref:
		g.genExpr(e.L)
	case EIndex:
		g.genExpr(e.L) // pointer value / decayed array base in t0
		elem := e.Type
		size := elem.Size()
		if g.opt >= 1 && e.R.Kind == EIntLit {
			off := e.R.Int * int64(size)
			if off != 0 {
				g.emit("addi t0, t0, %d", off)
			}
			return
		}
		g.push(nil)
		g.genExpr(e.R)
		g.scaleT0(size)
		g.popInto(nil, "t1")
		g.emit("add t0, t1, t0")
	default:
		g.emit("li t0, 0")
	}
}

// scaleT0 multiplies t0 by size (strength-reduced at O2+).
func (g *codegen) scaleT0(size int) {
	switch {
	case size == 1:
	case g.opt >= 2 && size&(size-1) == 0:
		g.emit("slli t0, t0, %d", log2(size))
	default:
		g.emit("li t1, %d", size)
		g.emit("mul t0, t0, t1")
	}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func (g *codegen) genAddrOfSym(sym *Symbol) {
	if sym == nil {
		g.emit("li t0, 0")
		return
	}
	if sym.Kind == SymGlobal {
		g.emit("la t0, %s", sym.Name)
	} else {
		g.emit("addi t0, s0, %d", g.localOff(sym))
	}
}

// loadFrom loads *t0 into t0/ft0 according to type.
func (g *codegen) loadFrom(t *CType, addrReg string) {
	g.loadFromAddr(t, addrReg)
}

func (g *codegen) loadFromAddr(t *CType, addrReg string) {
	if t.Kind == TyArray {
		if addrReg != "t0" {
			g.emit("mv t0, %s", addrReg)
		}
		return // address is the value
	}
	if t.IsFloat() {
		g.emit("%s ft0, 0(%s)", floadOp(t), addrReg)
	} else {
		g.emit("%s t0, 0(%s)", loadOp(t), addrReg)
	}
}

func loadOp(t *CType) string {
	switch t.Kind {
	case TyChar:
		return "lb"
	default:
		return "lw"
	}
}

func storeOp(t *CType) string {
	switch t.Kind {
	case TyChar:
		return "sb"
	default:
		return "sw"
	}
}

func floadOp(t *CType) string {
	if t.Kind == TyDouble {
		return "fld"
	}
	return "flw"
}

func fstoreOp(t *CType) string {
	if t.Kind == TyDouble {
		return "fsd"
	}
	return "fsw"
}

// storeTo writes t0/ft0 into a symbol's home.
func (g *codegen) storeTo(sym *Symbol, t *CType) {
	if sym == nil {
		return
	}
	if sym.Reg != "" {
		g.emit("mv %s, t0", sym.Reg)
		return
	}
	if sym.Kind == SymGlobal {
		g.emit("la t2, %s", sym.Name)
		if sym.Type.IsFloat() {
			g.emit("%s ft0, 0(t2)", fstoreOp(sym.Type))
		} else {
			g.emit("%s t0, 0(t2)", storeOp(sym.Type))
		}
		return
	}
	if sym.Type.IsFloat() {
		g.emit("%s ft0, %d(s0)", fstoreOp(sym.Type), g.localOff(sym))
	} else {
		g.emit("%s t0, %d(s0)", storeOp(sym.Type), g.localOff(sym))
	}
}

func (g *codegen) genAssign(e *Expr) {
	lhs := e.L
	// Direct variable targets avoid address computation.
	if lhs.Kind == EVar && lhs.Sym != nil && lhs.Sym.Type.Kind != TyArray {
		g.genExpr(e.R)
		g.storeTo(lhs.Sym, e.R.Type)
		return
	}
	// General lvalue: compute the address, stash it, compute the value.
	g.genAddr(lhs)
	g.push(nil)
	g.genExpr(e.R)
	g.emit("lw t2, 0(sp)")
	g.emit("addi sp, sp, 4")
	if lhs.Type.IsFloat() {
		g.emit("%s ft0, 0(t2)", fstoreOp(lhs.Type))
	} else {
		g.emit("%s t0, 0(t2)", storeOp(lhs.Type))
	}
}

func (g *codegen) genIncrDecr(e *Expr, post bool) {
	one := &Expr{Kind: EIntLit, Int: 1, Type: typeInt}
	if e.L.Type != nil && e.L.Type.Kind == TyPtr {
		one.Int = int64(e.L.Type.Elem.Size())
	}
	sum := &Expr{Kind: EBinary, Op: e.Op, L: e.L, R: one, Type: e.L.Type, Line: e.Line}
	asg := &Expr{Kind: EAssign, L: e.L, R: sum, Type: e.L.Type, Line: e.Line}
	if post {
		// Evaluate the old value, then assign; old value ends in t0/ft0.
		g.genExpr(e.L)
		g.push(e.L.Type)
		g.genExpr(asg)
		if e.L.Type.IsFloat() {
			g.popInto(e.L.Type, "ft0")
		} else {
			g.popInto(nil, "t0")
		}
		return
	}
	g.genExpr(asg)
}

func (g *codegen) genUnary(e *Expr) {
	g.genExpr(e.L)
	isF := e.L.Type != nil && e.L.Type.IsFloat()
	switch e.Op {
	case "-":
		if isF {
			if e.L.Type.Kind == TyDouble {
				g.emit("fneg.d ft0, ft0")
			} else {
				g.emit("fneg.s ft0, ft0")
			}
		} else {
			g.emit("neg t0, t0")
		}
	case "!":
		if isF {
			g.genFloatZeroTest(e.L.Type)
			g.emit("seqz t0, t0")
		} else {
			g.emit("seqz t0, t0")
		}
	case "~":
		g.emit("not t0, t0")
	}
}

// genFloatZeroTest sets t0 to (ft0 != 0.0).
func (g *codegen) genFloatZeroTest(t *CType) {
	g.emit("fmv.w.x ft1, x0")
	if t.Kind == TyDouble {
		g.emit("fcvt.d.s ft1, ft1")
		g.emit("feq.d t0, ft0, ft1")
	} else {
		g.emit("feq.s t0, ft0, ft1")
	}
	g.emit("seqz t0, t0")
}

func (g *codegen) genBinary(e *Expr) {
	switch e.Op {
	case ",":
		g.genExpr(e.L)
		g.genExpr(e.R)
		return
	case "&&":
		falseL := g.newLabel("andf")
		endL := g.newLabel("andend")
		g.genCondBranch(e.L, falseL)
		g.genCondBranch(e.R, falseL)
		g.emit("li t0, 1")
		g.emit("j %s", endL)
		g.emitLabel(falseL)
		g.emit("li t0, 0")
		g.emitLabel(endL)
		return
	case "||":
		trueL := g.newLabel("ort")
		endL := g.newLabel("orend")
		g.genOrBranch(e.L, trueL)
		g.genOrBranch(e.R, trueL)
		g.emit("li t0, 0")
		g.emit("j %s", endL)
		g.emitLabel(trueL)
		g.emit("li t0, 1")
		g.emitLabel(endL)
		return
	}

	// Pointer arithmetic scales the integer side.
	lt, rt := e.L.Type, e.R.Type
	isFloat := lt != nil && lt.IsFloat() || rt != nil && rt.IsFloat()

	if isFloat {
		g.genExpr(e.L)
		g.push(e.L.Type)
		g.genExpr(e.R)
		g.emit("%s ft2, ft0", fmvOp(rt)) // R into ft2
		g.popInto(e.L.Type, "ft1")       // L into ft1
		g.genFloatBinary(e, "ft1", "ft2")
		return
	}

	// Integer path with leaf avoidance (O1+).
	if g.opt >= 1 && isLeaf(e.R) {
		g.genExpr(e.L)
		g.genLeafInto(e.R, "t1")
	} else {
		g.genExpr(e.L)
		g.push(nil)
		g.genExpr(e.R)
		g.emit("mv t1, t0")
		g.popInto(nil, "t0") // t0 = L, t1 = R
	}
	g.genPtrScale(e)
	g.genIntBinary(e)
}

// genOrBranch jumps to trueL when cond is true.
func (g *codegen) genOrBranch(cond *Expr, trueL string) {
	g.genExpr(cond)
	g.emit("bnez t0, %s", trueL)
}

// genPtrScale multiplies the integer operand by the pointee size for
// pointer arithmetic (t0 = L, t1 = R at this point).
func (g *codegen) genPtrScale(e *Expr) {
	lt, rt := e.L.Type, e.R.Type
	if lt == nil || rt == nil {
		return
	}
	if (e.Op == "+" || e.Op == "-") && lt.Kind == TyPtr && rt.IsInteger() {
		size := lt.Elem.Size()
		if size > 1 {
			if g.opt >= 2 && size&(size-1) == 0 {
				g.emit("slli t1, t1, %d", log2(size))
			} else {
				g.emit("li t2, %d", size)
				g.emit("mul t1, t1, t2")
			}
		}
	}
	if e.Op == "+" && lt.IsInteger() && rt.Kind == TyPtr {
		size := rt.Elem.Size()
		if size > 1 {
			if g.opt >= 2 && size&(size-1) == 0 {
				g.emit("slli t0, t0, %d", log2(size))
			} else {
				g.emit("li t2, %d", size)
				g.emit("mul t0, t0, t2")
			}
		}
	}
}

func (g *codegen) genIntBinary(e *Expr) {
	uns := e.Type != nil && e.Type.Kind == TyUInt
	lUns := e.L.Type != nil && e.L.Type.Kind == TyUInt
	switch e.Op {
	case "+":
		g.emit("add t0, t0, t1")
	case "-":
		g.emit("sub t0, t0, t1")
		if e.L.Type != nil && e.L.Type.Kind == TyPtr && e.R.Type != nil && e.R.Type.Kind == TyPtr {
			size := e.L.Type.Elem.Size()
			if size > 1 {
				if g.opt >= 2 && size&(size-1) == 0 {
					g.emit("srai t0, t0, %d", log2(size))
				} else {
					g.emit("li t1, %d", size)
					g.emit("div t0, t0, t1")
				}
			}
		}
	case "*":
		g.emit("mul t0, t0, t1")
	case "/":
		if uns {
			g.emit("divu t0, t0, t1")
		} else {
			g.emit("div t0, t0, t1")
		}
	case "%":
		if uns {
			g.emit("remu t0, t0, t1")
		} else {
			g.emit("rem t0, t0, t1")
		}
	case "&":
		g.emit("and t0, t0, t1")
	case "|":
		g.emit("or t0, t0, t1")
	case "^":
		g.emit("xor t0, t0, t1")
	case "<<":
		g.emit("sll t0, t0, t1")
	case ">>":
		if lUns {
			g.emit("srl t0, t0, t1")
		} else {
			g.emit("sra t0, t0, t1")
		}
	case "==":
		g.emit("sub t0, t0, t1")
		g.emit("seqz t0, t0")
	case "!=":
		g.emit("sub t0, t0, t1")
		g.emit("snez t0, t0")
	case "<":
		g.emit("%s", pick(lUns, "sltu t0, t0, t1", "slt t0, t0, t1"))
	case ">":
		g.emit("%s", pick(lUns, "sltu t0, t1, t0", "slt t0, t1, t0"))
	case "<=":
		g.emit("%s", pick(lUns, "sltu t0, t1, t0", "slt t0, t1, t0"))
		g.emit("xori t0, t0, 1")
	case ">=":
		g.emit("%s", pick(lUns, "sltu t0, t0, t1", "slt t0, t0, t1"))
		g.emit("xori t0, t0, 1")
	}
}

func fmvOp(t *CType) string {
	if t != nil && t.Kind == TyDouble {
		return "fmv.d"
	}
	return "fmv.s"
}

func (g *codegen) genFloatBinary(e *Expr, l, r string) {
	d := e.Type != nil && e.Type.Kind == TyDouble ||
		(e.L.Type != nil && e.L.Type.Kind == TyDouble)
	sfx := pick(d, ".d", ".s")
	switch e.Op {
	case "+":
		g.emit("fadd%s ft0, %s, %s", sfx, l, r)
	case "-":
		g.emit("fsub%s ft0, %s, %s", sfx, l, r)
	case "*":
		g.emit("fmul%s ft0, %s, %s", sfx, l, r)
	case "/":
		g.emit("fdiv%s ft0, %s, %s", sfx, l, r)
	case "==":
		g.emit("feq%s t0, %s, %s", sfx, l, r)
	case "!=":
		g.emit("feq%s t0, %s, %s", sfx, l, r)
		g.emit("xori t0, t0, 1")
	case "<":
		g.emit("flt%s t0, %s, %s", sfx, l, r)
	case "<=":
		g.emit("fle%s t0, %s, %s", sfx, l, r)
	case ">":
		g.emit("flt%s t0, %s, %s", sfx, r, l)
	case ">=":
		g.emit("fle%s t0, %s, %s", sfx, r, l)
	}
}

func (g *codegen) genCast(from, to *CType) {
	if from == nil || to == nil || sameType(from, to) {
		return
	}
	switch {
	case from.IsInteger() && to.Kind == TyFloat:
		if from.Kind == TyUInt {
			g.emit("fcvt.s.wu ft0, t0")
		} else {
			g.emit("fcvt.s.w ft0, t0")
		}
	case from.IsInteger() && to.Kind == TyDouble:
		if from.Kind == TyUInt {
			g.emit("fcvt.d.wu ft0, t0")
		} else {
			g.emit("fcvt.d.w ft0, t0")
		}
	case from.Kind == TyFloat && to.IsInteger():
		if to.Kind == TyUInt {
			g.emit("fcvt.wu.s t0, ft0")
		} else {
			g.emit("fcvt.w.s t0, ft0")
		}
		g.truncToInt(to)
	case from.Kind == TyDouble && to.IsInteger():
		if to.Kind == TyUInt {
			g.emit("fcvt.wu.d t0, ft0")
		} else {
			g.emit("fcvt.w.d t0, ft0")
		}
		g.truncToInt(to)
	case from.Kind == TyFloat && to.Kind == TyDouble:
		g.emit("fcvt.d.s ft0, ft0")
	case from.Kind == TyDouble && to.Kind == TyFloat:
		g.emit("fcvt.s.d ft0, ft0")
	case from.IsInteger() && to.Kind == TyChar:
		g.truncToInt(to)
	default:
		// int<->uint<->ptr: same representation.
	}
}

func (g *codegen) truncToInt(to *CType) {
	if to.Kind == TyChar {
		g.emit("slli t0, t0, 24")
		g.emit("srai t0, t0, 24")
	}
}

func (g *codegen) genCall(e *Expr) {
	// Evaluate arguments left to right, parking each on the stack.
	for _, a := range e.Args {
		g.genExpr(a)
		g.push(a.Type)
	}
	// Pop into the argument registers, right to left.
	intN, fltN := 0, 0
	for _, a := range e.Args {
		if a.Type.IsFloat() {
			fltN++
		} else {
			intN++
		}
	}
	for i := len(e.Args) - 1; i >= 0; i-- {
		a := e.Args[i]
		if a.Type.IsFloat() {
			fltN--
			g.popInto(a.Type, fmt.Sprintf("fa%d", fltN))
		} else {
			intN--
			g.popInto(nil, fmt.Sprintf("a%d", intN))
		}
	}
	g.emit("call %s", e.Fn)
	if e.Type != nil && e.Type.IsFloat() {
		g.emit("%s ft0, fa0", fmvOp(e.Type))
	} else if e.Type != nil && e.Type.Kind != TyVoid {
		g.emit("mv t0, a0")
	}
}

func pickInt(c bool, a, b int) int {
	if c {
		return a
	}
	return b
}

func float32Bits(f float32) uint32 {
	return mathFloat32bits(f)
}
