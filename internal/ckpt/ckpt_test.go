package ckpt

import (
	"bytes"
	"errors"
	"testing"

	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.U64(0)
	w.U64(1<<63 + 17)
	w.I64(-42)
	w.Int(12345)
	w.Fixed64(0xDEADBEEFCAFEF00D)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Section(SecCore)
	w.Value(expr.NewDouble(3.25))
	w.Exception(nil)
	w.Exception(&fault.Exception{Kind: fault.DivisionByZero, Msg: "div", Cycle: 9, PC: 4})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.U64(); got != 1<<63+17 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 12345 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Fixed64(); got != 0xDEADBEEFCAFEF00D {
		t.Errorf("Fixed64 = %x", got)
	}
	if got := r.Bytes(10); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(10); got != "hello" {
		t.Errorf("String = %q", got)
	}
	r.Section(SecCore)
	if v := r.Value(); v.Double() != 3.25 || v.Type() != expr.Double {
		t.Errorf("Value = %v", v)
	}
	if e := r.Exception(); e != nil {
		t.Errorf("Exception = %v, want nil", e)
	}
	e := r.Exception()
	if e == nil || e.Kind != fault.DivisionByZero || e.Msg != "div" || e.Cycle != 9 || e.PC != 4 {
		t.Errorf("Exception = %+v", e)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Bytes(make([]byte, 100))
	full := buf.Bytes()

	for _, cut := range []int{0, 1, 50} {
		r := NewReader(bytes.NewReader(full[:cut]))
		r.Bytes(200)
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, r.Err())
		}
	}
}

func TestSectionMismatchIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Section(SecCache)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Section(SecCore)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", r.Err())
	}
}

func TestLengthBound(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 40) // absurd length prefix
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Bytes(-1)
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", r.Err())
	}
}

func TestErrorsAreSticky(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.U64()
	first := r.Err()
	if first == nil {
		t.Fatal("expected error on empty stream")
	}
	_ = r.Int()
	_ = r.Bytes(4)
	if r.Err() != first {
		t.Errorf("error not sticky: %v then %v", first, r.Err())
	}
}
