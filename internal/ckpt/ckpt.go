// Package ckpt implements the simulator's versioned binary checkpoint
// wire format: the primitives every stateful package uses to serialize
// itself (varint integers, length-prefixed byte strings, typed values),
// the self-describing header (magic, format version, configuration hash)
// and the stable sentinel errors the API layer maps onto machine-readable
// error codes.
//
// The format is strictly deterministic: encoding the same machine state
// twice produces byte-identical output (maps are encoded in sorted order
// by their owners), which is what makes golden-file tests and
// checkpoint-hash determinism checks possible. docs/checkpoint.md
// documents the layout.
package ckpt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"riscvsim/internal/expr"
	"riscvsim/internal/fault"
)

// Magic identifies a checkpoint stream ("RISC-V Simulator Checkpoint").
const Magic = "RVSC"

// Version is the current format version. Decoders reject newer versions;
// older versions may be migrated in place when the layout allows it.
const Version = 1

// FooterMagic terminates a checkpoint so tail truncation is detectable
// even when every section happened to decode.
const FooterMagic uint32 = 0x4B435652 // "RVCK" little-endian

// Sentinel errors, mapped onto stable API error codes by internal/api.
var (
	// ErrBadMagic: the stream does not start with Magic.
	ErrBadMagic = errors.New("ckpt: not a checkpoint stream (bad magic)")
	// ErrVersion: the stream's format version is newer than this build.
	ErrVersion = errors.New("ckpt: unsupported checkpoint format version")
	// ErrConfigHash: the embedded configuration does not match the hash
	// recorded in the header (corruption or tampering).
	ErrConfigHash = errors.New("ckpt: configuration hash mismatch")
	// ErrTruncated: the stream ended before the checkpoint was complete.
	ErrTruncated = errors.New("ckpt: truncated checkpoint stream")
	// ErrCorrupt: a section tag, length or index is out of range.
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint stream")
)

// Section tags give every block of the stream a one-byte self-describing
// marker, so decoding failures carry context and layout drift is caught
// immediately rather than as garbage state.
const (
	SecHeader    byte = 0x01
	SecCore      byte = 0x02
	SecInstrs    byte = 0x03
	SecROB       byte = 0x04
	SecWindows   byte = 0x05
	SecFUs       byte = 0x06
	SecLSU       byte = 0x07
	SecFetch     byte = 0x08
	SecRename    byte = 0x09
	SecPredictor byte = 0x0A
	SecCache     byte = 0x0B
	SecMemory    byte = 0x0C
	SecLog       byte = 0x0D
	SecDebug     byte = 0x0E
)

// ConfigHash is the header's integrity hash over the embedded
// architecture JSON: FNV-1a 64.
func ConfigHash(configJSON []byte) uint64 {
	h := fnv.New64a()
	h.Write(configJSON)
	return h.Sum64()
}

// MaxSliceLen bounds every length prefix a decoder accepts, so a corrupt
// stream cannot drive an allocation of arbitrary size.
const MaxSliceLen = 1 << 26 // 64 Mi elements

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

// Writer serializes checkpoint primitives. Errors are sticky: the first
// write failure latches and every later call is a no-op, so encoders can
// run straight through and check Err once.
type Writer struct {
	w       io.Writer
	scratch [binary.MaxVarintLen64]byte
	err     error
}

// NewWriter wraps w. The caller owns buffering (sim wraps files in a
// bufio.Writer; hashing writers need no buffer).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

// Failf latches an encoding-invariant violation (e.g. a structure
// referencing an instruction missing from the live table). Subsequent
// writes become no-ops and the checkpoint fails loudly instead of
// encoding silently-wrong state.
func (w *Writer) Failf(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Raw writes b without a length prefix.
func (w *Writer) Raw(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Byte writes one byte.
func (w *Writer) Byte(b byte) { w.Raw([]byte{b}) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(b bool) {
	if b {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	n := binary.PutUvarint(w.scratch[:], v)
	w.Raw(w.scratch[:n])
}

// I64 writes a signed varint (zigzag).
func (w *Writer) I64(v int64) {
	n := binary.PutVarint(w.scratch[:], v)
	w.Raw(w.scratch[:n])
}

// Int writes a signed int.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Len writes a count prefix (unsigned varint, read back with Reader.Len).
func (w *Writer) Len(n int) { w.U64(uint64(n)) }

// Fixed64 writes 8 little-endian bytes (used for the header hash so it is
// readable in hex dumps).
func (w *Writer) Fixed64(v uint64) {
	binary.LittleEndian.PutUint64(w.scratch[:8], v)
	w.Raw(w.scratch[:8])
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.Raw(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Section writes a section tag.
func (w *Writer) Section(tag byte) { w.Byte(tag) }

// Value writes a typed expression value (type tag + raw bits).
func (w *Writer) Value(v expr.Value) {
	w.Byte(byte(v.Type()))
	w.U64(v.Bits())
}

// Exception writes an optional fault (presence flag + fields).
func (w *Writer) Exception(e *fault.Exception) {
	if e == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Int(int(e.Kind))
	w.String(e.Msg)
	w.U64(e.Cycle)
	w.Int(e.PC)
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

// Reader decodes checkpoint primitives. Errors are sticky and every
// accessor returns a zero value after a failure, so decoders can run
// straight through and check Err once; any short read surfaces as
// ErrTruncated, any malformed length or tag as ErrCorrupt.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// fail latches the first error, mapping EOF onto ErrTruncated.
func (r *Reader) fail(err error) {
	if r.err != nil || err == nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		err = ErrTruncated
	}
	r.err = err
}

// Corrupt latches a formatted ErrCorrupt (decoders use it for failed
// validation: bad indices, impossible counts).
func (r *Reader) Corrupt(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Raw reads exactly len(b) bytes into b.
func (r *Reader) Raw(b []byte) {
	if r.err != nil {
		return
	}
	_, err := io.ReadFull(r.r, b)
	r.fail(err)
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.fail(err)
	return b
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.r)
	r.fail(err)
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.r)
	r.fail(err)
	return v
}

// Int reads a signed int.
func (r *Reader) Int() int { return int(r.I64()) }

// Fixed64 reads 8 little-endian bytes.
func (r *Reader) Fixed64() uint64 {
	var b [8]byte
	r.Raw(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Len reads a length prefix, validating it against max (and the global
// MaxSliceLen bound).
func (r *Reader) Len(max int) int {
	n := r.U64()
	limit := uint64(max)
	if max < 0 || max > MaxSliceLen {
		limit = MaxSliceLen
	}
	if n > limit {
		r.Corrupt("length %d exceeds limit %d", n, limit)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte string of at most max bytes.
func (r *Reader) Bytes(max int) []byte {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	r.Raw(b)
	if r.err != nil {
		return nil
	}
	return b
}

// String reads a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string { return string(r.Bytes(max)) }

// Section reads a section tag, requiring it to match want.
func (r *Reader) Section(want byte) {
	got := r.Byte()
	if r.err == nil && got != want {
		r.Corrupt("section tag 0x%02x, want 0x%02x", got, want)
	}
}

// Value reads a typed expression value.
func (r *Reader) Value() expr.Value {
	t := expr.Type(r.Byte())
	bits := r.U64()
	if r.err != nil {
		return expr.Value{}
	}
	if t > expr.Double {
		r.Corrupt("value type %d out of range", t)
		return expr.Value{}
	}
	return expr.FromBits(bits, t)
}

// Exception reads an optional fault.
func (r *Reader) Exception() *fault.Exception {
	if !r.Bool() || r.err != nil {
		return nil
	}
	e := &fault.Exception{
		Kind:  fault.Kind(r.Int()),
		Msg:   r.String(1 << 16),
		Cycle: r.U64(),
	}
	e.PC = r.Int()
	if r.err != nil {
		return nil
	}
	return e
}
