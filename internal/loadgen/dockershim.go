package loadgen

import (
	"net/http"
	"runtime"
	"sync"
	"time"
)

// DockerShim models containerized deployment overhead for the Table I
// "Docker" rows (DESIGN.md §1 substitution). The original evaluation runs
// the same server inside Docker, which costs a small per-request
// constant (userland proxying, veth NAT) plus reduced effective
// parallelism — visible in the paper as a slightly higher median at 30
// users and a much heavier tail and lower throughput at 100 users.
//
// The shim reproduces both mechanisms explicitly:
//   - a fixed per-request overhead (ProxyDelay), and
//   - a concurrency limiter (Parallelism) that queues requests under
//     load, inflating tail latencies exactly like a saturated container.
type DockerShim struct {
	// ProxyDelay is the fixed per-request overhead.
	ProxyDelay time.Duration
	// Parallelism caps concurrently serviced requests.
	Parallelism int

	next http.Handler
	sem  chan struct{}
	once sync.Once
}

// DefaultDockerShim wraps a handler with calibrated defaults: ~2 ms proxy
// cost and half the machine's cores.
func DefaultDockerShim(next http.Handler) *DockerShim {
	p := runtime.NumCPU() / 2
	if p < 1 {
		p = 1
	}
	return &DockerShim{ProxyDelay: 2 * time.Millisecond, Parallelism: p, next: next}
}

// Wrap sets the inner handler (when not using DefaultDockerShim).
func (d *DockerShim) Wrap(next http.Handler) *DockerShim {
	d.next = next
	return d
}

// ServeHTTP implements http.Handler.
func (d *DockerShim) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	d.once.Do(func() {
		n := d.Parallelism
		if n < 1 {
			n = 1
		}
		d.sem = make(chan struct{}, n)
	})
	d.sem <- struct{}{}
	defer func() { <-d.sem }()
	if d.ProxyDelay > 0 {
		time.Sleep(d.ProxyDelay)
	}
	d.next.ServeHTTP(w, r)
}
