package loadgen

import (
	"testing"
	"time"
)

func TestRunMultiCapacityModel(t *testing.T) {
	c, err := SpawnCluster(3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if n, err := HealthyReplicas(c.RouterURL); err != nil || n != 3 {
		t.Fatalf("healthy replicas = %d, %v; want 3", n, err)
	}
	sc := Scenario{
		Users:        4,
		StepsPerUser: 5,
		StepSize:     20,
		RampUp:       20 * time.Millisecond,
		ThinkTime:    time.Millisecond,
		Gzip:         true,
		Programs:     []string{ProgramA, ProgramB},
	}
	m, err := RunMulti(c.RouterURL, 3, sc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Errors != 0 {
		t.Errorf("capacity run saw %d errors", m.Errors)
	}
	// 4 users × (1 create + 5 steps) requests.
	if m.Requests != 4*6 {
		t.Errorf("requests = %d, want 24", m.Requests)
	}
	if m.CheckpointBytes <= 0 || m.SessionsPerGB <= 0 {
		t.Errorf("degenerate storage model: %d B/ckpt, %.0f sessions/GB", m.CheckpointBytes, m.SessionsPerGB)
	}
	if m.RequestsPerSec <= 0 || m.MedianMs < 0 {
		t.Errorf("degenerate throughput model: %+v", m)
	}
}

func TestClusterKillReplica(t *testing.T) {
	c, err := SpawnCluster(2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := c.ReplicaNames()
	if len(names) != 2 {
		t.Fatalf("replica names = %v", names)
	}
	if !c.KillReplica(names[0]) {
		t.Fatal("kill refused")
	}
	if c.KillReplica(names[0]) {
		t.Fatal("double kill accepted")
	}
}
