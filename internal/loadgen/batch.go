package loadgen

import (
	"fmt"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
)

// SweepResult compares the two ways of running N independent simulations:
// one /api/v1/batch round trip fanned out across the server's cores
// versus N sequential /api/v1/simulate calls.
type SweepResult struct {
	Requests   int           `json:"requests"`
	Failed     int           `json:"failed"`
	Workers    int           `json:"workers"`
	Wall       time.Duration `json:"wall"`
	ServerWall time.Duration `json:"serverWall"` // batch only: fan-out time on the server
}

// BatchSweep sends reqs in a single /api/v1/batch round trip.
func BatchSweep(baseURL string, reqs []api.SimulateRequest, gz bool) (*SweepResult, error) {
	c := client.NewForURL(baseURL, gz)
	start := time.Now()
	resp, err := c.SimulateBatch(reqs)
	if err != nil {
		return nil, fmt.Errorf("loadgen: batch sweep: %w", err)
	}
	return &SweepResult{
		Requests:   len(reqs),
		Failed:     resp.Failed,
		Workers:    resp.Workers,
		Wall:       time.Since(start),
		ServerWall: time.Duration(resp.WallNanos),
	}, nil
}

// SequentialSweep runs the same requests one /api/v1/simulate call at a
// time — the pre-batch baseline a client had to settle for.
func SequentialSweep(baseURL string, reqs []api.SimulateRequest, gz bool) (*SweepResult, error) {
	c := client.NewForURL(baseURL, gz)
	res := &SweepResult{Requests: len(reqs), Workers: 1}
	start := time.Now()
	for i := range reqs {
		if _, err := c.Simulate(&reqs[i]); err != nil {
			res.Failed++
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}

// WidthSweepRequests builds the HPC width-study workload: the same
// program simulated across issue widths, repeated until n requests exist
// — the shape of sweep the batch endpoint is for.
func WidthSweepRequests(n int, code string, steps uint64) []api.SimulateRequest {
	presets := []string{"scalar", "default", "wide4"}
	reqs := make([]api.SimulateRequest, n)
	for i := range reqs {
		reqs[i] = api.SimulateRequest{
			Code:   code,
			Preset: presets[i%len(presets)],
			Steps:  steps,
		}
	}
	return reqs
}
