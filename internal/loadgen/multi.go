// Multi-node load testing: the distributed tier's capacity model
// (docs/deployment.md). An in-process Cluster mirrors the compose
// topology — N simserver replicas over one shared checkpoint store
// behind the consistent-hash router — so the router path benches
// without containers; RunMulti drives the paper's workload through a
// router (in-process or remote) and reports requests/s plus a
// sessions-per-GB sizing figure derived from measured checkpoint size.
package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/router"
	"riscvsim/internal/server"
	"riscvsim/internal/store"
)

// Cluster is an in-process replica fleet behind a router.
type Cluster struct {
	// RouterURL is the base URL load generators target.
	RouterURL string

	replicas map[string]*httptest.Server
	rt       *router.Router
	routerTS *httptest.Server
}

// SpawnCluster builds n in-process replicas (write-through, assigned
// IDs — the compose services' configuration) over one shared store and
// fronts them with the router. storeDir == "" keeps checkpoints in
// memory; otherwise they land in that directory like a compose volume.
func SpawnCluster(n int, storeDir string) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadgen: cluster needs at least one replica")
	}
	var backend store.Store = store.NewMem()
	if storeDir != "" {
		d, err := store.NewDir(storeDir)
		if err != nil {
			return nil, fmt.Errorf("loadgen: cluster store: %w", err)
		}
		backend = d
	}
	c := &Cluster{replicas: make(map[string]*httptest.Server, n)}
	var reps []router.Replica
	for i := 0; i < n; i++ {
		srv := server.New(server.Options{
			MaxSessions:      256,
			Store:            backend,
			WriteThrough:     true,
			AllowAssignedIDs: true,
		})
		name := fmt.Sprintf("sim%d", i+1)
		ts := httptest.NewServer(srv.Handler())
		c.replicas[name] = ts
		reps = append(reps, router.Replica{Name: name, URL: ts.URL})
	}
	rt, err := router.New(router.Options{
		Replicas:       reps,
		HealthInterval: 250 * time.Millisecond,
		HealthTimeout:  2 * time.Second,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.rt = rt
	c.routerTS = httptest.NewServer(rt.Handler())
	c.RouterURL = c.routerTS.URL
	return c, nil
}

// ReplicaNames lists the cluster's ring names.
func (c *Cluster) ReplicaNames() []string {
	names := make([]string, 0, len(c.replicas))
	for n := range c.replicas {
		names = append(names, n)
	}
	return names
}

// KillReplica terminates one replica abruptly (failover drills).
func (c *Cluster) KillReplica(name string) bool {
	ts, ok := c.replicas[name]
	if !ok {
		return false
	}
	ts.Close()
	delete(c.replicas, name)
	return true
}

// Close tears the cluster down.
func (c *Cluster) Close() {
	if c.routerTS != nil {
		c.routerTS.Close()
	}
	if c.rt != nil {
		c.rt.Close()
	}
	for _, ts := range c.replicas {
		ts.Close()
	}
}

// CapacityModel is the distributed tier's sizing sheet: measured
// request throughput through the router plus a storage figure — how
// many checkpointed sessions fit in a GiB of shared store.
type CapacityModel struct {
	Replicas        int     `json:"replicas"`
	Users           int     `json:"users"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	RequestsPerSec  float64 `json:"requestsPerSec"`
	MedianMs        float64 `json:"medianMs"`
	P90Ms           float64 `json:"p90Ms"`
	CheckpointBytes int     `json:"checkpointBytes"`
	SessionsPerGB   float64 `json:"sessionsPerGB"`
}

func (m *CapacityModel) String() string {
	return fmt.Sprintf("%d replicas  %4d users   median %8.2f ms   p90 %8.1f ms   %7.2f req/s   %.0f sessions/GB (%d B/ckpt)",
		m.Replicas, m.Users, m.MedianMs, m.P90Ms, m.RequestsPerSec, m.SessionsPerGB, m.CheckpointBytes)
}

// RunMulti drives the scenario through a router and derives the
// capacity model. replicas is reported, not enforced — pass what the
// target topology runs.
func RunMulti(routerURL string, replicas int, sc Scenario) (*CapacityModel, error) {
	res, err := Run(routerURL, sc)
	if err != nil {
		return nil, err
	}
	ckptBytes, err := sampleCheckpointSize(routerURL, sc)
	if err != nil {
		return nil, fmt.Errorf("loadgen: sampling checkpoint size: %w", err)
	}
	m := &CapacityModel{
		Replicas:        replicas,
		Users:           res.Users,
		Requests:        res.Requests,
		Errors:          res.Errors,
		RequestsPerSec:  res.Throughput,
		MedianMs:        float64(res.Median.Microseconds()) / 1000,
		P90Ms:           float64(res.P90.Microseconds()) / 1000,
		CheckpointBytes: ckptBytes,
	}
	if ckptBytes > 0 {
		m.SessionsPerGB = float64(1<<30) / float64(ckptBytes)
	}
	return m, nil
}

// sampleCheckpointSize measures one representative session's
// checkpoint: the scenario's first program, advanced as far as one
// user's whole run would advance it.
func sampleCheckpointSize(routerURL string, sc Scenario) (int, error) {
	prog := ProgramA
	if len(sc.Programs) > 0 {
		prog = sc.Programs[0]
	}
	stepSize := sc.StepSize
	if stepSize <= 0 {
		stepSize = 1
	}
	cl := client.NewForURL(routerURL, sc.Gzip)
	sess, err := cl.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Code: prog}})
	if err != nil {
		return 0, err
	}
	defer cl.CloseSession(sess.SessionID)
	if _, err := cl.Step(sess.SessionID, stepSize*int64(sc.StepsPerUser)); err != nil {
		return 0, err
	}
	ck, err := cl.Checkpoint(sess.SessionID)
	if err != nil {
		return 0, err
	}
	return len(ck.Checkpoint), nil
}

// ringProbe hits the router's admin surface; used by callers that want
// to confirm they are talking to a router (and how many replicas are
// healthy) before a multi-node run.
func ringProbe(routerURL string) (healthy int, err error) {
	resp, err := http.Get(routerURL + "/admin/ring")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET /admin/ring: HTTP %d", resp.StatusCode)
	}
	var ring router.RingResponse
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		return 0, err
	}
	for _, r := range ring.Replicas {
		if r.Healthy {
			healthy++
		}
	}
	return healthy, nil
}

// HealthyReplicas reports how many replicas a router sees up, or an
// error when the URL is not a router.
func HealthyReplicas(routerURL string) (int, error) { return ringProbe(routerURL) }
