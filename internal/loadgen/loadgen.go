// Package loadgen reproduces the paper's load-testing methodology (§IV-A)
// without Apache JMeter: N simulated users, each interactively stepping a
// simulation for a fixed number of requests, with a ramp-up period and a
// think-time pause between requests. It reports median latency, 90th
// percentile latency and throughput — the columns of the paper's Table I.
package loadgen

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/client"
	"riscvsim/internal/seeds"
)

// Scenario describes one load test. The paper's Table I scenarios are 30
// and 100 users, 40 interactive steps each, 4 s ramp-up and 1 s think
// time, with gzip enabled.
type Scenario struct {
	// Users is the number of concurrent simulated users.
	Users int
	// StepsPerUser is the number of interactive simulation steps each
	// user performs.
	StepsPerUser int
	// StepSize is how many cycles each interactive step advances.
	StepSize int64
	// RampUp spreads user start times over this window.
	RampUp time.Duration
	// ThinkTime is the pause between a user's requests.
	ThinkTime time.Duration
	// Gzip enables request/response compression.
	Gzip bool
	// Programs are the assembly sources users simulate; users are
	// assigned round-robin ("one of two programs" in the paper).
	Programs []string
	// TimeScale scales RampUp and ThinkTime (e.g. 0.02 to run the
	// paper's 1 s think time as 20 ms in a benchmark). 0 means 1.0.
	TimeScale float64
	// Seed randomizes the user→program assignment deterministically
	// through the shared seed-plumbing helper (internal/seeds): user u
	// simulates Programs[seeds.Mix(seeds.Derive(Seed, u)) % len]. 0
	// keeps the paper's plain round-robin assignment.
	Seed int64
}

// PaperScenario returns the paper's Table I workload for the given user
// count, time-scaled for practical benching.
func PaperScenario(users int, timeScale float64) Scenario {
	return Scenario{
		Users:        users,
		StepsPerUser: 40,
		StepSize:     1,
		RampUp:       4 * time.Second,
		ThinkTime:    1 * time.Second,
		Gzip:         true,
		Programs:     []string{ProgramA, ProgramB},
		TimeScale:    timeScale,
	}
}

// ProgramA is the first test program: an arithmetic loop.
const ProgramA = `
li t0, 0
li t1, 1
li t2, 200
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
`

// ProgramB is the second test program: memory traffic over an array.
const ProgramB = `
la t0, buf
li t1, 0
li t2, 64
loop:
  slli t3, t1, 2
  add t3, t0, t3
  sw t1, 0(t3)
  lw t4, 0(t3)
  addi t1, t1, 1
  bne t1, t2, loop

.data
buf: .zero 256
`

// Result is one Table I row.
type Result struct {
	Mode       string        `json:"mode"`
	Users      int           `json:"users"`
	Requests   int           `json:"requests"`
	Errors     int           `json:"errors"`
	Median     time.Duration `json:"median"`
	P90        time.Duration `json:"p90"`
	Throughput float64       `json:"throughputPerSec"`
	Duration   time.Duration `json:"duration"`
}

// String renders the row like the paper's table.
func (r *Result) String() string {
	return fmt.Sprintf("%-8s %4d users   median %8.2f ms   p90 %8.1f ms   %7.2f trans/s",
		r.Mode, r.Users,
		float64(r.Median.Microseconds())/1000,
		float64(r.P90.Microseconds())/1000,
		r.Throughput)
}

// Run executes the scenario against a server base URL.
func Run(baseURL string, sc Scenario) (*Result, error) {
	if sc.Users <= 0 || sc.StepsPerUser <= 0 {
		return nil, fmt.Errorf("loadgen: scenario needs users and steps")
	}
	scale := sc.TimeScale
	if scale <= 0 {
		scale = 1
	}
	rampUp := time.Duration(float64(sc.RampUp) * scale)
	think := time.Duration(float64(sc.ThinkTime) * scale)
	programs := sc.Programs
	if len(programs) == 0 {
		programs = []string{ProgramA}
	}
	stepSize := sc.StepSize
	if stepSize <= 0 {
		stepSize = 1
	}

	latCh := make(chan time.Duration, sc.Users*(sc.StepsPerUser+1))
	errCh := make(chan error, sc.Users*(sc.StepsPerUser+1))
	var wg sync.WaitGroup
	start := time.Now()

	for u := 0; u < sc.Users; u++ {
		wg.Add(1)
		pick := u % len(programs)
		if sc.Seed != 0 {
			pick = int(uint64(seeds.Mix(seeds.Derive(sc.Seed, u))) % uint64(len(programs)))
		}
		prog := programs[pick]
		delay := time.Duration(0)
		if sc.Users > 1 {
			delay = rampUp * time.Duration(u) / time.Duration(sc.Users)
		}
		go func(prog string, delay time.Duration) {
			defer wg.Done()
			time.Sleep(delay)
			c := client.NewForURL(baseURL, sc.Gzip)
			t0 := time.Now()
			sess, err := c.NewSession(&api.SessionNewRequest{
				SimulateRequest: api.SimulateRequest{Code: prog},
			})
			latCh <- time.Since(t0)
			if err != nil {
				errCh <- err
				return
			}
			for i := 0; i < sc.StepsPerUser; i++ {
				time.Sleep(think)
				t0 = time.Now()
				_, err := c.Step(sess.SessionID, stepSize)
				latCh <- time.Since(t0)
				if err != nil {
					errCh <- err
					return
				}
			}
			c.CloseSession(sess.SessionID)
		}(prog, delay)
	}
	wg.Wait()
	total := time.Since(start)
	close(latCh)
	close(errCh)

	var lats []time.Duration
	for l := range latCh {
		lats = append(lats, l)
	}
	errCount := 0
	var firstErr error
	for e := range errCh {
		errCount++
		if firstErr == nil {
			firstErr = e
		}
	}
	if len(lats) == 0 {
		return nil, fmt.Errorf("loadgen: no requests completed (first error: %v)", firstErr)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res := &Result{
		Users:    sc.Users,
		Requests: len(lats),
		Errors:   errCount,
		Median:   lats[len(lats)/2],
		P90:      lats[len(lats)*9/10],
		Duration: total,
	}
	if total > 0 {
		res.Throughput = float64(len(lats)) / total.Seconds()
	}
	return res, nil
}
