package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"riscvsim/internal/server"
)

func tinyScenario(users int) Scenario {
	return Scenario{
		Users:        users,
		StepsPerUser: 3,
		StepSize:     1,
		RampUp:       20 * time.Millisecond,
		ThinkTime:    5 * time.Millisecond,
		Gzip:         true,
		Programs:     []string{ProgramA, ProgramB},
	}
}

func TestRunDirect(t *testing.T) {
	srv := server.New(server.DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res, err := Run(ts.URL, tinyScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	// 4 users x (1 new + 3 steps) = 16 requests.
	if res.Requests != 16 {
		t.Errorf("requests = %d, want 16", res.Requests)
	}
	if res.Median <= 0 || res.P90 < res.Median {
		t.Errorf("latencies inconsistent: median=%v p90=%v", res.Median, res.P90)
	}
	if res.Throughput <= 0 {
		t.Error("throughput not computed")
	}
}

func TestRunThroughDockerShim(t *testing.T) {
	srv := server.New(server.DefaultOptions())
	shim := &DockerShim{ProxyDelay: 3 * time.Millisecond, Parallelism: 1}
	ts := httptest.NewServer(shim.Wrap(srv.Handler()))
	defer ts.Close()
	res, err := Run(ts.URL, tinyScenario(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d request errors", res.Errors)
	}
	// Every request pays at least the proxy delay.
	if res.Median < 3*time.Millisecond {
		t.Errorf("median %v below the shim's proxy delay", res.Median)
	}
}

func TestDockerShimIsSlowerUnderLoad(t *testing.T) {
	direct := server.New(server.DefaultOptions())
	tsDirect := httptest.NewServer(direct.Handler())
	defer tsDirect.Close()

	dockerized := server.New(server.DefaultOptions())
	shim := &DockerShim{ProxyDelay: 2 * time.Millisecond, Parallelism: 1}
	tsDocker := httptest.NewServer(shim.Wrap(dockerized.Handler()))
	defer tsDocker.Close()

	sc := tinyScenario(8)
	rd, err := Run(tsDirect.URL, sc)
	if err != nil {
		t.Fatal(err)
	}
	rk, err := Run(tsDocker.URL, sc)
	if err != nil {
		t.Fatal(err)
	}
	// The Table I shape: the containerized deployment has a noticeable
	// impact on latency.
	if rk.Median <= rd.Median {
		t.Errorf("docker median %v should exceed direct median %v", rk.Median, rd.Median)
	}
}

func TestPaperScenarioShape(t *testing.T) {
	sc := PaperScenario(30, 1.0)
	if sc.Users != 30 || sc.StepsPerUser != 40 {
		t.Errorf("scenario = %+v", sc)
	}
	if sc.RampUp != 4*time.Second || sc.ThinkTime != time.Second {
		t.Error("paper timings wrong")
	}
	if !sc.Gzip || len(sc.Programs) != 2 {
		t.Error("paper scenario must use gzip and two programs")
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := Run("http://localhost:1", Scenario{}); err == nil {
		t.Error("empty scenario should fail")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Mode: "Direct", Users: 30, Median: 70 * time.Millisecond,
		P90: 118 * time.Millisecond, Throughput: 25.96}
	s := r.String()
	for _, want := range []string{"Direct", "30", "70.00", "25.96"} {
		if !contains(s, want) {
			t.Errorf("row %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
