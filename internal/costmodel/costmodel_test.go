package costmodel

import (
	"strings"
	"testing"

	"riscvsim/internal/config"
	"riscvsim/internal/stats"
)

func TestAreaBreakdownSumsToTotal(t *testing.T) {
	r := EstimateArea(config.Default())
	var sum float64
	for _, b := range r.Blocks {
		if b.KGE < 0 {
			t.Errorf("negative area for %s", b.Block)
		}
		sum += b.KGE
	}
	if diff := sum - r.TotalKGE; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown sums to %f, total says %f", sum, r.TotalKGE)
	}
	if r.TotalKGE <= 0 {
		t.Error("zero total area")
	}
}

func TestAreaMonotonicInROB(t *testing.T) {
	small := config.Default()
	big := config.Default()
	big.ROBSize *= 4
	big.RenameRegisters *= 4
	if EstimateArea(big).TotalKGE <= EstimateArea(small).TotalKGE {
		t.Error("4x ROB should cost more area")
	}
}

func TestWiderCoreCostsMore(t *testing.T) {
	narrow := config.Scalar()
	wide := config.Wide4()
	an, aw := EstimateArea(narrow).TotalKGE, EstimateArea(wide).TotalKGE
	if aw <= an {
		t.Errorf("4-wide (%f kGE) should cost more than scalar (%f kGE)", aw, an)
	}
	// The gap should be substantial (more units, bigger everything).
	if aw < 1.5*an {
		t.Errorf("4-wide (%f) vs scalar (%f): expected at least 1.5x", aw, an)
	}
}

func TestPipelinedUnitsCostExtra(t *testing.T) {
	plain := config.Default()
	piped := config.Default()
	for i := range piped.Units {
		piped.Units[i].Pipelined = true
	}
	if EstimateArea(piped).TotalKGE <= EstimateArea(plain).TotalKGE {
		t.Error("pipelined units should cost pipeline-register area")
	}
}

func TestCacheAreaScalesWithSize(t *testing.T) {
	small := config.Default()
	small.Cache.Lines = 64
	big := config.Default()
	big.Cache.Lines = 1024
	if EstimateArea(big).TotalKGE <= EstimateArea(small).TotalKGE {
		t.Error("16x cache should cost more")
	}
	off := config.Default()
	off.Cache.Enabled = false
	if EstimateArea(off).TotalKGE >= EstimateArea(small).TotalKGE {
		t.Error("disabling the cache should save area")
	}
}

func runStats() *stats.Report {
	return &stats.Report{
		Cycles:      1000,
		Committed:   1500,
		Fetched:     1600,
		ROBFlushes:  10,
		WallTimeSec: 1e-5,
		FUs: []stats.FUStat{
			{Name: "FX0", Class: "FX", ExecCount: 900},
			{Name: "FP0", Class: "FP", ExecCount: 100},
			{Name: "LS0", Class: "LS", ExecCount: 300},
			{Name: "BR0", Class: "Branch", ExecCount: 200},
		},
	}
}

func TestEnergyAccounting(t *testing.T) {
	r := Estimate(config.Default(), runStats())
	if r.DynamicNanoJ <= 0 || r.LeakageNanoJ <= 0 {
		t.Fatalf("energy not computed: %+v", r)
	}
	var sum float64
	for _, e := range r.Energy {
		sum += e.NanoJ
	}
	if diff := sum - r.DynamicNanoJ; diff > 1e-9 || diff < -1e-9 {
		t.Error("energy breakdown does not sum to dynamic total")
	}
	if r.TotalNanoJ != r.DynamicNanoJ+r.LeakageNanoJ {
		t.Error("total != dynamic + leakage")
	}
	if r.AvgPowerMW <= 0 || r.EnergyPerInst <= 0 {
		t.Error("derived metrics missing")
	}
}

func TestMoreWorkMoreEnergy(t *testing.T) {
	base := runStats()
	busy := runStats()
	busy.Committed *= 10
	busy.Fetched *= 10
	busy.FUs[0].ExecCount *= 10
	a := Estimate(config.Default(), base)
	b := Estimate(config.Default(), busy)
	if b.DynamicNanoJ <= a.DynamicNanoJ {
		t.Error("10x work should cost more dynamic energy")
	}
}

func TestEstimateWithoutStats(t *testing.T) {
	r := Estimate(config.Default(), nil)
	if r.TotalKGE <= 0 {
		t.Error("area missing")
	}
	if r.TotalNanoJ != 0 {
		t.Error("energy should be zero without stats")
	}
}

func TestFormatText(t *testing.T) {
	text := Estimate(config.Default(), runStats()).FormatText()
	for _, want := range []string{
		"Chip area", "reorder buffer", "functional units", "TOTAL",
		"Energy", "average power", "pJ/instr",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("cost report missing %q", want)
		}
	}
}
