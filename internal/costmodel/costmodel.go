// Package costmodel estimates the chip area consumed by specific blocks
// based on their complexity, and the processor's energy and power, from an
// architecture description and a run's statistics — the paper's final
// future-work item (§V: "runtime statistics could be expanded to measure
// the chip area consumed by specific blocks based on their complexity or
// estimate the processor's power consumption").
//
// The model is educational, in the spirit of the simulator: first-order
// unit costs (kilo-gate-equivalents for area, picojoules per event for
// energy) with documented scaling rules, not a sign-off power model. The
// value for students is in the *relative* numbers: doubling the ROB or
// going 4-wide has a visible, explainable price.
package costmodel

import (
	"fmt"
	"sort"
	"strings"

	"riscvsim/internal/config"
	"riscvsim/internal/stats"
)

// Area unit: kGE (thousand gate equivalents). Energy unit: pJ per event.
// The constants are loosely calibrated to published educational RISC-V
// core breakdowns (e.g. in-order RV32 cores ≈ 30-50 kGE, an FPU roughly
// doubling that) — close enough for the comparative questions the paper
// poses ("reasonable manufacturing cost and power consumption", §I-B).
const (
	kgePerArchRegFile  = 12.0 // 2x32 regs, 64-bit containers
	kgePerRenameReg    = 0.35 // speculative register + tracking
	kgePerROBEntry     = 0.45 // payload + done/exception flags
	kgePerWindowEntry  = 0.9  // wakeup/select CAM entry
	kgePerLSQEntry     = 0.8  // address CAM + data
	kgePerFetchWidth   = 3.0  // fetch/decode slice per way
	kgeFXBase          = 5.0  // ALU
	kgeFXMul           = 12.0 // multiplier array
	kgeFXDiv           = 15.0 // iterative divider
	kgeFPBase          = 35.0 // FP add/mul datapath
	kgeFPDiv           = 20.0 // FP divide/sqrt
	kgeLSUnit          = 6.0  // AGU + port
	kgeBranchUnit      = 2.5
	kgePipelinedFactor = 1.35 // pipeline registers inside a unit
	kgePerCacheKB      = 9.0  // SRAM + sense amps per KiB of data
	kgePerCacheWay     = 1.2  // tag compare per way
	kgePerBTBEntry     = 0.02
	kgePerPHTEntry     = 0.004
	kgePerHistBit      = 0.05

	pjPerCommit    = 6.0 // rename/ROB/commit bookkeeping per instruction
	pjPerFXOp      = 4.0
	pjPerFPOp      = 22.0
	pjPerLSOp      = 8.0
	pjPerBranchOp  = 3.0
	pjPerCacheHit  = 10.0
	pjPerCacheMiss = 80.0
	pjPerMemAccess = 120.0
	pjPerFlush     = 40.0
	pjPerFetch     = 2.5
	// Leakage: µW per kGE; multiplied by wall time for static energy.
	leakageUWPerKGE = 1.8
)

// BlockArea is one row of the area breakdown.
type BlockArea struct {
	Block string  `json:"block"`
	KGE   float64 `json:"kGE"`
}

// EnergyItem is one row of the energy breakdown.
type EnergyItem struct {
	Source string  `json:"source"`
	NanoJ  float64 `json:"nanojoules"`
}

// Report is the cost estimate for one architecture and (optionally) one
// run.
type Report struct {
	Architecture string `json:"architecture"`

	// Area.
	Blocks   []BlockArea `json:"areaBlocks"`
	TotalKGE float64     `json:"totalKGE"`

	// Energy/power for the measured run (zero when no stats given).
	Energy        []EnergyItem `json:"energyBreakdown,omitempty"`
	DynamicNanoJ  float64      `json:"dynamicNanojoules"`
	LeakageNanoJ  float64      `json:"leakageNanojoules"`
	TotalNanoJ    float64      `json:"totalNanojoules"`
	AvgPowerMW    float64      `json:"averagePowerMilliwatts"`
	EnergyPerInst float64      `json:"picojoulesPerInstruction"`
}

// EstimateArea computes the per-block area breakdown for an architecture.
func EstimateArea(cfg *config.CPU) *Report {
	r := &Report{Architecture: cfg.Name}
	add := func(block string, kge float64) {
		r.Blocks = append(r.Blocks, BlockArea{Block: block, KGE: kge})
		r.TotalKGE += kge
	}

	add("register files (architectural)", kgePerArchRegFile)
	add("rename file", float64(cfg.RenameRegisters)*kgePerRenameReg)
	add("reorder buffer", float64(cfg.ROBSize)*kgePerROBEntry)
	add("issue windows", float64(cfg.FXWindow+cfg.FPWindow+cfg.LSWindow+cfg.BranchWindow)*kgePerWindowEntry)
	add("load/store buffers", float64(cfg.LoadBufferSize+cfg.StoreBufferSize)*kgePerLSQEntry)
	add("fetch/decode", float64(cfg.FetchWidth)*kgePerFetchWidth)

	var fuKGE float64
	for i := range cfg.Units {
		fuKGE += unitArea(&cfg.Units[i])
	}
	add("functional units", fuKGE)

	if cfg.Cache.Enabled {
		dataKB := float64(cfg.Cache.Lines*cfg.Cache.LineSize) / 1024
		add("L1 cache", dataKB*kgePerCacheKB+float64(cfg.Cache.Associativity)*kgePerCacheWay)
	}
	pred := float64(cfg.Predictor.BTBSize)*kgePerBTBEntry +
		float64(cfg.Predictor.PHTSize)*kgePerPHTEntry +
		float64(cfg.Predictor.HistoryBits)*kgePerHistBit
	add("branch predictor", pred)
	return r
}

// unitArea prices one functional unit by class and supported operations.
func unitArea(u *config.FUSpec) float64 {
	var kge float64
	switch u.Class {
	case "FX":
		kge = kgeFXBase
		if supportsAny(u, "mul", "mulh", "mulhu", "mulhsu") {
			kge += kgeFXMul
		}
		if supportsAny(u, "div", "divu", "rem", "remu") {
			kge += kgeFXDiv
		}
	case "FP":
		kge = kgeFPBase
		if supportsAny(u, "fdiv.s", "fsqrt.s", "fdiv.d", "fsqrt.d") {
			kge += kgeFPDiv
		}
	case "LS":
		kge = kgeLSUnit
	default:
		kge = kgeBranchUnit
	}
	if u.Pipelined {
		kge *= kgePipelinedFactor
	}
	return kge
}

func supportsAny(u *config.FUSpec, names ...string) bool {
	for _, n := range names {
		if u.Supports(n) {
			return true
		}
	}
	return false
}

// Estimate combines the area model with a run's statistics into energy and
// average power.
func Estimate(cfg *config.CPU, rep *stats.Report) *Report {
	r := EstimateArea(cfg)
	if rep == nil || rep.Cycles == 0 {
		return r
	}
	add := func(source string, nj float64) {
		if nj > 0 {
			r.Energy = append(r.Energy, EnergyItem{Source: source, NanoJ: nj})
			r.DynamicNanoJ += nj
		}
	}
	pj := func(events uint64, cost float64) float64 {
		return float64(events) * cost / 1000 // pJ -> nJ
	}

	add("instruction commit", pj(rep.Committed, pjPerCommit))
	add("instruction fetch", pj(rep.Fetched, pjPerFetch))
	var fx, fp, ls, br uint64
	for _, fu := range rep.FUs {
		switch fu.Class {
		case "FX":
			fx += fu.ExecCount
		case "FP":
			fp += fu.ExecCount
		case "LS":
			ls += fu.ExecCount
		default:
			br += fu.ExecCount
		}
	}
	// First-order simplification: integer multiplies/divides are charged
	// at the flat FX rate (no per-mnemonic execution counter exists); the
	// FP premium captures the expensive datapath instead.
	add("FX operations", pj(fx, pjPerFXOp))
	add("FP operations", pj(fp, pjPerFPOp))
	add("load/store address generation", pj(ls, pjPerLSOp))
	add("branch resolution", pj(br, pjPerBranchOp))
	add("cache hits", pj(rep.Cache.Hits, pjPerCacheHit))
	add("cache misses", pj(rep.Cache.Misses, pjPerCacheMiss))
	add("memory accesses", pj(rep.Memory.Reads+rep.Memory.Writes, pjPerMemAccess))
	add("pipeline flushes", pj(rep.ROBFlushes, pjPerFlush))

	// Leakage over the run's wall time: µW/kGE × kGE × s = µJ.
	r.LeakageNanoJ = leakageUWPerKGE * r.TotalKGE * rep.WallTimeSec * 1000
	r.TotalNanoJ = r.DynamicNanoJ + r.LeakageNanoJ
	if rep.WallTimeSec > 0 {
		// nJ / s = nW; to mW divide by 1e6.
		r.AvgPowerMW = r.TotalNanoJ / rep.WallTimeSec / 1e6
	}
	if rep.Committed > 0 {
		r.EnergyPerInst = r.TotalNanoJ * 1000 / float64(rep.Committed)
	}
	return r
}

// FormatText renders the cost report for the CLI/statistics window.
func (r *Report) FormatText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cost model — %s\n", r.Architecture)
	fmt.Fprintf(&sb, "\n── Chip area (educational kGE model) ─────────────────\n")
	blocks := append([]BlockArea(nil), r.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].KGE > blocks[j].KGE })
	for _, b := range blocks {
		fmt.Fprintf(&sb, "  %-34s %9.1f kGE (%4.1f%%)\n", b.Block, b.KGE, 100*b.KGE/r.TotalKGE)
	}
	fmt.Fprintf(&sb, "  %-34s %9.1f kGE\n", "TOTAL", r.TotalKGE)
	if r.TotalNanoJ > 0 {
		fmt.Fprintf(&sb, "\n── Energy for this run ────────────────────────────────\n")
		items := append([]EnergyItem(nil), r.Energy...)
		sort.Slice(items, func(i, j int) bool { return items[i].NanoJ > items[j].NanoJ })
		for _, e := range items {
			fmt.Fprintf(&sb, "  %-34s %12.2f nJ\n", e.Source, e.NanoJ)
		}
		fmt.Fprintf(&sb, "  %-34s %12.2f nJ\n", "leakage", r.LeakageNanoJ)
		fmt.Fprintf(&sb, "  %-34s %12.2f nJ\n", "TOTAL", r.TotalNanoJ)
		fmt.Fprintf(&sb, "  %-34s %12.2f mW\n", "average power", r.AvgPowerMW)
		fmt.Fprintf(&sb, "  %-34s %12.2f pJ/instr\n", "energy per instruction", r.EnergyPerInst)
	}
	return sb.String()
}
