package memory

import (
	"bytes"

	"riscvsim/internal/ckpt"
)

// ckptPageSize is the granularity of the sparse memory encoding: only
// pages that differ from the base image (the freshly-loaded program) are
// written, so a checkpoint of a 64 KiB machine that touched one array
// costs a few pages, not the whole address space.
const ckptPageSize = 1024

// EncodeState writes the memory's dynamic state: access counters plus the
// sparse set of pages that differ from base. base is the initial memory
// image (program data as loaded); restore rebuilds it by re-assembling
// the embedded source, so only the delta travels. A nil base encodes
// every non-zero page.
func (m *Main) EncodeState(w *ckpt.Writer, base *Main) {
	w.Section(ckpt.SecMemory)
	w.Int(len(m.data))
	w.U64(m.nextID)
	w.U64(m.reads)
	w.U64(m.writes)
	w.U64(m.bytesRead)
	w.U64(m.bytesWritten)

	var dirty []int
	zero := make([]byte, ckptPageSize)
	for off := 0; off < len(m.data); off += ckptPageSize {
		end := off + ckptPageSize
		if end > len(m.data) {
			end = len(m.data)
		}
		ref := zero[:end-off]
		if base != nil {
			ref = base.data[off:end]
		}
		if !bytes.Equal(m.data[off:end], ref) {
			dirty = append(dirty, off)
		}
	}
	w.Len(len(dirty))
	for _, off := range dirty {
		end := off + ckptPageSize
		if end > len(m.data) {
			end = len(m.data)
		}
		w.Int(off / ckptPageSize)
		w.Bytes(m.data[off:end])
	}
}

// DecodeState applies an encoded delta onto m, which must hold the same
// base image the checkpoint was taken against (same program, same
// configuration — the caller re-assembled it).
func (m *Main) DecodeState(r *ckpt.Reader) {
	r.Section(ckpt.SecMemory)
	if size := r.Int(); r.Err() == nil && size != len(m.data) {
		r.Corrupt("memory size %d, machine has %d", size, len(m.data))
		return
	}
	m.nextID = r.U64()
	m.reads = r.U64()
	m.writes = r.U64()
	m.bytesRead = r.U64()
	m.bytesWritten = r.U64()

	pages := r.Len((len(m.data) + ckptPageSize - 1) / ckptPageSize)
	for i := 0; i < pages && r.Err() == nil; i++ {
		idx := r.Int()
		data := r.Bytes(ckptPageSize)
		if r.Err() != nil {
			return
		}
		off := idx * ckptPageSize
		if idx < 0 || off >= len(m.data) || off+len(data) > len(m.data) {
			r.Corrupt("memory page %d outside %d bytes", idx, len(m.data))
			return
		}
		copy(m.data[off:], data)
	}
}
