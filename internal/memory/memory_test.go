package memory

import (
	"strings"
	"testing"
	"testing/quick"

	"riscvsim/internal/fault"
)

func newMem(t *testing.T) *Main {
	t.Helper()
	return New(Config{Size: 4096, LoadLatency: 8, StoreLatency: 6, CallStackSize: 512})
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m := newMem(t)
	tx := &Transaction{Addr: 512, Size: 4, IsStore: true, Data: 0xDEADBEEF}
	finish, exc := m.Access(tx, 100)
	if exc != nil {
		t.Fatalf("store: %v", exc)
	}
	if finish != 106 {
		t.Errorf("store finish = %d, want 106 (now+StoreLatency)", finish)
	}
	rd := &Transaction{Addr: 512, Size: 4}
	finish, exc = m.Access(rd, 110)
	if exc != nil {
		t.Fatalf("load: %v", exc)
	}
	if finish != 118 {
		t.Errorf("load finish = %d, want 118 (now+LoadLatency)", finish)
	}
	if rd.Data != 0xDEADBEEF {
		t.Errorf("loaded %#x, want 0xDEADBEEF", rd.Data)
	}
}

func TestTransactionMetadata(t *testing.T) {
	m := newMem(t)
	tx1 := &Transaction{Addr: 0, Size: 4, IsStore: true, Data: 1}
	tx2 := &Transaction{Addr: 8, Size: 4, IsStore: true, Data: 2}
	m.Access(tx1, 5)
	m.Access(tx2, 6)
	if tx1.ID == tx2.ID || tx1.ID == 0 {
		t.Errorf("transaction IDs must be unique and non-zero: %d, %d", tx1.ID, tx2.ID)
	}
	if tx1.IssuedAt != 5 || tx2.IssuedAt != 6 {
		t.Error("IssuedAt not recorded")
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := newMem(t)
	m.Access(&Transaction{Addr: 1024, Size: 4, IsStore: true, Data: 0x04030201}, 0)
	b, exc := m.ReadBytes(1024, 4)
	if exc != nil {
		t.Fatal(exc)
	}
	for i, want := range []byte{1, 2, 3, 4} {
		if b[i] != want {
			t.Errorf("byte %d = %d, want %d", i, b[i], want)
		}
	}
}

func TestSubWordAccess(t *testing.T) {
	m := newMem(t)
	m.Access(&Transaction{Addr: 600, Size: 1, IsStore: true, Data: 0xFF}, 0)
	m.Access(&Transaction{Addr: 601, Size: 1, IsStore: true, Data: 0x7F}, 0)
	rd := &Transaction{Addr: 600, Size: 2}
	m.Access(rd, 0)
	if rd.Data != 0x7FFF {
		t.Errorf("halfword = %#x, want 0x7FFF", rd.Data)
	}
}

func TestOutOfBoundsAccessFaults(t *testing.T) {
	m := newMem(t)
	cases := []Transaction{
		{Addr: -1, Size: 4},
		{Addr: 4096, Size: 1},
		{Addr: 4094, Size: 4},
		{Addr: 0, Size: 0},
	}
	for _, tx := range cases {
		tx := tx
		_, exc := m.Access(&tx, 0)
		if exc == nil || exc.Kind != fault.InvalidMemoryAccess {
			t.Errorf("Access(addr=%d size=%d): exc = %v, want InvalidMemoryAccess",
				tx.Addr, tx.Size, exc)
		}
	}
}

func TestAllocateAlignment(t *testing.T) {
	m := newMem(t)
	a1, err := m.Allocate("x", 5, 1, "byte")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != 512 {
		t.Errorf("first allocation at %d, want 512 (after call stack)", a1)
	}
	a2, err := m.Allocate("arr", 64, 16, "word")
	if err != nil {
		t.Fatal(err)
	}
	if a2%16 != 0 {
		t.Errorf("aligned allocation at %d, not 16-byte aligned", a2)
	}
	if a2 < a1+5 {
		t.Errorf("allocations overlap: %d < %d", a2, a1+5)
	}
}

func TestAllocateOutOfMemory(t *testing.T) {
	m := newMem(t)
	if _, err := m.Allocate("big", 1<<20, 1, "byte"); err == nil {
		t.Error("allocating beyond capacity should fail")
	}
}

func TestPointerRegistry(t *testing.T) {
	m := newMem(t)
	addr, _ := m.Allocate("table", 40, 4, "word")
	p, ok := m.Lookup("table")
	if !ok || p.Addr != addr || p.Size != 40 || p.Elem != "word" {
		t.Errorf("Lookup(table) = %+v, ok=%v", p, ok)
	}
	if _, ok := m.Lookup("nope"); ok {
		t.Error("Lookup of unknown name should fail")
	}
	if len(m.Pointers()) != 1 {
		t.Errorf("Pointers() has %d entries, want 1", len(m.Pointers()))
	}
}

func TestStackPointerInit(t *testing.T) {
	m := newMem(t)
	if got := m.StackPointerInit(); got != 512 {
		t.Errorf("StackPointerInit = %d, want 512", got)
	}
}

func TestStatsCounters(t *testing.T) {
	m := newMem(t)
	m.Access(&Transaction{Addr: 0, Size: 4, IsStore: true, Data: 1}, 0)
	m.Access(&Transaction{Addr: 0, Size: 4}, 0)
	m.Access(&Transaction{Addr: 0, Size: 2}, 0)
	st := m.Stats()
	if st.Writes != 1 || st.Reads != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesWritten != 4 || st.BytesRead != 6 {
		t.Errorf("byte counters = %+v", st)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := newMem(t)
	m.WriteWord(100, 42)
	c := m.Clone()
	m.WriteWord(100, 99)
	v, _ := c.ReadWord(100)
	if v != 42 {
		t.Errorf("clone sees %d, want 42 (must be a deep copy)", v)
	}
}

func TestCSVDumpRoundTrip(t *testing.T) {
	m := newMem(t)
	orig := []byte{1, 2, 3, 250, 255, 0, 17, 128}
	m.WriteBytes(512, orig)
	csv, err := m.DumpCSV(512, len(orig))
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMem(t)
	if err := m2.LoadCSV(512, csv); err != nil {
		t.Fatal(err)
	}
	got, _ := m2.ReadBytes(512, len(orig))
	for i := range orig {
		if got[i] != orig[i] {
			t.Fatalf("CSV round trip byte %d: %d != %d", i, got[i], orig[i])
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	m := newMem(t)
	if err := m.LoadCSV(0, "1,2,banana"); err == nil {
		t.Error("LoadCSV should reject non-numeric input")
	}
	if err := m.LoadCSV(0, "300"); err == nil {
		t.Error("LoadCSV should reject values > 255")
	}
}

func TestBinaryDumpRoundTrip(t *testing.T) {
	m := newMem(t)
	orig := []byte{9, 8, 7, 6}
	m.WriteBytes(700, orig)
	dump, err := m.DumpBinary(700, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMem(t)
	m2.LoadBinary(700, dump)
	got, _ := m2.ReadBytes(700, 4)
	if string(got) != string(orig) {
		t.Errorf("binary round trip: %v != %v", got, orig)
	}
}

func TestHexDumpFormat(t *testing.T) {
	m := newMem(t)
	m.WriteBytes(0, []byte("Hello World"))
	dump, err := m.HexDump(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump, "Hello World") {
		t.Errorf("hex dump should show printable ASCII:\n%s", dump)
	}
	if !strings.Contains(dump, "00000000") {
		t.Errorf("hex dump should show addresses:\n%s", dump)
	}
}

// Property: a store followed by a load of the same size and address always
// returns the stored value (for in-range addresses).
func TestPropertyStoreLoadConsistency(t *testing.T) {
	m := New(Config{Size: 65536, LoadLatency: 1, StoreLatency: 1, CallStackSize: 0})
	f := func(addrRaw uint16, val uint64, sizeSel uint8) bool {
		size := []int{1, 2, 4, 8}[sizeSel%4]
		addr := int(addrRaw) % (65536 - 8)
		st := &Transaction{Addr: addr, Size: size, IsStore: true, Data: val}
		if _, exc := m.Access(st, 0); exc != nil {
			return false
		}
		ld := &Transaction{Addr: addr, Size: size}
		if _, exc := m.Access(ld, 0); exc != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = (uint64(1) << (8 * size)) - 1
		}
		return ld.Data == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
