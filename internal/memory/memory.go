// Package memory implements the simulator's main memory: a 1-D byte array
// with a predefined capacity operating in a transactional mode (paper
// §III-A). Functional blocks that need data generate a Transaction object;
// registering it with the memory populates the transaction's completion
// time, which makes access latencies configurable and gives the GUI
// metadata about in-flight requests.
package memory

import (
	"encoding/binary"
	"fmt"
	"io"

	"riscvsim/internal/fault"
)

// Config holds the memory parameters from the Architecture Settings
// "Memory" tab (paper §II-C).
type Config struct {
	// Size is the memory capacity in bytes.
	Size int
	// LoadLatency is the cycle count for a read to complete.
	LoadLatency int
	// StoreLatency is the cycle count for a write to complete.
	StoreLatency int
	// CallStackSize is the byte size reserved for the call stack at the
	// beginning of memory (paper §III-C).
	CallStackSize int
}

// DefaultConfig returns the memory configuration used by the preset
// architectures.
func DefaultConfig() Config {
	return Config{
		Size:          64 * 1024,
		LoadLatency:   8,
		StoreLatency:  8,
		CallStackSize: 4 * 1024,
	}
}

// Transaction represents one memory request. The requesting block fills in
// the address, size and (for stores) data; Register populates the timing
// fields.
type Transaction struct {
	// ID is a unique identifier assigned at registration.
	ID uint64
	// Addr is the byte address of the access.
	Addr int
	// Size is the access width in bytes (1, 2, 4 or 8).
	Size int
	// IsStore distinguishes writes from reads.
	IsStore bool
	// Data carries the payload: the value to store, or the loaded value
	// after the transaction completes (little-endian in the low bytes).
	Data uint64
	// IssuedAt is the cycle the transaction was registered.
	IssuedAt uint64
	// FinishAt is the cycle the data becomes available; filled in by the
	// memory system at registration.
	FinishAt uint64
	// HitCache reports whether an L1 cache satisfied the access (set by
	// the cache layer; always false for direct memory access).
	HitCache bool
}

// Port is anything that can service memory transactions: the main memory
// itself or a cache in front of it.
type Port interface {
	// Access services tx, applying its effect and setting timing fields.
	// It returns the cycle at which the transaction completes.
	Access(tx *Transaction, now uint64) (uint64, *fault.Exception)
	// FlushAll writes back any buffered dirty state (used at simulation
	// end so memory dumps reflect program output). It returns the cycle
	// at which the flush completes.
	FlushAll(now uint64) uint64
}

// Pointer describes one named allocation for the GUI's memory window
// (paper Fig. 2: "allocated arrays, their starting addresses").
type Pointer struct {
	// Name is the label the program uses to reference the allocation.
	Name string
	// Addr is the starting byte address.
	Addr int
	// Size is the allocation size in bytes.
	Size int
	// Elem is a display tag for the element type ("word", "byte", ...).
	Elem string
}

// Main is the simulated main memory.
type Main struct {
	cfg  Config
	data []byte

	pointers  []Pointer
	allocNext int // allocation cursor; starts after the call stack

	nextID uint64

	// Statistics.
	reads        uint64
	writes       uint64
	bytesRead    uint64
	bytesWritten uint64
}

// New allocates a memory of the configured size. The call stack occupies
// [0, CallStackSize); static data is allocated after it (paper §III-C).
func New(cfg Config) *Main {
	if cfg.Size <= 0 {
		cfg.Size = DefaultConfig().Size
	}
	if cfg.CallStackSize < 0 || cfg.CallStackSize > cfg.Size {
		cfg.CallStackSize = cfg.Size / 4
	}
	return &Main{
		cfg:       cfg,
		data:      make([]byte, cfg.Size),
		allocNext: cfg.CallStackSize,
	}
}

// Size returns the memory capacity in bytes.
func (m *Main) Size() int { return len(m.data) }

// Config returns the memory configuration.
func (m *Main) Config() Config { return m.cfg }

// StackPointerInit returns the initial stack pointer value: the bottom of
// the call stack region (the stack grows downward from it).
func (m *Main) StackPointerInit() int { return m.cfg.CallStackSize }

// Pointers returns the registry of named allocations.
func (m *Main) Pointers() []Pointer { return m.pointers }

// checkRange validates an access against the allocated capacity.
func (m *Main) checkRange(addr, size int) *fault.Exception {
	if addr < 0 || size <= 0 || addr+size > len(m.data) {
		return fault.New(fault.InvalidMemoryAccess,
			"access of %d bytes at address %d outside memory of %d bytes",
			size, addr, len(m.data))
	}
	return nil
}

// Access implements Port directly against main memory: the transaction's
// effect is applied and its completion time is set from the configured
// load/store latency.
func (m *Main) Access(tx *Transaction, now uint64) (uint64, *fault.Exception) {
	if exc := m.checkRange(tx.Addr, tx.Size); exc != nil {
		return now, exc
	}
	m.nextID++
	tx.ID = m.nextID
	tx.IssuedAt = now
	if tx.IsStore {
		m.writeRaw(tx.Addr, tx.Size, tx.Data)
		m.writes++
		m.bytesWritten += uint64(tx.Size)
		tx.FinishAt = now + uint64(m.cfg.StoreLatency)
	} else {
		tx.Data = m.readRaw(tx.Addr, tx.Size)
		m.reads++
		m.bytesRead += uint64(tx.Size)
		tx.FinishAt = now + uint64(m.cfg.LoadLatency)
	}
	return tx.FinishAt, nil
}

// FlushAll implements Port; main memory holds no buffered state.
func (m *Main) FlushAll(now uint64) uint64 { return now }

// readRaw returns size little-endian bytes at addr as a uint64.
func (m *Main) readRaw(addr, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.data[addr+i]) << (8 * i)
	}
	return v
}

// writeRaw stores the low size bytes of v at addr, little-endian.
func (m *Main) writeRaw(addr, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.data[addr+i] = byte(v >> (8 * i))
	}
}

// ReadRaw returns size little-endian bytes at addr as a uint64, bypassing
// timing and access statistics — the fast-forward functional engine's
// memory interface (core/blockplan.go). Bounds are checked; callers that
// already validated the access may discard the exception.
func (m *Main) ReadRaw(addr, size int) (uint64, *fault.Exception) {
	if exc := m.checkRange(addr, size); exc != nil {
		return 0, exc
	}
	return m.readRaw(addr, size), nil
}

// WriteRaw stores the low size bytes of v at addr little-endian, bypassing
// timing and access statistics (fast-forward functional engine).
func (m *Main) WriteRaw(addr, size int, v uint64) *fault.Exception {
	if exc := m.checkRange(addr, size); exc != nil {
		return exc
	}
	m.writeRaw(addr, size, v)
	return nil
}

// WriteTo streams the full memory contents to w (architectural state
// hashing). It implements io.WriterTo.
func (m *Main) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(m.data)
	return int64(n), err
}

// ReadBytes copies n bytes starting at addr. It is a debug/GUI interface
// and bypasses timing.
func (m *Main) ReadBytes(addr, n int) ([]byte, *fault.Exception) {
	if exc := m.checkRange(addr, n); exc != nil {
		return nil, exc
	}
	out := make([]byte, n)
	copy(out, m.data[addr:addr+n])
	return out, nil
}

// WriteBytes stores b at addr, bypassing timing (program loading, memory
// editor).
func (m *Main) WriteBytes(addr int, b []byte) *fault.Exception {
	if len(b) == 0 {
		return nil
	}
	if exc := m.checkRange(addr, len(b)); exc != nil {
		return exc
	}
	copy(m.data[addr:], b)
	return nil
}

// ReadWord reads a 32-bit little-endian word, bypassing timing.
func (m *Main) ReadWord(addr int) (uint32, *fault.Exception) {
	if exc := m.checkRange(addr, 4); exc != nil {
		return 0, exc
	}
	return binary.LittleEndian.Uint32(m.data[addr:]), nil
}

// WriteWord writes a 32-bit little-endian word, bypassing timing.
func (m *Main) WriteWord(addr int, v uint32) *fault.Exception {
	if exc := m.checkRange(addr, 4); exc != nil {
		return exc
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
	return nil
}

// Allocate reserves size bytes aligned to align (a power of two or 1),
// registers the allocation under name, and returns its address. It
// implements the static allocation performed between the assembler's two
// passes (paper §III-C).
func (m *Main) Allocate(name string, size, align int, elem string) (int, error) {
	if size < 0 {
		return 0, fmt.Errorf("memory: negative allocation size %d for %q", size, name)
	}
	if align < 1 {
		align = 1
	}
	addr := (m.allocNext + align - 1) &^ (align - 1)
	if addr+size > len(m.data) {
		return 0, fmt.Errorf("memory: out of memory allocating %d bytes for %q (cursor %d, capacity %d)",
			size, name, m.allocNext, len(m.data))
	}
	m.allocNext = addr + size
	m.pointers = append(m.pointers, Pointer{Name: name, Addr: addr, Size: size, Elem: elem})
	return addr, nil
}

// Lookup returns the named allocation.
func (m *Main) Lookup(name string) (Pointer, bool) {
	for _, p := range m.pointers {
		if p.Name == name {
			return p, true
		}
	}
	return Pointer{}, false
}

// Stats reports access counters for the statistics window.
type Stats struct {
	Reads        uint64 `json:"reads"`
	Writes       uint64 `json:"writes"`
	BytesRead    uint64 `json:"bytesRead"`
	BytesWritten uint64 `json:"bytesWritten"`
}

// Stats returns the access counters.
func (m *Main) Stats() Stats {
	return Stats{
		Reads: m.reads, Writes: m.writes,
		BytesRead: m.bytesRead, BytesWritten: m.bytesWritten,
	}
}

// Clone returns a deep copy of the memory, used to snapshot simulations.
func (m *Main) Clone() *Main {
	c := &Main{
		cfg:       m.cfg,
		data:      make([]byte, len(m.data)),
		pointers:  make([]Pointer, len(m.pointers)),
		allocNext: m.allocNext,
		nextID:    m.nextID,
		reads:     m.reads, writes: m.writes,
		bytesRead: m.bytesRead, bytesWritten: m.bytesWritten,
	}
	copy(c.data, m.data)
	copy(c.pointers, m.pointers)
	return c
}
