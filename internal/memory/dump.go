package memory

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// DumpBinary exports the byte range [addr, addr+n) verbatim, matching the
// paper's binary memory dump export (§II-C).
func (m *Main) DumpBinary(addr, n int) ([]byte, error) {
	b, exc := m.ReadBytes(addr, n)
	if exc != nil {
		return nil, exc
	}
	return b, nil
}

// LoadBinary imports a binary dump at addr.
func (m *Main) LoadBinary(addr int, data []byte) error {
	if exc := m.WriteBytes(addr, data); exc != nil {
		return exc
	}
	return nil
}

// DumpCSV exports the byte range [addr, addr+n) as comma-separated decimal
// byte values, 16 per line, matching the paper's CSV dump format (§II-C).
func (m *Main) DumpCSV(addr, n int) (string, error) {
	b, exc := m.ReadBytes(addr, n)
	if exc != nil {
		return "", exc
	}
	var sb strings.Builder
	for i, v := range b {
		if i > 0 {
			if i%16 == 0 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(',')
			}
		}
		sb.WriteString(strconv.Itoa(int(v)))
	}
	sb.WriteByte('\n')
	return sb.String(), nil
}

// LoadCSV imports a CSV dump produced by DumpCSV (or any comma/newline
// separated list of byte values) at addr.
func (m *Main) LoadCSV(addr int, csv string) error {
	fields := strings.FieldsFunc(csv, func(r rune) bool {
		return r == ',' || r == '\n' || r == '\r' || r == ' ' || r == '\t'
	})
	data := make([]byte, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseUint(f, 10, 8)
		if err != nil {
			return fmt.Errorf("memory: bad CSV byte %q: %w", f, err)
		}
		data = append(data, byte(v))
	}
	return m.LoadBinary(addr, data)
}

// HexDump renders a conventional hex dump of [addr, addr+n) for the memory
// pop-up window (paper Fig. 2's "expanded view of the entire memory").
func (m *Main) HexDump(addr, n int) (string, error) {
	b, exc := m.ReadBytes(addr, n)
	if exc != nil {
		return "", exc
	}
	var sb bytes.Buffer
	for off := 0; off < len(b); off += 16 {
		fmt.Fprintf(&sb, "%08x  ", addr+off)
		end := off + 16
		if end > len(b) {
			end = len(b)
		}
		for i := off; i < end; i++ {
			fmt.Fprintf(&sb, "%02x ", b[i])
		}
		for i := end; i < off+16; i++ {
			sb.WriteString("   ")
		}
		sb.WriteString(" |")
		for i := off; i < end; i++ {
			c := b[i]
			if c < 32 || c > 126 {
				c = '.'
			}
			sb.WriteByte(c)
		}
		sb.WriteString("|\n")
	}
	return sb.String(), nil
}
