// Package isa defines the simulated instruction set architecture: RV32I with
// the M and F extensions (plus a practical subset of D), pseudo-instructions
// and assembler directives, exactly as the paper's simulator supports
// (§III-B).
//
// Following the paper, instruction semantics are *data*, not code: every
// instruction carries a postfix expression (Listing 1, "interpretableAs")
// that the expression interpreter executes. The whole set can be exported
// to and re-loaded from JSON, so the ISA is extensible without recompiling.
package isa

import (
	"fmt"

	"riscvsim/internal/expr"
)

// InstrType is the coarse instruction classification used for statistics
// and for routing instructions to issue windows. Values mirror the paper's
// kArithmetic/kLoad/kStore/kJumpbranch JSON tags.
type InstrType uint8

// Instruction classifications.
const (
	TypeArithmetic InstrType = iota // integer and FP computation
	TypeLoad                        // memory read
	TypeStore                       // memory write
	TypeBranch                      // jumps and conditional branches

	// NumInstrTypes is the number of classifications; counters indexed by
	// InstrType use it as their array size. iota-derived so a new type
	// added above can never drift out of sync with it.
	NumInstrTypes = iota
)

var instrTypeNames = [...]string{"kArithmetic", "kLoad", "kStore", "kJumpbranch"}

// String returns the paper-style JSON tag for the type.
func (t InstrType) String() string {
	if int(t) < len(instrTypeNames) {
		return instrTypeNames[t]
	}
	return fmt.Sprintf("kInstrType(%d)", uint8(t))
}

// ParseInstrType is the inverse of InstrType.String.
func ParseInstrType(s string) (InstrType, error) {
	for i, n := range instrTypeNames {
		if n == s {
			return InstrType(i), nil
		}
	}
	return TypeArithmetic, fmt.Errorf("isa: unknown instruction type %q", s)
}

// FUClass identifies which functional-unit family executes an instruction.
// The paper's Architecture Settings window groups units into FX, FP, LS,
// branch and memory categories (§II-C).
type FUClass uint8

// Functional unit classes.
const (
	FX     FUClass = iota // integer ALU
	FP                    // floating-point ALU
	LS                    // load/store address generation
	Branch                // branch resolution
)

var fuClassNames = [...]string{"FX", "FP", "LS", "Branch"}

// String returns the display name of the class.
func (c FUClass) String() string {
	if int(c) < len(fuClassNames) {
		return fuClassNames[c]
	}
	return fmt.Sprintf("FUClass(%d)", uint8(c))
}

// ParseFUClass is the inverse of FUClass.String.
func ParseFUClass(s string) (FUClass, error) {
	for i, n := range fuClassNames {
		if n == s {
			return FUClass(i), nil
		}
	}
	return FX, fmt.Errorf("isa: unknown FU class %q", s)
}

// ArgKind says how an assembly operand is written and what it refers to.
type ArgKind uint8

// Operand kinds.
const (
	ArgRegInt   ArgKind = iota // integer register (x0..x31 or ABI alias)
	ArgRegFloat                // floating-point register (f0..f31 or alias)
	ArgImm                     // immediate constant (possibly a label value)
	ArgLabel                   // code label, resolved to a PC-relative offset
)

var argKindNames = [...]string{"regInt", "regFloat", "imm", "label"}

// String returns the JSON tag for the kind.
func (k ArgKind) String() string {
	if int(k) < len(argKindNames) {
		return argKindNames[k]
	}
	return fmt.Sprintf("argKind(%d)", uint8(k))
}

// ParseArgKind is the inverse of ArgKind.String.
func ParseArgKind(s string) (ArgKind, error) {
	for i, n := range argKindNames {
		if n == s {
			return ArgKind(i), nil
		}
	}
	return ArgImm, fmt.Errorf("isa: unknown argument kind %q", s)
}

// ArgDesc describes one instruction argument, mirroring the paper's JSON
// argument objects ({"name":"rd","type":"kInt","writeBack":true}).
type ArgDesc struct {
	// Name is the operand name referenced by the expression (rd, rs1, ...).
	Name string
	// Kind says whether the operand is a register, immediate or label.
	Kind ArgKind
	// Type is the operand's data type (kInt, kFloat, ...).
	Type expr.Type
	// WriteBack marks destination operands.
	WriteBack bool
}

// Format enumerates the assembly operand layouts the parser understands.
type Format uint8

// Assembly formats.
const (
	FmtNone   Format = iota // no operands (nop, fence, ecall)
	FmtR                    // rd, rs1, rs2
	FmtR2                   // rd, rs1 (unary: fsqrt, fcvt, fmv)
	FmtR4                   // rd, rs1, rs2, rs3 (fused multiply-add)
	FmtI                    // rd, rs1, imm
	FmtU                    // rd, imm (lui, auipc)
	FmtLoad                 // rd, imm(rs1)
	FmtStore                // rs2, imm(rs1)
	FmtBranch               // rs1, rs2, label
	FmtJ                    // rd, label (jal)
)

var formatNames = [...]string{"none", "r", "r2", "r4", "i", "u", "load", "store", "branch", "j"}

// String returns the JSON tag for the format.
func (f Format) String() string {
	if int(f) < len(formatNames) {
		return formatNames[f]
	}
	return fmt.Sprintf("format(%d)", uint8(f))
}

// ParseFormat is the inverse of Format.String.
func ParseFormat(s string) (Format, error) {
	for i, n := range formatNames {
		if n == s {
			return Format(i), nil
		}
	}
	return FmtNone, fmt.Errorf("isa: unknown format %q", s)
}

// Desc is the complete description of one machine instruction. A Desc is
// immutable once registered; dynamic instruction instances reference it.
type Desc struct {
	// Name is the assembly mnemonic ("add", "fmadd.s").
	Name string
	// Type is the coarse classification.
	Type InstrType
	// Unit is the functional-unit class that executes the instruction.
	Unit FUClass
	// Format is the assembly operand layout.
	Format Format
	// Args describes the operands in expression order.
	Args []ArgDesc
	// ExprSrc is the postfix semantics ("interpretableAs" in the paper).
	ExprSrc string
	// Prog is the compiled form of ExprSrc.
	Prog *expr.Program
	// MemWidth is the access size in bytes for loads/stores (0 otherwise).
	MemWidth int
	// MemSigned marks sign-extending loads (lb, lh).
	MemSigned bool
	// Conditional marks conditional branches (beq, ...); unconditional
	// jumps (jal, jalr) have it false.
	Conditional bool
	// PCRelative marks branches whose target is pc+imm; when false the
	// branch target is the value the expression leaves on the stack
	// (jalr).
	PCRelative bool
	// Flops is the number of floating-point operations the instruction
	// contributes to the FLOP counter (2 for fused multiply-add).
	Flops int
	// Halts marks instructions that terminate the simulation (ecall,
	// ebreak — the simulator runs no OS, so an environment call ends the
	// program; documented deviation).
	Halts bool
}

// IsLoad reports whether the instruction reads data memory.
func (d *Desc) IsLoad() bool { return d.Type == TypeLoad }

// IsStore reports whether the instruction writes data memory.
func (d *Desc) IsStore() bool { return d.Type == TypeStore }

// IsBranch reports whether the instruction can redirect control flow.
func (d *Desc) IsBranch() bool { return d.Type == TypeBranch }

// Arg returns the argument descriptor with the given name, or nil.
func (d *Desc) Arg(name string) *ArgDesc {
	for i := range d.Args {
		if d.Args[i].Name == name {
			return &d.Args[i]
		}
	}
	return nil
}

// DestArg returns the (first) write-back argument, or nil for instructions
// with no register destination.
func (d *Desc) DestArg() *ArgDesc {
	for i := range d.Args {
		if d.Args[i].WriteBack {
			return &d.Args[i]
		}
	}
	return nil
}

// Set is a complete instruction set: descriptors indexed by mnemonic plus
// pseudo-instruction expansion rules.
type Set struct {
	byName  map[string]*Desc
	ordered []*Desc
	pseudos map[string]*Pseudo
}

// NewSet returns an empty instruction set.
func NewSet() *Set {
	return &Set{
		byName:  make(map[string]*Desc),
		pseudos: make(map[string]*Pseudo),
	}
}

// Register adds a descriptor to the set, compiling its expression. It
// panics on duplicate names or malformed expressions; the built-in tables
// are validated by tests.
func (s *Set) Register(d *Desc) *Desc {
	if _, dup := s.byName[d.Name]; dup {
		panic(fmt.Sprintf("isa: duplicate instruction %q", d.Name))
	}
	if d.Prog == nil {
		d.Prog = expr.MustCompile(d.ExprSrc)
	}
	s.byName[d.Name] = d
	s.ordered = append(s.ordered, d)
	return d
}

// Lookup returns the descriptor for a mnemonic.
func (s *Set) Lookup(name string) (*Desc, bool) {
	d, ok := s.byName[name]
	return d, ok
}

// Pseudo returns the pseudo-instruction expansion rule for a mnemonic.
func (s *Set) Pseudo(name string) (*Pseudo, bool) {
	p, ok := s.pseudos[name]
	return p, ok
}

// All returns the descriptors in registration order. The slice must not be
// modified.
func (s *Set) All() []*Desc { return s.ordered }

// Len returns the number of real (non-pseudo) instructions.
func (s *Set) Len() int { return len(s.ordered) }

// PseudoCount returns the number of registered pseudo-instructions.
func (s *Set) PseudoCount() int { return len(s.pseudos) }

// Pseudo is a pseudo-instruction expansion rule: a template whose operand
// placeholders $0, $1, ... are substituted with the written operands.
type Pseudo struct {
	// Name is the pseudo mnemonic.
	Name string
	// Operands is how many operands the written form takes.
	Operands int
	// Expansion is a list of replacement instructions; each element is a
	// mnemonic followed by operand templates ($N substitutes operand N).
	Expansion [][]string
}

// RegisterPseudo adds an expansion rule, panicking on duplicates.
func (s *Set) RegisterPseudo(p *Pseudo) {
	if _, dup := s.pseudos[p.Name]; dup {
		panic(fmt.Sprintf("isa: duplicate pseudo-instruction %q", p.Name))
	}
	if _, clash := s.byName[p.Name]; clash {
		panic(fmt.Sprintf("isa: pseudo-instruction %q clashes with a real instruction", p.Name))
	}
	s.pseudos[p.Name] = p
}

// RV32IMF builds the default instruction set: RV32I + M + F and a practical
// subset of D, plus the standard pseudo-instructions. The set is freshly
// allocated so callers may extend it without affecting others.
func RV32IMF() *Set {
	s := NewSet()
	registerRV32I(s)
	registerRV32M(s)
	registerRV32F(s)
	registerRV32D(s)
	registerPseudos(s)
	return s
}
