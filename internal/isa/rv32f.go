package isa

import "riscvsim/internal/expr"

func rdFloat() ArgDesc {
	return ArgDesc{Name: "rd", Kind: ArgRegFloat, Type: expr.Float, WriteBack: true}
}
func rs1Float() ArgDesc { return ArgDesc{Name: "rs1", Kind: ArgRegFloat, Type: expr.Float} }
func rs2Float() ArgDesc { return ArgDesc{Name: "rs2", Kind: ArgRegFloat, Type: expr.Float} }
func rs3Float() ArgDesc { return ArgDesc{Name: "rs3", Kind: ArgRegFloat, Type: expr.Float} }

// fType builds a float register-register descriptor executed by the FP unit.
func fType(name, exprSrc string, flops int) *Desc {
	return &Desc{
		Name: name, Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args:    []ArgDesc{rdFloat(), rs1Float(), rs2Float()},
		ExprSrc: exprSrc,
		Flops:   flops,
	}
}

// f2Type builds a unary float descriptor (rd, rs1).
func f2Type(name, exprSrc string, flops int, args []ArgDesc) *Desc {
	return &Desc{
		Name: name, Type: TypeArithmetic, Unit: FP, Format: FmtR2,
		Args:    args,
		ExprSrc: exprSrc,
		Flops:   flops,
	}
}

// f4Type builds a fused multiply-add descriptor (rd, rs1, rs2, rs3).
func f4Type(name, exprSrc string) *Desc {
	return &Desc{
		Name: name, Type: TypeArithmetic, Unit: FP, Format: FmtR4,
		Args:    []ArgDesc{rdFloat(), rs1Float(), rs2Float(), rs3Float()},
		ExprSrc: exprSrc,
		Flops:   2,
	}
}

func registerRV32F(s *Set) {
	// FP loads/stores move raw bits between memory and the FP file.
	s.Register(&Desc{
		Name: "flw", Type: TypeLoad, Unit: LS, Format: FmtLoad,
		Args:     []ArgDesc{rdFloat(), immArg(), rs1Int()},
		ExprSrc:  `\rs1 \imm +`,
		MemWidth: 4,
	})
	s.Register(&Desc{
		Name: "fsw", Type: TypeStore, Unit: LS, Format: FmtStore,
		Args:     []ArgDesc{{Name: "rs2", Kind: ArgRegFloat, Type: expr.Float}, immArg(), rs1Int()},
		ExprSrc:  `\rs1 \imm +`,
		MemWidth: 4,
	})

	// Fused multiply-add family. RISC-V semantics:
	//   fmadd  = rs1*rs2 + rs3      fmsub  = rs1*rs2 - rs3
	//   fnmsub = -(rs1*rs2) + rs3   fnmadd = -(rs1*rs2) - rs3
	s.Register(f4Type("fmadd.s", `\rs1 \rs2 * \rs3 + \rd =`))
	s.Register(f4Type("fmsub.s", `\rs1 \rs2 * \rs3 - \rd =`))
	s.Register(f4Type("fnmsub.s", `\rs1 \rs2 * neg \rs3 + \rd =`))
	s.Register(f4Type("fnmadd.s", `\rs1 \rs2 * neg \rs3 - \rd =`))

	s.Register(fType("fadd.s", `\rs1 \rs2 + \rd =`, 1))
	s.Register(fType("fsub.s", `\rs1 \rs2 - \rd =`, 1))
	s.Register(fType("fmul.s", `\rs1 \rs2 * \rd =`, 1))
	s.Register(fType("fdiv.s", `\rs1 \rs2 / \rd =`, 1))
	s.Register(f2Type("fsqrt.s", `\rs1 sqrt \rd =`, 1,
		[]ArgDesc{rdFloat(), rs1Float()}))

	s.Register(fType("fsgnj.s", `\rs1 \rs2 sgnj \rd =`, 0))
	s.Register(fType("fsgnjn.s", `\rs1 \rs2 sgnjn \rd =`, 0))
	s.Register(fType("fsgnjx.s", `\rs1 \rs2 sgnjx \rd =`, 0))
	s.Register(fType("fmin.s", `\rs1 \rs2 min \rd =`, 1))
	s.Register(fType("fmax.s", `\rs1 \rs2 max \rd =`, 1))

	// Conversions and moves between files.
	s.Register(f2Type("fcvt.w.s", `\rs1 int \rd =`, 1,
		[]ArgDesc{rdInt(), rs1Float()}))
	s.Register(f2Type("fcvt.wu.s", `\rs1 uint \rd =`, 1,
		[]ArgDesc{{Name: "rd", Kind: ArgRegInt, Type: expr.UInt, WriteBack: true}, rs1Float()}))
	s.Register(f2Type("fcvt.s.w", `\rs1 float \rd =`, 1,
		[]ArgDesc{rdFloat(), rs1Int()}))
	s.Register(f2Type("fcvt.s.wu", `\rs1 uint float \rd =`, 1,
		[]ArgDesc{rdFloat(), rs1Int()}))
	s.Register(f2Type("fmv.x.w", `\rs1 bitsToInt \rd =`, 0,
		[]ArgDesc{rdInt(), rs1Float()}))
	s.Register(f2Type("fmv.w.x", `\rs1 bitsToFloat \rd =`, 0,
		[]ArgDesc{rdFloat(), rs1Int()}))

	// FP comparisons write an integer register.
	cmpArgs := func() []ArgDesc { return []ArgDesc{rdInt(), rs1Float(), rs2Float()} }
	s.Register(&Desc{
		Name: "feq.s", Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args: cmpArgs(), ExprSrc: `\rs1 \rs2 == \rd =`, Flops: 1,
	})
	s.Register(&Desc{
		Name: "flt.s", Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args: cmpArgs(), ExprSrc: `\rs1 \rs2 < \rd =`, Flops: 1,
	})
	s.Register(&Desc{
		Name: "fle.s", Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args: cmpArgs(), ExprSrc: `\rs1 \rs2 <= \rd =`, Flops: 1,
	})
	s.Register(f2Type("fclass.s", `\rs1 fclass \rd =`, 0,
		[]ArgDesc{rdInt(), rs1Float()}))
}
