package isa

import (
	"testing"

	"riscvsim/internal/expr"
)

func TestRV32IMFBuilds(t *testing.T) {
	s := RV32IMF()
	if s.Len() < 80 {
		t.Errorf("instruction set has %d instructions, expected at least 80", s.Len())
	}
	if s.PseudoCount() < 25 {
		t.Errorf("only %d pseudo-instructions registered", s.PseudoCount())
	}
}

func TestEveryInstructionHasCompiledExpression(t *testing.T) {
	for _, d := range RV32IMF().All() {
		if d.Prog == nil {
			t.Errorf("%s: expression not compiled", d.Name)
		}
	}
}

func TestBaseInstructionsPresent(t *testing.T) {
	s := RV32IMF()
	base := []string{
		"lui", "auipc", "jal", "jalr",
		"beq", "bne", "blt", "bge", "bltu", "bgeu",
		"lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw",
		"addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
		"add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
		"fence", "ecall", "ebreak",
		"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu",
		"flw", "fsw", "fadd.s", "fsub.s", "fmul.s", "fdiv.s", "fsqrt.s",
		"fmadd.s", "fmsub.s", "fnmadd.s", "fnmsub.s",
		"fsgnj.s", "fsgnjn.s", "fsgnjx.s", "fmin.s", "fmax.s",
		"fcvt.w.s", "fcvt.wu.s", "fcvt.s.w", "fcvt.s.wu",
		"fmv.x.w", "fmv.w.x", "feq.s", "flt.s", "fle.s", "fclass.s",
		"fld", "fsd", "fadd.d", "fsub.d", "fmul.d", "fdiv.d",
	}
	for _, name := range base {
		if _, ok := s.Lookup(name); !ok {
			t.Errorf("missing instruction %q", name)
		}
	}
}

func TestInstructionClassification(t *testing.T) {
	s := RV32IMF()
	cases := []struct {
		name string
		typ  InstrType
		unit FUClass
	}{
		{"add", TypeArithmetic, FX},
		{"lw", TypeLoad, LS},
		{"sw", TypeStore, LS},
		{"beq", TypeBranch, Branch},
		{"jal", TypeBranch, Branch},
		{"fadd.s", TypeArithmetic, FP},
		{"flw", TypeLoad, LS},
		{"mul", TypeArithmetic, FX},
	}
	for _, c := range cases {
		d, ok := s.Lookup(c.name)
		if !ok {
			t.Fatalf("missing %q", c.name)
		}
		if d.Type != c.typ {
			t.Errorf("%s: type %v, want %v", c.name, d.Type, c.typ)
		}
		if d.Unit != c.unit {
			t.Errorf("%s: unit %v, want %v", c.name, d.Unit, c.unit)
		}
	}
}

func TestLoadStoreWidths(t *testing.T) {
	s := RV32IMF()
	widths := map[string]struct {
		w      int
		signed bool
	}{
		"lb": {1, true}, "lbu": {1, false},
		"lh": {2, true}, "lhu": {2, false},
		"lw": {4, true},
		"sb": {1, false}, "sh": {2, false}, "sw": {4, false},
		"flw": {4, false}, "fsw": {4, false},
		"fld": {8, false}, "fsd": {8, false},
	}
	for name, want := range widths {
		d, _ := s.Lookup(name)
		if d == nil {
			t.Fatalf("missing %q", name)
		}
		if d.MemWidth != want.w || d.MemSigned != want.signed {
			t.Errorf("%s: width=%d signed=%v, want width=%d signed=%v",
				name, d.MemWidth, d.MemSigned, want.w, want.signed)
		}
	}
}

func TestBranchFlags(t *testing.T) {
	s := RV32IMF()
	beq, _ := s.Lookup("beq")
	if !beq.Conditional || !beq.PCRelative {
		t.Error("beq should be conditional and PC-relative")
	}
	jal, _ := s.Lookup("jal")
	if jal.Conditional || !jal.PCRelative {
		t.Error("jal should be unconditional and PC-relative")
	}
	jalr, _ := s.Lookup("jalr")
	if jalr.Conditional || jalr.PCRelative {
		t.Error("jalr should be unconditional with an expression-computed target")
	}
}

func TestHaltingInstructions(t *testing.T) {
	s := RV32IMF()
	for _, name := range []string{"ecall", "ebreak"} {
		d, _ := s.Lookup(name)
		if !d.Halts {
			t.Errorf("%s should halt the simulation", name)
		}
	}
	add, _ := s.Lookup("add")
	if add.Halts {
		t.Error("add must not halt")
	}
}

func TestFlopAccounting(t *testing.T) {
	s := RV32IMF()
	cases := map[string]int{
		"add": 0, "fadd.s": 1, "fmadd.s": 2, "fsgnj.s": 0, "fdiv.d": 1,
	}
	for name, want := range cases {
		d, _ := s.Lookup(name)
		if d.Flops != want {
			t.Errorf("%s: flops=%d, want %d", name, d.Flops, want)
		}
	}
}

func TestDestArg(t *testing.T) {
	s := RV32IMF()
	add, _ := s.Lookup("add")
	if dst := add.DestArg(); dst == nil || dst.Name != "rd" {
		t.Error("add's destination should be rd")
	}
	sw, _ := s.Lookup("sw")
	if dst := sw.DestArg(); dst != nil {
		t.Errorf("sw should have no register destination, got %q", dst.Name)
	}
	beq, _ := s.Lookup("beq")
	if dst := beq.DestArg(); dst != nil {
		t.Errorf("beq should have no destination, got %q", dst.Name)
	}
}

func TestExpressionWritesMatchWriteBackArgs(t *testing.T) {
	// Invariant: every operand assigned by the expression is declared
	// WriteBack, and vice versa. Loads are exempt: their expression only
	// computes the address and the memory unit writes rd.
	for _, d := range RV32IMF().All() {
		written := map[string]bool{}
		for _, w := range d.Prog.Writes() {
			written[w] = true
		}
		for _, a := range d.Args {
			if a.WriteBack && !written[a.Name] && d.ExprSrc != "" && !d.IsLoad() {
				t.Errorf("%s: arg %s is WriteBack but never assigned by %q",
					d.Name, a.Name, d.ExprSrc)
			}
			if !a.WriteBack && written[a.Name] {
				t.Errorf("%s: arg %s is assigned by expression but not WriteBack",
					d.Name, a.Name)
			}
		}
	}
}

func TestRegisterFileAliases(t *testing.T) {
	rf := NewRegisterFile()
	cases := map[string]struct {
		idx   int
		class RegClass
	}{
		"x0": {0, RegInt}, "zero": {0, RegInt},
		"ra": {1, RegInt}, "sp": {2, RegInt},
		"s0": {8, RegInt}, "fp": {8, RegInt},
		"a0": {10, RegInt}, "t6": {31, RegInt},
		"f0": {0, RegFloat}, "ft0": {0, RegFloat},
		"fa0": {10, RegFloat}, "ft11": {31, RegFloat},
		"A0": {10, RegInt}, // case-insensitive
	}
	for name, want := range cases {
		d, ok := rf.Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) failed", name)
			continue
		}
		if d.Index != want.idx || d.Class != want.class {
			t.Errorf("Lookup(%q) = %s[%d], want class=%v idx=%d",
				name, d.Class, d.Index, want.class, want.idx)
		}
	}
	if _, ok := rf.Lookup("x32"); ok {
		t.Error("x32 should not resolve")
	}
	if !rf.Int(0).ReadOnly {
		t.Error("x0 must be read-only")
	}
	if rf.Int(1).ReadOnly {
		t.Error("x1 must be writable")
	}
}

func TestPseudoExpansionsResolve(t *testing.T) {
	// Invariant: every pseudo expansion refers to a real instruction.
	s := RV32IMF()
	for name := range s.pseudos {
		p, _ := s.Pseudo(name)
		for _, exp := range p.Expansion {
			if len(exp) == 0 {
				t.Errorf("pseudo %s: empty expansion", name)
				continue
			}
			if _, ok := s.Lookup(exp[0]); !ok {
				t.Errorf("pseudo %s expands to unknown instruction %q", name, exp[0])
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := RV32IMF()
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	s2, err := LoadSet(data)
	if err != nil {
		t.Fatalf("LoadSet: %v", err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("round trip lost instructions: %d != %d", s2.Len(), s.Len())
	}
	if s2.PseudoCount() != s.PseudoCount() {
		t.Fatalf("round trip lost pseudos: %d != %d", s2.PseudoCount(), s.PseudoCount())
	}
	for _, d := range s.All() {
		d2, ok := s2.Lookup(d.Name)
		if !ok {
			t.Errorf("round trip lost %q", d.Name)
			continue
		}
		if d2.ExprSrc != d.ExprSrc || d2.Type != d.Type || d2.Unit != d.Unit ||
			d2.Format != d.Format || d2.MemWidth != d.MemWidth ||
			d2.Conditional != d.Conditional || d2.PCRelative != d.PCRelative ||
			d2.Flops != d.Flops || d2.Halts != d.Halts || len(d2.Args) != len(d.Args) {
			t.Errorf("round trip changed %q", d.Name)
		}
	}
}

func TestLoadSetExtension(t *testing.T) {
	// The paper's headline ISA feature: add a custom instruction purely
	// via JSON (Listing 1 shows `add`; we add a fused `addmul`).
	const custom = `{
	  "instructions": [
	    {
	      "name": "addmul",
	      "instructionType": "kArithmetic",
	      "unit": "FX",
	      "format": "r4",
	      "arguments": [
	        {"name": "rd", "kind": "regInt", "type": "kInt", "writeBack": true},
	        {"name": "rs1", "kind": "regInt", "type": "kInt"},
	        {"name": "rs2", "kind": "regInt", "type": "kInt"},
	        {"name": "rs3", "kind": "regInt", "type": "kInt"}
	      ],
	      "interpretableAs": "\\rs1 \\rs2 + \\rs3 * \\rd ="
	    }
	  ]
	}`
	s, err := LoadSet([]byte(custom))
	if err != nil {
		t.Fatalf("LoadSet: %v", err)
	}
	d, ok := s.Lookup("addmul")
	if !ok {
		t.Fatal("addmul not registered")
	}
	env := expr.MapEnv{
		"rs1": expr.NewInt(2), "rs2": expr.NewInt(3),
		"rs3": expr.NewInt(10), "rd": expr.NewInt(0),
	}
	if _, err := expr.NewEvaluator().Eval(d.Prog, env); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if got := env["rd"].Int(); got != 50 {
		t.Errorf("addmul(2,3,10) = %d, want 50", got)
	}
}

func TestLoadSetRejectsBadInput(t *testing.T) {
	bad := []string{
		`not json`,
		`{"instructions":[{"name":"x","instructionType":"kBogus","unit":"FX","format":"r","interpretableAs":""}]}`,
		`{"instructions":[{"name":"x","instructionType":"kArithmetic","unit":"XYZ","format":"r","interpretableAs":""}]}`,
		`{"instructions":[{"name":"x","instructionType":"kArithmetic","unit":"FX","format":"r","interpretableAs":"\\a frob"}]}`,
		`{"instructions":[],"pseudoInstructions":[{"name":"p","operands":1,"expansion":[]}]}`,
	}
	for i, src := range bad {
		if _, err := LoadSet([]byte(src)); err == nil {
			t.Errorf("case %d: LoadSet should fail", i)
		}
	}
}
