package isa

// registerPseudos adds the standard RISC-V pseudo-instruction expansions the
// paper's assembler supports ("pseudo-instructions and directives",
// §III-B). $N placeholders are replaced with the written operands.
//
// Relaxation note: because the simulator addresses code and data by segment
// indices rather than encoded bit fields (paper §III-B), `li` and `la`
// expand to a single addi whose immediate need not fit 12 bits, and `call`
// needs no auipc.
func registerPseudos(s *Set) {
	ps := []*Pseudo{
		{Name: "nop", Operands: 0, Expansion: [][]string{{"addi", "x0", "x0", "0"}}},
		{Name: "li", Operands: 2, Expansion: [][]string{{"addi", "$0", "x0", "$1"}}},
		{Name: "la", Operands: 2, Expansion: [][]string{{"addi", "$0", "x0", "$1"}}},
		{Name: "lla", Operands: 2, Expansion: [][]string{{"addi", "$0", "x0", "$1"}}},
		{Name: "mv", Operands: 2, Expansion: [][]string{{"addi", "$0", "$1", "0"}}},
		{Name: "not", Operands: 2, Expansion: [][]string{{"xori", "$0", "$1", "-1"}}},
		{Name: "neg", Operands: 2, Expansion: [][]string{{"sub", "$0", "x0", "$1"}}},
		{Name: "seqz", Operands: 2, Expansion: [][]string{{"sltiu", "$0", "$1", "1"}}},
		{Name: "snez", Operands: 2, Expansion: [][]string{{"sltu", "$0", "x0", "$1"}}},
		{Name: "sltz", Operands: 2, Expansion: [][]string{{"slt", "$0", "$1", "x0"}}},
		{Name: "sgtz", Operands: 2, Expansion: [][]string{{"slt", "$0", "x0", "$1"}}},

		{Name: "beqz", Operands: 2, Expansion: [][]string{{"beq", "$0", "x0", "$1"}}},
		{Name: "bnez", Operands: 2, Expansion: [][]string{{"bne", "$0", "x0", "$1"}}},
		{Name: "blez", Operands: 2, Expansion: [][]string{{"bge", "x0", "$0", "$1"}}},
		{Name: "bgez", Operands: 2, Expansion: [][]string{{"bge", "$0", "x0", "$1"}}},
		{Name: "bltz", Operands: 2, Expansion: [][]string{{"blt", "$0", "x0", "$1"}}},
		{Name: "bgtz", Operands: 2, Expansion: [][]string{{"blt", "x0", "$0", "$1"}}},
		{Name: "bgt", Operands: 3, Expansion: [][]string{{"blt", "$1", "$0", "$2"}}},
		{Name: "ble", Operands: 3, Expansion: [][]string{{"bge", "$1", "$0", "$2"}}},
		{Name: "bgtu", Operands: 3, Expansion: [][]string{{"bltu", "$1", "$0", "$2"}}},
		{Name: "bleu", Operands: 3, Expansion: [][]string{{"bgeu", "$1", "$0", "$2"}}},

		{Name: "j", Operands: 1, Expansion: [][]string{{"jal", "x0", "$0"}}},
		{Name: "jr", Operands: 1, Expansion: [][]string{{"jalr", "x0", "$0", "0"}}},
		{Name: "ret", Operands: 0, Expansion: [][]string{{"jalr", "x0", "ra", "0"}}},
		{Name: "call", Operands: 1, Expansion: [][]string{{"jal", "ra", "$0"}}},
		{Name: "tail", Operands: 1, Expansion: [][]string{{"jal", "x0", "$0"}}},

		{Name: "fmv.s", Operands: 2, Expansion: [][]string{{"fsgnj.s", "$0", "$1", "$1"}}},
		{Name: "fabs.s", Operands: 2, Expansion: [][]string{{"fsgnjx.s", "$0", "$1", "$1"}}},
		{Name: "fneg.s", Operands: 2, Expansion: [][]string{{"fsgnjn.s", "$0", "$1", "$1"}}},
		{Name: "fmv.d", Operands: 2, Expansion: [][]string{{"fsgnj.d", "$0", "$1", "$1"}}},
		{Name: "fabs.d", Operands: 2, Expansion: [][]string{{"fsgnjx.d", "$0", "$1", "$1"}}},
		{Name: "fneg.d", Operands: 2, Expansion: [][]string{{"fsgnjn.d", "$0", "$1", "$1"}}},
	}
	for _, p := range ps {
		s.RegisterPseudo(p)
	}
}
