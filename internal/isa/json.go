package isa

import (
	"encoding/json"
	"fmt"

	"riscvsim/internal/expr"
)

// jsonArg mirrors the paper's Listing 1 argument objects.
type jsonArg struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Type      string `json:"type"`
	WriteBack bool   `json:"writeBack,omitempty"`
}

// jsonDesc mirrors the paper's Listing 1 instruction objects, extended with
// the routing metadata this simulator needs (unit, format, memory width...).
type jsonDesc struct {
	Name            string    `json:"name"`
	InstructionType string    `json:"instructionType"`
	Unit            string    `json:"unit"`
	Format          string    `json:"format"`
	Arguments       []jsonArg `json:"arguments"`
	InterpretableAs string    `json:"interpretableAs"`
	MemoryWidth     int       `json:"memoryWidth,omitempty"`
	MemorySigned    bool      `json:"memorySigned,omitempty"`
	Conditional     bool      `json:"conditional,omitempty"`
	PCRelative      bool      `json:"pcRelative,omitempty"`
	Flops           int       `json:"flops,omitempty"`
	Halts           bool      `json:"halts,omitempty"`
}

type jsonPseudo struct {
	Name      string     `json:"name"`
	Operands  int        `json:"operands"`
	Expansion [][]string `json:"expansion"`
}

type jsonSet struct {
	Instructions []jsonDesc   `json:"instructions"`
	Pseudos      []jsonPseudo `json:"pseudoInstructions"`
}

// MarshalJSON serializes the instruction set in the paper's JSON
// configuration format (Listing 1).
func (s *Set) MarshalJSON() ([]byte, error) {
	out := jsonSet{
		Instructions: make([]jsonDesc, 0, len(s.ordered)),
		Pseudos:      make([]jsonPseudo, 0, len(s.pseudos)),
	}
	for _, d := range s.ordered {
		jd := jsonDesc{
			Name:            d.Name,
			InstructionType: d.Type.String(),
			Unit:            d.Unit.String(),
			Format:          d.Format.String(),
			InterpretableAs: d.ExprSrc,
			MemoryWidth:     d.MemWidth,
			MemorySigned:    d.MemSigned,
			Conditional:     d.Conditional,
			PCRelative:      d.PCRelative,
			Flops:           d.Flops,
			Halts:           d.Halts,
		}
		for _, a := range d.Args {
			jd.Arguments = append(jd.Arguments, jsonArg{
				Name:      a.Name,
				Kind:      a.Kind.String(),
				Type:      a.Type.String(),
				WriteBack: a.WriteBack,
			})
		}
		out.Instructions = append(out.Instructions, jd)
	}
	// Deterministic order: pseudos sorted by registration is not tracked,
	// so sort by name for stable output.
	names := make([]string, 0, len(s.pseudos))
	for n := range s.pseudos {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		p := s.pseudos[n]
		out.Pseudos = append(out.Pseudos, jsonPseudo{
			Name: p.Name, Operands: p.Operands, Expansion: p.Expansion,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// sortStrings is an insertion sort so the package avoids importing sort for
// one call site... actually, simplicity wins: delegate.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// LoadSet parses an instruction set from the paper's JSON format. The
// result is fully independent of the built-in tables, which lets users
// extend the ISA without recompiling ("the instruction set is defined in a
// configuration JSON file and can be easily extended", §III-B).
func LoadSet(data []byte) (*Set, error) {
	var in jsonSet
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("isa: bad instruction-set JSON: %w", err)
	}
	s := NewSet()
	for _, jd := range in.Instructions {
		d, err := descFromJSON(jd)
		if err != nil {
			return nil, err
		}
		if _, dup := s.byName[d.Name]; dup {
			return nil, fmt.Errorf("isa: duplicate instruction %q", d.Name)
		}
		s.Register(d)
	}
	for _, jp := range in.Pseudos {
		if jp.Name == "" || len(jp.Expansion) == 0 {
			return nil, fmt.Errorf("isa: pseudo-instruction %q has no expansion", jp.Name)
		}
		s.RegisterPseudo(&Pseudo{Name: jp.Name, Operands: jp.Operands, Expansion: jp.Expansion})
	}
	return s, nil
}

func descFromJSON(jd jsonDesc) (*Desc, error) {
	it, err := ParseInstrType(jd.InstructionType)
	if err != nil {
		return nil, fmt.Errorf("isa: instruction %q: %w", jd.Name, err)
	}
	unit, err := ParseFUClass(jd.Unit)
	if err != nil {
		return nil, fmt.Errorf("isa: instruction %q: %w", jd.Name, err)
	}
	format, err := ParseFormat(jd.Format)
	if err != nil {
		return nil, fmt.Errorf("isa: instruction %q: %w", jd.Name, err)
	}
	prog, err := expr.Compile(jd.InterpretableAs)
	if err != nil {
		return nil, fmt.Errorf("isa: instruction %q: %w", jd.Name, err)
	}
	d := &Desc{
		Name:        jd.Name,
		Type:        it,
		Unit:        unit,
		Format:      format,
		ExprSrc:     jd.InterpretableAs,
		Prog:        prog,
		MemWidth:    jd.MemoryWidth,
		MemSigned:   jd.MemorySigned,
		Conditional: jd.Conditional,
		PCRelative:  jd.PCRelative,
		Flops:       jd.Flops,
		Halts:       jd.Halts,
	}
	for _, ja := range jd.Arguments {
		kind, err := ParseArgKind(ja.Kind)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %q argument %q: %w", jd.Name, ja.Name, err)
		}
		typ, err := expr.ParseType(ja.Type)
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %q argument %q: %w", jd.Name, ja.Name, err)
		}
		d.Args = append(d.Args, ArgDesc{
			Name: ja.Name, Kind: kind, Type: typ, WriteBack: ja.WriteBack,
		})
	}
	return d, nil
}
