package isa

// registerRV32M adds the M (integer multiply/divide) extension.
//
// Deviation note: the RISC-V M specification defines division by zero to
// return all-ones without trapping; the paper's simulator instead generates
// an exception that is reported when the instruction commits ("Exceptions
// are generated during code execution (e.g., ... division by zero)",
// §III-B). We follow the paper.
func registerRV32M(s *Set) {
	s.Register(rType("mul", `\rs1 \rs2 * \rd =`))
	s.Register(rType("mulh", `\rs1 \rs2 mulh \rd =`))
	s.Register(rType("mulhsu", `\rs1 \rs2 mulhsu \rd =`))
	s.Register(rType("mulhu", `\rs1 \rs2 mulhu \rd =`))
	s.Register(rType("div", `\rs1 \rs2 / \rd =`))
	s.Register(rType("divu", `\rs1 \rs2 /u \rd =`))
	s.Register(rType("rem", `\rs1 \rs2 % \rd =`))
	s.Register(rType("remu", `\rs1 \rs2 %u \rd =`))
}
