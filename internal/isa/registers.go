package isa

import (
	"fmt"
	"strings"

	"riscvsim/internal/expr"
)

// RegClass separates the integer and floating-point register files.
type RegClass uint8

// Register file classes.
const (
	RegInt   RegClass = iota // x0..x31
	RegFloat                 // f0..f31
)

// String names the class.
func (c RegClass) String() string {
	if c == RegInt {
		return "int"
	}
	return "float"
}

// NumRegs is the number of architectural registers per file.
const NumRegs = 32

// RegisterDesc describes one architectural register: its canonical name,
// ABI aliases, and any hardwired behaviour (x0). This mirrors the paper's
// "register definitions" loaded at simulation init (§III-A).
type RegisterDesc struct {
	// Name is the canonical name ("x5", "f12").
	Name string
	// Index is the register number within its file.
	Index int
	// Class selects the register file.
	Class RegClass
	// Aliases are the ABI names ("t0", "fa2"); writes through any alias hit
	// the same register.
	Aliases []string
	// ReadOnly marks x0, which ignores writes and always reads zero.
	ReadOnly bool
	// Type is the default data-type tag for GUI display.
	Type expr.Type
}

// intAliases maps register index to ABI alias for the integer file.
var intAliases = [NumRegs][]string{
	0:  {"zero"},
	1:  {"ra"},
	2:  {"sp"},
	3:  {"gp"},
	4:  {"tp"},
	5:  {"t0"},
	6:  {"t1"},
	7:  {"t2"},
	8:  {"s0", "fp"},
	9:  {"s1"},
	10: {"a0"},
	11: {"a1"},
	12: {"a2"},
	13: {"a3"},
	14: {"a4"},
	15: {"a5"},
	16: {"a6"},
	17: {"a7"},
	18: {"s2"},
	19: {"s3"},
	20: {"s4"},
	21: {"s5"},
	22: {"s6"},
	23: {"s7"},
	24: {"s8"},
	25: {"s9"},
	26: {"s10"},
	27: {"s11"},
	28: {"t3"},
	29: {"t4"},
	30: {"t5"},
	31: {"t6"},
}

var floatAliases = [NumRegs][]string{
	0:  {"ft0"},
	1:  {"ft1"},
	2:  {"ft2"},
	3:  {"ft3"},
	4:  {"ft4"},
	5:  {"ft5"},
	6:  {"ft6"},
	7:  {"ft7"},
	8:  {"fs0"},
	9:  {"fs1"},
	10: {"fa0"},
	11: {"fa1"},
	12: {"fa2"},
	13: {"fa3"},
	14: {"fa4"},
	15: {"fa5"},
	16: {"fa6"},
	17: {"fa7"},
	18: {"fs2"},
	19: {"fs3"},
	20: {"fs4"},
	21: {"fs5"},
	22: {"fs6"},
	23: {"fs7"},
	24: {"fs8"},
	25: {"fs9"},
	26: {"fs10"},
	27: {"fs11"},
	28: {"ft8"},
	29: {"ft9"},
	30: {"ft10"},
	31: {"ft11"},
}

// RegisterFile is the static description of both register files with alias
// resolution.
type RegisterFile struct {
	ints   [NumRegs]RegisterDesc
	floats [NumRegs]RegisterDesc
	byName map[string]*RegisterDesc
}

// NewRegisterFile builds the standard RV32 register description.
func NewRegisterFile() *RegisterFile {
	rf := &RegisterFile{byName: make(map[string]*RegisterDesc, NumRegs*4)}
	for i := 0; i < NumRegs; i++ {
		rf.ints[i] = RegisterDesc{
			Name:     fmt.Sprintf("x%d", i),
			Index:    i,
			Class:    RegInt,
			Aliases:  intAliases[i],
			ReadOnly: i == 0,
			Type:     expr.Int,
		}
		rf.floats[i] = RegisterDesc{
			Name:    fmt.Sprintf("f%d", i),
			Index:   i,
			Class:   RegFloat,
			Aliases: floatAliases[i],
			Type:    expr.Float,
		}
	}
	for i := 0; i < NumRegs; i++ {
		rf.byName[rf.ints[i].Name] = &rf.ints[i]
		for _, a := range rf.ints[i].Aliases {
			rf.byName[a] = &rf.ints[i]
		}
		rf.byName[rf.floats[i].Name] = &rf.floats[i]
		for _, a := range rf.floats[i].Aliases {
			rf.byName[a] = &rf.floats[i]
		}
	}
	return rf
}

// Lookup resolves a register name or ABI alias (case-insensitive) to its
// descriptor.
func (rf *RegisterFile) Lookup(name string) (*RegisterDesc, bool) {
	d, ok := rf.byName[strings.ToLower(name)]
	return d, ok
}

// Int returns the descriptor for integer register i.
func (rf *RegisterFile) Int(i int) *RegisterDesc { return &rf.ints[i] }

// Float returns the descriptor for float register i.
func (rf *RegisterFile) Float(i int) *RegisterDesc { return &rf.floats[i] }

// Canonical special register indices.
const (
	RegZero = 0 // x0
	RegRA   = 1 // x1: return address
	RegSP   = 2 // x2: stack pointer
	RegGP   = 3 // x3: global pointer
	RegA0   = 10
	RegA1   = 11
)
