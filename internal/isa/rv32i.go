package isa

import "riscvsim/internal/expr"

// Argument descriptor shorthands used by the instruction tables.
func rdInt() ArgDesc  { return ArgDesc{Name: "rd", Kind: ArgRegInt, Type: expr.Int, WriteBack: true} }
func rs1Int() ArgDesc { return ArgDesc{Name: "rs1", Kind: ArgRegInt, Type: expr.Int} }
func rs2Int() ArgDesc { return ArgDesc{Name: "rs2", Kind: ArgRegInt, Type: expr.Int} }
func immArg() ArgDesc { return ArgDesc{Name: "imm", Kind: ArgImm, Type: expr.Int} }
func labelArg() ArgDesc {
	return ArgDesc{Name: "imm", Kind: ArgLabel, Type: expr.Int}
}

// rType builds an integer register-register arithmetic descriptor.
func rType(name, exprSrc string) *Desc {
	return &Desc{
		Name: name, Type: TypeArithmetic, Unit: FX, Format: FmtR,
		Args:    []ArgDesc{rdInt(), rs1Int(), rs2Int()},
		ExprSrc: exprSrc,
	}
}

// iType builds an integer register-immediate arithmetic descriptor.
func iType(name, exprSrc string) *Desc {
	return &Desc{
		Name: name, Type: TypeArithmetic, Unit: FX, Format: FmtI,
		Args:    []ArgDesc{rdInt(), rs1Int(), immArg()},
		ExprSrc: exprSrc,
	}
}

// branch builds a conditional PC-relative branch descriptor; the expression
// leaves the condition on the stack.
func branch(name, cond string) *Desc {
	return &Desc{
		Name: name, Type: TypeBranch, Unit: Branch, Format: FmtBranch,
		Args:        []ArgDesc{rs1Int(), rs2Int(), labelArg()},
		ExprSrc:     cond,
		Conditional: true,
		PCRelative:  true,
	}
}

// load builds an integer load descriptor; the expression computes the
// effective address.
func load(name string, width int, signed bool) *Desc {
	return &Desc{
		Name: name, Type: TypeLoad, Unit: LS, Format: FmtLoad,
		Args:      []ArgDesc{rdInt(), immArg(), rs1Int()},
		ExprSrc:   `\rs1 \imm +`,
		MemWidth:  width,
		MemSigned: signed,
	}
}

// store builds an integer store descriptor.
func store(name string, width int) *Desc {
	return &Desc{
		Name: name, Type: TypeStore, Unit: LS, Format: FmtStore,
		Args:     []ArgDesc{rs2Int(), immArg(), rs1Int()},
		ExprSrc:  `\rs1 \imm +`,
		MemWidth: width,
	}
}

func registerRV32I(s *Set) {
	// Upper-immediate instructions. Addresses are segment indices
	// (paper §III-B), so auipc adds to the instruction index.
	s.Register(&Desc{
		Name: "lui", Type: TypeArithmetic, Unit: FX, Format: FmtU,
		Args:    []ArgDesc{rdInt(), immArg()},
		ExprSrc: `\imm 12 << \rd =`,
	})
	s.Register(&Desc{
		Name: "auipc", Type: TypeArithmetic, Unit: FX, Format: FmtU,
		Args:    []ArgDesc{rdInt(), immArg()},
		ExprSrc: `\imm 12 << \pc + \rd =`,
	})

	// Unconditional jumps. jal's target is pc+imm; jalr's target is the
	// value the expression leaves on the stack. Both link pc+1 (code
	// addresses are instruction indices).
	s.Register(&Desc{
		Name: "jal", Type: TypeBranch, Unit: Branch, Format: FmtJ,
		Args:       []ArgDesc{rdInt(), labelArg()},
		ExprSrc:    `\pc 1 + \rd =`,
		PCRelative: true,
	})
	s.Register(&Desc{
		Name: "jalr", Type: TypeBranch, Unit: Branch, Format: FmtI,
		Args:    []ArgDesc{rdInt(), rs1Int(), immArg()},
		ExprSrc: `\pc 1 + \rd = \rs1 \imm +`,
	})

	// Conditional branches.
	s.Register(branch("beq", `\rs1 \rs2 ==`))
	s.Register(branch("bne", `\rs1 \rs2 !=`))
	s.Register(branch("blt", `\rs1 \rs2 <`))
	s.Register(branch("bge", `\rs1 \rs2 >=`))
	s.Register(branch("bltu", `\rs1 \rs2 <u`))
	s.Register(branch("bgeu", `\rs1 \rs2 >=u`))

	// Loads and stores.
	s.Register(load("lb", 1, true))
	s.Register(load("lh", 2, true))
	s.Register(load("lw", 4, true))
	s.Register(load("lbu", 1, false))
	s.Register(load("lhu", 2, false))
	s.Register(store("sb", 1))
	s.Register(store("sh", 2))
	s.Register(store("sw", 4))

	// Register-immediate arithmetic.
	s.Register(iType("addi", `\rs1 \imm + \rd =`))
	s.Register(iType("slti", `\rs1 \imm < \rd =`))
	s.Register(iType("sltiu", `\rs1 \imm <u \rd =`))
	s.Register(iType("xori", `\rs1 \imm ^ \rd =`))
	s.Register(iType("ori", `\rs1 \imm | \rd =`))
	s.Register(iType("andi", `\rs1 \imm & \rd =`))
	s.Register(iType("slli", `\rs1 \imm << \rd =`))
	s.Register(iType("srli", `\rs1 \imm >>> \rd =`))
	s.Register(iType("srai", `\rs1 \imm >> \rd =`))

	// Register-register arithmetic.
	s.Register(rType("add", `\rs1 \rs2 + \rd =`))
	s.Register(rType("sub", `\rs1 \rs2 - \rd =`))
	s.Register(rType("sll", `\rs1 \rs2 << \rd =`))
	s.Register(rType("slt", `\rs1 \rs2 < \rd =`))
	s.Register(rType("sltu", `\rs1 \rs2 <u \rd =`))
	s.Register(rType("xor", `\rs1 \rs2 ^ \rd =`))
	s.Register(rType("srl", `\rs1 \rs2 >>> \rd =`))
	s.Register(rType("sra", `\rs1 \rs2 >> \rd =`))
	s.Register(rType("or", `\rs1 \rs2 | \rd =`))
	s.Register(rType("and", `\rs1 \rs2 & \rd =`))

	// fence is a no-op in a single-core simulator without an OS.
	s.Register(&Desc{
		Name: "fence", Type: TypeArithmetic, Unit: FX, Format: FmtNone,
		ExprSrc: ``,
	})

	// The simulator runs no operating system (paper §III-B), so an
	// environment call terminates the simulated program.
	s.Register(&Desc{
		Name: "ecall", Type: TypeArithmetic, Unit: FX, Format: FmtNone,
		ExprSrc: ``, Halts: true,
	})
	s.Register(&Desc{
		Name: "ebreak", Type: TypeArithmetic, Unit: FX, Format: FmtNone,
		ExprSrc: ``, Halts: true,
	})
}
