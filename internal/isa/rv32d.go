package isa

import "riscvsim/internal/expr"

func rdDouble() ArgDesc {
	return ArgDesc{Name: "rd", Kind: ArgRegFloat, Type: expr.Double, WriteBack: true}
}
func rs1Double() ArgDesc { return ArgDesc{Name: "rs1", Kind: ArgRegFloat, Type: expr.Double} }
func rs2Double() ArgDesc { return ArgDesc{Name: "rs2", Kind: ArgRegFloat, Type: expr.Double} }

func dType(name, exprSrc string, flops int) *Desc {
	return &Desc{
		Name: name, Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args:    []ArgDesc{rdDouble(), rs1Double(), rs2Double()},
		ExprSrc: exprSrc,
		Flops:   flops,
	}
}

// registerRV32D adds the practical subset of the D (double-precision)
// extension used by the paper's abstract ("RV32IMFD"). Registers are
// 64-bit containers (paper §III-B), so doubles fit a single f register.
func registerRV32D(s *Set) {
	s.Register(&Desc{
		Name: "fld", Type: TypeLoad, Unit: LS, Format: FmtLoad,
		Args:     []ArgDesc{rdDouble(), immArg(), rs1Int()},
		ExprSrc:  `\rs1 \imm +`,
		MemWidth: 8,
	})
	s.Register(&Desc{
		Name: "fsd", Type: TypeStore, Unit: LS, Format: FmtStore,
		Args:     []ArgDesc{{Name: "rs2", Kind: ArgRegFloat, Type: expr.Double}, immArg(), rs1Int()},
		ExprSrc:  `\rs1 \imm +`,
		MemWidth: 8,
	})

	s.Register(dType("fadd.d", `\rs1 \rs2 + \rd =`, 1))
	s.Register(dType("fsub.d", `\rs1 \rs2 - \rd =`, 1))
	s.Register(dType("fmul.d", `\rs1 \rs2 * \rd =`, 1))
	s.Register(dType("fdiv.d", `\rs1 \rs2 / \rd =`, 1))
	s.Register(f2Type("fsqrt.d", `\rs1 sqrt \rd =`, 1,
		[]ArgDesc{rdDouble(), rs1Double()}))
	s.Register(dType("fmin.d", `\rs1 \rs2 min \rd =`, 1))
	s.Register(dType("fmax.d", `\rs1 \rs2 max \rd =`, 1))
	s.Register(dType("fsgnj.d", `\rs1 \rs2 sgnj \rd =`, 0))
	s.Register(dType("fsgnjn.d", `\rs1 \rs2 sgnjn \rd =`, 0))
	s.Register(dType("fsgnjx.d", `\rs1 \rs2 sgnjx \rd =`, 0))

	// Conversions.
	s.Register(f2Type("fcvt.d.s", `\rs1 double \rd =`, 1,
		[]ArgDesc{rdDouble(), rs1Float()}))
	s.Register(f2Type("fcvt.s.d", `\rs1 float \rd =`, 1,
		[]ArgDesc{rdFloat(), rs1Double()}))
	s.Register(f2Type("fcvt.w.d", `\rs1 int \rd =`, 1,
		[]ArgDesc{rdInt(), rs1Double()}))
	s.Register(f2Type("fcvt.wu.d", `\rs1 uint \rd =`, 1,
		[]ArgDesc{{Name: "rd", Kind: ArgRegInt, Type: expr.UInt, WriteBack: true}, rs1Double()}))
	s.Register(f2Type("fcvt.d.w", `\rs1 double \rd =`, 1,
		[]ArgDesc{rdDouble(), rs1Int()}))
	s.Register(f2Type("fcvt.d.wu", `\rs1 uint double \rd =`, 1,
		[]ArgDesc{rdDouble(), rs1Int()}))

	// Comparisons.
	cmpArgs := func() []ArgDesc { return []ArgDesc{rdInt(), rs1Double(), rs2Double()} }
	s.Register(&Desc{
		Name: "feq.d", Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args: cmpArgs(), ExprSrc: `\rs1 \rs2 == \rd =`, Flops: 1,
	})
	s.Register(&Desc{
		Name: "flt.d", Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args: cmpArgs(), ExprSrc: `\rs1 \rs2 < \rd =`, Flops: 1,
	})
	s.Register(&Desc{
		Name: "fle.d", Type: TypeArithmetic, Unit: FP, Format: FmtR,
		Args: cmpArgs(), ExprSrc: `\rs1 \rs2 <= \rd =`, Flops: 1,
	})
	s.Register(f2Type("fclass.d", `\rs1 fclass \rd =`, 0,
		[]ArgDesc{rdInt(), rs1Double()}))
}
