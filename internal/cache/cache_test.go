package cache

import (
	"testing"
	"testing/quick"

	"riscvsim/internal/memory"
)

func newBacking() *memory.Main {
	return memory.New(memory.Config{Size: 64 * 1024, LoadLatency: 10, StoreLatency: 10, CallStackSize: 0})
}

func newCache(t *testing.T, cfg Config) (*Cache, *memory.Main) {
	t.Helper()
	m := newBacking()
	c, err := New(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func smallCfg() Config {
	return Config{
		Enabled: true, Lines: 8, LineSize: 16, Associativity: 2,
		Replacement: LRU, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 5,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Enabled: true, Lines: 0, LineSize: 16, Associativity: 1},
		{Enabled: true, Lines: 8, LineSize: 15, Associativity: 1},
		{Enabled: true, Lines: 8, LineSize: 16, Associativity: 3},
		{Enabled: true, Lines: 8, LineSize: 16, Associativity: 1, AccessDelay: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: Validate should fail for %+v", i, cfg)
		}
	}
	if err := (Config{Enabled: false}).Validate(); err != nil {
		t.Errorf("disabled cache should validate: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config should validate: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c, _ := newCache(t, smallCfg())
	tx := &memory.Transaction{Addr: 100, Size: 4, IsStore: true, Data: 0xCAFEBABE}
	if _, exc := c.Access(tx, 0); exc != nil {
		t.Fatal(exc)
	}
	if tx.HitCache {
		t.Error("first access must miss")
	}
	rd := &memory.Transaction{Addr: 100, Size: 4}
	if _, exc := c.Access(rd, 10); exc != nil {
		t.Fatal(exc)
	}
	if !rd.HitCache {
		t.Error("second access must hit")
	}
	if rd.Data != 0xCAFEBABE {
		t.Errorf("read %#x, want 0xCAFEBABE", rd.Data)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestHitIsFasterThanMiss(t *testing.T) {
	c, _ := newCache(t, smallCfg())
	miss := &memory.Transaction{Addr: 0, Size: 4}
	missFinish, _ := c.Access(miss, 0)
	hit := &memory.Transaction{Addr: 0, Size: 4}
	hitFinish, _ := c.Access(hit, 100)
	if hitFinish-100 >= missFinish-0 {
		t.Errorf("hit latency %d should be less than miss latency %d",
			hitFinish-100, missFinish)
	}
	if hitFinish-100 != uint64(c.Config().AccessDelay) {
		t.Errorf("hit latency = %d, want AccessDelay=%d", hitFinish-100, c.Config().AccessDelay)
	}
}

func TestWriteBackDefersMemoryWrite(t *testing.T) {
	c, m := newCache(t, smallCfg())
	tx := &memory.Transaction{Addr: 200, Size: 4, IsStore: true, Data: 42}
	c.Access(tx, 0)
	// Memory must still hold zero: the store is buffered in the cache.
	v, _ := m.ReadWord(200)
	if v != 0 {
		t.Errorf("write-back store leaked to memory: %d", v)
	}
	c.FlushAll(10)
	v, _ = m.ReadWord(200)
	if v != 42 {
		t.Errorf("after flush memory = %d, want 42", v)
	}
}

func TestWriteThroughWritesMemoryImmediately(t *testing.T) {
	cfg := smallCfg()
	cfg.Write = WriteThrough
	c, m := newCache(t, cfg)
	tx := &memory.Transaction{Addr: 200, Size: 4, IsStore: true, Data: 42}
	c.Access(tx, 0)
	v, _ := m.ReadWord(200)
	if v != 42 {
		t.Errorf("write-through store not in memory: %d", v)
	}
}

func TestWriteThroughNoAllocateOnStoreMiss(t *testing.T) {
	cfg := smallCfg()
	cfg.Write = WriteThrough
	c, _ := newCache(t, cfg)
	c.Access(&memory.Transaction{Addr: 300, Size: 4, IsStore: true, Data: 7}, 0)
	rd := &memory.Transaction{Addr: 300, Size: 4}
	c.Access(rd, 1)
	if rd.HitCache {
		t.Error("store miss must not allocate a line under write-through")
	}
	if rd.Data != 7 {
		t.Errorf("read %d, want 7", rd.Data)
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	// Direct-mapped, 2 lines of 16 B: addresses 0 and 32 conflict.
	cfg := Config{
		Enabled: true, Lines: 2, LineSize: 16, Associativity: 1,
		Replacement: LRU, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 2,
	}
	c, m := newCache(t, cfg)
	c.Access(&memory.Transaction{Addr: 0, Size: 4, IsStore: true, Data: 11}, 0)
	// Evict line 0 by touching the conflicting address 32.
	c.Access(&memory.Transaction{Addr: 32, Size: 4}, 1)
	v, _ := m.ReadWord(0)
	if v != 11 {
		t.Errorf("dirty line not written back on eviction: memory=%d, want 11", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestLRUReplacement(t *testing.T) {
	// One set, 2 ways, 16 B lines: conflicting addresses 0, 16, 32.
	cfg := Config{
		Enabled: true, Lines: 2, LineSize: 16, Associativity: 2,
		Replacement: LRU, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 2,
	}
	c, _ := newCache(t, cfg)
	c.Access(&memory.Transaction{Addr: 0, Size: 4}, 0)  // miss, fill way0
	c.Access(&memory.Transaction{Addr: 16, Size: 4}, 1) // miss, fill way1
	c.Access(&memory.Transaction{Addr: 0, Size: 4}, 2)  // hit (0 is now MRU)
	c.Access(&memory.Transaction{Addr: 32, Size: 4}, 3) // evicts 16 (LRU)
	rd0 := &memory.Transaction{Addr: 0, Size: 4}
	c.Access(rd0, 4)
	if !rd0.HitCache {
		t.Error("LRU should have kept address 0")
	}
	rd16 := &memory.Transaction{Addr: 16, Size: 4}
	c.Access(rd16, 5)
	if rd16.HitCache {
		t.Error("LRU should have evicted address 16")
	}
}

func TestFIFOReplacement(t *testing.T) {
	cfg := Config{
		Enabled: true, Lines: 2, LineSize: 16, Associativity: 2,
		Replacement: FIFO, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 2,
	}
	c, _ := newCache(t, cfg)
	c.Access(&memory.Transaction{Addr: 0, Size: 4}, 0)  // fill way0 (first in)
	c.Access(&memory.Transaction{Addr: 16, Size: 4}, 1) // fill way1
	c.Access(&memory.Transaction{Addr: 0, Size: 4}, 2)  // hit; FIFO ignores recency
	c.Access(&memory.Transaction{Addr: 32, Size: 4}, 3) // evicts 0 (first in)
	rd0 := &memory.Transaction{Addr: 0, Size: 4}
	c.Access(rd0, 4)
	if rd0.HitCache {
		t.Error("FIFO should have evicted address 0 despite its recent use")
	}
}

func TestRandomReplacementIsDeterministic(t *testing.T) {
	run := func() []uint64 {
		cfg := Config{
			Enabled: true, Lines: 4, LineSize: 16, Associativity: 4,
			Replacement: Random, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 2,
		}
		m := newBacking()
		c, _ := New(cfg, m)
		var hits []uint64
		for i := 0; i < 50; i++ {
			addr := (i * 37 % 16) * 16
			c.Access(&memory.Transaction{Addr: addr, Size: 4}, uint64(i))
			hits = append(hits, c.Stats().Hits)
		}
		return hits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Random replacement diverged at access %d: %d != %d (must be deterministic for backward simulation)", i, a[i], b[i])
		}
	}
}

func TestLineCrossingAccess(t *testing.T) {
	c, _ := newCache(t, smallCfg())
	// 4-byte store at 14 spans lines [0,16) and [16,32).
	c.Access(&memory.Transaction{Addr: 14, Size: 4, IsStore: true, Data: 0xAABBCCDD}, 0)
	rd := &memory.Transaction{Addr: 14, Size: 4}
	c.Access(rd, 1)
	if rd.Data != 0xAABBCCDD {
		t.Errorf("line-crossing read = %#x, want 0xAABBCCDD", rd.Data)
	}
}

func TestDisabledCachePassesThrough(t *testing.T) {
	m := newBacking()
	c, err := New(Config{Enabled: false}, m)
	if err != nil {
		t.Fatal(err)
	}
	tx := &memory.Transaction{Addr: 100, Size: 4, IsStore: true, Data: 5}
	finish, exc := c.Access(tx, 0)
	if exc != nil {
		t.Fatal(exc)
	}
	if finish != uint64(m.Config().StoreLatency) {
		t.Errorf("disabled cache latency = %d, want memory latency %d", finish, m.Config().StoreLatency)
	}
	v, _ := m.ReadWord(100)
	if v != 5 {
		t.Error("disabled cache must write memory directly")
	}
}

func TestOutOfRangeAccessFaults(t *testing.T) {
	c, _ := newCache(t, smallCfg())
	if _, exc := c.Access(&memory.Transaction{Addr: -4, Size: 4}, 0); exc == nil {
		t.Error("negative address must fault")
	}
	if _, exc := c.Access(&memory.Transaction{Addr: 1 << 30, Size: 4}, 0); exc == nil {
		t.Error("address beyond memory must fault")
	}
}

func TestLinesView(t *testing.T) {
	c, _ := newCache(t, smallCfg())
	c.Access(&memory.Transaction{Addr: 0, Size: 4, IsStore: true, Data: 1}, 0)
	views := c.Lines()
	if len(views) != 8 {
		t.Fatalf("Lines() returned %d views, want 8", len(views))
	}
	valid := 0
	for _, v := range views {
		if v.Valid {
			valid++
			if v.Addr%16 != 0 {
				t.Errorf("line address %d not line-aligned", v.Addr)
			}
		}
	}
	if valid != 1 {
		t.Errorf("%d valid lines, want 1", valid)
	}
}

func TestCloneIndependence(t *testing.T) {
	c, m := newCache(t, smallCfg())
	c.Access(&memory.Transaction{Addr: 0, Size: 4, IsStore: true, Data: 77}, 0)
	m2 := m.Clone()
	c2 := c.Clone(m2)
	// Write through the original; the clone must not see it.
	c.Access(&memory.Transaction{Addr: 0, Size: 4, IsStore: true, Data: 88}, 1)
	rd := &memory.Transaction{Addr: 0, Size: 4}
	c2.Access(rd, 2)
	if rd.Data != 77 {
		t.Errorf("clone sees %d, want 77", rd.Data)
	}
}

// Property: reading through the cache always returns what was last written
// through the cache, regardless of the policy mix and geometry.
func TestPropertyCacheCoherentWithItself(t *testing.T) {
	type op struct {
		Addr uint16
		Val  uint32
	}
	f := func(ops []op, assocSel, polSel uint8) bool {
		assoc := []int{1, 2, 4}[assocSel%3]
		pol := ReplacementPolicy(polSel % 3)
		m := newBacking()
		c, err := New(Config{
			Enabled: true, Lines: 8, LineSize: 16, Associativity: assoc,
			Replacement: pol, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 3,
		}, m)
		if err != nil {
			return false
		}
		shadow := map[int]uint32{}
		now := uint64(0)
		for _, o := range ops {
			addr := int(o.Addr) % (64*1024 - 4)
			addr &^= 3
			st := &memory.Transaction{Addr: addr, Size: 4, IsStore: true, Data: uint64(o.Val)}
			if _, exc := c.Access(st, now); exc != nil {
				return false
			}
			shadow[addr] = o.Val
			now++
		}
		for addr, want := range shadow {
			rd := &memory.Transaction{Addr: addr, Size: 4}
			if _, exc := c.Access(rd, now); exc != nil {
				return false
			}
			if uint32(rd.Data) != want {
				return false
			}
			now++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: after FlushAll, memory agrees with every value written through
// a write-back cache.
func TestPropertyFlushMakesMemoryCoherent(t *testing.T) {
	f := func(addrs []uint16, val uint32) bool {
		m := newBacking()
		c, _ := New(smallCfgQuick(), m)
		shadow := map[int]uint32{}
		for i, a := range addrs {
			addr := (int(a) % (64*1024 - 4)) &^ 3
			v := val + uint32(i)
			c.Access(&memory.Transaction{Addr: addr, Size: 4, IsStore: true, Data: uint64(v)}, uint64(i))
			shadow[addr] = v
		}
		c.FlushAll(uint64(len(addrs)))
		for addr, want := range shadow {
			got, exc := m.ReadWord(addr)
			if exc != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func smallCfgQuick() Config {
	return Config{
		Enabled: true, Lines: 8, LineSize: 16, Associativity: 2,
		Replacement: LRU, Write: WriteBack, AccessDelay: 1, ReplacementDelay: 5,
	}
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []ReplacementPolicy{LRU, FIFO, Random} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for _, w := range []WritePolicy{WriteBack, WriteThrough} {
		got, err := ParseWritePolicy(w.String())
		if err != nil || got != w {
			t.Errorf("ParseWritePolicy(%q) = %v, %v", w.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) should fail")
	}
}
