// Package cache implements the simulator's L1 data cache, configurable in
// capacity, line size, associativity, replacement policy (LRU, FIFO or
// Random) and store behaviour (write-back or write-through), with separate
// access and line-replacement delays — the full option set of the paper's
// Cache settings tab (§II-C).
//
// The cache sits between the processor's memory-access unit and main
// memory, servicing the same transactional interface (memory.Port).
package cache

import (
	"fmt"

	"riscvsim/internal/fault"
	"riscvsim/internal/memory"
)

// ReplacementPolicy selects the victim line within a set.
type ReplacementPolicy uint8

// Replacement policies offered by the paper's settings window.
const (
	LRU ReplacementPolicy = iota
	FIFO
	Random
)

var policyNames = [...]string{"LRU", "FIFO", "Random"}

// String returns the display name of the policy.
func (p ReplacementPolicy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy is the inverse of String.
func ParsePolicy(s string) (ReplacementPolicy, error) {
	for i, n := range policyNames {
		if n == s {
			return ReplacementPolicy(i), nil
		}
	}
	return LRU, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// WritePolicy selects the store behaviour.
type WritePolicy uint8

// Store behaviours offered by the paper's settings window.
const (
	// WriteBack buffers stores in the cache (write-allocate) and writes
	// dirty lines to memory only on eviction or flush.
	WriteBack WritePolicy = iota
	// WriteThrough forwards every store to memory immediately
	// (no-write-allocate on miss).
	WriteThrough
)

var writePolicyNames = [...]string{"write-back", "write-through"}

// String returns the display name of the policy.
func (p WritePolicy) String() string {
	if int(p) < len(writePolicyNames) {
		return writePolicyNames[p]
	}
	return fmt.Sprintf("writePolicy(%d)", uint8(p))
}

// ParseWritePolicy is the inverse of String.
func ParseWritePolicy(s string) (WritePolicy, error) {
	for i, n := range writePolicyNames {
		if n == s {
			return WritePolicy(i), nil
		}
	}
	return WriteBack, fmt.Errorf("cache: unknown write policy %q", s)
}

// Config holds the Cache tab parameters (paper §II-C).
type Config struct {
	// Enabled turns the L1 cache on; when false the processor talks to
	// memory directly.
	Enabled bool
	// Lines is the total number of cache lines.
	Lines int
	// LineSize is the line size in bytes (a power of two).
	LineSize int
	// Associativity is the number of ways per set; Lines must be a
	// multiple of it. 1 = direct-mapped; Lines = fully associative.
	Associativity int
	// Replacement selects the victim policy.
	Replacement ReplacementPolicy
	// Write selects write-back or write-through behaviour.
	Write WritePolicy
	// AccessDelay is the hit latency in cycles.
	AccessDelay int
	// ReplacementDelay is the extra latency for a line replacement.
	ReplacementDelay int
}

// DefaultConfig returns the cache configuration used by the preset
// architectures: 16 KiB, 4-way, 64 B lines, LRU write-back.
func DefaultConfig() Config {
	return Config{
		Enabled:          true,
		Lines:            256,
		LineSize:         64,
		Associativity:    4,
		Replacement:      LRU,
		Write:            WriteBack,
		AccessDelay:      1,
		ReplacementDelay: 10,
	}
}

// Validate checks geometric consistency.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Lines <= 0 {
		return fmt.Errorf("cache: Lines must be positive, got %d", c.Lines)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: LineSize must be a positive power of two, got %d", c.LineSize)
	}
	if c.Associativity <= 0 || c.Lines%c.Associativity != 0 {
		return fmt.Errorf("cache: Associativity %d must divide Lines %d", c.Associativity, c.Lines)
	}
	if c.AccessDelay < 0 || c.ReplacementDelay < 0 {
		return fmt.Errorf("cache: delays must be non-negative")
	}
	return nil
}

// line is one cache line with its buffered data. Write-back caches hold
// data newer than memory in dirty lines.
type line struct {
	valid    bool
	dirty    bool
	tag      int
	lastUse  uint64 // LRU timestamp
	loadedAt uint64 // FIFO timestamp
	data     []byte
}

// Stats are the cache statistics the runtime-statistics window reports
// (paper §II-D: accesses, hit and miss ratios, bytes written).
type Stats struct {
	Accesses     uint64 `json:"accesses"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Evictions    uint64 `json:"evictions"`
	Writebacks   uint64 `json:"writebacks"`
	BytesWritten uint64 `json:"bytesWritten"`
}

// HitRate returns hits/accesses in [0,1].
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is the L1 cache. It implements memory.Port.
type Cache struct {
	cfg     Config
	sets    [][]line
	numSets int
	backing *memory.Main
	tick    uint64 // monotonic use counter for LRU/FIFO ordering
	rng     uint64 // xorshift state for Random replacement (deterministic)
	stats   Stats
}

// New builds a cache over the given backing memory. The configuration must
// be valid (see Config.Validate).
func New(cfg Config, backing *memory.Main) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg, backing: backing, rng: 0x9E3779B97F4A7C15}
	if cfg.Enabled {
		c.numSets = cfg.Lines / cfg.Associativity
		c.sets = make([][]line, c.numSets)
		for i := range c.sets {
			ways := make([]line, cfg.Associativity)
			for w := range ways {
				ways[w].data = make([]byte, cfg.LineSize)
			}
			c.sets[i] = ways
		}
	}
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the collected statistics.
func (c *Cache) Stats() Stats { return c.stats }

// setIndexAndTag splits an address into its set index and tag.
func (c *Cache) setIndexAndTag(addr int) (int, int) {
	block := addr / c.cfg.LineSize
	return block % c.numSets, block / c.numSets
}

// findWay returns the way holding tag in set si, or -1.
func (c *Cache) findWay(si, tag int) int {
	for w := range c.sets[si] {
		if c.sets[si][w].valid && c.sets[si][w].tag == tag {
			return w
		}
	}
	return -1
}

// victimWay selects the way to replace in set si according to the policy.
func (c *Cache) victimWay(si int) int {
	ways := c.sets[si]
	// Prefer an invalid way.
	for w := range ways {
		if !ways[w].valid {
			return w
		}
	}
	switch c.cfg.Replacement {
	case FIFO:
		oldest, at := 0, ways[0].loadedAt
		for w := 1; w < len(ways); w++ {
			if ways[w].loadedAt < at {
				oldest, at = w, ways[w].loadedAt
			}
		}
		return oldest
	case Random:
		// xorshift64* — deterministic so that backward simulation
		// (a re-run of the same cycle count) reproduces identical
		// cache states.
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		return int((c.rng * 0x2545F4914F6CDD1D) >> 33 % uint64(len(ways)))
	default: // LRU
		oldest, at := 0, ways[0].lastUse
		for w := 1; w < len(ways); w++ {
			if ways[w].lastUse < at {
				oldest, at = w, ways[w].lastUse
			}
		}
		return oldest
	}
}

// fill loads the line containing addr into set si, evicting a victim. It
// returns the way index and the number of extra memory latency cycles the
// fill cost (victim write-back + line fetch).
func (c *Cache) fill(si, tag int, now uint64) (int, uint64, *fault.Exception) {
	w := c.victimWay(si)
	ln := &c.sets[si][w]
	var penalty uint64
	if ln.valid {
		c.stats.Evictions++
		if ln.dirty {
			if exc := c.writebackLine(si, ln); exc != nil {
				return 0, 0, exc
			}
			penalty += uint64(c.backing.Config().StoreLatency)
		}
	}
	addr := c.lineAddr(si, tag)
	data, exc := c.backing.ReadBytes(addr, c.cfg.LineSize)
	if exc != nil {
		return 0, 0, exc
	}
	copy(ln.data, data)
	ln.valid = true
	ln.dirty = false
	ln.tag = tag
	ln.loadedAt = now
	penalty += uint64(c.backing.Config().LoadLatency)
	return w, penalty, nil
}

// lineAddr reconstructs the base address of a line from set index and tag.
func (c *Cache) lineAddr(si, tag int) int {
	return (tag*c.numSets + si) * c.cfg.LineSize
}

func (c *Cache) writebackLine(si int, ln *line) *fault.Exception {
	addr := c.lineAddr(si, ln.tag)
	if exc := c.backing.WriteBytes(addr, ln.data); exc != nil {
		return exc
	}
	c.stats.Writebacks++
	c.stats.BytesWritten += uint64(len(ln.data))
	return nil
}

// Access implements memory.Port. A transaction that spans two cache lines
// is serviced as two sequential line accesses.
func (c *Cache) Access(tx *memory.Transaction, now uint64) (uint64, *fault.Exception) {
	if !c.cfg.Enabled {
		return c.backing.Access(tx, now)
	}
	if tx.Addr < 0 || tx.Size <= 0 || tx.Addr+tx.Size > c.backing.Size() {
		return now, fault.New(fault.InvalidMemoryAccess,
			"access of %d bytes at address %d outside memory of %d bytes",
			tx.Size, tx.Addr, c.backing.Size())
	}
	tx.IssuedAt = now
	finish := now + uint64(c.cfg.AccessDelay)
	hit := true

	firstLine := tx.Addr / c.cfg.LineSize
	lastLine := (tx.Addr + tx.Size - 1) / c.cfg.LineSize
	for block := firstLine; block <= lastLine; block++ {
		si, tag := block%c.numSets, block/c.numSets
		c.stats.Accesses++
		w := c.findWay(si, tag)
		if w < 0 {
			hit = false
			c.stats.Misses++
			if tx.IsStore && c.cfg.Write == WriteThrough {
				// No-write-allocate: the store goes straight to
				// memory below.
				finish = max64(finish, now+uint64(c.cfg.AccessDelay)+uint64(c.backing.Config().StoreLatency))
				continue
			}
			var penalty uint64
			var exc *fault.Exception
			w, penalty, exc = c.fill(si, tag, now)
			if exc != nil {
				return now, exc
			}
			finish = max64(finish, now+uint64(c.cfg.AccessDelay)+uint64(c.cfg.ReplacementDelay)+penalty)
		} else {
			c.stats.Hits++
		}
		if w >= 0 {
			c.tick++
			c.sets[si][w].lastUse = c.tick
			c.copyData(tx, si, w, block)
		}
	}

	if tx.IsStore && c.cfg.Write == WriteThrough {
		// Forward the store to memory (the authoritative copy).
		shadow := *tx
		if _, exc := c.backing.Access(&shadow, now); exc != nil {
			return now, exc
		}
		c.stats.BytesWritten += uint64(tx.Size)
		finish = max64(finish, shadow.FinishAt)
	}
	tx.HitCache = hit
	tx.FinishAt = finish
	return finish, nil
}

// copyData moves the bytes of tx that fall within line block between the
// transaction payload and the line buffer.
func (c *Cache) copyData(tx *memory.Transaction, si, w, block int) {
	ln := &c.sets[si][w]
	lineBase := block * c.cfg.LineSize
	for i := 0; i < tx.Size; i++ {
		a := tx.Addr + i
		if a/c.cfg.LineSize != block {
			continue
		}
		off := a - lineBase
		if tx.IsStore {
			ln.data[off] = byte(tx.Data >> (8 * i))
			if c.cfg.Write == WriteBack {
				ln.dirty = true
			}
		} else {
			tx.Data &^= uint64(0xFF) << (8 * i)
			tx.Data |= uint64(ln.data[off]) << (8 * i)
		}
	}
}

// FlushAll writes every dirty line back to memory (paper §III-A:
// "transactions ... support cache line flushing"). It returns the cycle at
// which the flush completes.
func (c *Cache) FlushAll(now uint64) uint64 {
	if !c.cfg.Enabled {
		return now
	}
	finish := now
	for si := range c.sets {
		for w := range c.sets[si] {
			ln := &c.sets[si][w]
			if ln.valid && ln.dirty {
				if exc := c.writebackLine(si, ln); exc != nil {
					continue // flush is best-effort at simulation end
				}
				ln.dirty = false
				finish += uint64(c.backing.Config().StoreLatency)
			}
		}
	}
	return finish
}

// LineView describes one line for the GUI's cache pane (Fig. 12 shows the
// cache organized into lines).
type LineView struct {
	Set   int    `json:"set"`
	Way   int    `json:"way"`
	Valid bool   `json:"valid"`
	Dirty bool   `json:"dirty"`
	Tag   int    `json:"tag"`
	Addr  int    `json:"addr"`
	Data  []byte `json:"data,omitempty"`
}

// Lines returns a snapshot of all cache lines for display.
func (c *Cache) Lines() []LineView {
	if !c.cfg.Enabled {
		return nil
	}
	out := make([]LineView, 0, c.cfg.Lines)
	for si := range c.sets {
		for w := range c.sets[si] {
			ln := &c.sets[si][w]
			lv := LineView{Set: si, Way: w, Valid: ln.valid, Dirty: ln.dirty}
			if ln.valid {
				lv.Tag = ln.tag
				lv.Addr = c.lineAddr(si, ln.tag)
				lv.Data = append([]byte(nil), ln.data...)
			}
			out = append(out, lv)
		}
	}
	return out
}

// Clone deep-copies the cache over a new backing memory (for simulation
// snapshots).
func (c *Cache) Clone(backing *memory.Main) *Cache {
	nc := &Cache{
		cfg: c.cfg, numSets: c.numSets, backing: backing,
		tick: c.tick, rng: c.rng, stats: c.stats,
	}
	if c.cfg.Enabled {
		nc.sets = make([][]line, len(c.sets))
		for si := range c.sets {
			ways := make([]line, len(c.sets[si]))
			for w := range ways {
				ways[w] = c.sets[si][w]
				ways[w].data = append([]byte(nil), c.sets[si][w].data...)
			}
			nc.sets[si] = ways
		}
	}
	return nc
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
