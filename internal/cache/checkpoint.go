package cache

import "riscvsim/internal/ckpt"

// EncodeState writes the cache's dynamic state: the replacement clocks,
// the deterministic RNG, the statistics and every valid line with its
// buffered data (dirty write-back lines hold data newer than memory, so
// they are part of the machine state, not a derivable optimization).
func (c *Cache) EncodeState(w *ckpt.Writer) {
	w.Section(ckpt.SecCache)
	w.Bool(c.cfg.Enabled)
	w.U64(c.tick)
	w.U64(c.rng)
	w.U64(c.stats.Accesses)
	w.U64(c.stats.Hits)
	w.U64(c.stats.Misses)
	w.U64(c.stats.Evictions)
	w.U64(c.stats.Writebacks)
	w.U64(c.stats.BytesWritten)
	if !c.cfg.Enabled {
		return
	}
	w.Int(c.numSets)
	w.Int(c.cfg.Associativity)
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			w.Bool(ln.valid)
			if !ln.valid {
				continue
			}
			w.Bool(ln.dirty)
			w.Int(ln.tag)
			w.U64(ln.lastUse)
			w.U64(ln.loadedAt)
			w.Bytes(ln.data)
		}
	}
}

// DecodeState applies an encoded cache state onto c, which must have been
// built from the same configuration (same geometry).
func (c *Cache) DecodeState(r *ckpt.Reader) {
	r.Section(ckpt.SecCache)
	enabled := r.Bool()
	if r.Err() == nil && enabled != c.cfg.Enabled {
		r.Corrupt("cache enabled=%v, machine has %v", enabled, c.cfg.Enabled)
		return
	}
	c.tick = r.U64()
	c.rng = r.U64()
	c.stats.Accesses = r.U64()
	c.stats.Hits = r.U64()
	c.stats.Misses = r.U64()
	c.stats.Evictions = r.U64()
	c.stats.Writebacks = r.U64()
	c.stats.BytesWritten = r.U64()
	if !enabled || r.Err() != nil {
		return
	}
	if sets := r.Int(); r.Err() == nil && sets != c.numSets {
		r.Corrupt("cache has %d sets, machine has %d", sets, c.numSets)
		return
	}
	if ways := r.Int(); r.Err() == nil && ways != c.cfg.Associativity {
		r.Corrupt("cache has %d ways, machine has %d", ways, c.cfg.Associativity)
		return
	}
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			ln.valid = r.Bool()
			if !ln.valid {
				ln.dirty = false
				ln.tag = 0
				ln.lastUse = 0
				ln.loadedAt = 0
				continue
			}
			ln.dirty = r.Bool()
			ln.tag = r.Int()
			ln.lastUse = r.U64()
			ln.loadedAt = r.U64()
			data := r.Bytes(c.cfg.LineSize)
			if r.Err() != nil {
				return
			}
			if len(data) != c.cfg.LineSize {
				r.Corrupt("cache line of %d bytes, want %d", len(data), c.cfg.LineSize)
				return
			}
			copy(ln.data, data)
		}
	}
}
