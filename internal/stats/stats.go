// Package stats defines the runtime-statistics report the simulator
// produces: static and dynamic instruction mixes, per-unit busy cycles,
// cache and predictor statistics, FLOPs, IPC, wall time and more — the
// content of the paper's Runtime Statistics window (§II-D).
package stats

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"riscvsim/internal/cache"
	"riscvsim/internal/memory"
	"riscvsim/internal/predictor"
	"riscvsim/internal/rename"
)

// FUStat is the utilization of one functional unit.
type FUStat struct {
	Name       string  `json:"name"`
	Class      string  `json:"class"`
	BusyCycles uint64  `json:"busyCycles"`
	BusyPct    float64 `json:"busyPct"`
	ExecCount  uint64  `json:"execCount"`
}

// LSUStat mirrors the load/store pipeline counters.
type LSUStat struct {
	Loads          uint64 `json:"loads"`
	Stores         uint64 `json:"stores"`
	Forwards       uint64 `json:"forwards"`
	StallsUnknown  uint64 `json:"stallsUnknownAddr"`
	StallsPartial  uint64 `json:"stallsPartialOverlap"`
	BusBusyCycles  uint64 `json:"busBusyCycles"`
	LoadBufStalls  uint64 `json:"loadBufferFullStalls"`
	StoreBufStalls uint64 `json:"storeBufferFullStalls"`
}

// Report is the complete runtime-statistics document. It serializes to
// JSON for the web client and formats as text for the CLI.
type Report struct {
	Architecture string `json:"architecture"`

	// Headline counters (the right-hand status bar's default view).
	Cycles      uint64  `json:"cycles"`
	Committed   uint64  `json:"committedInstructions"`
	Fetched     uint64  `json:"fetchedInstructions"`
	Squashed    uint64  `json:"squashedInstructions"`
	IPC         float64 `json:"ipc"`
	WallTimeSec float64 `json:"wallTimeSec"`

	// Expanded view.
	Flops        uint64  `json:"flops"`
	FlopsPerSec  float64 `json:"flopsPerSec"`
	ROBFlushes   uint64  `json:"robFlushes"`
	HaltReason   string  `json:"haltReason,omitempty"`
	ExceptionMsg string  `json:"exception,omitempty"`

	// Instruction mixes by class (kArithmetic, kLoad, ...).
	StaticMix  map[string]uint64 `json:"staticMix"`
	DynamicMix map[string]uint64 `json:"dynamicMix"`

	// Subsystem statistics.
	FUs          []FUStat        `json:"functionalUnits"`
	LSU          LSUStat         `json:"lsu"`
	Predictor    predictor.Stats `json:"predictor"`
	PredAccuracy float64         `json:"predictorAccuracy"`
	Cache        cache.Stats     `json:"cache"`
	CacheHitRate float64         `json:"cacheHitRate"`
	Memory       memory.Stats    `json:"memory"`
	Rename       rename.Stats    `json:"rename"`
	FetchStalls  uint64          `json:"fetchStallCycles"`
	DecodeStalls uint64          `json:"decodeStallCycles"`
	CommitStalls uint64          `json:"commitStallCycles"`
	ROBOccupancy float64         `json:"robMeanOccupancy"`
	WindowOccup  float64         `json:"windowMeanOccupancy"`
	WindowStalls uint64          `json:"windowFullStalls"`
	RenameStalls uint64          `json:"renameFullStalls"`
}

// JSON serializes the report with indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatText renders the report for terminal output, mirroring the
// statistics window's sections (paper Fig. 10).
func (r *Report) FormatText() string {
	var sb strings.Builder
	sec := func(title string) {
		fmt.Fprintf(&sb, "\n── %s %s\n", title, strings.Repeat("─", max(0, 58-len(title))))
	}
	row := func(k string, v any) { fmt.Fprintf(&sb, "  %-34s %v\n", k, v) }

	fmt.Fprintf(&sb, "Runtime statistics — %s\n", r.Architecture)
	sec("Execution")
	row("total executed cycles", r.Cycles)
	row("committed instructions", r.Committed)
	row("fetched instructions", r.Fetched)
	row("squashed instructions", r.Squashed)
	row("IPC", fmt.Sprintf("%.3f", r.IPC))
	row("wall time [s]", fmt.Sprintf("%.6g", r.WallTimeSec))
	row("FLOPs", r.Flops)
	row("FLOP/s", fmt.Sprintf("%.4g", r.FlopsPerSec))
	row("reorder buffer flushes", r.ROBFlushes)
	if r.HaltReason != "" {
		row("halt reason", r.HaltReason)
	}
	if r.ExceptionMsg != "" {
		row("exception", r.ExceptionMsg)
	}

	sec("Instruction mix (static / dynamic)")
	keys := map[string]bool{}
	for k := range r.StaticMix {
		keys[k] = true
	}
	for k := range r.DynamicMix {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var statTotal, dynTotal uint64
	for _, k := range sorted {
		statTotal += r.StaticMix[k]
		dynTotal += r.DynamicMix[k]
	}
	for _, k := range sorted {
		st, dy := r.StaticMix[k], r.DynamicMix[k]
		row(k, fmt.Sprintf("%6d (%5.1f%%)  /  %8d (%5.1f%%)",
			st, pct(st, statTotal), dy, pct(dy, dynTotal)))
	}

	sec("Functional units")
	for _, fu := range r.FUs {
		row(fmt.Sprintf("%s (%s)", fu.Name, fu.Class),
			fmt.Sprintf("busy %8d cycles (%5.1f%%), %8d ops", fu.BusyCycles, fu.BusyPct, fu.ExecCount))
	}

	sec("Branch prediction")
	row("predictions", r.Predictor.Predictions)
	row("correct", r.Predictor.Correct)
	row("mispredictions", r.Predictor.Mispredicts)
	row("accuracy", fmt.Sprintf("%.2f%%", r.PredAccuracy*100))
	row("BTB hits / misses", fmt.Sprintf("%d / %d", r.Predictor.BTBHits, r.Predictor.BTBMisses))

	sec("L1 cache")
	row("accesses", r.Cache.Accesses)
	row("hits / misses", fmt.Sprintf("%d / %d", r.Cache.Hits, r.Cache.Misses))
	row("hit rate", fmt.Sprintf("%.2f%%", r.CacheHitRate*100))
	row("evictions / writebacks", fmt.Sprintf("%d / %d", r.Cache.Evictions, r.Cache.Writebacks))
	row("bytes written to memory", r.Cache.BytesWritten)

	sec("Memory & pipeline")
	row("memory reads / writes", fmt.Sprintf("%d / %d", r.Memory.Reads, r.Memory.Writes))
	row("loads / stores executed", fmt.Sprintf("%d / %d", r.LSU.Loads, r.LSU.Stores))
	row("store-to-load forwards", r.LSU.Forwards)
	row("disambiguation stalls", r.LSU.StallsUnknown+r.LSU.StallsPartial)
	row("fetch stall cycles", r.FetchStalls)
	row("rename-file stalls", r.RenameStalls)
	row("window-full stalls", r.WindowStalls)
	row("ROB mean occupancy", fmt.Sprintf("%.2f", r.ROBOccupancy))
	row("rename registers in use", r.Rename.InUse)
	return sb.String()
}

func pct(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
