package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"riscvsim/internal/cache"
	"riscvsim/internal/predictor"
)

func sampleReport() *Report {
	return &Report{
		Architecture: "test-arch",
		Cycles:       1000,
		Committed:    1500,
		Fetched:      1600,
		Squashed:     50,
		IPC:          1.5,
		WallTimeSec:  1e-5,
		Flops:        42,
		ROBFlushes:   3,
		StaticMix:    map[string]uint64{"kArithmetic": 10, "kLoad": 5},
		DynamicMix:   map[string]uint64{"kArithmetic": 900, "kLoad": 400, "kJumpbranch": 200},
		FUs: []FUStat{
			{Name: "FX0", Class: "FX", BusyCycles: 700, BusyPct: 70, ExecCount: 800},
		},
		Predictor:    predictor.Stats{Predictions: 200, Correct: 180, Mispredicts: 20},
		PredAccuracy: 0.9,
		Cache:        cache.Stats{Accesses: 400, Hits: 380, Misses: 20},
		CacheHitRate: 0.95,
	}
}

func TestFormatTextSections(t *testing.T) {
	text := sampleReport().FormatText()
	for _, want := range []string{
		"test-arch",
		"total executed cycles",
		"IPC",
		"Instruction mix",
		"kArithmetic",
		"Functional units",
		"FX0",
		"Branch prediction",
		"90.00%",
		"L1 cache",
		"95.00%",
		"reorder buffer flushes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != r.Cycles || back.IPC != r.IPC ||
		back.DynamicMix["kArithmetic"] != 900 || len(back.FUs) != 1 {
		t.Error("JSON round trip lost data")
	}
}

func TestPercentHelper(t *testing.T) {
	if pct(1, 4) != 25 {
		t.Error("pct(1,4) != 25")
	}
	if pct(1, 0) != 0 {
		t.Error("pct with zero total should be 0")
	}
}

func TestEmptyReportFormats(t *testing.T) {
	var r Report
	if text := r.FormatText(); text == "" {
		t.Error("empty report should still render")
	}
}
