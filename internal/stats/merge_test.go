package stats

import (
	"math"
	"testing"

	"riscvsim/internal/cache"
	"riscvsim/internal/memory"
	"riscvsim/internal/predictor"
	"riscvsim/internal/rename"
)

// intervalReport builds a synthetic interval report scaled by f, with
// derived rates computed the way Simulation.Report would.
func intervalReport(f uint64) *Report {
	cycles := 1000 * f
	r := &Report{
		Architecture: "test-arch",
		Cycles:       cycles,
		Committed:    1300 * f,
		Fetched:      1700 * f,
		Squashed:     90 * f,
		Flops:        17 * f,
		ROBFlushes:   3 * f,
		HaltReason:   "",
		StaticMix:    map[string]uint64{"kArithmetic": 10, "kLoad": 5},
		DynamicMix:   map[string]uint64{"kArithmetic": 900 * f, "kLoad": 400 * f},
		FUs: []FUStat{
			{Name: "FX0", Class: "FX", BusyCycles: 700 * f, ExecCount: 800 * f},
			{Name: "L/S", Class: "LS", BusyCycles: 300 * f, ExecCount: 350 * f},
		},
		Predictor:    predictor.Stats{Predictions: 200 * f, Correct: 180 * f, Mispredicts: 20 * f, BTBHits: 11 * f, BTBMisses: 7 * f},
		Cache:        cache.Stats{Accesses: 400 * f, Hits: 380 * f, Misses: 20 * f, Evictions: 6 * f, Writebacks: 4 * f, BytesWritten: 256 * f},
		Memory:       memory.Stats{Reads: 30 * f, Writes: 12 * f, BytesRead: 960 * f, BytesWritten: 384 * f},
		Rename:       rename.Stats{Allocations: 1200 * f, StallsEmpty: 2 * f, InUse: int(3 * f), Free: 61},
		FetchStalls:  40 * f,
		DecodeStalls: 30 * f,
		CommitStalls: 20 * f,
		RenameStalls: 10 * f,
		WindowStalls: 5 * f,
		WallTimeSec:  float64(cycles) / 1e8,
	}
	deriveRates(r, 12*cycles, 3*cycles)
	return r
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// reportsEqual compares two reports: integer fields exactly, floats to
// 1e-9 relative (derived rates are recomputed float divisions).
func reportsEqual(t *testing.T, ctx string, a, b *Report) {
	t.Helper()
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	check := func(name string, x, y any) {
		t.Helper()
		switch xv := x.(type) {
		case uint64:
			if xv != y.(uint64) {
				t.Errorf("%s: %s = %d, want %d\n%s\nvs\n%s", ctx, name, xv, y, ja, jb)
			}
		case float64:
			if !floatsClose(xv, y.(float64)) {
				t.Errorf("%s: %s = %v, want %v", ctx, name, xv, y)
			}
		case string:
			if xv != y.(string) {
				t.Errorf("%s: %s = %q, want %q", ctx, name, xv, y)
			}
		}
	}
	check("cycles", a.Cycles, b.Cycles)
	check("committed", a.Committed, b.Committed)
	check("fetched", a.Fetched, b.Fetched)
	check("squashed", a.Squashed, b.Squashed)
	check("flops", a.Flops, b.Flops)
	check("robFlushes", a.ROBFlushes, b.ROBFlushes)
	check("ipc", a.IPC, b.IPC)
	check("wallTimeSec", a.WallTimeSec, b.WallTimeSec)
	check("flopsPerSec", a.FlopsPerSec, b.FlopsPerSec)
	check("haltReason", a.HaltReason, b.HaltReason)
	check("exception", a.ExceptionMsg, b.ExceptionMsg)
	check("predAccuracy", a.PredAccuracy, b.PredAccuracy)
	check("cacheHitRate", a.CacheHitRate, b.CacheHitRate)
	check("robOccupancy", a.ROBOccupancy, b.ROBOccupancy)
	check("windowOccup", a.WindowOccup, b.WindowOccup)
	check("fetchStalls", a.FetchStalls, b.FetchStalls)
	check("decodeStalls", a.DecodeStalls, b.DecodeStalls)
	check("commitStalls", a.CommitStalls, b.CommitStalls)
	check("renameStalls", a.RenameStalls, b.RenameStalls)
	check("windowStalls", a.WindowStalls, b.WindowStalls)
	for k, v := range b.DynamicMix {
		check("dynamicMix."+k, a.DynamicMix[k], v)
	}
	for k, v := range b.StaticMix {
		check("staticMix."+k, a.StaticMix[k], v)
	}
	if len(a.FUs) != len(b.FUs) {
		t.Fatalf("%s: %d FUs, want %d", ctx, len(a.FUs), len(b.FUs))
	}
	for i := range a.FUs {
		check("fu.name", a.FUs[i].Name, b.FUs[i].Name)
		check("fu.busyCycles", a.FUs[i].BusyCycles, b.FUs[i].BusyCycles)
		check("fu.execCount", a.FUs[i].ExecCount, b.FUs[i].ExecCount)
		check("fu.busyPct", a.FUs[i].BusyPct, b.FUs[i].BusyPct)
	}
	check("pred.predictions", a.Predictor.Predictions, b.Predictor.Predictions)
	check("pred.correct", a.Predictor.Correct, b.Predictor.Correct)
	check("pred.mispredicts", a.Predictor.Mispredicts, b.Predictor.Mispredicts)
	check("cache.accesses", a.Cache.Accesses, b.Cache.Accesses)
	check("cache.hits", a.Cache.Hits, b.Cache.Hits)
	check("cache.misses", a.Cache.Misses, b.Cache.Misses)
	check("cache.writebacks", a.Cache.Writebacks, b.Cache.Writebacks)
	check("mem.reads", a.Memory.Reads, b.Memory.Reads)
	check("mem.writes", a.Memory.Writes, b.Memory.Writes)
	check("lsu.loads", a.LSU.Loads, b.LSU.Loads)
	check("lsu.stores", a.LSU.Stores, b.LSU.Stores)
	check("lsu.forwards", a.LSU.Forwards, b.LSU.Forwards)
	check("rename.allocations", a.Rename.Allocations, b.Rename.Allocations)
}

// TestMergeAssociative: Merge(a, Merge(b, c)) == Merge(Merge(a, b), c)
// on intervals of very different sizes.
func TestMergeAssociative(t *testing.T) {
	a, b, c := intervalReport(1), intervalReport(37), intervalReport(5000)
	c.HaltReason = "pipeline empty"
	left := Merge(Merge(a, b), c)
	right := Merge(a, Merge(b, c))
	reportsEqual(t, "associativity", left, right)
}

// TestMergeNilIdentity: nil is the fold seed.
func TestMergeNilIdentity(t *testing.T) {
	a := intervalReport(7)
	reportsEqual(t, "nil left", Merge(nil, a), a)
	reportsEqual(t, "nil right", Merge(a, nil), a)
	if Merge(nil, nil) != nil {
		t.Error("Merge(nil, nil) != nil")
	}
}

// TestDiffMergeRoundTrip: Merge(prefix, Diff(full, prefix)) == full —
// the split-at-any-boundary identity on synthetic snapshots where the
// prefix is a strict prefix of the full run.
func TestDiffMergeRoundTrip(t *testing.T) {
	prefix := intervalReport(3)
	full := intervalReport(11)
	full.HaltReason = "pipeline empty"
	got := Merge(prefix, Diff(full, prefix))
	reportsEqual(t, "round trip", got, full)
}

// TestDiffSaturates: a misordered Diff degrades to zeros, not wraps.
func TestDiffSaturates(t *testing.T) {
	small, big := intervalReport(2), intervalReport(5)
	d := Diff(small, big)
	if d.Cycles != 0 || d.Committed != 0 {
		t.Errorf("misordered diff: cycles=%d committed=%d, want 0", d.Cycles, d.Committed)
	}
}

// TestMergeDoesNotAliasInputs: merged maps/slices are fresh copies.
func TestMergeDoesNotAliasInputs(t *testing.T) {
	a, b := intervalReport(2), intervalReport(3)
	m := Merge(a, b)
	m.DynamicMix["kArithmetic"] = 1
	m.FUs[0].BusyCycles = 1
	if a.DynamicMix["kArithmetic"] == 1 || b.DynamicMix["kArithmetic"] == 1 {
		t.Error("merged DynamicMix aliases an input")
	}
	if a.FUs[0].BusyCycles == 1 || b.FUs[0].BusyCycles == 1 {
		t.Error("merged FUs alias an input")
	}
}
