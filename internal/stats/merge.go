package stats

import "math"

// Diff and Merge make the statistics report an interval algebra: Diff
// slices one run's counters into an interval ([start, end) as the delta
// of two snapshots of the same machine), Merge stitches adjacent
// intervals back together. Both recompute every derived rate from the
// integer counters they produce, so for any boundary
//
//	Merge(prefix, Diff(full, prefix)) == full
//
// holds exactly on all integer counters (and to float rounding on the
// recomputed rates) — the property time-parallel simulation
// (sim/parallel.go) relies on to stitch per-interval statistics into one
// serial-equivalent report. Merge is associative: integer counters sum,
// cycle-weighted means reconstruct their integer sums first.
//
// Non-additive fields take the chronologically later side: HaltReason,
// ExceptionMsg and the Rename.InUse/Free gauges describe the end of the
// combined interval, StaticMix and Architecture are static properties.

// Diff returns the interval report end minus start: two snapshots of the
// same run, start taken earlier. Counter subtraction saturates at zero
// so a misordered pair degrades to zeros instead of wrapping.
func Diff(end, start *Report) *Report {
	if start == nil {
		return cloneReport(end)
	}
	d := cloneReport(end)
	d.Cycles = subU64(end.Cycles, start.Cycles)
	d.Committed = subU64(end.Committed, start.Committed)
	d.Fetched = subU64(end.Fetched, start.Fetched)
	d.Squashed = subU64(end.Squashed, start.Squashed)
	d.Flops = subU64(end.Flops, start.Flops)
	d.ROBFlushes = subU64(end.ROBFlushes, start.ROBFlushes)
	d.FetchStalls = subU64(end.FetchStalls, start.FetchStalls)
	d.DecodeStalls = subU64(end.DecodeStalls, start.DecodeStalls)
	d.CommitStalls = subU64(end.CommitStalls, start.CommitStalls)
	d.RenameStalls = subU64(end.RenameStalls, start.RenameStalls)
	d.WindowStalls = subU64(end.WindowStalls, start.WindowStalls)

	d.DynamicMix = map[string]uint64{}
	for k, v := range end.DynamicMix {
		if n := subU64(v, start.DynamicMix[k]); n != 0 {
			d.DynamicMix[k] = n
		}
	}

	d.Predictor.Predictions = subU64(end.Predictor.Predictions, start.Predictor.Predictions)
	d.Predictor.Correct = subU64(end.Predictor.Correct, start.Predictor.Correct)
	d.Predictor.Mispredicts = subU64(end.Predictor.Mispredicts, start.Predictor.Mispredicts)
	d.Predictor.BTBHits = subU64(end.Predictor.BTBHits, start.Predictor.BTBHits)
	d.Predictor.BTBMisses = subU64(end.Predictor.BTBMisses, start.Predictor.BTBMisses)

	d.Cache.Accesses = subU64(end.Cache.Accesses, start.Cache.Accesses)
	d.Cache.Hits = subU64(end.Cache.Hits, start.Cache.Hits)
	d.Cache.Misses = subU64(end.Cache.Misses, start.Cache.Misses)
	d.Cache.Evictions = subU64(end.Cache.Evictions, start.Cache.Evictions)
	d.Cache.Writebacks = subU64(end.Cache.Writebacks, start.Cache.Writebacks)
	d.Cache.BytesWritten = subU64(end.Cache.BytesWritten, start.Cache.BytesWritten)

	d.Memory.Reads = subU64(end.Memory.Reads, start.Memory.Reads)
	d.Memory.Writes = subU64(end.Memory.Writes, start.Memory.Writes)
	d.Memory.BytesRead = subU64(end.Memory.BytesRead, start.Memory.BytesRead)
	d.Memory.BytesWritten = subU64(end.Memory.BytesWritten, start.Memory.BytesWritten)

	d.Rename.Allocations = subU64(end.Rename.Allocations, start.Rename.Allocations)
	d.Rename.StallsEmpty = subU64(end.Rename.StallsEmpty, start.Rename.StallsEmpty)
	// InUse/Free are gauges, not counters: keep end's (cloned).

	d.LSU = LSUStat{
		Loads:          subU64(end.LSU.Loads, start.LSU.Loads),
		Stores:         subU64(end.LSU.Stores, start.LSU.Stores),
		Forwards:       subU64(end.LSU.Forwards, start.LSU.Forwards),
		StallsUnknown:  subU64(end.LSU.StallsUnknown, start.LSU.StallsUnknown),
		StallsPartial:  subU64(end.LSU.StallsPartial, start.LSU.StallsPartial),
		BusBusyCycles:  subU64(end.LSU.BusBusyCycles, start.LSU.BusBusyCycles),
		LoadBufStalls:  subU64(end.LSU.LoadBufStalls, start.LSU.LoadBufStalls),
		StoreBufStalls: subU64(end.LSU.StoreBufStalls, start.LSU.StoreBufStalls),
	}

	for i := range d.FUs {
		var s FUStat
		if i < len(start.FUs) && start.FUs[i].Name == d.FUs[i].Name {
			s = start.FUs[i]
		} else {
			s = findFU(start.FUs, d.FUs[i].Name)
		}
		d.FUs[i].BusyCycles = subU64(end.FUs[i].BusyCycles, s.BusyCycles)
		d.FUs[i].ExecCount = subU64(end.FUs[i].ExecCount, s.ExecCount)
	}

	d.WallTimeSec = end.WallTimeSec - start.WallTimeSec
	robSum := subU64(occSum(end.ROBOccupancy, end.Cycles, 1), occSum(start.ROBOccupancy, start.Cycles, 1))
	winSum := subU64(occSum(end.WindowOccup, end.Cycles, 4), occSum(start.WindowOccup, start.Cycles, 4))
	deriveRates(d, robSum, winSum)
	return d
}

// Merge returns the concatenation of two adjacent interval reports, a
// chronologically before b. It is nil-tolerant (Merge(nil, b) clones b)
// so a fold over intervals needs no seed report.
func Merge(a, b *Report) *Report {
	if a == nil {
		return cloneReport(b)
	}
	if b == nil {
		return cloneReport(a)
	}
	m := cloneReport(b) // later side: halt story, gauges, static fields
	if m.Architecture == "" {
		m.Architecture = a.Architecture
	}
	if m.HaltReason == "" {
		m.HaltReason = a.HaltReason
	}
	if m.ExceptionMsg == "" {
		m.ExceptionMsg = a.ExceptionMsg
	}
	if len(m.StaticMix) == 0 {
		m.StaticMix = cloneU64Map(a.StaticMix)
	}
	m.Cycles = a.Cycles + b.Cycles
	m.Committed = a.Committed + b.Committed
	m.Fetched = a.Fetched + b.Fetched
	m.Squashed = a.Squashed + b.Squashed
	m.Flops = a.Flops + b.Flops
	m.ROBFlushes = a.ROBFlushes + b.ROBFlushes
	m.FetchStalls = a.FetchStalls + b.FetchStalls
	m.DecodeStalls = a.DecodeStalls + b.DecodeStalls
	m.CommitStalls = a.CommitStalls + b.CommitStalls
	m.RenameStalls = a.RenameStalls + b.RenameStalls
	m.WindowStalls = a.WindowStalls + b.WindowStalls

	m.DynamicMix = cloneU64Map(b.DynamicMix)
	for k, v := range a.DynamicMix {
		m.DynamicMix[k] += v
	}

	m.Predictor.Predictions = a.Predictor.Predictions + b.Predictor.Predictions
	m.Predictor.Correct = a.Predictor.Correct + b.Predictor.Correct
	m.Predictor.Mispredicts = a.Predictor.Mispredicts + b.Predictor.Mispredicts
	m.Predictor.BTBHits = a.Predictor.BTBHits + b.Predictor.BTBHits
	m.Predictor.BTBMisses = a.Predictor.BTBMisses + b.Predictor.BTBMisses

	m.Cache.Accesses = a.Cache.Accesses + b.Cache.Accesses
	m.Cache.Hits = a.Cache.Hits + b.Cache.Hits
	m.Cache.Misses = a.Cache.Misses + b.Cache.Misses
	m.Cache.Evictions = a.Cache.Evictions + b.Cache.Evictions
	m.Cache.Writebacks = a.Cache.Writebacks + b.Cache.Writebacks
	m.Cache.BytesWritten = a.Cache.BytesWritten + b.Cache.BytesWritten

	m.Memory.Reads = a.Memory.Reads + b.Memory.Reads
	m.Memory.Writes = a.Memory.Writes + b.Memory.Writes
	m.Memory.BytesRead = a.Memory.BytesRead + b.Memory.BytesRead
	m.Memory.BytesWritten = a.Memory.BytesWritten + b.Memory.BytesWritten

	m.Rename.Allocations = a.Rename.Allocations + b.Rename.Allocations
	m.Rename.StallsEmpty = a.Rename.StallsEmpty + b.Rename.StallsEmpty

	m.LSU = LSUStat{
		Loads:          a.LSU.Loads + b.LSU.Loads,
		Stores:         a.LSU.Stores + b.LSU.Stores,
		Forwards:       a.LSU.Forwards + b.LSU.Forwards,
		StallsUnknown:  a.LSU.StallsUnknown + b.LSU.StallsUnknown,
		StallsPartial:  a.LSU.StallsPartial + b.LSU.StallsPartial,
		BusBusyCycles:  a.LSU.BusBusyCycles + b.LSU.BusBusyCycles,
		LoadBufStalls:  a.LSU.LoadBufStalls + b.LSU.LoadBufStalls,
		StoreBufStalls: a.LSU.StoreBufStalls + b.LSU.StoreBufStalls,
	}

	if len(m.FUs) == 0 {
		m.FUs = cloneFUs(a.FUs)
	} else {
		for i := range m.FUs {
			var s FUStat
			if i < len(a.FUs) && a.FUs[i].Name == m.FUs[i].Name {
				s = a.FUs[i]
			} else {
				s = findFU(a.FUs, m.FUs[i].Name)
			}
			m.FUs[i].BusyCycles += s.BusyCycles
			m.FUs[i].ExecCount += s.ExecCount
		}
	}

	m.WallTimeSec = a.WallTimeSec + b.WallTimeSec
	robSum := occSum(a.ROBOccupancy, a.Cycles, 1) + occSum(b.ROBOccupancy, b.Cycles, 1)
	winSum := occSum(a.WindowOccup, a.Cycles, 4) + occSum(b.WindowOccup, b.Cycles, 4)
	deriveRates(m, robSum, winSum)
	return m
}

// deriveRates recomputes every derived float of r from its (already
// combined) integer counters, mirroring Simulation.Report's formulas.
// robSum/winSum are the reconstructed integer occupancy sums.
func deriveRates(r *Report, robSum, winSum uint64) {
	r.IPC, r.FlopsPerSec, r.ROBOccupancy, r.WindowOccup = 0, 0, 0, 0
	if r.Cycles > 0 {
		r.IPC = float64(r.Committed) / float64(r.Cycles)
		if r.WallTimeSec > 0 {
			r.FlopsPerSec = float64(r.Flops) / r.WallTimeSec
		}
		r.ROBOccupancy = float64(robSum) / float64(r.Cycles)
		r.WindowOccup = float64(winSum) / float64(r.Cycles*4)
	}
	r.PredAccuracy = r.Predictor.Accuracy()
	r.CacheHitRate = r.Cache.HitRate()
	for i := range r.FUs {
		r.FUs[i].BusyPct = 0
		if r.Cycles > 0 {
			r.FUs[i].BusyPct = 100 * float64(r.FUs[i].BusyCycles) / float64(r.Cycles)
		}
	}
}

// occSum reconstructs the integer occupancy sum behind a mean-per-cycle
// gauge (mean = sum/(cycles*div)). The core's sums are far below 2^53,
// so the float round-trip is exact and Merge stays associative.
func occSum(mean float64, cycles uint64, div uint64) uint64 {
	return uint64(math.Round(mean * float64(cycles*div)))
}

func subU64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

func findFU(fus []FUStat, name string) FUStat {
	for _, fu := range fus {
		if fu.Name == name {
			return fu
		}
	}
	return FUStat{}
}

func cloneU64Map(m map[string]uint64) map[string]uint64 {
	c := make(map[string]uint64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func cloneFUs(fus []FUStat) []FUStat {
	if fus == nil {
		return nil
	}
	return append([]FUStat(nil), fus...)
}

func cloneReport(r *Report) *Report {
	if r == nil {
		return nil
	}
	c := *r
	c.StaticMix = cloneU64Map(r.StaticMix)
	c.DynamicMix = cloneU64Map(r.DynamicMix)
	c.FUs = cloneFUs(r.FUs)
	return &c
}
