// Package trace is the structured pipeline-trace subsystem: a typed,
// machine-readable record of every stage transition a dynamic instruction
// makes while flowing through the superscalar pipeline. It is the seam the
// web visualization, verification diffing (à la ISS-driven RTL checking)
// and profiling tooling plug into — where the debug log carries free-form
// prose, a trace carries StageEvents.
//
// The core emits events through the Tracer interface. The default is no
// tracer at all: the hot loop guards every emission with a nil check, so a
// simulation that nobody watches pays nothing (BenchmarkSimTraceOff in the
// repo root pins this). The bundled Ring collector keeps a bounded window
// of events and can reconstruct Konata/Chronograph-style instruction
// lifetimes and a textual pipeline diagram from it.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Stage identifies one pipeline stage transition. The values are wire
// format (JSON marshals the lowercase name) — append only.
type Stage uint8

// Pipeline stages, in the order a healthy instruction visits them.
const (
	StageFetch Stage = iota
	StageDecode
	StageRename
	StageDispatch
	StageIssue
	StageExecute
	StageWriteback
	StageCommit
	StageSquash
	numStages
)

// NumStages is the number of defined stages.
const NumStages = int(numStages)

var stageNames = [...]string{
	"fetch", "decode", "rename", "dispatch", "issue",
	"execute", "writeback", "commit", "squash",
}

// String names the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Letter is the single-character mark used in pipeline diagrams.
func (s Stage) Letter() byte {
	const letters = "FDRPIEWCX"
	if int(s) < len(letters) {
		return letters[s]
	}
	return '?'
}

// ParseStage resolves a stage name.
func ParseStage(name string) (Stage, error) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown stage %q (want one of %s)",
		name, strings.Join(stageNames[:], ", "))
}

// MarshalJSON writes the stage name, keeping the wire format readable.
func (s Stage) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, s.String()), nil
}

// UnmarshalJSON reads a stage name.
func (s *Stage) UnmarshalJSON(data []byte) error {
	name, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("trace: bad stage %s", data)
	}
	st, err := ParseStage(name)
	if err != nil {
		return err
	}
	*s = st
	return nil
}

// StageEvent is one stage transition of one dynamic instruction. Events
// are emitted in deterministic simulation order: ascending cycle, and
// within a cycle in pipeline-walk order (commit first, like the core's
// block schedule).
type StageEvent struct {
	// Cycle is the clock cycle the transition happened in.
	Cycle uint64 `json:"cycle"`
	// InstrID is the dynamic instruction number (fetch order, 1-based).
	InstrID uint64 `json:"instrId"`
	// PC is the code index the instruction was fetched from.
	PC int `json:"pc"`
	// Disasm is the instruction's disassembly text.
	Disasm string `json:"disasm"`
	// Stage is the transition's pipeline stage.
	Stage Stage `json:"stage"`
	// Detail carries stage-specific context (rename tag, FU name,
	// resolved branch target, effective address, squash cause).
	Detail string `json:"detail,omitempty"`
}

// Tracer receives stage events from the core. Implementations must not
// retain the event past the call (the core may reuse buffers); the Ring
// collector copies. A nil Tracer is the documented "off" state — the core
// nil-checks before every emission.
type Tracer interface {
	Trace(ev StageEvent)
}

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

// StageMask is a bit set of stages.
type StageMask uint16

// AllStages has every stage enabled.
const AllStages = StageMask(1<<numStages - 1)

// Has reports whether the stage is in the set.
func (m StageMask) Has(s Stage) bool { return m&(1<<s) != 0 }

// With adds a stage to the set.
func (m StageMask) With(s Stage) StageMask { return m | 1<<s }

// String renders the mask in the filter grammar (comma-separated names,
// or "all").
func (m StageMask) String() string {
	if m == AllStages {
		return "all"
	}
	var names []string
	for s := Stage(0); s < numStages; s++ {
		if m.Has(s) {
			names = append(names, s.String())
		}
	}
	return strings.Join(names, ",")
}

// ParseStages parses the stage-filter grammar: a comma-separated list of
// stage names; "" and "all" mean every stage.
func ParseStages(spec string) (StageMask, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return AllStages, nil
	}
	var m StageMask
	for _, part := range strings.Split(spec, ",") {
		s, err := ParseStage(strings.TrimSpace(part))
		if err != nil {
			return 0, err
		}
		m = m.With(s)
	}
	return m, nil
}

// Filter selects which events a collector keeps.
type Filter struct {
	// Stages is the stage set to keep (zero value keeps nothing; use
	// AllStages for everything).
	Stages StageMask
	// PCMin/PCMax bound the instruction PC, inclusive. PCMax < 0 means
	// no upper bound.
	PCMin, PCMax int
}

// NoFilter keeps every event.
var NoFilter = Filter{Stages: AllStages, PCMin: 0, PCMax: -1}

// Match reports whether the event passes the filter.
func (f Filter) Match(ev *StageEvent) bool {
	if !f.Stages.Has(ev.Stage) {
		return false
	}
	if ev.PC < f.PCMin {
		return false
	}
	if f.PCMax >= 0 && ev.PC > f.PCMax {
		return false
	}
	return true
}

// ParsePCRange parses the PC-range filter grammar "lo:hi" (inclusive code
// indices); either side may be empty ("" or ":" means unbounded).
func ParsePCRange(spec string) (lo, hi int, err error) {
	lo, hi = 0, -1
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return lo, hi, nil
	}
	loStr, hiStr, found := strings.Cut(spec, ":")
	if !found {
		return 0, 0, fmt.Errorf("trace: bad pc range %q (want \"lo:hi\")", spec)
	}
	if loStr = strings.TrimSpace(loStr); loStr != "" {
		if lo, err = strconv.Atoi(loStr); err != nil || lo < 0 {
			return 0, 0, fmt.Errorf("trace: bad pc range lower bound %q", loStr)
		}
	}
	if hiStr = strings.TrimSpace(hiStr); hiStr != "" {
		if hi, err = strconv.Atoi(hiStr); err != nil || hi < lo {
			return 0, 0, fmt.Errorf("trace: bad pc range upper bound %q", hiStr)
		}
	}
	return lo, hi, nil
}

// ParseFilter combines the stage and PC grammars into a Filter.
func ParseFilter(stages, pcRange string) (Filter, error) {
	m, err := ParseStages(stages)
	if err != nil {
		return Filter{}, err
	}
	lo, hi, err := ParsePCRange(pcRange)
	if err != nil {
		return Filter{}, err
	}
	return Filter{Stages: m, PCMin: lo, PCMax: hi}, nil
}

// ---------------------------------------------------------------------------
// Ring collector
// ---------------------------------------------------------------------------

// Ring is a bounded ring-buffer Tracer: it keeps the newest capacity
// events that pass its filter, counting what it saw and what it dropped.
// The zero value is not usable; build with NewRing.
type Ring struct {
	buf     []StageEvent
	start   int // oldest element when full
	n       int // occupied
	filter  Filter
	total   uint64 // matched events offered
	dropped uint64 // matched events evicted by the bound
}

// NewRing builds a ring collector keeping at most capacity events that
// pass the filter.
func NewRing(capacity int, f Filter) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]StageEvent, capacity), filter: f}
}

// Filter returns the ring's filter. The core queries it (via the
// optional Filterer interface) to skip building events for unwanted
// stages at the emission site.
func (r *Ring) Filter() Filter { return r.filter }

// Filterer is the optional Tracer extension that lets the emitter skip
// stages the sink will discard anyway.
type Filterer interface {
	Filter() Filter
}

// WantedStages returns the stage set a tracer cares about: its filter's
// mask when it exposes one, otherwise every stage.
func WantedStages(t Tracer) StageMask {
	if f, ok := t.(Filterer); ok {
		return f.Filter().Stages
	}
	return AllStages
}

// Trace implements Tracer.
func (r *Ring) Trace(ev StageEvent) {
	if !r.filter.Match(&ev) {
		return
	}
	r.total++
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Len returns the number of buffered events.
func (r *Ring) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns how many events matched the filter overall.
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns how many matched events the bound evicted.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the buffered events oldest-first (a copy).
func (r *Ring) Events() []StageEvent {
	out := make([]StageEvent, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// Reset empties the ring and clears the counters.
func (r *Ring) Reset() {
	r.start, r.n, r.total, r.dropped = 0, 0, 0, 0
}

// ---------------------------------------------------------------------------
// Lifetimes and occupancy reconstruction
// ---------------------------------------------------------------------------

// Lifetime is one instruction's reconstructed pipeline timeline: for each
// stage, the cycle it was reached (0 = not observed). This is the
// Konata/Chronograph instruction-lifetime model.
type Lifetime struct {
	InstrID  uint64            `json:"instrId"`
	PC       int               `json:"pc"`
	Disasm   string            `json:"disasm"`
	Stages   [NumStages]uint64 `json:"stages"`
	Squashed bool              `json:"squashed"`
}

// First returns the earliest observed cycle (0 when none).
func (l *Lifetime) First() uint64 {
	var min uint64
	for _, c := range l.Stages {
		if c != 0 && (min == 0 || c < min) {
			min = c
		}
	}
	return min
}

// Last returns the latest observed cycle.
func (l *Lifetime) Last() uint64 {
	var max uint64
	for _, c := range l.Stages {
		if c > max {
			max = c
		}
	}
	return max
}

// StageAt returns the newest stage reached at or before the cycle, and
// whether any stage was reached by then.
func (l *Lifetime) StageAt(cycle uint64) (Stage, bool) {
	best, found := Stage(0), false
	var bestCycle uint64
	for s := Stage(0); s < numStages; s++ {
		c := l.Stages[s]
		if c != 0 && c <= cycle && c >= bestCycle {
			best, bestCycle, found = s, c, true
		}
	}
	return best, found
}

// Lifetimes folds a stream of events into per-instruction timelines,
// sorted by dynamic instruction ID. When the event window saw a stage
// more than once for the same instruction (cannot happen in a single
// run), the last event wins.
func Lifetimes(events []StageEvent) []Lifetime {
	byID := make(map[uint64]*Lifetime)
	order := make([]uint64, 0, 16)
	for i := range events {
		ev := &events[i]
		lt, ok := byID[ev.InstrID]
		if !ok {
			lt = &Lifetime{InstrID: ev.InstrID, PC: ev.PC, Disasm: ev.Disasm}
			byID[ev.InstrID] = lt
			order = append(order, ev.InstrID)
		}
		lt.Stages[ev.Stage] = ev.Cycle
		if ev.Stage == StageSquash {
			lt.Squashed = true
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]Lifetime, len(order))
	for i, id := range order {
		out[i] = *byID[id]
	}
	return out
}

// Occupancy reconstructs the per-cycle pipeline snapshot at the given
// cycle: every instruction in flight (first observed stage ≤ cycle ≤ last
// observed stage) with the newest stage it had reached. IDs ascend.
type Occupant struct {
	InstrID uint64 `json:"instrId"`
	PC      int    `json:"pc"`
	Disasm  string `json:"disasm"`
	Stage   Stage  `json:"stage"`
}

// Occupancy computes the snapshot from reconstructed lifetimes.
func Occupancy(lifetimes []Lifetime, cycle uint64) []Occupant {
	var out []Occupant
	for i := range lifetimes {
		lt := &lifetimes[i]
		first, last := lt.First(), lt.Last()
		if first == 0 || cycle < first || cycle > last {
			continue
		}
		st, ok := lt.StageAt(cycle)
		if !ok {
			continue
		}
		out = append(out, Occupant{InstrID: lt.InstrID, PC: lt.PC, Disasm: lt.Disasm, Stage: st})
	}
	return out
}
