package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestStageStringAndParseRoundTrip(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		got, err := ParseStage(s.String())
		if err != nil {
			t.Fatalf("ParseStage(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseStage("warp"); err == nil {
		t.Error("ParseStage accepted unknown stage")
	}
}

func TestStageJSONIsName(t *testing.T) {
	data, err := json.Marshal(StageEvent{Cycle: 3, InstrID: 1, Stage: StageWriteback})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"stage":"writeback"`) {
		t.Errorf("stage not marshalled by name: %s", data)
	}
	var ev StageEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Stage != StageWriteback {
		t.Errorf("unmarshalled stage = %v", ev.Stage)
	}
	if err := json.Unmarshal([]byte(`{"stage":"warp"}`), &ev); err == nil {
		t.Error("unmarshal accepted unknown stage name")
	}
}

func TestParseStagesGrammar(t *testing.T) {
	cases := []struct {
		spec string
		want StageMask
		err  bool
	}{
		{"", AllStages, false},
		{"all", AllStages, false},
		{"fetch", StageMask(0).With(StageFetch), false},
		{"fetch, commit", StageMask(0).With(StageFetch).With(StageCommit), false},
		{"commit,squash", StageMask(0).With(StageCommit).With(StageSquash), false},
		{"bogus", 0, true},
		{"fetch,,commit", 0, true},
	}
	for _, c := range cases {
		got, err := ParseStages(c.spec)
		if (err != nil) != c.err {
			t.Errorf("ParseStages(%q) err = %v, want err=%v", c.spec, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseStages(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParsePCRangeGrammar(t *testing.T) {
	cases := []struct {
		spec   string
		lo, hi int
		err    bool
	}{
		{"", 0, -1, false},
		{":", 0, -1, false},
		{"3:9", 3, 9, false},
		{"3:", 3, -1, false},
		{":9", 0, 9, false},
		{"9:3", 0, 0, true},
		{"x:3", 0, 0, true},
		{"7", 0, 0, true},
	}
	for _, c := range cases {
		lo, hi, err := ParsePCRange(c.spec)
		if (err != nil) != c.err {
			t.Errorf("ParsePCRange(%q) err = %v, want err=%v", c.spec, err, c.err)
			continue
		}
		if err == nil && (lo != c.lo || hi != c.hi) {
			t.Errorf("ParsePCRange(%q) = %d:%d, want %d:%d", c.spec, lo, hi, c.lo, c.hi)
		}
	}
}

func TestFilterMatch(t *testing.T) {
	f := Filter{Stages: StageMask(0).With(StageCommit), PCMin: 2, PCMax: 5}
	if !f.Match(&StageEvent{Stage: StageCommit, PC: 3}) {
		t.Error("in-range commit should match")
	}
	if f.Match(&StageEvent{Stage: StageFetch, PC: 3}) {
		t.Error("fetch should not match a commit-only filter")
	}
	if f.Match(&StageEvent{Stage: StageCommit, PC: 1}) || f.Match(&StageEvent{Stage: StageCommit, PC: 6}) {
		t.Error("out-of-range PCs should not match")
	}
	open := Filter{Stages: AllStages, PCMin: 0, PCMax: -1}
	if !open.Match(&StageEvent{Stage: StageSquash, PC: 1 << 20}) {
		t.Error("NoFilter-shaped filter should match everything")
	}
}

func TestRingBoundsAndCounts(t *testing.T) {
	r := NewRing(4, NoFilter)
	for i := 1; i <= 10; i++ {
		r.Trace(StageEvent{Cycle: uint64(i), InstrID: uint64(i), Stage: StageFetch})
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (newest window)", i, ev.Cycle, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Errorf("reset left state: len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
}

func TestRingFilters(t *testing.T) {
	f := Filter{Stages: StageMask(0).With(StageCommit), PCMin: 0, PCMax: -1}
	r := NewRing(16, f)
	r.Trace(StageEvent{Stage: StageFetch, InstrID: 1})
	r.Trace(StageEvent{Stage: StageCommit, InstrID: 1})
	if r.Len() != 1 || r.Total() != 1 {
		t.Errorf("filtered ring kept %d events (total %d), want 1", r.Len(), r.Total())
	}
}

// syntheticRun emits a two-instruction lifetime with a squashed third.
func syntheticRun() []StageEvent {
	mk := func(c, id uint64, pc int, s Stage) StageEvent {
		return StageEvent{Cycle: c, InstrID: id, PC: pc, Disasm: "op", Stage: s}
	}
	return []StageEvent{
		mk(1, 1, 0, StageFetch),
		mk(1, 2, 1, StageFetch),
		mk(2, 1, 0, StageDecode), mk(2, 1, 0, StageRename), mk(2, 1, 0, StageDispatch),
		mk(2, 2, 1, StageDecode), mk(2, 2, 1, StageRename), mk(2, 2, 1, StageDispatch),
		mk(2, 3, 2, StageFetch),
		mk(3, 1, 0, StageIssue),
		mk(4, 1, 0, StageExecute), mk(4, 1, 0, StageWriteback),
		mk(4, 2, 1, StageIssue),
		mk(5, 2, 1, StageExecute), mk(5, 2, 1, StageWriteback),
		mk(5, 1, 0, StageCommit),
		mk(6, 2, 1, StageCommit),
		mk(6, 3, 2, StageSquash),
	}
}

func TestLifetimesReconstruction(t *testing.T) {
	lts := Lifetimes(syntheticRun())
	if len(lts) != 3 {
		t.Fatalf("got %d lifetimes, want 3", len(lts))
	}
	one := lts[0]
	if one.InstrID != 1 || one.Stages[StageFetch] != 1 || one.Stages[StageCommit] != 5 {
		t.Errorf("instr 1 lifetime wrong: %+v", one)
	}
	if one.First() != 1 || one.Last() != 5 {
		t.Errorf("instr 1 window = [%d,%d], want [1,5]", one.First(), one.Last())
	}
	if !lts[2].Squashed {
		t.Error("instr 3 should be squashed")
	}
	if st, ok := one.StageAt(3); !ok || st != StageIssue {
		t.Errorf("instr 1 at cycle 3 = %v/%v, want issue", st, ok)
	}
}

func TestOccupancySnapshot(t *testing.T) {
	lts := Lifetimes(syntheticRun())
	occ := Occupancy(lts, 4)
	if len(occ) != 3 {
		t.Fatalf("cycle-4 occupancy = %d instructions, want 3 (wrong-path #3 is in flight until its squash)", len(occ))
	}
	if occ[0].InstrID != 1 || occ[0].Stage != StageWriteback {
		t.Errorf("occ[0] = %+v, want instr 1 in writeback", occ[0])
	}
	if occ[1].InstrID != 2 || occ[1].Stage != StageIssue {
		t.Errorf("occ[1] = %+v, want instr 2 in issue", occ[1])
	}
	if occ[2].InstrID != 3 || occ[2].Stage != StageFetch {
		t.Errorf("occ[2] = %+v, want instr 3 still in fetch", occ[2])
	}
	if got := Occupancy(lts, 99); len(got) != 0 {
		t.Errorf("occupancy past the window = %v, want empty", got)
	}
}

func TestDiagramShape(t *testing.T) {
	out := Diagram(Lifetimes(syntheticRun()), 0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header (2 lines) + one row per instruction.
	if len(lines) != 5 {
		t.Fatalf("diagram has %d lines, want 5:\n%s", len(lines), out)
	}
	// Same-cycle stages keep the furthest progress: decode/rename/dispatch
	// collapse to P, execute/writeback to W.
	row1 := lines[2]
	for _, mark := range []string{"F", "P", "I", "W", "C"} {
		if !strings.Contains(row1, mark) {
			t.Errorf("row for instr 1 missing %q: %q", mark, row1)
		}
	}
	if !strings.Contains(lines[4], "X") {
		t.Errorf("squashed row missing X: %q", lines[4])
	}
	if !strings.Contains(lines[0], "cycle 1") {
		t.Errorf("header missing cycle origin: %q", lines[0])
	}
}

func TestDiagramTruncatesWideWindows(t *testing.T) {
	lts := []Lifetime{{InstrID: 1, PC: 0, Disasm: "op"}}
	lts[0].Stages[StageFetch] = 1
	lts[0].Stages[StageCommit] = 500
	out := Diagram(lts, 100)
	if !strings.Contains(out, "earlier cycles not shown") {
		t.Errorf("wide diagram should note truncation:\n%s", out)
	}
	if strings.Contains(out, "F") {
		t.Errorf("truncated diagram should not show the out-of-window fetch:\n%s", out)
	}
	if !strings.Contains(out, "C") {
		t.Errorf("truncated diagram must keep the newest cycles:\n%s", out)
	}
}

func TestDiagramEmpty(t *testing.T) {
	if out := Diagram(nil, 0); !strings.Contains(out, "no events") {
		t.Errorf("empty diagram = %q", out)
	}
}
