package trace

import (
	"fmt"
	"strings"
)

// Diagram renders instruction lifetimes as a textual pipeline diagram —
// one row per instruction, one column per cycle, with each stage marked
// by its letter (F fetch, D decode, R rename, P dispatch, I issue,
// E execute, W writeback, C commit, X squash) and '.' filling the cycles
// an instruction spent waiting between stages. It is the CLI's equivalent
// of the Konata pipeline view.
//
// maxCols bounds the cycle axis (0 = a sensible default of 120 columns);
// when the window is wider than the bound, the diagram keeps the newest
// cycles and notes how many it skipped.
func Diagram(lifetimes []Lifetime, maxCols int) string {
	if len(lifetimes) == 0 {
		return "trace: no events\n"
	}
	if maxCols <= 0 {
		maxCols = 120
	}

	// The cycle window covered by the lifetimes.
	var lo, hi uint64
	for i := range lifetimes {
		first, last := lifetimes[i].First(), lifetimes[i].Last()
		if first == 0 {
			continue
		}
		if lo == 0 || first < lo {
			lo = first
		}
		if last > hi {
			hi = last
		}
	}
	if lo == 0 {
		return "trace: no events\n"
	}
	skipped := uint64(0)
	if span := hi - lo + 1; span > uint64(maxCols) {
		skipped = span - uint64(maxCols)
		lo = hi - uint64(maxCols) + 1
	}
	cols := int(hi - lo + 1)

	// Left gutter: "#id @pc disasm", width-aligned.
	labels := make([]string, len(lifetimes))
	gutter := 0
	for i := range lifetimes {
		lt := &lifetimes[i]
		labels[i] = fmt.Sprintf("#%d @%d %s", lt.InstrID, lt.PC, lt.Disasm)
		if len(labels[i]) > gutter {
			gutter = len(labels[i])
		}
	}
	const maxGutter = 42
	if gutter > maxGutter {
		gutter = maxGutter
	}

	var b strings.Builder
	if skipped > 0 {
		fmt.Fprintf(&b, "(%d earlier cycles not shown)\n", skipped)
	}
	// Cycle axis header: tick marks every 10 columns.
	fmt.Fprintf(&b, "%-*s cycle %d\n", gutter, "", lo)
	b.WriteString(strings.Repeat(" ", gutter+1))
	for c := 0; c < cols; c++ {
		if (uint64(c)+lo)%10 == 0 {
			b.WriteByte('|')
		} else {
			b.WriteByte(' ')
		}
	}
	b.WriteByte('\n')

	for i := range lifetimes {
		lt := &lifetimes[i]
		label := labels[i]
		if len(label) > gutter {
			label = label[:gutter-1] + "…"
		}
		fmt.Fprintf(&b, "%-*s ", gutter, label)

		row := make([]byte, cols)
		for j := range row {
			row[j] = ' '
		}
		first, last := lt.First(), lt.Last()
		for c := first; c <= last; c++ {
			if c < lo {
				continue
			}
			row[c-lo] = '.'
		}
		for s := Stage(0); s < numStages; s++ {
			c := lt.Stages[s]
			if c == 0 || c < lo {
				continue
			}
			// Later stages overwrite earlier marks landing in the same
			// cycle (e.g. decode+rename+dispatch in one cycle), keeping
			// the furthest progress visible.
			row[c-lo] = s.Letter()
		}
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}
