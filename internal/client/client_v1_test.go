package client

// Tests of the v1-only client features: batch fan-out, NDJSON streaming,
// codec selection and the machine-readable error surface.

import (
	"strings"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/internal/server"
)

func TestClientSimulateBatch(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	reqs := []api.SimulateRequest{
		{Code: prog},
		{Code: "bogus instr\n"},
		{Code: prog, IncludeState: true},
	}
	resp, err := c.SimulateBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 2 || resp.Failed != 1 || len(resp.Results) != 3 {
		t.Fatalf("batch: %+v", resp)
	}
	if resp.Results[0].Response == nil || resp.Results[0].Response.Stats.Committed != 2 {
		t.Errorf("item 0: %+v", resp.Results[0].Response)
	}
	if e := resp.Results[1].Error; e == nil || e.Code != api.CodeBuildFailed {
		t.Errorf("item 1 error: %+v", resp.Results[1].Error)
	}
	if resp.Results[2].Response == nil || resp.Results[2].Response.State == nil {
		t.Error("item 2 missing requested state")
	}
}

func TestClientStream(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	var events []*api.StreamEvent
	final, err := c.Stream(&api.StreamRequest{
		SimulateRequest: api.SimulateRequest{Code: prog},
		StepBurst:       1,
	}, func(ev *api.StreamEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	if !final.Done || !final.Halted || final.Stats == nil || final.Stats.Committed != 2 {
		t.Errorf("final event: %+v", final)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestClientStreamSurfacesBuildErrors(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	_, err := c.Stream(&api.StreamRequest{
		SimulateRequest: api.SimulateRequest{Code: "bogus instr\n"},
	}, nil)
	if err == nil || !strings.Contains(err.Error(), api.CodeBuildFailed) {
		t.Errorf("err = %v, want the %s envelope", err, api.CodeBuildFailed)
	}
}

func TestClientErrorCarriesStableCode(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	_, err := c.Simulate(&api.SimulateRequest{Code: prog, Preset: "nope"})
	if err == nil || !strings.Contains(err.Error(), api.CodeUnknownPreset) {
		t.Errorf("err = %v, want [%s] tag", err, api.CodeUnknownPreset)
	}
}

func TestClientCodecSelection(t *testing.T) {
	for _, codec := range []string{"json", "pooled"} {
		c, closeFn := Local(server.DefaultOptions())
		c.UseCodec(codec)
		resp, err := c.Simulate(&api.SimulateRequest{Code: prog, IncludeState: true})
		closeFn()
		if err != nil {
			t.Fatalf("codec %s: %v", codec, err)
		}
		if resp.State == nil || resp.Stats.Committed != 2 {
			t.Errorf("codec %s returned a wrong document: %+v", codec, resp)
		}
	}
}

func TestClientBatchMetricsVisible(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	if _, err := c.SimulateBatch([]api.SimulateRequest{{Code: prog}, {Code: prog}}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.BatchRequests != 1 || m.BatchSimulations != 2 {
		t.Errorf("batch metrics: %+v", m)
	}
	if len(m.Codecs) == 0 {
		t.Error("per-codec metrics missing from /api/v1/metrics")
	}
}
