package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"riscvsim/internal/api"
)

// TestRetryableClassification pins the retryable-vs-terminal contract:
// only conditions where no simulation work happened (shed, placement
// failure) may be blindly re-sent. Everything that implies state moved
// or the request itself is wrong is terminal.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
	}{
		{"node_unavailable", &APIError{Code: api.CodeNodeUnavailable, Status: 502}, true},
		{"over_capacity", &APIError{Code: api.CodeOverCapacity, Status: 429}, true},
		{"untyped 429", &APIError{Status: http.StatusTooManyRequests}, true},
		{"untyped 503", &APIError{Status: http.StatusServiceUnavailable}, true},
		{"session_moved", &APIError{Code: api.CodeSessionMoved, Status: 410}, false},
		{"unknown_session", &APIError{Code: api.CodeUnknownSession, Status: 404}, false},
		// deadline_exceeded left the session at whatever state the work
		// reached; a blind retry of a step would double-execute.
		{"deadline_exceeded", &APIError{Code: api.CodeDeadlineExceeded, Status: 504}, false},
		{"bad_request", &APIError{Code: api.CodeBadRequest, Status: 400}, false},
		{"build_failed", &APIError{Code: api.CodeBuildFailed, Status: 422}, false},
		{"internal", &APIError{Code: api.CodeInternal, Status: 500}, false},
		{"untyped 500", &APIError{Status: 500}, false},
		{"transport error", errors.New("dial tcp: connection refused"), false},
		{"wrapped retryable", fmt.Errorf("step: %w", &APIError{Code: api.CodeOverCapacity, Status: 429}), true},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Retryable(tc.err); got != tc.retryable {
				t.Fatalf("Retryable(%v) = %v, want %v", tc.err, got, tc.retryable)
			}
		})
	}
}

// shedThenServe sheds the first n requests with the given code/status,
// then serves real simulations.
func shedThenServe(t *testing.T, n int, status int, code string, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{Err: api.Error{Code: code, Message: "shed"}})
			return
		}
		json.NewEncoder(w).Encode(api.SimulateResponse{Cycles: 42})
	})
	return httptest.NewServer(h), &calls
}

// TestClientRetriesOverCapacity: a shed 429 over_capacity with
// Retry-After is retried and eventually succeeds.
func TestClientRetriesOverCapacity(t *testing.T) {
	ts, calls := shedThenServe(t, 2, http.StatusTooManyRequests, api.CodeOverCapacity, "0")
	defer ts.Close()
	c := NewForURL(ts.URL, false)
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	resp, err := c.Simulate(&api.SimulateRequest{Code: "nop\n"})
	if err != nil {
		t.Fatalf("simulate after retries: %v", err)
	}
	if resp.Cycles != 42 {
		t.Fatalf("cycles = %d, want 42", resp.Cycles)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 shed + 1 success)", got)
	}
}

// TestClientRetryExhaustionSurfacesTypedError: when every attempt is
// shed, the final typed error (with its code) reaches the caller.
func TestClientRetryExhaustionSurfacesTypedError(t *testing.T) {
	ts, calls := shedThenServe(t, 1000, http.StatusServiceUnavailable, api.CodeNodeUnavailable, "")
	defer ts.Close()
	c := NewForURL(ts.URL, false)
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, err := c.Simulate(&api.SimulateRequest{Code: "nop\n"})
	if ErrorCode(err) != api.CodeNodeUnavailable {
		t.Fatalf("err = %v, want node_unavailable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (1 + 2 retries)", got)
	}
}

// TestClientNoRetryOnTerminal: a terminal typed error is never re-sent,
// even with a generous retry policy.
func TestClientNoRetryOnTerminal(t *testing.T) {
	for _, code := range []string{api.CodeSessionMoved, api.CodeDeadlineExceeded, api.CodeBadRequest} {
		t.Run(code, func(t *testing.T) {
			ts, calls := shedThenServe(t, 1000, http.StatusBadRequest, code, "")
			defer ts.Close()
			c := NewForURL(ts.URL, false)
			c.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseBackoff: time.Millisecond})
			_, err := c.Simulate(&api.SimulateRequest{Code: "nop\n"})
			if ErrorCode(err) != code {
				t.Fatalf("err = %v, want %s", err, code)
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("server saw %d calls, want exactly 1 (no retries on terminal %s)", got, code)
			}
		})
	}
}

// TestRetryAfterHintRespected: the server's Retry-After hint is used
// (capped at MaxBackoff) in preference to the exponential schedule.
func TestRetryAfterHintRespected(t *testing.T) {
	c := NewForURL("http://unused", false)
	c.SetRetryPolicy(RetryPolicy{MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	hinted := &APIError{Code: api.CodeOverCapacity, Status: 429, RetryAfter: 30 * time.Millisecond}
	if d := c.retryDelay(0, hinted); d != 30*time.Millisecond {
		t.Fatalf("retryDelay with hint = %v, want 30ms", d)
	}
	huge := &APIError{Code: api.CodeOverCapacity, Status: 429, RetryAfter: time.Hour}
	if d := c.retryDelay(0, huge); d != 50*time.Millisecond {
		t.Fatalf("retryDelay with oversized hint = %v, want MaxBackoff 50ms", d)
	}
	// Without a hint: jittered exponential stays within (0, MaxBackoff].
	plain := &APIError{Code: api.CodeOverCapacity, Status: 429}
	for attempt := 0; attempt < 10; attempt++ {
		d := c.retryDelay(attempt, plain)
		if d <= 0 || d > 50*time.Millisecond {
			t.Fatalf("retryDelay(attempt=%d) = %v outside (0, 50ms]", attempt, d)
		}
	}
}

// TestDecodeErrorParsesRetryAfter pins the header parse.
func TestDecodeErrorParsesRetryAfter(t *testing.T) {
	h := http.Header{}
	h.Set("Retry-After", "2")
	body, _ := json.Marshal(api.ErrorEnvelope{Err: api.Error{Code: api.CodeOverCapacity, Message: "shed"}})
	err := decodeError("/api/v1/simulate", 429, h, body)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("decodeError returned %T, want *APIError", err)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s", ae.RetryAfter)
	}
	if ae.Code != api.CodeOverCapacity {
		t.Fatalf("Code = %q", ae.Code)
	}
}
