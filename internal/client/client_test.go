package client

import (
	"strings"
	"testing"

	"riscvsim/internal/server"
)

const prog = `
li t0, 40
addi a0, t0, 2
`

func TestLocalClientSimulate(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	resp, err := c.Simulate(&server.SimulateRequest{Code: prog, IncludeState: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Halted || resp.Stats.Committed != 2 {
		t.Errorf("resp = halted=%v committed=%d", resp.Halted, resp.Stats.Committed)
	}
	found := false
	for _, r := range resp.State.IntRegs {
		if r.Name == "x10" && r.Value == "42" {
			found = true
		}
	}
	if !found {
		t.Error("a0 != 42")
	}
}

func TestClientGzipRoundTrip(t *testing.T) {
	// gzip on both directions through the middleware.
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	resp, err := c.Simulate(&server.SimulateRequest{Code: prog})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatal("no stats")
	}
	// And with gzip disabled server-side.
	c2, close2 := Local(server.Options{DisableGzip: true})
	defer close2()
	if _, err := c2.Simulate(&server.SimulateRequest{Code: prog}); err != nil {
		t.Fatal(err)
	}
}

func TestClientCompile(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	resp, err := c.Compile(&server.CompileRequest{Code: "int main() { return 1; }", Optimize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Assembly, "main:") {
		t.Errorf("assembly = %q", resp.Assembly)
	}
}

func TestClientSessionFlow(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	sess, err := c.NewSession(&server.SessionNewRequest{
		SimulateRequest: server.SimulateRequest{Code: prog},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Step(sess.SessionID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Cycle != 2 {
		t.Errorf("cycle = %d", st.State.Cycle)
	}
	st, err = c.Goto(sess.SessionID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Cycle != 1 {
		t.Errorf("goto cycle = %d", st.State.Cycle)
	}
	if err := c.CloseSession(sess.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(sess.SessionID, 1); err == nil {
		t.Error("step after close should fail")
	}
}

func TestClientErrorSurface(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	_, err := c.Simulate(&server.SimulateRequest{Code: "bogus instr\n"})
	if err == nil || !strings.Contains(err.Error(), "unknown instruction") {
		t.Errorf("err = %v, want the server diagnostic", err)
	}
}

func TestClientMetrics(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	c.Simulate(&server.SimulateRequest{Code: prog})
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Error("metrics empty")
	}
}

func TestNewBuildsHostPortURL(t *testing.T) {
	c := New("example.com", 1234, true)
	if c.base != "http://example.com:1234" {
		t.Errorf("base = %q", c.base)
	}
}
