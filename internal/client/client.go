// Package client implements the simulator's client side: a thin typed
// wrapper over the server's versioned JSON API (/api/v1) used by the CLI
// (paper §II-E: "The CLI must be connected to the server using host and
// port parameters"). An in-process mode (Local) runs the same code path
// without a network.
//
// The client speaks the v1 contract from riscvsim/internal/api: it
// negotiates the pooled codec, understands the machine-readable error
// envelope, fans sweeps out through Client.SimulateBatch, and consumes
// NDJSON streams through Client.Stream.
package client

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/server"
)

// Client talks to a simulation server.
type Client struct {
	base  string
	http  *http.Client
	gzip  bool
	codec string // codec negotiated via Accept/Content-Type
	retry RetryPolicy
}

// RetryPolicy makes the client ride out transient tier conditions
// (docs/robustness.md): node_unavailable (a replica died mid-failover)
// and over_capacity / 503 (admission shed) responses are retried with
// capped jittered exponential backoff, honoring a Retry-After header
// when the server sent one. Terminal conditions — session_moved,
// unknown_session, every validation error — never retry. The zero
// value disables retries (the historical behavior).
type RetryPolicy struct {
	// MaxRetries caps re-sends after the first attempt (0 = no retries).
	MaxRetries int
	// BaseBackoff is the first retry's nominal delay (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth and any Retry-After hint
	// (default 2s).
	MaxBackoff time.Duration
}

// SetRetryPolicy installs a retry policy on the client.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	c.retry = p
}

// New builds a client for the given host/port. useGzip compresses request
// bodies and advertises gzip responses.
func New(host string, port int, useGzip bool) *Client {
	return NewForURL(fmt.Sprintf("http://%s:%d", host, port), useGzip)
}

// NewForURL builds a client for a full base URL (tests, load generator).
func NewForURL(base string, useGzip bool) *Client {
	tr := &http.Transport{DisableCompression: !useGzip, MaxIdleConnsPerHost: 256}
	return &Client{
		base:  base,
		http:  &http.Client{Transport: tr, Timeout: 120 * time.Second},
		gzip:  useGzip,
		codec: api.PooledCodec.Name(),
	}
}

// UseCodec selects the server-side codec ("json" or "pooled") the client
// asks for; unknown names fall back to the server default.
func (c *Client) UseCodec(name string) { c.codec = name }

// Local builds a client wired directly to an in-process server — the same
// JSON code path without a real socket.
func Local(opts server.Options) (*Client, func()) {
	srv := server.New(opts)
	ts := httptest.NewServer(srv.Handler())
	c := NewForURL(ts.URL, !opts.DisableGzip)
	return c, ts.Close
}

// mediaType is the Content-Type/Accept value carrying codec negotiation.
func (c *Client) mediaType() string {
	if c.codec == "" {
		return api.MediaTypeJSON
	}
	return api.MediaTypeJSON + "; " + api.CodecParam + "=" + c.codec
}

// newRequest builds a POST with the encoded body and protocol headers.
func (c *Client) newRequest(path string, req any) (*http.Request, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	var rd io.Reader = bytes.NewReader(body)
	if c.gzip {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		gz.Write(body)
		gz.Close()
		rd = &buf
		hreq.Header.Set("Content-Encoding", "gzip")
	}
	hreq.Body = io.NopCloser(rd)
	hreq.Header.Set("Content-Type", c.mediaType())
	hreq.Header.Set("Accept", c.mediaType())
	return hreq, nil
}

// APIError is a non-200 server response carrying the v1 envelope's
// stable error code. Callers dispatch on Code via ErrorCode.
type APIError struct {
	Path    string
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's backoff hint (429/503 shed responses),
	// zero when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s: [%s] %s", e.Path, e.Code, e.Message)
}

// ErrorCode extracts the stable v1 error code from a client error, or
// "" for transport errors and pre-v1 responses. Routed deployments
// dispatch on api.CodeSessionMoved / api.CodeNodeUnavailable with it.
func ErrorCode(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// decodeError turns a non-200 response into an error carrying the v1
// envelope's stable code (and the Retry-After hint) when present.
func decodeError(path string, status int, header http.Header, data []byte) error {
	var retryAfter time.Duration
	if header != nil {
		if s := header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
	}
	var env api.ErrorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Err.Message != "" {
		return &APIError{Path: path, Status: status, Code: env.Err.Code, Message: env.Err.Message, RetryAfter: retryAfter}
	}
	// Pre-v1 servers used a bare string envelope.
	var legacy struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &legacy) == nil && legacy.Error != "" {
		return fmt.Errorf("client: %s: %s", path, legacy.Error)
	}
	return fmt.Errorf("client: %s: HTTP %d", path, status)
}

// Retryable reports whether an error is a transient tier condition a
// client may safely re-send the same request for: the request was shed
// or could not be placed, so no simulation work happened.
// session_moved, unknown_session, deadline_exceeded (session state
// advanced!) and validation errors are terminal.
func Retryable(err error) bool {
	var ae *APIError
	if !errors.As(err, &ae) {
		return false
	}
	switch ae.Code {
	case api.CodeNodeUnavailable, api.CodeOverCapacity:
		return true
	}
	// A shedding proxy in front of an old server may 429/503 without a
	// typed envelope.
	return ae.Code == "" && (ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable)
}

// retryDelay computes attempt's backoff (0-based): the server's
// Retry-After hint when given, else jittered exponential from
// BaseBackoff — both capped at MaxBackoff.
func (c *Client) retryDelay(attempt int, err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return min(ae.RetryAfter, c.retry.MaxBackoff)
	}
	d := c.retry.BaseBackoff
	for i := 0; i < attempt && d < c.retry.MaxBackoff; i++ {
		d *= 2
	}
	d = min(d, c.retry.MaxBackoff)
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// post sends a JSON request and decodes the JSON response, retrying
// transient typed failures under the client's RetryPolicy.
func (c *Client) post(path string, req, resp any) error {
	err := c.postOnce(path, req, resp)
	for attempt := 0; attempt < c.retry.MaxRetries && Retryable(err); attempt++ {
		time.Sleep(c.retryDelay(attempt, err))
		err = c.postOnce(path, req, resp)
	}
	return err
}

// postOnce sends one JSON request and decodes the JSON response.
func (c *Client) postOnce(path string, req, resp any) error {
	hreq, err := c.newRequest(path, req)
	if err != nil {
		return err
	}
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if hresp.StatusCode != http.StatusOK {
		return decodeError(path, hresp.StatusCode, hresp.Header, data)
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Simulate runs a batch simulation.
func (c *Client) Simulate(req *api.SimulateRequest) (*api.SimulateResponse, error) {
	var resp api.SimulateResponse
	if err := c.post(api.V1Prefix+"/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SimulateBatch fans N independent simulations out in one round trip;
// the server runs them on a bounded worker pool. Per-item failures come
// back inside BatchResponse.Results, not as a call error.
func (c *Client) SimulateBatch(reqs []api.SimulateRequest) (*api.BatchResponse, error) {
	var resp api.BatchResponse
	if err := c.post(api.V1Prefix+"/batch", &api.BatchRequest{Requests: reqs}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RunSuite executes the embedded workload corpus (optionally filtered)
// against one architecture on the server and returns the typed
// per-workload metrics report. The server fans the corpus out across its
// batch worker pool; rows come back in corpus order.
func (c *Client) RunSuite(req *api.SuiteRequest) (*api.SuiteResponse, error) {
	var resp api.SuiteResponse
	if err := c.post(api.V1Prefix+"/suite", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stream opens an NDJSON streaming simulation and calls fn for every
// event. It returns the final (Done) event. fn returning an error aborts
// the stream and surfaces that error.
func (c *Client) Stream(req *api.StreamRequest, fn func(*api.StreamEvent) error) (*api.StreamEvent, error) {
	path := api.V1Prefix + "/session/stream"
	hreq, err := c.newRequest(path, req)
	if err != nil {
		return nil, err
	}
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(hresp.Body)
		return nil, decodeError(path, hresp.StatusCode, hresp.Header, data)
	}
	dec := json.NewDecoder(bufio.NewReader(hresp.Body))
	var last *api.StreamEvent
	for {
		var ev api.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("client: decoding %s event: %w", path, err)
		}
		last = &ev
		if fn != nil {
			if err := fn(&ev); err != nil {
				return nil, err
			}
		}
		if ev.Done {
			break
		}
	}
	if last == nil || !last.Done {
		return nil, fmt.Errorf("client: %s: stream ended without a final event", path)
	}
	return last, nil
}

// SimulateWithTrace runs a batch simulation with the pipeline-trace
// collector attached, returning the response with its Trace result. A
// nil opts traces every stage with the default ring bound.
func (c *Client) SimulateWithTrace(req *api.SimulateRequest, opts *api.TraceOptions) (*api.SimulateResponse, error) {
	traced := *req
	if opts == nil {
		opts = &api.TraceOptions{}
	}
	traced.Trace = opts
	resp, err := c.Simulate(&traced)
	if err != nil {
		return nil, err
	}
	if resp.Trace == nil {
		return nil, fmt.Errorf("client: server returned no trace (pre-trace server?)")
	}
	return resp, nil
}

// StreamTrace opens an NDJSON pipeline-trace stream and calls fn for
// every stage event. It returns the final summary line. fn returning an
// error aborts the stream and surfaces that error.
func (c *Client) StreamTrace(req *api.TraceStreamRequest, fn func(*api.TraceStreamEvent) error) (*api.TraceStreamEvent, error) {
	path := api.V1Prefix + "/session/trace"
	hreq, err := c.newRequest(path, req)
	if err != nil {
		return nil, err
	}
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(hresp.Body)
		return nil, decodeError(path, hresp.StatusCode, hresp.Header, data)
	}
	dec := json.NewDecoder(bufio.NewReader(hresp.Body))
	var last *api.TraceStreamEvent
	for {
		var ev api.TraceStreamEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("client: decoding %s event: %w", path, err)
		}
		last = &ev
		if fn != nil {
			if err := fn(&ev); err != nil {
				return nil, err
			}
		}
		if ev.Done {
			break
		}
	}
	if last == nil || !last.Done {
		return nil, fmt.Errorf("client: %s: trace stream ended without a summary", path)
	}
	return last, nil
}

// SessionLog pages through a session's debug log: entries from
// sinceCycle on, plus the cycle to resume paging from.
func (c *Client) SessionLog(id string, sinceCycle uint64) (*api.SessionLogResponse, error) {
	path := fmt.Sprintf("%s/session/%s/log?since_cycle=%d", api.V1Prefix, url.PathEscape(id), sinceCycle)
	hresp, err := c.http.Get(c.base + path)
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(path, hresp.StatusCode, hresp.Header, data)
	}
	var resp api.SessionLogResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return &resp, nil
}

// Compile translates C to assembly on the server.
func (c *Client) Compile(req *api.CompileRequest) (*api.CompileResponse, error) {
	var resp api.CompileResponse
	if err := c.post(api.V1Prefix+"/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// NewSession opens an interactive session.
func (c *Client) NewSession(req *api.SessionNewRequest) (*api.SessionNewResponse, error) {
	var resp api.SessionNewResponse
	if err := c.post(api.V1Prefix+"/session/new", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Step advances (or rewinds, with negative steps) a session.
func (c *Client) Step(id string, steps int64) (*api.SessionStateResponse, error) {
	var resp api.SessionStateResponse
	err := c.post(api.V1Prefix+"/session/step", &api.SessionStepRequest{SessionID: id, Steps: steps}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Goto jumps a session to an absolute cycle.
func (c *Client) Goto(id string, cycle uint64) (*api.SessionStateResponse, error) {
	var resp api.SessionStateResponse
	err := c.post(api.V1Prefix+"/session/goto", &api.SessionGotoRequest{SessionID: id, Cycle: cycle}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// CloseSession ends a session.
func (c *Client) CloseSession(id string) error {
	return c.post(api.V1Prefix+"/session/close", &api.SessionCloseRequest{SessionID: id}, nil)
}

// Checkpoint snapshots a session into the self-contained binary format.
// The returned bytes restore on this server, another server running a
// compatible format version, or locally through sim.Restore.
func (c *Client) Checkpoint(id string) (*api.SessionCheckpointResponse, error) {
	var resp api.SessionCheckpointResponse
	err := c.post(api.V1Prefix+"/session/checkpoint", &api.SessionCheckpointRequest{SessionID: id}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// RestoreSession opens a fresh interactive session from a checkpoint,
// resuming exactly where the snapshot left off.
func (c *Client) RestoreSession(checkpoint []byte) (*api.SessionNewResponse, error) {
	var resp api.SessionNewResponse
	err := c.post(api.V1Prefix+"/session/restore", &api.SessionRestoreRequest{Checkpoint: checkpoint}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SimulateBatchFrom fans N simulations out like SimulateBatch, but forks
// every entry from the shared base checkpoint instead of replaying the
// warm-up prefix from cycle zero.
func (c *Client) SimulateBatchFrom(base []byte, reqs []api.SimulateRequest) (*api.BatchResponse, error) {
	var resp api.BatchResponse
	req := &api.BatchRequest{Requests: reqs, BaseCheckpoint: base}
	if err := c.post(api.V1Prefix+"/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the server's instrumentation counters.
func (c *Client) Metrics() (*api.Metrics, error) {
	hresp, err := c.http.Get(c.base + api.V1Prefix + "/metrics")
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	var m api.Metrics
	if err := json.NewDecoder(hresp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
