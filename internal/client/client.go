// Package client implements the simulator's client side: a thin typed
// wrapper over the server's JSON API used by the CLI (paper §II-E: "The
// CLI must be connected to the server using host and port parameters").
// An in-process mode (Local) runs the same code path without a network.
package client

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"riscvsim/internal/server"
)

// Client talks to a simulation server.
type Client struct {
	base string
	http *http.Client
	gzip bool
}

// New builds a client for the given host/port. useGzip compresses request
// bodies and advertises gzip responses.
func New(host string, port int, useGzip bool) *Client {
	tr := &http.Transport{DisableCompression: !useGzip}
	return &Client{
		base: fmt.Sprintf("http://%s:%d", host, port),
		http: &http.Client{Transport: tr, Timeout: 120 * time.Second},
		gzip: useGzip,
	}
}

// NewForURL builds a client for a full base URL (tests, load generator).
func NewForURL(base string, useGzip bool) *Client {
	tr := &http.Transport{DisableCompression: !useGzip, MaxIdleConnsPerHost: 256}
	return &Client{
		base: base,
		http: &http.Client{Transport: tr, Timeout: 120 * time.Second},
		gzip: useGzip,
	}
}

// Local builds a client wired directly to an in-process server — the same
// JSON code path without a real socket.
func Local(opts server.Options) (*Client, func()) {
	srv := server.New(opts)
	ts := httptest.NewServer(srv.Handler())
	c := NewForURL(ts.URL, !opts.DisableGzip)
	return c, ts.Close
}

// post sends a JSON request and decodes the JSON response.
func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	var rd io.Reader = bytes.NewReader(body)
	hreq, err := http.NewRequest(http.MethodPost, c.base+path, nil)
	if err != nil {
		return err
	}
	if c.gzip {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		gz.Write(body)
		gz.Close()
		rd = &buf
		hreq.Header.Set("Content-Encoding", "gzip")
	}
	hreq.Body = io.NopCloser(rd)
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(hresp.Body)
	if err != nil {
		return fmt.Errorf("client: reading %s response: %w", path, err)
	}
	if hresp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("client: %s: %s", path, apiErr.Error)
		}
		return fmt.Errorf("client: %s: HTTP %d", path, hresp.StatusCode)
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Simulate runs a batch simulation.
func (c *Client) Simulate(req *server.SimulateRequest) (*server.SimulateResponse, error) {
	var resp server.SimulateResponse
	if err := c.post("/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Compile translates C to assembly on the server.
func (c *Client) Compile(req *server.CompileRequest) (*server.CompileResponse, error) {
	var resp server.CompileResponse
	if err := c.post("/compile", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// NewSession opens an interactive session.
func (c *Client) NewSession(req *server.SessionNewRequest) (*server.SessionNewResponse, error) {
	var resp server.SessionNewResponse
	if err := c.post("/session/new", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Step advances (or rewinds, with negative steps) a session.
func (c *Client) Step(id string, steps int64) (*server.SessionStateResponse, error) {
	var resp server.SessionStateResponse
	err := c.post("/session/step", &server.SessionStepRequest{SessionID: id, Steps: steps}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Goto jumps a session to an absolute cycle.
func (c *Client) Goto(id string, cycle uint64) (*server.SessionStateResponse, error) {
	var resp server.SessionStateResponse
	err := c.post("/session/goto", &server.SessionGotoRequest{SessionID: id, Cycle: cycle}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// CloseSession ends a session.
func (c *Client) CloseSession(id string) error {
	return c.post("/session/close", &server.SessionCloseRequest{SessionID: id}, nil)
}

// Metrics fetches the server's instrumentation counters.
func (c *Client) Metrics() (*server.Metrics, error) {
	hresp, err := c.http.Get(c.base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(hresp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
