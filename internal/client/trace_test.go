package client

// Client-side coverage of the pipeline-trace surface: SimulateWithTrace
// returning the ring in the envelope, StreamTrace consuming the NDJSON
// stream, and SessionLog paging — all against an in-process server.

import (
	"strings"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/internal/server"
	"riscvsim/internal/trace"
)

const clientTraceLoop = `
addi t0, x0, 0
addi t1, x0, 3
loop:
  addi t0, t0, 1
  bne  t0, t1, loop
`

func TestClientSimulateWithTrace(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	resp, err := c.SimulateWithTrace(&api.SimulateRequest{Code: clientTraceLoop},
		&api.TraceOptions{Stages: "commit"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Halted || resp.Trace == nil {
		t.Fatalf("response incomplete: %+v", resp)
	}
	if len(resp.Trace.Events) != 8 {
		t.Errorf("got %d commit events, want 8", len(resp.Trace.Events))
	}
	for _, ev := range resp.Trace.Events {
		if ev.Stage != trace.StageCommit || ev.Disasm == "" {
			t.Errorf("bad event: %+v", ev)
		}
	}
}

func TestClientSimulateWithTraceNilOptions(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	resp, err := c.SimulateWithTrace(&api.SimulateRequest{Code: clientTraceLoop}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil || len(resp.Trace.Events) == 0 {
		t.Fatal("nil options should trace every stage")
	}
}

func TestClientSimulateWithTraceBadFilter(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	_, err := c.SimulateWithTrace(&api.SimulateRequest{Code: clientTraceLoop},
		&api.TraceOptions{Stages: "warp"})
	if err == nil || !strings.Contains(err.Error(), api.CodeBadTrace) {
		t.Errorf("err = %v, want the %s envelope code", err, api.CodeBadTrace)
	}
}

func TestClientStreamTrace(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	var seen []api.TraceStreamEvent
	final, err := c.StreamTrace(&api.TraceStreamRequest{
		SimulateRequest: api.SimulateRequest{
			Code:  clientTraceLoop,
			Trace: &api.TraceOptions{Stages: "commit,squash"},
		},
	}, func(ev *api.TraceStreamEvent) error {
		seen = append(seen, *ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done || !final.Halted {
		t.Fatalf("final summary wrong: %+v", final)
	}
	if len(seen) < 9 { // 8 commits (+ any squashes) + summary
		t.Fatalf("saw %d lines, want at least 9", len(seen))
	}
	commits := 0
	for _, ev := range seen {
		if ev.Event != nil && ev.Event.Stage == trace.StageCommit {
			commits++
		}
	}
	if commits != 8 {
		t.Errorf("stream carried %d commits, want 8", commits)
	}
}

func TestClientStreamTraceCallbackAborts(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	wantErr := "enough"
	_, err := c.StreamTrace(&api.TraceStreamRequest{
		SimulateRequest: api.SimulateRequest{Code: clientTraceLoop},
	}, func(ev *api.TraceStreamEvent) error {
		return errString(wantErr)
	})
	if err == nil || err.Error() != wantErr {
		t.Errorf("err = %v, want %q", err, wantErr)
	}
}

// errString is a trivial error value for the abort test.
type errString string

func (e errString) Error() string { return string(e) }

func TestClientSessionLogPaging(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	// A mispredicting loop fills the log with flush lines — under
	// Verbose, since non-verbose sessions no longer pay for per-event
	// log formatting.
	sess, err := c.NewSession(&api.SessionNewRequest{SimulateRequest: api.SimulateRequest{Verbose: true, Code: `
  addi t0, x0, 0
  addi t1, x0, 32
loop:
  addi t0, t0, 1
  andi t2, t0, 1
  bne  t2, x0, odd
  addi t3, x0, 7
odd:
  bne  t0, t1, loop
`}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(sess.SessionID, 40); err != nil {
		t.Fatal(err)
	}
	page, err := c.SessionLog(sess.SessionID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) == 0 || page.NextCycle != page.Cycle+1 {
		t.Fatalf("first page wrong: %+v", page)
	}
	if _, err := c.Step(sess.SessionID, 200); err != nil {
		t.Fatal(err)
	}
	next, err := c.SessionLog(sess.SessionID, page.NextCycle)
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Entries) == 0 {
		t.Fatal("second page empty after stepping")
	}
	for _, e := range next.Entries {
		if e.Cycle < page.NextCycle {
			t.Errorf("second page leaked entry from cycle %d", e.Cycle)
		}
	}
}

func TestClientSessionLogUnknown(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()
	if _, err := c.SessionLog("nope", 0); err == nil ||
		!strings.Contains(err.Error(), api.CodeUnknownSession) {
		t.Errorf("err = %v, want %s", err, api.CodeUnknownSession)
	}
}
