package client

// Tests of the client checkpoint surface: session snapshot/restore round
// trips and checkpoint-forked batch sweeps.

import (
	"testing"

	"riscvsim/internal/api"
	"riscvsim/internal/server"
)

const longProg = `
	li   t0, 500
loop:
	addi t0, t0, -1
	bne  t0, x0, loop
	ret
`

func TestClientCheckpointRestoreRoundTrip(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()

	sess, err := c.NewSession(&api.SessionNewRequest{
		SimulateRequest: api.SimulateRequest{Code: longProg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(sess.SessionID, 200); err != nil {
		t.Fatal(err)
	}

	cp, err := c.Checkpoint(sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Cycle != 200 || len(cp.Checkpoint) == 0 {
		t.Fatalf("checkpoint: cycle=%d, %d bytes", cp.Cycle, len(cp.Checkpoint))
	}

	restored, err := c.RestoreSession(cp.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if restored.State.Cycle != 200 {
		t.Errorf("restored at cycle %d, want 200", restored.State.Cycle)
	}

	// Both sessions advance identically.
	s1, err := c.Step(sess.SessionID, 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Step(restored.SessionID, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s1.State.Cycle != s2.State.Cycle || s1.State.PC != s2.State.PC {
		t.Errorf("sessions diverged: cycle %d/%d pc %d/%d",
			s1.State.Cycle, s2.State.Cycle, s1.State.PC, s2.State.PC)
	}
}

func TestClientSimulateBatchFrom(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()

	sess, err := c.NewSession(&api.SessionNewRequest{
		SimulateRequest: api.SimulateRequest{Code: longProg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(sess.SessionID, 300); err != nil {
		t.Fatal(err)
	}
	cp, err := c.Checkpoint(sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.SimulateBatchFrom(cp.Checkpoint, []api.SimulateRequest{
		{Steps: 10}, {Steps: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Succeeded != 2 {
		t.Fatalf("batch: %+v", resp)
	}
	if got := resp.Results[0].Response.Cycles; got != 310 {
		t.Errorf("fork 0 at cycle %d, want 310", got)
	}
	if got := resp.Results[1].Response.Cycles; got != 325 {
		t.Errorf("fork 1 at cycle %d, want 325", got)
	}
}
