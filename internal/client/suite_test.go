package client

import (
	"strings"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/internal/server"
	"riscvsim/internal/workload"
)

// TestRunSuite drives the suite endpoint through the typed client: rows
// in corpus order, the table renderer working on the wire type, and the
// stable error code for a bad filter.
func TestRunSuite(t *testing.T) {
	c, closeFn := Local(server.DefaultOptions())
	defer closeFn()

	resp, err := c.RunSuite(&api.SuiteRequest{Filter: "branch-heavy"})
	if err != nil {
		t.Fatal(err)
	}
	want, werr := workload.Match("branch-heavy")
	if werr != nil {
		t.Fatal(werr)
	}
	if len(resp.Workloads) != len(want) {
		t.Fatalf("got %d rows, want %d", len(resp.Workloads), len(want))
	}
	for i, w := range want {
		if resp.Workloads[i].Workload != w.Name {
			t.Errorf("row %d: %s, want %s (corpus order)", i, resp.Workloads[i].Workload, w.Name)
		}
	}
	if table := resp.Table(); !strings.Contains(table, resp.ConfigFingerprint) {
		t.Error("Table() lost the config fingerprint")
	}

	if _, err := c.RunSuite(&api.SuiteRequest{Filter: "zzz"}); err == nil ||
		!strings.Contains(err.Error(), api.CodeBadFilter) {
		t.Fatalf("bad filter error %v, want code %s", err, api.CodeBadFilter)
	}
}
