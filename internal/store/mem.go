package store

import (
	"fmt"
	"sync"
)

// Mem is the in-memory Store backend: the test fake, and a building
// block for wrapping stores with fault injection. It implements the
// same last-writer-wins version contract as Dir.
type Mem struct {
	mu   sync.Mutex
	blob map[string]memEntry

	// FailPuts, when set, makes every Put fail with the given error —
	// tests use it to exercise the spill-failure (session lost) path.
	FailPuts error
}

type memEntry struct {
	version uint64
	data    []byte
}

// NewMem builds an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blob: make(map[string]memEntry)}
}

// Put implements Store.
func (m *Mem) Put(id string, version uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.FailPuts != nil {
		return m.FailPuts
	}
	if cur, ok := m.blob[id]; ok && cur.version >= version {
		return fmt.Errorf("store: %s version %d vs stored %d: %w", id, version, cur.version, ErrStale)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.blob[id] = memEntry{version: version, data: cp}
	return nil
}

// Get implements Store.
func (m *Mem) Get(id string) ([]byte, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.blob[id]
	if !ok {
		return nil, 0, ErrNotFound
	}
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	return cp, e.version, nil
}

// Version implements Store.
func (m *Mem) Version(id string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.blob[id]
	if !ok {
		return 0, ErrNotFound
	}
	return e.version, nil
}

// Delete implements Store.
func (m *Mem) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blob, id)
	return nil
}

// List implements Store.
func (m *Mem) List() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, 0, len(m.blob))
	for id, e := range m.blob {
		out = append(out, Entry{ID: id, Version: e.version})
	}
	return out, nil
}

// Corrupt truncates the stored blob for id to n bytes without touching
// its version — the test hook for the corrupted/truncated-checkpoint
// rehydration path.
func (m *Mem) Corrupt(id string, n int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.blob[id]
	if !ok {
		return false
	}
	if n > len(e.data) {
		n = len(e.data)
	}
	e.data = e.data[:n]
	m.blob[id] = e
	return true
}

// Len returns the number of stored sessions.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blob)
}
