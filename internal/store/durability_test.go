package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDirPutLeavesNoTempFiles: the atomic-write protocol must never
// leave a .tmp behind — not on success, not on a stale rejection, not
// on a failed write. A lingering tmp under a predictable name would be
// re-truncated by the next Put of the same version, racing readers.
func TestDirPutLeavesNoTempFiles(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("s1", 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("s1", 1, []byte("dup")); err == nil {
		t.Fatal("stale Put accepted")
	}
	entries, err := os.ReadDir(d.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

// TestWriteFileSyncContents: writeFileSync lands the exact bytes and
// syncs before close, so the rename in Put publishes durable content —
// never a zero-length file under a valid name (docs/robustness.md,
// acknowledged-checkpoint-loss invariant).
func TestWriteFileSyncContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := []byte("checkpoint bytes")
	if err := writeFileSync(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
	// Overwrite must truncate, not append.
	if err := writeFileSync(path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "x" {
		t.Fatalf("after overwrite read back %q, want %q", got, "x")
	}
}

// TestWriteFileSyncFailureCleanup: a write into a nonexistent directory
// fails with an error (Put removes the tmp on that path).
func TestWriteFileSyncFailureCleanup(t *testing.T) {
	if err := writeFileSync(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

// TestSyncDir: the parent-directory fsync used after rename works on a
// real directory and fails typed on a missing one.
func TestSyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := syncDir(dir); err != nil {
		t.Fatalf("syncDir(%s): %v", dir, err)
	}
	if err := syncDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("syncDir on missing directory succeeded")
	}
}
