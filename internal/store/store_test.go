package store

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// backends runs a subtest against every Store implementation so the
// contract stays identical across them.
func backends(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("dir", func(t *testing.T) {
		d, err := NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, d)
	})
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
}

func TestStoreRoundTrip(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		if err := s.Put("s00000001", 1, []byte("v1 blob")); err != nil {
			t.Fatal(err)
		}
		data, ver, err := s.Get("s00000001")
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != "v1 blob" || ver != 1 {
			t.Fatalf("got %q v%d, want %q v1", data, ver, "v1 blob")
		}
		if v, err := s.Version("s00000001"); err != nil || v != 1 {
			t.Fatalf("Version = %d, %v; want 1, nil", v, err)
		}
	})
}

func TestStoreLastWriterWins(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		if err := s.Put("s00000001", 2, []byte("newer")); err != nil {
			t.Fatal(err)
		}
		// A version that is not strictly newer must be rejected — this
		// is the convergence rule for two nodes that both briefly held
		// a session after a ring change.
		for _, stale := range []uint64{1, 2} {
			err := s.Put("s00000001", stale, []byte("stale"))
			if !errors.Is(err, ErrStale) {
				t.Fatalf("Put v%d after v2: err = %v, want ErrStale", stale, err)
			}
		}
		data, ver, err := s.Get("s00000001")
		if err != nil || string(data) != "newer" || ver != 2 {
			t.Fatalf("after stale puts: got %q v%d err %v, want %q v2", data, ver, err, "newer")
		}
		// A strictly newer version replaces.
		if err := s.Put("s00000001", 3, []byte("newest")); err != nil {
			t.Fatal(err)
		}
		if data, ver, _ := s.Get("s00000001"); string(data) != "newest" || ver != 3 {
			t.Fatalf("got %q v%d, want newest v3", data, ver)
		}
	})
}

func TestStoreColdStart(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		// An empty store: every read path reports absence, none errors.
		if _, _, err := s.Get("s00000001"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
		}
		if _, err := s.Version("s00000001"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Version on empty store: %v, want ErrNotFound", err)
		}
		if err := s.Delete("s00000001"); err != nil {
			t.Fatalf("Delete of absent id: %v", err)
		}
		entries, err := s.List()
		if err != nil || len(entries) != 0 {
			t.Fatalf("List on empty store: %v entries, err %v", entries, err)
		}
	})
}

func TestStoreDeleteRemovesAllVersions(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		s.Put("s00000001", 1, []byte("a"))
		s.Put("s00000001", 5, []byte("b"))
		s.Put("s00000002", 1, []byte("c"))
		if err := s.Delete("s00000001"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Get("s00000001"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get after delete: %v, want ErrNotFound", err)
		}
		entries, err := s.List()
		if err != nil || len(entries) != 1 || entries[0].ID != "s00000002" {
			t.Fatalf("List after delete = %v, %v; want [s00000002]", entries, err)
		}
	})
}

func TestStoreList(t *testing.T) {
	backends(t, func(t *testing.T, s Store) {
		s.Put("s00000003", 2, []byte("x"))
		s.Put("s00000001", 7, []byte("y"))
		entries, err := s.List()
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
		want := []Entry{{ID: "s00000001", Version: 7}, {ID: "s00000003", Version: 2}}
		if len(entries) != 2 || entries[0] != want[0] || entries[1] != want[1] {
			t.Fatalf("List = %v, want %v", entries, want)
		}
	})
}

// TestDirLegacySpillFile proves pre-store spill files (`<id>.ckpt`, no
// version) read back as version 0 and are superseded by any Put.
func TestDirLegacySpillFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s00000009.ckpt"), []byte("old spill"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, ver, err := d.Get("s00000009")
	if err != nil || string(data) != "old spill" || ver != 0 {
		t.Fatalf("legacy read: %q v%d err %v, want 'old spill' v0", data, ver, err)
	}
	if err := d.Put("s00000009", 1, []byte("versioned")); err != nil {
		t.Fatal(err)
	}
	if data, ver, _ := d.Get("s00000009"); string(data) != "versioned" || ver != 1 {
		t.Fatalf("after Put: %q v%d, want versioned v1", data, ver)
	}
	// The legacy file was cleaned up by the Put.
	if _, err := os.Stat(filepath.Join(dir, "s00000009.ckpt")); !os.IsNotExist(err) {
		t.Errorf("legacy file survived the versioned Put: %v", err)
	}
}

// TestDirIgnoresForeignFiles proves non-blob files in the directory are
// invisible to the store (and never deleted by it).
func TestDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a blob"), 0o644)
	os.WriteFile(filepath.Join(dir, "partial.ckpt.tmp"), []byte("crash leftover"), 0o644)
	d, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := d.List()
	if err != nil || len(entries) != 0 {
		t.Fatalf("List = %v, %v; want empty", entries, err)
	}
	if n := d.Sweep(0); n != 0 {
		t.Fatalf("Sweep removed %d foreign files", n)
	}
}

func TestDirRejectsTraversalIDs(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", `a\b`, "dotted.id"} {
		if err := d.Put(id, 1, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed id", id)
		}
		if _, _, err := d.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want ErrNotFound", id, err)
		}
	}
}

func TestDirSweepExpiresOldBlobs(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("s00000001", 1, []byte("old"))
	d.Put("s00000002", 1, []byte("fresh"))
	// Age the first blob's mtime past the TTL.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, "s00000001.v1.ckpt"), old, old); err != nil {
		t.Fatal(err)
	}
	if n := d.Sweep(time.Hour); n != 1 {
		t.Fatalf("Sweep removed %d, want 1", n)
	}
	if _, _, err := d.Get("s00000001"); !errors.Is(err, ErrNotFound) {
		t.Errorf("aged blob survived the sweep: %v", err)
	}
	if _, _, err := d.Get("s00000002"); err != nil {
		t.Errorf("fresh blob was swept: %v", err)
	}
}

func TestMemFailPuts(t *testing.T) {
	m := NewMem()
	boom := errors.New("disk full")
	m.FailPuts = boom
	if err := m.Put("s00000001", 1, []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want injected failure", err)
	}
	if m.Len() != 0 {
		t.Fatal("failed Put left state behind")
	}
}
