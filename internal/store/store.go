// Package store defines the pluggable checkpoint store behind the
// distributed session tier (docs/deployment.md). A Store holds opaque
// versioned checkpoint blobs keyed by session ID; the simulation server
// spills evicted sessions into it, rehydrates them on the next touch,
// and — with write-through enabled — persists every explicit checkpoint,
// making the store (not any one server process) the authority for a
// session's state. Any node sharing a store can therefore serve any
// session, which is what lets the router move sessions between replicas.
//
// Two backends ship today: Dir (a directory, typically a shared volume
// in the docker-compose deployment) and Mem (an in-memory fake for
// tests). The interface is deliberately small — Put/Get/Delete/List over
// versioned keys — so an S3- or Redis-backed implementation needs no
// changes elsewhere.
//
// Versioning implements last-writer-wins with a monotonicity check: a
// Put whose version is not strictly newer than the stored one fails with
// ErrStale instead of clobbering newer state. Two nodes that briefly
// both hold a session (a ring change mid-flight) converge on the copy
// that checkpointed last.
package store

import (
	"errors"
	"time"
)

// ErrNotFound reports that the store holds no blob under the ID.
var ErrNotFound = errors.New("store: session not found")

// ErrStale reports a Put whose version is not newer than the stored
// one: another writer (typically another node, after a ring change)
// already persisted a later checkpoint, and last-writer-wins keeps it.
var ErrStale = errors.New("store: version not newer than stored")

// Entry is one stored session blob in a List.
type Entry struct {
	// ID is the session ID the blob is stored under.
	ID string
	// Version is the blob's version counter (Put-monotonic per ID).
	Version uint64
}

// Store is a versioned checkpoint blob store. Implementations must be
// safe for concurrent use; blobs are opaque bytes (the sim checkpoint
// wire format, but the store never inspects them — corruption surfaces
// at restore time through the ckpt sentinel errors).
type Store interface {
	// Put stores data under id at the given version. It fails with
	// ErrStale when the store already holds version >= the given one.
	Put(id string, version uint64, data []byte) error
	// Get returns the newest stored blob and its version, or
	// ErrNotFound.
	Get(id string) (data []byte, version uint64, err error)
	// Version returns the newest stored version without reading the
	// blob (0, ErrNotFound when absent). Cheap relative to Get for
	// blob-on-disk backends.
	Version(id string) (uint64, error)
	// Delete removes every stored version of id. Deleting an absent ID
	// is not an error.
	Delete(id string) error
	// List enumerates the stored sessions (newest version per ID). An
	// empty or never-written store lists zero entries without error —
	// the cold-start case.
	List() ([]Entry, error)
}

// Sweeper is optionally implemented by backends that can expire blobs
// by age (the Dir backend's spill-TTL garbage collection). The session
// store calls it opportunistically when the backend supports it.
type Sweeper interface {
	// Sweep deletes blobs idle longer than olderThan, returning how
	// many were removed.
	Sweep(olderThan time.Duration) int
}
