package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Dir is the filesystem Store backend: one file per session,
// `<id>.v<version>.ckpt`, written atomically (temp file + rename) so a
// crash mid-write never leaves a truncated blob under a valid name. A
// directory on a shared volume is the docker-compose deployment's
// multi-node store; a local directory is the single-node spill
// directory the server always had.
//
// Pre-versioned spill files (`<id>.ckpt`, written by servers before the
// store interface existed) read back as version 0, so an upgraded
// server picks up an old spill directory transparently.
type Dir struct {
	path string
}

// ext is the on-disk suffix of stored checkpoints.
const ext = ".ckpt"

// NewDir opens (creating if needed) a directory-backed store.
func NewDir(path string) (*Dir, error) {
	if path == "" {
		return nil, fmt.Errorf("store: empty directory path")
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Dir{path: path}, nil
}

// Path returns the backing directory.
func (d *Dir) Path() string { return d.path }

// validID rejects IDs that could escape the directory or collide with
// the version-encoding scheme.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	return !strings.ContainsAny(id, "/\\.")
}

// file returns the versioned file name for id.
func (d *Dir) file(id string, version uint64) string {
	if version == 0 {
		return filepath.Join(d.path, id+ext)
	}
	return filepath.Join(d.path, fmt.Sprintf("%s.v%d%s", id, version, ext))
}

// parseName splits a directory entry into (id, version); ok is false
// for files that are not store blobs.
func parseName(name string) (id string, version uint64, ok bool) {
	base, found := strings.CutSuffix(name, ext)
	if !found {
		return "", 0, false
	}
	if i := strings.LastIndex(base, ".v"); i > 0 {
		v, err := strconv.ParseUint(base[i+2:], 10, 64)
		if err == nil && validID(base[:i]) {
			return base[:i], v, true
		}
	}
	if !validID(base) {
		return "", 0, false
	}
	return base, 0, true // legacy unversioned spill file
}

// scan returns the newest stored version of id and its file name, or
// ErrNotFound.
func (d *Dir) scan(id string) (version uint64, name string, err error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return 0, "", fmt.Errorf("store: %w", err)
	}
	found := false
	for _, e := range entries {
		eid, v, ok := parseName(e.Name())
		if !ok || eid != id {
			continue
		}
		if !found || v >= version {
			version, name, found = v, e.Name(), true
		}
	}
	if !found {
		return 0, "", ErrNotFound
	}
	return version, name, nil
}

// Put implements Store with an atomic write and last-writer-wins
// version enforcement. Older versions of the ID are removed after the
// new one lands.
func (d *Dir) Put(id string, version uint64, data []byte) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid session id %q", id)
	}
	cur, _, err := d.scan(id)
	if err == nil && cur >= version {
		return fmt.Errorf("store: %s version %d vs stored %d: %w", id, version, cur, ErrStale)
	}
	path := d.file(id, version)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	// Crash durability, not just crash atomicity: fsync the parent
	// directory so the rename itself survives a power cut. Without it a
	// kill between rename and the metadata flush can roll the directory
	// back to a state where the acknowledged blob never existed — exactly
	// the acknowledged-checkpoint-loss invariant the chaos harness checks
	// (docs/robustness.md).
	if err := syncDir(d.path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Best-effort cleanup of superseded versions; a racing writer's
	// newer file survives because only strictly-older names match.
	entries, err := os.ReadDir(d.path)
	if err == nil {
		for _, e := range entries {
			eid, v, ok := parseName(e.Name())
			if ok && eid == id && v < version {
				os.Remove(filepath.Join(d.path, e.Name()))
			}
		}
	}
	return nil
}

// writeFileSync is os.WriteFile plus an fsync before close, so the
// blob's *contents* are on stable storage before the rename publishes
// its name. Rename-over-unsynced-data is the classic way to turn a
// crash into a zero-length file under a valid name.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(path string) error {
	dir, err := os.Open(path)
	if err != nil {
		return err
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements Store.
func (d *Dir) Get(id string) ([]byte, uint64, error) {
	if !validID(id) {
		return nil, 0, ErrNotFound
	}
	version, name, err := d.scan(id)
	if err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(filepath.Join(d.path, name))
	if os.IsNotExist(err) {
		// Lost a race with a concurrent Delete or version cleanup.
		return nil, 0, ErrNotFound
	}
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	return data, version, nil
}

// Version implements Store.
func (d *Dir) Version(id string) (uint64, error) {
	if !validID(id) {
		return 0, ErrNotFound
	}
	v, _, err := d.scan(id)
	return v, err
}

// Delete implements Store: every version of id goes.
func (d *Dir) Delete(id string) error {
	if !validID(id) {
		return nil
	}
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		eid, _, ok := parseName(e.Name())
		if ok && eid == id {
			os.Remove(filepath.Join(d.path, e.Name()))
		}
	}
	return nil
}

// List implements Store. A missing or empty directory lists zero
// entries — the cold-start case costs nothing.
func (d *Dir) List() ([]Entry, error) {
	entries, err := os.ReadDir(d.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	newest := make(map[string]uint64)
	for _, e := range entries {
		id, v, ok := parseName(e.Name())
		if !ok {
			continue
		}
		if cur, seen := newest[id]; !seen || v > cur {
			newest[id] = v
		}
	}
	out := make([]Entry, 0, len(newest))
	for id, v := range newest {
		out = append(out, Entry{ID: id, Version: v})
	}
	return out, nil
}

// Sweep implements Sweeper: blobs whose file modification time is older
// than olderThan are deleted, so abandoned sessions cannot grow the
// directory without bound.
func (d *Dir) Sweep(olderThan time.Duration) int {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return 0
	}
	removed := 0
	now := time.Now()
	for _, e := range entries {
		if _, _, ok := parseName(e.Name()); !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(info.ModTime()) > olderThan {
			if os.Remove(filepath.Join(d.path, e.Name())) == nil {
				removed++
			}
		}
	}
	return removed
}
