package config

import (
	"fmt"

	"riscvsim/internal/cache"
	"riscvsim/internal/memory"
	"riscvsim/internal/predictor"
)

// Default returns the standard 2-wide superscalar preset the simulator
// starts with: two FX units, one FP, one LS, one branch unit, a 16 KiB
// 4-way L1 and a two-bit gshare predictor.
func Default() *CPU {
	return &CPU{
		Name:          "default-2wide",
		CoreClockHz:   100e6,
		MemoryClockHz: 50e6,

		ROBSize:       32,
		FetchWidth:    2,
		CommitWidth:   2,
		FlushPenalty:  3,
		JumpsPerCycle: 1,

		FXWindow:     8,
		FPWindow:     8,
		LSWindow:     8,
		BranchWindow: 4,

		LoadBufferSize:  8,
		StoreBufferSize: 8,
		RenameRegisters: 48,

		Units: []FUSpec{
			{Name: "FX0", Class: "FX", Latency: 1, Ops: fxFastOps()},
			{Name: "FX1", Class: "FX", Latency: 1, Ops: fxFullOps()},
			{Name: "FP0", Class: "FP", Latency: 3, Ops: fpOps()},
			{Name: "LS0", Class: "LS", Latency: 1},
			{Name: "BR0", Class: "Branch", Latency: 1},
		},

		Cache:     cache.DefaultConfig(),
		Memory:    memory.DefaultConfig(),
		Predictor: predictor.DefaultConfig(),
	}
}

// Scalar returns a single-issue in-order-ish preset: 1-wide fetch/commit,
// one unit of each kind, tiny buffers. It plays the role of the simple
// scalar cores the paper contrasts with (Venus, Vulcan support only
// scalar pipelines, §I-A).
func Scalar() *CPU {
	c := Default()
	c.Name = "scalar"
	c.ROBSize = 4
	c.FetchWidth = 1
	c.CommitWidth = 1
	c.FXWindow = 2
	c.FPWindow = 2
	c.LSWindow = 2
	c.BranchWindow = 2
	c.LoadBufferSize = 2
	c.StoreBufferSize = 2
	c.RenameRegisters = 8
	c.Units = []FUSpec{
		{Name: "FX0", Class: "FX", Latency: 1, Ops: fxFullOps()},
		{Name: "FP0", Class: "FP", Latency: 3, Ops: fpOps()},
		{Name: "LS0", Class: "LS", Latency: 1},
		{Name: "BR0", Class: "Branch", Latency: 1},
	}
	c.Predictor.Kind = predictor.OneBit
	c.Predictor.DefaultState = 0
	return c
}

// Wide4 returns an aggressive 4-wide preset with duplicated units and
// larger windows, for the width-sweep experiments.
func Wide4() *CPU {
	c := Default()
	c.Name = "wide-4"
	c.ROBSize = 64
	c.FetchWidth = 4
	c.CommitWidth = 4
	c.JumpsPerCycle = 2
	c.FXWindow = 16
	c.FPWindow = 16
	c.LSWindow = 16
	c.BranchWindow = 8
	c.LoadBufferSize = 16
	c.StoreBufferSize = 16
	c.RenameRegisters = 96
	c.Units = []FUSpec{
		{Name: "FX0", Class: "FX", Latency: 1, Ops: fxFastOps()},
		{Name: "FX1", Class: "FX", Latency: 1, Ops: fxFastOps()},
		{Name: "FX2", Class: "FX", Latency: 1, Ops: fxFullOps()},
		{Name: "FX3", Class: "FX", Latency: 1, Ops: fxFullOps()},
		{Name: "FP0", Class: "FP", Latency: 3, Ops: fpOps()},
		{Name: "FP1", Class: "FP", Latency: 3, Ops: fpOps()},
		{Name: "LS0", Class: "LS", Latency: 1},
		{Name: "LS1", Class: "LS", Latency: 1},
		{Name: "BR0", Class: "Branch", Latency: 1},
		{Name: "BR1", Class: "Branch", Latency: 1},
	}
	return c
}

// WidthPreset returns a preset with the given fetch/commit width (1, 2, 4
// or 8), scaling buffers and unit counts accordingly; used by the
// width-sweep ablation (DESIGN.md A1).
func WidthPreset(width int) (*CPU, error) {
	switch width {
	case 1:
		return Scalar(), nil
	case 2:
		return Default(), nil
	case 4:
		return Wide4(), nil
	case 8:
		c := Wide4()
		c.Name = "wide-8"
		c.ROBSize = 128
		c.FetchWidth = 8
		c.CommitWidth = 8
		c.JumpsPerCycle = 3
		c.FXWindow = 32
		c.FPWindow = 32
		c.LSWindow = 32
		c.BranchWindow = 16
		c.LoadBufferSize = 32
		c.StoreBufferSize = 32
		c.RenameRegisters = 192
		for i := 0; i < 4; i++ {
			c.Units = append(c.Units,
				FUSpec{Name: fmt.Sprintf("FX%d", 4+i), Class: "FX", Latency: 1, Ops: fxFastOps()})
		}
		c.Units = append(c.Units,
			FUSpec{Name: "LS2", Class: "LS", Latency: 1},
			FUSpec{Name: "LS3", Class: "LS", Latency: 1},
		)
		return c, nil
	default:
		return nil, fmt.Errorf("config: no preset for width %d (have 1, 2, 4, 8)", width)
	}
}

// Presets returns all named presets, as the GUI's architecture switcher
// offers them.
func Presets() map[string]*CPU {
	return map[string]*CPU{
		"default": Default(),
		"scalar":  Scalar(),
		"wide4":   Wide4(),
	}
}

// fxFastOps lists the single-cycle integer operations (no multiply or
// divide): the cheap FX unit variant.
func fxFastOps() map[string]int {
	ops := map[string]int{}
	for _, n := range []string{
		"lui", "auipc", "addi", "slti", "sltiu", "xori", "ori", "andi",
		"slli", "srli", "srai", "add", "sub", "sll", "slt", "sltu",
		"xor", "srl", "sra", "or", "and", "fence", "ecall", "ebreak",
	} {
		ops[n] = 1
	}
	return ops
}

// fxFullOps adds the M extension with realistic latencies: 3-cycle
// multiply, 16-cycle divide.
func fxFullOps() map[string]int {
	ops := fxFastOps()
	for _, n := range []string{"mul", "mulh", "mulhsu", "mulhu"} {
		ops[n] = 3
	}
	for _, n := range []string{"div", "divu", "rem", "remu"} {
		ops[n] = 16
	}
	return ops
}

// fpOps gives the FP unit per-operation latencies: adds at 3 cycles,
// multiplies 4, fused 5, divide/sqrt 12, moves/compares 1-2.
func fpOps() map[string]int {
	ops := map[string]int{}
	set := func(l int, names ...string) {
		for _, n := range names {
			ops[n] = l
		}
	}
	set(3, "fadd.s", "fsub.s", "fmin.s", "fmax.s", "fadd.d", "fsub.d", "fmin.d", "fmax.d")
	set(4, "fmul.s", "fmul.d")
	set(5, "fmadd.s", "fmsub.s", "fnmadd.s", "fnmsub.s")
	set(12, "fdiv.s", "fsqrt.s", "fdiv.d", "fsqrt.d")
	set(1, "fsgnj.s", "fsgnjn.s", "fsgnjx.s", "fmv.x.w", "fmv.w.x",
		"fclass.s", "fsgnj.d", "fsgnjn.d", "fsgnjx.d", "fclass.d")
	set(2, "fcvt.w.s", "fcvt.wu.s", "fcvt.s.w", "fcvt.s.wu",
		"feq.s", "flt.s", "fle.s", "fcvt.d.s", "fcvt.s.d",
		"fcvt.w.d", "fcvt.wu.d", "fcvt.d.w", "fcvt.d.wu",
		"feq.d", "flt.d", "fle.d")
	return ops
}
