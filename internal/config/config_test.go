package config

import (
	"strings"
	"testing"

	"riscvsim/internal/predictor"
)

func TestPresetsValidate(t *testing.T) {
	for name, c := range Presets() {
		if errs := c.Validate(); len(errs) > 0 {
			t.Errorf("preset %q invalid: %v", name, errs)
		}
	}
	for _, w := range []int{1, 2, 4, 8} {
		c, err := WidthPreset(w)
		if err != nil {
			t.Fatalf("WidthPreset(%d): %v", w, err)
		}
		if errs := c.Validate(); len(errs) > 0 {
			t.Errorf("WidthPreset(%d) invalid: %v", w, errs)
		}
		if c.FetchWidth != w || c.CommitWidth != w {
			t.Errorf("WidthPreset(%d) has width %d/%d", w, c.FetchWidth, c.CommitWidth)
		}
	}
	if _, err := WidthPreset(3); err == nil {
		t.Error("WidthPreset(3) should fail")
	}
}

func TestValidateCatchesEveryTab(t *testing.T) {
	cases := []struct {
		mutate  func(*CPU)
		wantSub string
	}{
		{func(c *CPU) { c.ROBSize = 0 }, "robSize"},
		{func(c *CPU) { c.FetchWidth = -1 }, "fetchWidth"},
		{func(c *CPU) { c.CommitWidth = 0 }, "commitWidth"},
		{func(c *CPU) { c.FlushPenalty = -2 }, "flushPenalty"},
		{func(c *CPU) { c.JumpsPerCycle = 0 }, "jumpsPerCycle"},
		{func(c *CPU) { c.FXWindow = 0 }, "fxWindow"},
		{func(c *CPU) { c.LoadBufferSize = 0 }, "loadBufferSize"},
		{func(c *CPU) { c.RenameRegisters = 1 }, "renameRegisters"},
		{func(c *CPU) { c.Units = nil }, "functional unit"},
		{func(c *CPU) { c.Units[0].Class = "XX" }, "unknown class"},
		{func(c *CPU) { c.Units = c.Units[:1] }, "no LS unit"},
		{func(c *CPU) { c.Cache.LineSize = 3 }, "LineSize"},
		{func(c *CPU) { c.Memory.Size = 0 }, "memory size"},
		{func(c *CPU) { c.Predictor.BTBSize = 0 }, "BTBSize"},
		{func(c *CPU) { c.CoreClockHz = 0 }, "coreClockHz"},
		{func(c *CPU) { c.Units[1].Name = c.Units[0].Name }, "duplicate unit"},
	}
	for i, tc := range cases {
		c := Default()
		tc.mutate(c)
		errs := c.Validate()
		if len(errs) == 0 {
			t.Errorf("case %d: expected validation error containing %q", i, tc.wantSub)
			continue
		}
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("case %d: errors %v missing substring %q", i, errs, tc.wantSub)
		}
	}
}

func TestValidateCollectsMultipleErrors(t *testing.T) {
	c := Default()
	c.ROBSize = 0
	c.FetchWidth = 0
	c.CoreClockHz = 0
	if errs := c.Validate(); len(errs) < 3 {
		t.Errorf("expected at least 3 errors, got %d: %v", len(errs), errs)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	orig := Wide4()
	data, err := orig.Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.ROBSize != orig.ROBSize ||
		got.FetchWidth != orig.FetchWidth || len(got.Units) != len(orig.Units) ||
		got.Cache.Lines != orig.Cache.Lines || got.Predictor.PHTSize != orig.Predictor.PHTSize {
		t.Errorf("round trip changed the configuration")
	}
	if got.Units[0].Ops["add"] != orig.Units[0].Ops["add"] {
		t.Error("per-op latencies lost in round trip")
	}
}

func TestImportRejectsBadJSON(t *testing.T) {
	if _, err := Import([]byte("not json")); err == nil {
		t.Error("Import should reject malformed JSON")
	}
	if _, err := Import([]byte(`{"robSize": -1}`)); err == nil {
		t.Error("Import should reject invalid configurations")
	}
	if _, err := Import([]byte(`{"unknownField": 1}`)); err == nil {
		t.Error("Import should reject unknown fields")
	}
}

func TestFUSpecLatencies(t *testing.T) {
	u := FUSpec{Name: "FX0", Class: "FX", Latency: 2, Ops: map[string]int{"div": 16}}
	if !u.Supports("div") {
		t.Error("unit should support listed op")
	}
	if u.Supports("add") {
		t.Error("unit with Ops must not support unlisted ops")
	}
	if u.LatencyFor("div") != 16 {
		t.Error("per-op latency not used")
	}
	open := FUSpec{Name: "FX1", Class: "FX", Latency: 2}
	if !open.Supports("anything") || open.LatencyFor("anything") != 2 {
		t.Error("unit without Ops should support everything at default latency")
	}
}

func TestScalarPresetIsNarrow(t *testing.T) {
	c := Scalar()
	if c.FetchWidth != 1 || c.CommitWidth != 1 {
		t.Error("scalar preset must be 1-wide")
	}
	if c.Predictor.Kind != predictor.OneBit {
		t.Error("scalar preset should use the simple one-bit predictor")
	}
}

func TestLogBoundKnob(t *testing.T) {
	c := Default()
	if c.LogBound() != DefaultMaxLogEntries {
		t.Errorf("default log bound = %d, want %d", c.LogBound(), DefaultMaxLogEntries)
	}
	c.MaxLogEntries = 128
	if c.LogBound() != 128 {
		t.Errorf("log bound = %d, want the configured 128", c.LogBound())
	}
	c.MaxLogEntries = -1
	if errs := c.Validate(); len(errs) == 0 {
		t.Error("negative maxLogEntries should fail validation")
	}
	// The knob must not leak into exported documents at its default, so
	// existing architecture JSON (and checkpoint config hashes) stay
	// byte-stable.
	c.MaxLogEntries = 0
	data, err := c.Export()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "maxLogEntries") {
		t.Error("zero maxLogEntries should be omitted from exports")
	}
}
