// Package config defines the processor architecture description: the JSON
// document the paper's Architecture Settings window edits, imports and
// exports (§II-C). The tabs map to struct fields: clocks, Buffers,
// Functional units, Cache, Memory and Branch prediction.
package config

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"riscvsim/internal/cache"
	"riscvsim/internal/memory"
	"riscvsim/internal/predictor"
)

// FUSpec describes one functional unit. FX and FP units can vary in
// supported instructions and associated latencies, while LS, memory and
// branch units allow latency specification only (paper §II-C).
type FUSpec struct {
	// Name identifies the unit in the GUI and statistics ("FX0", "FP1").
	Name string `json:"name"`
	// Class routes instructions: "FX", "FP", "LS" or "Branch".
	Class string `json:"class"`
	// Latency is the default execution latency in cycles.
	Latency int `json:"latency"`
	// Ops optionally restricts the unit to specific mnemonics and/or
	// overrides their latency. An empty map means the unit executes any
	// instruction of its class at the default latency.
	Ops map[string]int `json:"ops,omitempty"`
	// Pipelined lets the unit accept one new instruction per cycle while
	// earlier ones are still completing. Off by default, matching the
	// paper's stated limitation (§III-A); turning it on implements the
	// paper's future-work item (§V).
	Pipelined bool `json:"pipelined,omitempty"`
}

// Supports reports whether the unit can execute the named instruction.
func (f *FUSpec) Supports(name string) bool {
	if len(f.Ops) == 0 {
		return true
	}
	_, ok := f.Ops[name]
	return ok
}

// LatencyFor returns the unit's latency for the named instruction.
func (f *FUSpec) LatencyFor(name string) int {
	if l, ok := f.Ops[name]; ok && l > 0 {
		return l
	}
	if f.Latency > 0 {
		return f.Latency
	}
	return 1
}

// CPU is the complete architecture description.
type CPU struct {
	// Name labels the architecture (first settings tab).
	Name string `json:"name"`
	// CoreClockHz is the core clock used to derive wall time from cycles.
	CoreClockHz float64 `json:"coreClockHz"`
	// MemoryClockHz is reported in statistics; memory latencies are
	// already expressed in core cycles.
	MemoryClockHz float64 `json:"memoryClockHz"`

	// Buffers tab: the superscalar width controls (paper §II-C).
	ROBSize       int `json:"robSize"`
	FetchWidth    int `json:"fetchWidth"`
	CommitWidth   int `json:"commitWidth"`
	FlushPenalty  int `json:"flushPenalty"`
	JumpsPerCycle int `json:"jumpsPerCycle"`

	// Issue window capacities per functional-unit class.
	FXWindow     int `json:"fxWindow"`
	FPWindow     int `json:"fpWindow"`
	LSWindow     int `json:"lsWindow"`
	BranchWindow int `json:"branchWindow"`

	// Memory tab: load/store buffers and the rename file.
	LoadBufferSize  int `json:"loadBufferSize"`
	StoreBufferSize int `json:"storeBufferSize"`
	RenameRegisters int `json:"renameRegisters"`

	// MaxLogEntries bounds the in-memory debug log; the core keeps the
	// newest entries once the bound is reached. 0 selects
	// DefaultMaxLogEntries (the field is omitted from exported documents
	// at that default, keeping existing architecture JSON — and its
	// checkpoint config hash — stable).
	MaxLogEntries int `json:"maxLogEntries,omitempty"`

	// SnapshotInterval, when positive, makes machines built from this
	// architecture keep periodic in-memory state snapshots every that
	// many cycles, so backward stepping restores from the nearest
	// snapshot instead of replaying from cycle zero (O(interval) instead
	// of O(cycle)). 0 — the default, omitted from exported documents so
	// config hashes stay stable — leaves snapshots off for batch runs;
	// interactive debug sessions enable them explicitly.
	SnapshotInterval int `json:"snapshotInterval,omitempty"`

	// Functional units tab.
	Units []FUSpec `json:"units"`

	// Cache tab.
	Cache cache.Config `json:"cache"`
	// Memory tab (latencies, capacity, call stack).
	Memory memory.Config `json:"memory"`
	// Branch prediction tab.
	Predictor predictor.Config `json:"predictor"`
}

// DefaultMaxLogEntries is the debug-log bound used when the architecture
// document does not set maxLogEntries.
const DefaultMaxLogEntries = 4096

// LogBound returns the effective debug-log bound.
func (c *CPU) LogBound() int {
	if c.MaxLogEntries > 0 {
		return c.MaxLogEntries
	}
	return DefaultMaxLogEntries
}

// Validate checks the whole configuration and returns every problem found,
// mirroring the configuration validation step of simulation initialization
// (paper §III-A).
func (c *CPU) Validate() []error {
	var errs []error
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if c.ROBSize <= 0 {
		add("config: robSize must be positive, got %d", c.ROBSize)
	}
	if c.FetchWidth <= 0 {
		add("config: fetchWidth must be positive, got %d", c.FetchWidth)
	}
	if c.CommitWidth <= 0 {
		add("config: commitWidth must be positive, got %d", c.CommitWidth)
	}
	if c.FlushPenalty < 0 {
		add("config: flushPenalty must be non-negative, got %d", c.FlushPenalty)
	}
	if c.JumpsPerCycle <= 0 {
		add("config: jumpsPerCycle must be positive, got %d", c.JumpsPerCycle)
	}
	for _, w := range []struct {
		n string
		v int
	}{
		{"fxWindow", c.FXWindow}, {"fpWindow", c.FPWindow},
		{"lsWindow", c.LSWindow}, {"branchWindow", c.BranchWindow},
		{"loadBufferSize", c.LoadBufferSize}, {"storeBufferSize", c.StoreBufferSize},
	} {
		if w.v <= 0 {
			add("config: %s must be positive, got %d", w.n, w.v)
		}
	}
	if c.MaxLogEntries < 0 {
		add("config: maxLogEntries must be non-negative, got %d", c.MaxLogEntries)
	}
	if c.SnapshotInterval < 0 {
		add("config: snapshotInterval must be non-negative, got %d", c.SnapshotInterval)
	}
	if c.RenameRegisters < c.ROBSize {
		add("config: renameRegisters (%d) must be at least robSize (%d) so every in-flight instruction can rename a destination",
			c.RenameRegisters, c.ROBSize)
	}
	if len(c.Units) == 0 {
		add("config: at least one functional unit is required")
	}
	seen := map[string]bool{}
	hasClass := map[string]bool{}
	for i := range c.Units {
		u := &c.Units[i]
		if u.Name == "" {
			add("config: unit %d has no name", i)
		}
		if seen[u.Name] {
			add("config: duplicate unit name %q", u.Name)
		}
		seen[u.Name] = true
		switch u.Class {
		case "FX", "FP", "LS", "Branch":
			hasClass[u.Class] = true
		default:
			add("config: unit %q has unknown class %q", u.Name, u.Class)
		}
		if u.Latency <= 0 && len(u.Ops) == 0 {
			add("config: unit %q needs a positive latency", u.Name)
		}
	}
	for _, cl := range []string{"FX", "LS", "Branch"} {
		if !hasClass[cl] {
			add("config: no %s unit configured; integer programs cannot execute", cl)
		}
	}
	if err := c.Cache.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.Memory.Size <= 0 {
		add("config: memory size must be positive, got %d", c.Memory.Size)
	}
	if c.Memory.CallStackSize < 0 || c.Memory.CallStackSize > c.Memory.Size {
		add("config: callStackSize %d out of range", c.Memory.CallStackSize)
	}
	if c.Memory.LoadLatency < 0 || c.Memory.StoreLatency < 0 {
		add("config: memory latencies must be non-negative")
	}
	if err := c.Predictor.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.CoreClockHz <= 0 {
		add("config: coreClockHz must be positive, got %g", c.CoreClockHz)
	}
	return errs
}

// MarshalJSON / import–export round-trip uses the standard encoding; the
// wrapper functions add validation.

// Export serializes the architecture to indented JSON, the format the GUI
// exchanges via its import/export buttons.
func (c *CPU) Export() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Fingerprint returns a stable 64-bit FNV-1a digest of the exported
// architecture document, formatted as 16 hex digits. Two configurations
// fingerprint equally iff their exported JSON is byte-identical, so the
// workload suite's golden baselines can tell "the default architecture
// changed" apart from "the simulator's behavior changed".
func (c *CPU) Fingerprint() (string, error) {
	data, err := c.Export()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Import parses and validates an architecture description.
func Import(data []byte) (*CPU, error) {
	var c CPU
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("config: bad architecture JSON: %w", err)
	}
	if errs := c.Validate(); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("config: invalid architecture:\n  %s", strings.Join(msgs, "\n  "))
	}
	return &c, nil
}
