package server

// Tests of the time-parallel simulation surface: the parallelism knob on
// /api/v1/simulate (docs/parallel.md), its validation, and the stable
// rewind_barrier error code on backward session navigation into regions
// without timing history.

import (
	"encoding/json"
	"net/http"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/sim"
)

// parallelProgram commits ~66k instructions — enough to split into
// several intervals with a small warm-up.
const parallelProgram = `
  li t0, 0
  li t1, 1
  li t2, 22000
loop:
  add t0, t0, t1
  addi t1, t1, 1
  bne t1, t2, loop
  mv a0, t0
`

func TestV1SimulateParallel(t *testing.T) {
	_, ts := newTestServer(t)

	_, serialBody := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{
		Code: parallelProgram, IncludeState: true,
	})
	var serial api.SimulateResponse
	if err := json.Unmarshal(serialBody, &serial); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{
		Code: parallelProgram, Parallelism: 4, WarmupCycles: 512, IncludeState: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var par api.SimulateResponse
	if err := json.Unmarshal(body, &par); err != nil {
		t.Fatal(err)
	}
	if !par.Halted || par.HaltReason != serial.HaltReason {
		t.Errorf("halted=%v reason=%q, want halted serial reason %q",
			par.Halted, par.HaltReason, serial.HaltReason)
	}
	if par.Parallel == nil {
		t.Fatal("parallel info missing from response")
	}
	if par.Parallel.Workers < 2 {
		t.Errorf("workers = %d, want >= 2", par.Parallel.Workers)
	}
	if par.Parallel.Healed != 0 {
		t.Errorf("%d intervals healed on a clean run", par.Parallel.Healed)
	}
	if len(par.Parallel.Intervals) != par.Parallel.Workers {
		t.Errorf("%d intervals reported for %d workers",
			len(par.Parallel.Intervals), par.Parallel.Workers)
	}
	// The stitched counters telescope to the serial run's integers.
	if par.Stats == nil || par.Stats.Committed != serial.Stats.Committed {
		t.Errorf("stitched committed %d, want %d", par.Stats.Committed, serial.Stats.Committed)
	}
	// The final architectural state is bit-exact: every register matches.
	if par.State == nil || serial.State == nil {
		t.Fatal("state missing")
	}
	for i, v := range serial.State.IntRegs {
		if par.State.IntRegs[i] != v {
			t.Errorf("x%d = %v, want %v", i, par.State.IntRegs[i], v)
		}
	}
}

// TestV1SimulateParallelValidation: the knob's exclusions and its
// requirement of a terminating program are stable-coded errors.
func TestV1SimulateParallelValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name     string
		body     *api.SimulateRequest
		wantCode string
	}{
		{"with fastForward", &api.SimulateRequest{Code: parallelProgram, Parallelism: 2, FastForward: true}, api.CodeBadRequest},
		{"with trace", &api.SimulateRequest{Code: parallelProgram, Parallelism: 2, Trace: &api.TraceOptions{}}, api.CodeBadRequest},
		{"with checkpoint", &api.SimulateRequest{Checkpoint: []byte{1}, Parallelism: 2}, api.CodeBadRequest},
		// An endless loop cannot be split along a known commit horizon:
		// the scout pass must refuse within the Steps budget.
		{"non-terminating", &api.SimulateRequest{Code: "loop:\n  j loop\n", Parallelism: 2, Steps: 50_000}, api.CodeUnprocessable},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/api/v1/simulate", c.body)
			if resp.StatusCode == http.StatusOK {
				t.Fatalf("accepted: %s", body)
			}
			if e := decodeErrorEnvelope(t, body); e.Code != c.wantCode {
				t.Errorf("code = %q, want %q (message %q)", e.Code, c.wantCode, e.Message)
			}
		})
	}
}

// TestSessionRewindBarrierCode: backward navigation (goto and negative
// step) below a session's rewind barrier must fail with the stable
// rewind_barrier code, not the generic unprocessable — clients dispatch
// on it to grey out navigation instead of showing a failure.
func TestSessionRewindBarrierCode(t *testing.T) {
	srv, ts := newTestServer(t)

	// Build a session whose prefix was fast-forwarded: cycles below the
	// barrier have no timing history to navigate into.
	m, err := sim.NewFromAsm(sim.DefaultConfig(), parallelProgram, "")
	if err != nil {
		t.Fatal(err)
	}
	m.EnableSnapshots(0)
	m.FastForwardTo(3000)
	m.Run(2000)
	barrier := m.RewindBarrier()
	if barrier == 0 {
		t.Fatal("no rewind barrier after fast-forward")
	}
	id := srv.store.Add(m)

	resp, body := postJSON(t, ts.URL+"/api/v1/session/goto", &api.SessionGotoRequest{
		SessionID: id, Cycle: barrier - 1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("goto below barrier: status %d, want 422 (%s)", resp.StatusCode, body)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeRewindBarrier {
		t.Errorf("goto code = %q, want %q (message %q)", e.Code, api.CodeRewindBarrier, e.Message)
	}

	// Landing exactly on the barrier cycle is legal.
	resp, body = postJSON(t, ts.URL+"/api/v1/session/goto", &api.SessionGotoRequest{
		SessionID: id, Cycle: barrier,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("goto exactly on barrier: status %d (%s)", resp.StatusCode, body)
	}

	// A negative step from the barrier crosses it.
	resp, body = postJSON(t, ts.URL+"/api/v1/session/step", &api.SessionStepRequest{
		SessionID: id, Steps: -1,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("step -1 across barrier: status %d, want 422 (%s)", resp.StatusCode, body)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeRewindBarrier {
		t.Errorf("step code = %q, want %q", e.Code, api.CodeRewindBarrier)
	}
}
