package server

import "riscvsim/internal/api"

// The wire contract moved to riscvsim/internal/api when the protocol was
// versioned (/api/v1). These aliases keep the pre-v1 names importable
// from this package; new code should import riscvsim/internal/api
// directly.
type (
	MemFill              = api.MemFill
	SimulateRequest      = api.SimulateRequest
	SimulateResponse     = api.SimulateResponse
	CompileRequest       = api.CompileRequest
	CompileResponse      = api.CompileResponse
	ParseAsmRequest      = api.ParseAsmRequest
	ParseAsmResponse     = api.ParseAsmResponse
	SessionNewRequest    = api.SessionNewRequest
	SessionNewResponse   = api.SessionNewResponse
	SessionStepRequest   = api.SessionStepRequest
	SessionStateResponse = api.SessionStateResponse
	SessionGotoRequest   = api.SessionGotoRequest
	SessionCloseRequest  = api.SessionCloseRequest
	Metrics              = api.Metrics
)
