package server

import (
	"context"
	"net/http"
	"time"

	"riscvsim/internal/api"
)

const (
	// defaultStepBurst is how many cycles advance between stream events
	// when the request doesn't say.
	defaultStepBurst = 32
	// defaultMaxStreamEvents caps intermediate events so burst=1 on a
	// long program cannot produce an unbounded response.
	defaultMaxStreamEvents = 10_000
)

// handleSessionStream is the NDJSON streaming endpoint: it builds a
// machine, then pushes one StreamEvent per step burst — interactive
// clients watch the run instead of polling /session/step. Each line is
// flushed through the gzip middleware (which implements http.Flusher
// passthrough) so events arrive as they happen.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() {
		s.reqCount.Add(1)
		s.totalNs.Add(uint64(time.Since(start)))
	}()

	reqCodec, respCodec := api.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	r = r.WithContext(context.WithValue(r.Context(), reqCodecKey{}, reqCodec))

	var req api.StreamRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	m, aerr := s.buildMachine(&req.SimulateRequest)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}

	burst := req.StepBurst
	if burst == 0 {
		burst = defaultStepBurst
	}
	limit := req.Steps
	if limit == 0 || limit > maxBatchCycles {
		limit = maxBatchCycles
	}
	maxEvents := req.MaxEvents
	if maxEvents <= 0 || maxEvents > defaultMaxStreamEvents {
		maxEvents = defaultMaxStreamEvents
	}

	w.Header().Set("Content-Type", api.MediaTypeNDJSON)
	w.Header().Set("X-Codec", respCodec.Name())
	// Front proxies must not buffer the stream (nginx honours this).
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	writeEvent := func(ev *api.StreamEvent) bool {
		buf := api.GetBuffer()
		defer api.PutBuffer(buf)
		jstart := time.Now()
		err := respCodec.Encode(buf, ev)
		s.addCodecTime(respCodec.Name(), time.Since(jstart), true)
		if err != nil {
			return false
		}
		if b := buf.Bytes(); len(b) == 0 || b[len(b)-1] != '\n' {
			buf.WriteByte('\n')
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		s.streamEvents.Add(1)
		return true
	}

	ctx := r.Context()
	seq := 0
	var stepped uint64
	for !m.Halted() && stepped < limit {
		if ctx.Err() != nil {
			return // client went away
		}
		n := burst
		if remaining := limit - stepped; n > remaining {
			n = remaining
		}
		if seq >= maxEvents-1 {
			// Event cap: finish the run without intermediate events.
			sstart := time.Now()
			stepped += m.Run(limit - stepped)
			s.simNs.Add(uint64(time.Since(sstart)))
			break
		}
		sstart := time.Now()
		ran := m.StepN(n)
		s.simNs.Add(uint64(time.Since(sstart)))
		stepped += ran
		if ran == 0 && !m.Halted() {
			break // paused (breakpoint); don't spin
		}
		ev := &api.StreamEvent{Seq: seq, Cycle: m.Cycle(), Halted: m.Halted()}
		if req.IncludeState {
			ev.State = m.State(false)
		}
		if !writeEvent(ev) {
			return
		}
		seq++
	}

	final := &api.StreamEvent{
		Seq:        seq,
		Cycle:      m.Cycle(),
		Halted:     m.Halted(),
		HaltReason: m.HaltReason(),
		Done:       true,
		Stats:      m.Report(),
	}
	if req.IncludeState {
		final.State = m.State(req.IncludeLog)
	}
	writeEvent(final)
}
