package server

import (
	"bytes"
	"strings"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/sim"
)

func memFillMachine(t *testing.T, data string) *sim.Machine {
	t.Helper()
	m, err := sim.NewFromAsm(sim.DefaultConfig(), "li a0, 0\n.data\n"+data, "")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func readLabel(t *testing.T, m *sim.Machine, label string) []byte {
	t.Helper()
	addr, size, ok := m.LookupLabel(label)
	if !ok {
		t.Fatalf("label %q missing", label)
	}
	b, err := m.ReadMemory(addr, size)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMemFillRepeatWithEmptyValues(t *testing.T) {
	// Repeat with no Values repeats the implicit zero — it must fill,
	// not crash or error.
	m := memFillMachine(t, "buf: .zero 16\n")
	if err := ApplyMemFill(m, api.MemFill{Label: "buf", Repeat: 4}); err != nil {
		t.Fatalf("repeat with empty values: %v", err)
	}
	if got := readLabel(t, m, "buf"); !bytes.Equal(got, make([]byte, 16)) {
		t.Errorf("buffer = % x, want zeros", got)
	}
	// And with a value it repeats that value.
	if err := ApplyMemFill(m, api.MemFill{Label: "buf", Repeat: 4, Values: []int64{7}}); err != nil {
		t.Fatal(err)
	}
	got := readLabel(t, m, "buf")
	for i := 0; i < 4; i++ {
		if got[i*4] != 7 {
			t.Fatalf("word %d = % x, want 7", i, got[i*4:i*4+4])
		}
	}
}

func TestMemFillRandomSeedDeterminism(t *testing.T) {
	fill := func(seed int64) []byte {
		m := memFillMachine(t, "buf: .zero 32\n")
		if err := ApplyMemFill(m, api.MemFill{Label: "buf", Random: 8, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		return readLabel(t, m, "buf")
	}
	a, b := fill(1234), fill(1234)
	if !bytes.Equal(a, b) {
		t.Error("same seed must produce identical fills")
	}
	if c := fill(5678); bytes.Equal(a, c) {
		t.Error("different seeds produced identical fills")
	}
	// Seed 0 uses the documented default seed, also deterministically.
	if !bytes.Equal(fill(0), fill(0)) {
		t.Error("default seed not deterministic")
	}
}

func TestMemFillElemSize8Overflow(t *testing.T) {
	m := memFillMachine(t, "buf: .zero 8\n")
	// One 8-byte element fits exactly.
	if err := ApplyMemFill(m, api.MemFill{Label: "buf", ElemSize: 8, Values: []int64{-1}}); err != nil {
		t.Fatalf("exact fit rejected: %v", err)
	}
	if got := readLabel(t, m, "buf"); !bytes.Equal(got, bytes.Repeat([]byte{0xff}, 8)) {
		t.Errorf("8-byte little-endian write wrong: % x", got)
	}
	// Two 8-byte elements overflow the labelled allocation.
	err := ApplyMemFill(m, api.MemFill{Label: "buf", ElemSize: 8, Values: []int64{1, 2}})
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Errorf("overflow not caught: %v", err)
	}
	// Repeat and Random are also bounded by elemSize accounting.
	if err := ApplyMemFill(m, api.MemFill{Label: "buf", ElemSize: 8, Repeat: 2}); err == nil {
		t.Error("repeat overflow not caught")
	}
	if err := ApplyMemFill(m, api.MemFill{Label: "buf", ElemSize: 8, Random: 2}); err == nil {
		t.Error("random overflow not caught")
	}
}
