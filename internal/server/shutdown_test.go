package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/store"
)

// TestShutdownDrainsBeforeSpill is the regression test for the
// SIGTERM spill race: the old simserver handler spilled sessions while
// in-flight requests still held their machines, so a long step could
// race the spill and the persisted checkpoint missed the step's work.
// Server.Shutdown must drain the HTTP server first (the in-flight step
// completes and its response arrives intact) and only then spill, so
// the stored blob carries the post-step state.
func TestShutdownDrainsBeforeSpill(t *testing.T) {
	backend := store.NewMem()
	srv := New(Options{MaxSessions: 4, Store: backend})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// An infinite loop program: the step below runs its full budget.
	var newResp api.SessionNewResponse
	postJSONInto(t, base+"/api/v1/session/new",
		`{"code":"loop: beq x0, x0, loop\n"}`, &newResp)
	id := newResp.SessionID

	const steps = 1_000_000
	stepDone := make(chan uint64, 1)
	go func() {
		var resp api.SessionStateResponse
		postJSONInto(t, base+"/api/v1/session/step",
			fmt.Sprintf(`{"sessionId":%q,"steps":%d}`, id, steps), &resp)
		stepDone <- resp.State.Cycle
	}()

	// Let the step request reach the handler, then shut down while it
	// is still running. Shutdown must block until the step finishes.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	spilled, err := srv.Shutdown(ctx, hs)
	if err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if spilled != 1 {
		t.Fatalf("spilled %d sessions, want 1", spilled)
	}
	select {
	case cycle := <-stepDone:
		if cycle < steps {
			t.Fatalf("in-flight step finished at cycle %d, want >= %d", cycle, steps)
		}
	default:
		t.Fatal("Shutdown returned while the in-flight step was still running")
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}

	// The spill captured the post-step state: a fresh node over the
	// same store rehydrates at the stepped cycle.
	fresh := newSessionStore(4, 0, backend, 0, false, nil)
	sess, ok := fresh.Get(id)
	if !ok {
		t.Fatal("spilled session did not rehydrate")
	}
	if got := sess.machine.Cycle(); got < steps {
		t.Fatalf("rehydrated at cycle %d, want >= %d (spill raced the in-flight step)", got, steps)
	}
}

// postJSONInto issues a plain JSON POST with the default client and decodes
// the 200 response into out. It cannot use internal/client (import
// cycle), so it speaks raw HTTP.
func postJSONInto(t testing.TB, url, body string, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env api.ErrorEnvelope
		json.NewDecoder(resp.Body).Decode(&env)
		t.Fatalf("POST %s: %d [%s] %s", url, resp.StatusCode, env.Err.Code, env.Err.Message)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
}
