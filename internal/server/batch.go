package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"riscvsim/internal/api"
)

// maxBatchRequests bounds one /api/v1/batch call.
const maxBatchRequests = 256

// fanOut runs N independent simulations across a bounded worker pool
// (one goroutine per core, work-stealing by index) and returns the
// results in request order. It is the shared execution engine of
// /api/v1/batch and /api/v1/suite. A context cancellation (client gone)
// aborts the fan-out and returns the context error.
func (s *Server) fanOut(ctx context.Context, reqs []api.SimulateRequest) ([]api.BatchResult, int, time.Duration, error) {
	n := len(reqs)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	results := make([]api.BatchResult, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wstart := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i] = s.runBatchItem(ctx, i, &reqs[i])
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, workers, 0, err
	}
	return results, workers, time.Since(wstart), nil
}

// handleBatch fans N independent simulations out across a bounded worker
// pool (one goroutine per core). Sweep workloads — issue widths, cache
// studies, load generation — get the whole study in a single round trip
// instead of N, and the host's cores instead of one.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.BatchRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	n := len(req.Requests)
	if n == 0 {
		return nil, 0, api.Errorf(api.CodeBadRequest, "batch: no requests")
	}
	if n > maxBatchRequests {
		return nil, 0, api.Errorf(api.CodeBatchTooLarge,
			"batch of %d requests exceeds the limit of %d", n, maxBatchRequests)
	}
	if len(req.BaseCheckpoint) > 0 {
		// Fork every entry without its own snapshot from the shared warm
		// checkpoint: each worker restores an independent machine from
		// the same bytes, so N-variant sweeps skip the warm-up replay.
		for i := range req.Requests {
			if len(req.Requests[i].Checkpoint) == 0 {
				req.Requests[i].Checkpoint = req.BaseCheckpoint
			}
		}
	}

	results, workers, wall, err := s.fanOut(r.Context(), req.Requests)
	if err != nil {
		// Client went away mid-batch; nobody is listening for results.
		return nil, 0, api.WrapError(api.CodeInternal, err)
	}

	resp := &api.BatchResponse{
		Results:   results,
		Workers:   workers,
		WallNanos: uint64(wall),
	}
	for i := range results {
		if results[i].Error != nil {
			resp.Failed++
		} else {
			resp.Succeeded++
		}
	}
	s.batchReqs.Add(1)
	s.batchSims.Add(uint64(n))
	return resp, 0, nil
}

// runBatchItem executes one batch entry, converting a simulator panic
// into a per-item error: unlike handler goroutines, worker goroutines
// get no recovery from net/http, so without this one crafted entry
// could kill the whole process.
func (s *Server) runBatchItem(ctx context.Context, i int, req *api.SimulateRequest) (res api.BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			res = api.BatchResult{Index: i, Error: api.Errorf(api.CodeInternal, "simulation panicked: %v", r)}
		}
	}()
	resp, aerr := s.runSimulate(ctx, req)
	return api.BatchResult{Index: i, Response: resp, Error: aerr}
}
