package server

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"riscvsim/internal/api"
)

// admission is the server's overload valve (docs/robustness.md): a
// fixed pool of in-flight slots for simulation-bearing requests plus a
// bounded wait queue. A request that finds no free slot waits — briefly,
// bounded by queueTimeout and the queue depth cap — and is then shed
// with a typed over_capacity rejection instead of piling up. Shedding is
// cheap (no simulation work has started), so an overloaded node degrades
// to fast 429s and recovers the moment the burst passes; nothing queues
// unboundedly, nothing collapses.
//
// A zero-valued admission (slots == nil) admits everything — the knob is
// off by default and single-node deployments keep their old behavior.
type admission struct {
	slots        chan struct{} // cap == max in-flight; nil = unlimited
	maxQueue     int64         // waiters allowed beyond the slot cap
	queueTimeout time.Duration // how long a queued request may wait

	waiting  atomic.Int64
	inFlight atomic.Int64
	shed     atomic.Uint64
}

// newAdmission sizes the valve. maxInFlight <= 0 disables admission
// control entirely.
func newAdmission(maxInFlight, maxQueue int, queueTimeout time.Duration) *admission {
	a := &admission{}
	if maxInFlight <= 0 {
		return a
	}
	a.slots = make(chan struct{}, maxInFlight)
	if maxQueue < 0 {
		maxQueue = 0
	}
	a.maxQueue = int64(maxQueue)
	if queueTimeout <= 0 {
		queueTimeout = time.Second
	}
	a.queueTimeout = queueTimeout
	return a
}

// acquire admits one request, queuing it (bounded) when the pool is
// full. It returns a typed over_capacity error when the request must be
// shed, and a release func (call exactly once) on success.
func (a *admission) acquire(ctx context.Context) (func(), *api.Error) {
	if a.slots == nil {
		a.inFlight.Add(1)
		return func() { a.inFlight.Add(-1) }, nil
	}
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return a.release, nil
	default:
	}
	// Pool full: join the bounded queue, or shed immediately when even
	// the queue is at capacity.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return nil, overCapacityError()
	}
	t := time.NewTimer(a.queueTimeout)
	defer func() {
		t.Stop()
		a.waiting.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.inFlight.Add(1)
		return a.release, nil
	case <-t.C:
		a.shed.Add(1)
		return nil, overCapacityError()
	case <-ctx.Done():
		a.shed.Add(1)
		return nil, overCapacityError()
	}
}

func (a *admission) release() {
	a.inFlight.Add(-1)
	<-a.slots
}

// overCapacityError is the typed shed rejection.
func overCapacityError() *api.Error {
	return api.Errorf(api.CodeOverCapacity,
		"server at capacity: in-flight simulation limit reached and the admission queue is full; retry after the Retry-After interval")
}

// retryAfterSeconds is the Retry-After hint on shed responses: long
// enough that a retrying client skips the current burst, short enough
// that throughput recovers within one health-probe interval.
const retryAfterSeconds = 1

// setRetryAfter stamps the backoff hint onto a shed (or deadline)
// response.
func setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
}
