package server

import (
	"fmt"
	"net/http"
	"time"

	"riscvsim/internal/render"
	"riscvsim/sim"
)

// SessionNewRequest starts an interactive session (one web-client tab).
type SessionNewRequest struct {
	SimulateRequest
}

// SessionNewResponse returns the session handle and the initial state.
type SessionNewResponse struct {
	SessionID string     `json:"sessionId"`
	State     *sim.State `json:"state"`
}

// SessionStepRequest advances or rewinds a session. Negative steps rewind
// (the paper's backward simulation, available only interactively and
// intended for small programs, §III-B).
type SessionStepRequest struct {
	SessionID string `json:"sessionId"`
	Steps     int64  `json:"steps"`
	// IncludeLog attaches the debug log to the state.
	IncludeLog bool `json:"includeLog,omitempty"`
}

// SessionStateResponse returns the post-step state.
type SessionStateResponse struct {
	State *sim.State `json:"state"`
}

// SessionGotoRequest jumps to an absolute cycle (debug-log navigation:
// "clicking on the message number navigates the simulation to that
// specific cycle", paper §II-A).
type SessionGotoRequest struct {
	SessionID string `json:"sessionId"`
	Cycle     uint64 `json:"cycle"`
}

// SessionCloseRequest ends a session.
type SessionCloseRequest struct {
	SessionID string `json:"sessionId"`
}

// maxInteractiveStep bounds one interactive request.
const maxInteractiveStep = 10_000_000

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req SessionNewRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	m, err := s.buildMachine(&req.SimulateRequest)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.evictOldestLocked()
	}
	s.nextID++
	id := fmt.Sprintf("s%08d", s.nextID)
	s.sessions[id] = &session{machine: m, lastUsed: time.Now()}
	s.mu.Unlock()
	return &SessionNewResponse{SessionID: id, State: m.State(false)}, 0, nil
}

// evictOldestLocked drops the least recently used session (store is full).
func (s *Server) evictOldestLocked() {
	var oldestID string
	var oldest time.Time
	for id, sess := range s.sessions {
		if oldestID == "" || sess.lastUsed.Before(oldest) {
			oldestID, oldest = id, sess.lastUsed
		}
	}
	if oldestID != "" {
		delete(s.sessions, oldestID)
	}
}

func (s *Server) getSession(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q (it may have been evicted)", id)
	}
	sess.lastUsed = time.Now()
	return sess, nil
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req SessionStepRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	sess, err := s.getSession(req.SessionID)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sstart := time.Now()
	switch {
	case req.Steps >= 0:
		n := req.Steps
		if n > maxInteractiveStep {
			n = maxInteractiveStep
		}
		sess.machine.StepN(uint64(n))
	default:
		back := -req.Steps
		target := int64(sess.machine.Cycle()) - back
		if target < 0 {
			target = 0
		}
		if err := sess.machine.GotoCycle(uint64(target)); err != nil {
			s.simNs.Add(uint64(time.Since(sstart)))
			return nil, http.StatusUnprocessableEntity, err
		}
	}
	s.simNs.Add(uint64(time.Since(sstart)))
	return &SessionStateResponse{State: sess.machine.State(req.IncludeLog)}, 0, nil
}

func (s *Server) handleSessionGoto(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req SessionGotoRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	sess, err := s.getSession(req.SessionID)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sstart := time.Now()
	if err := sess.machine.GotoCycle(req.Cycle); err != nil {
		s.simNs.Add(uint64(time.Since(sstart)))
		return nil, http.StatusUnprocessableEntity, err
	}
	s.simNs.Add(uint64(time.Since(sstart)))
	return &SessionStateResponse{State: sess.machine.State(false)}, 0, nil
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req SessionCloseRequest
	if err := s.decode(r, &req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mu.Lock()
	_, ok := s.sessions[req.SessionID]
	delete(s.sessions, req.SessionID)
	s.mu.Unlock()
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown session %q", req.SessionID)
	}
	return map[string]bool{"closed": true}, 0, nil
}

// renderResponse wraps the text schematic.
type renderResponse struct {
	Schematic string `json:"schematic"`
}

func (s *Server) handleSessionRender(w http.ResponseWriter, r *http.Request) (any, int, error) {
	id := r.URL.Query().Get("session")
	sess, err := s.getSession(id)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	sess.mu.Lock()
	st := sess.machine.State(false)
	sess.mu.Unlock()
	sstart := time.Now()
	text := render.Schematic(st)
	s.simNs.Add(uint64(time.Since(sstart)))
	return &renderResponse{Schematic: text}, 0, nil
}
