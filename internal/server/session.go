package server

import (
	"net/http"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/render"
)

// maxInteractiveStep bounds one interactive request.
const maxInteractiveStep = 10_000_000

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionNewRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	m, aerr := s.buildMachine(&req.SimulateRequest)
	if aerr != nil {
		return nil, 0, aerr
	}
	id := s.store.Add(m)
	return &api.SessionNewResponse{SessionID: id, State: m.State(false)}, 0, nil
}

func (s *Server) getSession(id string) (*session, *api.Error) {
	sess, ok := s.store.Get(id)
	if !ok {
		return nil, api.Errorf(api.CodeUnknownSession,
			"unknown session %q (it may have been closed, evicted or expired)", id)
	}
	return sess, nil
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionStepRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	sess, aerr := s.getSession(req.SessionID)
	if aerr != nil {
		return nil, 0, aerr
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sstart := time.Now()
	switch {
	case req.Steps >= 0:
		n := req.Steps
		if n > maxInteractiveStep {
			n = maxInteractiveStep
		}
		sess.machine.StepN(uint64(n))
	default:
		back := -req.Steps
		target := int64(sess.machine.Cycle()) - back
		if target < 0 {
			target = 0
		}
		if err := sess.machine.GotoCycle(uint64(target)); err != nil {
			s.simNs.Add(uint64(time.Since(sstart)))
			return nil, 0, api.WrapError(api.CodeUnprocessable, err)
		}
	}
	s.simNs.Add(uint64(time.Since(sstart)))
	return &api.SessionStateResponse{State: sess.machine.State(req.IncludeLog)}, 0, nil
}

func (s *Server) handleSessionGoto(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionGotoRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	sess, aerr := s.getSession(req.SessionID)
	if aerr != nil {
		return nil, 0, aerr
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sstart := time.Now()
	if err := sess.machine.GotoCycle(req.Cycle); err != nil {
		s.simNs.Add(uint64(time.Since(sstart)))
		return nil, 0, api.WrapError(api.CodeUnprocessable, err)
	}
	s.simNs.Add(uint64(time.Since(sstart)))
	return &api.SessionStateResponse{State: sess.machine.State(false)}, 0, nil
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionCloseRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	if !s.store.Remove(req.SessionID) {
		return nil, 0, api.Errorf(api.CodeUnknownSession, "unknown session %q", req.SessionID)
	}
	return &api.SessionCloseResponse{Closed: true}, 0, nil
}

func (s *Server) handleSessionRender(w http.ResponseWriter, r *http.Request) (any, int, error) {
	id := r.URL.Query().Get("session")
	sess, aerr := s.getSession(id)
	if aerr != nil {
		return nil, 0, aerr
	}
	sess.mu.Lock()
	st := sess.machine.State(false)
	sess.mu.Unlock()
	sstart := time.Now()
	text := render.Schematic(st)
	s.simNs.Add(uint64(time.Since(sstart)))
	return &api.RenderResponse{Schematic: text}, 0, nil
}
