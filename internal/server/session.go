package server

import (
	"bytes"
	"errors"
	"net/http"
	"time"

	"riscvsim/internal/api"
	"riscvsim/internal/render"
	"riscvsim/sim"
)

// maxInteractiveStep bounds one interactive request.
const maxInteractiveStep = 10_000_000

// rewindError maps a failed backward navigation onto its stable code:
// crossing the rewind barrier (fast-forwarded or time-parallel region,
// no timing history) is its own condition clients can dispatch on;
// everything else stays the generic unprocessable.
func rewindError(err error) *api.Error {
	if errors.Is(err, sim.ErrRewindBarrier) {
		return api.WrapError(api.CodeRewindBarrier, err)
	}
	return api.WrapError(api.CodeUnprocessable, err)
}

// assignedSessionID extracts a router-assigned session ID from the
// request when the server accepts them (Options.AllowAssignedIDs). The
// empty string means "generate one locally", the historical behavior.
func (s *Server) assignedSessionID(r *http.Request) (string, *api.Error) {
	if !s.opts.AllowAssignedIDs {
		return "", nil
	}
	id := r.Header.Get(api.SessionIDHeader)
	if id == "" {
		return "", nil
	}
	if !validSessionID(id) {
		return "", api.Errorf(api.CodeBadRequest, "assigned session id %q is not of the s%%08d form", id)
	}
	return id, nil
}

// addSession registers a machine under a fresh or assigned ID.
func (s *Server) addSession(m *sim.Machine, assigned string) (string, *api.Error) {
	if assigned == "" {
		return s.store.Add(m), nil
	}
	if !s.store.AddWithID(assigned, m) {
		return "", api.Errorf(api.CodeSessionExists, "session %q already exists on this node", assigned)
	}
	return assigned, nil
}

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionNewRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	assigned, aerr := s.assignedSessionID(r)
	if aerr != nil {
		return nil, 0, aerr
	}
	m, aerr := s.buildMachine(&req.SimulateRequest)
	if aerr != nil {
		return nil, 0, aerr
	}
	// Interactive sessions are the debug surface: keep interval
	// snapshots so backward stepping restores from the nearest snapshot
	// instead of replaying from cycle zero (batch endpoints never rewind
	// and stay snapshot-free). An architecture-level snapshotInterval
	// already enabled them with a custom spacing.
	if m.SnapshotInterval() == 0 {
		m.EnableSnapshots(0)
	}
	id, aerr := s.addSession(m, assigned)
	if aerr != nil {
		return nil, 0, aerr
	}
	return &api.SessionNewResponse{SessionID: id, State: m.State(false)}, 0, nil
}

func (s *Server) getSession(id string) (*session, *api.Error) {
	sess, ok := s.store.Get(id)
	if !ok {
		return nil, api.Errorf(api.CodeUnknownSession,
			"unknown session %q (it may have been closed, evicted or expired)", id)
	}
	return sess, nil
}

// lockSession looks a session up and returns it with its mutex held.
// If the session was retired (evicted and spilled) between the lookup
// and the lock, the handler would otherwise mutate an orphaned machine
// whose state the spill already captured — so it retries through the
// store, which rehydrates the spilled copy.
func (s *Server) lockSession(id string) (*session, *api.Error) {
	for tries := 0; tries < 3; tries++ {
		sess, aerr := s.getSession(id)
		if aerr != nil {
			return nil, aerr
		}
		sess.mu.Lock()
		if !sess.gone {
			return sess, nil
		}
		sess.mu.Unlock()
	}
	return nil, api.Errorf(api.CodeUnknownSession,
		"session %q kept being evicted mid-operation (server under heavy session churn)", id)
}

func (s *Server) handleSessionStep(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionStepRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	sess, aerr := s.lockSession(req.SessionID)
	if aerr != nil {
		return nil, 0, aerr
	}
	defer sess.mu.Unlock()
	switch {
	case req.Steps >= 0:
		n := req.Steps
		if n > maxInteractiveStep {
			n = maxInteractiveStep
		}
		// runMachine books simNs and honors the request deadline; the
		// session keeps the state the run reached, and the typed
		// deadline_exceeded error tells the client to re-read it.
		if _, aerr := s.runMachine(r.Context(), sess.machine, uint64(n)); aerr != nil {
			return nil, 0, aerr
		}
	default:
		sstart := time.Now()
		back := -req.Steps
		target := int64(sess.machine.Cycle()) - back
		if target < 0 {
			target = 0
		}
		err := sess.machine.GotoCycle(uint64(target))
		s.simNs.Add(uint64(time.Since(sstart)))
		if err != nil {
			return nil, 0, rewindError(err)
		}
	}
	return &api.SessionStateResponse{State: sess.machine.State(req.IncludeLog)}, 0, nil
}

func (s *Server) handleSessionGoto(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionGotoRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	sess, aerr := s.lockSession(req.SessionID)
	if aerr != nil {
		return nil, 0, aerr
	}
	defer sess.mu.Unlock()
	sstart := time.Now()
	if err := sess.machine.GotoCycle(req.Cycle); err != nil {
		s.simNs.Add(uint64(time.Since(sstart)))
		return nil, 0, rewindError(err)
	}
	s.simNs.Add(uint64(time.Since(sstart)))
	return &api.SessionStateResponse{State: sess.machine.State(false)}, 0, nil
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionCloseRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	if !s.store.Remove(req.SessionID) {
		return nil, 0, api.Errorf(api.CodeUnknownSession, "unknown session %q", req.SessionID)
	}
	return &api.SessionCloseResponse{Closed: true}, 0, nil
}

// handleSessionCheckpoint serializes a live session into the versioned
// binary snapshot format (base64 over JSON). The document is
// self-contained: restore it here, on another server, or from the CLI.
func (s *Server) handleSessionCheckpoint(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionCheckpointRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	sess, aerr := s.lockSession(req.SessionID)
	if aerr != nil {
		return nil, 0, aerr
	}
	defer sess.mu.Unlock()
	sstart := time.Now()
	var buf bytes.Buffer
	if err := sess.machine.Checkpoint(&buf); err != nil {
		s.simNs.Add(uint64(time.Since(sstart)))
		return nil, 0, api.WrapError(api.CodeInternal, err)
	}
	// Write-through policy (docs/deployment.md): the same bytes the
	// client receives land in the checkpoint store, so any replica
	// sharing it can serve the session from this point on. The store —
	// not this process — is the session's authority after an explicit
	// checkpoint. Durable tells the client whether that happened: only a
	// durable ack is covered by the failover contract (and held against
	// the chaos harness's checkpoint-loss invariant, docs/robustness.md).
	// Cycle is captured before the write-through: a stale write makes
	// WriteThrough converge sess.machine on the store's newer copy, and
	// the response must describe the bytes in Checkpoint, not the
	// adopted state.
	cycle := sess.machine.Cycle()
	durable := s.store.WriteThrough(sess, buf.Bytes())
	s.simNs.Add(uint64(time.Since(sstart)))
	return &api.SessionCheckpointResponse{
		SessionID:  req.SessionID,
		Cycle:      cycle,
		Checkpoint: buf.Bytes(),
		Durable:    durable,
	}, 0, nil
}

// handleSessionRestore opens a fresh interactive session from a
// checkpoint document, picking the simulation up exactly where the
// snapshot left it.
func (s *Server) handleSessionRestore(w http.ResponseWriter, r *http.Request) (any, int, error) {
	var req api.SessionRestoreRequest
	if aerr := s.decode(w, r, &req); aerr != nil {
		return nil, 0, aerr
	}
	if len(req.Checkpoint) == 0 {
		return nil, 0, api.Errorf(api.CodeBadRequest, "restore: empty checkpoint")
	}
	assigned, aerr := s.assignedSessionID(r)
	if aerr != nil {
		return nil, 0, aerr
	}
	sstart := time.Now()
	m, err := sim.Restore(bytes.NewReader(req.Checkpoint))
	s.simNs.Add(uint64(time.Since(sstart)))
	if err != nil {
		return nil, 0, api.CheckpointError(err)
	}
	if m.SnapshotInterval() == 0 {
		m.EnableSnapshots(0)
	}
	id, aerr := s.addSession(m, assigned)
	if aerr != nil {
		return nil, 0, aerr
	}
	return &api.SessionNewResponse{SessionID: id, State: m.State(false)}, 0, nil
}

func (s *Server) handleSessionRender(w http.ResponseWriter, r *http.Request) (any, int, error) {
	id := r.URL.Query().Get("session")
	sess, aerr := s.lockSession(id)
	if aerr != nil {
		return nil, 0, aerr
	}
	st := sess.machine.State(false)
	sess.mu.Unlock()
	sstart := time.Now()
	text := render.Schematic(st)
	s.simNs.Add(uint64(time.Since(sstart)))
	return &api.RenderResponse{Schematic: text}, 0, nil
}
