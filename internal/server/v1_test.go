package server

// Tests of the versioned /api/v1 surface: the error envelope's stable
// codes, the batch and streaming endpoints, codec negotiation and
// per-codec metrics, and the deprecated legacy aliases. The pre-v1 suite
// in server_test.go runs unchanged against the aliases.

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"riscvsim/internal/api"
	"riscvsim/sim"
)

func decodeErrorEnvelope(t *testing.T, body []byte) api.Error {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("body is not an error envelope: %v: %s", err, body)
	}
	if env.Err.Code == "" || env.Err.Message == "" {
		t.Fatalf("envelope incomplete: %s", body)
	}
	return env.Err
}

func TestV1SimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{Code: tinyProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr api.SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Halted || sr.Stats == nil || sr.Stats.Committed != 3 {
		t.Errorf("v1 simulate response wrong: %+v", sr)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("v1 endpoint must not carry a Deprecation header")
	}
}

func TestV1MethodScoping(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on a POST endpoint: status %d, want 405", resp.StatusCode)
	}
}

func TestLegacyAliasesCarryDeprecationHeaders(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/simulate", &api.SimulateRequest{Code: tinyProgram})
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy alias missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/simulate") {
		t.Errorf("legacy alias Link = %q, want successor-version pointer", link)
	}
}

// TestErrorEnvelopeCodes exercises one request per failure class and
// checks the stable code and HTTP status of each.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv := New(Options{MaxBodyBytes: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	badConfig := json.RawMessage(`{"robSize": -5}`)
	cases := []struct {
		name       string
		body       any
		rawBody    string
		wantCode   string
		wantStatus int
	}{
		{name: "bad json", rawBody: "{nope", wantCode: api.CodeBadJSON, wantStatus: 400},
		{name: "unknown preset", body: &api.SimulateRequest{Code: tinyProgram, Preset: "nope"},
			wantCode: api.CodeUnknownPreset, wantStatus: 422},
		{name: "bad config", body: &api.SimulateRequest{Code: tinyProgram, Config: &badConfig},
			wantCode: api.CodeBadConfig, wantStatus: 422},
		{name: "build failed", body: &api.SimulateRequest{Code: "frobnicate x1\n"},
			wantCode: api.CodeBuildFailed, wantStatus: 422},
		{name: "mem fill", body: &api.SimulateRequest{Code: tinyProgram,
			MemFills: []api.MemFill{{Label: "nope", Values: []int64{1}}}},
			wantCode: api.CodeMemFill, wantStatus: 422},
		{name: "body too large", body: &api.SimulateRequest{Code: strings.Repeat("nop\n", 1000)},
			wantCode: api.CodeBodyTooLarge, wantStatus: 413},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if c.rawBody != "" {
				r, err := http.Post(ts.URL+"/api/v1/simulate", "application/json", strings.NewReader(c.rawBody))
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(r.Body)
				r.Body.Close()
				resp = r
			} else {
				resp, body = postJSON(t, ts.URL+"/api/v1/simulate", c.body)
			}
			if resp.StatusCode != c.wantStatus {
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, c.wantStatus, body)
			}
			if e := decodeErrorEnvelope(t, body); e.Code != c.wantCode {
				t.Errorf("code = %q, want %q (message %q)", e.Code, c.wantCode, e.Message)
			}
		})
	}
	// Unknown session → unknown_session 404.
	resp, body := postJSON(t, ts.URL+"/api/v1/session/step", &api.SessionStepRequest{SessionID: "sX", Steps: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeUnknownSession {
		t.Errorf("code = %q, want %q", e.Code, api.CodeUnknownSession)
	}
}

// TestV1OnlyEndpointsHaveNoLegacyAlias: endpoints born with v1 must not
// leak onto the flat namespace.
func TestV1OnlyEndpointsHaveNoLegacyAlias(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/batch", "/session/stream"} {
		resp, _ := postJSON(t, ts.URL+path, &api.BatchRequest{})
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404 (v1-only)", path, resp.StatusCode)
		}
	}
}

// ---------------------------------------------------------------------------
// Batch
// ---------------------------------------------------------------------------

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	reqs := make([]api.SimulateRequest, 5)
	for i := range reqs {
		reqs[i] = api.SimulateRequest{Code: tinyProgram}
	}
	resp, body := postJSON(t, ts.URL+"/api/v1/batch", &api.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 5 || br.Succeeded != 5 || br.Failed != 0 {
		t.Fatalf("batch response: %d results, %d ok, %d failed", len(br.Results), br.Succeeded, br.Failed)
	}
	if br.Workers < 1 || br.WallNanos == 0 {
		t.Errorf("fan-out accounting missing: workers=%d wall=%d", br.Workers, br.WallNanos)
	}
	for i, res := range br.Results {
		if res.Index != i {
			t.Errorf("result %d carries index %d (order must match requests)", i, res.Index)
		}
		if res.Response == nil || !res.Response.Halted || res.Response.Stats.Committed != 3 {
			t.Errorf("result %d wrong: %+v", i, res.Response)
		}
	}
}

func TestBatchPartialFailure(t *testing.T) {
	srv, ts := newTestServer(t)
	reqs := []api.SimulateRequest{
		{Code: tinyProgram},
		{Code: "frobnicate x1\n"}, // build failure
		{Code: tinyProgram},
	}
	resp, body := postJSON(t, ts.URL+"/api/v1/batch", &api.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("per-item failures must not fail the batch: status %d", resp.StatusCode)
	}
	var br api.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Succeeded != 2 || br.Failed != 1 {
		t.Fatalf("succeeded=%d failed=%d", br.Succeeded, br.Failed)
	}
	bad := br.Results[1]
	if bad.Error == nil || bad.Error.Code != api.CodeBuildFailed || bad.Response != nil {
		t.Errorf("failed item: %+v", bad)
	}
	m := srv.Metrics()
	if m.BatchRequests != 1 || m.BatchSimulations != 3 {
		t.Errorf("batch metrics: %d requests, %d sims", m.BatchRequests, m.BatchSimulations)
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/api/v1/batch", &api.BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeBadRequest {
		t.Errorf("empty batch code = %q", e.Code)
	}
	big := make([]api.SimulateRequest, maxBatchRequests+1)
	for i := range big {
		big[i] = api.SimulateRequest{Code: "nop"}
	}
	resp, body = postJSON(t, ts.URL+"/api/v1/batch", &api.BatchRequest{Requests: big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeBatchTooLarge {
		t.Errorf("oversized batch code = %q", e.Code)
	}
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

func streamLines(t *testing.T, url string, req *api.StreamRequest) []api.StreamEvent {
	t.Helper()
	data, _ := json.Marshal(req)
	resp, err := http.Post(url+"/api/v1/session/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.MediaTypeNDJSON {
		t.Errorf("stream Content-Type = %q, want %q", ct, api.MediaTypeNDJSON)
	}
	var events []api.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev api.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	events := streamLines(t, ts.URL, &api.StreamRequest{
		SimulateRequest: api.SimulateRequest{Code: tinyProgram, IncludeState: true},
		StepBurst:       1,
	})
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d carries seq %d", i, ev.Seq)
		}
		if i > 0 && ev.Cycle < events[i-1].Cycle {
			t.Errorf("cycle went backwards: %d after %d", ev.Cycle, events[i-1].Cycle)
		}
		if ev.State == nil {
			t.Errorf("event %d missing requested state", i)
		}
	}
	final := events[len(events)-1]
	if !final.Done || !final.Halted || final.Stats == nil || final.Stats.Committed != 3 {
		t.Errorf("final event wrong: %+v", final)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.Done || ev.Stats != nil {
			t.Errorf("intermediate event carries final fields: %+v", ev)
		}
	}
}

func TestStreamEventCap(t *testing.T) {
	_, ts := newTestServer(t)
	// A ~1200-cycle loop with burst 1 would emit ~1200 events; the cap
	// must bound it and still deliver the final event.
	prog := `
li t0, 0
li t1, 200
loop:
  addi t0, t0, 1
  bne t0, t1, loop
`
	events := streamLines(t, ts.URL, &api.StreamRequest{
		SimulateRequest: api.SimulateRequest{Code: prog},
		StepBurst:       1,
		MaxEvents:       5,
	})
	if len(events) > 5 {
		t.Errorf("%d events exceed the cap of 5", len(events))
	}
	final := events[len(events)-1]
	if !final.Done || !final.Halted {
		t.Errorf("capped stream must still finish the run: %+v", final)
	}
}

func TestStreamBadProgramReturnsEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	data, _ := json.Marshal(&api.StreamRequest{SimulateRequest: api.SimulateRequest{Code: "frobnicate\n"}})
	resp, err := http.Post(ts.URL+"/api/v1/session/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status %d, want 422", resp.StatusCode)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeBuildFailed {
		t.Errorf("code = %q", e.Code)
	}
}

// TestStreamThroughGzip drives the stream with gzip enabled end to end —
// the case that deadlocks if the middleware doesn't pass Flush through.
func TestStreamThroughGzip(t *testing.T) {
	_, ts := newTestServer(t)
	data, _ := json.Marshal(&api.StreamRequest{
		SimulateRequest: api.SimulateRequest{Code: tinyProgram},
		StepBurst:       1,
	})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/session/stream", bytes.NewReader(data))
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("stream not gzip-compressed")
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(gr)
	n := 0
	var last api.StreamEvent
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad gzip NDJSON line: %v", err)
		}
		n++
	}
	if n < 2 || !last.Done {
		t.Errorf("gzip stream delivered %d events, done=%v", n, last.Done)
	}
}

// ---------------------------------------------------------------------------
// Codec negotiation and per-codec metrics
// ---------------------------------------------------------------------------

func postWithCodec(t *testing.T, url, codec string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	mt := fmt.Sprintf("%s; %s=%s", api.MediaTypeJSON, api.CodecParam, codec)
	req, _ := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	req.Header.Set("Content-Type", mt)
	req.Header.Set("Accept", mt)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

func TestPerCodecMetrics(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.ResetMetrics()

	// Default (no codec param) exercises the json codec...
	postJSON(t, ts.URL+"/api/v1/simulate", &api.SimulateRequest{Code: tinyProgram, IncludeState: true})
	// ...and codec=pooled exercises the pooled codec.
	resp, body := postWithCodec(t, ts.URL+"/api/v1/simulate", "pooled",
		&api.SimulateRequest{Code: tinyProgram, IncludeState: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pooled-codec request failed: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Codec"); got != "pooled" {
		t.Errorf("X-Codec = %q, want pooled", got)
	}
	var sr api.SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("pooled codec broke the wire format: %v", err)
	}

	m := srv.Metrics()
	for _, name := range []string{"json", "pooled"} {
		cm, ok := m.Codecs[name]
		if !ok {
			t.Fatalf("metrics missing codec %q: %+v", name, m.Codecs)
		}
		if cm.EncodeNanos == 0 || cm.DecodeNanos == 0 {
			t.Errorf("codec %q unmeasured: %+v", name, cm)
		}
		if cm.Share <= 0 || cm.Share >= 1 {
			t.Errorf("codec %q share = %v, want in (0,1)", name, cm.Share)
		}
	}
	// The aggregate jsonNs must cover both codecs.
	sum := m.Codecs["json"].EncodeNanos + m.Codecs["json"].DecodeNanos +
		m.Codecs["pooled"].EncodeNanos + m.Codecs["pooled"].DecodeNanos
	if m.JSONNanos < sum {
		t.Errorf("aggregate JSONNanos %d below per-codec sum %d", m.JSONNanos, sum)
	}
}

// ---------------------------------------------------------------------------
// checkConfig through the codec layer
// ---------------------------------------------------------------------------

func TestCheckConfigThroughCodecLayer(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.ResetMetrics()

	valid, err := json.Marshal(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postRaw(t, ts.URL+"/api/v1/checkConfig", string(valid))
	var pr api.ParseAsmResponse
	if err := json.Unmarshal(body, &pr); err != nil || resp.StatusCode != 200 || !pr.OK {
		t.Fatalf("valid config rejected: %d %s", resp.StatusCode, body)
	}

	// Its decode time must now be visible in the JSON metric.
	if m := srv.Metrics(); m.JSONNanos == 0 || m.Codecs["json"].DecodeNanos == 0 {
		t.Errorf("checkConfig body parse invisible to metrics: %+v", m)
	}

	// Config diagnostics stay data (200 + OK:false), like /parseAsm.
	_, body = postRaw(t, ts.URL+"/api/v1/checkConfig", `{"robSize": -4}`)
	json.Unmarshal(body, &pr)
	if pr.OK || pr.Errors == "" {
		t.Errorf("bad config not diagnosed: %s", body)
	}
	_, body = postRaw(t, ts.URL+"/api/v1/checkConfig", `{not json`)
	json.Unmarshal(body, &pr)
	if pr.OK || pr.Errors == "" {
		t.Errorf("unparsable config not diagnosed: %s", body)
	}
}

func TestCheckConfigHonoursMaxBodyBytes(t *testing.T) {
	srv := New(Options{MaxBodyBytes: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postRaw(t, ts.URL+"/api/v1/checkConfig",
		`{"pad": "`+strings.Repeat("x", 200)+`"}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413: %s", resp.StatusCode, body)
	}
	if e := decodeErrorEnvelope(t, body); e.Code != api.CodeBodyTooLarge {
		t.Errorf("code = %q", e.Code)
	}
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

// ---------------------------------------------------------------------------
// gzip middleware details
// ---------------------------------------------------------------------------

func TestGzipVaryHeader(t *testing.T) {
	_, ts := newTestServer(t)
	for _, acceptGzip := range []bool{true, false} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/health", nil)
		if acceptGzip {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		tr := &http.Transport{DisableCompression: true}
		resp, err := tr.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Vary") != "Accept-Encoding" {
			t.Errorf("Vary = %q (accept-gzip=%v), want Accept-Encoding", resp.Header.Get("Vary"), acceptGzip)
		}
	}
}

// TestGzipFlusherPassthrough proves compressed bytes reach the client at
// Flush time, not only when the handler returns.
func TestGzipFlusherPassthrough(t *testing.T) {
	rec := httptest.NewRecorder()
	var flushedMid bool
	h := gzipMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("gzip response writer does not implement http.Flusher")
		}
		w.Write([]byte(`{"seq":0}` + "\n"))
		f.Flush()
		flushedMid = rec.Flushed && rec.Body.Len() > 0
	}))
	req := httptest.NewRequest(http.MethodGet, "/stream", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	h.ServeHTTP(rec, req)
	if !flushedMid {
		t.Error("Flush did not push compressed bytes through to the client")
	}
}
