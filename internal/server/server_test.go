package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(DefaultOptions())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

const tinyProgram = `
li t0, 1
li t1, 2
add a0, t0, t1
`

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{Code: tinyProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Halted {
		t.Error("program should halt")
	}
	if sr.Stats == nil || sr.Stats.Committed != 3 {
		t.Errorf("stats = %+v", sr.Stats)
	}
}

func TestSimulateFastForward(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{
		Code: tinyProgram, FastForward: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Halted {
		t.Error("program should halt")
	}
	if sr.Stats == nil || sr.Stats.Committed != 3 {
		t.Errorf("stats = %+v", sr.Stats)
	}
	// The fast-forward convention: one committed instruction per cycle,
	// so the same program reports fewer cycles than the detailed run's 6.
	if sr.Cycles != 3 {
		t.Errorf("fast-forward cycles = %d, want 3", sr.Cycles)
	}
}

func TestSimulateWithStateAndLog(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{
		Code: tinyProgram, IncludeState: true, IncludeLog: true,
	})
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.State == nil {
		t.Fatal("state missing")
	}
	if len(sr.State.IntRegs) != 32 {
		t.Error("state registers incomplete")
	}
	if len(sr.State.Log) == 0 {
		t.Error("log missing")
	}
}

func TestSimulateCProgram(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{
		Code:         "int main() { return 41 + 1; }",
		Language:     "c",
		Optimize:     2,
		IncludeState: true,
	})
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Halted {
		t.Fatal("C program should halt")
	}
	// a0 holds main's return value.
	found := false
	for _, reg := range sr.State.IntRegs {
		if reg.Name == "x10" && reg.Value == "42" {
			found = true
		}
	}
	if !found {
		t.Error("a0 != 42 in final state")
	}
}

func TestSimulateWithPresetAndConfig(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/simulate", &SimulateRequest{Code: tinyProgram, Preset: "scalar"})
	if resp.StatusCode != http.StatusOK {
		t.Error("preset scalar should work")
	}
	resp, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{Code: tinyProgram, Preset: "nope"})
	if resp.StatusCode == http.StatusOK {
		t.Errorf("unknown preset should fail: %s", body)
	}
}

func TestSimulateBadProgramReturns422(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{Code: "frobnicate x1\n"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422; body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown instruction") {
		t.Errorf("error body should carry the diagnostic: %s", body)
	}
}

func TestMemFills(t *testing.T) {
	_, ts := newTestServer(t)
	prog := `
la t0, data
lw a0, 0(t0)
lw a1, 4(t0)
add a0, a0, a1
.data
data: .zero 16
`
	_, body := postJSON(t, ts.URL+"/simulate", &SimulateRequest{
		Code:         prog,
		MemFills:     []MemFill{{Label: "data", Values: []int64{40, 2}}},
		IncludeState: true,
	})
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, reg := range sr.State.IntRegs {
		if reg.Name == "x10" && reg.Value != "42" {
			t.Errorf("a0 = %s, want 42", reg.Value)
		}
	}
}

func TestMemFillValidation(t *testing.T) {
	_, ts := newTestServer(t)
	prog := ".data\ndata: .zero 8\n"
	cases := []MemFill{
		{Label: "nope", Values: []int64{1}},
		{Label: "data", Values: []int64{1, 2, 3}},        // 12 B > 8 B
		{Label: "data", Values: []int64{1}, ElemSize: 3}, // bad size
	}
	for i, f := range cases {
		resp, _ := postJSON(t, ts.URL+"/simulate", &SimulateRequest{Code: prog, MemFills: []MemFill{f}})
		if resp.StatusCode == http.StatusOK {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/compile", &CompileRequest{
		Code: "int main() { return 7; }", Optimize: 1,
	})
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Errors != "" {
		t.Fatalf("unexpected errors: %s", cr.Errors)
	}
	if !strings.Contains(cr.Assembly, "main:") || !strings.Contains(cr.Assembly, "li t0, 7") {
		t.Errorf("assembly missing expected code:\n%s", cr.Assembly)
	}
	if len(cr.LineMap) == 0 {
		t.Error("line map missing")
	}
}

func TestCompileErrorsAreData(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/compile", &CompileRequest{Code: "int main() { return x; }"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compiler diagnostics should be 200, got %d", resp.StatusCode)
	}
	var cr CompileResponse
	json.Unmarshal(body, &cr)
	if !strings.Contains(cr.Errors, "undeclared") {
		t.Errorf("diagnostics = %q", cr.Errors)
	}
}

func TestParseAsmEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := postJSON(t, ts.URL+"/parseAsm", &ParseAsmRequest{Code: tinyProgram})
	var pr ParseAsmResponse
	json.Unmarshal(body, &pr)
	if !pr.OK {
		t.Errorf("valid asm rejected: %s", pr.Errors)
	}
	_, body = postJSON(t, ts.URL+"/parseAsm", &ParseAsmRequest{Code: "bogus\n"})
	json.Unmarshal(body, &pr)
	if pr.OK {
		t.Error("invalid asm accepted")
	}
}

func TestSchemaEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cfg map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	if cfg["robSize"] == nil || cfg["units"] == nil {
		t.Errorf("schema incomplete: %v", cfg)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	// New session.
	_, body := postJSON(t, ts.URL+"/session/new", &SessionNewRequest{
		SimulateRequest: SimulateRequest{Code: tinyProgram},
	})
	var sn SessionNewResponse
	if err := json.Unmarshal(body, &sn); err != nil {
		t.Fatal(err)
	}
	if sn.SessionID == "" || sn.State == nil || sn.State.Cycle != 0 {
		t.Fatalf("bad new-session response: %+v", sn)
	}
	// Step forward 2 cycles.
	_, body = postJSON(t, ts.URL+"/session/step", &SessionStepRequest{SessionID: sn.SessionID, Steps: 2})
	var st SessionStateResponse
	json.Unmarshal(body, &st)
	if st.State.Cycle != 2 {
		t.Errorf("cycle = %d, want 2", st.State.Cycle)
	}
	// Step backward 1 cycle (backward simulation over the API).
	_, body = postJSON(t, ts.URL+"/session/step", &SessionStepRequest{SessionID: sn.SessionID, Steps: -1})
	json.Unmarshal(body, &st)
	if st.State.Cycle != 1 {
		t.Errorf("after back-step cycle = %d, want 1", st.State.Cycle)
	}
	// Goto an absolute cycle.
	_, body = postJSON(t, ts.URL+"/session/goto", &SessionGotoRequest{SessionID: sn.SessionID, Cycle: 3})
	json.Unmarshal(body, &st)
	if st.State.Cycle != 3 {
		t.Errorf("goto cycle = %d, want 3", st.State.Cycle)
	}
	// Render the schematic.
	resp, err := http.Get(ts.URL + "/session/render?session=" + sn.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rr struct {
		Schematic string `json:"schematic"`
	}
	json.Unmarshal(rb, &rr)
	if !strings.Contains(rr.Schematic, "Reorder buffer") {
		t.Errorf("schematic missing blocks:\n%s", rr.Schematic)
	}
	// Close.
	resp2, _ := postJSON(t, ts.URL+"/session/close", &SessionCloseRequest{SessionID: sn.SessionID})
	if resp2.StatusCode != http.StatusOK {
		t.Error("close failed")
	}
	// Step on a closed session fails.
	resp3, _ := postJSON(t, ts.URL+"/session/step", &SessionStepRequest{SessionID: sn.SessionID, Steps: 1})
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("stepping closed session: status %d, want 404", resp3.StatusCode)
	}
}

func TestSessionEviction(t *testing.T) {
	srv := New(Options{MaxSessions: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		_, body := postJSON(t, ts.URL+"/session/new", &SessionNewRequest{
			SimulateRequest: SimulateRequest{Code: tinyProgram},
		})
		var sn SessionNewResponse
		json.Unmarshal(body, &sn)
		ids = append(ids, sn.SessionID)
	}
	// The first session must have been evicted.
	resp, _ := postJSON(t, ts.URL+"/session/step", &SessionStepRequest{SessionID: ids[0], Steps: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session should 404, got %d", resp.StatusCode)
	}
	// The latest must still work.
	resp, _ = postJSON(t, ts.URL+"/session/step", &SessionStepRequest{SessionID: ids[2], Steps: 1})
	if resp.StatusCode != http.StatusOK {
		t.Error("latest session should survive")
	}
}

func TestGzipResponses(t *testing.T) {
	_, ts := newTestServer(t)
	data, _ := json.Marshal(&SimulateRequest{Code: tinyProgram, IncludeState: true})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/simulate", bytes.NewReader(data))
	req.Header.Set("Accept-Encoding", "gzip")
	tr := &http.Transport{DisableCompression: true}
	resp, err := tr.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatal("response not gzip-compressed")
	}
	gr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decompressed body is not valid JSON: %v", err)
	}
}

func TestGzipRequestBodies(t *testing.T) {
	_, ts := newTestServer(t)
	data, _ := json.Marshal(&SimulateRequest{Code: tinyProgram})
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	gz.Write(data)
	gz.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/simulate", &buf)
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("gzip request rejected: %d %s", resp.StatusCode, b)
	}
}

func TestMetricsTrackJSONShare(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.ResetMetrics()
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/simulate", &SimulateRequest{Code: tinyProgram, IncludeState: true})
	}
	m := srv.Metrics()
	if m.Requests != 5 {
		t.Errorf("requests = %d, want 5", m.Requests)
	}
	if m.TotalNanos == 0 || m.JSONNanos == 0 {
		t.Errorf("instrumentation empty: %+v", m)
	}
	if m.JSONShare <= 0 || m.JSONShare >= 1 {
		t.Errorf("JSON share = %v, want in (0,1)", m.JSONShare)
	}
}

func TestBadJSONRejected(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/simulate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
}

func TestHealthEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Error("health check failed")
	}
}

func TestInstructionDescriptionsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/instructionDescriptions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Instructions []struct {
			Name            string `json:"name"`
			InterpretableAs string `json:"interpretableAs"`
		} `json:"instructions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Instructions) < 80 {
		t.Errorf("only %d instructions served", len(doc.Instructions))
	}
	found := false
	for _, in := range doc.Instructions {
		if in.Name == "add" && strings.Contains(in.InterpretableAs, `\rs1 \rs2 +`) {
			found = true
		}
	}
	if !found {
		t.Error("add instruction with its Listing 1 expression not found")
	}
}
